// Ablation of this implementation's own design choices (DESIGN.md §4),
// beyond the paper's Fig. 13: candidate sampling strategy, kappa, count
// providers (learned RFDE vs exact), and the skip-cost alpha. Reports
// build time, range latency, and points scanned per query for WaZI on the
// default scenario, with the Base Z-index as the reference row.

#include <cstdio>
#include <functional>

#include "common/harness.h"
#include "common/timer.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Region region = Region::kNewYork;
  const Dataset& data = GetDataset(region, scale.default_n);
  const Workload& workload =
      GetWorkload(region, scale.num_queries, kSelectivityMid1);

  struct Config {
    std::string label;
    std::string index;
    std::function<void(BuildOptions*)> tweak;
  };
  const std::vector<Config> configs = {
      {"base (reference)", "base", [](BuildOptions*) {}},
      {"wazi default (corner+uniform, k=32, learned)", "wazi",
       [](BuildOptions*) {}},
      {"uniform-only candidates (paper Alg.3)", "wazi",
       [](BuildOptions* o) { o->corner_candidates = false; }},
      {"kappa=8", "wazi", [](BuildOptions* o) { o->kappa = 8; }},
      {"kappa=64", "wazi", [](BuildOptions* o) { o->kappa = 64; }},
      {"exact counts (no estimators)", "wazi",
       [](BuildOptions* o) { o->use_estimators = false; }},
      {"alpha=0.5 while skipping", "wazi",
       [](BuildOptions* o) { o->alpha = 0.5; }},
      {"coarse RFDE (4 trees, leaf 32)", "wazi",
       [](BuildOptions* o) {
         o->rfde_trees = 4;
         o->rfde_leaf_size = 32;
       }},
  };

  std::vector<std::vector<std::string>> rows;
  for (const Config& config : configs) {
    BuildOptions opts;
    config.tweak(&opts);
    double build_s = 0.0;
    auto index = BuildIndex(config.index, data, workload, &build_s, &opts);
    const double ns = MeasureRangeNs(*index, workload);
    QueryStats qs;
    std::vector<Point> sink;
    const size_t nq = std::min(workload.queries.size(), scale.measure_queries);
    for (size_t i = 0; i < nq; ++i) {
      sink.clear();
      index->RangeQuery(workload.queries[i], &sink, &qs);
    }
    char build_buf[32], pts_buf[32];
    std::snprintf(build_buf, sizeof(build_buf), "%.2fs", build_s);
    std::snprintf(pts_buf, sizeof(pts_buf), "%.0f",
                  static_cast<double>(qs.points_scanned) /
                      static_cast<double>(nq));
    rows.push_back({config.label, build_buf, FormatNs(ns), pts_buf});
    std::fprintf(stderr, "[abl] %s done\n", config.label.c_str());
  }
  PrintTable("Design-choice ablation (NewYork, sel 0.0064%)",
             {"configuration", "build", "range latency", "pts/query"}, rows);
  return 0;
}

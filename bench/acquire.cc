// Microbenchmark: snapshot acquisition cost, refcount vs epoch.
//
// The serving engine's per-query fixed cost is dominated by pinning a
// consistent snapshot. The pre-epoch design paid two contended RMWs per
// Acquire/Release on the shared_ptr control block (every reader core
// bouncing one cache line); the epoch design pays one store to the
// reader's own padded slot plus a pointer load. This bench measures both
// under a reader-thread sweep and FAILS (exit 1) if the epoch path does
// not at least match the refcounted path at the top thread count — the
// regression gate for the reclamation rewrite.
//
// Arms:
//   shared_ptr  AtomicCell<const IndexSnapshot> (the retired mechanism,
//               kept here as the baseline): Load() copies the shared_ptr.
//   epoch       VersionedIndex::Acquire(): epoch stamp + raw pointer load.
//
// Emits BENCH_acquire.json (schema wazi.bench.micro/1, validated by
// tools/check_bench_json.py). Re-record protocol in BENCHMARKS.md.

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "index/spatial_index.h"
#include "obs/exporters.h"
#include "serve/index_snapshot.h"
#include "workload/dataset.h"

namespace {

using wazi::AssignIds;
using wazi::ComputeBounds;
using wazi::Dataset;
using wazi::MakeIndex;
using wazi::Point;
using wazi::Rect;
using wazi::Rng;
using wazi::Timer;
using wazi::Workload;
using wazi::serve::AtomicCell;
using wazi::serve::IndexSnapshot;
using wazi::serve::VersionedIndex;

struct Row {
  std::string name;
  int threads = 0;
  int64_t ops = 0;
  double ns_per_op = 0.0;
};

// Runs `body` (one acquire+touch) in a tight loop on `threads` threads
// for ~`seconds`, returns aggregate ops and per-op latency.
template <typename Body>
Row Drive(const std::string& name, int threads, double seconds,
          const Body& body) {
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<int64_t> per_thread(static_cast<size_t>(threads), 0);
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      while (!start.load(std::memory_order_acquire)) {
      }
      int64_t ops = 0;
      uint64_t sink = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        // 64 acquires per stop-flag check keeps the flag poll off the
        // measured path.
        for (int i = 0; i < 64; ++i) sink += body();
        ops += 64;
      }
      per_thread[static_cast<size_t>(t)] = ops;
      // Defeat dead-code elimination of the acquire+touch.
      if (sink == 0xdeadbeef) std::fprintf(stderr, "sink\n");
    });
  }
  Timer timer;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::duration<double>(seconds));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& w : workers) w.join();
  const double elapsed_ns = static_cast<double>(timer.ElapsedNs());
  Row row;
  row.name = name;
  row.threads = threads;
  for (const int64_t ops : per_thread) row.ops += ops;
  // Average per-acquire latency as one thread experienced it: thread-time
  // spent divided by total acquires.
  row.ns_per_op =
      row.ops > 0 ? elapsed_ns * threads / static_cast<double>(row.ops) : 0.0;
  return row;
}

Dataset TinyDataset(size_t n) {
  Dataset d;
  d.name = "bench_acquire_synthetic";
  Rng rng(42);
  d.points.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    d.points.push_back(Point{rng.NextDouble(), rng.NextDouble(), 0});
  }
  AssignIds(&d.points);
  d.bounds = ComputeBounds(d.points);
  return d;
}

int WriteJson(const char* path, const std::vector<Row>& rows,
              double seconds, double speedup_at_max) {
  wazi::obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("wazi.bench.micro/1");
  w.Key("bench").String("acquire");
  w.Key("scenario").String("snapshot_acquire_sweep");
  w.Key("seconds_per_row").Double(seconds);
  w.Key("rows").BeginArray();
  for (const Row& r : rows) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("threads").Int(r.threads);
    w.Key("ops").Int(r.ops);
    w.Key("ns_per_op").Double(r.ns_per_op);
    w.EndObject();
  }
  w.EndArray();
  w.Key("summary").BeginObject();
  w.Key("speedup_at_max_threads").Double(speedup_at_max);
  w.EndObject();
  w.EndObject();
  if (!wazi::obs::WriteFile(path, w.str() + "\n")) {
    std::fprintf(stderr, "[acquire] cannot write %s\n", path);
    return 1;
  }
  std::printf("[acquire] wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_acquire.json";
  double seconds = 0.3;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    }
  }
  if (const char* env = std::getenv("WAZI_BENCH_SECONDS")) {
    seconds = std::atof(env);
  }

  const Dataset data = TinyDataset(2048);
  Workload workload;
  workload.name = "acquire";
  workload.queries.push_back(data.bounds);
  workload.selectivity = 1.0;

  // Epoch arm: the real serving path.
  VersionedIndex index([] { return MakeIndex("wazi"); }, data, workload,
                       wazi::BuildOptions{});

  // shared_ptr arm: the retired publication mechanism, reconstructed —
  // an atomic shared_ptr cell whose Load() is exactly what Acquire() was.
  auto baseline_index = MakeIndex("wazi");
  baseline_index->Build(data, workload, wazi::BuildOptions{});
  AtomicCell<const IndexSnapshot> cell;
  cell.Store(std::make_shared<const IndexSnapshot>(
      baseline_index.get(), /*version=*/1, nullptr, nullptr));

  std::vector<Row> rows;
  double shared_at_max = 0.0;
  double epoch_at_max = 0.0;
  const int kThreads[] = {1, 2, 4, 8, 16};
  for (const int threads : kThreads) {
    const Row shared = Drive("shared_ptr", threads, seconds, [&cell] {
      const std::shared_ptr<const IndexSnapshot> snap = cell.Load();
      return snap->version();
    });
    const Row epoch = Drive("epoch", threads, seconds, [&index] {
      const wazi::serve::SnapshotRef snap = index.Acquire();
      return snap->version();
    });
    std::printf("[acquire] threads=%2d  shared_ptr %8.1f ns/op   epoch %8.1f "
                "ns/op   (x%.2f)\n",
                threads, shared.ns_per_op, epoch.ns_per_op,
                epoch.ns_per_op > 0 ? shared.ns_per_op / epoch.ns_per_op : 0);
    shared_at_max = shared.ns_per_op;
    epoch_at_max = epoch.ns_per_op;
    rows.push_back(shared);
    rows.push_back(epoch);
  }

  const double speedup =
      epoch_at_max > 0 ? shared_at_max / epoch_at_max : 0.0;
  int rc = WriteJson(json_path, rows, seconds, speedup);
  // The gate: at the top of the sweep (16 readers; the acceptance bar is
  // >= 8) epoch acquire must at least match the refcounted baseline. 5%
  // tolerance absorbs timer jitter on loaded CI runners.
  if (speedup < 0.95) {
    std::fprintf(stderr,
                 "[acquire] FAIL: epoch acquire slower than shared_ptr at "
                 "%d threads (%.1f vs %.1f ns/op)\n",
                 16, epoch_at_max, shared_at_max);
    rc = 1;
  }
  return rc;
}

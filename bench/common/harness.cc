#include "common/harness.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

#include "common/timer.h"

namespace wazi::bench {
namespace {

Scale MakeScale(const std::string& name) {
  Scale s;
  s.name = name;
  if (name == "smoke") {
    s.size_sweep = {5000, 10000, 20000};
    s.default_n = 10000;
    s.big_n = 20000;
    s.num_queries = 400;
    s.num_point_queries = 1000;
    s.measure_queries = 200;
    s.repetitions = 3;
  } else if (name == "paper") {
    s.size_sweep = {4000000, 8000000, 16000000, 32000000, 64000000};
    s.default_n = 8000000;
    s.big_n = 32000000;
    s.num_queries = 20000;
    s.num_point_queries = 50000;
    s.measure_queries = 20000;
    s.repetitions = 3;
  } else {
    // default
    s.size_sweep = {50000, 100000, 200000, 400000, 800000};
    s.default_n = 200000;
    s.big_n = 400000;
    s.num_queries = 2000;
    s.num_point_queries = 5000;
    s.measure_queries = 1000;
    s.repetitions = 5;
  }
  return s;
}

}  // namespace

const Scale& CurrentScale() {
  static const Scale kScale = [] {
    const char* env = std::getenv("WAZI_SCALE");
    return MakeScale(env == nullptr ? "default" : env);
  }();
  return kScale;
}

const Dataset& GetDataset(Region region, size_t n) {
  static std::map<std::pair<int, size_t>, Dataset>& cache =
      *new std::map<std::pair<int, size_t>, Dataset>();
  const auto key = std::make_pair(static_cast<int>(region), n);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, GenerateRegion(region, n, /*seed=*/42)).first;
  }
  return it->second;
}

const Workload& GetWorkload(Region region, size_t n_queries,
                            double selectivity) {
  static std::map<std::tuple<int, size_t, double>, Workload>& cache =
      *new std::map<std::tuple<int, size_t, double>, Workload>();
  const auto key =
      std::make_tuple(static_cast<int>(region), n_queries, selectivity);
  auto it = cache.find(key);
  if (it == cache.end()) {
    QueryGenOptions opts;
    opts.num_queries = n_queries;
    opts.selectivity = selectivity;
    opts.seed = 7;
    it = cache
             .emplace(key, GenerateCheckinWorkload(
                               region, Rect::Of(0, 0, 1, 1), opts))
             .first;
  }
  return it->second;
}

std::unique_ptr<SpatialIndex> BuildIndex(const std::string& name,
                                         const Dataset& data,
                                         const Workload& workload,
                                         double* build_seconds,
                                         const BuildOptions* opts) {
  std::unique_ptr<SpatialIndex> index = MakeIndex(name);
  BuildOptions build_opts = (opts != nullptr) ? *opts : BuildOptions{};
  Timer timer;
  index->Build(data, workload, build_opts);
  if (build_seconds != nullptr) *build_seconds = timer.ElapsedSeconds();
  return index;
}

double MeasureRangeNs(const SpatialIndex& index, const Workload& workload) {
  const Scale& scale = CurrentScale();
  const size_t nq = std::min(workload.queries.size(), scale.measure_queries);
  if (nq == 0) return 0.0;
  std::vector<double> runs;
  std::vector<Point> sink;
  QueryStats qs;  // explicit counters: measurement touches no shared state
  sink.reserve(1 << 16);
  for (int rep = 0; rep < scale.repetitions; ++rep) {
    Timer timer;
    for (size_t i = 0; i < nq; ++i) {
      sink.clear();
      index.RangeQuery(workload.queries[i], &sink, &qs);
    }
    runs.push_back(static_cast<double>(timer.ElapsedNs()) /
                   static_cast<double>(nq));
  }
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

double MeasurePointNs(const SpatialIndex& index,
                      const std::vector<Point>& queries) {
  const Scale& scale = CurrentScale();
  if (queries.empty()) return 0.0;
  std::vector<double> runs;
  int64_t sink = 0;
  QueryStats qs;
  for (int rep = 0; rep < scale.repetitions; ++rep) {
    Timer timer;
    for (const Point& p : queries) sink += index.PointQuery(p, &qs) ? 1 : 0;
    runs.push_back(static_cast<double>(timer.ElapsedNs()) /
                   static_cast<double>(queries.size()));
  }
  if (sink < 0) std::fprintf(stderr, "impossible\n");  // keep `sink` alive
  std::sort(runs.begin(), runs.end());
  return runs[runs.size() / 2];
}

PhaseNs MeasurePhasesNs(const SpatialIndex& index, const Workload& workload) {
  const Scale& scale = CurrentScale();
  const size_t nq = std::min(workload.queries.size(), scale.measure_queries);
  PhaseNs result{0.0, 0.0};
  if (nq == 0) return result;

  std::vector<double> proj_runs, scan_runs;
  std::vector<Point> sink;
  Projection proj;
  QueryStats qs;
  for (int rep = 0; rep < scale.repetitions; ++rep) {
    // Projection phase.
    Timer proj_timer;
    for (size_t i = 0; i < nq; ++i) {
      proj.clear();
      index.Project(workload.queries[i], &proj, &qs);
    }
    proj_runs.push_back(static_cast<double>(proj_timer.ElapsedNs()) /
                        static_cast<double>(nq));
    // Scan phase (projections recomputed outside the timed region).
    std::vector<Projection> projections(nq);
    for (size_t i = 0; i < nq; ++i) {
      index.Project(workload.queries[i], &projections[i], &qs);
    }
    Timer scan_timer;
    for (size_t i = 0; i < nq; ++i) {
      sink.clear();
      index.ScanProjection(projections[i], workload.queries[i], &sink, &qs);
    }
    scan_runs.push_back(static_cast<double>(scan_timer.ElapsedNs()) /
                        static_cast<double>(nq));
  }
  std::sort(proj_runs.begin(), proj_runs.end());
  std::sort(scan_runs.begin(), scan_runs.end());
  result.projection = proj_runs[proj_runs.size() / 2];
  result.scan = scan_runs[scan_runs.size() / 2];
  return result;
}

void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(header.size());
  for (size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::printf("\n=== %s (scale: %s) ===\n", title.c_str(),
              CurrentScale().name.c_str());
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
    }
    std::printf("\n");
  };
  print_row(header);
  std::string rule;
  for (size_t c = 0; c < header.size(); ++c) {
    rule.append(widths[c], '-');
    rule.append("  ");
  }
  std::printf("%s\n", rule.c_str());
  for (const auto& row : rows) print_row(row);
  std::fflush(stdout);
}

std::string FormatNs(double ns) {
  char buf[64];
  if (ns >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fms", ns / 1e6);
  } else if (ns >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", ns / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fns", ns);
  }
  return buf;
}

std::string FormatCount(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

const std::vector<double>& PaperSelectivities() {
  static const std::vector<double> kSel = {
      kSelectivityLow, kSelectivityMid1, kSelectivityMid2, kSelectivityHigh};
  return kSel;
}

}  // namespace wazi::bench

// Bench harness shared by every table/figure binary: scale profiles,
// dataset/workload caching, latency measurement, and paper-style table
// printing.
//
// Scale is selected with the WAZI_SCALE environment variable:
//   smoke    tiny inputs, seconds total (CI)
//   default  ~200k points (laptop, minutes for the full suite)
//   paper    the paper's parameters (4M-64M points, 20k queries)

#ifndef WAZI_BENCH_COMMON_HARNESS_H_
#define WAZI_BENCH_COMMON_HARNESS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "index/spatial_index.h"
#include "workload/dataset.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

namespace wazi::bench {

struct Scale {
  std::string name;
  // Fig. 8 / 10 / Tab. 3 / 5 size sweep (the paper's 4M..64M).
  std::vector<size_t> size_sweep;
  size_t default_n;       // dataset size for single-size experiments
  size_t big_n;           // Fig. 9's "32M" analogue
  size_t num_queries;     // range-query workload size (paper: 20k)
  size_t num_point_queries;  // paper: 50k
  size_t measure_queries;    // queries timed per measurement
  int repetitions;           // timed repetitions (median reported)
};

// Resolves WAZI_SCALE (default "default").
const Scale& CurrentScale();

// Cached dataset / workload construction (benches reuse across tables).
const Dataset& GetDataset(Region region, size_t n);
const Workload& GetWorkload(Region region, size_t n_queries,
                            double selectivity);

// Builds an index by registry name with default BuildOptions; returns the
// build time in seconds through `build_seconds` when non-null.
std::unique_ptr<SpatialIndex> BuildIndex(const std::string& name,
                                         const Dataset& data,
                                         const Workload& workload,
                                         double* build_seconds = nullptr,
                                         const BuildOptions* opts = nullptr);

// Average range-query latency (ns/query) over the first
// `scale.measure_queries` queries of `workload`, median of
// `scale.repetitions` passes. Also verifies result counts against an
// expected total when `expected_results` >= 0.
double MeasureRangeNs(const SpatialIndex& index, const Workload& workload);

// Average point-query latency (ns/query).
double MeasurePointNs(const SpatialIndex& index,
                      const std::vector<Point>& queries);

// Projection-only and scan-only latencies (ns/query), Fig. 9.
struct PhaseNs {
  double projection;
  double scan;
};
PhaseNs MeasurePhasesNs(const SpatialIndex& index, const Workload& workload);

// --- table printing ---

// Prints a titled table: header row then data rows, columns padded.
void PrintTable(const std::string& title,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

std::string FormatNs(double ns);
std::string FormatCount(double v);

// Canonical selectivity sweep of the paper (Table 2).
const std::vector<double>& PaperSelectivities();

}  // namespace wazi::bench

#endif  // WAZI_BENCH_COMMON_HARNESS_H_

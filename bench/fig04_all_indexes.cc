// Figure 4: average range-query latency of all eleven indexes (the six
// main competitors plus the discarded rank-space SFC baselines) on the
// default dataset and selectivity.

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Dataset& data = GetDataset(Region::kCaliNev, scale.default_n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);

  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : AllIndexNames()) {
    double build_s = 0.0;
    auto index = BuildIndex(name, data, workload, &build_s);
    const double ns = MeasureRangeNs(*index, workload);
    rows.push_back({name, FormatNs(ns),
                    std::to_string(static_cast<long long>(ns)) + " ns"});
    std::fprintf(stderr, "[fig04] %s done (build %.1fs)\n", name.c_str(),
                 build_s);
  }
  PrintTable("Figure 4: avg range query latency, all indexes (" + data.name +
                 ", sel 0.0256%)",
             {"index", "range latency", "(ns/query)"}, rows);
  return 0;
}

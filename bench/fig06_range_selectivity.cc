// Figure 6: average range-query latency of the six main indexes over the
// four datasets at the paper's four selectivity levels (one table per
// selectivity, matching the four panels of the figure).

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const std::vector<std::string> indexes = MainIndexNames();

  for (const double sel : PaperSelectivities()) {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& name : indexes) {
      std::vector<std::string> row = {name};
      for (Region region : AllRegions()) {
        const Dataset& data = GetDataset(region, scale.default_n);
        const Workload& workload =
            GetWorkload(region, scale.num_queries, sel);
        auto index = BuildIndex(name, data, workload);
        row.push_back(FormatNs(MeasureRangeNs(*index, workload)));
      }
      rows.push_back(std::move(row));
      std::fprintf(stderr, "[fig06] sel=%g %s done\n", sel, name.c_str());
    }
    char title[128];
    std::snprintf(title, sizeof(title),
                  "Figure 6: range query latency, selectivity %.4f%%",
                  sel * 100.0);
    PrintTable(title, {"index", "CaliNev", "NewYork", "Japan", "Iberia"},
               rows);
  }
  return 0;
}

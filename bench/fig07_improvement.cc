// Figure 7: percentage improvement in range-query latency over the Base
// Z-index, aggregated (top) per dataset across selectivities and (bottom)
// per selectivity across datasets.

#include <cstdio>
#include <map>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const std::vector<std::string> others = {"quasii", "cur", "str", "flood",
                                           "wazi"};

  // latency[index][region][sel]
  std::map<std::string, std::map<int, std::map<double, double>>> latency;
  for (Region region : AllRegions()) {
    const Dataset& data = GetDataset(region, scale.default_n);
    for (const double sel : PaperSelectivities()) {
      const Workload& workload = GetWorkload(region, scale.num_queries, sel);
      for (const std::string& name :
           std::vector<std::string>{"base", "quasii", "cur", "str", "flood",
                                    "wazi"}) {
        auto index = BuildIndex(name, data, workload);
        latency[name][static_cast<int>(region)][sel] =
            MeasureRangeNs(*index, workload);
      }
      std::fprintf(stderr, "[fig07] %s sel=%g done\n",
                   RegionName(region).c_str(), sel);
    }
  }

  auto improvement = [&](const std::string& name, int region, double sel) {
    const double base = latency["base"][region][sel];
    const double x = latency[name][region][sel];
    return 100.0 * (base - x) / base;
  };

  {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& name : others) {
      std::vector<std::string> row = {name};
      for (Region region : AllRegions()) {
        double mean = 0.0;
        for (const double sel : PaperSelectivities()) {
          mean += improvement(name, static_cast<int>(region), sel) /
                  PaperSelectivities().size();
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+.1f%%", mean);
        row.push_back(buf);
      }
      rows.push_back(std::move(row));
    }
    PrintTable(
        "Figure 7 (top): % improvement over Base, per data distribution",
        {"index", "CaliNev", "NewYork", "Japan", "Iberia"}, rows);
  }
  {
    std::vector<std::vector<std::string>> rows;
    for (const std::string& name : others) {
      std::vector<std::string> row = {name};
      for (const double sel : PaperSelectivities()) {
        double mean = 0.0;
        for (Region region : AllRegions()) {
          mean += improvement(name, static_cast<int>(region), sel) / 4.0;
        }
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%+.1f%%", mean);
        row.push_back(buf);
      }
      rows.push_back(std::move(row));
    }
    PrintTable("Figure 7 (bottom): % improvement over Base, per selectivity",
               {"index", "0.0016%", "0.0064%", "0.0256%", "0.1024%"}, rows);
  }
  return 0;
}

// Figure 8: average range-query latency of the six main indexes as the
// dataset size grows (the paper sweeps 4M..64M at mid selectivity
// 0.0256%; WAZI_SCALE=paper reproduces those sizes).

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  std::vector<std::string> header = {"index"};
  for (size_t n : scale.size_sweep) header.push_back(FormatCount(n));

  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : MainIndexNames()) {
    std::vector<std::string> row = {name};
    for (const size_t n : scale.size_sweep) {
      const Dataset& data = GetDataset(Region::kCaliNev, n);
      const Workload& workload =
          GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);
      auto index = BuildIndex(name, data, workload);
      row.push_back(FormatNs(MeasureRangeNs(*index, workload)));
      std::fprintf(stderr, "[fig08] %s n=%zu done\n", name.c_str(), n);
    }
    rows.push_back(std::move(row));
  }
  PrintTable(
      "Figure 8: range query latency vs dataset size (CaliNev, sel 0.0256%)",
      header, rows);
  return 0;
}

// Figure 9: range-query latency split into the Projection phase (search
// structure traversal identifying overlapping pages) and the Scan phase
// (filtering the projected points), on the large dataset at mid
// selectivity.

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Dataset& data = GetDataset(Region::kCaliNev, scale.big_n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid1);

  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : MainIndexNames()) {
    auto index = BuildIndex(name, data, workload);
    const PhaseNs phases = MeasurePhasesNs(*index, workload);
    rows.push_back({name, FormatNs(phases.projection), FormatNs(phases.scan)});
    std::fprintf(stderr, "[fig09] %s done\n", name.c_str());
  }
  PrintTable("Figure 9: projection vs scan phase latency (CaliNev, big n, "
             "sel 0.0064%)",
             {"index", "projection", "scan"}, rows);
  return 0;
}

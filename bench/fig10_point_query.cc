// Figure 10: average point-query latency of the six main indexes as the
// dataset size grows (50k point queries sampled from the data).

#include <cstdio>

#include "common/harness.h"
#include "workload/query_generator.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  std::vector<std::string> header = {"index"};
  for (size_t n : scale.size_sweep) header.push_back(FormatCount(n));

  std::vector<std::vector<std::string>> rows;
  for (const std::string& name : MainIndexNames()) {
    std::vector<std::string> row = {name};
    for (const size_t n : scale.size_sweep) {
      const Dataset& data = GetDataset(Region::kCaliNev, n);
      const Workload& workload =
          GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);
      const std::vector<Point> probes =
          SamplePointQueries(data, scale.num_point_queries, 99);
      auto index = BuildIndex(name, data, workload);
      row.push_back(FormatNs(MeasurePointNs(*index, probes)));
      std::fprintf(stderr, "[fig10] %s n=%zu done\n", name.c_str(), n);
    }
    rows.push_back(std::move(row));
  }
  PrintTable("Figure 10: point query latency vs dataset size (CaliNev)",
             header, rows);
  return 0;
}

// Figure 11: insert latency and post-insert range-query latency for the
// updatable indexes (WaZI, CUR, Flood). The paper inserts 25% of the
// dataset size, uniformly over the data space, in five equal batches.

#include <cstdio>

#include "common/harness.h"
#include "common/timer.h"
#include "workload/query_generator.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Dataset& data = GetDataset(Region::kCaliNev, scale.default_n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);
  const size_t total_inserts = data.size() / 4;
  const size_t batch = total_inserts / 5;
  const std::vector<Point> stream = GenerateInsertStream(
      data.bounds, total_inserts, static_cast<int64_t>(data.size()), 13);

  std::vector<std::vector<std::string>> insert_rows, range_rows;
  for (const std::string& name : {std::string("wazi"), std::string("cur"),
                                  std::string("flood")}) {
    auto index = BuildIndex(name, data, workload);
    std::vector<std::string> irow = {name};
    std::vector<std::string> rrow = {name, FormatNs(MeasureRangeNs(
                                               *index, workload))};
    for (int b = 0; b < 5; ++b) {
      Timer timer;
      for (size_t i = b * batch; i < (b + 1) * batch && i < stream.size();
           ++i) {
        index->Insert(stream[i]);
      }
      irow.push_back(
          FormatNs(static_cast<double>(timer.ElapsedNs()) /
                   static_cast<double>(batch)));
      rrow.push_back(FormatNs(MeasureRangeNs(*index, workload)));
    }
    insert_rows.push_back(std::move(irow));
    range_rows.push_back(std::move(rrow));
    std::fprintf(stderr, "[fig11] %s done\n", name.c_str());
  }
  PrintTable("Figure 11 (left): insert latency per batch (+5% .. +25%)",
             {"index", "+5%", "+10%", "+15%", "+20%", "+25%"}, insert_rows);
  PrintTable("Figure 11 (right): range latency after each insert batch",
             {"index", "+0%", "+5%", "+10%", "+15%", "+20%", "+25%"},
             range_rows);
  return 0;
}

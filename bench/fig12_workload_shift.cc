// Figure 12: range-query latency of Base and WaZI as the evaluated
// workload drifts away from the training workload — towards a uniform
// workload (left panel) and towards a differently-skewed workload from
// another region (right panel).

#include <cstdio>

#include "common/harness.h"
#include "workload/query_generator.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Region region = Region::kCaliNev;
  const Dataset& data = GetDataset(region, scale.default_n);
  const Workload& train =
      GetWorkload(region, scale.num_queries, kSelectivityMid2);

  QueryGenOptions qopts;
  qopts.num_queries = scale.num_queries;
  qopts.selectivity = kSelectivityMid2;
  qopts.seed = 311;
  const Workload uniform_drift = GenerateUniformWorkload(data.bounds, qopts);
  // "Differently skewed": same region (so queries still hit data), but a
  // different venue popularity structure (fresh venue seed).
  const Workload skewed_drift =
      GenerateCheckinWorkload(region, data.bounds, qopts);

  auto base = BuildIndex("base", data, train);
  auto wazi_index = BuildIndex("wazi", data, train);

  const std::vector<double> fractions = {0.0, 0.25, 0.5, 0.75, 1.0};
  for (const auto& [title, drift] :
       {std::make_pair(std::string("Figure 12 (left): drift to uniform"),
                       &uniform_drift),
        std::make_pair(std::string("Figure 12 (right): drift to other skew"),
                       &skewed_drift)}) {
    std::vector<std::vector<std::string>> rows;
    for (const auto& [name, index] :
         {std::make_pair(std::string("base"), base.get()),
          std::make_pair(std::string("wazi"), wazi_index.get())}) {
      std::vector<std::string> row = {name};
      for (const double frac : fractions) {
        const Workload blended = BlendWorkloads(train, *drift, frac, 17);
        row.push_back(FormatNs(MeasureRangeNs(*index, blended)));
      }
      rows.push_back(std::move(row));
    }
    PrintTable(title, {"index", "0%", "25%", "50%", "75%", "100%"}, rows);
  }
  return 0;
}

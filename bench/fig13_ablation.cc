// Figure 13: ablation of WaZI's two mechanisms — adaptive partitioning
// (layout) and look-ahead pointers (skipping) — via the four variants
// Base, Base+SK, WaZI-SK, WaZI, reporting the figure's four metrics:
// query time, excess points, bounding boxes checked, pages scanned.

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const Region region = Region::kCaliNev;
  const Dataset& data = GetDataset(region, scale.default_n);
  const std::vector<double> sels = {kSelectivityTiny, kSelectivityMid1,
                                    kSelectivityHigh};
  const std::vector<std::string> variants = {"base", "wazi", "base+sk",
                                             "wazi-sk"};

  std::vector<std::vector<std::string>> time_rows, excess_rows, bbs_rows,
      pages_rows;
  for (const std::string& name : variants) {
    std::vector<std::string> trow = {name}, erow = {name}, brow = {name},
                             prow = {name};
    for (const double sel : sels) {
      const Workload& workload = GetWorkload(region, scale.num_queries, sel);
      auto index = BuildIndex(name, data, workload);
      const double ns = MeasureRangeNs(*index, workload);
      // Work counters over one clean pass of the measured queries.
      QueryStats st;
      std::vector<Point> sink;
      const size_t nq =
          std::min(workload.queries.size(), scale.measure_queries);
      for (size_t i = 0; i < nq; ++i) {
        sink.clear();
        index->RangeQuery(workload.queries[i], &sink, &st);
      }
      trow.push_back(FormatNs(ns));
      erow.push_back(FormatCount(static_cast<double>(st.excess_points())));
      brow.push_back(FormatCount(static_cast<double>(st.bbs_checked)));
      prow.push_back(FormatCount(static_cast<double>(st.pages_scanned)));
      std::fprintf(stderr, "[fig13] %s sel=%g done\n", name.c_str(), sel);
    }
    time_rows.push_back(std::move(trow));
    excess_rows.push_back(std::move(erow));
    bbs_rows.push_back(std::move(brow));
    pages_rows.push_back(std::move(prow));
  }
  const std::vector<std::string> header = {"variant", "0.0004%", "0.0064%",
                                           "0.1024%"};
  PrintTable("Figure 13 (top-left): query time", header, time_rows);
  PrintTable("Figure 13 (top-right): excess points (total)", header,
             excess_rows);
  PrintTable("Figure 13 (bottom-left): bounding boxes checked (total)",
             header, bbs_rows);
  PrintTable("Figure 13 (bottom-right): pages scanned (total)", header,
             pages_rows);
  return 0;
}

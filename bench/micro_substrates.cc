// Substrate microbenchmarks (google-benchmark): the per-operation costs
// underlying the index implementations — Z-curve encoding, BIGMIN,
// Hilbert encoding, PGM/RMI lookups, RFDE box counts, rank-space
// projection, and Z-index tree traversal.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/wazi.h"
#include "density/kd_forest.h"
#include "learned/pgm_index.h"
#include "learned/rmi.h"
#include "sfc/bigmin.h"
#include "sfc/hilbert.h"
#include "sfc/rank_space.h"
#include "sfc/zcurve.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

namespace wazi {
namespace {

void BM_ZEncode(benchmark::State& state) {
  Rng rng(1);
  uint32_t x = static_cast<uint32_t>(rng.NextU64());
  uint32_t y = static_cast<uint32_t>(rng.NextU64());
  for (auto _ : state) {
    benchmark::DoNotOptimize(ZEncode(x, y));
    x += 0x9e3779b9u;
    y ^= x;
  }
}
BENCHMARK(BM_ZEncode);

void BM_BigMin(benchmark::State& state) {
  Rng rng(2);
  const uint64_t zmin = ZEncode(1000, 2000);
  const uint64_t zmax = ZEncode(50000, 60000);
  uint64_t z = zmin;
  for (auto _ : state) {
    benchmark::DoNotOptimize(BigMin(z, zmin, zmax));
    z = zmin + (z * 2862933555777941757ULL + 3037000493ULL) % (zmax - zmin);
  }
}
BENCHMARK(BM_BigMin);

void BM_HilbertEncode(benchmark::State& state) {
  Rng rng(3);
  uint32_t x = static_cast<uint32_t>(rng.NextBelow(1u << 16));
  uint32_t y = static_cast<uint32_t>(rng.NextBelow(1u << 16));
  for (auto _ : state) {
    benchmark::DoNotOptimize(HilbertEncode(16, x & 0xffff, y & 0xffff));
    x += 12345;
    y += 6789;
  }
}
BENCHMARK(BM_HilbertEncode);

void BM_PgmLowerBound(benchmark::State& state) {
  Rng rng(4);
  std::vector<uint64_t> keys(1 << 20);
  for (auto& k : keys) k = rng.NextU64() >> 20;
  std::sort(keys.begin(), keys.end());
  PgmIndex pgm;
  pgm.Build(keys, 32);
  uint64_t probe = keys[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(pgm.LowerBound(probe));
    probe = probe * 6364136223846793005ULL + 1442695040888963407ULL;
    probe >>= 20;
  }
}
BENCHMARK(BM_PgmLowerBound);

void BM_RmiLowerBound(benchmark::State& state) {
  Rng rng(5);
  std::vector<uint64_t> keys(1 << 20);
  for (auto& k : keys) k = rng.NextU64() >> 20;
  std::sort(keys.begin(), keys.end());
  Rmi rmi;
  rmi.Build(keys, 4096);
  uint64_t probe = keys[0];
  for (auto _ : state) {
    benchmark::DoNotOptimize(rmi.LowerBound(probe));
    probe = probe * 6364136223846793005ULL + 1442695040888963407ULL;
    probe >>= 20;
  }
}
BENCHMARK(BM_RmiLowerBound);

void BM_RfdeEstimate2D(benchmark::State& state) {
  const Dataset data = GenerateRegion(Region::kCaliNev, 200000, 6);
  std::vector<DVec> rows;
  rows.reserve(data.points.size());
  for (const Point& p : data.points) rows.push_back(DVec{p.x, p.y, 0, 0});
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  forest.Build(rows, {}, opts);
  Rng rng(7);
  for (auto _ : state) {
    const double x = rng.Uniform(0, 0.9);
    const double y = rng.Uniform(0, 0.9);
    DBox box;
    box.lo = DVec{x, y, 0, 0};
    box.hi = DVec{x + 0.1, y + 0.1, 0, 0};
    benchmark::DoNotOptimize(forest.Estimate(box));
  }
}
BENCHMARK(BM_RfdeEstimate2D);

void BM_RankSpaceProjection(benchmark::State& state) {
  const Dataset data = GenerateRegion(Region::kJapan, 200000, 8);
  RankSpace rs;
  rs.Build(data.points, 16);
  Rng rng(9);
  double v = 0.5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rs.XRank(v));
    v = rng.NextDouble();
  }
}
BENCHMARK(BM_RankSpaceProjection);

void BM_ZIndexTreeTraversal(benchmark::State& state) {
  const Dataset data = GenerateRegion(Region::kNewYork, 200000, 10);
  QueryGenOptions qopts;
  qopts.num_queries = 1000;
  const Workload workload =
      GenerateCheckinWorkload(Region::kNewYork, data.bounds, qopts);
  Wazi index;
  BuildOptions opts;
  index.Build(data, workload, opts);
  Rng rng(11);
  for (auto _ : state) {
    const Point& p = data.points[rng.NextBelow(data.points.size())];
    benchmark::DoNotOptimize(index.zindex().FindLeafNode(p.x, p.y));
  }
}
BENCHMARK(BM_ZIndexTreeTraversal);

void BM_WaziRangeQuery(benchmark::State& state) {
  const Dataset data = GenerateRegion(Region::kNewYork, 200000, 12);
  QueryGenOptions qopts;
  qopts.num_queries = 2000;
  qopts.selectivity = kSelectivityMid2;
  const Workload workload =
      GenerateCheckinWorkload(Region::kNewYork, data.bounds, qopts);
  Wazi index;
  BuildOptions opts;
  index.Build(data, workload, opts);
  size_t qi = 0;
  std::vector<Point> sink;
  for (auto _ : state) {
    sink.clear();
    index.RangeQuery(workload.queries[qi], &sink);
    benchmark::DoNotOptimize(sink.data());
    qi = (qi + 1) % workload.queries.size();
  }
}
BENCHMARK(BM_WaziRangeQuery);

}  // namespace
}  // namespace wazi

BENCHMARK_MAIN();

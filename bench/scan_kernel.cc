// Microbenchmark: leaf-scan kernel throughput, scalar vs SSE2 vs AVX2.
//
// WaZI funnels query time into the leaf scan, so the point-in-rect filter
// (common/simd.h) is the instruction budget that matters. This bench
// sweeps leaf sizes and rect selectivities over every instruction tier
// the host supports and FAILS (exit 1) if the best vector tier does not
// beat the scalar reference on >= 4096-point leaves — the regression
// gate for the kernel rewrite (a broken dispatch or a de-vectorized
// kernel shows up as ratio <= 1).
//
// Emits BENCH_scan_kernel.json (schema wazi.bench.micro/1, validated by
// tools/check_bench_json.py). Re-record protocol in BENCHMARKS.md.

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/simd.h"
#include "common/timer.h"
#include "obs/exporters.h"

namespace {

using wazi::Point;
using wazi::Rect;
using wazi::Rng;
using wazi::Timer;
namespace simd = wazi::simd;

struct Row {
  std::string name;   // kernel tier
  size_t n = 0;       // leaf size
  double selectivity = 0.0;
  int64_t points = 0;  // total points filtered
  double ns_per_point = 0.0;
};

std::vector<Point> MakeLeaf(size_t n, Rng* rng) {
  std::vector<Point> pts;
  pts.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    pts.push_back(Point{rng->NextDouble(), rng->NextDouble(),
                        static_cast<int64_t>(i)});
  }
  return pts;
}

// A centered square over uniform [0,1)^2 data whose area is `frac`.
Rect RectForSelectivity(double frac) {
  const double side = std::sqrt(frac);
  const double lo = 0.5 - side / 2;
  return Rect{lo, lo, lo + side, lo + side};
}

Row Measure(simd::Level level, const std::vector<Point>& leaf,
            double selectivity, double seconds) {
  const Rect rect = RectForSelectivity(selectivity);
  std::vector<Point> out;
  out.reserve(leaf.size());
  // Warm-up + calibration: one pass to size the timed batch.
  simd::FilterPointsInRectLevel(level, leaf.data(), leaf.size(), rect, &out,
                                nullptr);
  int64_t points = 0;
  size_t hits = 0;
  Timer timer;
  while (timer.ElapsedSeconds() < seconds) {
    for (int rep = 0; rep < 16; ++rep) {
      out.clear();
      hits += simd::FilterPointsInRectLevel(level, leaf.data(), leaf.size(),
                                            rect, &out, nullptr);
      points += static_cast<int64_t>(leaf.size());
    }
  }
  const double elapsed_ns = static_cast<double>(timer.ElapsedNs());
  Row row;
  row.name = simd::LevelName(level);
  row.n = leaf.size();
  row.selectivity = selectivity;
  row.points = points;
  row.ns_per_point =
      points > 0 ? elapsed_ns / static_cast<double>(points) : 0.0;
  if (hits == static_cast<size_t>(-1)) std::fprintf(stderr, "sink\n");
  return row;
}

int WriteJson(const char* path, const std::vector<Row>& rows,
              double seconds, double min_speedup_large) {
  wazi::obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("wazi.bench.micro/1");
  w.Key("bench").String("scan_kernel");
  w.Key("scenario").String("leaf_filter_sweep");
  w.Key("seconds_per_row").Double(seconds);
  w.Key("detected_level").String(simd::LevelName(simd::DetectedLevel()));
  w.Key("rows").BeginArray();
  for (const Row& r : rows) {
    w.BeginObject();
    w.Key("name").String(r.name);
    w.Key("leaf_points").Int(static_cast<int64_t>(r.n));
    w.Key("selectivity").Double(r.selectivity);
    w.Key("ops").Int(r.points);
    w.Key("ns_per_op").Double(r.ns_per_point);
    w.EndObject();
  }
  w.EndArray();
  w.Key("summary").BeginObject();
  w.Key("min_speedup_on_large_leaves").Double(min_speedup_large);
  w.EndObject();
  w.EndObject();
  if (!wazi::obs::WriteFile(path, w.str() + "\n")) {
    std::fprintf(stderr, "[scan_kernel] cannot write %s\n", path);
    return 1;
  }
  std::printf("[scan_kernel] wrote %s\n", path);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const char* json_path = "BENCH_scan_kernel.json";
  double seconds = 0.1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--seconds") == 0 && i + 1 < argc) {
      seconds = std::atof(argv[++i]);
    }
  }
  if (const char* env = std::getenv("WAZI_BENCH_SECONDS")) {
    seconds = std::atof(env);
  }

  std::vector<simd::Level> levels = {simd::Level::kScalar};
  const int detected = static_cast<int>(simd::DetectedLevel());
  if (detected >= static_cast<int>(simd::Level::kSse2)) {
    levels.push_back(simd::Level::kSse2);
  }
  if (detected >= static_cast<int>(simd::Level::kAvx2)) {
    levels.push_back(simd::Level::kAvx2);
  }
  std::printf("[scan_kernel] detected level: %s\n",
              simd::LevelName(simd::DetectedLevel()));

  Rng rng(7);
  const size_t kLeafSizes[] = {256, 1024, 4096, 16384};
  const double kSelectivities[] = {0.01, 0.1, 0.5, 1.0};
  std::vector<Row> rows;
  // Smallest (best vector tier / scalar) speedup across the >= 4096-point
  // cells — the acceptance bar for the kernel rewrite.
  double min_speedup_large = 1e30;
  for (const size_t n : kLeafSizes) {
    const std::vector<Point> leaf = MakeLeaf(n, &rng);
    for (const double sel : kSelectivities) {
      double scalar_ns = 0.0;
      double best_vector_ns = 1e30;
      for (const simd::Level level : levels) {
        const Row row = Measure(level, leaf, sel, seconds);
        std::printf("[scan_kernel] n=%6zu sel=%4.2f %-6s %7.3f ns/point\n",
                    n, sel, row.name.c_str(), row.ns_per_point);
        if (level == simd::Level::kScalar) {
          scalar_ns = row.ns_per_point;
        } else if (row.ns_per_point < best_vector_ns) {
          best_vector_ns = row.ns_per_point;
        }
        rows.push_back(row);
      }
      if (n >= 4096 && levels.size() > 1 && best_vector_ns > 0) {
        const double speedup = scalar_ns / best_vector_ns;
        if (speedup < min_speedup_large) min_speedup_large = speedup;
      }
    }
  }
  if (levels.size() == 1) min_speedup_large = 0.0;  // scalar-only host

  int rc = WriteJson(json_path, rows, seconds, min_speedup_large);
  // The gate: on leaves >= 4096 points every cell's best vector tier must
  // beat scalar (with a small tolerance for timer jitter). Skipped on
  // hosts with no vector tier at all.
  if (levels.size() > 1 && min_speedup_large < 1.02) {
    std::fprintf(stderr,
                 "[scan_kernel] FAIL: vector kernel does not beat scalar on "
                 ">=4096-point leaves (min speedup %.3f)\n",
                 min_speedup_large);
    rc = 1;
  }
  return rc;
}

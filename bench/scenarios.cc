// Scenario-suite runner: executes named workload scenarios from
// bench/workloads/ against a live ServeLoop and records one
// BENCH_<scenario>.json per run ("wazi.bench.scenario/1" — the files CI
// validates with tools/check_bench_json.py and gates against committed
// baselines with tools/compare_bench_json.py).
//
//   bench_scenarios --list
//   bench_scenarios --all [--scale smoke|default|paper] [--seed N]
//                   [--seconds S] [--threads N] [--points N]
//                   [--index NAME] [--net] [--out-dir DIR]
//   bench_scenarios --scenario poi_lookup,ycsb_mix [...]
//
// Exit status: 0 iff every selected scenario's invariants passed (an
// emitted JSON with "passed": false also fails the process, so CI can
// gate on the exit code alone).

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

void PrintCatalog() {
  std::printf("%-18s %s\n", "scenario", "description");
  std::printf("%-18s %s\n", "--------", "-----------");
  for (const Scenario* s : AllScenarios()) {
    std::printf("%-18s %s\n", s->id().c_str(), s->description().c_str());
    std::printf("%-18s   mix:      %s\n", "", s->op_mix().c_str());
    std::printf("%-18s   stresses: %s\n", "", s->stresses().c_str());
  }
}

std::vector<std::string> SplitCsv(const char* arg) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = arg; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur.push_back(*p);
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

void PrintOutcome(const ScenarioOutcome& o) {
  std::printf("\n=== %s (%s, seed %llu, %zu points, %s) — %s\n",
              o.scenario.c_str(), o.config.scale.c_str(),
              static_cast<unsigned long long>(o.config.seed), o.points,
              o.transport.c_str(), o.passed() ? "PASS" : "FAIL");
  std::printf("  %-14s %10s %10s %9s %9s %9s %6s\n", "phase", "qps",
              "writes/s", "p50(us)", "p90(us)", "p99(us)", "hit%");
  for (const PhaseResult& p : o.phases) {
    std::printf("  %-14s %10.0f %10.0f %9.1f %9.1f %9.1f %5.1f%%\n",
                p.name.c_str(), p.qps, p.writes_per_s,
                static_cast<double>(p.p50_ns) / 1e3,
                static_cast<double>(p.p90_ns) / 1e3,
                static_cast<double>(p.p99_ns) / 1e3,
                p.cache_hit_rate * 100.0);
  }
  if (o.migrations > 0) {
    std::printf("  migrations=%lld (incremental=%lld) moved_points=%lld "
                "moved/carried=%lld/%lld epoch=%llu\n",
                static_cast<long long>(o.migrations),
                static_cast<long long>(o.incremental),
                static_cast<long long>(o.moved_points),
                static_cast<long long>(o.last_moved_shards),
                static_cast<long long>(o.last_carried_shards),
                static_cast<unsigned long long>(o.epoch));
  }
  std::printf("  invariant checks: %lld\n",
              static_cast<long long>(o.invariant_checks));
  for (const std::string& f : o.failures) {
    std::printf("  FAIL: %s\n", f.c_str());
  }
}

int Main(int argc, char** argv) {
  ScenarioConfig cfg;
  std::vector<std::string> selected;
  bool all = false;
  std::string out_dir = ".";
  int argi = 1;
  while (argi < argc) {
    if (std::strcmp(argv[argi], "--list") == 0) {
      PrintCatalog();
      return 0;
    }
    if (std::strcmp(argv[argi], "--all") == 0) {
      all = true;
      argi += 1;
      continue;
    }
    if (std::strcmp(argv[argi], "--net") == 0) {
      cfg.net = true;
      argi += 1;
      continue;
    }
    if (argi + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' is missing its value\n", argv[argi]);
      return 2;
    }
    if (std::strcmp(argv[argi], "--scenario") == 0) {
      for (std::string& id : SplitCsv(argv[argi + 1])) {
        selected.push_back(std::move(id));
      }
    } else if (std::strcmp(argv[argi], "--scale") == 0) {
      cfg.scale = argv[argi + 1];
      if (cfg.scale != "smoke" && cfg.scale != "default" &&
          cfg.scale != "paper") {
        std::fprintf(stderr, "--scale must be smoke|default|paper\n");
        return 2;
      }
    } else if (std::strcmp(argv[argi], "--seed") == 0) {
      cfg.seed = std::strtoull(argv[argi + 1], nullptr, 10);
    } else if (std::strcmp(argv[argi], "--seconds") == 0) {
      cfg.seconds = std::strtod(argv[argi + 1], nullptr);
    } else if (std::strcmp(argv[argi], "--threads") == 0) {
      cfg.threads = std::atoi(argv[argi + 1]);
    } else if (std::strcmp(argv[argi], "--points") == 0) {
      cfg.n_points = std::strtoull(argv[argi + 1], nullptr, 10);
    } else if (std::strcmp(argv[argi], "--index") == 0) {
      cfg.index = argv[argi + 1];
    } else if (std::strcmp(argv[argi], "--out-dir") == 0) {
      out_dir = argv[argi + 1];
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (known: --list --all --scenario "
                   "--scale --seed --seconds --threads --points --index "
                   "--net --out-dir)\n",
                   argv[argi]);
      return 2;
    }
    argi += 2;
  }

  std::vector<Scenario*> to_run;
  if (all) {
    to_run = AllScenarios();
  } else if (!selected.empty()) {
    for (const std::string& id : selected) {
      Scenario* s = FindScenario(id);
      if (s == nullptr) {
        std::fprintf(stderr,
                     "unknown scenario '%s' (try --list)\n", id.c_str());
        return 2;
      }
      to_run.push_back(s);
    }
  } else {
    std::fprintf(stderr,
                 "nothing selected: pass --all, --scenario <ids>, or "
                 "--list\n");
    return 2;
  }

  int failed = 0;
  for (const Scenario* s : to_run) {
    std::printf("running %s (%s scale)...\n", s->id().c_str(),
                cfg.scale.c_str());
    std::fflush(stdout);
    const ScenarioOutcome outcome = s->Run(cfg);
    PrintOutcome(outcome);
    const std::string path = out_dir + "/BENCH_" + s->id() + ".json";
    if (!WriteScenarioJson(outcome, path)) {
      std::fprintf(stderr, "failed to write %s\n", path.c_str());
      return 1;
    }
    std::printf("  wrote %s\n", path.c_str());
    if (!outcome.passed()) ++failed;
  }
  if (failed > 0) {
    std::printf("\n%d of %zu scenarios FAILED\n", failed, to_run.size());
    return 1;
  }
  std::printf("\nall %zu scenarios passed\n", to_run.size());
  return 0;
}

}  // namespace
}  // namespace wazi::bench::workloads

int main(int argc, char** argv) {
  return wazi::bench::workloads::Main(argc, argv);
}

// Serving-engine throughput: QPS and latency percentiles versus client
// thread count, read-only and mixed 95% read / 5% write, over the
// snapshot-swapped index (src/serve/).
//
// Client threads drive ServeLoop::Range directly (the serving model:
// every client thread executes on the live snapshot, wait-free); writes
// are enqueued to the background writer, which applies them in batches
// ending in snapshot swaps. Read-only QPS should scale with threads up
// to the hardware's core count — the printed hw_threads column tells you
// how far that is on the current machine.
//
//   WAZI_SCALE=smoke|default|paper   (50k / 1M / 8M points)
//   WAZI_SERVE_INDEX=wazi|base|flood|...   (default wazi)
//   WAZI_SERVE_SECONDS=<per-cell duration, default 1.5 (smoke 0.3)>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "common/timer.h"
#include "serve/client_driver.h"
#include "serve/serve_loop.h"

namespace wazi::bench {
namespace {

using serve::ClientLoadOptions;
using serve::ClientLoadResult;
using serve::RunClientLoad;
using serve::ServeLoop;
using serve::ServeOptions;

struct CellResult {
  double qps = 0.0;
  double writes_per_s = 0.0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
};

CellResult RunCell(ServeLoop& loop, const Workload& workload, int threads,
                   int write_pct, double seconds) {
  ClientLoadOptions copts;
  copts.threads = threads;
  copts.write_pct = write_pct;
  copts.seconds = seconds;
  const ClientLoadResult load = RunClientLoad(loop, workload, copts);
  CellResult cell;
  cell.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
  cell.writes_per_s =
      static_cast<double>(load.writes) / load.elapsed_seconds;
  cell.p50_ns = load.latencies.PercentileNs(50);
  cell.p90_ns = load.latencies.PercentileNs(90);
  cell.p99_ns = load.latencies.PercentileNs(99);
  return cell;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

int Main() {
  const Scale& scale = CurrentScale();
  const size_t n = scale.name == "smoke"    ? 50000
                   : scale.name == "paper" ? 8000000
                                           : 1000000;
  const char* index_env = std::getenv("WAZI_SERVE_INDEX");
  const std::string index_name = index_env != nullptr ? index_env : "wazi";
  const char* sec_env = std::getenv("WAZI_SERVE_SECONDS");
  const double seconds = sec_env != nullptr  ? std::strtod(sec_env, nullptr)
                         : scale.name == "smoke" ? 0.3
                                                 : 1.5;

  const Dataset& data = GetDataset(Region::kCaliNev, n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, 0.000256);

  std::fprintf(stderr, "[serve] building 2x %s over %zu points...\n",
               index_name.c_str(), data.size());
  Timer build_timer;
  ServeOptions opts;
  opts.num_threads = 1;      // client threads execute queries themselves
  opts.auto_rebuild = false; // keep cells comparable
  ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                 workload, BuildOptions{}, opts);
  std::fprintf(stderr, "[serve] built in %.1fs; hw_threads=%u\n",
               build_timer.ElapsedSeconds(),
               std::thread::hardware_concurrency());

  const std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<std::vector<std::string>> rows;
  double read_qps_1 = 0.0, read_qps_8 = 0.0;
  for (const int write_pct : {0, 5}) {
    const std::string mode = write_pct == 0 ? "read-only" : "95r/5w";
    for (const int threads : thread_counts) {
      const CellResult cell =
          RunCell(loop, workload, threads, write_pct, seconds);
      if (write_pct == 0 && threads == 1) read_qps_1 = cell.qps;
      if (write_pct == 0 && threads == 8) read_qps_8 = cell.qps;
      rows.push_back({mode, std::to_string(threads), FormatQps(cell.qps),
                      FormatNs(static_cast<double>(cell.p50_ns)),
                      FormatNs(static_cast<double>(cell.p90_ns)),
                      FormatNs(static_cast<double>(cell.p99_ns)),
                      FormatQps(cell.writes_per_s)});
      std::fprintf(stderr, "[serve] %s threads=%d done (%.0f q/s)\n",
                   mode.c_str(), threads, cell.qps);
    }
  }

  char title[160];
  std::snprintf(title, sizeof(title),
                "Serving throughput (%s, %zu pts, sel 0.0256%%, %.1fs/cell, "
                "%u hw threads)",
                index_name.c_str(), data.size(), seconds,
                std::thread::hardware_concurrency());
  PrintTable(title, {"mode", "threads", "QPS", "p50", "p90", "p99", "w/s"},
             rows);
  if (read_qps_1 > 0.0) {
    std::printf("\nread-only scaling 1 -> 8 threads: %.2fx\n",
                read_qps_8 / read_qps_1);
  }
  return 0;
}

}  // namespace
}  // namespace wazi::bench

int main() { return wazi::bench::Main(); }

// Serving-engine throughput: QPS and latency percentiles versus client
// thread count AND shard count, read-only and mixed 95% read / 5% write,
// over the sharded snapshot-swapped index (src/serve/).
//
// Client threads drive ServeLoop::Range directly (the serving model:
// every client thread executes on the live per-shard snapshots,
// wait-free); writes are routed to the owning shard's background writer,
// which applies them in batches ending in per-shard snapshot swaps.
// Read-only QPS should scale with threads up to the hardware's core count,
// and the mixed-workload QPS should scale with shards: each shard has its
// own writer, so update application no longer serializes behind one
// thread, and each sub-query runs on an index 1/shards the size.
//
//   bench_serve_throughput [--shards 1,4] [--threads 1,2,4,8]
//                          [--cache-mb 0,64] [--admission-window 0,200]
//                          [--json <path>]
//   bench_serve_throughput --repartition 4 [--incremental 0|1]
//                          [--json <path>]
//   bench_serve_throughput --net [--threads 1,2,4,8] [--json <path>]
//
// --json <path> additionally writes a machine-readable snapshot of the
// run (schema "wazi.bench.serve/1": per-cell QPS + latency percentiles +
// cache hit rate, per-arm migration counters in --repartition mode, and
// the final serve metrics registry) — the file CI publishes as
// BENCH_serve_<scenario>.json and validates with
// tools/check_bench_json.py.
//
// --cache-mb N[,M] adds the snapshot-stamped result cache as a sweep
// axis (capacity per arm, 0 = off) and a `hit%` column; whenever any arm
// has a cache, reads are drawn SKEWED (90% of queries from the hottest
// 10% of rectangles, both arms alike) so the cache sees a hot set, and a
// 0-capacity arm is prepended if missing so the summary can print the
// cache-off -> cache-on QPS ratio. --admission-window US[,US2] sweeps
// the batched-admission axis: arms with a window > 0 drive reads through
// ServeLoop::SubmitQuery futures (8 in flight per client) so concurrent
// queries coalesce into snapshot-shared batches; 0 is the direct path.
//
// --repartition N replaces the sweep with a skew-shift experiment on N
// shards: a mixed-load phase on the build-time workload, then a phase
// whose queries AND inserts collapse into one corner of the domain,
// run once with the topology frozen and once with the repartition
// monitor enabled (live router swap + data migration mid-phase). A
// validator thread checks sentinel points through both phases; the
// run must complete with zero query errors.
//
// --net replaces the sweep with a wire-vs-embedded experiment: one
// ServeLoop is built, a WireServer (src/net/) listens on an ephemeral
// loopback port, and for each client thread count the SAME read-only
// workload runs twice — once in-process through the admission pipeline
// (SubmitQuery futures, 8 in flight per client) and once over TCP
// through pipelined WireClients (same depth). Both arms exercise
// identical batching, so QPS and latency deltas isolate the wire:
// framing, syscalls, loopback, and the server's reader/writer threads.
// A 95r/5w pass rides along. Cells carry transport "embedded" | "wire"
// in the JSON (CI publishes it as BENCH_serve_net.json).
//
// --incremental 1 (with --repartition N) adds a THIRD arm that allows
// per-cell migrations: only shards whose cut boundaries move are
// captured and rebuilt, the rest are carried live. The table reports
// migrations, incremental migrations, last moved/carried shards and
// total moved points per arm; the run fails unless the incremental arm
// migrated strictly fewer points per migration than the full-rebuild
// arm (and, as always, zero query errors). Prime shard counts (rank
// stripes, e.g. --repartition 5) show carrying best: a corner skew
// in a rows x cols grid can force a row re-cut that touches every cell.
//
//   WAZI_SCALE=smoke|default|paper   (50k / 1M / 8M points)
//   WAZI_SERVE_INDEX=wazi|base|flood|...   (default wazi)
//   WAZI_SERVE_SECONDS=<per-cell duration, default 1.5 (smoke 0.3)>
//   WAZI_SERVE_SHARDS=<default for --shards>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "common/timer.h"
#include "net/wire_load.h"
#include "net/wire_server.h"
#include "obs/exporters.h"
#include "obs/metrics.h"
#include "serve/client_driver.h"
#include "serve/serve_loop.h"

namespace wazi::bench {
namespace {

using serve::ClientLoadOptions;
using serve::ClientLoadResult;
using serve::RunClientLoad;
using serve::ServeLoop;
using serve::ServeOptions;

struct CellResult {
  double qps = 0.0;
  double writes_per_s = 0.0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  double hit_rate = 0.0;  // result-cache hit rate within this cell
};

CellResult RunCell(ServeLoop& loop, const Workload& workload, int threads,
                   int write_pct, double seconds, bool skewed_reads,
                   bool via_admission) {
  ClientLoadOptions copts;
  copts.threads = threads;
  copts.write_pct = write_pct;
  copts.seconds = seconds;
  if (skewed_reads) {
    copts.hot_fraction = 0.1;
    copts.hot_pct = 90;
  }
  if (via_admission) copts.admission_depth = 8;
  const serve::ResultCacheStats before = loop.cache_stats();
  const ClientLoadResult load = RunClientLoad(loop, workload, copts);
  const serve::ResultCacheStats after = loop.cache_stats();
  CellResult cell;
  cell.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
  cell.writes_per_s =
      static_cast<double>(load.writes) / load.elapsed_seconds;
  cell.p50_ns = load.latencies.PercentileNs(50);
  cell.p90_ns = load.latencies.PercentileNs(90);
  cell.p99_ns = load.latencies.PercentileNs(99);
  const int64_t lookups = after.lookups() - before.lookups();
  cell.hit_rate = lookups == 0 ? 0.0
                               : static_cast<double>(after.hits - before.hits) /
                                     static_cast<double>(lookups);
  return cell;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

// Affinely maps `r` from `from` into `to` (the skew-shift transform that
// collapses the base workload into a corner of the domain).
Rect MapRect(const Rect& r, const Rect& from, const Rect& to) {
  const double sx = (to.max_x - to.min_x) / (from.max_x - from.min_x);
  const double sy = (to.max_y - to.min_y) / (from.max_y - from.min_y);
  return Rect::Of(to.min_x + (r.min_x - from.min_x) * sx,
                  to.min_y + (r.min_y - from.min_y) * sy,
                  to.min_x + (r.max_x - from.min_x) * sx,
                  to.min_y + (r.max_y - from.min_y) * sy);
}

// Skew-shift phase experiment: pre-shift mixed load on the build-time
// workload, then queries + inserts collapsed into `corner`, with the
// repartition monitor on or off. A validator thread continuously checks
// that a grid of sentinel points stays visible to point lookups AND to
// range queries centred on them — a lost or double-routed point during a
// live migration would show up as an error.
struct RepartitionArmResult {
  double qps_pre = 0.0;
  double qps_post = 0.0;
  int64_t p99_post_ns = 0;
  int64_t repartitions = 0;
  int64_t incremental = 0;       // migrations that took the per-cell path
  int64_t moved_shards = 0;      // last migration's rebuilt shards
  int64_t carried_shards = 0;    // last migration's carried shards
  int64_t moved_points = 0;      // total points captured+rebuilt
  uint64_t epoch = 0;
  int64_t errors = 0;
};

RepartitionArmResult RunRepartitionArm(const std::string& index_name,
                                       const Dataset& data,
                                       const Workload& workload,
                                       int shards, double seconds,
                                       bool adaptive, bool incremental,
                                       obs::MetricsSnapshot* metrics_out) {
  ServeOptions opts;
  opts.num_shards = shards;
  opts.num_threads = 1;
  opts.auto_rebuild = false;  // isolate the topology effect
  opts.writer_coalesce_ms = 8;
  opts.repartition.enabled = adaptive;
  opts.repartition.poll_ms = 100;
  opts.repartition.max_imbalance = 1.4;
  opts.repartition.patience = 2;
  opts.repartition.min_queries = 256;
  opts.repartition.min_interval_ms = 1000;
  opts.repartition.incremental = incremental;
  std::fprintf(stderr, "[serve] building %d shard(s) of %s (%s)...\n",
               shards, index_name.c_str(),
               !adaptive      ? "repartition off"
               : incremental ? "repartition on, incremental"
                             : "repartition on, full rebuilds");
  ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                 workload, BuildOptions{}, opts);

  // Sentinels: a grid across the domain, inserted up front. They are
  // never removed, so every lookup and every centred range query must
  // find them for the rest of the run, across any number of migrations.
  std::vector<Point> sentinels;
  const Rect& b = data.bounds;
  for (int gx = 0; gx < 8; ++gx) {
    for (int gy = 0; gy < 8; ++gy) {
      Point p;
      p.x = b.min_x + (b.max_x - b.min_x) * (0.5 + gx) / 8.0;
      p.y = b.min_y + (b.max_y - b.min_y) * (0.5 + gy) / 8.0;
      p.id = 900000000 + gx * 8 + gy;
      sentinels.push_back(p);
      loop.SubmitInsert(p);
    }
  }
  loop.Flush();

  std::atomic<int64_t> errors{0};
  std::atomic<bool> stop_validator{false};
  std::thread validator([&] {
    const double rx = (b.max_x - b.min_x) * 0.01;
    const double ry = (b.max_y - b.min_y) * 0.01;
    size_t i = 0;
    while (!stop_validator.load(std::memory_order_relaxed)) {
      const Point& p = sentinels[i++ % sentinels.size()];
      if (!loop.PointLookup(p)) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      const serve::QueryResult res =
          loop.Range(Rect::Of(p.x - rx, p.y - ry, p.x + rx, p.y + ry));
      bool seen = false;
      for (const Point& hit : res.hits) {
        if (hit.id == p.id) seen = true;
      }
      if (!seen) errors.fetch_add(1, std::memory_order_relaxed);
      // Throttled: the validator is a correctness probe, not load — at
      // full tilt its domain-uniform queries would both perturb the
      // measured QPS and dilute the skew signal the monitor watches.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  RepartitionArmResult arm;
  {
    ClientLoadOptions copts;
    copts.threads = 2;
    copts.write_pct = 5;
    copts.seconds = seconds;
    const ClientLoadResult pre = RunClientLoad(loop, workload, copts);
    arm.qps_pre = static_cast<double>(pre.queries) / pre.elapsed_seconds;
  }

  // The shift: everything lands in the lower-left ~4% of the domain.
  const Rect corner =
      Rect::Of(b.min_x, b.min_y, b.min_x + (b.max_x - b.min_x) * 0.2,
               b.min_y + (b.max_y - b.min_y) * 0.2);
  Workload skewed;
  skewed.name = workload.name + "/skewed";
  skewed.selectivity = workload.selectivity;
  skewed.queries.reserve(workload.queries.size());
  for (const Rect& q : workload.queries) {
    skewed.queries.push_back(MapRect(q, b, corner));
  }
  {
    ClientLoadOptions copts;
    copts.threads = 2;
    copts.write_pct = 20;  // heavy corner inserts skew the item counts too
    copts.seconds = seconds * 2;
    copts.insert_region = corner;
    const ClientLoadResult post = RunClientLoad(loop, skewed, copts);
    arm.qps_post = static_cast<double>(post.queries) / post.elapsed_seconds;
    arm.p99_post_ns = post.latencies.PercentileNs(99);
  }

  // Grace window for the adaptive arm: on a loaded box the monitor's
  // trigger may land at the tail of the phase and the (synchronous)
  // migration complete just after it — keep validating sentinels while a
  // pending swap finishes instead of misreporting it as never happening.
  if (adaptive) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (loop.repartitions() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  stop_validator.store(true);
  validator.join();
  const serve::MigrationStats mig = loop.migration_stats();
  std::fprintf(stderr,
               "[serve] %s arm done: imbalance %.2f, epoch %llu, "
               "%lld/%lld incremental, %lld pts moved\n",
               adaptive ? "adaptive" : "frozen", loop.imbalance(),
               static_cast<unsigned long long>(loop.epoch()),
               static_cast<long long>(mig.incremental),
               static_cast<long long>(mig.migrations),
               static_cast<long long>(mig.total_moved_points));
  arm.repartitions = loop.repartitions();
  arm.incremental = mig.incremental;
  arm.moved_shards = mig.last_moved_shards;
  arm.carried_shards = mig.last_carried_shards;
  arm.moved_points = mig.total_moved_points;
  arm.epoch = loop.epoch();
  arm.errors = errors.load();
  if (metrics_out != nullptr) *metrics_out = loop.metrics().Snapshot();
  return arm;
}

// Mean points migrated per completed migration (0 with none).
double MovedPointsPerMigration(const RepartitionArmResult& arm) {
  return arm.repartitions == 0 ? 0.0
                               : static_cast<double>(arm.moved_points) /
                                     static_cast<double>(arm.repartitions);
}

// One sweep cell plus the coordinates it ran at (the JSON row).
struct JsonCell {
  int shards = 0;
  int cache_mb = 0;
  int adm_window = 0;
  int write_pct = 0;
  int threads = 0;
  CellResult cell;
  // How the clients reached the engine: in-process ("embedded") or over
  // the TCP wire protocol ("wire", --net mode only).
  std::string transport = "embedded";
};

void WriteCellJson(obs::JsonWriter& w, const JsonCell& jc) {
  w.BeginObject();
  w.Key("transport").String(jc.transport);
  w.Key("shards").Int(jc.shards);
  w.Key("cache_mb").Int(jc.cache_mb);
  w.Key("admission_window_us").Int(jc.adm_window);
  w.Key("write_pct").Int(jc.write_pct);
  w.Key("threads").Int(jc.threads);
  w.Key("qps").Double(jc.cell.qps);
  w.Key("writes_per_s").Double(jc.cell.writes_per_s);
  w.Key("p50_ns").Int(jc.cell.p50_ns);
  w.Key("p90_ns").Int(jc.cell.p90_ns);
  w.Key("p99_ns").Int(jc.cell.p99_ns);
  w.Key("cache_hit_rate").Double(jc.cell.hit_rate);
  w.EndObject();
}

// The machine-readable run snapshot CI publishes and validates
// (tools/check_bench_json.py): header, per-cell results and/or per-arm
// migration outcomes, and the final serve metrics registry.
int WriteBenchJson(const char* path, const std::string& index_name,
                   size_t points, double seconds,
                   const std::vector<JsonCell>& cells,
                   const std::vector<RepartitionArmResult>* arms,
                   const obs::MetricsSnapshot* metrics) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("wazi.bench.serve/1");
  w.Key("bench").String("serve_throughput");
  w.Key("scenario").String(CurrentScale().name);
  w.Key("index").String(index_name);
  w.Key("points").UInt(points);
  w.Key("seconds_per_cell").Double(seconds);
  w.Key("cells").BeginArray();
  for (const JsonCell& jc : cells) WriteCellJson(w, jc);
  w.EndArray();
  if (arms != nullptr) {
    w.Key("repartition_arms").BeginArray();
    static const char* kArmLabels[] = {"off", "full", "incr"};
    for (size_t i = 0; i < arms->size(); ++i) {
      const RepartitionArmResult& arm = (*arms)[i];
      w.BeginObject();
      w.Key("arm").String(i < 3 ? kArmLabels[i] : "extra");
      w.Key("qps_pre").Double(arm.qps_pre);
      w.Key("qps_post").Double(arm.qps_post);
      w.Key("p99_post_ns").Int(arm.p99_post_ns);
      w.Key("migrations").Int(arm.repartitions);
      w.Key("incremental").Int(arm.incremental);
      w.Key("last_moved_shards").Int(arm.moved_shards);
      w.Key("last_carried_shards").Int(arm.carried_shards);
      w.Key("moved_points").Int(arm.moved_points);
      w.Key("epoch").UInt(arm.epoch);
      w.Key("errors").Int(arm.errors);
      w.EndObject();
    }
    w.EndArray();
  }
  if (metrics != nullptr) {
    // The full registry of the last serve loop: migrations, stall
    // copies, cache counters, latency histogram — everything the serve
    // stack publishes, in the exporter's standard layout.
    w.Key("metrics").Raw(obs::ToJson(*metrics));
  }
  w.EndObject();
  if (!obs::WriteFile(path, w.str() + "\n")) {
    std::fprintf(stderr, "[serve] cannot write %s\n", path);
    return 1;
  }
  std::fprintf(stderr, "[serve] wrote %s\n", path);
  return 0;
}

// Converts a client-load run into the common cell shape (no cache in
// net mode, so hit rate stays 0).
CellResult CellFromLoad(const ClientLoadResult& load) {
  CellResult cell;
  cell.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
  cell.writes_per_s =
      static_cast<double>(load.writes) / load.elapsed_seconds;
  cell.p50_ns = load.latencies.PercentileNs(50);
  cell.p90_ns = load.latencies.PercentileNs(90);
  cell.p99_ns = load.latencies.PercentileNs(99);
  return cell;
}

// Wire-vs-embedded: the same workload, thread counts and pipelining
// depth, once through in-process admission futures and once through TCP
// WireClients against a WireServer on loopback. Both arms batch through
// SubmitBatch with 8 requests in flight per client, so the reported
// ratio charges only the wire: framing, syscalls, loopback transit and
// the server's per-connection reader/writer threads.
int RunNetExperiment(const std::string& index_name, const Dataset& data,
                     const Workload& workload, int shards,
                     const std::vector<int>& thread_counts, double seconds,
                     const char* json_path) {
  // Fixed admission window for both arms (the --net comparison is not an
  // admission sweep; it just needs batching on and identical).
  constexpr int kWindowUs = 100;
  std::fprintf(stderr,
               "[serve] building %d shard(s) of %s over %zu points "
               "(net mode)...\n",
               shards, index_name.c_str(), data.size());
  Timer build_timer;
  ServeOptions opts;
  opts.num_shards = shards;
  opts.num_threads = 4;
  opts.auto_rebuild = false;
  opts.writer_coalesce_ms = 8;
  opts.admission.window_us = kWindowUs;
  ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                 workload, BuildOptions{}, opts);
  std::fprintf(stderr, "[serve] built in %.1fs; hw_threads=%u\n",
               build_timer.ElapsedSeconds(),
               std::thread::hardware_concurrency());

  net::WireServer server(&loop);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "[serve] wire server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "[serve] wire server on 127.0.0.1:%u\n",
               static_cast<unsigned>(server.port()));

  std::vector<std::vector<std::string>> rows;
  std::vector<JsonCell> json_cells;
  const int ref_threads = thread_counts.back();
  double emb_ref_qps = 0.0, wire_ref_qps = 0.0;
  int64_t emb_ref_p50 = 0, wire_ref_p50 = 0;
  int64_t emb_ref_p99 = 0, wire_ref_p99 = 0;
  for (const int write_pct : {0, 5}) {
    const std::string mode = write_pct == 0 ? "read-only" : "95r/5w";
    for (const int threads : thread_counts) {
      const CellResult emb =
          RunCell(loop, workload, threads, write_pct, seconds,
                  /*skewed_reads=*/false, /*via_admission=*/true);
      ClientLoadOptions copts;
      copts.threads = threads;
      copts.write_pct = write_pct;
      copts.seconds = seconds;
      copts.admission_depth = 8;  // same pipelining depth as the embedded arm
      const ClientLoadResult wire_load = net::RunWireClientLoad(
          "127.0.0.1", server.port(), workload, copts);
      if (wire_load.elapsed_seconds <= 0.0 || wire_load.queries == 0) {
        std::fprintf(stderr,
                     "[serve] wire arm produced no load (connect failed?)\n");
        return 1;
      }
      const CellResult wire = CellFromLoad(wire_load);
      if (write_pct == 0 && threads == ref_threads) {
        emb_ref_qps = emb.qps;
        wire_ref_qps = wire.qps;
        emb_ref_p50 = emb.p50_ns;
        wire_ref_p50 = wire.p50_ns;
        emb_ref_p99 = emb.p99_ns;
        wire_ref_p99 = wire.p99_ns;
      }
      for (const auto* arm : {&emb, &wire}) {
        const bool is_wire = arm == &wire;
        rows.push_back({is_wire ? "wire" : "embedded", mode,
                        std::to_string(threads), FormatQps(arm->qps),
                        FormatNs(static_cast<double>(arm->p50_ns)),
                        FormatNs(static_cast<double>(arm->p90_ns)),
                        FormatNs(static_cast<double>(arm->p99_ns)),
                        FormatQps(arm->writes_per_s)});
        if (json_path != nullptr) {
          json_cells.push_back(JsonCell{shards, /*cache_mb=*/0, kWindowUs,
                                        write_pct, threads, *arm,
                                        is_wire ? "wire" : "embedded"});
        }
      }
      std::fprintf(stderr,
                   "[serve] net %s threads=%d: embedded %.0f q/s, wire "
                   "%.0f q/s\n",
                   mode.c_str(), threads, emb.qps, wire.qps);
    }
  }
  server.Stop();

  char title[200];
  std::snprintf(title, sizeof(title),
                "Wire vs embedded serving (%s, %zu pts, %d shard(s), "
                "admission window %dus, depth 8, %.1fs/cell)",
                index_name.c_str(), data.size(), shards, kWindowUs, seconds);
  PrintTable(title, {"transport", "mode", "threads", "QPS", "p50", "p90",
                     "p99", "w/s"},
             rows);
  if (emb_ref_qps > 0.0) {
    std::printf(
        "\nread-only at %d threads: wire carries %.0f%% of embedded QPS "
        "(%.2fx overhead); p50 +%s, p99 +%s\n",
        ref_threads, 100.0 * wire_ref_qps / emb_ref_qps,
        emb_ref_qps / wire_ref_qps,
        FormatNs(static_cast<double>(wire_ref_p50 - emb_ref_p50)).c_str(),
        FormatNs(static_cast<double>(wire_ref_p99 - emb_ref_p99)).c_str());
  }
  if (json_path != nullptr) {
    const obs::MetricsSnapshot metrics = loop.metrics().Snapshot();
    return WriteBenchJson(json_path, index_name, data.size(), seconds,
                          json_cells, /*arms=*/nullptr, &metrics);
  }
  return 0;
}

int RunRepartitionExperiment(const std::string& index_name,
                             const Dataset& data, const Workload& workload,
                             int shards, double seconds,
                             bool with_incremental, const char* json_path) {
  std::vector<std::vector<std::string>> rows;
  // Arms: frozen topology, adaptive with full rebuilds, and (with
  // --incremental 1) adaptive with per-cell migrations.
  struct ArmSpec {
    const char* label;
    bool adaptive;
    bool incremental;
  };
  std::vector<ArmSpec> specs = {{"off", false, false},
                                {"full", true, false}};
  if (with_incremental) specs.push_back({"incr", true, true});
  std::vector<RepartitionArmResult> arms;
  obs::MetricsSnapshot last_metrics;
  for (const ArmSpec& spec : specs) {
    const RepartitionArmResult arm =
        RunRepartitionArm(index_name, data, workload, shards, seconds,
                          spec.adaptive, spec.incremental, &last_metrics);
    arms.push_back(arm);
    char moved[48];
    std::snprintf(moved, sizeof(moved), "%lld/%lld",
                  static_cast<long long>(arm.moved_shards),
                  static_cast<long long>(arm.carried_shards));
    rows.push_back({spec.label, FormatQps(arm.qps_pre),
                    FormatQps(arm.qps_post),
                    FormatNs(static_cast<double>(arm.p99_post_ns)),
                    std::to_string(arm.repartitions),
                    std::to_string(arm.incremental), moved,
                    std::to_string(arm.moved_points),
                    std::to_string(arm.errors)});
  }
  char title[200];
  std::snprintf(title, sizeof(title),
                "Skew-shift with live repartitioning (%s, %zu pts, %d "
                "shards, %.1fs pre / %.1fs post)",
                index_name.c_str(), data.size(), shards, seconds,
                seconds * 2);
  PrintTable(title,
             {"repart", "QPS pre", "QPS post", "p99 post", "migr", "incr",
              "mvd/carr", "moved pts", "errors"},
             rows);
  const RepartitionArmResult& frozen = arms[0];
  const RepartitionArmResult& full = arms[1];
  if (frozen.qps_post > 0.0) {
    std::printf("\npost-shift QPS, repartition off -> on: %.2fx "
                "(%lld live migration(s), %lld query errors)\n",
                full.qps_post / frozen.qps_post,
                static_cast<long long>(full.repartitions),
                static_cast<long long>(full.errors + frozen.errors));
  }
  int64_t total_errors = 0;
  for (const RepartitionArmResult& arm : arms) total_errors += arm.errors;
  bool ok = total_errors == 0 && full.repartitions >= 1;
  const char* failure = !ok ? (full.repartitions < 1
                                   ? "no migration triggered"
                                   : "sentinel query errors")
                            : nullptr;
  if (with_incremental) {
    const RepartitionArmResult& incr = arms[2];
    const double full_ppm = MovedPointsPerMigration(full);
    const double incr_ppm = MovedPointsPerMigration(incr);
    std::printf(
        "moved points per migration, full -> incremental: %.0f -> %.0f "
        "(%.2fx fewer; %lld of %lld migrations took the per-cell path)\n",
        full_ppm, incr_ppm,
        incr_ppm > 0.0 ? full_ppm / incr_ppm : 0.0,
        static_cast<long long>(incr.incremental),
        static_cast<long long>(incr.repartitions));
    if (ok && incr.repartitions < 1) {
      ok = false;
      failure = "incremental arm never migrated";
    } else if (ok && incr.incremental < 1) {
      ok = false;
      failure = "incremental arm fell back to full rebuilds only";
    } else if (ok && incr_ppm >= full_ppm) {
      ok = false;
      failure = "incremental arm did not move fewer points per migration";
    }
  }
  if (!ok) std::fprintf(stderr, "[serve] FAILED: %s\n", failure);
  if (json_path != nullptr &&
      WriteBenchJson(json_path, index_name, data.size(), seconds,
                     /*cells=*/{}, &arms, &last_metrics) != 0) {
    return 1;
  }
  return ok ? 0 : 1;
}

// "1,4" -> {1, 4}. Exits on malformed input or a value below `min_v`.
std::vector<int> ParseIntList(const char* arg, const char* flag,
                              int min_v = 1) {
  std::vector<int> values;
  const char* p = arg;
  char* end = nullptr;
  while (*p != '\0') {
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < min_v) {
      std::fprintf(stderr, "%s wants a comma-separated list of ints >= %d\n",
                   flag, min_v);
      std::exit(2);
    }
    values.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (values.empty()) {
    std::fprintf(stderr, "%s wants at least one value\n", flag);
    std::exit(2);
  }
  return values;
}

int Main(int argc, char** argv) {
  const Scale& scale = CurrentScale();
  const size_t n = scale.name == "smoke"    ? 50000
                   : scale.name == "paper" ? 8000000
                                           : 1000000;
  const char* index_env = std::getenv("WAZI_SERVE_INDEX");
  const std::string index_name = index_env != nullptr ? index_env : "wazi";
  const char* sec_env = std::getenv("WAZI_SERVE_SECONDS");
  const double seconds = sec_env != nullptr  ? std::strtod(sec_env, nullptr)
                         : scale.name == "smoke" ? 0.3
                                                 : 1.5;

  const char* shards_env = std::getenv("WAZI_SERVE_SHARDS");
  std::vector<int> shard_counts =
      ParseIntList(shards_env != nullptr ? shards_env : "1,4", "--shards");
  std::vector<int> thread_counts = {1, 2, 4, 8};
  std::vector<int> cache_mbs = {0};
  std::vector<int> adm_windows = {0};
  int repartition_shards = 0;
  bool incremental_arm = false;
  bool net_mode = false;
  const char* json_path = nullptr;
  int argi = 1;
  while (argi < argc) {
    // --net is the one valueless flag; everything else is a --flag value
    // pair.
    if (std::strcmp(argv[argi], "--net") == 0) {
      net_mode = true;
      argi += 1;
      continue;
    }
    if (argi + 1 >= argc) {
      std::fprintf(stderr, "flag '%s' is missing its value\n", argv[argi]);
      return 2;
    }
    if (std::strcmp(argv[argi], "--shards") == 0) {
      shard_counts = ParseIntList(argv[argi + 1], "--shards");
    } else if (std::strcmp(argv[argi], "--threads") == 0) {
      thread_counts = ParseIntList(argv[argi + 1], "--threads");
    } else if (std::strcmp(argv[argi], "--cache-mb") == 0) {
      cache_mbs = ParseIntList(argv[argi + 1], "--cache-mb", /*min_v=*/0);
    } else if (std::strcmp(argv[argi], "--admission-window") == 0) {
      adm_windows =
          ParseIntList(argv[argi + 1], "--admission-window", /*min_v=*/0);
    } else if (std::strcmp(argv[argi], "--repartition") == 0) {
      repartition_shards = ParseIntList(argv[argi + 1], "--repartition")[0];
    } else if (std::strcmp(argv[argi], "--incremental") == 0) {
      incremental_arm =
          ParseIntList(argv[argi + 1], "--incremental", /*min_v=*/0)[0] != 0;
    } else if (std::strcmp(argv[argi], "--json") == 0) {
      json_path = argv[argi + 1];
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (known: --shards --threads --cache-mb "
                   "--admission-window --repartition --incremental --net "
                   "--json)\n",
                   argv[argi]);
      return 2;
    }
    argi += 2;
  }
  // The cache/admission arms only mean something against an off baseline
  // under the SAME (skewed) read stream, and the summaries read the
  // baseline from front() and the strongest arm from back(): normalize
  // each axis to sorted-unique with the 0 arm always present whenever any
  // arm is on, regardless of the order the flag listed them in.
  const auto normalize_axis = [](std::vector<int>* values) {
    std::sort(values->begin(), values->end());
    values->erase(std::unique(values->begin(), values->end()),
                  values->end());
    const bool active = values->back() > 0;
    if (active && values->front() != 0) values->insert(values->begin(), 0);
    return active;
  };
  const bool cache_axis = normalize_axis(&cache_mbs);
  const bool admission_axis = normalize_axis(&adm_windows);

  const Dataset& data = GetDataset(Region::kCaliNev, n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, 0.000256);

  if (net_mode) {
    if (repartition_shards > 0) {
      std::fprintf(stderr, "--net and --repartition are exclusive\n");
      return 2;
    }
    return RunNetExperiment(index_name, data, workload, shard_counts.back(),
                            thread_counts, seconds, json_path);
  }
  if (repartition_shards > 0) {
    return RunRepartitionExperiment(index_name, data, workload,
                                    repartition_shards, seconds,
                                    incremental_arm, json_path);
  }
  if (incremental_arm) {
    std::fprintf(stderr,
                 "--incremental only applies with --repartition N\n");
    return 2;
  }

  std::vector<std::vector<std::string>> rows;
  std::vector<JsonCell> json_cells;
  obs::MetricsSnapshot last_metrics;
  double mixed_qps_by_shards_lo = 0.0, mixed_qps_by_shards_hi = 0.0;
  double read_qps_1 = 0.0, read_qps_8 = 0.0;
  double read_qps_cache_off = 0.0, read_qps_cache_on = 0.0;
  double read_hit_rate_on = 0.0;
  double read_qps_adm_off = 0.0, read_qps_adm_on = 0.0;
  const int mixed_ref_threads = thread_counts.back();
  for (const int shards : shard_counts) {
    for (const int cache_mb : cache_mbs) {
      for (const int adm_window : adm_windows) {
        std::fprintf(
            stderr,
            "[serve] building %d shard(s) of %s over %zu points "
            "(cache %d MB, admission window %d us)...\n",
            shards, index_name.c_str(), data.size(), cache_mb, adm_window);
        Timer build_timer;
        ServeOptions opts;
        opts.num_shards = shards;
        // Client threads execute queries themselves on the direct path;
        // when the admission axis is active EVERY arm gets the same
        // 4-worker pool (idle on direct arms), so the off -> on ratio
        // measures coalescing, not a pool-size change.
        opts.num_threads = admission_axis ? 4 : 1;
        opts.auto_rebuild = false; // keep cells comparable
        opts.writer_coalesce_ms = 8;
        opts.cache.capacity_bytes =
            static_cast<size_t>(cache_mb) * 1024 * 1024;
        opts.admission.window_us = adm_window;
        ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                       workload, BuildOptions{}, opts);
        std::fprintf(stderr, "[serve] built in %.1fs; hw_threads=%u\n",
                     build_timer.ElapsedSeconds(),
                     std::thread::hardware_concurrency());

        const bool reference_arm =
            cache_mb == cache_mbs.front() && adm_window == adm_windows.front();
        for (const int write_pct : {0, 5}) {
          const std::string mode = write_pct == 0 ? "read-only" : "95r/5w";
          for (const int threads : thread_counts) {
            const CellResult cell =
                RunCell(loop, workload, threads, write_pct, seconds,
                        /*skewed_reads=*/cache_axis,
                        /*via_admission=*/adm_window > 0);
            if (json_path != nullptr) {
              json_cells.push_back(JsonCell{shards, cache_mb, adm_window,
                                            write_pct, threads, cell});
            }
            if (reference_arm && shards == shard_counts.front() &&
                write_pct == 0) {
              if (threads == 1) read_qps_1 = cell.qps;
              if (threads == 8) read_qps_8 = cell.qps;
            }
            if (reference_arm && write_pct == 5 &&
                threads == mixed_ref_threads) {
              if (shards == shard_counts.front()) {
                mixed_qps_by_shards_lo = cell.qps;
              }
              if (shards == shard_counts.back()) {
                mixed_qps_by_shards_hi = cell.qps;
              }
            }
            // Cache summary: read-only cells of the first shard count at
            // the reference thread count, cache-off vs largest cache.
            if (shards == shard_counts.front() && write_pct == 0 &&
                threads == mixed_ref_threads &&
                adm_window == adm_windows.front()) {
              if (cache_mb == 0) read_qps_cache_off = cell.qps;
              if (cache_mb == cache_mbs.back()) {
                read_qps_cache_on = cell.qps;
                read_hit_rate_on = cell.hit_rate;
              }
            }
            // Admission summary: direct vs largest window, same slice.
            if (shards == shard_counts.front() && write_pct == 0 &&
                threads == mixed_ref_threads &&
                cache_mb == cache_mbs.front()) {
              if (adm_window == 0) read_qps_adm_off = cell.qps;
              if (adm_window == adm_windows.back()) {
                read_qps_adm_on = cell.qps;
              }
            }
            std::vector<std::string> row = {std::to_string(shards)};
            if (cache_axis) row.push_back(std::to_string(cache_mb) + "M");
            if (admission_axis) row.push_back(std::to_string(adm_window));
            row.insert(row.end(),
                       {mode, std::to_string(threads), FormatQps(cell.qps),
                        FormatNs(static_cast<double>(cell.p50_ns)),
                        FormatNs(static_cast<double>(cell.p90_ns)),
                        FormatNs(static_cast<double>(cell.p99_ns)),
                        FormatQps(cell.writes_per_s)});
            if (cache_axis) {
              char hit[16];
              std::snprintf(hit, sizeof(hit), "%.0f%%",
                            cell.hit_rate * 100.0);
              row.push_back(cache_mb == 0 ? "-" : hit);
            }
            rows.push_back(std::move(row));
            std::fprintf(
                stderr,
                "[serve] shards=%d cache=%dM admw=%d %s threads=%d done "
                "(%.0f q/s, hit %.0f%%)\n",
                shards, cache_mb, adm_window, mode.c_str(), threads, cell.qps,
                cell.hit_rate * 100.0);
          }
        }
        if (json_path != nullptr) last_metrics = loop.metrics().Snapshot();
      }
    }
  }

  char title[200];
  std::snprintf(title, sizeof(title),
                "Serving throughput (%s, %zu pts, sel 0.0256%%, %.1fs/cell, "
                "%u hw threads%s)",
                index_name.c_str(), data.size(), seconds,
                std::thread::hardware_concurrency(),
                cache_axis ? ", skewed reads: 90% in hottest 10%" : "");
  std::vector<std::string> header = {"shards"};
  if (cache_axis) header.push_back("cache");
  if (admission_axis) header.push_back("admw");
  header.insert(header.end(),
                {"mode", "threads", "QPS", "p50", "p90", "p99", "w/s"});
  if (cache_axis) header.push_back("hit%");
  PrintTable(title, header, rows);
  if (read_qps_1 > 0.0 && read_qps_8 > 0.0) {
    std::printf("\nread-only scaling 1 -> 8 threads (shards=%d): %.2fx\n",
                shard_counts.front(), read_qps_8 / read_qps_1);
  }
  if (shard_counts.size() > 1 && mixed_qps_by_shards_lo > 0.0) {
    std::printf("95r/5w QPS at %d threads, shards %d -> %d: %.2fx\n",
                mixed_ref_threads, shard_counts.front(), shard_counts.back(),
                mixed_qps_by_shards_hi / mixed_qps_by_shards_lo);
  }
  if (cache_axis && read_qps_cache_off > 0.0) {
    std::printf(
        "skewed read-only QPS at %d threads (shards=%d), cache 0 -> %dMB: "
        "%.2fx (hit rate %.0f%%)\n",
        mixed_ref_threads, shard_counts.front(), cache_mbs.back(),
        read_qps_cache_on / read_qps_cache_off, read_hit_rate_on * 100.0);
  }
  if (admission_axis && read_qps_adm_off > 0.0) {
    std::printf(
        "read-only QPS at %d threads (shards=%d), admission window 0 -> "
        "%dus: %.2fx\n",
        mixed_ref_threads, shard_counts.front(), adm_windows.back(),
        read_qps_adm_on / read_qps_adm_off);
  }
  if (json_path != nullptr) {
    return WriteBenchJson(json_path, index_name, data.size(), seconds,
                          json_cells, /*arms=*/nullptr, &last_metrics);
  }
  return 0;
}

}  // namespace
}  // namespace wazi::bench

int main(int argc, char** argv) { return wazi::bench::Main(argc, argv); }

// Serving-engine throughput: QPS and latency percentiles versus client
// thread count AND shard count, read-only and mixed 95% read / 5% write,
// over the sharded snapshot-swapped index (src/serve/).
//
// Client threads drive ServeLoop::Range directly (the serving model:
// every client thread executes on the live per-shard snapshots,
// wait-free); writes are routed to the owning shard's background writer,
// which applies them in batches ending in per-shard snapshot swaps.
// Read-only QPS should scale with threads up to the hardware's core count,
// and the mixed-workload QPS should scale with shards: each shard has its
// own writer, so update application no longer serializes behind one
// thread, and each sub-query runs on an index 1/shards the size.
//
//   bench_serve_throughput [--shards 1,4] [--threads 1,2,4,8]
//
//   WAZI_SCALE=smoke|default|paper   (50k / 1M / 8M points)
//   WAZI_SERVE_INDEX=wazi|base|flood|...   (default wazi)
//   WAZI_SERVE_SECONDS=<per-cell duration, default 1.5 (smoke 0.3)>
//   WAZI_SERVE_SHARDS=<default for --shards>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "common/timer.h"
#include "serve/client_driver.h"
#include "serve/serve_loop.h"

namespace wazi::bench {
namespace {

using serve::ClientLoadOptions;
using serve::ClientLoadResult;
using serve::RunClientLoad;
using serve::ServeLoop;
using serve::ServeOptions;

struct CellResult {
  double qps = 0.0;
  double writes_per_s = 0.0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
};

CellResult RunCell(ServeLoop& loop, const Workload& workload, int threads,
                   int write_pct, double seconds) {
  ClientLoadOptions copts;
  copts.threads = threads;
  copts.write_pct = write_pct;
  copts.seconds = seconds;
  const ClientLoadResult load = RunClientLoad(loop, workload, copts);
  CellResult cell;
  cell.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
  cell.writes_per_s =
      static_cast<double>(load.writes) / load.elapsed_seconds;
  cell.p50_ns = load.latencies.PercentileNs(50);
  cell.p90_ns = load.latencies.PercentileNs(90);
  cell.p99_ns = load.latencies.PercentileNs(99);
  return cell;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

// "1,4" -> {1, 4}. Exits on malformed input.
std::vector<int> ParseIntList(const char* arg, const char* flag) {
  std::vector<int> values;
  const char* p = arg;
  char* end = nullptr;
  while (*p != '\0') {
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 1) {
      std::fprintf(stderr, "%s wants a comma-separated list of ints >= 1\n",
                   flag);
      std::exit(2);
    }
    values.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (values.empty()) {
    std::fprintf(stderr, "%s wants at least one value\n", flag);
    std::exit(2);
  }
  return values;
}

int Main(int argc, char** argv) {
  const Scale& scale = CurrentScale();
  const size_t n = scale.name == "smoke"    ? 50000
                   : scale.name == "paper" ? 8000000
                                           : 1000000;
  const char* index_env = std::getenv("WAZI_SERVE_INDEX");
  const std::string index_name = index_env != nullptr ? index_env : "wazi";
  const char* sec_env = std::getenv("WAZI_SERVE_SECONDS");
  const double seconds = sec_env != nullptr  ? std::strtod(sec_env, nullptr)
                         : scale.name == "smoke" ? 0.3
                                                 : 1.5;

  const char* shards_env = std::getenv("WAZI_SERVE_SHARDS");
  std::vector<int> shard_counts =
      ParseIntList(shards_env != nullptr ? shards_env : "1,4", "--shards");
  std::vector<int> thread_counts = {1, 2, 4, 8};
  int argi = 1;
  for (; argi + 1 < argc; argi += 2) {
    if (std::strcmp(argv[argi], "--shards") == 0) {
      shard_counts = ParseIntList(argv[argi + 1], "--shards");
    } else if (std::strcmp(argv[argi], "--threads") == 0) {
      thread_counts = ParseIntList(argv[argi + 1], "--threads");
    } else {
      std::fprintf(stderr, "unknown flag '%s' (known: --shards --threads)\n",
                   argv[argi]);
      return 2;
    }
  }
  if (argi < argc) {
    std::fprintf(stderr, "flag '%s' is missing its value\n", argv[argi]);
    return 2;
  }

  const Dataset& data = GetDataset(Region::kCaliNev, n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, 0.000256);

  std::vector<std::vector<std::string>> rows;
  double mixed_qps_by_shards_lo = 0.0, mixed_qps_by_shards_hi = 0.0;
  double read_qps_1 = 0.0, read_qps_8 = 0.0;
  const int mixed_ref_threads = thread_counts.back();
  for (const int shards : shard_counts) {
    std::fprintf(stderr,
                 "[serve] building %d shard(s) of %s over %zu points...\n",
                 shards, index_name.c_str(), data.size());
    Timer build_timer;
    ServeOptions opts;
    opts.num_shards = shards;
    opts.num_threads = 1;      // client threads execute queries themselves
    opts.auto_rebuild = false; // keep cells comparable
    opts.writer_coalesce_ms = 8;
    ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                   workload, BuildOptions{}, opts);
    std::fprintf(stderr, "[serve] built in %.1fs; hw_threads=%u\n",
                 build_timer.ElapsedSeconds(),
                 std::thread::hardware_concurrency());

    for (const int write_pct : {0, 5}) {
      const std::string mode = write_pct == 0 ? "read-only" : "95r/5w";
      for (const int threads : thread_counts) {
        const CellResult cell =
            RunCell(loop, workload, threads, write_pct, seconds);
        if (write_pct == 0 && threads == 1 && shards == shard_counts.front()) {
          read_qps_1 = cell.qps;
        }
        if (write_pct == 0 && threads == 8 && shards == shard_counts.front()) {
          read_qps_8 = cell.qps;
        }
        if (write_pct == 5 && threads == mixed_ref_threads) {
          if (shards == shard_counts.front()) mixed_qps_by_shards_lo = cell.qps;
          if (shards == shard_counts.back()) mixed_qps_by_shards_hi = cell.qps;
        }
        rows.push_back({std::to_string(shards), mode, std::to_string(threads),
                        FormatQps(cell.qps),
                        FormatNs(static_cast<double>(cell.p50_ns)),
                        FormatNs(static_cast<double>(cell.p90_ns)),
                        FormatNs(static_cast<double>(cell.p99_ns)),
                        FormatQps(cell.writes_per_s)});
        std::fprintf(stderr, "[serve] shards=%d %s threads=%d done (%.0f q/s)\n",
                     shards, mode.c_str(), threads, cell.qps);
      }
    }
  }

  char title[160];
  std::snprintf(title, sizeof(title),
                "Serving throughput (%s, %zu pts, sel 0.0256%%, %.1fs/cell, "
                "%u hw threads)",
                index_name.c_str(), data.size(), seconds,
                std::thread::hardware_concurrency());
  PrintTable(title,
             {"shards", "mode", "threads", "QPS", "p50", "p90", "p99", "w/s"},
             rows);
  if (read_qps_1 > 0.0 && read_qps_8 > 0.0) {
    std::printf("\nread-only scaling 1 -> 8 threads (shards=%d): %.2fx\n",
                shard_counts.front(), read_qps_8 / read_qps_1);
  }
  if (shard_counts.size() > 1 && mixed_qps_by_shards_lo > 0.0) {
    std::printf("95r/5w QPS at %d threads, shards %d -> %d: %.2fx\n",
                mixed_ref_threads, shard_counts.front(), shard_counts.back(),
                mixed_qps_by_shards_hi / mixed_qps_by_shards_lo);
  }
  return 0;
}

}  // namespace
}  // namespace wazi::bench

int main(int argc, char** argv) { return wazi::bench::Main(argc, argv); }

// Serving-engine throughput: QPS and latency percentiles versus client
// thread count AND shard count, read-only and mixed 95% read / 5% write,
// over the sharded snapshot-swapped index (src/serve/).
//
// Client threads drive ServeLoop::Range directly (the serving model:
// every client thread executes on the live per-shard snapshots,
// wait-free); writes are routed to the owning shard's background writer,
// which applies them in batches ending in per-shard snapshot swaps.
// Read-only QPS should scale with threads up to the hardware's core count,
// and the mixed-workload QPS should scale with shards: each shard has its
// own writer, so update application no longer serializes behind one
// thread, and each sub-query runs on an index 1/shards the size.
//
//   bench_serve_throughput [--shards 1,4] [--threads 1,2,4,8]
//   bench_serve_throughput --repartition 4 [--threads ...]
//
// --repartition N replaces the sweep with a skew-shift experiment on N
// shards: a mixed-load phase on the build-time workload, then a phase
// whose queries AND inserts collapse into one corner of the domain,
// run once with the topology frozen and once with the repartition
// monitor enabled (live router swap + data migration mid-phase). A
// validator thread checks sentinel points through both phases; the
// run must complete with zero query errors.
//
//   WAZI_SCALE=smoke|default|paper   (50k / 1M / 8M points)
//   WAZI_SERVE_INDEX=wazi|base|flood|...   (default wazi)
//   WAZI_SERVE_SECONDS=<per-cell duration, default 1.5 (smoke 0.3)>
//   WAZI_SERVE_SHARDS=<default for --shards>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/harness.h"
#include "common/timer.h"
#include "serve/client_driver.h"
#include "serve/serve_loop.h"

namespace wazi::bench {
namespace {

using serve::ClientLoadOptions;
using serve::ClientLoadResult;
using serve::RunClientLoad;
using serve::ServeLoop;
using serve::ServeOptions;

struct CellResult {
  double qps = 0.0;
  double writes_per_s = 0.0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
};

CellResult RunCell(ServeLoop& loop, const Workload& workload, int threads,
                   int write_pct, double seconds) {
  ClientLoadOptions copts;
  copts.threads = threads;
  copts.write_pct = write_pct;
  copts.seconds = seconds;
  const ClientLoadResult load = RunClientLoad(loop, workload, copts);
  CellResult cell;
  cell.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
  cell.writes_per_s =
      static_cast<double>(load.writes) / load.elapsed_seconds;
  cell.p50_ns = load.latencies.PercentileNs(50);
  cell.p90_ns = load.latencies.PercentileNs(90);
  cell.p99_ns = load.latencies.PercentileNs(99);
  return cell;
}

std::string FormatQps(double qps) {
  char buf[32];
  if (qps >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", qps / 1e6);
  } else if (qps >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", qps / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.0f", qps);
  }
  return buf;
}

// Affinely maps `r` from `from` into `to` (the skew-shift transform that
// collapses the base workload into a corner of the domain).
Rect MapRect(const Rect& r, const Rect& from, const Rect& to) {
  const double sx = (to.max_x - to.min_x) / (from.max_x - from.min_x);
  const double sy = (to.max_y - to.min_y) / (from.max_y - from.min_y);
  return Rect::Of(to.min_x + (r.min_x - from.min_x) * sx,
                  to.min_y + (r.min_y - from.min_y) * sy,
                  to.min_x + (r.max_x - from.min_x) * sx,
                  to.min_y + (r.max_y - from.min_y) * sy);
}

// Skew-shift phase experiment: pre-shift mixed load on the build-time
// workload, then queries + inserts collapsed into `corner`, with the
// repartition monitor on or off. A validator thread continuously checks
// that a grid of sentinel points stays visible to point lookups AND to
// range queries centred on them — a lost or double-routed point during a
// live migration would show up as an error.
struct RepartitionArmResult {
  double qps_pre = 0.0;
  double qps_post = 0.0;
  int64_t p99_post_ns = 0;
  int64_t repartitions = 0;
  uint64_t epoch = 0;
  int64_t errors = 0;
};

RepartitionArmResult RunRepartitionArm(const std::string& index_name,
                                       const Dataset& data,
                                       const Workload& workload,
                                       int shards, double seconds,
                                       bool adaptive) {
  ServeOptions opts;
  opts.num_shards = shards;
  opts.num_threads = 1;
  opts.auto_rebuild = false;  // isolate the topology effect
  opts.writer_coalesce_ms = 8;
  opts.repartition.enabled = adaptive;
  opts.repartition.poll_ms = 100;
  opts.repartition.max_imbalance = 1.4;
  opts.repartition.patience = 2;
  opts.repartition.min_queries = 256;
  opts.repartition.min_interval_ms = 1000;
  std::fprintf(stderr, "[serve] building %d shard(s) of %s (%s)...\n",
               shards, index_name.c_str(),
               adaptive ? "repartition on" : "repartition off");
  ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                 workload, BuildOptions{}, opts);

  // Sentinels: a grid across the domain, inserted up front. They are
  // never removed, so every lookup and every centred range query must
  // find them for the rest of the run, across any number of migrations.
  std::vector<Point> sentinels;
  const Rect& b = data.bounds;
  for (int gx = 0; gx < 8; ++gx) {
    for (int gy = 0; gy < 8; ++gy) {
      Point p;
      p.x = b.min_x + (b.max_x - b.min_x) * (0.5 + gx) / 8.0;
      p.y = b.min_y + (b.max_y - b.min_y) * (0.5 + gy) / 8.0;
      p.id = 900000000 + gx * 8 + gy;
      sentinels.push_back(p);
      loop.SubmitInsert(p);
    }
  }
  loop.Flush();

  std::atomic<int64_t> errors{0};
  std::atomic<bool> stop_validator{false};
  std::thread validator([&] {
    const double rx = (b.max_x - b.min_x) * 0.01;
    const double ry = (b.max_y - b.min_y) * 0.01;
    size_t i = 0;
    while (!stop_validator.load(std::memory_order_relaxed)) {
      const Point& p = sentinels[i++ % sentinels.size()];
      if (!loop.PointLookup(p)) {
        errors.fetch_add(1, std::memory_order_relaxed);
      }
      const serve::QueryResult res =
          loop.Range(Rect::Of(p.x - rx, p.y - ry, p.x + rx, p.y + ry));
      bool seen = false;
      for (const Point& hit : res.hits) {
        if (hit.id == p.id) seen = true;
      }
      if (!seen) errors.fetch_add(1, std::memory_order_relaxed);
      // Throttled: the validator is a correctness probe, not load — at
      // full tilt its domain-uniform queries would both perturb the
      // measured QPS and dilute the skew signal the monitor watches.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  RepartitionArmResult arm;
  {
    ClientLoadOptions copts;
    copts.threads = 2;
    copts.write_pct = 5;
    copts.seconds = seconds;
    const ClientLoadResult pre = RunClientLoad(loop, workload, copts);
    arm.qps_pre = static_cast<double>(pre.queries) / pre.elapsed_seconds;
  }

  // The shift: everything lands in the lower-left ~4% of the domain.
  const Rect corner =
      Rect::Of(b.min_x, b.min_y, b.min_x + (b.max_x - b.min_x) * 0.2,
               b.min_y + (b.max_y - b.min_y) * 0.2);
  Workload skewed;
  skewed.name = workload.name + "/skewed";
  skewed.selectivity = workload.selectivity;
  skewed.queries.reserve(workload.queries.size());
  for (const Rect& q : workload.queries) {
    skewed.queries.push_back(MapRect(q, b, corner));
  }
  {
    ClientLoadOptions copts;
    copts.threads = 2;
    copts.write_pct = 20;  // heavy corner inserts skew the item counts too
    copts.seconds = seconds * 2;
    copts.insert_region = corner;
    const ClientLoadResult post = RunClientLoad(loop, skewed, copts);
    arm.qps_post = static_cast<double>(post.queries) / post.elapsed_seconds;
    arm.p99_post_ns = post.latencies.PercentileNs(99);
  }

  // Grace window for the adaptive arm: on a loaded box the monitor's
  // trigger may land at the tail of the phase and the (synchronous)
  // migration complete just after it — keep validating sentinels while a
  // pending swap finishes instead of misreporting it as never happening.
  if (adaptive) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (loop.repartitions() == 0 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  stop_validator.store(true);
  validator.join();
  std::fprintf(stderr,
               "[serve] %s arm done: imbalance %.2f, epoch %llu\n",
               adaptive ? "adaptive" : "frozen", loop.imbalance(),
               static_cast<unsigned long long>(loop.epoch()));
  arm.repartitions = loop.repartitions();
  arm.epoch = loop.epoch();
  arm.errors = errors.load();
  return arm;
}

int RunRepartitionExperiment(const std::string& index_name,
                             const Dataset& data, const Workload& workload,
                             int shards, double seconds) {
  std::vector<std::vector<std::string>> rows;
  RepartitionArmResult arms[2];
  for (const bool adaptive : {false, true}) {
    const RepartitionArmResult arm = RunRepartitionArm(
        index_name, data, workload, shards, seconds, adaptive);
    arms[adaptive ? 1 : 0] = arm;
    rows.push_back({adaptive ? "on" : "off", FormatQps(arm.qps_pre),
                    FormatQps(arm.qps_post),
                    FormatNs(static_cast<double>(arm.p99_post_ns)),
                    std::to_string(arm.repartitions),
                    std::to_string(arm.epoch),
                    std::to_string(arm.errors)});
  }
  char title[160];
  std::snprintf(title, sizeof(title),
                "Skew-shift with live repartitioning (%s, %zu pts, %d "
                "shards, %.1fs pre / %.1fs post)",
                index_name.c_str(), data.size(), shards, seconds,
                seconds * 2);
  PrintTable(title,
             {"repart", "QPS pre", "QPS post", "p99 post", "migrations",
              "epoch", "errors"},
             rows);
  if (arms[0].qps_post > 0.0) {
    std::printf("\npost-shift QPS, repartition off -> on: %.2fx "
                "(%lld live migration(s), %lld query errors)\n",
                arms[1].qps_post / arms[0].qps_post,
                static_cast<long long>(arms[1].repartitions),
                static_cast<long long>(arms[1].errors + arms[0].errors));
  }
  const bool ok = arms[0].errors == 0 && arms[1].errors == 0 &&
                  arms[1].repartitions >= 1;
  if (!ok) {
    std::fprintf(stderr, "[serve] FAILED: %s\n",
                 arms[1].repartitions < 1 ? "no migration triggered"
                                          : "sentinel query errors");
  }
  return ok ? 0 : 1;
}

// "1,4" -> {1, 4}. Exits on malformed input.
std::vector<int> ParseIntList(const char* arg, const char* flag) {
  std::vector<int> values;
  const char* p = arg;
  char* end = nullptr;
  while (*p != '\0') {
    const long v = std::strtol(p, &end, 10);
    if (end == p || v < 1) {
      std::fprintf(stderr, "%s wants a comma-separated list of ints >= 1\n",
                   flag);
      std::exit(2);
    }
    values.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  if (values.empty()) {
    std::fprintf(stderr, "%s wants at least one value\n", flag);
    std::exit(2);
  }
  return values;
}

int Main(int argc, char** argv) {
  const Scale& scale = CurrentScale();
  const size_t n = scale.name == "smoke"    ? 50000
                   : scale.name == "paper" ? 8000000
                                           : 1000000;
  const char* index_env = std::getenv("WAZI_SERVE_INDEX");
  const std::string index_name = index_env != nullptr ? index_env : "wazi";
  const char* sec_env = std::getenv("WAZI_SERVE_SECONDS");
  const double seconds = sec_env != nullptr  ? std::strtod(sec_env, nullptr)
                         : scale.name == "smoke" ? 0.3
                                                 : 1.5;

  const char* shards_env = std::getenv("WAZI_SERVE_SHARDS");
  std::vector<int> shard_counts =
      ParseIntList(shards_env != nullptr ? shards_env : "1,4", "--shards");
  std::vector<int> thread_counts = {1, 2, 4, 8};
  int repartition_shards = 0;
  int argi = 1;
  for (; argi + 1 < argc; argi += 2) {
    if (std::strcmp(argv[argi], "--shards") == 0) {
      shard_counts = ParseIntList(argv[argi + 1], "--shards");
    } else if (std::strcmp(argv[argi], "--threads") == 0) {
      thread_counts = ParseIntList(argv[argi + 1], "--threads");
    } else if (std::strcmp(argv[argi], "--repartition") == 0) {
      repartition_shards = ParseIntList(argv[argi + 1], "--repartition")[0];
    } else {
      std::fprintf(stderr,
                   "unknown flag '%s' (known: --shards --threads "
                   "--repartition)\n",
                   argv[argi]);
      return 2;
    }
  }
  if (argi < argc) {
    std::fprintf(stderr, "flag '%s' is missing its value\n", argv[argi]);
    return 2;
  }

  const Dataset& data = GetDataset(Region::kCaliNev, n);
  const Workload& workload =
      GetWorkload(Region::kCaliNev, scale.num_queries, 0.000256);

  if (repartition_shards > 0) {
    return RunRepartitionExperiment(index_name, data, workload,
                                    repartition_shards, seconds);
  }

  std::vector<std::vector<std::string>> rows;
  double mixed_qps_by_shards_lo = 0.0, mixed_qps_by_shards_hi = 0.0;
  double read_qps_1 = 0.0, read_qps_8 = 0.0;
  const int mixed_ref_threads = thread_counts.back();
  for (const int shards : shard_counts) {
    std::fprintf(stderr,
                 "[serve] building %d shard(s) of %s over %zu points...\n",
                 shards, index_name.c_str(), data.size());
    Timer build_timer;
    ServeOptions opts;
    opts.num_shards = shards;
    opts.num_threads = 1;      // client threads execute queries themselves
    opts.auto_rebuild = false; // keep cells comparable
    opts.writer_coalesce_ms = 8;
    ServeLoop loop([&index_name] { return MakeIndex(index_name); }, data,
                   workload, BuildOptions{}, opts);
    std::fprintf(stderr, "[serve] built in %.1fs; hw_threads=%u\n",
                 build_timer.ElapsedSeconds(),
                 std::thread::hardware_concurrency());

    for (const int write_pct : {0, 5}) {
      const std::string mode = write_pct == 0 ? "read-only" : "95r/5w";
      for (const int threads : thread_counts) {
        const CellResult cell =
            RunCell(loop, workload, threads, write_pct, seconds);
        if (write_pct == 0 && threads == 1 && shards == shard_counts.front()) {
          read_qps_1 = cell.qps;
        }
        if (write_pct == 0 && threads == 8 && shards == shard_counts.front()) {
          read_qps_8 = cell.qps;
        }
        if (write_pct == 5 && threads == mixed_ref_threads) {
          if (shards == shard_counts.front()) mixed_qps_by_shards_lo = cell.qps;
          if (shards == shard_counts.back()) mixed_qps_by_shards_hi = cell.qps;
        }
        rows.push_back({std::to_string(shards), mode, std::to_string(threads),
                        FormatQps(cell.qps),
                        FormatNs(static_cast<double>(cell.p50_ns)),
                        FormatNs(static_cast<double>(cell.p90_ns)),
                        FormatNs(static_cast<double>(cell.p99_ns)),
                        FormatQps(cell.writes_per_s)});
        std::fprintf(stderr, "[serve] shards=%d %s threads=%d done (%.0f q/s)\n",
                     shards, mode.c_str(), threads, cell.qps);
      }
    }
  }

  char title[160];
  std::snprintf(title, sizeof(title),
                "Serving throughput (%s, %zu pts, sel 0.0256%%, %.1fs/cell, "
                "%u hw threads)",
                index_name.c_str(), data.size(), seconds,
                std::thread::hardware_concurrency());
  PrintTable(title,
             {"shards", "mode", "threads", "QPS", "p50", "p90", "p99", "w/s"},
             rows);
  if (read_qps_1 > 0.0 && read_qps_8 > 0.0) {
    std::printf("\nread-only scaling 1 -> 8 threads (shards=%d): %.2fx\n",
                shard_counts.front(), read_qps_8 / read_qps_1);
  }
  if (shard_counts.size() > 1 && mixed_qps_by_shards_lo > 0.0) {
    std::printf("95r/5w QPS at %d threads, shards %d -> %d: %.2fx\n",
                mixed_ref_threads, shard_counts.front(), shard_counts.back(),
                mixed_qps_by_shards_hi / mixed_qps_by_shards_lo);
  }
  return 0;
}

}  // namespace
}  // namespace wazi::bench

int main(int argc, char** argv) { return wazi::bench::Main(argc, argv); }

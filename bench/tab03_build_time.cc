// Table 3: build time (seconds) of the six main indexes across dataset
// sizes.

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  std::vector<std::string> header = {"size"};
  for (const std::string& name : MainIndexNames()) header.push_back(name);

  std::vector<std::vector<std::string>> rows;
  for (const size_t n : scale.size_sweep) {
    const Dataset& data = GetDataset(Region::kCaliNev, n);
    const Workload& workload =
        GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);
    std::vector<std::string> row = {FormatCount(n)};
    for (const std::string& name : MainIndexNames()) {
      double build_s = 0.0;
      auto index = BuildIndex(name, data, workload, &build_s);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fs", build_s);
      row.push_back(buf);
      std::fprintf(stderr, "[tab03] %s n=%zu done (%.2fs)\n", name.c_str(),
                   n, build_s);
    }
    rows.push_back(std::move(row));
  }
  PrintTable("Table 3: build time (seconds), CaliNev", header, rows);
  return 0;
}

// Table 4: cost redemption against Base — the number of queries after
// which an index's cumulative (build + query) time crosses Base's:
//   red_X = (X.build - Base.build) / (Base.query - X.query).
// (+)N  : builds slower than Base, redeems after N queries.
// (-)N  : builds faster but queries slower; ahead only for the first N.
// (+)   : faster build AND faster queries (always ahead).
// (-)   : slower build AND slower queries (never redeems).

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  const std::vector<std::string> others = {"cur", "flood", "quasii", "str",
                                           "wazi"};
  std::vector<std::string> header = {"data dist."};
  for (const std::string& name : others) header.push_back(name);

  std::vector<std::vector<std::string>> rows;
  for (Region region : AllRegions()) {
    const Dataset& data = GetDataset(region, scale.default_n);
    const Workload& workload =
        GetWorkload(region, scale.num_queries, kSelectivityMid2);
    double base_build = 0.0;
    auto base = BuildIndex("base", data, workload, &base_build);
    const double base_query = MeasureRangeNs(*base, workload);

    std::vector<std::string> row = {RegionName(region)};
    for (const std::string& name : others) {
      double build_s = 0.0;
      auto index = BuildIndex(name, data, workload, &build_s);
      const double query_ns = MeasureRangeNs(*index, workload);
      const double build_delta_ns = (build_s - base_build) * 1e9;
      const double query_delta_ns = base_query - query_ns;  // >0: X faster
      char buf[64];
      if (build_delta_ns <= 0 && query_delta_ns >= 0) {
        std::snprintf(buf, sizeof(buf), "(+)");
      } else if (build_delta_ns > 0 && query_delta_ns <= 0) {
        std::snprintf(buf, sizeof(buf), "(-)");
      } else {
        const double redemption =
            std::abs(build_delta_ns) / std::abs(query_delta_ns);
        std::snprintf(buf, sizeof(buf), "(%c) %s",
                      build_delta_ns > 0 ? '+' : '-',
                      FormatCount(redemption).c_str());
      }
      row.push_back(buf);
      std::fprintf(stderr, "[tab04] %s %s done\n",
                   RegionName(region).c_str(), name.c_str());
    }
    rows.push_back(std::move(row));
  }
  PrintTable("Table 4: cost-redemption vs Base (queries to break even; "
             "(+)N = redeems after N, (-)N = ahead only first N)",
             header, rows);
  return 0;
}

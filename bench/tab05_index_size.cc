// Table 5: index sizes (MB) of the six main indexes across dataset sizes.

#include <cstdio>

#include "common/harness.h"

int main() {
  using namespace wazi;
  using namespace wazi::bench;

  const Scale& scale = CurrentScale();
  std::vector<std::string> header = {"size"};
  for (const std::string& name : MainIndexNames()) header.push_back(name);

  std::vector<std::vector<std::string>> rows;
  for (const size_t n : scale.size_sweep) {
    const Dataset& data = GetDataset(Region::kCaliNev, n);
    const Workload& workload =
        GetWorkload(Region::kCaliNev, scale.num_queries, kSelectivityMid2);
    std::vector<std::string> row = {FormatCount(n)};
    for (const std::string& name : MainIndexNames()) {
      auto index = BuildIndex(name, data, workload);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2fMB",
                    static_cast<double>(index->SizeBytes()) /
                        (1024.0 * 1024.0));
      row.push_back(buf);
      std::fprintf(stderr, "[tab05] %s n=%zu done\n", name.c_str(), n);
    }
    rows.push_back(std::move(row));
  }
  PrintTable("Table 5: index size (MB), CaliNev", header, rows);
  return 0;
}

// Moving-objects churn scenario: a fixed population of objects whose
// positions are continuously updated (remove old position, insert new)
// at a high write rate, spread across 4 per-shard writers, with range
// reads mixed in. The invariant is conservation: after the churn
// quiesces, every object exists exactly once, at exactly its final
// position — a lost remove, a dropped insert, or a misrouted update
// would break the membership diff.
//
// Coordinates are drawn on a per-object lattice (x encodes the object
// index in its low-order structure) so two objects can never collide on
// coordinates — removes key on coordinates inside the index, and a
// collision would make remove-old-position ambiguous.

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "workload/query_generator.h"
#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

constexpr uint64_t kLattice = 1 << 20;  // x granularity per object slot

class MovingObjectsScenario : public Scenario {
 public:
  std::string id() const override { return "moving_objects"; }
  std::string description() const override {
    return "high-rate position churn over a fixed object population";
  }
  std::string op_mix() const override {
    return "70% position updates (remove+insert), 30% range reads";
  }
  std::string stresses() const override {
    return "per-shard writer throughput, routed updates, remove-by-"
           "coordinate correctness, update conservation across swaps";
  }

  // x = (c * n + i) / (kLattice * n): object i's x always has residue i
  // mod n on the lattice, so distinct objects never share coordinates.
  static double ObjectX(size_t i, uint64_t cell, size_t n) {
    return (static_cast<double>(cell) * static_cast<double>(n) +
            static_cast<double>(i)) /
           (static_cast<double>(kLattice) * static_cast<double>(n));
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    Dataset data;
    data.name = "moving_objects";
    const size_t n = cfg.points();
    Rng rng(cfg.seed);
    data.points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      data.points.push_back(Point{ObjectX(i, rng.NextBelow(kLattice), n),
                                  rng.NextDouble(),
                                  static_cast<int64_t>(i)});
    }
    data.bounds = Rect::Of(0.0, 0.0, 1.0, 1.0);
    return data;
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    QueryGenOptions qopts;
    qopts.num_queries = 1024;
    qopts.selectivity = kSelectivityMid2;
    qopts.seed = cfg.seed + 1;
    return GenerateUniformWorkload(data.bounds, qopts);
  }

  serve::ServeOptions Options(const ScenarioConfig& cfg) const override {
    serve::ServeOptions opts = Scenario::Options(cfg);
    opts.num_shards = 4;  // the churn fans out across 4 writers
    return opts;
  }

 protected:
  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>* failures) const override {
    const size_t n = ctx.data->points.size();
    const int threads = cfg.client_threads();
    // Thread t owns objects [t*n/T, (t+1)*n/T): all updates to one
    // object are issued (in order) from one thread, so its final
    // position is well-defined.
    positions_ = ctx.data->points;
    std::vector<size_t> cursor(static_cast<size_t>(threads), 0);
    auto writes = std::make_shared<std::atomic<int64_t>>(0);
    const std::vector<Rect>& queries = ctx.workload->queries;
    std::vector<size_t> read_cursor(static_cast<size_t>(threads), 0);
    serve::ServeLoop* loop = ctx.loop;
    const OpsResult ops = DriveOps(
        threads, cfg.phase_seconds(), cfg.seed + 100,
        [&, loop, n, threads](int t, Rng& rng) {
          const size_t ut = static_cast<size_t>(t);
          const size_t lo = ut * n / static_cast<size_t>(threads);
          const size_t hi = (ut + 1) * n / static_cast<size_t>(threads);
          if (hi > lo && rng.NextBelow(100) < 70) {
            const size_t i = lo + cursor[ut]++ % (hi - lo);
            Point& pos = positions_[i];
            loop->SubmitRemove(pos);
            pos.x = ObjectX(i, rng.NextBelow(kLattice), n);
            pos.y = rng.NextDouble();
            loop->SubmitInsert(pos);
            writes->fetch_add(1, std::memory_order_relaxed);
            return true;
          }
          loop->Range(queries[read_cursor[ut]++ % queries.size()]);
          return true;
        });
    if (ops.errors > 0) {
      failures->push_back("drive reported errors: " +
                          std::to_string(ops.errors));
    }
    phases->push_back(PhaseFromOps("churn", ops, writes->load()));
  }

  void Check(const ScenarioConfig&, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Conservation: exactly the original object ids, once each.
    const serve::QueryResult all =
        ctx.loop->Range(Rect::Of(0.0, 0.0, 1.0, 1.0));
    std::vector<int64_t> got;
    got.reserve(all.hits.size());
    for (const Point& p : all.hits) got.push_back(p.id);
    std::sort(got.begin(), got.end());
    std::vector<int64_t> expected;
    expected.reserve(positions_.size());
    for (const Point& p : positions_) expected.push_back(p.id);
    std::sort(expected.begin(), expected.end());
    ++*checks;
    if (got != expected) {
      failures->push_back("object conservation broken: expected " +
                          std::to_string(expected.size()) + " objects, got " +
                          std::to_string(got.size()));
    }
    // Spot-check final positions: each sampled object is point-visible
    // exactly where its last update put it.
    Rng rng(12345);
    const size_t samples = std::min<size_t>(128, positions_.size());
    for (size_t s = 0; s < samples; ++s) {
      const Point& p = positions_[rng.NextBelow(positions_.size())];
      ++*checks;
      if (!ctx.loop->PointLookup(p)) {
        failures->push_back("object " + std::to_string(p.id) +
                            " not found at its final position");
        break;
      }
    }
  }

 private:
  mutable std::vector<Point> positions_;  // final positions after Drive
};

}  // namespace

std::unique_ptr<Scenario> MakeMovingObjectsScenario() {
  return std::make_unique<MovingObjectsScenario>();
}

}  // namespace wazi::bench::workloads

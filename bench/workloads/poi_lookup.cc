// POI point-lookup scenario: a read-only stream of point-existence
// lookups whose targets are drawn Zipf(0.99) over the dataset — a small
// set of "popular places" absorbs most of the traffic, the tail is
// cold. Exercises single-shard point routing across a 2-shard topology
// and the per-type query counters; every lookup targets a real point,
// so any `found == false` is an engine error.

#include <algorithm>
#include <string>
#include <vector>

#include "workload/query_generator.h"
#include "workload/region_generator.h"
#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

class PoiLookupScenario : public Scenario {
 public:
  std::string id() const override { return "poi_lookup"; }
  std::string description() const override {
    return "Zipf hot-key point lookups over a POI dataset (read-only)";
  }
  std::string op_mix() const override {
    return "100% point lookups, targets Zipf(0.99) over all points";
  }
  std::string stresses() const override {
    return "single-shard point routing, snapshot acquire cost, "
           "serve_point_queries_total";
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    return GenerateRegion(Region::kCaliNev, cfg.points(), cfg.seed);
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    // Build-time training workload only; the drive phase issues point
    // lookups, not these ranges.
    QueryGenOptions qopts;
    qopts.num_queries = 512;
    qopts.selectivity = kSelectivityMid2;
    qopts.seed = cfg.seed + 1;
    return GenerateCheckinWorkload(Region::kCaliNev, data.bounds, qopts);
  }

  serve::ServeOptions Options(const ScenarioConfig& cfg) const override {
    serve::ServeOptions opts = Scenario::Options(cfg);
    opts.num_shards = 2;  // lookups route to exactly one of them
    return opts;
  }

 protected:
  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>* failures) const override {
    const std::vector<Point>& points = ctx.data->points;
    const ZipfSampler zipf(points.size(), 0.99);
    serve::ServeLoop* loop = ctx.loop;
    const OpsResult ops = DriveOps(
        cfg.client_threads(), cfg.phase_seconds(), cfg.seed + 100,
        [&points, &zipf, loop](int, Rng& rng) {
          return loop->PointLookup(points[zipf.Sample(rng)]);
        });
    if (ops.errors > 0) {
      failures->push_back("lookups of existing points returned not-found: " +
                          std::to_string(ops.errors) + " of " +
                          std::to_string(ops.ops));
    }
    phases->push_back(PhaseFromOps("zipf_lookups", ops, /*writes=*/0));
  }

  void Check(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Every sampled point must still be found on the quiesced loop, hot
    // head and cold tail alike.
    const std::vector<Point>& points = ctx.data->points;
    Rng rng(cfg.seed + 200);
    const size_t samples = std::min<size_t>(256, points.size());
    for (size_t i = 0; i < samples; ++i) {
      const Point& p = points[rng.NextBelow(points.size())];
      ++*checks;
      if (!ctx.loop->PointLookup(p)) {
        failures->push_back("quiesced lookup missed point id " +
                            std::to_string(p.id));
        break;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Scenario> MakePoiLookupScenario() {
  return std::make_unique<PoiLookupScenario>();
}

}  // namespace wazi::bench::workloads

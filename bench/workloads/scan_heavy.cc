// Scan-heavy analytics scenario: large range scans (~1% of the domain,
// ~40x the default serving selectivity) driven through the batched
// admission pipeline, so big result sets stream through coalesced
// batches under one epoch-pinned snapshot acquisition. Exercises the
// leaf-scan path (projection + span filtering dominate, not structure
// descent), admission batching with heavy per-query payloads, and the
// differential invariant diffs whole result sets against brute force.

#include <algorithm>
#include <string>
#include <vector>

#include "workload/query_generator.h"
#include "workload/region_generator.h"
#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

class ScanHeavyScenario : public Scenario {
 public:
  std::string id() const override { return "scan_heavy"; }
  std::string description() const override {
    return "large-range analytics scans through batched admission";
  }
  std::string op_mix() const override {
    return "100% range scans at 1% selectivity, admission depth 8";
  }
  std::string stresses() const override {
    return "leaf scan/projection kernels, admission coalescing with "
           "large results, epoch-pinned batch execution";
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    return GenerateRegion(Region::kJapan, cfg.points(), cfg.seed);
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    QueryGenOptions qopts;
    qopts.num_queries = 512;
    qopts.selectivity = 0.01;  // ~1% of the domain per scan
    qopts.aspect_max = 4.0;    // stretched analytic windows
    qopts.seed = cfg.seed + 1;
    return GenerateCheckinWorkload(Region::kJapan, data.bounds, qopts);
  }

  serve::ServeOptions Options(const ScenarioConfig& cfg) const override {
    serve::ServeOptions opts = Scenario::Options(cfg);
    opts.num_shards = 2;
    opts.num_threads = 4;         // batch workers
    opts.admission.window_us = 100;
    return opts;
  }

 protected:
  bool SupportsNet() const override { return true; }

  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>*) const override {
    serve::ClientLoadOptions copts;
    copts.threads = cfg.client_threads();
    copts.seconds = cfg.phase_seconds();
    copts.admission_depth = 8;
    const serve::ResultCacheStats before = ctx.loop->cache_stats();
    const serve::ClientLoadResult load = ctx.run_load(*ctx.workload, copts);
    phases->push_back(
        PhaseFromLoad("scans", load, before, ctx.loop->cache_stats()));
  }

  void Check(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Differential: a sample of the scan windows, executed on the
    // quiesced loop, must return exactly the brute-force membership
    // (read-only scenario — the dataset IS the ground truth).
    Rng rng(cfg.seed + 200);
    const std::vector<Rect>& queries = ctx.workload->queries;
    const size_t samples = std::min<size_t>(32, queries.size());
    for (size_t s = 0; s < samples; ++s) {
      const Rect& q = queries[rng.NextBelow(queries.size())];
      std::vector<int64_t> expected;
      for (const Point& p : ScanRange(*ctx.data, q)) expected.push_back(p.id);
      std::sort(expected.begin(), expected.end());
      const serve::QueryResult res = ctx.loop->Range(q);
      std::vector<int64_t> got;
      got.reserve(res.hits.size());
      for (const Point& p : res.hits) got.push_back(p.id);
      std::sort(got.begin(), got.end());
      ++*checks;
      if (got != expected) {
        failures->push_back("scan result mismatch vs brute force: " +
                            std::to_string(got.size()) + " vs " +
                            std::to_string(expected.size()) + " hits");
        break;
      }
    }
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeScanHeavyScenario() {
  return std::make_unique<ScanHeavyScenario>();
}

}  // namespace wazi::bench::workloads

#include "workloads/scenario.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/timer.h"
#include "net/wire_load.h"
#include "net/wire_server.h"
#include "obs/exporters.h"

namespace wazi::bench::workloads {
namespace {

// Splits one user seed into independent sub-streams (phase loads, data
// vs query generation) without the streams ever overlapping.
uint64_t MixSeed(uint64_t seed, uint64_t stream) {
  uint64_t z = seed + stream * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

size_t ScenarioConfig::points() const {
  if (n_points > 0) return n_points;
  if (scale == "smoke") return 50000;
  if (scale == "paper") return 4000000;
  return 500000;  // default
}

double ScenarioConfig::phase_seconds() const {
  if (seconds > 0.0) return seconds;
  if (scale == "smoke") return 0.4;
  if (scale == "paper") return 3.0;
  return 1.5;
}

int ScenarioConfig::client_threads() const {
  if (threads > 0) return threads;
  return scale == "smoke" ? 2 : 4;
}

OpsResult DriveOps(int threads, double seconds, uint64_t seed,
                   const std::function<bool(int, Rng&)>& op) {
  const int n = std::max(1, threads);
  constexpr size_t kWindow = size_t{1} << 16;
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_ops{0};
  std::atomic<int64_t> total_errors{0};
  std::vector<serve::LatencyRecorder> recorders(static_cast<size_t>(n),
                                                serve::LatencyRecorder(kWindow));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    clients.emplace_back([&, t] {
      serve::LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
      Rng rng(seed + static_cast<uint64_t>(t));
      int64_t ops = 0, errors = 0;
      while (!start.load(std::memory_order_acquire)) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        Timer timer;
        if (!op(t, rng)) ++errors;
        rec.Record(timer.ElapsedNs());
        ++ops;
      }
      total_ops.fetch_add(ops, std::memory_order_relaxed);
      total_errors.fetch_add(errors, std::memory_order_relaxed);
    });
  }
  // Same start-latch discipline as RunClientLoad: clock first, then
  // release, so no op lands outside the timed window.
  Timer wall;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(seconds * 1e6)));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  OpsResult result;
  result.elapsed_seconds = wall.ElapsedSeconds();
  result.ops = total_ops.load();
  result.errors = total_errors.load();
  result.latencies = serve::LatencyRecorder(kWindow * static_cast<size_t>(n));
  for (const serve::LatencyRecorder& r : recorders) result.latencies.Merge(r);
  return result;
}

ZipfSampler::ZipfSampler(size_t n, double theta) {
  cdf_.reserve(std::max<size_t>(1, n));
  double acc = 0.0;
  for (size_t i = 0; i < std::max<size_t>(1, n); ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_.push_back(acc);
  }
  for (double& c : cdf_) c /= acc;
  cdf_.back() = 1.0;  // guard against rounding at the top
}

size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<size_t>(it - cdf_.begin());
}

serve::ServeOptions Scenario::Options(const ScenarioConfig&) const {
  serve::ServeOptions opts;
  opts.num_shards = 1;
  opts.num_threads = 1;
  opts.auto_rebuild = false;  // comparable cells unless a scenario opts in
  opts.writer_coalesce_ms = 2;
  return opts;
}

PhaseResult Scenario::PhaseFromLoad(const std::string& name,
                                    const serve::ClientLoadResult& load,
                                    const serve::ResultCacheStats& before,
                                    const serve::ResultCacheStats& after) {
  PhaseResult phase;
  phase.name = name;
  phase.queries = load.queries;
  phase.writes = load.writes;
  phase.elapsed_seconds = load.elapsed_seconds;
  if (load.elapsed_seconds > 0.0) {
    phase.qps = static_cast<double>(load.queries) / load.elapsed_seconds;
    phase.writes_per_s =
        static_cast<double>(load.writes) / load.elapsed_seconds;
  }
  phase.p50_ns = load.latencies.PercentileNs(50);
  phase.p90_ns = load.latencies.PercentileNs(90);
  phase.p99_ns = load.latencies.PercentileNs(99);
  const int64_t lookups = after.lookups() - before.lookups();
  phase.cache_hit_rate =
      lookups == 0 ? 0.0
                   : static_cast<double>(after.hits - before.hits) /
                         static_cast<double>(lookups);
  return phase;
}

PhaseResult Scenario::PhaseFromOps(const std::string& name,
                                   const OpsResult& ops, int64_t writes) {
  PhaseResult phase;
  phase.name = name;
  phase.queries = ops.ops - writes;
  phase.writes = writes;
  phase.elapsed_seconds = ops.elapsed_seconds;
  if (ops.elapsed_seconds > 0.0) {
    phase.qps = static_cast<double>(phase.queries) / ops.elapsed_seconds;
    phase.writes_per_s = static_cast<double>(writes) / ops.elapsed_seconds;
  }
  phase.p50_ns = ops.latencies.PercentileNs(50);
  phase.p90_ns = ops.latencies.PercentileNs(90);
  phase.p99_ns = ops.latencies.PercentileNs(99);
  return phase;
}

ScenarioOutcome Scenario::Run(const ScenarioConfig& cfg) const {
  ScenarioOutcome outcome;
  outcome.scenario = id();
  outcome.description = description();
  outcome.config = cfg;

  const Dataset data = GenerateData(cfg);
  const Workload workload = GenerateQueries(cfg, data);
  outcome.points = data.size();

  const std::string index_name = cfg.index;
  serve::ServeLoop loop([&index_name] { return MakeIndex(index_name); },
                        data, workload, BuildOptions{}, Options(cfg));

  RunContext ctx;
  ctx.loop = &loop;
  ctx.data = &data;
  ctx.workload = &workload;

  // Transport: RunClientLoad-driven phases optionally go over a loopback
  // WireServer; every run_load call gets its own deterministic seed
  // sub-stream so repeated phases never replay each other's RNG.
  std::unique_ptr<net::WireServer> server;
  auto load_seed = std::make_shared<uint64_t>(0);
  const uint64_t base_seed = cfg.seed;
  if (cfg.net && SupportsNet()) {
    server = std::make_unique<net::WireServer>(&loop);
    std::string error;
    if (!server->Start(&error)) {
      outcome.failures.push_back("wire server failed to start: " + error);
      return outcome;
    }
    const uint16_t port = server->port();
    ctx.wire = true;
    outcome.transport = "wire";
    ctx.run_load = [port, base_seed, load_seed](
                       const Workload& w,
                       const serve::ClientLoadOptions& opts) {
      serve::ClientLoadOptions seeded = opts;
      seeded.seed = MixSeed(base_seed, 1000 + (*load_seed)++);
      return net::RunWireClientLoad("127.0.0.1", port, w, seeded);
    };
  } else {
    serve::ServeLoop* lp = &loop;
    ctx.run_load = [lp, base_seed, load_seed](
                       const Workload& w,
                       const serve::ClientLoadOptions& opts) {
      serve::ClientLoadOptions seeded = opts;
      seeded.seed = MixSeed(base_seed, 1000 + (*load_seed)++);
      return serve::RunClientLoad(*lp, w, seeded);
    };
  }

  Drive(cfg, ctx, &outcome.phases, &outcome.failures);
  loop.Flush();
  if (server != nullptr) server->Stop();

  Check(cfg, ctx, &outcome.failures, &outcome.invariant_checks);

  const serve::MigrationStats mig = loop.migration_stats();
  outcome.migrations = mig.migrations;
  outcome.incremental = mig.incremental;
  outcome.moved_points = mig.total_moved_points;
  outcome.last_moved_shards = mig.last_moved_shards;
  outcome.last_carried_shards = mig.last_carried_shards;
  outcome.stall_copies = mig.stall_copies;
  outcome.epoch = loop.epoch();
  outcome.metrics_json = obs::ToJson(loop.metrics().Snapshot());
  return outcome;
}

std::string ScenarioJson(const ScenarioOutcome& outcome) {
  obs::JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("wazi.bench.scenario/1");
  w.Key("bench").String("scenarios");
  w.Key("scenario").String(outcome.scenario);
  w.Key("description").String(outcome.description);
  w.Key("scale").String(outcome.config.scale);
  w.Key("seed").UInt(outcome.config.seed);
  w.Key("index").String(outcome.config.index);
  w.Key("transport").String(outcome.transport);
  w.Key("points").UInt(outcome.points);
  w.Key("seconds_per_phase").Double(outcome.config.phase_seconds());
  w.Key("threads").Int(outcome.config.client_threads());
  w.Key("passed").Bool(outcome.passed());
  w.Key("failures").BeginArray();
  for (const std::string& f : outcome.failures) w.String(f);
  w.EndArray();
  w.Key("invariant_checks").Int(outcome.invariant_checks);
  w.Key("phases").BeginArray();
  for (const PhaseResult& p : outcome.phases) {
    w.BeginObject();
    w.Key("name").String(p.name);
    w.Key("queries").Int(p.queries);
    w.Key("writes").Int(p.writes);
    w.Key("elapsed_seconds").Double(p.elapsed_seconds);
    w.Key("qps").Double(p.qps);
    w.Key("writes_per_s").Double(p.writes_per_s);
    w.Key("p50_ns").Int(p.p50_ns);
    w.Key("p90_ns").Int(p.p90_ns);
    w.Key("p99_ns").Int(p.p99_ns);
    w.Key("cache_hit_rate").Double(p.cache_hit_rate);
    w.EndObject();
  }
  w.EndArray();
  int64_t total_queries = 0, total_writes = 0;
  for (const PhaseResult& p : outcome.phases) {
    total_queries += p.queries;
    total_writes += p.writes;
  }
  w.Key("totals").BeginObject();
  w.Key("queries").Int(total_queries);
  w.Key("writes").Int(total_writes);
  w.Key("migrations").Int(outcome.migrations);
  w.Key("incremental").Int(outcome.incremental);
  w.Key("moved_points").Int(outcome.moved_points);
  w.Key("last_moved_shards").Int(outcome.last_moved_shards);
  w.Key("last_carried_shards").Int(outcome.last_carried_shards);
  w.Key("stall_copies").Int(outcome.stall_copies);
  w.Key("epoch").UInt(outcome.epoch);
  w.EndObject();
  w.Key("metrics").Raw(outcome.metrics_json.empty() ? "{}"
                                                    : outcome.metrics_json);
  w.EndObject();
  return w.str();
}

bool WriteScenarioJson(const ScenarioOutcome& outcome,
                       const std::string& path) {
  return obs::WriteFile(path, ScenarioJson(outcome) + "\n");
}

// --- registry ---------------------------------------------------------

// Factories live in their scenario's own translation unit; explicit
// construction here keeps the linker from dropping them.
std::unique_ptr<Scenario> MakePoiLookupScenario();
std::unique_ptr<Scenario> MakeTimeseriesScenario();
std::unique_ptr<Scenario> MakeMovingObjectsScenario();
std::unique_ptr<Scenario> MakeScanHeavyScenario();
std::unique_ptr<Scenario> MakeShiftingSkewScenario();
std::unique_ptr<Scenario> MakeYcsbMixScenario();

const std::vector<Scenario*>& AllScenarios() {
  static const std::vector<std::unique_ptr<Scenario>>* owned = [] {
    auto* v = new std::vector<std::unique_ptr<Scenario>>();
    v->push_back(MakePoiLookupScenario());
    v->push_back(MakeTimeseriesScenario());
    v->push_back(MakeMovingObjectsScenario());
    v->push_back(MakeScanHeavyScenario());
    v->push_back(MakeShiftingSkewScenario());
    v->push_back(MakeYcsbMixScenario());
    std::sort(v->begin(), v->end(),
              [](const std::unique_ptr<Scenario>& a,
                 const std::unique_ptr<Scenario>& b) {
                return a->id() < b->id();
              });
    return v;
  }();
  static const std::vector<Scenario*>* view = [] {
    auto* v = new std::vector<Scenario*>();
    for (const std::unique_ptr<Scenario>& s : *owned) v->push_back(s.get());
    return v;
  }();
  return *view;
}

Scenario* FindScenario(const std::string& id) {
  for (Scenario* s : AllScenarios()) {
    if (s->id() == id) return s;
  }
  return nullptr;
}

}  // namespace wazi::bench::workloads

// The workload scenario library: named, self-describing serving workloads
// with recorded, machine-comparable results.
//
// Each Scenario bundles
//   * an id + catalog strings (description, op mix, what it stresses),
//   * a deterministic data generator and query generator — pure functions
//     of the ScenarioConfig (same seed => byte-identical streams, so a
//     baseline comparison measures the engine, not the generator),
//   * the ServeOptions it runs under (cache / shards / repartition knobs),
//   * a drive phase (client threads pushing its op mix through a live
//     ServeLoop), and
//   * pass/fail invariants checked on the quiesced loop (brute-force
//     result diffs, monotone counters, sentinel visibility).
//
// The template method Scenario::Run executes the whole pipeline and
// returns a ScenarioOutcome; ScenarioJson renders it under the
// "wazi.bench.scenario/1" schema, the shape tools/check_bench_json.py
// validates and tools/compare_bench_json.py gates against the committed
// BENCH_<scenario>.json baselines. `bench_scenarios` is the CLI driver.
//
// Scenario authors: subclass Scenario, implement the pure virtuals, and
// add a factory line to AllScenarios() in scenario.cc (explicit
// registration — static registrars in a static library get dropped by
// the linker).

#ifndef WAZI_BENCH_WORKLOADS_SCENARIO_H_
#define WAZI_BENCH_WORKLOADS_SCENARIO_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "serve/client_driver.h"
#include "serve/serve_loop.h"
#include "workload/dataset.h"

namespace wazi::bench::workloads {

// Resolved run parameters. `scale` picks the defaults; the explicit
// fields override them (the tiny-scale unit tests use the overrides).
struct ScenarioConfig {
  std::string scale = "smoke";  // smoke | default | paper
  uint64_t seed = 42;
  std::string index = "wazi";  // registry name served by the loop
  // Overrides: 0 / 0.0 means "derive from scale".
  size_t n_points = 0;
  double seconds = 0.0;  // per drive phase
  int threads = 0;       // client threads
  // Drive RunClientLoad-based phases over TCP loopback through a
  // WireServer instead of in-process (scenarios with custom op drivers
  // ignore this and stay embedded).
  bool net = false;

  size_t points() const;        // resolved dataset size
  double phase_seconds() const; // resolved per-phase duration
  int client_threads() const;   // resolved client thread count
};

// One measured drive phase (a scenario emits one or more, named).
struct PhaseResult {
  std::string name;
  int64_t queries = 0;  // completed read ops
  int64_t writes = 0;   // applied write ops
  double elapsed_seconds = 0.0;
  double qps = 0.0;
  double writes_per_s = 0.0;
  int64_t p50_ns = 0;
  int64_t p90_ns = 0;
  int64_t p99_ns = 0;
  double cache_hit_rate = 0.0;  // result-cache hits within this phase
};

// Everything one scenario run produced: per-phase numbers, the
// invariant verdict, migration/topology totals, and the final metrics
// registry snapshot (pre-rendered JSON).
struct ScenarioOutcome {
  std::string scenario;
  std::string description;
  ScenarioConfig config;
  size_t points = 0;
  std::vector<PhaseResult> phases;
  // Empty == passed; each entry is one human-readable invariant breach.
  std::vector<std::string> failures;
  // Totals from the loop after the drive phases quiesced.
  int64_t migrations = 0;
  int64_t incremental = 0;
  int64_t moved_points = 0;
  int64_t last_moved_shards = 0;
  int64_t last_carried_shards = 0;
  int64_t stall_copies = 0;
  uint64_t epoch = 1;
  int64_t invariant_checks = 0;  // individual assertions evaluated
  std::string transport = "embedded";  // "wire" when cfg.net took effect
  std::string metrics_json;  // obs::ToJson of the final registry snapshot

  bool passed() const { return failures.empty(); }
};

// Custom-driver support: N client threads each run `op(thread, rng)` in a
// loop for `seconds`, timing every call. `op` returns false to count an
// error (the run keeps going; errors fail invariants later). Thread t's
// RNG is Rng(seed + t) — deterministic per (seed, threads).
struct OpsResult {
  int64_t ops = 0;
  int64_t errors = 0;
  double elapsed_seconds = 0.0;
  serve::LatencyRecorder latencies{0};
};
OpsResult DriveOps(int threads, double seconds, uint64_t seed,
                   const std::function<bool(int thread, Rng& rng)>& op);

// Bounded Zipf(theta) sampler over [0, n): precomputed CDF + binary
// search, deterministic per RNG stream. theta ~0.99 is the YCSB default
// ("Zipfian constant"); larger is more skewed.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta);
  size_t Sample(Rng& rng) const;
  size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;  // cumulative, normalized to cdf_.back() == 1
};

class Scenario {
 public:
  virtual ~Scenario() = default;

  // --- catalog ---
  virtual std::string id() const = 0;           // e.g. "poi_lookup"
  virtual std::string description() const = 0;  // one line
  virtual std::string op_mix() const = 0;       // e.g. "100% Zipf point gets"
  virtual std::string stresses() const = 0;     // subsystems/knobs exercised

  // --- deterministic generators (pure in cfg; used by tests directly) ---
  virtual Dataset GenerateData(const ScenarioConfig& cfg) const = 0;
  virtual Workload GenerateQueries(const ScenarioConfig& cfg,
                                   const Dataset& data) const = 0;
  // Serving knobs this scenario runs under. Default: 1 shard, no cache,
  // direct path. Override to exercise cache / shards / repartition.
  virtual serve::ServeOptions Options(const ScenarioConfig& cfg) const;

  // Runs the full pipeline: generate -> build ServeLoop -> drive ->
  // Flush -> check invariants -> snapshot metrics.
  ScenarioOutcome Run(const ScenarioConfig& cfg) const;

 protected:
  // What Drive/Check see: the live loop, the generated inputs, and a
  // transport-dispatching client-load runner (in-process, or over a
  // loopback WireServer when cfg.net and this scenario drives through
  // RunClientLoad). `wire` says which one run_load actually is.
  struct RunContext {
    serve::ServeLoop* loop = nullptr;
    const Dataset* data = nullptr;
    const Workload* workload = nullptr;
    std::function<serve::ClientLoadResult(const Workload&,
                                          const serve::ClientLoadOptions&)>
        run_load;
    bool wire = false;
  };

  // Pushes the scenario's op mix through ctx.loop, appending one
  // PhaseResult per measured phase. May append failures for errors that
  // can only be observed while driving (e.g. sentinel misses).
  virtual void Drive(const ScenarioConfig& cfg, RunContext& ctx,
                     std::vector<PhaseResult>* phases,
                     std::vector<std::string>* failures) const = 0;

  // Invariants on the quiesced loop (Flush() has completed). Bump
  // *checks for every individual assertion evaluated so the outcome can
  // prove the checks ran.
  virtual void Check(const ScenarioConfig& cfg, RunContext& ctx,
                     std::vector<std::string>* failures,
                     int64_t* checks) const = 0;

  // True when cfg.net can apply to this scenario (default: false; the
  // RunClientLoad-driven scenarios override to true).
  virtual bool SupportsNet() const { return false; }

  // Converts a client-load run (plus the cache-hit delta around it) into
  // a named phase row.
  static PhaseResult PhaseFromLoad(const std::string& name,
                                   const serve::ClientLoadResult& load,
                                   const serve::ResultCacheStats& before,
                                   const serve::ResultCacheStats& after);
  static PhaseResult PhaseFromOps(const std::string& name,
                                  const OpsResult& ops, int64_t writes);
};

// The registry: stable, id-sorted scenario singletons (explicitly
// constructed — see the header comment on linker-dropped registrars).
const std::vector<Scenario*>& AllScenarios();
Scenario* FindScenario(const std::string& id);

// "wazi.bench.scenario/1" rendering; WriteScenarioJson appends a
// trailing newline and reports I/O failure.
std::string ScenarioJson(const ScenarioOutcome& outcome);
bool WriteScenarioJson(const ScenarioOutcome& outcome,
                       const std::string& path);

}  // namespace wazi::bench::workloads

#endif  // WAZI_BENCH_WORKLOADS_SCENARIO_H_

// Adversarial shifting-skew scenario: a balanced mixed phase, then both
// queries and inserts collapse into one corner of the domain while the
// repartition monitor (incremental migrations allowed) watches the
// imbalance. A sentinel grid inserted up front is probed concurrently
// through both phases — a point lost or double-routed during a live
// router swap or per-cell migration shows up as a sentinel miss, which
// fails the scenario. Whether a migration actually triggers depends on
// scale (the JSON records migrations/moved/carried for the trajectory);
// correctness is gated, adaptivity is recorded.

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "workload/query_generator.h"
#include "workload/region_generator.h"
#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

// Affinely maps `r` from `from` into `to` (collapses the base workload
// into the corner).
Rect MapInto(const Rect& r, const Rect& from, const Rect& to) {
  const double sx = (to.max_x - to.min_x) / (from.max_x - from.min_x);
  const double sy = (to.max_y - to.min_y) / (from.max_y - from.min_y);
  return Rect::Of(to.min_x + (r.min_x - from.min_x) * sx,
                  to.min_y + (r.min_y - from.min_y) * sy,
                  to.min_x + (r.max_x - from.min_x) * sx,
                  to.min_y + (r.max_y - from.min_y) * sy);
}

class ShiftingSkewScenario : public Scenario {
 public:
  std::string id() const override { return "shifting_skew"; }
  std::string description() const override {
    return "workload collapses into a corner under the repartition "
           "monitor, sentinels probed across the migration";
  }
  std::string op_mix() const override {
    return "phase 1: 95r/5w balanced; phase 2: 80r/20w, all in a corner";
  }
  std::string stresses() const override {
    return "repartition monitor + incremental migration, writer-gen "
           "cutover, sentinel visibility across router swaps";
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    return GenerateRegion(Region::kCaliNev, cfg.points(), cfg.seed);
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    QueryGenOptions qopts;
    qopts.num_queries = 1024;
    qopts.selectivity = kSelectivityMid2;
    qopts.seed = cfg.seed + 1;
    return GenerateCheckinWorkload(Region::kCaliNev, data.bounds, qopts);
  }

  serve::ServeOptions Options(const ScenarioConfig& cfg) const override {
    serve::ServeOptions opts = Scenario::Options(cfg);
    opts.num_shards = 5;  // stripes: lets incremental migrations carry
    opts.repartition.enabled = true;
    opts.repartition.poll_ms = 100;
    opts.repartition.max_imbalance = 1.4;
    opts.repartition.patience = 2;
    opts.repartition.min_queries = 256;
    opts.repartition.min_interval_ms = 500;
    opts.repartition.incremental = true;
    return opts;
  }

 protected:
  bool SupportsNet() const override { return true; }

  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>* failures) const override {
    serve::ServeLoop* loop = ctx.loop;
    const Rect& b = ctx.data->bounds;

    // Sentinels: an 8x8 grid, never removed — every probe must find
    // them for the rest of the run, across any number of migrations.
    std::vector<Point> sentinels;
    for (int gx = 0; gx < 8; ++gx) {
      for (int gy = 0; gy < 8; ++gy) {
        Point p;
        p.x = b.min_x + (b.max_x - b.min_x) * (0.5 + gx) / 8.0;
        p.y = b.min_y + (b.max_y - b.min_y) * (0.5 + gy) / 8.0;
        p.id = 900000000 + gx * 8 + gy;
        sentinels.push_back(p);
        loop->SubmitInsert(p);
      }
    }
    loop->Flush();
    sentinels_ = sentinels;

    std::atomic<int64_t> errors{0};
    std::atomic<bool> stop_validator{false};
    std::thread validator([&] {
      const double rx = (b.max_x - b.min_x) * 0.01;
      const double ry = (b.max_y - b.min_y) * 0.01;
      size_t i = 0;
      while (!stop_validator.load(std::memory_order_relaxed)) {
        const Point& p = sentinels[i++ % sentinels.size()];
        if (!loop->PointLookup(p)) {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
        const serve::QueryResult res = loop->Range(
            Rect::Of(p.x - rx, p.y - ry, p.x + rx, p.y + ry));
        bool seen = false;
        for (const Point& hit : res.hits) {
          if (hit.id == p.id) seen = true;
        }
        if (!seen) errors.fetch_add(1, std::memory_order_relaxed);
        // A probe, not load: full-tilt uniform queries would dilute the
        // skew signal the monitor watches.
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });

    {
      serve::ClientLoadOptions copts;
      copts.threads = cfg.client_threads();
      copts.write_pct = 5;
      copts.seconds = cfg.phase_seconds();
      const serve::ResultCacheStats before = loop->cache_stats();
      const serve::ClientLoadResult pre = ctx.run_load(*ctx.workload, copts);
      phases->push_back(
          PhaseFromLoad("balanced", pre, before, loop->cache_stats()));
    }

    // The shift: queries AND inserts land in the lower-left corner.
    const Rect corner =
        Rect::Of(b.min_x, b.min_y, b.min_x + (b.max_x - b.min_x) * 0.2,
                 b.min_y + (b.max_y - b.min_y) * 0.2);
    Workload skewed;
    skewed.name = ctx.workload->name + "/skewed";
    skewed.selectivity = ctx.workload->selectivity;
    skewed.queries.reserve(ctx.workload->queries.size());
    for (const Rect& q : ctx.workload->queries) {
      skewed.queries.push_back(MapInto(q, b, corner));
    }
    {
      serve::ClientLoadOptions copts;
      copts.threads = cfg.client_threads();
      copts.write_pct = 20;
      copts.seconds = cfg.phase_seconds() * 2;
      copts.insert_region = corner;
      const serve::ResultCacheStats before = loop->cache_stats();
      const serve::ClientLoadResult post = ctx.run_load(skewed, copts);
      phases->push_back(
          PhaseFromLoad("skewed", post, before, loop->cache_stats()));
    }

    // Grace window: a monitor trigger landing at the tail of the phase
    // may complete just after it — keep probing sentinels while a
    // pending migration finishes (smoke scale and above; the tiny-scale
    // unit-test runs never accumulate min_queries, which is fine — the
    // gate is correctness, adaptivity is recorded).
    if (cfg.phase_seconds() >= 0.25) {
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(5);
      while (loop->repartitions() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
      }
    }
    stop_validator.store(true);
    validator.join();
    if (errors.load() > 0) {
      failures->push_back("sentinel probes failed during the shift: " +
                          std::to_string(errors.load()) + " misses");
    }
  }

  void Check(const ScenarioConfig&, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Every sentinel must be visible on the quiesced loop, whatever
    // topology the run ended on.
    for (const Point& p : sentinels_) {
      ++*checks;
      if (!ctx.loop->PointLookup(p)) {
        failures->push_back("sentinel " + std::to_string(p.id) +
                            " lost after quiesce");
        break;
      }
    }
  }

 private:
  mutable std::vector<Point> sentinels_;
};

}  // namespace

std::unique_ptr<Scenario> MakeShiftingSkewScenario() {
  return std::make_unique<ShiftingSkewScenario>();
}

}  // namespace wazi::bench::workloads

// Timeseries append + range scenario: x is time, y is a series value.
// The dataset covers [0, 0.7) of the time axis; a precomputed,
// strictly-ordered append stream fills (0.7, 1.0] while clients mix
// appends (30%) with range reads over sliding time windows. Exercises
// the background writer's batched apply + snapshot publish cadence
// under a steady ingest, and the invariant diff proves no append was
// lost or duplicated across publishes.

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

class TimeseriesScenario : public Scenario {
 public:
  std::string id() const override { return "timeseries_append"; }
  std::string description() const override {
    return "ordered time-axis appends mixed with sliding range reads";
  }
  std::string op_mix() const override {
    return "30% ordered appends, 70% time-window range reads";
  }
  std::string stresses() const override {
    return "writer batching + snapshot publish cadence, right-edge "
           "inserts, serve_snapshot_publishes_total";
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    Dataset data;
    data.name = "timeseries";
    const size_t n = cfg.points();
    Rng rng(cfg.seed);
    data.points.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      // Strictly increasing time stamps: coordinate-unique by
      // construction (removes key on coordinates).
      const double x = 0.7 * (static_cast<double>(i) + 0.5) /
                       static_cast<double>(n);
      data.points.push_back(
          Point{x, rng.NextDouble(), static_cast<int64_t>(i)});
    }
    data.bounds = Rect::Of(0.0, 0.0, 1.0, 1.0);
    return data;
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    // Sliding windows of width 0.05 across the whole timeline (appended
    // region included, so late windows read fresh data).
    Workload w;
    w.name = "timeseries/windows";
    w.selectivity = 0.05;
    Rng rng(cfg.seed + 1);
    const size_t n_queries = 1024;
    w.queries.reserve(n_queries);
    (void)data;
    for (size_t i = 0; i < n_queries; ++i) {
      const double lo = rng.NextDouble() * 0.95;
      w.queries.push_back(Rect::Of(lo, 0.0, lo + 0.05, 1.0));
    }
    return w;
  }

  // The append stream: deterministic continuation of the time axis.
  static std::vector<Point> AppendStream(const ScenarioConfig& cfg) {
    const size_t n = cfg.points();
    const size_t m = std::max<size_t>(1, n / 10);
    std::vector<Point> stream;
    stream.reserve(m);
    Rng rng(cfg.seed + 2);
    for (size_t j = 0; j < m; ++j) {
      const double x = 0.7 + 0.3 * (static_cast<double>(j) + 0.5) /
                                 static_cast<double>(m);
      stream.push_back(Point{x, rng.NextDouble(),
                             static_cast<int64_t>(2000000000 + j)});
    }
    return stream;
  }

 protected:
  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>* failures) const override {
    const std::vector<Point> stream = AppendStream(cfg);
    const std::vector<Rect>& windows = ctx.workload->queries;
    serve::ServeLoop* loop = ctx.loop;
    // Shared cursor: each append consumes the next stream slot exactly
    // once, so the applied prefix is exact regardless of interleaving.
    auto next_append = std::make_shared<std::atomic<size_t>>(0);
    auto writes = std::make_shared<std::atomic<int64_t>>(0);
    const int threads = cfg.client_threads();
    std::vector<size_t> read_cursor(static_cast<size_t>(threads), 0);
    for (int t = 0; t < threads; ++t) {
      read_cursor[static_cast<size_t>(t)] =
          static_cast<size_t>(t) * 131;  // per-thread offset, deterministic
    }
    const OpsResult ops = DriveOps(
        threads, cfg.phase_seconds(), cfg.seed + 100,
        [&, loop](int t, Rng& rng) {
          if (rng.NextBelow(100) < 30) {
            const size_t j =
                next_append->fetch_add(1, std::memory_order_relaxed);
            if (j < stream.size()) {
              loop->SubmitInsert(stream[j]);
              writes->fetch_add(1, std::memory_order_relaxed);
              return true;
            }
            // Stream exhausted: fall through to a read so the op still
            // does work.
          }
          size_t& cursor = read_cursor[static_cast<size_t>(t)];
          const Rect& q = windows[cursor++ % windows.size()];
          loop->Range(q);
          return true;
        });
    appended_ = std::min(next_append->load(), stream.size());
    if (ops.errors > 0) {
      failures->push_back("drive reported errors: " +
                          std::to_string(ops.errors));
    }
    phases->push_back(
        PhaseFromOps("append_range", ops, writes->load()));
  }

  void Check(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Exact membership diff: quiesced whole-domain scan == initial
    // points + the applied append prefix (no lost or duplicated
    // appends across snapshot publishes).
    const std::vector<Point> stream = AppendStream(cfg);
    std::vector<int64_t> expected;
    expected.reserve(ctx.data->points.size() + appended_);
    for (const Point& p : ctx.data->points) expected.push_back(p.id);
    for (size_t j = 0; j < appended_; ++j) expected.push_back(stream[j].id);
    std::sort(expected.begin(), expected.end());

    const serve::QueryResult all =
        ctx.loop->Range(Rect::Of(0.0, 0.0, 1.0, 1.0));
    std::vector<int64_t> got;
    got.reserve(all.hits.size());
    for (const Point& p : all.hits) got.push_back(p.id);
    std::sort(got.begin(), got.end());
    ++*checks;
    if (got != expected) {
      failures->push_back(
          "membership mismatch after appends: expected " +
          std::to_string(expected.size()) + " ids, got " +
          std::to_string(got.size()));
    }
    // The newest applied append must be point-visible too.
    if (appended_ > 0) {
      ++*checks;
      if (!ctx.loop->PointLookup(stream[appended_ - 1])) {
        failures->push_back("latest applied append not point-visible");
      }
    }
  }

 private:
  // Applied append count, handed from Drive to Check (Run calls them in
  // sequence on one thread).
  mutable size_t appended_ = 0;
};

}  // namespace

std::unique_ptr<Scenario> MakeTimeseriesScenario() {
  return std::make_unique<TimeseriesScenario>();
}

}  // namespace wazi::bench::workloads

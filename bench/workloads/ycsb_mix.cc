// YCSB-style read/write mix: the standard serving profile, driven
// through RunClientLoad with a hot set — phase "b" is the YCSB-B shape
// (95% reads, hot 10% of the workload absorbing 90% of them) over a
// result cache, phase "update_heavy" leans to 20% writes and measures
// the same loop with invalidation pressure. This is the scenario whose
// numbers most resemble the serve-smoke bench, recorded per phase so
// the trajectory separates the cache-friendly and churny regimes.

#include <string>
#include <vector>

#include "workload/query_generator.h"
#include "workload/region_generator.h"
#include "workloads/scenario.h"

namespace wazi::bench::workloads {
namespace {

class YcsbMixScenario : public Scenario {
 public:
  std::string id() const override { return "ycsb_mix"; }
  std::string description() const override {
    return "YCSB-style hot-set read/write mix over a result cache";
  }
  std::string op_mix() const override {
    return "phase b: 95r/5w, 90% of reads on a hot 10%; "
           "phase update_heavy: 80r/20w";
  }
  std::string stresses() const override {
    return "result cache hit/invalidation balance, mixed admission, "
           "per-shard writers under steady writes";
  }

  Dataset GenerateData(const ScenarioConfig& cfg) const override {
    return GenerateRegion(Region::kNewYork, cfg.points(), cfg.seed);
  }

  Workload GenerateQueries(const ScenarioConfig& cfg,
                           const Dataset& data) const override {
    QueryGenOptions qopts;
    qopts.num_queries = 1024;
    qopts.selectivity = kSelectivityMid2;
    qopts.seed = cfg.seed + 1;
    return GenerateCheckinWorkload(Region::kNewYork, data.bounds, qopts);
  }

  serve::ServeOptions Options(const ScenarioConfig& cfg) const override {
    serve::ServeOptions opts = Scenario::Options(cfg);
    opts.num_shards = 2;
    opts.cache.capacity_bytes = 16u << 20;  // the hot set should fit
    return opts;
  }

 protected:
  bool SupportsNet() const override { return true; }

  void Drive(const ScenarioConfig& cfg, RunContext& ctx,
             std::vector<PhaseResult>* phases,
             std::vector<std::string>*) const override {
    serve::ServeLoop* loop = ctx.loop;
    {
      serve::ClientLoadOptions copts;
      copts.threads = cfg.client_threads();
      copts.seconds = cfg.phase_seconds();
      copts.write_pct = 5;
      copts.hot_fraction = 0.1;  // hot 10% of the query stream...
      copts.hot_pct = 90;        // ...absorbs 90% of reads
      const serve::ResultCacheStats before = loop->cache_stats();
      const serve::ClientLoadResult b = ctx.run_load(*ctx.workload, copts);
      phases->push_back(PhaseFromLoad("b", b, before, loop->cache_stats()));
    }
    {
      serve::ClientLoadOptions copts;
      copts.threads = cfg.client_threads();
      copts.seconds = cfg.phase_seconds();
      copts.write_pct = 20;
      copts.hot_fraction = 0.1;
      copts.hot_pct = 90;
      const serve::ResultCacheStats before = loop->cache_stats();
      const serve::ClientLoadResult u = ctx.run_load(*ctx.workload, copts);
      phases->push_back(
          PhaseFromLoad("update_heavy", u, before, loop->cache_stats()));
    }
  }

  void Check(const ScenarioConfig&, RunContext& ctx,
             std::vector<std::string>* failures,
             int64_t* checks) const override {
    // Bounds, not exact membership: the driver's inserts land in
    // insert_region with driver-allocated ids, so the quiesced loop must
    // hold at least the base dataset (a write-only-insert mix can never
    // shrink it).
    const serve::QueryResult all = ctx.loop->Range(ctx.data->bounds);
    ++*checks;
    if (all.hits.size() < ctx.data->points.size()) {
      failures->push_back(
          "base dataset shrank under a write-only-insert mix: " +
          std::to_string(all.hits.size()) + " < " +
          std::to_string(ctx.data->points.size()));
    }
    // The cache must have produced a sane hit accounting.
    const serve::ResultCacheStats cache = ctx.loop->cache_stats();
    ++*checks;
    if (cache.hits < 0 || cache.misses < 0) {
      failures->push_back("negative cache counters");
    }
    ++*checks;
    if (ctx.loop->epoch() < 1) {
      failures->push_back("epoch went below its starting value");
    }
  }
};

}  // namespace

std::unique_ptr<Scenario> MakeYcsbMixScenario() {
  return std::make_unique<YcsbMixScenario>();
}

}  // namespace wazi::bench::workloads

// Advanced features beyond plain range queries: kNN by range expansion,
// spatial joins, index persistence, and drift monitoring — the library's
// implementations of the paper's §6.3 remarks and §7 future work.
//
//   ./examples/advanced_features

#include <cstdio>

#include "common/timer.h"
#include "core/drift_monitor.h"
#include "core/wazi.h"
#include "index/knn.h"
#include "index/spatial_join.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

int main() {
  using namespace wazi;

  const Dataset data = GenerateRegion(Region::kJapan, 150000, 42);
  QueryGenOptions qopts;
  qopts.num_queries = 2000;
  qopts.selectivity = kSelectivityMid2;
  const Workload workload =
      GenerateCheckinWorkload(Region::kJapan, data.bounds, qopts);

  Wazi index;
  index.Build(data, workload, BuildOptions{});
  std::printf("built wazi over %zu Japan POIs\n\n", data.size());

  // --- kNN: the 10 POIs nearest to a Tokyo-like location. ---
  const Point tokyo{0.60, 0.52, 0};
  const KnnResult knn = KnnByRangeExpansion(index, tokyo, 10, data.bounds);
  std::printf("10-NN of (%.2f, %.2f) via %d expanding range queries; "
              "nearest id=%lld at (%.4f, %.4f)\n",
              tokyo.x, tokyo.y, knn.range_queries_issued,
              static_cast<long long>(knn.neighbors.front().id),
              knn.neighbors.front().x, knn.neighbors.front().y);

  // --- Spatial join: POIs within walking distance of 1,000 "users". ---
  const std::vector<Point> users = SamplePointQueries(data, 1000, 9);
  Timer join_timer;
  const std::vector<JoinPair> pairs = DistanceJoin(index, users, 0.005);
  std::printf("distance join: %zu (user, poi) pairs within 0.005 for %zu "
              "users in %lldms\n",
              pairs.size(), users.size(),
              static_cast<long long>(join_timer.ElapsedNs() / 1000000));

  // --- Persistence: save, reload, query again. ---
  const std::string path = "/tmp/wazi_advanced_example.idx";
  if (index.SaveToFile(path)) {
    Wazi reloaded;
    if (reloaded.LoadFromFile(path)) {
      std::vector<Point> hits;
      reloaded.RangeQuery(Rect::Of(0.59, 0.51, 0.61, 0.53), &hits);
      std::printf("persistence: reloaded index from %s, viewport query -> "
                  "%zu POIs\n",
                  path.c_str(), hits.size());
    }
  }

  // --- Drift monitoring: watch the workload change and react. ---
  DriftMonitorOptions mopts;
  mopts.calibration_queries = 400;
  mopts.patience = 100;
  mopts.degradation_factor = 1.3;
  DriftMonitor monitor(mopts);
  auto serve = [&](const Workload& w) {
    std::vector<Point> sink;
    for (const Rect& q : w.queries) {
      QueryStats qs;
      sink.clear();
      index.RangeQuery(q, &sink, &qs);
      monitor.Observe(qs.points_scanned, qs.results);
    }
  };
  serve(workload);
  std::printf("drift monitor after original workload: ratio %.2f, "
              "rebuild recommended: %s\n",
              monitor.drift_ratio(),
              monitor.rebuild_recommended() ? "yes" : "no");
  qopts.seed = 1234;  // the popular venues move
  const Workload drifted =
      GenerateCheckinWorkload(Region::kJapan, data.bounds, qopts);
  serve(drifted);
  serve(drifted);
  std::printf("after serving a differently-skewed workload: ratio %.2f, "
              "rebuild recommended: %s\n",
              monitor.drift_ratio(),
              monitor.rebuild_recommended() ? "yes" : "no");
  if (monitor.rebuild_recommended()) {
    index.Build(data, drifted, BuildOptions{});
    monitor.ResetAfterRebuild();
    std::printf("rebuilt on the drifted workload.\n");
  }
  return 0;
}

// Bake-off across the whole index family on one scenario: build time,
// size, range/point query latency, and work counters — a compact version
// of the paper's evaluation for a single dataset.
//
//   ./examples/index_comparison [region] [num_points]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "index/spatial_index.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

int main(int argc, char** argv) {
  using namespace wazi;

  Region region = Region::kCaliNev;
  if (argc > 1 && !ParseRegion(argv[1], &region)) {
    std::fprintf(stderr, "unknown region '%s' (CaliNev|NewYork|Japan|Iberia)\n",
                 argv[1]);
    return 1;
  }
  const size_t n = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 100000;

  const Dataset data = GenerateRegion(region, n, 42);
  QueryGenOptions qopts;
  qopts.num_queries = 2000;
  qopts.selectivity = kSelectivityMid2;
  const Workload workload =
      GenerateCheckinWorkload(region, data.bounds, qopts);
  const std::vector<Point> probes = SamplePointQueries(data, 2000, 7);

  std::printf("index comparison on %s (%zu points, %zu queries, "
              "sel 0.0256%%)\n\n",
              data.name.c_str(), data.size(), workload.size());
  std::printf("%-8s %8s %9s %11s %11s %9s\n", "index", "build", "size",
              "range ns/q", "point ns/q", "pts/query");
  for (const std::string& name : AllIndexNames()) {
    auto index = MakeIndex(name);
    BuildOptions opts;
    Timer build_timer;
    index->Build(data, workload, opts);
    const double build_s = build_timer.ElapsedSeconds();

    QueryStats qs;
    std::vector<Point> sink;
    Timer range_timer;
    for (const Rect& q : workload.queries) {
      sink.clear();
      index->RangeQuery(q, &sink, &qs);
    }
    const double range_ns =
        static_cast<double>(range_timer.ElapsedNs()) / workload.size();
    const double pts_per_q =
        static_cast<double>(qs.points_scanned) / workload.size();

    Timer point_timer;
    int found = 0;
    for (const Point& p : probes) found += index->PointQuery(p);
    const double point_ns =
        static_cast<double>(point_timer.ElapsedNs()) / probes.size();
    if (found != static_cast<int>(probes.size())) {
      std::fprintf(stderr, "%s lost points!\n", name.c_str());
      return 1;
    }

    std::printf("%-8s %7.2fs %7.1fMB %11.0f %11.0f %9.0f\n", name.c_str(),
                build_s,
                static_cast<double>(index->SizeBytes()) / (1024.0 * 1024.0),
                range_ns, point_ns, pts_per_q);
  }
  return 0;
}

// Location-based-service scenario: a map service indexing New-York-style
// points of interest, serving "viewport" range queries whose distribution
// follows user check-ins (paper §1's motivating workload). Compares WaZI
// against the Base Z-index on the exact work the service cares about.
//
//   ./examples/poi_search [num_points]

#include <cstdio>
#include <cstdlib>

#include "common/timer.h"
#include "core/wazi.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

int main(int argc, char** argv) {
  using namespace wazi;

  const size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200000;
  const Dataset data = GenerateRegion(Region::kNewYork, n, /*seed=*/42);

  // The service's historical query log: viewport queries centred on
  // popular venues, at two zoom levels.
  QueryGenOptions qopts;
  qopts.num_queries = 4000;
  qopts.selectivity = kSelectivityMid2;  // "neighbourhood" zoom
  const Workload log_mid =
      GenerateCheckinWorkload(Region::kNewYork, data.bounds, qopts);
  qopts.selectivity = kSelectivityHigh;  // "district" zoom
  qopts.seed = 8;
  const Workload log_wide =
      GenerateCheckinWorkload(Region::kNewYork, data.bounds, qopts);

  Workload log = log_mid;
  log.queries.insert(log.queries.end(), log_wide.queries.begin(),
                     log_wide.queries.end());

  std::printf("POI search demo: %zu POIs, %zu logged viewport queries\n\n",
              data.size(), log.size());

  BuildOptions opts;
  auto run = [&](ZIndexVariant& index, const char* label) {
    Timer build_timer;
    index.Build(data, log, opts);
    const double build_s = build_timer.ElapsedSeconds();

    QueryStats qs;
    std::vector<Point> viewport;
    Timer query_timer;
    for (const Rect& q : log.queries) {
      viewport.clear();
      index.RangeQuery(q, &viewport, &qs);
    }
    const double ns_per_q =
        static_cast<double>(query_timer.ElapsedNs()) / log.size();
    std::printf("%-6s build %.2fs | %7.0f ns/viewport | %5.1f pages and "
                "%6.0f points touched per viewport\n",
                label, build_s, ns_per_q,
                static_cast<double>(qs.pages_scanned) / log.size(),
                static_cast<double>(qs.points_scanned) / log.size());
    return ns_per_q;
  };

  BaseZ base;
  Wazi wazi_index;
  const double base_ns = run(base, "base");
  const double wazi_ns = run(wazi_index, "wazi");
  std::printf("\nWaZI serves viewports %.0f%% faster than the base Z-index "
              "on this workload.\n",
              100.0 * (base_ns - wazi_ns) / base_ns);

  // A single concrete lookup, as an app would issue it.
  const Rect times_square = Rect::Of(0.47, 0.56, 0.49, 0.60);
  std::vector<Point> hits;
  wazi_index.RangeQuery(times_square, &hits);
  std::printf("viewport %s -> %zu POIs\n",
              times_square.DebugString().c_str(), hits.size());
  return 0;
}

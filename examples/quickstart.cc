// Quickstart: build a WaZI index over a synthetic region, run range and
// point queries, and print what the index did.
//
//   ./examples/quickstart

#include <cstdio>

#include "common/timer.h"
#include "core/wazi.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

int main() {
  using namespace wazi;

  // 1. Data: 100k points-of-interest shaped like the California coast.
  const Dataset data = GenerateRegion(Region::kCaliNev, 100000, /*seed=*/42);
  std::printf("dataset: %s, %zu points\n", data.name.c_str(), data.size());

  // 2. Anticipated workload: 2,000 skewed range queries (check-in style),
  //    each covering 0.0256%% of the data space.
  QueryGenOptions qopts;
  qopts.num_queries = 2000;
  qopts.selectivity = kSelectivityMid2;
  const Workload workload =
      GenerateCheckinWorkload(Region::kCaliNev, data.bounds, qopts);

  // 3. Build WaZI: workload-aware partitioning + look-ahead skipping.
  Wazi index;
  BuildOptions opts;  // leaf capacity 256, kappa=32, alpha=1e-5
  Timer build_timer;
  index.Build(data, workload, opts);
  std::printf("built wazi in %.2fs: %zu leaves, %zu nodes, %.1f MB\n",
              build_timer.ElapsedSeconds(), index.zindex().num_leaves(),
              index.zindex().num_nodes(),
              static_cast<double>(index.SizeBytes()) / (1024.0 * 1024.0));

  // 4. Range query.
  const Rect viewport = Rect::Of(0.40, 0.20, 0.48, 0.28);  // LA-ish window
  std::vector<Point> hits;
  QueryStats qs;  // per-call work counters (thread-safe out-param form)
  Timer query_timer;
  index.RangeQuery(viewport, &hits, &qs);
  std::printf("range query %s -> %zu points in %ldus\n",
              viewport.DebugString().c_str(), hits.size(),
              query_timer.ElapsedNs() / 1000);
  std::printf("  work: %lld bounding boxes checked, %lld pages scanned, "
              "%lld points filtered\n",
              static_cast<long long>(qs.bbs_checked),
              static_cast<long long>(qs.pages_scanned),
              static_cast<long long>(qs.points_scanned));

  // 5. Point query.
  const Point probe = data.points[12345];
  std::printf("point query (%.4f, %.4f) -> %s\n", probe.x, probe.y,
              index.PointQuery(probe) ? "found" : "missing");

  // 6. Updates: insert a new point and find it again.
  const Point fresh{0.444, 0.244, 1000000};
  index.Insert(fresh);
  std::printf("inserted (%.3f, %.3f) -> point query %s\n", fresh.x, fresh.y,
              index.PointQuery(fresh) ? "found" : "missing");
  return 0;
}

// Workload adaptation and drift: builds WaZI for one workload, shows the
// advantage over Base, then drifts the workload (paper §6.8) and shows
// when a rebuild pays off.
//
//   ./examples/workload_adaptation

#include <algorithm>
#include <cstdio>
#include <vector>

#include "common/timer.h"
#include "core/wazi.h"
#include "workload/query_generator.h"
#include "workload/region_generator.h"

namespace {

double AvgNs(const wazi::SpatialIndex& index, const wazi::Workload& w) {
  std::vector<wazi::Point> sink;
  // Warmup pass, then median of three timed passes.
  for (const wazi::Rect& q : w.queries) {
    sink.clear();
    index.RangeQuery(q, &sink);
  }
  std::vector<double> runs;
  for (int rep = 0; rep < 3; ++rep) {
    wazi::Timer timer;
    for (const wazi::Rect& q : w.queries) {
      sink.clear();
      index.RangeQuery(q, &sink);
    }
    runs.push_back(static_cast<double>(timer.ElapsedNs()) / w.size());
  }
  std::sort(runs.begin(), runs.end());
  return runs[1];
}

}  // namespace

int main() {
  using namespace wazi;

  const Dataset data = GenerateRegion(Region::kIberia, 200000, 42);
  QueryGenOptions qopts;
  qopts.num_queries = 3000;
  qopts.selectivity = kSelectivityMid2;
  const Workload original =
      GenerateCheckinWorkload(Region::kIberia, data.bounds, qopts);
  // A differently-skewed workload over the same region: fresh venue seed,
  // so the popular places move but queries still land on data.
  qopts.seed = 99;
  const Workload other =
      GenerateCheckinWorkload(Region::kIberia, data.bounds, qopts);

  BuildOptions opts;
  BaseZ base;
  base.Build(data, original, opts);
  Wazi trained;
  trained.Build(data, original, opts);

  std::printf("drift%%   base(ns)   wazi(ns)   wazi/base\n");
  double last_ratio = 0.0;
  for (const double frac : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const Workload drifted = BlendWorkloads(original, other, frac, 5);
    const double b = AvgNs(base, drifted);
    const double w = AvgNs(trained, drifted);
    last_ratio = w / b;
    std::printf("%5.0f%%   %8.0f   %8.0f   %8.2f\n", frac * 100, b, w,
                last_ratio);
  }

  if (last_ratio > 1.0) {
    std::printf("\nworkload drifted past break-even: rebuilding WaZI on the "
                "new workload...\n");
  } else {
    std::printf("\nrebuilding WaZI on the new workload anyway, to show the "
                "recovered margin...\n");
  }
  Timer rebuild_timer;
  Wazi retrained;
  retrained.Build(data, other, opts);
  std::printf("rebuild took %.2fs; on the new workload: base %8.0f ns, "
              "retrained wazi %8.0f ns\n",
              rebuild_timer.ElapsedSeconds(), AvgNs(base, other),
              AvgNs(retrained, other));
  return 0;
}

#include "baselines/cur_tree.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/density_adapters.h"
#include "density/kd_forest.h"

namespace wazi {
namespace {

// Sorts pts/weights jointly by a comparator over points.
template <typename Cmp>
void SortJoint(std::vector<Point>* pts, std::vector<double>* weights,
               size_t begin, size_t end, Cmp cmp) {
  std::vector<size_t> idx(end - begin);
  std::iota(idx.begin(), idx.end(), begin);
  std::sort(idx.begin(), idx.end(),
            [&](size_t a, size_t b) { return cmp((*pts)[a], (*pts)[b]); });
  std::vector<Point> tmp_p(end - begin);
  std::vector<double> tmp_w(end - begin);
  for (size_t i = 0; i < idx.size(); ++i) {
    tmp_p[i] = (*pts)[idx[i]];
    tmp_w[i] = (*weights)[idx[i]];
  }
  std::copy(tmp_p.begin(), tmp_p.end(), pts->begin() + begin);
  std::copy(tmp_w.begin(), tmp_w.end(), weights->begin() + begin);
}

}  // namespace

std::vector<uint32_t> WeightedStrTile(std::vector<Point>* pts,
                                      std::vector<double>* weights,
                                      int leaf_capacity) {
  const size_t n = pts->size();
  std::vector<uint32_t> offsets;
  if (n == 0) return {0, 0};

  const double total_w = std::accumulate(weights->begin(), weights->end(), 0.0);
  const size_t leaves =
      (n + leaf_capacity - 1) / static_cast<size_t>(leaf_capacity);
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<size_t>(1, leaves)))));
  const double slab_target = total_w / static_cast<double>(slabs);
  const double leaf_target =
      total_w / static_cast<double>(std::max<size_t>(1, leaves));

  SortJoint(pts, weights, 0, n,
            [](const Point& a, const Point& b) { return a.x < b.x; });

  size_t slab_begin = 0;
  double slab_acc = 0.0;
  auto close_slab = [&](size_t slab_end) {
    SortJoint(pts, weights, slab_begin, slab_end,
              [](const Point& a, const Point& b) { return a.y < b.y; });
    // Leaf boundaries: close a leaf when its weight reaches the target or
    // its size reaches L, whichever first.
    size_t leaf_begin = slab_begin;
    double leaf_acc = 0.0;
    for (size_t i = slab_begin; i < slab_end; ++i) {
      if (i == leaf_begin) offsets.push_back(static_cast<uint32_t>(i));
      leaf_acc += (*weights)[i];
      const size_t count = i - leaf_begin + 1;
      if ((leaf_acc >= leaf_target && i + 1 < slab_end) ||
          count >= static_cast<size_t>(leaf_capacity)) {
        leaf_begin = i + 1;
        leaf_acc = 0.0;
      }
    }
    slab_begin = slab_end;
    slab_acc = 0.0;
  };

  for (size_t i = 0; i < n; ++i) {
    slab_acc += (*weights)[i];
    const size_t count = i - slab_begin + 1;
    // Cap slab size so a zero-weight region cannot absorb everything.
    const size_t max_slab = std::max<size_t>(
        static_cast<size_t>(leaf_capacity),
        2 * ((n + slabs - 1) / slabs));
    if ((slab_acc >= slab_target && i + 1 < n) || count >= max_slab) {
      close_slab(i + 1);
    }
  }
  if (slab_begin < n) close_slab(n);
  offsets.push_back(static_cast<uint32_t>(n));
  return offsets;
}

void CurTree::Build(const Dataset& data, const Workload& workload,
                    const BuildOptions& opts) {
  // Weighted RFDE over query corners; weight(p) = 1 + #queries fetching p
  // (the +1 keeps cold regions packing at full pages).
  KdForest query_forest;
  {
    std::vector<DVec> rows = QueryCornerRows(workload);
    KdForestOptions fo;
    fo.dim = 4;
    fo.num_trees = std::max(2, opts.rfde_trees / 2);
    fo.subsample = opts.rfde_subsample;
    fo.leaf_size = opts.rfde_leaf_size;
    fo.seed = opts.seed + 17;
    query_forest.Build(rows, {}, fo);
  }
  std::vector<Point> pts = data.points;
  std::vector<double> weights(pts.size(), 1.0);
  if (query_forest.built() && !workload.queries.empty()) {
    for (size_t i = 0; i < pts.size(); ++i) {
      weights[i] = 1.0 + EstimateQueriesCovering(query_forest, pts[i]);
    }
  }
  const std::vector<uint32_t> offsets =
      WeightedStrTile(&pts, &weights, opts.leaf_capacity);
  RTree::Options ropts;
  ropts.leaf_capacity = opts.leaf_capacity;
  tree_.BulkLoad(std::move(pts), offsets, ropts);
  stats_.Reset();
}

void CurTree::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  tree_.RangeQuery(query, out, stats);
}

void CurTree::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  tree_.Project(query, proj, stats);
}

bool CurTree::DoPointQuery(const Point& p, QueryStats* stats) const {
  return tree_.PointQuery(p.x, p.y, stats);
}

bool CurTree::Insert(const Point& p) {
  tree_.Insert(p);
  return true;
}

bool CurTree::Remove(const Point& p) { return tree_.Remove(p.x, p.y); }

size_t CurTree::SizeBytes() const { return tree_.SizeBytes(); }

}  // namespace wazi

// Cost-based Unbalanced R-tree (Ross, Sitzmann & Stuckey, SSDBM 2001),
// adapted to point data as in the paper's §6.1: each point is weighted by
// the (estimated) number of workload queries that fetch it — a 4-D
// dominance count on the query-corner RFDE forest — and the Sort-Tile-
// Recursive pass balances *weight* rather than cardinality. Hot regions
// therefore get smaller leaves (cheaper per-query scans), cold regions
// get full pages.

#ifndef WAZI_BASELINES_CUR_TREE_H_
#define WAZI_BASELINES_CUR_TREE_H_

#include <string>
#include <vector>

#include "baselines/rtree_base.h"
#include "index/spatial_index.h"

namespace wazi {

// Weighted STR tiling: sorts `pts` into tiling order, balancing slabs and
// leaves by `weights` (parallel to pts before sorting — the function
// reorders both). Returns leaf offsets with end sentinel.
std::vector<uint32_t> WeightedStrTile(std::vector<Point>* pts,
                                      std::vector<double>* weights,
                                      int leaf_capacity);

class CurTree : public SpatialIndex {
 public:
  std::string name() const override { return "cur"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  size_t SizeBytes() const override;

 private:
  RTree tree_;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_CUR_TREE_H_

#include "baselines/flood.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/timer.h"

namespace wazi {
namespace {

double PartKey(const Point& p, bool partition_x) {
  return partition_x ? p.x : p.y;
}
double SortKey(const Point& p, bool partition_x) {
  return partition_x ? p.y : p.x;
}

}  // namespace

size_t Flood::ColumnOf(double v) const {
  return static_cast<size_t>(
      std::upper_bound(col_bounds_.begin(), col_bounds_.end(), v) -
      col_bounds_.begin());
}

void Flood::BuildLayout(const std::vector<Point>& points, bool partition_x,
                        size_t num_cols) {
  partition_x_ = partition_x;
  num_cols = std::max<size_t>(1, num_cols);
  // Equi-depth boundaries on the partition dimension.
  std::vector<double> keys;
  keys.reserve(points.size());
  for (const Point& p : points) keys.push_back(PartKey(p, partition_x));
  std::sort(keys.begin(), keys.end());
  col_bounds_.clear();
  for (size_t c = 1; c < num_cols; ++c) {
    const size_t pos = c * keys.size() / num_cols;
    col_bounds_.push_back(keys[std::min(pos, keys.size() - 1)]);
  }
  cols_.assign(num_cols, {});
  for (const Point& p : points) {
    cols_[ColumnOf(PartKey(p, partition_x))].push_back(p);
  }
  for (std::vector<Point>& col : cols_) {
    std::sort(col.begin(), col.end(), [&](const Point& a, const Point& b) {
      return SortKey(a, partition_x) < SortKey(b, partition_x);
    });
  }
}

int64_t Flood::MeasureQueries(const std::vector<Rect>& queries) const {
  Timer timer;
  std::vector<Point> sink;
  for (const Rect& q : queries) {
    sink.clear();
    RangeQuery(q, &sink);
  }
  return timer.ElapsedNs();
}

void Flood::Build(const Dataset& data, const Workload& workload,
                  const BuildOptions& opts) {
  const size_t n = data.points.size();
  const size_t c0 = std::max<size_t>(
      1, static_cast<size_t>(std::sqrt(
             static_cast<double>(n) /
             static_cast<double>(std::max(1, opts.leaf_capacity)))));

  std::vector<Candidate> candidates;
  for (const size_t mult_num : {1u, 2u, 4u, 8u}) {
    for (const bool px : {true, false}) {
      candidates.push_back(Candidate{px, std::max<size_t>(1, c0 * mult_num / 2)});
    }
  }

  // Evaluate candidates on a sample of data and queries.
  std::vector<Point> sample;
  const size_t sample_n = std::min<size_t>(n, 100000);
  if (sample_n == n) {
    sample = data.points;
  } else {
    Rng rng(opts.seed + 5);
    sample.reserve(sample_n);
    for (size_t i = 0; i < sample_n; ++i) {
      sample.push_back(data.points[rng.NextBelow(n)]);
    }
  }
  std::vector<Rect> sample_queries;
  {
    Rng rng(opts.seed + 6);
    const size_t qn =
        std::min<size_t>(workload.queries.size(), opts.flood_sample_queries);
    for (size_t i = 0; i < qn; ++i) {
      sample_queries.push_back(
          workload.queries[rng.NextBelow(workload.queries.size())]);
    }
  }

  Candidate best = candidates.front();
  if (!sample_queries.empty()) {
    int64_t best_ns = 0;
    bool first = true;
    // Scale the candidate column count to the sample size so the chosen
    // layout transfers to the full build.
    const double scale = static_cast<double>(sample.size()) /
                         static_cast<double>(std::max<size_t>(1, n));
    for (const Candidate& cand : candidates) {
      const size_t cols = std::max<size_t>(
          1, static_cast<size_t>(std::lround(
                 static_cast<double>(cand.num_cols) * std::sqrt(scale))));
      BuildLayout(sample, cand.partition_x, cols);
      const int64_t ns = MeasureQueries(sample_queries);
      if (first || ns < best_ns) {
        best = cand;
        best_ns = ns;
        first = false;
      }
    }
  }
  BuildLayout(data.points, best.partition_x, best.num_cols);
  stats_.Reset();
}

void Flood::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  const double part_lo = partition_x_ ? query.min_x : query.min_y;
  const double part_hi = partition_x_ ? query.max_x : query.max_y;
  const double sort_lo = partition_x_ ? query.min_y : query.min_x;
  const double sort_hi = partition_x_ ? query.max_y : query.max_x;
  const size_t c_lo = ColumnOf(part_lo);
  const size_t c_hi = ColumnOf(part_hi);
  for (size_t c = c_lo; c <= c_hi && c < cols_.size(); ++c) {
    const std::vector<Point>& col = cols_[c];
    auto lo_it = std::lower_bound(
        col.begin(), col.end(), sort_lo, [&](const Point& p, double v) {
          return SortKey(p, partition_x_) < v;
        });
    ++stats->pages_scanned;
    for (auto it = lo_it; it != col.end(); ++it) {
      if (SortKey(*it, partition_x_) > sort_hi) break;
      ++stats->points_scanned;
      if (query.Contains(*it)) {
        out->push_back(*it);
        ++stats->results;
      }
    }
  }
}

void Flood::DoProject(const Rect& query, Projection* proj,
               QueryStats* /*stats*/) const {
  const double part_lo = partition_x_ ? query.min_x : query.min_y;
  const double part_hi = partition_x_ ? query.max_x : query.max_y;
  const double sort_lo = partition_x_ ? query.min_y : query.min_x;
  const double sort_hi = partition_x_ ? query.max_y : query.max_x;
  const size_t c_lo = ColumnOf(part_lo);
  const size_t c_hi = ColumnOf(part_hi);
  for (size_t c = c_lo; c <= c_hi && c < cols_.size(); ++c) {
    const std::vector<Point>& col = cols_[c];
    auto lo_it = std::lower_bound(
        col.begin(), col.end(), sort_lo, [&](const Point& p, double v) {
          return SortKey(p, partition_x_) < v;
        });
    auto hi_it = std::upper_bound(
        col.begin(), col.end(), sort_hi, [&](double v, const Point& p) {
          return v < SortKey(p, partition_x_);
        });
    if (lo_it != hi_it) {
      proj->push_back(Span{&*lo_it, &*lo_it + (hi_it - lo_it)});
    }
  }
}

bool Flood::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (cols_.empty()) return false;
  const std::vector<Point>& col = cols_[ColumnOf(PartKey(p, partition_x_))];
  const double key = SortKey(p, partition_x_);
  auto it = std::lower_bound(col.begin(), col.end(), key,
                             [&](const Point& q, double v) {
                               return SortKey(q, partition_x_) < v;
                             });
  ++stats->pages_scanned;
  for (; it != col.end() && SortKey(*it, partition_x_) == key; ++it) {
    ++stats->points_scanned;
    if (it->x == p.x && it->y == p.y) return true;
  }
  return false;
}

bool Flood::Insert(const Point& p) {
  if (cols_.empty()) return false;
  std::vector<Point>& col = cols_[ColumnOf(PartKey(p, partition_x_))];
  const double key = SortKey(p, partition_x_);
  auto it = std::upper_bound(col.begin(), col.end(), key,
                             [&](double v, const Point& q) {
                               return v < SortKey(q, partition_x_);
                             });
  col.insert(it, p);
  return true;
}

bool Flood::Remove(const Point& p) {
  if (cols_.empty()) return false;
  std::vector<Point>& col = cols_[ColumnOf(PartKey(p, partition_x_))];
  const double key = SortKey(p, partition_x_);
  auto it = std::lower_bound(col.begin(), col.end(), key,
                             [&](const Point& q, double v) {
                               return SortKey(q, partition_x_) < v;
                             });
  for (; it != col.end() && SortKey(*it, partition_x_) == key; ++it) {
    if (it->x == p.x && it->y == p.y) {
      col.erase(it);
      return true;
    }
  }
  return false;
}

size_t Flood::SizeBytes() const {
  size_t bytes = sizeof(*this) + col_bounds_.capacity() * sizeof(double);
  for (const auto& col : cols_) bytes += col.capacity() * sizeof(Point);
  return bytes;
}

}  // namespace wazi

// Simplified 2-D Flood (Nathan et al., SIGMOD 2020), per the paper's §6.1:
// an equi-depth column grid over one dimension with points sorted by the
// other dimension inside each column. The layout (orientation and column
// count) is chosen by executing a sub-sample of the query workload against
// candidate layouts built on a data sample and keeping the fastest.

#ifndef WAZI_BASELINES_FLOOD_H_
#define WAZI_BASELINES_FLOOD_H_

#include <string>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

class Flood : public SpatialIndex {
 public:
  std::string name() const override { return "flood"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool SupportsUpdates() const override { return true; }
  size_t SizeBytes() const override;

  // Chosen layout, for tests/diagnostics.
  bool partition_x() const { return partition_x_; }
  size_t num_columns() const { return cols_.size(); }

 private:
  struct Candidate {
    bool partition_x;
    size_t num_cols;
  };

  void BuildLayout(const std::vector<Point>& points, bool partition_x,
                   size_t num_cols);
  // Total time (ns) to run `queries` against the current layout.
  int64_t MeasureQueries(const std::vector<Rect>& queries) const;

  size_t ColumnOf(double v) const;

  bool partition_x_ = true;
  std::vector<double> col_bounds_;        // num_cols - 1 internal boundaries
  std::vector<std::vector<Point>> cols_;  // each sorted by the sort dim
};

}  // namespace wazi

#endif  // WAZI_BASELINES_FLOOD_H_

#include "baselines/hrr.h"

#include <algorithm>

#include "sfc/hilbert.h"
#include "sfc/rank_space.h"

namespace wazi {

void HilbertRTree::Build(const Dataset& data, const Workload&,
                         const BuildOptions& opts) {
  RankSpace ranks;
  ranks.Build(data.points, opts.rank_bits);
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(data.points.size());
  for (const Point& p : data.points) {
    keyed.emplace_back(
        HilbertEncode(opts.rank_bits, ranks.XRank(p.x), ranks.YRank(p.y)), p);
  }
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<Point> pts;
  pts.reserve(keyed.size());
  for (const auto& kp : keyed) pts.push_back(kp.second);

  std::vector<uint32_t> offsets;
  for (size_t i = 0; i < pts.size();
       i += static_cast<size_t>(opts.leaf_capacity)) {
    offsets.push_back(static_cast<uint32_t>(i));
  }
  offsets.push_back(static_cast<uint32_t>(pts.size()));
  if (pts.empty()) offsets.insert(offsets.begin(), 0);

  RTree::Options ropts;
  ropts.leaf_capacity = opts.leaf_capacity;
  tree_.BulkLoad(std::move(pts), offsets, ropts);
  stats_.Reset();
}

void HilbertRTree::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  tree_.RangeQuery(query, out, stats);
}

void HilbertRTree::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  tree_.Project(query, proj, stats);
}

bool HilbertRTree::DoPointQuery(const Point& p, QueryStats* stats) const {
  return tree_.PointQuery(p.x, p.y, stats);
}

bool HilbertRTree::Insert(const Point& p) {
  tree_.Insert(p);
  return true;
}

bool HilbertRTree::Remove(const Point& p) { return tree_.Remove(p.x, p.y); }

size_t HilbertRTree::SizeBytes() const { return tree_.SizeBytes(); }

}  // namespace wazi

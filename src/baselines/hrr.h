// HRR — Hilbert-packed R-tree (Qi et al., PVLDB 2018 / TODS 2020): points
// are sorted by the Hilbert value of their rank-space coordinates, packed
// into leaves of L, and topped with a packed R-tree. One of the paper's
// discarded rank-space SFC baselines (Fig. 4).

#ifndef WAZI_BASELINES_HRR_H_
#define WAZI_BASELINES_HRR_H_

#include <string>
#include <vector>

#include "baselines/rtree_base.h"
#include "index/spatial_index.h"

namespace wazi {

class HilbertRTree : public SpatialIndex {
 public:
  std::string name() const override { return "hrr"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  size_t SizeBytes() const override;

 private:
  RTree tree_;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_HRR_H_

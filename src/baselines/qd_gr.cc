#include "baselines/qd_gr.h"

#include <algorithm>
#include <limits>

namespace wazi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Candidate cuts per node are capped; query bounds are plentiful and
// near-duplicates add nothing.
constexpr size_t kMaxCandidates = 64;

struct Cut {
  bool cut_x;
  double val;
};

}  // namespace

int32_t QdGreedy::BuildNode(uint32_t begin, uint32_t end, const Rect& box,
                            std::vector<const Rect*> queries,
                            int leaf_capacity, int depth) {
  const size_t n = end - begin;
  const int32_t id = static_cast<int32_t>(nodes_.size());
  nodes_.push_back(Node{});
  if (n <= 2 * static_cast<size_t>(leaf_capacity) || depth >= 48 ||
      queries.empty()) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }

  // Candidate cuts: query bounds strictly inside the node's box.
  std::vector<Cut> cuts;
  for (const Rect* q : queries) {
    if (q->min_x > box.min_x && q->min_x < box.max_x) {
      cuts.push_back(Cut{true, q->min_x});
    }
    if (q->max_x > box.min_x && q->max_x < box.max_x) {
      cuts.push_back(Cut{true, q->max_x});
    }
    if (q->min_y > box.min_y && q->min_y < box.max_y) {
      cuts.push_back(Cut{false, q->min_y});
    }
    if (q->max_y > box.min_y && q->max_y < box.max_y) {
      cuts.push_back(Cut{false, q->max_y});
    }
    if (cuts.size() >= 4 * kMaxCandidates) break;
  }
  if (cuts.size() > kMaxCandidates) {
    // Deterministic thinning: keep every k-th candidate.
    std::vector<Cut> thinned;
    const size_t step = cuts.size() / kMaxCandidates + 1;
    for (size_t i = 0; i < cuts.size(); i += step) thinned.push_back(cuts[i]);
    cuts = std::move(thinned);
  }

  // Greedy objective: records scanned by the node's queries. Without a
  // cut every query scans all n records.
  const double no_cut_cost =
      static_cast<double>(queries.size()) * static_cast<double>(n);
  double best_cost = no_cut_cost;
  Cut best_cut{true, 0.0};
  bool found = false;
  for (const Cut& cut : cuts) {
    size_t n_left = 0;
    for (uint32_t i = begin; i < end; ++i) {
      const double v = cut.cut_x ? data_[i].x : data_[i].y;
      if (v <= cut.val) ++n_left;
    }
    const size_t n_right = n - n_left;
    if (n_left == 0 || n_right == 0) continue;
    double cost = 0.0;
    for (const Rect* q : queries) {
      const double q_lo = cut.cut_x ? q->min_x : q->min_y;
      const double q_hi = cut.cut_x ? q->max_x : q->max_y;
      if (q_lo <= cut.val) cost += static_cast<double>(n_left);
      if (q_hi > cut.val) cost += static_cast<double>(n_right);
    }
    if (cost < best_cost) {
      best_cost = cost;
      best_cut = cut;
      found = true;
    }
  }
  if (!found) {
    nodes_[id].begin = begin;
    nodes_[id].end = end;
    return id;
  }

  const auto mid_it = std::partition(
      data_.begin() + begin, data_.begin() + end, [&](const Point& p) {
        return (best_cut.cut_x ? p.x : p.y) <= best_cut.val;
      });
  const uint32_t mid = static_cast<uint32_t>(mid_it - data_.begin());

  Rect left_box = box, right_box = box;
  if (best_cut.cut_x) {
    left_box.max_x = best_cut.val;
    right_box.min_x = best_cut.val;
  } else {
    left_box.max_y = best_cut.val;
    right_box.min_y = best_cut.val;
  }
  std::vector<const Rect*> left_q, right_q;
  for (const Rect* q : queries) {
    const double q_lo = best_cut.cut_x ? q->min_x : q->min_y;
    const double q_hi = best_cut.cut_x ? q->max_x : q->max_y;
    if (q_lo <= best_cut.val) left_q.push_back(q);
    if (q_hi > best_cut.val) right_q.push_back(q);
  }

  nodes_[id].cut_x = best_cut.cut_x;
  nodes_[id].cut_val = best_cut.val;
  const int32_t left = BuildNode(begin, mid, left_box, std::move(left_q),
                                 leaf_capacity, depth + 1);
  nodes_[id].left = left;
  const int32_t right = BuildNode(mid, end, right_box, std::move(right_q),
                                  leaf_capacity, depth + 1);
  nodes_[id].right = right;
  return id;
}

void QdGreedy::Build(const Dataset& data, const Workload& workload,
                     const BuildOptions& opts) {
  data_ = data.points;
  nodes_.clear();
  std::vector<const Rect*> queries;
  queries.reserve(workload.queries.size());
  for (const Rect& q : workload.queries) queries.push_back(&q);
  const Rect box = Rect::Of(-kInf, -kInf, kInf, kInf);
  root_ = BuildNode(0, static_cast<uint32_t>(data_.size()), box,
                    std::move(queries), opts.leaf_capacity, 0);
  stats_.Reset();
}

void QdGreedy::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.is_leaf()) {
      ++stats->pages_scanned;
      for (uint32_t i = node.begin; i < node.end; ++i) {
        ++stats->points_scanned;
        if (query.Contains(data_[i])) {
          out->push_back(data_[i]);
          ++stats->results;
        }
      }
      continue;
    }
    ++stats->bbs_checked;
    const double q_lo = node.cut_x ? query.min_x : query.min_y;
    const double q_hi = node.cut_x ? query.max_x : query.max_y;
    if (q_lo <= node.cut_val) stack.push_back(node.left);
    if (q_hi > node.cut_val) stack.push_back(node.right);
  }
}

void QdGreedy::DoProject(const Rect& query, Projection* proj,
               QueryStats* /*stats*/) const {
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (node.is_leaf()) {
      if (node.end > node.begin) {
        proj->push_back(
            Span{data_.data() + node.begin, data_.data() + node.end});
      }
      continue;
    }
    const double q_lo = node.cut_x ? query.min_x : query.min_y;
    const double q_hi = node.cut_x ? query.max_x : query.max_y;
    if (q_lo <= node.cut_val) stack.push_back(node.left);
    if (q_hi > node.cut_val) stack.push_back(node.right);
  }
}

bool QdGreedy::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (root_ < 0) return false;
  int32_t id = root_;
  while (!nodes_[id].is_leaf()) {
    const Node& node = nodes_[id];
    const double v = node.cut_x ? p.x : p.y;
    id = (v <= node.cut_val) ? node.left : node.right;
  }
  const Node& leaf = nodes_[id];
  ++stats->pages_scanned;
  for (uint32_t i = leaf.begin; i < leaf.end; ++i) {
    ++stats->points_scanned;
    if (data_[i].x == p.x && data_[i].y == p.y) return true;
  }
  return false;
}

size_t QdGreedy::num_leaves() const {
  size_t count = 0;
  for (const Node& n : nodes_) count += n.is_leaf();
  return count;
}

size_t QdGreedy::SizeBytes() const {
  return sizeof(*this) + data_.capacity() * sizeof(Point) +
         nodes_.capacity() * sizeof(Node);
}

}  // namespace wazi

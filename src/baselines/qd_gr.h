// Greedy Qd-tree (Yang et al., SIGMOD 2020, "Qd-tree: Learning Data
// Layouts for Big Data Analytics") — the greedy variant used by the paper
// (§6.1), since the RL variant's action space is infeasible here. A binary
// cut tree: candidate cuts come from the bounds of workload queries that
// overlap a node; the greedy objective is the total number of records
// scanned by the workload (a query scans every block it overlaps); leaves
// are blocks of at least the page size.

#ifndef WAZI_BASELINES_QD_GR_H_
#define WAZI_BASELINES_QD_GR_H_

#include <string>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

class QdGreedy : public SpatialIndex {
 public:
  std::string name() const override { return "qd-gr"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  size_t SizeBytes() const override;

  size_t num_leaves() const;

 private:
  struct Node {
    bool cut_x = false;
    double cut_val = 0.0;
    int32_t left = -1;   // <= cut_val side; -1 iff leaf
    int32_t right = -1;
    uint32_t begin = 0;  // leaf block range in data_
    uint32_t end = 0;

    bool is_leaf() const { return left < 0; }
  };

  int32_t BuildNode(uint32_t begin, uint32_t end, const Rect& box,
                    std::vector<const Rect*> queries, int leaf_capacity,
                    int depth);

  std::vector<Point> data_;
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_QD_GR_H_

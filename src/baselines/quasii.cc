#include "baselines/quasii.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wazi {
namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

}  // namespace

size_t Quasii::SliceContaining(double x) const {
  // Last slice with x_lo <= x.
  size_t lo = 0, hi = slices_.size();
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (slices_[mid].x_lo <= x) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void Quasii::CrackX(double v) {
  if (slices_.empty()) return;
  const size_t idx = SliceContaining(v);
  Slice& s = slices_[idx];
  if (s.x_lo >= v || s.end - s.begin <= tau1_) return;
  const auto mid_it =
      std::partition(data_.begin() + s.begin, data_.begin() + s.end,
                     [&](const Point& p) { return p.x <= v; });
  const uint32_t mid = static_cast<uint32_t>(mid_it - data_.begin());
  Slice right;
  right.x_lo = v;
  right.begin = mid;
  right.end = s.end;
  right.subs = {Sub{kNegInf, right.begin, right.end}};
  s.end = mid;
  s.subs = {Sub{kNegInf, s.begin, s.end}};
  slices_.insert(slices_.begin() + idx + 1, std::move(right));
}

void Quasii::ChopSliceX(size_t slice_idx) {
  // Equal-count chop of an oversized slice into tau1-sized slices.
  Slice s = slices_[slice_idx];
  const size_t n = s.end - s.begin;
  if (n <= tau1_) return;
  std::sort(data_.begin() + s.begin, data_.begin() + s.end,
            [](const Point& a, const Point& b) { return a.x < b.x; });
  std::vector<Slice> pieces;
  for (uint32_t b = s.begin; b < s.end;
       b += static_cast<uint32_t>(tau1_)) {
    const uint32_t e =
        std::min<uint32_t>(s.end, b + static_cast<uint32_t>(tau1_));
    Slice piece;
    piece.x_lo = (b == s.begin) ? s.x_lo : data_[b].x;
    piece.begin = b;
    piece.end = e;
    piece.subs = {Sub{kNegInf, b, e}};
    pieces.push_back(std::move(piece));
  }
  slices_.erase(slices_.begin() + slice_idx);
  slices_.insert(slices_.begin() + slice_idx,
                 std::make_move_iterator(pieces.begin()),
                 std::make_move_iterator(pieces.end()));
}

void Quasii::CrackY(Slice& slice, double v) {
  // Last sub with y_lo <= v.
  size_t lo = 0, hi = slice.subs.size();
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (slice.subs[mid].y_lo <= v) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  Sub& sub = slice.subs[lo];
  if (sub.y_lo >= v ||
      sub.end - sub.begin <= static_cast<uint32_t>(leaf_capacity_)) {
    return;
  }
  const auto mid_it =
      std::partition(data_.begin() + sub.begin, data_.begin() + sub.end,
                     [&](const Point& p) { return p.y <= v; });
  const uint32_t mid = static_cast<uint32_t>(mid_it - data_.begin());
  Sub right{v, mid, sub.end};
  sub.end = mid;
  slice.subs.insert(slice.subs.begin() + lo + 1, right);
}

void Quasii::ChopSubY(Slice& slice, size_t sub_idx) {
  Sub sub = slice.subs[sub_idx];
  const uint32_t cap = static_cast<uint32_t>(leaf_capacity_);
  if (sub.end - sub.begin <= cap) return;
  std::sort(data_.begin() + sub.begin, data_.begin() + sub.end,
            [](const Point& a, const Point& b) { return a.y < b.y; });
  std::vector<Sub> pieces;
  for (uint32_t b = sub.begin; b < sub.end; b += cap) {
    const uint32_t e = std::min<uint32_t>(sub.end, b + cap);
    pieces.push_back(Sub{(b == sub.begin) ? sub.y_lo : data_[b].y, b, e});
  }
  slice.subs.erase(slice.subs.begin() + sub_idx);
  slice.subs.insert(slice.subs.begin() + sub_idx, pieces.begin(),
                    pieces.end());
}

void Quasii::AdaptiveQuery(const Rect& query, std::vector<Point>* out) {
  CrackX(query.min_x);
  CrackX(query.max_x);
  // Chop oversized slices fully inside the query's x-range.
  for (size_t i = 0; i < slices_.size(); ++i) {
    const double x_hi = (i + 1 < slices_.size())
                            ? slices_[i + 1].x_lo
                            : std::numeric_limits<double>::infinity();
    if (slices_[i].x_lo >= query.min_x && x_hi <= query.max_x &&
        slices_[i].end - slices_[i].begin > tau1_) {
      ChopSliceX(i);
    }
  }
  // Level 2 within overlapping slices.
  for (size_t i = 0; i < slices_.size(); ++i) {
    const double x_hi = (i + 1 < slices_.size())
                            ? slices_[i + 1].x_lo
                            : std::numeric_limits<double>::infinity();
    if (slices_[i].x_lo > query.max_x || x_hi < query.min_x) continue;
    Slice& s = slices_[i];
    CrackY(s, query.min_y);
    CrackY(s, query.max_y);
    for (size_t j = 0; j < s.subs.size(); ++j) {
      const double y_hi = (j + 1 < s.subs.size())
                              ? s.subs[j + 1].y_lo
                              : std::numeric_limits<double>::infinity();
      if (s.subs[j].y_lo >= query.min_y && y_hi <= query.max_y) {
        ChopSubY(s, j);
      }
    }
  }
  RangeQuery(query, out);
}

void Quasii::Build(const Dataset& data, const Workload& workload,
                   const BuildOptions& opts) {
  data_ = data.points;
  leaf_capacity_ = opts.leaf_capacity;
  tau1_ = static_cast<size_t>(std::ceil(
      std::sqrt(static_cast<double>(std::max<size_t>(1, data_.size())) *
                static_cast<double>(leaf_capacity_))));
  slices_.clear();
  Slice all;
  all.x_lo = kNegInf;
  all.begin = 0;
  all.end = static_cast<uint32_t>(data_.size());
  all.subs = {Sub{kNegInf, 0, all.end}};
  slices_.push_back(std::move(all));

  std::vector<Point> sink;
  for (int pass = 0; pass < opts.quasii_passes; ++pass) {
    for (const Rect& q : workload.queries) {
      sink.clear();
      AdaptiveQuery(q, &sink);
    }
  }
  stats_.Reset();
}

void Quasii::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  for (size_t i = slices_.empty() ? 0 : SliceContaining(query.min_x);
       i < slices_.size() && slices_[i].x_lo <= query.max_x; ++i) {
    const Slice& s = slices_[i];
    ++stats->bbs_checked;
    // Subs overlapping [min_y, max_y].
    size_t lo = 0, hi = s.subs.size();
    while (hi - lo > 1) {
      const size_t mid = (lo + hi) / 2;
      if (s.subs[mid].y_lo <= query.min_y) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    for (size_t j = lo; j < s.subs.size() && s.subs[j].y_lo <= query.max_y;
         ++j) {
      const Sub& sub = s.subs[j];
      ++stats->bbs_checked;
      ++stats->pages_scanned;
      for (uint32_t k = sub.begin; k < sub.end; ++k) {
        ++stats->points_scanned;
        if (query.Contains(data_[k])) {
          out->push_back(data_[k]);
          ++stats->results;
        }
      }
    }
  }
}

void Quasii::DoProject(const Rect& query, Projection* proj,
               QueryStats* /*stats*/) const {
  for (size_t i = slices_.empty() ? 0 : SliceContaining(query.min_x);
       i < slices_.size() && slices_[i].x_lo <= query.max_x; ++i) {
    const Slice& s = slices_[i];
    size_t lo = 0, hi = s.subs.size();
    while (hi - lo > 1) {
      const size_t mid = (lo + hi) / 2;
      if (s.subs[mid].y_lo <= query.min_y) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    for (size_t j = lo; j < s.subs.size() && s.subs[j].y_lo <= query.max_y;
         ++j) {
      const Sub& sub = s.subs[j];
      if (sub.end > sub.begin) {
        proj->push_back(
            Span{data_.data() + sub.begin, data_.data() + sub.end});
      }
    }
  }
}

bool Quasii::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (slices_.empty()) return false;
  const Slice& s = slices_[SliceContaining(p.x)];
  size_t lo = 0, hi = s.subs.size();
  while (hi - lo > 1) {
    const size_t mid = (lo + hi) / 2;
    if (s.subs[mid].y_lo <= p.y) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  const Sub& sub = s.subs[lo];
  ++stats->pages_scanned;
  for (uint32_t k = sub.begin; k < sub.end; ++k) {
    ++stats->points_scanned;
    if (data_[k].x == p.x && data_[k].y == p.y) return true;
  }
  return false;
}

size_t Quasii::SizeBytes() const {
  size_t bytes = sizeof(*this) + data_.capacity() * sizeof(Point) +
                 slices_.capacity() * sizeof(Slice);
  for (const Slice& s : slices_) bytes += s.subs.capacity() * sizeof(Sub);
  return bytes;
}

}  // namespace wazi

// QUASII — QUery-Aware Spatial Incremental Index (Pavlovic et al., EDBT
// 2018): a two-level spatial cracking index. Level 1 cracks the point
// array on query x-bounds into slices of target size tau1 = sqrt(N*L);
// level 2 cracks each slice on query y-bounds into sub-slices of target
// size L. Matching the paper's setup (§6.1), Build() replays the training
// workload until the cracks converge, and the measured query path is the
// read-only (non-adaptive) one.

#ifndef WAZI_BASELINES_QUASII_H_
#define WAZI_BASELINES_QUASII_H_

#include <string>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

class Quasii : public SpatialIndex {
 public:
  std::string name() const override { return "quasii"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  size_t SizeBytes() const override;

  // Adaptive query: cracks the structure, then returns results. Exposed
  // so tests and the cost-redemption bench can exercise incremental
  // behaviour directly.
  void AdaptiveQuery(const Rect& query, std::vector<Point>* out);

  size_t num_slices() const { return slices_.size(); }

 private:
  struct Sub {
    double y_lo;     // lower y bound (first sub: -inf)
    uint32_t begin;  // absolute range in data_
    uint32_t end;
  };
  struct Slice {
    double x_lo;  // lower x bound (first slice: -inf)
    uint32_t begin;
    uint32_t end;
    std::vector<Sub> subs;
  };

  void CrackX(double v);
  void ChopSliceX(size_t slice_idx);
  void CrackY(Slice& slice, double v);
  void ChopSubY(Slice& slice, size_t sub_idx);
  size_t SliceContaining(double x) const;

  std::vector<Point> data_;
  std::vector<Slice> slices_;
  size_t tau1_ = 0;
  int leaf_capacity_ = 256;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_QUASII_H_

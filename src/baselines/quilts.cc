#include "baselines/quilts.h"

#include <algorithm>

#include "common/rng.h"

namespace wazi {

uint64_t ComposeKey(const BitPattern& pattern, uint32_t x, uint32_t y,
                    int bits) {
  uint64_t key = 0;
  int next_x = bits - 1;  // next (highest remaining) source bit per dim
  int next_y = bits - 1;
  for (const uint8_t take_y : pattern) {
    uint64_t bit;
    if (take_y) {
      bit = (y >> next_y) & 1u;
      --next_y;
    } else {
      bit = (x >> next_x) & 1u;
      --next_x;
    }
    key = (key << 1) | bit;
  }
  return key;
}

std::vector<BitPattern> QuiltsCandidatePatterns(int bits) {
  std::vector<BitPattern> patterns;
  // Alternating (Z-order), both phases.
  for (const int start_y : {0, 1}) {
    BitPattern p;
    for (int i = 0; i < 2 * bits; ++i) {
      p.push_back(static_cast<uint8_t>((i + start_y) % 2));
    }
    patterns.push_back(std::move(p));
  }
  // Block patterns: k x-bits then k y-bits, alternating; and the reverse.
  for (const int k : {2, 4, 8}) {
    for (const int y_first : {0, 1}) {
      BitPattern p;
      int cx = bits, cy = bits;
      int phase = y_first;
      while (cx > 0 || cy > 0) {
        const int take_y = phase % 2;
        int* counter = take_y ? &cy : &cx;
        for (int i = 0; i < k && *counter > 0; ++i) {
          p.push_back(static_cast<uint8_t>(take_y));
          --(*counter);
        }
        ++phase;
      }
      patterns.push_back(std::move(p));
    }
  }
  // Column-major (all x, then y) and row-major.
  {
    BitPattern col(2 * bits, 0);
    std::fill(col.begin() + bits, col.end(), 1);
    patterns.push_back(col);
    BitPattern row(2 * bits, 1);
    std::fill(row.begin() + bits, row.end(), 0);
    patterns.push_back(row);
  }
  return patterns;
}

uint64_t Quilts::KeyOf(double x, double y) const {
  return ComposeKey(pattern_, ranks_.XRank(x), ranks_.YRank(y), bits_);
}

void Quilts::Build(const Dataset& data, const Workload& workload,
                   const BuildOptions& opts) {
  bits_ = opts.rank_bits;
  ranks_.Build(data.points, bits_);

  // Choose the pattern with the fewest false positives on a sample.
  const std::vector<BitPattern> candidates = QuiltsCandidatePatterns(bits_);
  std::vector<Point> sample;
  {
    Rng rng(opts.seed + 31);
    const size_t sn = std::min<size_t>(data.points.size(), 20000);
    sample.reserve(sn);
    for (size_t i = 0; i < sn; ++i) {
      sample.push_back(data.points[rng.NextBelow(data.points.size())]);
    }
  }
  std::vector<Rect> squeries;
  {
    Rng rng(opts.seed + 32);
    const size_t qn = std::min<size_t>(workload.queries.size(), 200);
    for (size_t i = 0; i < qn; ++i) {
      squeries.push_back(
          workload.queries[rng.NextBelow(workload.queries.size())]);
    }
  }
  pattern_ = candidates.front();
  if (!sample.empty() && !squeries.empty()) {
    // True in-box counts are pattern-independent.
    std::vector<int64_t> truth(squeries.size(), 0);
    for (size_t qi = 0; qi < squeries.size(); ++qi) {
      for (const Point& p : sample) {
        if (squeries[qi].Contains(p)) ++truth[qi];
      }
    }
    int64_t best_cost = 0;
    bool first = true;
    for (const BitPattern& pat : candidates) {
      std::vector<uint64_t> keys;
      keys.reserve(sample.size());
      for (const Point& p : sample) {
        keys.push_back(
            ComposeKey(pat, ranks_.XRank(p.x), ranks_.YRank(p.y), bits_));
      }
      std::sort(keys.begin(), keys.end());
      int64_t cost = 0;
      for (size_t qi = 0; qi < squeries.size(); ++qi) {
        const Rect& q = squeries[qi];
        const uint64_t klo =
            ComposeKey(pat, ranks_.XRank(q.min_x), ranks_.YRank(q.min_y),
                       bits_);
        const uint64_t khi =
            ComposeKey(pat, ranks_.XRank(q.max_x), ranks_.YRank(q.max_y),
                       bits_);
        const int64_t in_range =
            std::upper_bound(keys.begin(), keys.end(), khi) -
            std::lower_bound(keys.begin(), keys.end(), klo);
        cost += in_range - truth[qi];
      }
      if (first || cost < best_cost) {
        best_cost = cost;
        pattern_ = pat;
        first = false;
      }
    }
  }

  // Final layout: sort by key, pack leaves of L with MBRs.
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(data.points.size());
  for (const Point& p : data.points) keyed.emplace_back(KeyOf(p.x, p.y), p);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pts_.clear();
  keys_.clear();
  pts_.reserve(keyed.size());
  keys_.reserve(keyed.size());
  for (const auto& kp : keyed) {
    keys_.push_back(kp.first);
    pts_.push_back(kp.second);
  }
  leaf_off_.clear();
  leaf_mbr_.clear();
  for (size_t i = 0; i < pts_.size();
       i += static_cast<size_t>(opts.leaf_capacity)) {
    leaf_off_.push_back(static_cast<uint32_t>(i));
    Rect mbr;
    const size_t end =
        std::min(pts_.size(), i + static_cast<size_t>(opts.leaf_capacity));
    for (size_t j = i; j < end; ++j) mbr.Expand(pts_[j]);
    leaf_mbr_.push_back(mbr);
  }
  leaf_off_.push_back(static_cast<uint32_t>(pts_.size()));
  stats_.Reset();
}

template <typename LeafFn>
void Quilts::WalkLeaves(const Rect& query, QueryStats* stats,
                        LeafFn&& fn) const {
  if (pts_.empty()) return;
  const uint64_t klo = KeyOf(query.min_x, query.min_y);
  const uint64_t khi = KeyOf(query.max_x, query.max_y);
  // First and last leaves whose key range intersects [klo, khi].
  const size_t plo = static_cast<size_t>(
      std::lower_bound(keys_.begin(), keys_.end(), klo) - keys_.begin());
  const size_t phi = static_cast<size_t>(
      std::upper_bound(keys_.begin(), keys_.end(), khi) - keys_.begin());
  if (plo >= phi) return;
  const size_t leaf_lo = plo / (leaf_off_[1] - leaf_off_[0]);
  const size_t leaf_hi = (phi - 1) / (leaf_off_[1] - leaf_off_[0]);
  for (size_t leaf = leaf_lo; leaf <= leaf_hi && leaf + 1 < leaf_off_.size();
       ++leaf) {
    ++stats->bbs_checked;
    if (leaf_mbr_[leaf].Overlaps(query)) fn(leaf);
  }
}

void Quilts::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  WalkLeaves(query, stats, [&](size_t leaf) {
    ++stats->pages_scanned;
    for (uint32_t i = leaf_off_[leaf]; i < leaf_off_[leaf + 1]; ++i) {
      ++stats->points_scanned;
      if (query.Contains(pts_[i])) {
        out->push_back(pts_[i]);
        ++stats->results;
      }
    }
  });
}

void Quilts::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  WalkLeaves(query, stats, [&](size_t leaf) {
    proj->push_back(Span{pts_.data() + leaf_off_[leaf],
                         pts_.data() + leaf_off_[leaf + 1]});
  });
}

bool Quilts::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (pts_.empty()) return false;
  const uint64_t key = KeyOf(p.x, p.y);
  auto it = std::lower_bound(keys_.begin(), keys_.end(), key);
  ++stats->pages_scanned;
  for (size_t i = static_cast<size_t>(it - keys_.begin());
       i < keys_.size() && keys_[i] == key; ++i) {
    ++stats->points_scanned;
    if (pts_[i].x == p.x && pts_[i].y == p.y) return true;
  }
  return false;
}

size_t Quilts::SizeBytes() const {
  return sizeof(*this) + pts_.capacity() * sizeof(Point) +
         keys_.capacity() * sizeof(uint64_t) +
         leaf_off_.capacity() * sizeof(uint32_t) +
         leaf_mbr_.capacity() * sizeof(Rect) + ranks_.SizeBytes();
}

}  // namespace wazi

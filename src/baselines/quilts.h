// QUILTS (Nishimura & Yokota, SIGMOD 2017), simplified: a query-aware
// choice among candidate bit-interleaving space-filling curve patterns.
// Each pattern assigns the 2*rank_bits key bits (MSB first) to the x or y
// rank; candidates range from plain Z-order through block patterns to
// column/row-major. The pattern whose 1-D key interval yields the fewest
// false positives on a workload sample wins; points are then sorted by
// that key and packed into leaves with MBRs.

#ifndef WAZI_BASELINES_QUILTS_H_
#define WAZI_BASELINES_QUILTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/spatial_index.h"
#include "sfc/rank_space.h"

namespace wazi {

// A bit-interleaving pattern: entry i (MSB-first) is 0 to take the next x
// bit, 1 for the next y bit. Patterns must contain `bits` zeros and ones.
using BitPattern = std::vector<uint8_t>;

// Composes the key for rank-space coordinates under `pattern`.
uint64_t ComposeKey(const BitPattern& pattern, uint32_t x, uint32_t y,
                    int bits);

// Candidate patterns evaluated by QUILTS (see .cc for the lineup).
std::vector<BitPattern> QuiltsCandidatePatterns(int bits);

class Quilts : public SpatialIndex {
 public:
  std::string name() const override { return "quilts"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  size_t SizeBytes() const override;

  const BitPattern& chosen_pattern() const { return pattern_; }

 private:
  uint64_t KeyOf(double x, double y) const;

  template <typename LeafFn>
  void WalkLeaves(const Rect& query, QueryStats* stats, LeafFn&& fn) const;

  RankSpace ranks_;
  BitPattern pattern_;
  int bits_ = 16;
  std::vector<Point> pts_;          // sorted by key
  std::vector<uint64_t> keys_;      // parallel to pts_
  std::vector<uint32_t> leaf_off_;  // leaf i: [leaf_off_[i], leaf_off_[i+1])
  std::vector<Rect> leaf_mbr_;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_QUILTS_H_

#include "baselines/registry.h"

#include "baselines/cur_tree.h"
#include "baselines/flood.h"
#include "baselines/hrr.h"
#include "baselines/qd_gr.h"
#include "baselines/quasii.h"
#include "baselines/quilts.h"
#include "baselines/rsmi_lite.h"
#include "baselines/str_rtree.h"
#include "baselines/zpgm.h"
#include "core/wazi.h"
#include "index/brute_force.h"

namespace wazi {

std::unique_ptr<SpatialIndex> MakeIndex(const std::string& name) {
  if (name == "wazi") return std::make_unique<Wazi>();
  if (name == "base") return std::make_unique<BaseZ>();
  if (name == "base+sk") return std::make_unique<BaseZSk>();
  if (name == "wazi-sk") return std::make_unique<WaziNoSk>();
  if (name == "str") return std::make_unique<StrRTree>();
  if (name == "cur") return std::make_unique<CurTree>();
  if (name == "flood") return std::make_unique<Flood>();
  if (name == "quasii") return std::make_unique<Quasii>();
  if (name == "qd-gr") return std::make_unique<QdGreedy>();
  if (name == "hrr") return std::make_unique<HilbertRTree>();
  if (name == "quilts") return std::make_unique<Quilts>();
  if (name == "zpgm") return std::make_unique<Zpgm>();
  if (name == "rsmi") return std::make_unique<RsmiLite>();
  if (name == "brute") return std::make_unique<BruteForceIndex>();
  return nullptr;
}

std::vector<std::string> AllIndexNames() {
  // Fig. 4 presentation order.
  return {"base",   "cur",  "flood",  "hrr",  "qd-gr", "quasii",
          "quilts", "rsmi", "str",    "wazi", "zpgm"};
}

std::vector<std::string> MainIndexNames() {
  // The six-index set of the detailed experiments (Fig. 6-12).
  return {"quasii", "cur", "str", "flood", "base", "wazi"};
}

}  // namespace wazi

// Index factory: create any index by its canonical name.

#ifndef WAZI_BASELINES_REGISTRY_H_
#define WAZI_BASELINES_REGISTRY_H_

#include "index/spatial_index.h"

#endif  // WAZI_BASELINES_REGISTRY_H_

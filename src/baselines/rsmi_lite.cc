#include "baselines/rsmi_lite.h"

#include <algorithm>

#include "sfc/zcurve.h"

namespace wazi {

uint64_t RsmiLite::ZOf(double x, double y) const {
  return ZEncode(ranks_.XRank(x), ranks_.YRank(y));
}

void RsmiLite::Build(const Dataset& data, const Workload&,
                     const BuildOptions& opts) {
  leaf_capacity_ = opts.leaf_capacity;
  ranks_.Build(data.points, opts.rank_bits);
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(data.points.size());
  for (const Point& p : data.points) keyed.emplace_back(ZOf(p.x, p.y), p);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pts_.clear();
  keys_.clear();
  pts_.reserve(keyed.size());
  keys_.reserve(keyed.size());
  for (const auto& kp : keyed) {
    keys_.push_back(kp.first);
    pts_.push_back(kp.second);
  }
  const size_t leaves =
      std::max<size_t>(1, keys_.size() / (8 * static_cast<size_t>(
                                                  opts.leaf_capacity)));
  rmi_.Build(keys_, leaves);

  leaf_off_.clear();
  leaf_mbr_.clear();
  for (size_t i = 0; i < pts_.size();
       i += static_cast<size_t>(leaf_capacity_)) {
    leaf_off_.push_back(static_cast<uint32_t>(i));
    Rect mbr;
    const size_t end =
        std::min(pts_.size(), i + static_cast<size_t>(leaf_capacity_));
    for (size_t j = i; j < end; ++j) mbr.Expand(pts_[j]);
    leaf_mbr_.push_back(mbr);
  }
  leaf_off_.push_back(static_cast<uint32_t>(pts_.size()));
  stats_.Reset();
}

template <typename LeafFn>
void RsmiLite::WalkLeaves(const Rect& query, QueryStats* stats,
                          LeafFn&& fn) const {
  if (pts_.empty()) return;
  const uint64_t zlo = ZOf(query.min_x, query.min_y);
  const uint64_t zhi = ZOf(query.max_x, query.max_y);
  const size_t plo = rmi_.LowerBound(zlo);
  size_t phi = rmi_.LowerBound(zhi);
  while (phi < keys_.size() && keys_[phi] <= zhi) ++phi;
  if (plo >= phi) return;
  const size_t cap = static_cast<size_t>(leaf_capacity_);
  const size_t leaf_lo = plo / cap;
  const size_t leaf_hi = (phi - 1) / cap;
  for (size_t leaf = leaf_lo; leaf <= leaf_hi && leaf + 1 < leaf_off_.size();
       ++leaf) {
    ++stats->bbs_checked;
    if (leaf_mbr_[leaf].Overlaps(query)) fn(leaf);
  }
}

void RsmiLite::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  WalkLeaves(query, stats, [&](size_t leaf) {
    ++stats->pages_scanned;
    for (uint32_t i = leaf_off_[leaf]; i < leaf_off_[leaf + 1]; ++i) {
      ++stats->points_scanned;
      if (query.Contains(pts_[i])) {
        out->push_back(pts_[i]);
        ++stats->results;
      }
    }
  });
}

void RsmiLite::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  WalkLeaves(query, stats, [&](size_t leaf) {
    proj->push_back(Span{pts_.data() + leaf_off_[leaf],
                         pts_.data() + leaf_off_[leaf + 1]});
  });
}

bool RsmiLite::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (pts_.empty()) return false;
  const uint64_t z = ZOf(p.x, p.y);
  ++stats->pages_scanned;
  for (size_t i = rmi_.LowerBound(z); i < keys_.size() && keys_[i] == z; ++i) {
    ++stats->points_scanned;
    if (pts_[i].x == p.x && pts_[i].y == p.y) return true;
  }
  return false;
}

size_t RsmiLite::SizeBytes() const {
  return sizeof(*this) + pts_.capacity() * sizeof(Point) +
         keys_.capacity() * sizeof(uint64_t) + rmi_.SizeBytes() +
         leaf_off_.capacity() * sizeof(uint32_t) +
         leaf_mbr_.capacity() * sizeof(Rect) + ranks_.SizeBytes();
}

}  // namespace wazi

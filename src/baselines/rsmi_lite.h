// RSMI-lite — a simplified Recursive Spatial Model Index (Qi et al.,
// PVLDB 2020): rank-space Z-order codes indexed by a two-level RMI, with
// points packed into pages of L carrying MBRs. Range queries locate the
// code interval through the learned model and scan pages that pass the
// MBR check (ZM/RSMI-style execution in the rank space, which is exactly
// the design the paper discards after Fig. 4).

#ifndef WAZI_BASELINES_RSMI_LITE_H_
#define WAZI_BASELINES_RSMI_LITE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/spatial_index.h"
#include "learned/rmi.h"
#include "sfc/rank_space.h"

namespace wazi {

class RsmiLite : public SpatialIndex {
 public:
  std::string name() const override { return "rsmi"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  size_t SizeBytes() const override;

 private:
  uint64_t ZOf(double x, double y) const;

  template <typename LeafFn>
  void WalkLeaves(const Rect& query, QueryStats* stats, LeafFn&& fn) const;

  RankSpace ranks_;
  std::vector<Point> pts_;
  std::vector<uint64_t> keys_;
  Rmi rmi_;
  std::vector<uint32_t> leaf_off_;
  std::vector<Rect> leaf_mbr_;
  int leaf_capacity_ = 256;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_RSMI_LITE_H_

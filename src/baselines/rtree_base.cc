#include "baselines/rtree_base.h"

#include <algorithm>

namespace wazi {
namespace {

Rect MbrOfSpan(const Span& span) {
  Rect r;
  for (const Point* p = span.begin; p != span.end; ++p) r.Expand(*p);
  return r;
}

double Enlargement(const Rect& mbr, const Point& p) {
  Rect grown = mbr;
  grown.Expand(p);
  return grown.Area() - mbr.Area();
}

}  // namespace

void RTree::BulkLoad(std::vector<Point> clustered,
                     const std::vector<uint32_t>& leaf_offsets,
                     const Options& opts) {
  opts_ = opts;
  nodes_.clear();
  store_.BulkLoad(std::move(clustered), leaf_offsets);

  std::vector<int32_t> level;
  const int32_t num_leaves = store_.num_pages();
  level.reserve(num_leaves);
  for (int32_t i = 0; i < num_leaves; ++i) {
    Node node;
    node.page = i;
    node.mbr = MbrOfSpan(store_.PageSpan(i));
    nodes_.push_back(node);
    level.push_back(static_cast<int32_t>(nodes_.size() - 1));
  }
  if (level.empty()) {
    Node empty;
    empty.page = store_.AllocatePage({});
    nodes_.push_back(empty);
    root_ = 0;
    return;
  }
  while (level.size() > 1) {
    std::vector<int32_t> parents;
    for (size_t i = 0; i < level.size(); i += opts_.fanout) {
      Node parent;
      const size_t end = std::min(level.size(), i + opts_.fanout);
      for (size_t j = i; j < end; ++j) {
        parent.children.push_back(level[j]);
        parent.mbr.Expand(nodes_[level[j]].mbr);
      }
      nodes_.push_back(std::move(parent));
      parents.push_back(static_cast<int32_t>(nodes_.size() - 1));
    }
    level = std::move(parents);
  }
  root_ = level[0];
}

template <typename LeafFn>
void RTree::Walk(const Rect& query, QueryStats* stats, LeafFn&& fn) const {
  if (root_ < 0) return;
  // Iterative DFS; stack of node ids whose MBR overlaps the query.
  std::vector<int32_t> stack;
  ++stats->bbs_checked;
  if (!nodes_[root_].mbr.Overlaps(query)) return;
  stack.push_back(root_);
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (node.is_leaf()) {
      fn(node);
      continue;
    }
    for (const int32_t child : node.children) {
      ++stats->bbs_checked;
      if (nodes_[child].mbr.Overlaps(query)) stack.push_back(child);
    }
  }
}

void RTree::RangeQuery(const Rect& query, std::vector<Point>* out,
                       QueryStats* stats) const {
  Walk(query, stats, [&](const Node& leaf) {
    const Span span = store_.PageSpan(leaf.page);
    ++stats->pages_scanned;
    for (const Point* p = span.begin; p != span.end; ++p) {
      ++stats->points_scanned;
      if (query.Contains(*p)) {
        out->push_back(*p);
        ++stats->results;
      }
    }
  });
}

void RTree::Project(const Rect& query, Projection* proj,
                    QueryStats* stats) const {
  Walk(query, stats, [&](const Node& leaf) {
    const Span span = store_.PageSpan(leaf.page);
    if (!span.empty()) proj->push_back(span);
  });
}

bool RTree::PointQuery(double x, double y, QueryStats* stats) const {
  if (root_ < 0) return false;
  std::vector<int32_t> stack = {root_};
  const Point p{x, y, 0};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    ++stats->bbs_checked;
    if (!node.mbr.Contains(p)) continue;
    if (node.is_leaf()) {
      const Span span = store_.PageSpan(node.page);
      ++stats->pages_scanned;
      for (const Point* q = span.begin; q != span.end; ++q) {
        ++stats->points_scanned;
        if (q->x == x && q->y == y) return true;
      }
      continue;
    }
    for (const int32_t child : node.children) stack.push_back(child);
  }
  return false;
}

void RTree::Insert(const Point& p) {
  if (root_ < 0) {
    Node leaf;
    leaf.page = store_.AllocatePage({p});
    leaf.mbr.Expand(p);
    nodes_.push_back(leaf);
    root_ = static_cast<int32_t>(nodes_.size() - 1);
    return;
  }
  const int32_t sibling = InsertRec(root_, p);
  if (sibling >= 0) {
    Node new_root;
    new_root.children = {root_, sibling};
    new_root.mbr = nodes_[root_].mbr;
    new_root.mbr.Expand(nodes_[sibling].mbr);
    nodes_.push_back(std::move(new_root));
    root_ = static_cast<int32_t>(nodes_.size() - 1);
  }
}

int32_t RTree::InsertRec(int32_t node_id, const Point& p) {
  if (nodes_[node_id].is_leaf()) {
    store_.Append(nodes_[node_id].page, p);
    nodes_[node_id].mbr.Expand(p);
    if (store_.PageSize(nodes_[node_id].page) >
        static_cast<size_t>(opts_.leaf_capacity)) {
      return SplitLeafNode(node_id);
    }
    return -1;
  }
  // Min-enlargement (ties: min area) child choice.
  int32_t best = -1;
  double best_enlarge = 0.0, best_area = 0.0;
  for (const int32_t child : nodes_[node_id].children) {
    const double enlarge = Enlargement(nodes_[child].mbr, p);
    const double area = nodes_[child].mbr.Area();
    if (best < 0 || enlarge < best_enlarge ||
        (enlarge == best_enlarge && area < best_area)) {
      best = child;
      best_enlarge = enlarge;
      best_area = area;
    }
  }
  const int32_t sibling = InsertRec(best, p);
  nodes_[node_id].mbr.Expand(p);
  if (sibling >= 0) {
    nodes_[node_id].children.push_back(sibling);
    nodes_[node_id].mbr.Expand(nodes_[sibling].mbr);
    if (nodes_[node_id].children.size() >
        static_cast<size_t>(opts_.fanout)) {
      return SplitInternalNode(node_id);
    }
  }
  return -1;
}

int32_t RTree::SplitLeafNode(int32_t node_id) {
  const Span span = store_.PageSpan(nodes_[node_id].page);
  std::vector<Point> pts(span.begin, span.end);
  const Rect mbr = nodes_[node_id].mbr;
  // Linear split: sort along the longer MBR axis, halve.
  const bool by_x = (mbr.max_x - mbr.min_x) >= (mbr.max_y - mbr.min_y);
  std::sort(pts.begin(), pts.end(), [&](const Point& a, const Point& b) {
    return by_x ? a.x < b.x : a.y < b.y;
  });
  const size_t half = pts.size() / 2;
  std::vector<Point> right(pts.begin() + half, pts.end());
  pts.resize(half);

  Node sibling;
  for (const Point& q : right) sibling.mbr.Expand(q);
  sibling.page = store_.AllocatePage(std::move(right));

  store_.ReplacePage(nodes_[node_id].page, std::move(pts));
  RecomputeMbr(node_id);
  nodes_.push_back(std::move(sibling));
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t RTree::SplitInternalNode(int32_t node_id) {
  std::vector<int32_t> children = std::move(nodes_[node_id].children);
  const Rect mbr = nodes_[node_id].mbr;
  const bool by_x = (mbr.max_x - mbr.min_x) >= (mbr.max_y - mbr.min_y);
  std::sort(children.begin(), children.end(), [&](int32_t a, int32_t b) {
    const Rect& ra = nodes_[a].mbr;
    const Rect& rb = nodes_[b].mbr;
    const double ca = by_x ? (ra.min_x + ra.max_x) : (ra.min_y + ra.max_y);
    const double cb = by_x ? (rb.min_x + rb.max_x) : (rb.min_y + rb.max_y);
    return ca < cb;
  });
  const size_t half = children.size() / 2;
  Node sibling;
  sibling.children.assign(children.begin() + half, children.end());
  children.resize(half);
  nodes_[node_id].children = std::move(children);
  RecomputeMbr(node_id);
  for (const int32_t c : sibling.children) sibling.mbr.Expand(nodes_[c].mbr);
  nodes_.push_back(std::move(sibling));
  return static_cast<int32_t>(nodes_.size() - 1);
}

bool RTree::Remove(double x, double y) {
  if (root_ < 0) return false;
  std::vector<int32_t> stack = {root_};
  const Point p{x, y, 0};
  while (!stack.empty()) {
    const int32_t id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[id];
    if (!node.mbr.Contains(p)) continue;
    if (node.is_leaf()) {
      // MBRs are not shrunk: oversized boxes cost extra scans only.
      if (store_.Remove(node.page, x, y)) return true;
      continue;
    }
    for (const int32_t child : node.children) stack.push_back(child);
  }
  return false;
}

void RTree::RecomputeMbr(int32_t node_id) {
  Node& node = nodes_[node_id];
  node.mbr = Rect{};
  if (node.is_leaf()) {
    node.mbr = MbrOfSpan(store_.PageSpan(node.page));
  } else {
    for (const int32_t c : node.children) node.mbr.Expand(nodes_[c].mbr);
  }
}

size_t RTree::SizeBytes() const {
  size_t bytes = sizeof(*this) + nodes_.capacity() * sizeof(Node);
  for (const Node& n : nodes_) bytes += n.children.capacity() * sizeof(int32_t);
  return bytes + store_.SizeBytes();
}

}  // namespace wazi

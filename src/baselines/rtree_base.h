// Shared R-tree machinery for the packed-R-tree baselines (STR, CUR, HRR):
// bulk load from pre-ordered leaf runs, recursive range/point queries, and
// standard insert with min-enlargement descent and median node splits.

#ifndef WAZI_BASELINES_RTREE_BASE_H_
#define WAZI_BASELINES_RTREE_BASE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"
#include "index/spatial_index.h"
#include "storage/page_store.h"

namespace wazi {

class RTree {
 public:
  struct Options {
    int leaf_capacity = 256;
    int fanout = 32;
  };

  RTree() = default;

  // Bulk-loads from `clustered` points already arranged so that leaf i
  // spans [leaf_offsets[i], leaf_offsets[i+1]). Upper levels pack
  // consecutive runs of `fanout` nodes (callers provide a locality-
  // preserving leaf order: STR tiling, Hilbert order, ...).
  void BulkLoad(std::vector<Point> clustered,
                const std::vector<uint32_t>& leaf_offsets,
                const Options& opts);

  void RangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const;
  void Project(const Rect& query, Projection* proj, QueryStats* stats) const;
  bool PointQuery(double x, double y, QueryStats* stats) const;

  void Insert(const Point& p);
  bool Remove(double x, double y);

  size_t num_points() const { return store_.num_points(); }
  size_t SizeBytes() const;

 private:
  struct Node {
    Rect mbr;
    std::vector<int32_t> children;  // node ids; empty for leaves
    int32_t page = -1;              // valid iff leaf
    bool is_leaf() const { return page >= 0; }
  };

  template <typename LeafFn>
  void Walk(const Rect& query, QueryStats* stats, LeafFn&& fn) const;

  // Returns the new sibling id when the child split, else -1; updates mbr.
  int32_t InsertRec(int32_t node_id, const Point& p);
  int32_t SplitLeafNode(int32_t node_id);
  int32_t SplitInternalNode(int32_t node_id);
  void RecomputeMbr(int32_t node_id);

  std::vector<Node> nodes_;
  PageStore store_;
  int32_t root_ = -1;
  Options opts_;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_RTREE_BASE_H_

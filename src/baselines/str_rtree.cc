#include "baselines/str_rtree.h"

#include <algorithm>
#include <cmath>

namespace wazi {

std::vector<uint32_t> StrTile(std::vector<Point>* pts, int leaf_capacity) {
  const size_t n = pts->size();
  const size_t leaves =
      (n + leaf_capacity - 1) / static_cast<size_t>(leaf_capacity);
  const size_t slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(std::max<size_t>(1, leaves)))));
  const size_t slab_pts = std::max<size_t>(
      1, (n + slabs - 1) / slabs);

  std::sort(pts->begin(), pts->end(),
            [](const Point& a, const Point& b) { return a.x < b.x; });
  std::vector<uint32_t> offsets;
  for (size_t slab_begin = 0; slab_begin < n; slab_begin += slab_pts) {
    const size_t slab_end = std::min(n, slab_begin + slab_pts);
    std::sort(pts->begin() + slab_begin, pts->begin() + slab_end,
              [](const Point& a, const Point& b) { return a.y < b.y; });
    for (size_t leaf = slab_begin; leaf < slab_end;
         leaf += static_cast<size_t>(leaf_capacity)) {
      offsets.push_back(static_cast<uint32_t>(leaf));
    }
  }
  offsets.push_back(static_cast<uint32_t>(n));
  if (n == 0) offsets.insert(offsets.begin(), 0);
  return offsets;
}

void StrRTree::Build(const Dataset& data, const Workload&,
                     const BuildOptions& opts) {
  std::vector<Point> pts = data.points;
  const std::vector<uint32_t> offsets = StrTile(&pts, opts.leaf_capacity);
  RTree::Options ropts;
  ropts.leaf_capacity = opts.leaf_capacity;
  tree_.BulkLoad(std::move(pts), offsets, ropts);
  stats_.Reset();
}

void StrRTree::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  tree_.RangeQuery(query, out, stats);
}

void StrRTree::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  tree_.Project(query, proj, stats);
}

bool StrRTree::DoPointQuery(const Point& p, QueryStats* stats) const {
  return tree_.PointQuery(p.x, p.y, stats);
}

bool StrRTree::Insert(const Point& p) {
  tree_.Insert(p);
  return true;
}

bool StrRTree::Remove(const Point& p) { return tree_.Remove(p.x, p.y); }

size_t StrRTree::SizeBytes() const { return tree_.SizeBytes(); }

}  // namespace wazi

// Sort-Tile-Recursive packed R-tree (Leutenegger et al., ICDE 1997): sort
// by x, cut into ~sqrt(P) vertical slabs, sort each slab by y, pack runs
// of L points into leaves, then pack upper levels bottom-up.

#ifndef WAZI_BASELINES_STR_RTREE_H_
#define WAZI_BASELINES_STR_RTREE_H_

#include <string>
#include <vector>

#include "baselines/rtree_base.h"
#include "index/spatial_index.h"

namespace wazi {

// Computes STR leaf runs: sorts `pts` into tiling order and returns leaf
// offsets (with end sentinel). Shared with tests.
std::vector<uint32_t> StrTile(std::vector<Point>* pts, int leaf_capacity);

class StrRTree : public SpatialIndex {
 public:
  std::string name() const override { return "str"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  size_t SizeBytes() const override;

 private:
  RTree tree_;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_STR_RTREE_H_

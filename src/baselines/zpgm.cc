#include "baselines/zpgm.h"

#include <algorithm>

#include "sfc/bigmin.h"
#include "sfc/zcurve.h"

namespace wazi {

uint64_t Zpgm::ZOf(double x, double y) const {
  return ZEncode(ranks_.XRank(x), ranks_.YRank(y));
}

void Zpgm::Build(const Dataset& data, const Workload&,
                 const BuildOptions& opts) {
  bits_ = opts.rank_bits;
  ranks_.Build(data.points, bits_);
  std::vector<std::pair<uint64_t, Point>> keyed;
  keyed.reserve(data.points.size());
  for (const Point& p : data.points) keyed.emplace_back(ZOf(p.x, p.y), p);
  std::sort(keyed.begin(), keyed.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  pts_.clear();
  keys_.clear();
  pts_.reserve(keyed.size());
  keys_.reserve(keyed.size());
  for (const auto& kp : keyed) {
    keys_.push_back(kp.first);
    pts_.push_back(kp.second);
  }
  pgm_.Build(keys_, opts.pgm_epsilon);
  stats_.Reset();
}

template <typename HitFn>
void Zpgm::WalkCodes(const Rect& query, QueryStats* stats,
                     HitFn&& fn) const {
  if (pts_.empty()) return;
  const uint64_t zlo = ZOf(query.min_x, query.min_y);
  const uint64_t zhi = ZOf(query.max_x, query.max_y);
  size_t i = pgm_.LowerBound(zlo);
  while (i < keys_.size() && keys_[i] <= zhi) {
    const uint64_t z = keys_[i];
    ++stats->bbs_checked;  // cell-in-box test plays the bbs role here
    if (ZCellInBox(z, zlo, zhi)) {
      // Consume the whole run of equal codes.
      size_t j = i;
      while (j < keys_.size() && keys_[j] == z) ++j;
      fn(i, j);
      i = j;
      continue;
    }
    const uint64_t next = BigMin(z, zlo, zhi);
    if (next > zhi || next <= z) break;
    i = pgm_.LowerBound(next);
  }
}

void Zpgm::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  WalkCodes(query, stats, [&](size_t begin, size_t end) {
    ++stats->pages_scanned;
    for (size_t i = begin; i < end; ++i) {
      ++stats->points_scanned;
      if (query.Contains(pts_[i])) {
        out->push_back(pts_[i]);
        ++stats->results;
      }
    }
  });
}

void Zpgm::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  WalkCodes(query, stats, [&](size_t begin, size_t end) {
    proj->push_back(Span{pts_.data() + begin, pts_.data() + end});
  });
}

bool Zpgm::DoPointQuery(const Point& p, QueryStats* stats) const {
  if (pts_.empty()) return false;
  const uint64_t z = ZOf(p.x, p.y);
  ++stats->pages_scanned;
  for (size_t i = pgm_.LowerBound(z); i < keys_.size() && keys_[i] == z; ++i) {
    ++stats->points_scanned;
    if (pts_[i].x == p.x && pts_[i].y == p.y) return true;
  }
  return false;
}

size_t Zpgm::SizeBytes() const {
  return sizeof(*this) + pts_.capacity() * sizeof(Point) +
         keys_.capacity() * sizeof(uint64_t) + pgm_.SizeBytes() +
         ranks_.SizeBytes();
}

}  // namespace wazi

// Zpgm — rank-space Z-order codes indexed by a PGM-index, with BIGMIN
// page skipping (the paper's [10] + [42] combination, Fig. 4). Range
// queries scan the code interval [z(BL), z(TR)], jumping over out-of-box
// code runs via Tropf-Herzog BIGMIN and re-locating with the PGM.

#ifndef WAZI_BASELINES_ZPGM_H_
#define WAZI_BASELINES_ZPGM_H_

#include <cstdint>
#include <string>
#include <vector>

#include "index/spatial_index.h"
#include "learned/pgm_index.h"
#include "sfc/rank_space.h"

namespace wazi {

class Zpgm : public SpatialIndex {
 public:
  std::string name() const override { return "zpgm"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;
  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  size_t SizeBytes() const override;

 private:
  uint64_t ZOf(double x, double y) const;

  template <typename HitFn>
  void WalkCodes(const Rect& query, QueryStats* stats, HitFn&& fn) const;

  RankSpace ranks_;
  std::vector<Point> pts_;      // sorted by Z code
  std::vector<uint64_t> keys_;  // parallel
  PgmIndex pgm_;
  int bits_ = 16;
};

}  // namespace wazi

#endif  // WAZI_BASELINES_ZPGM_H_

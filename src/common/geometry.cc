#include "common/geometry.h"

#include <algorithm>
#include <sstream>

namespace wazi {

bool Dominates(const Point& b, const Point& a) {
  return a.x <= b.x && a.y <= b.y && (a.x < b.x || a.y < b.y);
}

Rect Rect::Intersect(const Rect& r) const {
  if (!Overlaps(r)) return Rect{};
  return Rect::Of(std::max(min_x, r.min_x), std::max(min_y, r.min_y),
                  std::min(max_x, r.max_x), std::min(max_y, r.max_y));
}

std::string Rect::DebugString() const {
  std::ostringstream os;
  os << *this;
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.min_x << "," << r.max_x << "]x[" << r.min_y << ","
            << r.max_y << "]";
}

RectClass ClassifyRect(const Rect& query, const Rect& cell, double sx,
                       double sy) {
  const Rect clipped = query.Intersect(cell);
  if (clipped.empty()) return RectClass::kOutside;
  const Quadrant bl = QuadrantOf(clipped.BottomLeft(), sx, sy);
  const Quadrant tr = QuadrantOf(clipped.TopRight(), sx, sy);
  switch ((static_cast<int>(bl) << 2) | static_cast<int>(tr)) {
    case 0b0000: return RectClass::kAA;
    case 0b0001: return RectClass::kAB;
    case 0b0010: return RectClass::kAC;
    case 0b0011: return RectClass::kAD;
    case 0b0101: return RectClass::kBB;
    case 0b0111: return RectClass::kBD;
    case 0b1010: return RectClass::kCC;
    case 0b1011: return RectClass::kCD;
    case 0b1111: return RectClass::kDD;
    default: return RectClass::kOutside;  // Unreachable for valid rects.
  }
}

const char* ToString(Quadrant q) {
  switch (q) {
    case Quadrant::kA: return "A";
    case Quadrant::kB: return "B";
    case Quadrant::kC: return "C";
    case Quadrant::kD: return "D";
  }
  return "?";
}

const char* ToString(RectClass c) {
  switch (c) {
    case RectClass::kAA: return "AA";
    case RectClass::kAB: return "AB";
    case RectClass::kAC: return "AC";
    case RectClass::kAD: return "AD";
    case RectClass::kBB: return "BB";
    case RectClass::kBD: return "BD";
    case RectClass::kCC: return "CC";
    case RectClass::kCD: return "CD";
    case RectClass::kDD: return "DD";
    case RectClass::kOutside: return "Outside";
  }
  return "?";
}

Rect QuadrantRect(const Rect& cell, double sx, double sy, Quadrant q) {
  switch (q) {
    case Quadrant::kA: return Rect::Of(cell.min_x, cell.min_y, sx, sy);
    case Quadrant::kB: return Rect::Of(sx, cell.min_y, cell.max_x, sy);
    case Quadrant::kC: return Rect::Of(cell.min_x, sy, sx, cell.max_y);
    case Quadrant::kD: return Rect::Of(sx, sy, cell.max_x, cell.max_y);
  }
  return Rect{};
}

}  // namespace wazi

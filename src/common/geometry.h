// Planar geometry primitives shared by every index in the library.
//
// Coordinates are doubles; datasets are normalized to (roughly) the unit
// square by the workload generators, but nothing here assumes that.

#ifndef WAZI_COMMON_GEOMETRY_H_
#define WAZI_COMMON_GEOMETRY_H_

#include <cstdint>
#include <limits>
#include <ostream>
#include <string>

namespace wazi {

// A 2-D data point. `id` is an opaque payload (row id) carried through
// every index so query results can be verified against a reference scan.
struct Point {
  double x = 0.0;
  double y = 0.0;
  int64_t id = 0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y && a.id == b.id;
  }
};

// Returns true iff `a` dominates-or-equals `b` component-wise is false and
// instead: a is dominated by b (a.x <= b.x && a.y <= b.y with at least one
// strict). Used by the Z-order monotonicity property tests.
bool Dominates(const Point& b, const Point& a);

// Squared Euclidean distance (the kNN ordering metric; comparisons never
// need the square root).
inline double DistanceSquared(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

// Closed axis-aligned rectangle [min_x,max_x] x [min_y,max_y].
//
// A default-constructed Rect is *empty* (min > max); Expand() grows it to
// cover points/rects, and empty rectangles never overlap or contain
// anything.
struct Rect {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Rect Of(double min_x, double min_y, double max_x, double max_y) {
    return Rect{min_x, min_y, max_x, max_y};
  }

  bool empty() const { return min_x > max_x || min_y > max_y; }

  bool Contains(const Point& p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const Rect& r) const {
    return !r.empty() && r.min_x >= min_x && r.max_x <= max_x &&
           r.min_y >= min_y && r.max_y <= max_y;
  }

  bool Overlaps(const Rect& r) const {
    return !empty() && !r.empty() && r.min_x <= max_x && r.max_x >= min_x &&
           r.min_y <= max_y && r.max_y >= min_y;
  }

  void Expand(const Point& p) {
    if (p.x < min_x) min_x = p.x;
    if (p.x > max_x) max_x = p.x;
    if (p.y < min_y) min_y = p.y;
    if (p.y > max_y) max_y = p.y;
  }

  void Expand(const Rect& r) {
    if (r.empty()) return;
    if (r.min_x < min_x) min_x = r.min_x;
    if (r.max_x > max_x) max_x = r.max_x;
    if (r.min_y < min_y) min_y = r.min_y;
    if (r.max_y > max_y) max_y = r.max_y;
  }

  // Intersection; empty if the rectangles do not overlap.
  Rect Intersect(const Rect& r) const;

  double Area() const { return empty() ? 0.0 : (max_x - min_x) * (max_y - min_y); }

  Point BottomLeft() const { return Point{min_x, min_y, 0}; }
  Point TopRight() const { return Point{max_x, max_y, 0}; }

  std::string DebugString() const;

  friend bool operator==(const Rect& a, const Rect& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

std::ostream& operator<<(std::ostream& os, const Rect& r);

// Child-cell labels of a quaternary Z-index node, following Algorithm 1 of
// the paper: with split point s, bitx = (p.x > s.x), bity = (p.y > s.y) and
//   A = (0,0)  dominated (bottom-left) quadrant
//   B = (1,0)  bottom-right
//   C = (0,1)  top-left
//   D = (1,1)  top-right.
enum class Quadrant : uint8_t { kA = 0, kB = 1, kC = 2, kD = 3 };

inline Quadrant QuadrantOf(const Point& p, double split_x, double split_y) {
  const int bitx = p.x > split_x;
  const int bity = p.y > split_y;
  return static_cast<Quadrant>((bity << 1) | bitx);
}

// The nine valid (BL-quadrant, TR-quadrant) classes of a query rectangle
// relative to a split point; BC/CB etc. are impossible because TR
// dominates BL. kOutside covers rectangles that do not overlap the cell
// (possible when classifying unclipped queries).
enum class RectClass : uint8_t {
  kAA = 0,
  kAB,
  kAC,
  kAD,
  kBB,
  kBD,
  kCC,
  kCD,
  kDD,
  kOutside,
};

// Classifies `query` (clipped to `cell`) against split point (sx, sy).
// Returns kOutside when the query does not overlap the cell.
RectClass ClassifyRect(const Rect& query, const Rect& cell, double sx,
                       double sy);

const char* ToString(Quadrant q);
const char* ToString(RectClass c);

// Quadrant sub-rectangle of `cell` for split point (sx, sy). The split
// point is included in quadrant A's closed upper boundary, matching the
// strict `>` comparisons of Algorithm 1.
Rect QuadrantRect(const Rect& cell, double sx, double sy, Quadrant q);

}  // namespace wazi

#endif  // WAZI_COMMON_GEOMETRY_H_

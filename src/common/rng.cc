#include "common/rng.h"

#include <cmath>
#include <numeric>

namespace wazi {

double Rng::NextGaussian() {
  // Box-Muller; u1 nudged away from 0 so log() is finite.
  double u1 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = NextDouble();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
}

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0.0 || weights.empty()) return 0;
  double r = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace wazi

// Deterministic, fast pseudo-random generation used throughout the
// library. Every generator in this project is seeded explicitly so that
// datasets, workloads and index builds are exactly reproducible.

#ifndef WAZI_COMMON_RNG_H_
#define WAZI_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi {

// SplitMix64: tiny, statistically solid, and trivially seedable. Used both
// directly and to seed derived streams (`Fork`).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}

  uint64_t NextU64() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

  // Uniform integer in [0, n). n must be > 0.
  uint64_t NextBelow(uint64_t n) { return NextU64() % n; }

  // Standard normal via Box-Muller (no cached spare; simplicity over speed).
  double NextGaussian();

  // Independent generator derived from this one's stream.
  Rng Fork() { return Rng(NextU64() ^ 0xd1b54a32d192ed03ULL); }

  // Samples an index according to `weights` (unnormalized, non-negative).
  size_t WeightedIndex(const std::vector<double>& weights);

 private:
  uint64_t state_;
};

}  // namespace wazi

#endif  // WAZI_COMMON_RNG_H_

#include "common/simd.h"

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#define WAZI_SIMD_X86 1
#include <immintrin.h>
#else
#define WAZI_SIMD_X86 0
#endif

namespace wazi::simd {
namespace {

// ---- scalar reference ---------------------------------------------------
// The semantics every vector path must reproduce byte-for-byte.

size_t FilterScalar(const Point* p, size_t n, const Rect& rect,
                    std::vector<Point>* out, KernelCounters* kc) {
  size_t appended = 0;
  for (size_t i = 0; i < n; ++i) {
    if (rect.Contains(p[i])) {
      out->push_back(p[i]);
      ++appended;
    }
  }
  if (kc != nullptr) kc->scalar_tail += static_cast<int64_t>(n);
  return appended;
}

size_t FindScalar(const Point* p, size_t n, double qx, double qy,
                  KernelCounters* kc) {
  for (size_t i = 0; i < n; ++i) {
    if (p[i].x == qx && p[i].y == qy) {
      if (kc != nullptr) kc->scalar_tail += static_cast<int64_t>(i) + 1;
      return i;
    }
  }
  if (kc != nullptr) kc->scalar_tail += static_cast<int64_t>(n);
  return kNotFound;
}

#if WAZI_SIMD_X86

// ---- SSE2 (x86-64 baseline) --------------------------------------------
// Two points per iteration. Only CMPLE/CMPEQ are used for the rect test:
// SSE2's GE/GT forms are NOT-compares (true on NaN operands), while
// a <= b is an ordered compare that is false whenever either side is NaN
// — exactly scalar `<=`. x >= min is therefore emitted as min <= x.

size_t FilterSse2(const Point* p, size_t n, const Rect& rect,
                  std::vector<Point>* out, KernelCounters* kc) {
  const __m128d min_x = _mm_set1_pd(rect.min_x);
  const __m128d max_x = _mm_set1_pd(rect.max_x);
  const __m128d min_y = _mm_set1_pd(rect.min_y);
  const __m128d max_y = _mm_set1_pd(rect.max_y);
  size_t appended = 0;
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xs = _mm_setr_pd(p[i].x, p[i + 1].x);
    const __m128d ys = _mm_setr_pd(p[i].y, p[i + 1].y);
    const __m128d in_x =
        _mm_and_pd(_mm_cmple_pd(min_x, xs), _mm_cmple_pd(xs, max_x));
    const __m128d in_y =
        _mm_and_pd(_mm_cmple_pd(min_y, ys), _mm_cmple_pd(ys, max_y));
    int mask = _mm_movemask_pd(_mm_and_pd(in_x, in_y));
    // Compress: consume set bits low-to-high so output order matches the
    // scalar loop.
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(p[i + static_cast<size_t>(lane)]);
      ++appended;
      mask &= mask - 1;
    }
  }
  if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 2);
  for (; i < n; ++i) {
    if (rect.Contains(p[i])) {
      out->push_back(p[i]);
      ++appended;
    }
    if (kc != nullptr) ++kc->scalar_tail;
  }
  return appended;
}

size_t FindSse2(const Point* p, size_t n, double qx, double qy,
                KernelCounters* kc) {
  const __m128d qxs = _mm_set1_pd(qx);
  const __m128d qys = _mm_set1_pd(qy);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128d xs = _mm_setr_pd(p[i].x, p[i + 1].x);
    const __m128d ys = _mm_setr_pd(p[i].y, p[i + 1].y);
    const int mask = _mm_movemask_pd(
        _mm_and_pd(_mm_cmpeq_pd(xs, qxs), _mm_cmpeq_pd(ys, qys)));
    if (mask != 0) {
      if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 2) + 1;
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 2);
  for (; i < n; ++i) {
    if (kc != nullptr) ++kc->scalar_tail;
    if (p[i].x == qx && p[i].y == qy) return i;
  }
  return kNotFound;
}

// ---- AVX2 ---------------------------------------------------------------
// Four points per iteration; _CMP_*_OQ predicates are ordered-quiet, so
// NaN lanes fail containment exactly like the scalar reference.

__attribute__((target("avx2"))) size_t FilterAvx2(const Point* p, size_t n,
                                                  const Rect& rect,
                                                  std::vector<Point>* out,
                                                  KernelCounters* kc) {
  const __m256d min_x = _mm256_set1_pd(rect.min_x);
  const __m256d max_x = _mm256_set1_pd(rect.max_x);
  const __m256d min_y = _mm256_set1_pd(rect.min_y);
  const __m256d max_y = _mm256_set1_pd(rect.max_y);
  size_t appended = 0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xs =
        _mm256_setr_pd(p[i].x, p[i + 1].x, p[i + 2].x, p[i + 3].x);
    const __m256d ys =
        _mm256_setr_pd(p[i].y, p[i + 1].y, p[i + 2].y, p[i + 3].y);
    const __m256d in_x = _mm256_and_pd(_mm256_cmp_pd(xs, min_x, _CMP_GE_OQ),
                                       _mm256_cmp_pd(xs, max_x, _CMP_LE_OQ));
    const __m256d in_y = _mm256_and_pd(_mm256_cmp_pd(ys, min_y, _CMP_GE_OQ),
                                       _mm256_cmp_pd(ys, max_y, _CMP_LE_OQ));
    int mask = _mm256_movemask_pd(_mm256_and_pd(in_x, in_y));
    if (mask == 0xF) {
      // Whole batch inside (the common case on well-fitted leaves):
      // bulk-append keeps the vector growth path out of the per-lane loop.
      out->insert(out->end(), p + i, p + i + 4);
      appended += 4;
      continue;
    }
    while (mask != 0) {
      const int lane = __builtin_ctz(static_cast<unsigned>(mask));
      out->push_back(p[i + static_cast<size_t>(lane)]);
      ++appended;
      mask &= mask - 1;
    }
  }
  if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 4);
  for (; i < n; ++i) {
    if (rect.Contains(p[i])) {
      out->push_back(p[i]);
      ++appended;
    }
    if (kc != nullptr) ++kc->scalar_tail;
  }
  return appended;
}

__attribute__((target("avx2"))) size_t FindAvx2(const Point* p, size_t n,
                                                double qx, double qy,
                                                KernelCounters* kc) {
  const __m256d qxs = _mm256_set1_pd(qx);
  const __m256d qys = _mm256_set1_pd(qy);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d xs =
        _mm256_setr_pd(p[i].x, p[i + 1].x, p[i + 2].x, p[i + 3].x);
    const __m256d ys =
        _mm256_setr_pd(p[i].y, p[i + 1].y, p[i + 2].y, p[i + 3].y);
    const int mask = _mm256_movemask_pd(
        _mm256_and_pd(_mm256_cmp_pd(xs, qxs, _CMP_EQ_OQ),
                      _mm256_cmp_pd(ys, qys, _CMP_EQ_OQ)));
    if (mask != 0) {
      if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 4) + 1;
      return i + static_cast<size_t>(__builtin_ctz(static_cast<unsigned>(mask)));
    }
  }
  if (kc != nullptr) kc->simd_batches += static_cast<int64_t>(i / 4);
  for (; i < n; ++i) {
    if (kc != nullptr) ++kc->scalar_tail;
    if (p[i].x == qx && p[i].y == qy) return i;
  }
  return kNotFound;
}

#endif  // WAZI_SIMD_X86

// ---- dispatch -----------------------------------------------------------

std::atomic<int> g_level_override{static_cast<int>(Level::kAvx2)};

Level Clamp(Level level) {
  const Level detected = DetectedLevel();
  return static_cast<int>(level) < static_cast<int>(detected) ? level
                                                              : detected;
}

}  // namespace

const char* LevelName(Level level) {
  switch (level) {
    case Level::kScalar:
      return "scalar";
    case Level::kSse2:
      return "sse2";
    case Level::kAvx2:
      return "avx2";
  }
  return "unknown";
}

Level DetectedLevel() {
#if WAZI_SIMD_X86
  static const Level detected = [] {
    if (__builtin_cpu_supports("avx2")) return Level::kAvx2;
    if (__builtin_cpu_supports("sse2")) return Level::kSse2;
    return Level::kScalar;
  }();
  return detected;
#else
  return Level::kScalar;
#endif
}

Level ActiveLevel() {
  // relaxed: the override is a standalone test/bench knob — no data is
  // published through it, so no ordering is needed.
  return Clamp(
      static_cast<Level>(g_level_override.load(std::memory_order_relaxed)));
}

void SetLevelOverride(Level level) {
  // relaxed: see ActiveLevel — the value itself is the whole payload.
  g_level_override.store(static_cast<int>(level), std::memory_order_relaxed);
}

size_t FilterPointsInRectLevel(Level level, const Point* p, size_t n,
                               const Rect& rect, std::vector<Point>* out,
                               KernelCounters* counters) {
  switch (Clamp(level)) {
#if WAZI_SIMD_X86
    case Level::kAvx2:
      return FilterAvx2(p, n, rect, out, counters);
    case Level::kSse2:
      return FilterSse2(p, n, rect, out, counters);
#endif
    default:
      return FilterScalar(p, n, rect, out, counters);
  }
}

size_t FindCoordLevel(Level level, const Point* p, size_t n, double qx,
                      double qy, KernelCounters* counters) {
  switch (Clamp(level)) {
#if WAZI_SIMD_X86
    case Level::kAvx2:
      return FindAvx2(p, n, qx, qy, counters);
    case Level::kSse2:
      return FindSse2(p, n, qx, qy, counters);
#endif
    default:
      return FindScalar(p, n, qx, qy, counters);
  }
}

size_t FilterPointsInRect(const Point* p, size_t n, const Rect& rect,
                          std::vector<Point>* out, KernelCounters* counters) {
  return FilterPointsInRectLevel(ActiveLevel(), p, n, rect, out, counters);
}

size_t FindCoord(const Point* p, size_t n, double qx, double qy,
                 KernelCounters* counters) {
  return FindCoordLevel(ActiveLevel(), p, n, qx, qy, counters);
}

}  // namespace wazi::simd

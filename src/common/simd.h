// Vectorized leaf-scan kernels for the query hot path.
//
// WaZI's design pushes query cost into the leaf scan (pages are read
// start-to-end once the Z-order walk selects them), so the per-point
// predicate — "is (x, y) inside the query rect" — is the single hottest
// loop in the engine. This header exposes that loop as a small kernel
// layer: a portable scalar reference plus SSE2/AVX2 compare-and-compress
// paths selected at runtime from CPUID. Callers always get results
// byte-identical to the scalar reference (tests/simd_kernel_fuzz_test.cc
// enforces this across NaN, -0.0, infinities, and lane-misaligned
// lengths):
//
//   - rect compares use ordered-quiet predicates, so NaN coordinates fail
//     containment exactly like scalar `>=`/`<=`;
//   - exact-coordinate match uses ordered-quiet equality, so -0.0 == 0.0
//     and NaN != NaN, matching scalar `==`;
//   - matches append in input order (movemask bits consumed low-to-high).
//
// Points are AoS (x, y, id — 24 bytes); the kernels gather x/y lanes with
// strided scalar loads, which keeps the layout untouched and still wins
// on wide leaves because the predicate+branch work vectorizes 4-wide.
//
// Every kernel reports work-shape counters (full vector batches vs scalar
// tail points) that QueryStats carries as simd_batches/scalar_tail, so a
// dispatch regression (AVX2 silently off → batches collapse to zero) is
// visible in the metrics registry rather than only in throughput.

#ifndef WAZI_COMMON_SIMD_H_
#define WAZI_COMMON_SIMD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace wazi::simd {

// Instruction-set tiers, ordered; dispatch picks the highest supported.
enum class Level : int {
  kScalar = 0,
  kSse2 = 1,
  kAvx2 = 2,
};

const char* LevelName(Level level);

// Highest tier the running CPU supports (CPUID, computed once).
Level DetectedLevel();

// Tier the dispatched kernels actually use: DetectedLevel() unless
// lowered by SetLevelOverride.
Level ActiveLevel();

// Clamps dispatch to min(level, DetectedLevel()). For tests (differential
// runs of every tier on one machine) and benchmarks (before/after arms);
// not thread-safe against concurrent kernel calls, so flip it only around
// single-threaded sections.
void SetLevelOverride(Level level);

// Work-shape counters a kernel call accumulates into (never resets).
struct KernelCounters {
  int64_t simd_batches = 0;  // full-width vector iterations
  int64_t scalar_tail = 0;   // points handled by the scalar remainder
};

// Appends every point of p[0..n) contained in `rect` to *out, preserving
// input order; returns the number appended. `counters` may be null.
size_t FilterPointsInRect(const Point* p, size_t n, const Rect& rect,
                          std::vector<Point>* out, KernelCounters* counters);

// Index of the first point of p[0..n) with exactly (x == qx, y == qy), or
// kNotFound. The early-exit position lets callers keep points_scanned
// semantics identical to the scalar loop they replaced.
inline constexpr size_t kNotFound = static_cast<size_t>(-1);
size_t FindCoord(const Point* p, size_t n, double qx, double qy,
                 KernelCounters* counters);

// Fixed-tier variants (bypass dispatch) for differential testing and
// before/after benchmarking. `level` above DetectedLevel() falls back to
// the highest supported tier.
size_t FilterPointsInRectLevel(Level level, const Point* p, size_t n,
                               const Rect& rect, std::vector<Point>* out,
                               KernelCounters* counters);
size_t FindCoordLevel(Level level, const Point* p, size_t n, double qx,
                      double qy, KernelCounters* counters);

}  // namespace wazi::simd

#endif  // WAZI_COMMON_SIMD_H_

// Clang Thread Safety Analysis annotations plus the capability-annotated
// lock vocabulary the serve stack is written against.
//
// Every mutex in src/serve, src/obs, and src/net is a `wazi::Mutex`; every
// field it protects is declared `GUARDED_BY(mu_)`; every `*Locked()` helper
// that assumes the caller holds a lock is declared `REQUIRES(mu_)`. Under
// clang with -Wthread-safety (the `WAZI_THREAD_SAFETY` CMake option, run in
// CI) these contracts are compiler-checked on every path — a guarded field
// touched without its mutex, or a Locked helper called bare, is a build
// error. Under GCC (or clang without the flag) every macro expands to
// nothing and `wazi::Mutex` behaves exactly like the std::mutex it wraps.
//
// The capability map — which mutex guards what, and where the deliberate
// lock-free accesses are — lives in docs/CONCURRENCY.md.
//
// Conventions:
//  * Prefer `MutexLock` (scoped) to manual lock()/unlock(). The manual
//    calls exist for the rare mid-scope unlock the scoped form can't
//    express; the analysis checks both.
//  * Condition variables are `wazi::CondVar`, which waits directly on a
//    `wazi::Mutex` (it is a std::condition_variable_any underneath).
//    Predicate loops are written out explicitly (`while (!pred) cv.Wait`)
//    so the predicate reads are analyzed in the frame that holds the lock
//    — lambdas passed into wait() would be analyzed as unannotated
//    functions and flagged.
//  * `NO_THREAD_SAFETY_ANALYSIS` is an escape hatch of last resort. Every
//    use MUST carry a `justification:` comment within the three lines
//    above it explaining why the access is safe without the lock;
//    tools/wazi_lint.py rejects bare uses.

#ifndef WAZI_COMMON_THREAD_ANNOTATIONS_H_
#define WAZI_COMMON_THREAD_ANNOTATIONS_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define WAZI_TSA(x) __attribute__((x))
#endif
#endif
#ifndef WAZI_TSA
#define WAZI_TSA(x)  // not clang: annotations compile away
#endif

#define CAPABILITY(x) WAZI_TSA(capability(x))
#define SCOPED_CAPABILITY WAZI_TSA(scoped_lockable)
#define GUARDED_BY(x) WAZI_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) WAZI_TSA(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) WAZI_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) WAZI_TSA(acquired_after(__VA_ARGS__))
#define REQUIRES(...) WAZI_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) WAZI_TSA(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) WAZI_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) WAZI_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) WAZI_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) WAZI_TSA(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) WAZI_TSA(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) WAZI_TSA(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) WAZI_TSA(assert_capability(x))
#define RETURN_CAPABILITY(x) WAZI_TSA(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS WAZI_TSA(no_thread_safety_analysis)

namespace wazi {

// std::mutex with a capability the analysis can track. Satisfies
// BasicLockable/Lockable, so it composes with std:: lock utilities where
// the scoped wrapper below doesn't fit (those uses lose static checking —
// prefer MutexLock).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  void unlock() RELEASE() { mu_.unlock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

// RAII lock with mid-scope Unlock()/Lock() (the analysis tracks the
// transitions — a guarded access between Unlock and relock is an error).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu), held_(true) {
    mu_->lock();
  }
  ~MutexLock() RELEASE() {
    if (held_) mu_->unlock();
  }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  void Unlock() RELEASE() {
    held_ = false;
    mu_->unlock();
  }
  void Lock() ACQUIRE() {
    mu_->lock();
    held_ = true;
  }

 private:
  Mutex* mu_;
  bool held_;
};

// Condition variable that waits directly on a wazi::Mutex, preserving the
// capability across the wait (the callee unlocks/relocks internally; the
// caller provably holds the lock before and after). Timed waits poll —
// write the predicate loop out at the call site.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) { cv_.wait(mu); }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& dur)
      REQUIRES(mu) {
    return cv_.wait_for(mu, dur);
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    return cv_.wait_until(mu, deadline);
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace wazi

#endif  // WAZI_COMMON_THREAD_ANNOTATIONS_H_

// Wall-clock timing helper for build/query measurements.

#ifndef WAZI_COMMON_TIMER_H_
#define WAZI_COMMON_TIMER_H_

#include <chrono>
#include <cstdint>

namespace wazi {

// Monotonic stopwatch; `ElapsedNs` does not stop the clock.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  int64_t ElapsedNs() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  double ElapsedSeconds() const { return ElapsedNs() * 1e-9; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace wazi

#endif  // WAZI_COMMON_TIMER_H_

#include "core/builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace wazi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Curve (visit) order of quadrants under each ordering.
constexpr Quadrant kCurveOrder[2][4] = {
    {Quadrant::kA, Quadrant::kB, Quadrant::kC, Quadrant::kD},  // abcd
    {Quadrant::kA, Quadrant::kC, Quadrant::kB, Quadrant::kD},  // acbd
};

// Partitions [begin, end) of `pts` into the four quadrant segments in
// curve order; fills `bounds[0..4]` with segment boundaries.
void PartitionByQuadrant(Point* pts, uint32_t begin, uint32_t end,
                         const SplitChoice& choice, uint32_t bounds[5]) {
  const double sx = choice.sx;
  const double sy = choice.sy;
  Point* first = pts + begin;
  Point* last = pts + end;
  if (choice.ord == Ordering::kAbcd) {
    // A,B (y <= sy) before C,D; then x <= sx within each half.
    Point* mid = std::partition(first, last,
                                [&](const Point& p) { return p.y <= sy; });
    Point* m0 = std::partition(first, mid,
                               [&](const Point& p) { return p.x <= sx; });
    Point* m1 = std::partition(mid, last,
                               [&](const Point& p) { return p.x <= sx; });
    bounds[0] = begin;
    bounds[1] = static_cast<uint32_t>(m0 - pts);
    bounds[2] = static_cast<uint32_t>(mid - pts);
    bounds[3] = static_cast<uint32_t>(m1 - pts);
    bounds[4] = end;
  } else {
    // A,C (x <= sx) before B,D; then y <= sy within each half.
    Point* mid = std::partition(first, last,
                                [&](const Point& p) { return p.x <= sx; });
    Point* m0 = std::partition(first, mid,
                               [&](const Point& p) { return p.y <= sy; });
    Point* m1 = std::partition(mid, last,
                               [&](const Point& p) { return p.y <= sy; });
    bounds[0] = begin;
    bounds[1] = static_cast<uint32_t>(m0 - pts);
    bounds[2] = static_cast<uint32_t>(mid - pts);
    bounds[3] = static_cast<uint32_t>(m1 - pts);
    bounds[4] = end;
  }
}

class TreeBuilder {
 public:
  TreeBuilder(SplitPolicy& policy, const ZBuildParams& params, ZIndex* out)
      : policy_(policy), params_(params), out_(out), rng_(params.seed) {}

  int32_t BuildNode(std::vector<Point>& pts, uint32_t begin, uint32_t end,
                    const Rect& cell, int depth) {
    const size_t n = end - begin;
    if (n <= static_cast<size_t>(params_.leaf_capacity) ||
        depth >= params_.max_depth) {
      return out_->AddLeaf(cell, pts.data(), begin, end);
    }

    SplitChoice choice = policy_.Choose(pts.data() + begin, n, cell, rng_);
    uint32_t bounds[5];
    PartitionByQuadrant(pts.data(), begin, end, choice, bounds);

    // No-progress guard: if one quadrant swallowed everything, retry with
    // the median; if even that cannot separate the points (duplicates),
    // keep an oversize leaf.
    bool degenerate = false;
    for (int i = 0; i < 4; ++i) {
      if (bounds[i + 1] - bounds[i] == n) degenerate = true;
    }
    if (degenerate) {
      choice = MedianSplit(pts.data() + begin, n);
      PartitionByQuadrant(pts.data(), begin, end, choice, bounds);
      for (int i = 0; i < 4; ++i) {
        if (bounds[i + 1] - bounds[i] == n) {
          return out_->AddLeaf(cell, pts.data(), begin, end);
        }
      }
    }

    const int32_t node = out_->AddInternal(choice.sx, choice.sy, choice.ord);
    const int ord_idx = static_cast<int>(choice.ord);
    for (int i = 0; i < 4; ++i) {
      const Quadrant q = kCurveOrder[ord_idx][i];
      const Rect child_cell = QuadrantRect(cell, choice.sx, choice.sy, q);
      const int32_t child =
          BuildNode(pts, bounds[i], bounds[i + 1], child_cell, depth + 1);
      out_->SetChild(node, q, child);
    }
    return node;
  }

 private:
  SplitPolicy& policy_;
  const ZBuildParams& params_;
  ZIndex* out_;
  Rng rng_;
};

}  // namespace

SplitChoice MedianSplit(Point* points, size_t n) {
  SplitChoice choice;
  const size_t mid = n / 2;
  std::nth_element(points, points + mid, points + n,
                   [](const Point& a, const Point& b) { return a.x < b.x; });
  choice.sx = points[mid].x;
  std::nth_element(points, points + mid, points + n,
                   [](const Point& a, const Point& b) { return a.y < b.y; });
  choice.sy = points[mid].y;
  choice.ord = Ordering::kAbcd;
  return choice;
}

SplitChoice MedianSplitPolicy::Choose(Point* points, size_t n, const Rect&,
                                      Rng&) {
  return MedianSplit(points, n);
}

GreedySplitPolicy::GreedySplitPolicy(const CountProvider* provider,
                                     const Workload* workload, int kappa,
                                     double alpha)
    : provider_(provider), kappa_(kappa), alpha_(alpha) {
  if (workload != nullptr) {
    corner_xs_.reserve(2 * workload->queries.size());
    corner_ys_.reserve(2 * workload->queries.size());
    for (const Rect& q : workload->queries) {
      corner_xs_.push_back(q.min_x);
      corner_xs_.push_back(q.max_x);
      corner_ys_.push_back(q.min_y);
      corner_ys_.push_back(q.max_y);
    }
    std::sort(corner_xs_.begin(), corner_xs_.end());
    std::sort(corner_ys_.begin(), corner_ys_.end());
  }
}

double GreedySplitPolicy::SampleCorner(const std::vector<double>& coords,
                                       double lo, double hi, Rng& rng) const {
  const auto first = std::lower_bound(coords.begin(), coords.end(), lo);
  const auto last = std::upper_bound(coords.begin(), coords.end(), hi);
  if (first >= last) return std::numeric_limits<double>::quiet_NaN();
  const size_t span = static_cast<size_t>(last - first);
  return *(first + rng.NextBelow(span));
}

SplitChoice GreedySplitPolicy::Choose(Point* points, size_t n,
                                      const Rect& cell, Rng& rng) {
  // Candidates are sampled from the node's data extent (cells may be
  // unbounded; the data MBR is where splits can matter).
  Rect extent;
  for (size_t i = 0; i < n; ++i) extent.Expand(points[i]);

  SplitChoice best = MedianSplit(points, n);
  const QuadCounts nd =
      provider_->CountData(points, n, cell, best.sx, best.sy);
  const ClassCounts qc = provider_->CountQueries(cell, best.sx, best.sy);
  const OrderedCost oc = BestOrdering(nd, qc, alpha_);
  best.ord = oc.ordering;
  double best_cost = oc.cost;
  for (int k = 0; k < kappa_; ++k) {
    double sx = std::numeric_limits<double>::quiet_NaN();
    double sy = std::numeric_limits<double>::quiet_NaN();
    // Half the candidates snap to query-corner coordinates inside the
    // extent; the rest (and any failed snap) sample uniformly.
    if (k % 2 == 0 && !corner_xs_.empty()) {
      sx = SampleCorner(corner_xs_, extent.min_x, extent.max_x, rng);
      sy = SampleCorner(corner_ys_, extent.min_y, extent.max_y, rng);
    }
    if (std::isnan(sx)) sx = rng.Uniform(extent.min_x, extent.max_x);
    if (std::isnan(sy)) sy = rng.Uniform(extent.min_y, extent.max_y);
    const QuadCounts cnd = provider_->CountData(points, n, cell, sx, sy);
    const ClassCounts cqc = provider_->CountQueries(cell, sx, sy);
    const OrderedCost coc = BestOrdering(cnd, cqc, alpha_);
    if (coc.cost < best_cost) {
      best_cost = coc.cost;
      best = SplitChoice{sx, sy, coc.ordering};
    }
  }
  return best;
}

void BuildZIndex(const Dataset& data, SplitPolicy& policy,
                 const ZBuildParams& params, ZIndex* out) {
  std::vector<Point> pts = data.points;
  // Unbounded root cell: inserts outside the original bounds stay inside
  // their leaf's cell (see header comment).
  const Rect root_cell = Rect::Of(-kInf, -kInf, kInf, kInf);
  out->StartBuild(root_cell, params.leaf_capacity);
  if (pts.empty()) {
    const int32_t leaf = out->AddLeaf(root_cell, pts.data(), 0, 0);
    out->SetRoot(leaf);
    out->FinishBuild(std::move(pts));
    return;
  }
  TreeBuilder builder(policy, params, out);
  const int32_t root =
      builder.BuildNode(pts, 0, static_cast<uint32_t>(pts.size()), root_cell,
                        /*depth=*/0);
  out->SetRoot(root);
  out->FinishBuild(std::move(pts));
}

}  // namespace wazi

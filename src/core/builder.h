// Z-index construction: the shared recursive bulk loader plus the two
// split policies — median/"abcd" for the Base Z-index (§3) and the
// cost-minimizing Greedy policy of Algorithm 3 for WaZI (§4.3).
//
// The tree is rooted at an unbounded cell (-inf..inf)^2 so that points
// inserted outside the original data bounds still fall inside their
// leaf's cell, which keeps the look-ahead skipping invariants valid under
// updates (cells never grow; see leaf_dir.h).

#ifndef WAZI_CORE_BUILDER_H_
#define WAZI_CORE_BUILDER_H_

#include <cstddef>
#include <cstdint>

#include "common/geometry.h"
#include "common/rng.h"
#include "core/cost_model.h"
#include "core/density_adapters.h"
#include "core/zindex.h"
#include "workload/dataset.h"

namespace wazi {

struct SplitChoice {
  double sx = 0.0;
  double sy = 0.0;
  Ordering ord = Ordering::kAbcd;
};

// Decides split point and child ordering for one node. `points` is the
// node's span (mutable: policies may reorder it, e.g. for medians).
class SplitPolicy {
 public:
  virtual ~SplitPolicy() = default;
  virtual SplitChoice Choose(Point* points, size_t n, const Rect& cell,
                             Rng& rng) = 0;
};

// Base Z-index: split at the data medians, always "abcd".
class MedianSplitPolicy : public SplitPolicy {
 public:
  SplitChoice Choose(Point* points, size_t n, const Rect& cell,
                     Rng& rng) override;
};

// WaZI's Greedy (Algorithm 3): sample kappa candidate split points,
// evaluate Eq. 5 under both orderings with counts from `provider`, keep
// the minimum. Candidates mix uniform samples over the node's data extent
// with coordinates drawn from workload query corners (optima sit at query
// boundaries, where a split stops queries from straddling pages; see
// DESIGN.md §4.4); the median is always one extra candidate.
class GreedySplitPolicy : public SplitPolicy {
 public:
  GreedySplitPolicy(const CountProvider* provider, const Workload* workload,
                    int kappa, double alpha);

  SplitChoice Choose(Point* points, size_t n, const Rect& cell,
                     Rng& rng) override;

 private:
  // Random corner coordinate within [lo, hi], or NaN when none exists.
  double SampleCorner(const std::vector<double>& coords, double lo, double hi,
                      Rng& rng) const;

  const CountProvider* provider_;
  int kappa_;
  double alpha_;
  std::vector<double> corner_xs_;  // sorted query corner coordinates
  std::vector<double> corner_ys_;
};

struct ZBuildParams {
  int leaf_capacity = 256;
  int max_depth = 40;
  uint64_t seed = 42;
};

// Bulk-loads `out` from `data` using `policy` for every internal node.
// Reorders a copy of the points into curve order; leaves become clustered
// pages. Does NOT build look-ahead pointers (call out->BuildLookahead()).
void BuildZIndex(const Dataset& data, SplitPolicy& policy,
                 const ZBuildParams& params, ZIndex* out);

// Median split of a span: (x-median, y-median), computed in place.
SplitChoice MedianSplit(Point* points, size_t n);

}  // namespace wazi

#endif  // WAZI_CORE_BUILDER_H_

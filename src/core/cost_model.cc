#include "core/cost_model.h"

namespace wazi {

const char* ToString(Ordering o) {
  return o == Ordering::kAbcd ? "abcd" : "acbd";
}

double QueryClassCost(RectClass cls, const QuadCounts& nd, Ordering o,
                      double alpha) {
  const double na = nd[Quadrant::kA];
  const double nb = nd[Quadrant::kB];
  const double nc = nd[Quadrant::kC];
  const double nd_ = nd[Quadrant::kD];
  // Diagonal classes and AD are ordering-independent.
  switch (cls) {
    case RectClass::kAA: return na;
    case RectClass::kBB: return nb;
    case RectClass::kCC: return nc;
    case RectClass::kDD: return nd_;
    case RectClass::kAD: return na + nb + nc + nd_;
    case RectClass::kOutside: return 0.0;
    default: break;
  }
  if (o == Ordering::kAbcd) {
    // Curve order A,B,C,D: AC spans A..C with B skipped; BD spans B..D
    // with C skipped; AB and CD are adjacent.
    switch (cls) {
      case RectClass::kAC: return na + alpha * nb + nc;
      case RectClass::kBD: return nb + alpha * nc + nd_;
      case RectClass::kAB: return na + nb;
      case RectClass::kCD: return nc + nd_;
      default: break;
    }
  } else {
    // Curve order A,C,B,D: AB spans A..B with C skipped; CD spans C..D
    // with B skipped; AC and BD are adjacent. (Eq. 2 as printed in the
    // paper has garbled subscripts here; this is the symmetric intent.)
    switch (cls) {
      case RectClass::kAB: return na + alpha * nc + nb;
      case RectClass::kCD: return nc + alpha * nb + nd_;
      case RectClass::kAC: return na + nc;
      case RectClass::kBD: return nb + nd_;
      default: break;
    }
  }
  return 0.0;
}

double GreedyCost(const QuadCounts& nd, const ClassCounts& qc, Ordering o,
                  double alpha) {
  double cost = 0.0;
  for (int c = 0; c < 9; ++c) {
    const RectClass cls = static_cast<RectClass>(c);
    const double count = qc[cls];
    if (count > 0.0) cost += count * QueryClassCost(cls, nd, o, alpha);
  }
  return cost;
}

OrderedCost BestOrdering(const QuadCounts& nd, const ClassCounts& qc,
                         double alpha) {
  const double abcd = GreedyCost(nd, qc, Ordering::kAbcd, alpha);
  const double acbd = GreedyCost(nd, qc, Ordering::kAcbd, alpha);
  if (acbd < abcd) return OrderedCost{Ordering::kAcbd, acbd};
  return OrderedCost{Ordering::kAbcd, abcd};
}

}  // namespace wazi

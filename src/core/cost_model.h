// Retrieval-cost model of the paper (§4.1-4.2, Eq. 1-5).
//
// For one node with split point (sx, sy), the data space is divided into
// quadrants A..D (geometry.h). A range query R is classified by which
// quadrants contain its (clipped) bottom-left and top-right corners; the
// retrieval cost of R is the number of points the scan phase touches,
// where quadrants that fall between the query's first and last quadrant
// in curve order but do not overlap R cost only a fraction alpha of their
// points (they are skipped after a bounding-box check, or via look-ahead
// pointers when those are enabled — hence the paper sets alpha = 1e-5 for
// WaZI with skipping).

#ifndef WAZI_CORE_COST_MODEL_H_
#define WAZI_CORE_COST_MODEL_H_

#include <cstdint>

#include "common/geometry.h"

namespace wazi {

// Child-cell visit orderings that preserve dominance monotonicity (§4.1):
// "abcd" visits A,B,C,D; "acbd" visits A,C,B,D.
enum class Ordering : uint8_t { kAbcd = 0, kAcbd = 1 };

const char* ToString(Ordering o);

// Points (or point-count estimates) per quadrant; indexed by Quadrant.
struct QuadCounts {
  double n[4] = {0.0, 0.0, 0.0, 0.0};

  double& operator[](Quadrant q) { return n[static_cast<int>(q)]; }
  double operator[](Quadrant q) const { return n[static_cast<int>(q)]; }
  double total() const { return n[0] + n[1] + n[2] + n[3]; }
};

// Queries (or estimates) per rectangle class; indexed by RectClass
// (kOutside is not stored — such queries contribute nothing here).
struct ClassCounts {
  double q[9] = {0, 0, 0, 0, 0, 0, 0, 0, 0};

  double& operator[](RectClass c) { return q[static_cast<int>(c)]; }
  double operator[](RectClass c) const { return q[static_cast<int>(c)]; }
};

// Retrieval cost of a single query of class `cls` (Eq. 1/2 terms).
double QueryClassCost(RectClass cls, const QuadCounts& nd, Ordering o,
                      double alpha);

// Workload-aggregated greedy cost C of Eq. 5: sum over classes of
// class-count x class-cost, with the sub-partition upper bound q_XX * n_X.
double GreedyCost(const QuadCounts& nd, const ClassCounts& qc, Ordering o,
                  double alpha);

// Convenience: the better of the two orderings and its cost.
struct OrderedCost {
  Ordering ordering;
  double cost;
};
OrderedCost BestOrdering(const QuadCounts& nd, const ClassCounts& qc,
                         double alpha);

}  // namespace wazi

#endif  // WAZI_CORE_COST_MODEL_H_

#include "core/density_adapters.h"

#include <algorithm>
#include <limits>

namespace wazi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

QuadCounts CountSpan(const Point* points, size_t n_points, double sx,
                     double sy) {
  QuadCounts counts;
  for (size_t i = 0; i < n_points; ++i) {
    counts.n[static_cast<int>(QuadrantOf(points[i], sx, sy))] += 1.0;
  }
  return counts;
}

// 4-D box (bl.x, bl.y, tr.x, tr.y) for queries-overlapping-`cell` whose
// clipped BL corner is in `bl` and clipped TR corner in `tr`.
DBox CornerBox(const Rect& cell, double sx, double sy, Quadrant bl,
               Quadrant tr) {
  const bool bl_low_x = (bl == Quadrant::kA || bl == Quadrant::kC);
  const bool bl_low_y = (bl == Quadrant::kA || bl == Quadrant::kB);
  const bool tr_low_x = (tr == Quadrant::kA || tr == Quadrant::kC);
  const bool tr_low_y = (tr == Quadrant::kA || tr == Quadrant::kB);
  DBox box;
  // bl.x: clipped BL in a low-x quadrant  <=> raw bl.x <= sx; otherwise
  // raw bl.x in (sx, cell.max_x] (bl.x <= cell.max_x is the overlap
  // condition on this axis). Closed bounds are a negligible approximation
  // for the estimator. Same reasoning per axis below.
  box.lo[0] = bl_low_x ? -kInf : sx;
  box.hi[0] = bl_low_x ? sx : cell.max_x;
  box.lo[1] = bl_low_y ? -kInf : sy;
  box.hi[1] = bl_low_y ? sy : cell.max_y;
  // tr.x: clipped TR in a low-x quadrant <=> raw tr.x <= sx (with overlap
  // requiring tr.x >= cell.min_x); otherwise raw tr.x > sx.
  box.lo[2] = tr_low_x ? cell.min_x : sx;
  box.hi[2] = tr_low_x ? sx : kInf;
  box.lo[3] = tr_low_y ? cell.min_y : sy;
  box.hi[3] = tr_low_y ? sy : kInf;
  return box;
}

struct ClassPair {
  RectClass cls;
  Quadrant bl;
  Quadrant tr;
};

constexpr ClassPair kClassPairs[] = {
    {RectClass::kAA, Quadrant::kA, Quadrant::kA},
    {RectClass::kAB, Quadrant::kA, Quadrant::kB},
    {RectClass::kAC, Quadrant::kA, Quadrant::kC},
    {RectClass::kAD, Quadrant::kA, Quadrant::kD},
    {RectClass::kBB, Quadrant::kB, Quadrant::kB},
    {RectClass::kBD, Quadrant::kB, Quadrant::kD},
    {RectClass::kCC, Quadrant::kC, Quadrant::kC},
    {RectClass::kCD, Quadrant::kC, Quadrant::kD},
    {RectClass::kDD, Quadrant::kD, Quadrant::kD},
};

}  // namespace

QuadCounts ExactCountProvider::CountData(const Point* points, size_t n_points,
                                         const Rect& /*cell*/, double sx,
                                         double sy) const {
  return CountSpan(points, n_points, sx, sy);
}

ClassCounts ExactCountProvider::CountQueries(const Rect& cell, double sx,
                                             double sy) const {
  ClassCounts counts;
  for (const Rect& q : workload_->queries) {
    const RectClass cls = ClassifyRect(q, cell, sx, sy);
    if (cls != RectClass::kOutside) counts[cls] += 1.0;
  }
  return counts;
}

std::vector<DVec> QueryCornerRows(const Workload& workload) {
  std::vector<DVec> rows;
  rows.reserve(workload.queries.size());
  for (const Rect& q : workload.queries) {
    rows.push_back(DVec{q.min_x, q.min_y, q.max_x, q.max_y});
  }
  return rows;
}

EstimatedCountProvider::EstimatedCountProvider(const Dataset& data,
                                               const Workload& workload,
                                               const EstimatorOptions& opts)
    : opts_(opts) {
  {
    std::vector<DVec> rows;
    rows.reserve(data.points.size());
    for (const Point& p : data.points) rows.push_back(DVec{p.x, p.y, 0, 0});
    KdForestOptions fo;
    fo.dim = 2;
    fo.num_trees = opts.data_trees;
    fo.subsample = opts.subsample;
    fo.leaf_size = opts.leaf_size;
    fo.seed = opts.seed;
    data_forest_.Build(rows, {}, fo);
  }
  {
    std::vector<DVec> rows = QueryCornerRows(workload);
    KdForestOptions fo;
    fo.dim = 4;
    fo.num_trees = opts.query_trees;
    fo.subsample = opts.subsample;
    fo.leaf_size = opts.query_leaf_size;
    fo.seed = opts.seed + 1;
    query_forest_.Build(rows, {}, fo);
  }
}

QuadCounts EstimatedCountProvider::CountData(const Point* points,
                                             size_t n_points, const Rect& cell,
                                             double sx, double sy) const {
  // Small spans are counted exactly: the points are already in hand and
  // the scan is cheaper and tighter than four forest queries.
  if (n_points <= static_cast<size_t>(opts_.exact_span_pages) *
                      static_cast<size_t>(opts_.leaf_capacity)) {
    return CountSpan(points, n_points, sx, sy);
  }
  QuadCounts counts;
  for (int qi = 0; qi < 4; ++qi) {
    const Quadrant quad = static_cast<Quadrant>(qi);
    const Rect r = QuadrantRect(cell, sx, sy, quad);
    DBox box;
    box.lo = DVec{r.min_x, r.min_y, 0, 0};
    box.hi = DVec{r.max_x, r.max_y, 0, 0};
    counts.n[qi] = data_forest_.Estimate(box);
  }
  return counts;
}

ClassCounts EstimatedCountProvider::CountQueries(const Rect& cell, double sx,
                                                 double sy) const {
  ClassCounts counts;
  for (const ClassPair& pair : kClassPairs) {
    counts[pair.cls] =
        query_forest_.Estimate(CornerBox(cell, sx, sy, pair.bl, pair.tr));
  }
  return counts;
}

double EstimateQueriesCovering(const KdForest& query_forest, const Point& p) {
  DBox box;
  box.lo = DVec{-kInf, -kInf, p.x, p.y};
  box.hi = DVec{p.x, p.y, kInf, kInf};
  return query_forest.Estimate(box);
}

}  // namespace wazi

// Count providers for the greedy builder: either exact (scan the node's
// points and the workload) or learned (RFDE forests, §4.3).
//
// The learned path trains two forests once per build:
//  * a 2-D forest over data points, answering n_X = |D ∩ quadrant| boxes;
//  * a 4-D forest over query-corner tuples (bl.x, bl.y, tr.x, tr.y),
//    answering q_XY counts. Each q_XY reduces to a single 4-D box count
//    because, restricted to queries overlapping the cell, "clipped BL in
//    quadrant X" is an axis-aligned constraint on the raw corners (see
//    DESIGN.md §4.3).

#ifndef WAZI_CORE_DENSITY_ADAPTERS_H_
#define WAZI_CORE_DENSITY_ADAPTERS_H_

#include <cstddef>
#include <vector>

#include "common/geometry.h"
#include "core/cost_model.h"
#include "density/kd_forest.h"
#include "workload/dataset.h"

namespace wazi {

// Supplies quadrant data counts and query class counts for a candidate
// split (sx, sy) of `cell`. `points`/`n_points` is the node's own point
// span (exact providers use it; learned providers may ignore it).
class CountProvider {
 public:
  virtual ~CountProvider() = default;

  virtual QuadCounts CountData(const Point* points, size_t n_points,
                               const Rect& cell, double sx, double sy) const = 0;

  virtual ClassCounts CountQueries(const Rect& cell, double sx,
                                   double sy) const = 0;
};

// Exact counts: data by scanning the node's span, queries by classifying
// every workload rectangle that overlaps the cell. Used by tests and the
// "no estimator" ablation.
class ExactCountProvider : public CountProvider {
 public:
  explicit ExactCountProvider(const Workload* workload)
      : workload_(workload) {}

  QuadCounts CountData(const Point* points, size_t n_points, const Rect& cell,
                       double sx, double sy) const override;
  ClassCounts CountQueries(const Rect& cell, double sx,
                           double sy) const override;

 private:
  const Workload* workload_;
};

struct EstimatorOptions {
  int data_trees = 8;
  int query_trees = 8;
  size_t subsample = 64 * 1024;
  int leaf_size = 16;
  int query_leaf_size = 4;
  uint64_t seed = 42;
  // Spans at most this many multiples of a page are counted exactly (the
  // span is already in hand and small); larger spans use the forest.
  int exact_span_pages = 8;
  int leaf_capacity = 256;
};

// Learned counts via RFDE forests.
class EstimatedCountProvider : public CountProvider {
 public:
  // Trains the two forests; O(n log n).
  EstimatedCountProvider(const Dataset& data, const Workload& workload,
                         const EstimatorOptions& opts);

  QuadCounts CountData(const Point* points, size_t n_points, const Rect& cell,
                       double sx, double sy) const override;
  ClassCounts CountQueries(const Rect& cell, double sx,
                           double sy) const override;

  const KdForest& data_forest() const { return data_forest_; }
  const KdForest& query_forest() const { return query_forest_; }

 private:
  KdForest data_forest_;
  KdForest query_forest_;
  EstimatorOptions opts_;
};

// Builds the 4-D corner-tuple rows for a workload (shared with CUR).
std::vector<DVec> QueryCornerRows(const Workload& workload);

// Estimated number of workload queries whose rectangle covers point p:
// a 4-D dominance box count on the corner forest. Used by CUR's weighting.
double EstimateQueriesCovering(const KdForest& query_forest, const Point& p);

}  // namespace wazi

#endif  // WAZI_CORE_DENSITY_ADAPTERS_H_

#include "core/drift_monitor.h"

namespace wazi {

void DriftMonitor::Observe(int64_t points_scanned, int64_t results) {
  const double work = WorkPerResult(points_scanned, results);
  ++queries_observed_;
  if (queries_observed_ <= opts_.calibration_queries) {
    // Running mean during calibration; seed the recent EWMA with it.
    baseline_ += (work - baseline_) / static_cast<double>(queries_observed_);
    recent_ = baseline_;
    return;
  }
  recent_ += opts_.recent_alpha * (work - recent_);
  if (baseline_ > 0.0 && recent_ > opts_.degradation_factor * baseline_) {
    if (++over_count_ >= opts_.patience) rebuild_recommended_ = true;
  } else {
    over_count_ = 0;
  }
}

void DriftMonitor::ResetAfterRebuild() {
  queries_observed_ = 0;
  baseline_ = 0.0;
  recent_ = 0.0;
  over_count_ = 0;
  rebuild_recommended_ = false;
}

double DriftMonitor::drift_ratio() const {
  if (baseline_ <= 0.0) return 1.0;
  return recent_ / baseline_;
}

}  // namespace wazi

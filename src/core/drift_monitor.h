// Workload-drift detection for workload-aware indexes (the paper's §6.8
// discussion and §7 future work: "mechanisms to decide when to retrain").
//
// The monitor watches the per-query work an index reports (points scanned
// per result is a latency proxy that is robust to machine noise) and
// compares a slow-moving baseline EWMA, calibrated right after (re)build,
// against a fast-moving recent EWMA. When the recent average exceeds the
// baseline by a configurable factor for enough queries, it recommends a
// rebuild.

#ifndef WAZI_CORE_DRIFT_MONITOR_H_
#define WAZI_CORE_DRIFT_MONITOR_H_

#include <cstdint>

#include "index/spatial_index.h"

namespace wazi {

struct DriftMonitorOptions {
  // Queries used to calibrate the baseline after (re)build.
  int64_t calibration_queries = 500;
  // Smoothing factor of the recent-work EWMA (per query).
  double recent_alpha = 0.01;
  // Recommend rebuild when recent/baseline exceeds this factor...
  double degradation_factor = 1.5;
  // ...for at least this many consecutive queries.
  int64_t patience = 200;
};

class DriftMonitor {
 public:
  explicit DriftMonitor(DriftMonitorOptions opts = {}) : opts_(opts) {}

  // Records one executed query's work. `stats_delta` is the work that
  // query added (callers typically snapshot index.stats() around the
  // query); cheapest usage is Observe(points_scanned, results).
  void Observe(int64_t points_scanned, int64_t results);

  // Call after rebuilding the index on the new workload.
  void ResetAfterRebuild();

  bool rebuild_recommended() const { return rebuild_recommended_; }
  // Recent work per result relative to the calibrated baseline (1.0 = no
  // drift; values above degradation_factor trigger the recommendation).
  double drift_ratio() const;
  int64_t queries_observed() const { return queries_observed_; }

 private:
  static double WorkPerResult(int64_t points_scanned, int64_t results) {
    // +1 keeps empty-result queries meaningful (pure overhead).
    return static_cast<double>(points_scanned) /
           static_cast<double>(results + 1);
  }

  DriftMonitorOptions opts_;
  int64_t queries_observed_ = 0;
  double baseline_ = 0.0;   // mean work/result during calibration
  double recent_ = 0.0;     // EWMA of work/result after calibration
  int64_t over_count_ = 0;  // consecutive queries above threshold
  bool rebuild_recommended_ = false;
};

}  // namespace wazi

#endif  // WAZI_CORE_DRIFT_MONITOR_H_

#include "core/lookahead.h"

#include <sstream>
#include <unordered_map>
#include <vector>

namespace wazi {
namespace {

bool Improves(Criterion c, const Rect& target, const Rect& source) {
  switch (c) {
    case kBelow: return target.max_y > source.max_y;
    case kAbove: return target.min_y < source.min_y;
    case kLeft: return target.max_x > source.max_x;
    case kRight: return target.min_x < source.min_x;
  }
  return true;
}

const char* CriterionName(int c) {
  switch (c) {
    case kBelow: return "Below";
    case kAbove: return "Above";
    case kLeft: return "Left";
    case kRight: return "Right";
  }
  return "?";
}

}  // namespace

std::string ValidateLookahead(const ZIndex& index, bool strict) {
  const LeafDir& dir = index.leaf_dir();
  const std::vector<int32_t> order = dir.InOrder();
  std::unordered_map<int32_t, size_t> pos;
  pos.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  for (size_t i = 0; i < order.size(); ++i) {
    const LeafRec& leaf = dir.leaf(order[i]);
    for (int c = 0; c < kNumCriteria; ++c) {
      const Criterion crit = static_cast<Criterion>(c);
      const int32_t target = leaf.lookahead[c];
      size_t target_pos = order.size();  // end of list
      if (target != kInvalidLeaf) {
        auto it = pos.find(target);
        if (it == pos.end()) {
          std::ostringstream os;
          os << "leaf " << order[i] << " criterion " << CriterionName(c)
             << ": target " << target << " not in LeafList";
          return os.str();
        }
        target_pos = it->second;
        if (target_pos <= i) {
          std::ostringstream os;
          os << "leaf " << order[i] << " criterion " << CriterionName(c)
             << ": target " << target << " not strictly later in list";
          return os.str();
        }
        if (strict && !Improves(crit, dir.leaf(target).cell, leaf.cell)) {
          std::ostringstream os;
          os << "leaf " << order[i] << " criterion " << CriterionName(c)
             << ": target " << target << " does not improve the criterion";
          return os.str();
        }
      }
      for (size_t j = i + 1; j < target_pos; ++j) {
        if (Improves(crit, dir.leaf(order[j]).cell, leaf.cell)) {
          std::ostringstream os;
          os << "leaf " << order[i] << " criterion " << CriterionName(c)
             << ": skipped leaf " << order[j]
             << " improves the criterion (unsafe skip)";
          return os.str();
        }
      }
    }
  }
  return std::string();
}

LookaheadSummary SummarizeLookahead(const ZIndex& index) {
  const LeafDir& dir = index.leaf_dir();
  const std::vector<int32_t> order = dir.InOrder();
  std::unordered_map<int32_t, size_t> pos;
  pos.reserve(order.size());
  for (size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;

  LookaheadSummary summary;
  double total_jump = 0.0;
  for (size_t i = 0; i < order.size(); ++i) {
    const LeafRec& leaf = dir.leaf(order[i]);
    for (int c = 0; c < kNumCriteria; ++c) {
      const int32_t target = leaf.lookahead[c];
      ++summary.pointers;
      const size_t tpos =
          (target == kInvalidLeaf) ? order.size() : pos.at(target);
      const int64_t jump = static_cast<int64_t>(tpos - i - 1);
      if (target == kInvalidLeaf) ++summary.to_end;
      if (jump == 0) ++summary.next_hops;
      total_jump += static_cast<double>(jump);
      summary.max_jump = std::max(summary.max_jump, jump);
    }
  }
  if (summary.pointers > 0) {
    summary.mean_jump = total_jump / static_cast<double>(summary.pointers);
  }
  return summary;
}

}  // namespace wazi

// Validation and introspection helpers for the §5 look-ahead skipping
// mechanism. The hot-path construction and traversal live in zindex.cc;
// these functions check the structural invariants that make skipping
// correct, and are used by tests and by debug assertions after updates.

#ifndef WAZI_CORE_LOOKAHEAD_H_
#define WAZI_CORE_LOOKAHEAD_H_

#include <string>

#include "core/zindex.h"

namespace wazi {

// Invariants checked, for every leaf P and criterion c with target T:
//  1. T is strictly later than P in the LeafList (or the end of the list);
//  2. every leaf strictly between P and T does not improve criterion c
//     over P (so any query that disqualified P also disqualifies it).
// The "improvement" invariant (T itself improves c over P) holds for bulk
// builds but is deliberately allowed to lapse after leaf splits (targets
// may shrink); correctness only needs (1) and (2). `strict` additionally
// enforces improvement, for freshly bulk-built indexes.
//
// Returns an empty string when valid, else a description of the first
// violation.
std::string ValidateLookahead(const ZIndex& index, bool strict);

// Counts of look-ahead pointers by jump distance (for diagnostics).
struct LookaheadSummary {
  int64_t pointers = 0;
  int64_t to_end = 0;
  int64_t next_hops = 0;    // pointers that only reach the next leaf
  double mean_jump = 0.0;   // average number of leaves skipped
  int64_t max_jump = 0;
};
LookaheadSummary SummarizeLookahead(const ZIndex& index);

}  // namespace wazi

#endif  // WAZI_CORE_LOOKAHEAD_H_

#include "core/recursive_cost.h"

#include <limits>
#include <vector>

namespace wazi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Subtree point counts, indexed by node id.
std::vector<double> SubtreeCounts(const ZIndex& index) {
  std::vector<double> counts(index.num_nodes(), -1.0);
  // Nodes were appended parent-before-children during bulk build and leaf
  // splits, so a reverse pass resolves children first.
  for (size_t i = index.num_nodes(); i-- > 0;) {
    const ZIndex::Node& node = index.node(static_cast<int32_t>(i));
    if (node.is_leaf()) {
      counts[i] = static_cast<double>(
          index.page_store().PageSize(index.leaf_dir().leaf(node.leaf_id).page));
    } else {
      double sum = 0.0;
      for (int c = 0; c < 4; ++c) sum += counts[node.child[c]];
      counts[i] = sum;
    }
  }
  return counts;
}

bool IsDiagonal(RectClass cls) {
  return cls == RectClass::kAA || cls == RectClass::kBB ||
         cls == RectClass::kCC || cls == RectClass::kDD;
}

Quadrant DiagonalQuadrant(RectClass cls) {
  switch (cls) {
    case RectClass::kAA: return Quadrant::kA;
    case RectClass::kBB: return Quadrant::kB;
    case RectClass::kCC: return Quadrant::kC;
    default: return Quadrant::kD;
  }
}

double CostRec(const ZIndex& index, const std::vector<double>& counts,
               int32_t node_id, const Rect& cell, const Rect& query,
               double alpha) {
  const ZIndex::Node& node = index.node(node_id);
  if (node.is_leaf()) {
    return query.Intersect(cell).empty() ? 0.0 : counts[node_id];
  }
  const RectClass cls = ClassifyRect(query, cell, node.sx, node.sy);
  if (cls == RectClass::kOutside) return 0.0;
  if (IsDiagonal(cls)) {
    const Quadrant q = DiagonalQuadrant(cls);
    return CostRec(index, counts, node.child[static_cast<int>(q)],
                   QuadrantRect(cell, node.sx, node.sy, q), query, alpha);
  }
  QuadCounts nd;
  for (int c = 0; c < 4; ++c) {
    nd.n[c] = counts[node.child[c]];
  }
  return QueryClassCost(cls, nd, node.ord, alpha);
}

}  // namespace

double RecursiveQueryCost(const ZIndex& index, const Rect& query,
                          double alpha) {
  if (index.num_nodes() == 0) return 0.0;
  static thread_local std::vector<double> counts;
  // Recompute per call: callers batch through RecursiveWorkloadCost.
  counts = SubtreeCounts(index);
  const Rect root_cell = Rect::Of(-kInf, -kInf, kInf, kInf);
  return CostRec(index, counts, index.root(), root_cell, query, alpha);
}

double RecursiveWorkloadCost(const ZIndex& index, const Workload& workload,
                             double alpha) {
  if (index.num_nodes() == 0) return 0.0;
  const std::vector<double> counts = SubtreeCounts(index);
  const Rect root_cell = Rect::Of(-kInf, -kInf, kInf, kInf);
  double total = 0.0;
  for (const Rect& q : workload.queries) {
    total += CostRec(index, counts, index.root(), root_cell, q, alpha);
  }
  return total;
}

}  // namespace wazi

// Exact recursive retrieval-cost evaluation (Eq. 3) for a *built*
// generalized Z-index. The greedy builder (Alg. 3) approximates the
// recursive terms with the q_XX * n_X upper bound; this evaluator follows
// the recursion exactly, which the paper's §7 earmarks for future
// optimizers. It is used as a diagnostic (model-vs-actual studies, the
// design-choice ablation bench) and to test that the greedy bound really
// is an upper bound.

#ifndef WAZI_CORE_RECURSIVE_COST_H_
#define WAZI_CORE_RECURSIVE_COST_H_

#include "core/zindex.h"
#include "workload/dataset.h"

namespace wazi {

// Predicted number of points touched when processing `query` (Eq. 3):
// recursing into the child that fully contains the (clipped) query,
// charging straddled children their full point count and curve-order
// middle children alpha times their count.
double RecursiveQueryCost(const ZIndex& index, const Rect& query,
                          double alpha);

// Sum over the workload.
double RecursiveWorkloadCost(const ZIndex& index, const Workload& workload,
                             double alpha);

}  // namespace wazi

#endif  // WAZI_CORE_RECURSIVE_COST_H_

#include "core/serialize.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

namespace wazi {
namespace {

constexpr uint64_t kMagic = 0x57615a4931000000ULL;  // "WaZI1"
constexpr uint32_t kVersion = 1;

template <typename T>
void WritePod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* v) {
  in.read(reinterpret_cast<char*>(v), sizeof(T));
  return static_cast<bool>(in);
}

template <typename T>
void WriteVec(std::ostream& out, const std::vector<T>& v) {
  WritePod(out, static_cast<uint64_t>(v.size()));
  if (!v.empty()) {
    out.write(reinterpret_cast<const char*>(v.data()),
              static_cast<std::streamsize>(v.size() * sizeof(T)));
  }
}

template <typename T>
bool ReadVec(std::istream& in, std::vector<T>* v, uint64_t max_elems) {
  uint64_t n = 0;
  if (!ReadPod(in, &n) || n > max_elems) return false;
  v->resize(n);
  if (n > 0) {
    in.read(reinterpret_cast<char*>(v->data()),
            static_cast<std::streamsize>(n * sizeof(T)));
  }
  return static_cast<bool>(in);
}

// Sanity cap against corrupt headers (1 billion entries).
constexpr uint64_t kMaxElems = 1ull << 30;

}  // namespace

bool SaveZIndex(const ZIndex& index, std::ostream& out) {
  WritePod(out, kMagic);
  WritePod(out, kVersion);
  WritePod(out, index.root_);
  WritePod(out, index.leaf_capacity_);
  WritePod(out, static_cast<uint8_t>(index.has_lookahead_ ? 1 : 0));
  WritePod(out, index.domain_);

  WriteVec(out, index.nodes_);

  // Leaf directory: raw records plus list anchors.
  WritePod(out, index.dir_.head());
  WritePod(out, index.dir_.tail());
  WriteVec(out, index.dir_.raw_leaves());

  // Pages, materialized in page-id order (re-clusters on load).
  const PageStore& store = index.store_;
  WritePod(out, static_cast<uint64_t>(store.num_pages()));
  for (int32_t p = 0; p < store.num_pages(); ++p) {
    const Span span = store.PageSpan(p);
    WritePod(out, static_cast<uint64_t>(span.size()));
    if (!span.empty()) {
      out.write(reinterpret_cast<const char*>(span.begin),
                static_cast<std::streamsize>(span.size() * sizeof(Point)));
    }
  }
  return static_cast<bool>(out);
}

bool LoadZIndex(std::istream& in, ZIndex* index) {
  *index = ZIndex();
  uint64_t magic = 0;
  uint32_t version = 0;
  if (!ReadPod(in, &magic) || magic != kMagic) return false;
  if (!ReadPod(in, &version) || version != kVersion) return false;

  int32_t root = ZIndex::kInvalidNode;
  int leaf_capacity = 0;
  uint8_t has_lookahead = 0;
  Rect domain;
  if (!ReadPod(in, &root) || !ReadPod(in, &leaf_capacity) ||
      !ReadPod(in, &has_lookahead) || !ReadPod(in, &domain)) {
    return false;
  }

  std::vector<ZIndex::Node> nodes;
  if (!ReadVec(in, &nodes, kMaxElems)) return false;

  int32_t head = kInvalidLeaf, tail = kInvalidLeaf;
  std::vector<LeafRec> leaves;
  if (!ReadPod(in, &head) || !ReadPod(in, &tail) ||
      !ReadVec(in, &leaves, kMaxElems)) {
    return false;
  }

  uint64_t num_pages = 0;
  if (!ReadPod(in, &num_pages) || num_pages > kMaxElems) return false;
  std::vector<Point> clustered;
  std::vector<uint32_t> offsets;
  offsets.reserve(num_pages + 1);
  for (uint64_t p = 0; p < num_pages; ++p) {
    uint64_t len = 0;
    if (!ReadPod(in, &len) || len > kMaxElems) return false;
    offsets.push_back(static_cast<uint32_t>(clustered.size()));
    const size_t old = clustered.size();
    clustered.resize(old + len);
    if (len > 0) {
      in.read(reinterpret_cast<char*>(clustered.data() + old),
              static_cast<std::streamsize>(len * sizeof(Point)));
      if (!in) return false;
    }
  }
  offsets.push_back(static_cast<uint32_t>(clustered.size()));

  // Structural sanity before committing.
  if (root >= static_cast<int32_t>(nodes.size())) return false;
  for (const ZIndex::Node& n : nodes) {
    if (n.is_leaf()) {
      if (n.leaf_id >= static_cast<int32_t>(leaves.size())) return false;
    } else {
      for (int c = 0; c < 4; ++c) {
        if (n.child[c] < 0 ||
            n.child[c] >= static_cast<int32_t>(nodes.size())) {
          return false;
        }
      }
    }
  }
  for (const LeafRec& leaf : leaves) {
    if (leaf.page < 0 || leaf.page >= static_cast<int32_t>(num_pages)) {
      return false;
    }
  }

  index->nodes_ = std::move(nodes);
  index->dir_.Restore(std::move(leaves), head, tail);
  index->store_.BulkLoad(std::move(clustered), offsets);
  index->domain_ = domain;
  index->root_ = root;
  index->leaf_capacity_ = leaf_capacity;
  index->has_lookahead_ = has_lookahead != 0;
  return true;
}

bool SaveZIndexToFile(const ZIndex& index, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  return out && SaveZIndex(index, out) && static_cast<bool>(out.flush());
}

bool LoadZIndexFromFile(const std::string& path, ZIndex* index) {
  std::ifstream in(path, std::ios::binary);
  return in && LoadZIndex(in, index);
}

}  // namespace wazi

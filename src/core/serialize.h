// Binary serialization of built Z-index variants, so an offline-built
// WaZI (the paper's intended deployment: expensive build, long-lived
// serving, §6.5) can be persisted and loaded without retraining.
//
// Format: a small header (magic, version, flags), then the node array,
// leaf directory and clustered pages. Byte order is host order; the
// format is a persistence format, not an interchange format.

#ifndef WAZI_CORE_SERIALIZE_H_
#define WAZI_CORE_SERIALIZE_H_

#include <iosfwd>
#include <string>

#include "core/zindex.h"

namespace wazi {

// Writes `index` to `out`. Returns false on stream failure.
bool SaveZIndex(const ZIndex& index, std::ostream& out);

// Reads an index written by SaveZIndex. Returns false on corrupt or
// incompatible input; `index` is left empty in that case.
bool LoadZIndex(std::istream& in, ZIndex* index);

// File-path convenience wrappers.
bool SaveZIndexToFile(const ZIndex& index, const std::string& path);
bool LoadZIndexFromFile(const std::string& path, ZIndex* index);

}  // namespace wazi

#endif  // WAZI_CORE_SERIALIZE_H_

#include "core/wazi.h"

#include "core/serialize.h"

namespace wazi {

void ZIndexVariant::Build(const Dataset& data, const Workload& workload,
                          const BuildOptions& opts) {
  ZBuildParams params;
  params.leaf_capacity = opts.leaf_capacity;
  params.seed = opts.seed;

  if (!adaptive_) {
    MedianSplitPolicy policy;
    BuildZIndex(data, policy, params, &zindex_);
  } else {
    const double alpha = skipping_ ? opts.alpha : opts.alpha_noskip;
    std::unique_ptr<CountProvider> provider;
    std::unique_ptr<EstimatedCountProvider> estimated;
    std::unique_ptr<ExactCountProvider> exact;
    if (opts.use_estimators) {
      EstimatorOptions eo;
      eo.data_trees = opts.rfde_trees;
      eo.query_trees = opts.rfde_trees;
      eo.subsample = opts.rfde_subsample;
      eo.leaf_size = opts.rfde_leaf_size;
      // Query-corner distributions are spiky at venue scale; the 4-D
      // forest needs fine leaves to resolve the straddle costs that drive
      // bottom-level split choices.
      eo.query_leaf_size = 4;
      eo.seed = opts.seed;
      eo.leaf_capacity = opts.leaf_capacity;
      estimated = std::make_unique<EstimatedCountProvider>(data, workload, eo);
    } else {
      exact = std::make_unique<ExactCountProvider>(&workload);
    }
    const CountProvider* raw =
        opts.use_estimators ? static_cast<const CountProvider*>(estimated.get())
                            : static_cast<const CountProvider*>(exact.get());
    GreedySplitPolicy policy(raw,
                             opts.corner_candidates ? &workload : nullptr,
                             opts.kappa, alpha);
    BuildZIndex(data, policy, params, &zindex_);
  }
  if (skipping_) zindex_.BuildLookahead();
  stats_.Reset();
}

void ZIndexVariant::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  if (skipping_) {
    zindex_.RangeQuerySkipping(query, out, stats);
  } else {
    zindex_.RangeQueryNaive(query, out, stats);
  }
}

void ZIndexVariant::DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const {
  zindex_.Project(query, skipping_, proj, stats);
}

bool ZIndexVariant::DoPointQuery(const Point& p, QueryStats* stats) const {
  return zindex_.PointQuery(p.x, p.y, stats);
}

bool ZIndexVariant::Insert(const Point& p) {
  zindex_.Insert(p, /*maintain_lookahead=*/skipping_);
  return true;
}

bool ZIndexVariant::Remove(const Point& p) { return zindex_.Remove(p.x, p.y); }

size_t ZIndexVariant::SizeBytes() const { return zindex_.SizeBytes(); }

bool ZIndexVariant::SaveToFile(const std::string& path) const {
  return SaveZIndexToFile(zindex_, path);
}

bool ZIndexVariant::LoadFromFile(const std::string& path) {
  if (!LoadZIndexFromFile(path, &zindex_)) return false;
  if (skipping_ && !zindex_.has_lookahead()) zindex_.BuildLookahead();
  stats_.Reset();
  return true;
}

}  // namespace wazi

// Public facade: the four Z-index variants of the paper as SpatialIndex
// implementations.
//
//   Wazi      ("wazi")     adaptive partitioning/ordering + skipping
//   BaseZ     ("base")     median splits, "abcd", naive scanning
//   BaseZSk   ("base+sk")  Base layout + look-ahead skipping   (Fig. 13)
//   WaziNoSk  ("wazi-sk")  adaptive layout, no look-ahead      (Fig. 13)
//
// Typical use:
//   wazi::Wazi index;
//   index.Build(dataset, workload, wazi::BuildOptions{});
//   std::vector<wazi::Point> hits;
//   index.RangeQuery(wazi::Rect::Of(0.2, 0.2, 0.4, 0.4), &hits);

#ifndef WAZI_CORE_WAZI_H_
#define WAZI_CORE_WAZI_H_

#include <memory>
#include <string>
#include <vector>

#include "core/builder.h"
#include "core/density_adapters.h"
#include "core/zindex.h"
#include "index/spatial_index.h"

namespace wazi {

// Shared implementation of the four variants.
class ZIndexVariant : public SpatialIndex {
 public:
  ZIndexVariant(std::string name, bool adaptive, bool skipping)
      : name_(std::move(name)), adaptive_(adaptive), skipping_(skipping) {}

  std::string name() const override { return name_; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;

  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool SupportsUpdates() const override { return true; }
  size_t SizeBytes() const override;

  // Direct access for tests and diagnostics.
  const ZIndex& zindex() const { return zindex_; }
  bool skipping() const { return skipping_; }

  // Persistence (serialize.h): save a built index; load restores it
  // without retraining (look-ahead pointers are rebuilt if the stored
  // index lacks them but this variant skips).
  bool SaveToFile(const std::string& path) const;
  bool LoadFromFile(const std::string& path);

 private:
  std::string name_;
  bool adaptive_;
  bool skipping_;
  ZIndex zindex_;
};

class Wazi : public ZIndexVariant {
 public:
  Wazi() : ZIndexVariant("wazi", /*adaptive=*/true, /*skipping=*/true) {}
};

class BaseZ : public ZIndexVariant {
 public:
  BaseZ() : ZIndexVariant("base", /*adaptive=*/false, /*skipping=*/false) {}
};

class BaseZSk : public ZIndexVariant {
 public:
  BaseZSk()
      : ZIndexVariant("base+sk", /*adaptive=*/false, /*skipping=*/true) {}
};

class WaziNoSk : public ZIndexVariant {
 public:
  WaziNoSk()
      : ZIndexVariant("wazi-sk", /*adaptive=*/true, /*skipping=*/false) {}
};

}  // namespace wazi

#endif  // WAZI_CORE_WAZI_H_

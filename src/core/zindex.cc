#include "core/zindex.h"

#include <algorithm>
#include <cstdint>
#include <limits>

#include "common/simd.h"

namespace wazi {
namespace {

// Criterion satisfaction: is `cell` irrelevant to `query` for this reason?
inline bool CellBelow(const Rect& cell, const Rect& q) {
  return cell.max_y < q.min_y;
}
inline bool CellAbove(const Rect& cell, const Rect& q) {
  return cell.min_y > q.max_y;
}
inline bool CellLeft(const Rect& cell, const Rect& q) {
  return cell.max_x < q.min_x;
}
inline bool CellRight(const Rect& cell, const Rect& q) {
  return cell.min_x > q.max_x;
}

// "Improvement" of each criterion (Alg. 4): the target must weaken the
// reason the source was skipped, otherwise any query that skipped the
// source also skips the target.
inline bool Improves(Criterion c, const Rect& target, const Rect& source) {
  switch (c) {
    case kBelow: return target.max_y > source.max_y;
    case kAbove: return target.min_y < source.min_y;
    case kLeft: return target.max_x > source.max_x;
    case kRight: return target.min_x < source.min_x;
  }
  return true;
}

Rect MbrOf(const Point* begin, const Point* end) {
  Rect r;
  for (const Point* p = begin; p != end; ++p) r.Expand(*p);
  return r;
}

}  // namespace

void ZIndex::StartBuild(const Rect& domain, int leaf_capacity) {
  nodes_.clear();
  dir_.Clear();
  store_.Clear();
  build_offsets_.clear();
  domain_ = domain;
  leaf_capacity_ = leaf_capacity;
  root_ = kInvalidNode;
  has_lookahead_ = false;
}

int32_t ZIndex::AddInternal(double sx, double sy, Ordering ord) {
  Node node;
  node.sx = sx;
  node.sy = sy;
  node.ord = ord;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

int32_t ZIndex::AddLeaf(const Rect& cell, const Point* points, uint32_t begin,
                        uint32_t end) {
  const Rect mbr = MbrOf(points + begin, points + end);
  const int32_t leaf_id = dir_.Append(cell, mbr, /*page=*/-1);
  build_offsets_.push_back(begin);
  // Page ids are assigned in FinishBuild in the same order as leaves.
  dir_.leaf(leaf_id).page = leaf_id;
  Node node;
  node.leaf_id = leaf_id;
  nodes_.push_back(node);
  return static_cast<int32_t>(nodes_.size() - 1);
}

void ZIndex::SetChild(int32_t parent, Quadrant q, int32_t child) {
  nodes_[parent].child[static_cast<int>(q)] = child;
}

void ZIndex::FinishBuild(std::vector<Point> points) {
  build_offsets_.push_back(static_cast<uint32_t>(points.size()));
  store_.BulkLoad(std::move(points), build_offsets_);
  build_offsets_.clear();
}

void ZIndex::BuildLookahead() {
  // Alg. 4: iterate leaves tail-to-head; chase each criterion's chain
  // through the already-computed suffix.
  for (int32_t id = dir_.tail(); id != kInvalidLeaf; id = dir_.leaf(id).prev) {
    ComputeLookaheadFor(id);
  }
  has_lookahead_ = true;
}

void ZIndex::ComputeLookaheadFor(int32_t leaf_id) {
  LeafRec& leaf = dir_.leaf(leaf_id);
  for (int c = 0; c < kNumCriteria; ++c) {
    const Criterion crit = static_cast<Criterion>(c);
    int32_t t = leaf.next;
    while (t != kInvalidLeaf && !Improves(crit, dir_.leaf(t).cell, leaf.cell)) {
      t = dir_.leaf(t).lookahead[c];
    }
    leaf.lookahead[c] = t;
  }
}

int32_t ZIndex::FindLeafNode(double x, double y) const {
  int32_t id = root_;
  while (!nodes_[id].is_leaf()) {
    const Node& node = nodes_[id];
    // Algorithm 1: the quadrant bits identify the child; the stored
    // ordering only affects curve order, not routing.
    const int bitx = x > node.sx;
    const int bity = y > node.sy;
    id = node.child[(bity << 1) | bitx];
  }
  return id;
}

template <bool kUseSkipping, typename LeafFn>
void ZIndex::WalkRange(const Rect& query, QueryStats* stats,
                       LeafFn&& fn) const {
  if (root_ == kInvalidNode) return;
  const int32_t low = nodes_[FindLeafNode(query.min_x, query.min_y)].leaf_id;
  const int32_t high = nodes_[FindLeafNode(query.max_x, query.max_y)].leaf_id;
  const int64_t high_ord = dir_.leaf(high).ord;
  int32_t cur = low;
  while (cur != kInvalidLeaf) {
    const LeafRec& leaf = dir_.leaf(cur);
    if (leaf.ord > high_ord) break;
    ++stats->bbs_checked;
    const bool below = CellBelow(leaf.cell, query);
    const bool above = CellAbove(leaf.cell, query);
    const bool left = CellLeft(leaf.cell, query);
    const bool right = CellRight(leaf.cell, query);
    if (!(below || above || left || right)) {
      if (leaf.mbr.Overlaps(query)) fn(leaf);
      cur = leaf.next;
      continue;
    }
    if constexpr (kUseSkipping) {
      // Follow the satisfied look-ahead pointer that skips farthest;
      // kInvalidLeaf (end of list) is the farthest possible jump.
      int32_t best = leaf.next;
      bool at_end = (best == kInvalidLeaf);
      auto consider = [&](bool satisfied, int32_t target) {
        if (!satisfied || at_end) return;
        if (target == kInvalidLeaf) {
          at_end = true;
          best = kInvalidLeaf;
          return;
        }
        if (dir_.leaf(target).ord > dir_.leaf(best).ord) best = target;
      };
      consider(below, leaf.lookahead[kBelow]);
      consider(above, leaf.lookahead[kAbove]);
      consider(left, leaf.lookahead[kLeft]);
      consider(right, leaf.lookahead[kRight]);
      cur = best;
    } else {
      cur = leaf.next;
    }
  }
}

namespace {

// The leaf scan, vectorized (common/simd.h): filters one page span
// against the query rect and folds the kernel's work-shape counters into
// the query's stats. Byte-identical to the scalar loop it replaced.
void ScanSpan(const Span& span, const Rect& query, std::vector<Point>* out,
              QueryStats* stats) {
  ++stats->pages_scanned;
  const size_t n = static_cast<size_t>(span.end - span.begin);
  stats->points_scanned += static_cast<int64_t>(n);
  simd::KernelCounters kc;
  stats->results += static_cast<int64_t>(
      simd::FilterPointsInRect(span.begin, n, query, out, &kc));
  stats->simd_batches += kc.simd_batches;
  stats->scalar_tail += kc.scalar_tail;
}

}  // namespace

void ZIndex::RangeQueryNaive(const Rect& query, std::vector<Point>* out,
                             QueryStats* stats) const {
  WalkRange<false>(query, stats, [&](const LeafRec& leaf) {
    ScanSpan(store_.PageSpan(leaf.page), query, out, stats);
  });
}

void ZIndex::RangeQuerySkipping(const Rect& query, std::vector<Point>* out,
                                QueryStats* stats) const {
  WalkRange<true>(query, stats, [&](const LeafRec& leaf) {
    ScanSpan(store_.PageSpan(leaf.page), query, out, stats);
  });
}

void ZIndex::Project(const Rect& query, bool use_skipping, Projection* proj,
                     QueryStats* stats) const {
  auto collect = [&](const LeafRec& leaf) {
    const Span span = store_.PageSpan(leaf.page);
    if (!span.empty()) proj->push_back(span);
  };
  if (use_skipping) {
    WalkRange<true>(query, stats, collect);
  } else {
    WalkRange<false>(query, stats, collect);
  }
}

bool ZIndex::PointQuery(double x, double y, QueryStats* stats) const {
  if (root_ == kInvalidNode) return false;
  const Node& node = nodes_[FindLeafNode(x, y)];
  const LeafRec& leaf = dir_.leaf(node.leaf_id);
  ++stats->bbs_checked;
  const Span span = store_.PageSpan(leaf.page);
  ++stats->pages_scanned;
  const size_t n = static_cast<size_t>(span.end - span.begin);
  simd::KernelCounters kc;
  const size_t idx = simd::FindCoord(span.begin, n, x, y, &kc);
  // Early-exit semantics preserved: count points up to and including the
  // hit, or the whole page on a miss, exactly like the scalar loop.
  stats->points_scanned +=
      static_cast<int64_t>(idx == simd::kNotFound ? n : idx + 1);
  stats->simd_batches += kc.simd_batches;
  stats->scalar_tail += kc.scalar_tail;
  return idx != simd::kNotFound;
}

void ZIndex::Insert(const Point& p, bool maintain_lookahead) {
  const int32_t node_id = FindLeafNode(p.x, p.y);
  const int32_t leaf_id = nodes_[node_id].leaf_id;
  LeafRec& leaf = dir_.leaf(leaf_id);
  store_.Append(leaf.page, p);
  leaf.mbr.Expand(p);
  if (store_.PageSize(leaf.page) > static_cast<size_t>(leaf_capacity_)) {
    SplitLeaf(node_id, maintain_lookahead);
  }
}

void ZIndex::SplitLeaf(int32_t node_id, bool maintain_lookahead) {
  const int32_t leaf_id = nodes_[node_id].leaf_id;
  const Rect cell = dir_.leaf(leaf_id).cell;
  const int32_t page = dir_.leaf(leaf_id).page;

  // Copy the overflowing page out.
  std::vector<Point> pts;
  {
    const Span span = store_.PageSpan(page);
    pts.assign(span.begin, span.end);
  }

  // Split point: data medians along each axis (paper §6.7).
  const size_t mid = pts.size() / 2;
  std::nth_element(pts.begin(), pts.begin() + mid, pts.end(),
                   [](const Point& a, const Point& b) { return a.x < b.x; });
  const double sx = pts[mid].x;
  std::nth_element(pts.begin(), pts.begin() + mid, pts.end(),
                   [](const Point& a, const Point& b) { return a.y < b.y; });
  const double sy = pts[mid].y;

  // Partition into quadrants in curve order (abcd): A, B, C, D.
  std::vector<Point> parts[4];
  for (const Point& p : pts) {
    parts[static_cast<int>(QuadrantOf(p, sx, sy))].push_back(p);
  }
  // A median split of identical coordinates cannot separate the points
  // (everything routes to A with `>` comparisons); keep an oversize page.
  if (parts[0].size() == pts.size()) return;

  if (!dir_.HasOrdGapAfter(leaf_id, 8)) dir_.Renumber();

  // The existing leaf record becomes quadrant A (same list position), the
  // other three are inserted after it in curve order.
  int32_t ids[4] = {leaf_id, kInvalidLeaf, kInvalidLeaf, kInvalidLeaf};
  {
    LeafRec& a = dir_.leaf(leaf_id);
    a.cell = QuadrantRect(cell, sx, sy, Quadrant::kA);
    a.mbr = MbrOf(parts[0].data(), parts[0].data() + parts[0].size());
    store_.ReplacePage(page, std::move(parts[0]));
  }
  int32_t after = leaf_id;
  for (int q = 1; q < 4; ++q) {
    const Rect qcell = QuadrantRect(cell, sx, sy, static_cast<Quadrant>(q));
    const Rect mbr = MbrOf(parts[q].data(), parts[q].data() + parts[q].size());
    const int32_t new_page = store_.AllocatePage(std::move(parts[q]));
    after = dir_.InsertAfter(after, qcell, mbr, new_page);
    ids[q] = after;
  }

  // The leaf's tree node becomes internal with four fresh leaf nodes.
  for (int q = 0; q < 4; ++q) {
    Node child;
    child.leaf_id = ids[q];
    nodes_.push_back(child);
    nodes_[node_id].child[q] = static_cast<int32_t>(nodes_.size() - 1);
  }
  nodes_[node_id].leaf_id = kInvalidLeaf;
  nodes_[node_id].sx = sx;
  nodes_[node_id].sy = sy;
  nodes_[node_id].ord = Ordering::kAbcd;

  // Look-ahead repair (the "costly recompute" of §6.7): the new leaves'
  // pointers are rebuilt from the valid suffix, back to front. Pointers of
  // earlier leaves that referenced the split leaf now land on quadrant A,
  // which occupies the same list position with a smaller cell, so their
  // skip guarantees still hold (DESIGN.md §4.7).
  if (maintain_lookahead && has_lookahead_) {
    for (int q = 3; q >= 0; --q) ComputeLookaheadFor(ids[q]);
  }
}

bool ZIndex::Remove(double x, double y) {
  if (root_ == kInvalidNode) return false;
  const Node& node = nodes_[FindLeafNode(x, y)];
  // MBRs are not shrunk on removal: a too-large MBR only costs an extra
  // scan, never correctness.
  return store_.Remove(dir_.leaf(node.leaf_id).page, x, y);
}

size_t ZIndex::SizeBytes() const {
  return sizeof(*this) + nodes_.capacity() * sizeof(Node) + dir_.SizeBytes() +
         store_.SizeBytes();
}

}  // namespace wazi

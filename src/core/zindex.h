// The generalized Z-index of the paper (§3-§5): a quaternary space
// partitioning tree in which every internal node carries its own split
// point and child ordering ("abcd" or "acbd"), leaves are pages of at most
// L points linked in curve order (the LeafList), and — optionally — four
// look-ahead pointers per leaf implement the §5 skipping mechanism.
//
// The same class implements the Base Z-index (median splits, "abcd"
// everywhere, naive scanning) and WaZI (cost-optimized splits/orderings
// plus skipping); construction strategies live in builder.h.

#ifndef WAZI_CORE_ZINDEX_H_
#define WAZI_CORE_ZINDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>
#include <iosfwd>

#include "common/geometry.h"
#include "core/cost_model.h"
#include "index/spatial_index.h"
#include "storage/leaf_dir.h"
#include "storage/page_store.h"

namespace wazi {

class ZIndex {
 public:
  struct Node {
    double sx = 0.0;
    double sy = 0.0;
    Ordering ord = Ordering::kAbcd;
    // Children indexed by Quadrant (not curve order); kInvalidNode iff leaf.
    int32_t child[4] = {-1, -1, -1, -1};
    int32_t leaf_id = kInvalidLeaf;  // valid iff leaf

    bool is_leaf() const { return leaf_id != kInvalidLeaf; }
  };

  static constexpr int32_t kInvalidNode = -1;

  ZIndex() = default;

  // --- Construction surface (used by builders; see builder.h) ---
  void StartBuild(const Rect& domain, int leaf_capacity);
  // Adds an internal node; returns its id. Children are patched later.
  int32_t AddInternal(double sx, double sy, Ordering ord);
  // Adds a leaf node covering `cell` whose points are [begin, end) of the
  // final clustered array; returns node id. MBR computed from the points.
  int32_t AddLeaf(const Rect& cell, const Point* points, uint32_t begin,
                  uint32_t end);
  void SetChild(int32_t parent, Quadrant q, int32_t child);
  void SetRoot(int32_t node) { root_ = node; }
  // Adopts the clustered point array; `AddLeaf` calls must have covered
  // exactly [0, points.size()) in curve order.
  void FinishBuild(std::vector<Point> points);
  // Computes the §5 look-ahead pointers (enables skipping range queries).
  void BuildLookahead();

  // --- Queries ---
  // Algorithm 1: leaf (node id) containing the point.
  int32_t FindLeafNode(double x, double y) const;

  // Algorithm 2, naive variant: scan [low:high] leaves, checking each MBR.
  void RangeQueryNaive(const Rect& query, std::vector<Point>* out,
                       QueryStats* stats) const;
  // Algorithm 2 with §5 skipping via look-ahead pointers.
  void RangeQuerySkipping(const Rect& query, std::vector<Point>* out,
                          QueryStats* stats) const;

  // Projection phase only (Fig. 9): spans of pages that pass the MBR
  // check, using the requested execution mode.
  void Project(const Rect& query, bool use_skipping, Projection* proj,
               QueryStats* stats) const;

  bool PointQuery(double x, double y, QueryStats* stats) const;

  // --- Updates (§6.7) ---
  // Inserts p into its leaf; splits the leaf along data medians when the
  // page overflows. `maintain_lookahead` repairs the affected look-ahead
  // pointers (WaZI); pass false for the Base index.
  void Insert(const Point& p, bool maintain_lookahead);
  // Removes one point with these coordinates; false if absent.
  bool Remove(double x, double y);

  // --- Introspection ---
  size_t num_points() const { return store_.num_points(); }
  size_t num_leaves() const { return dir_.size(); }
  size_t num_nodes() const { return nodes_.size(); }
  const Rect& domain() const { return domain_; }
  const LeafDir& leaf_dir() const { return dir_; }
  const PageStore& page_store() const { return store_; }
  const Node& node(int32_t id) const { return nodes_[id]; }
  int32_t root() const { return root_; }
  bool has_lookahead() const { return has_lookahead_; }
  int leaf_capacity() const { return leaf_capacity_; }

  size_t SizeBytes() const;

 private:
  friend class ZIndexUpdater;
  friend bool SaveZIndex(const ZIndex& index, std::ostream& out);
  friend bool LoadZIndex(std::istream& in, ZIndex* index);

  // Shared walk for both range-query variants and projection.
  template <bool kUseSkipping, typename LeafFn>
  void WalkRange(const Rect& query, QueryStats* stats, LeafFn&& fn) const;

  void SplitLeaf(int32_t node_id, bool maintain_lookahead);
  // Recomputes `leaf`'s look-ahead pointers from the (valid) suffix.
  void ComputeLookaheadFor(int32_t leaf_id);

  std::vector<Node> nodes_;
  LeafDir dir_;
  PageStore store_;
  Rect domain_;
  int32_t root_ = kInvalidNode;
  int leaf_capacity_ = 256;
  bool has_lookahead_ = false;

  // Bulk-load scratch: leaf page offsets, filled by AddLeaf.
  std::vector<uint32_t> build_offsets_;
};

}  // namespace wazi

#endif  // WAZI_CORE_ZINDEX_H_

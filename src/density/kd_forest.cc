#include "density/kd_forest.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/rng.h"

namespace wazi {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Relationship of a node's box to the query box along all dims.
enum class Overlap { kNone, kPartial, kFull };

Overlap Classify(const DVec& lo, const DVec& hi, const DBox& box, int dim) {
  bool full = true;
  for (int d = 0; d < dim; ++d) {
    if (hi[d] < box.lo[d] || lo[d] > box.hi[d]) return Overlap::kNone;
    if (lo[d] < box.lo[d] || hi[d] > box.hi[d]) full = false;
  }
  return full ? Overlap::kFull : Overlap::kPartial;
}

// Fraction of the node's box volume covered by the query box, treating
// zero-extent dimensions as fully covered (they already passed the
// disjointness test).
double VolumeFraction(const DVec& lo, const DVec& hi, const DBox& box,
                      int dim) {
  double frac = 1.0;
  for (int d = 0; d < dim; ++d) {
    const double extent = hi[d] - lo[d];
    if (extent <= 0.0) continue;
    const double covered =
        std::min(hi[d], box.hi[d]) - std::max(lo[d], box.lo[d]);
    frac *= std::clamp(covered / extent, 0.0, 1.0);
  }
  return frac;
}

}  // namespace

DBox FullBox(int dim) {
  DBox box;
  for (int d = 0; d < kMaxDim; ++d) {
    box.lo[d] = (d < dim) ? -kInf : 0.0;
    box.hi[d] = (d < dim) ? kInf : 0.0;
  }
  return box;
}

void KdForest::Build(const std::vector<DVec>& rows,
                     const std::vector<double>& weights,
                     const KdForestOptions& opts) {
  opts_ = opts;
  rows_ = &rows;
  row_weights_ = weights.empty() ? nullptr : &weights;
  trees_.clear();
  total_weight_ = 0.0;
  if (row_weights_ != nullptr) {
    for (double w : weights) total_weight_ += w;
  } else {
    total_weight_ = static_cast<double>(rows.size());
  }
  if (rows.empty()) return;

  const size_t sample_n =
      opts.subsample == 0 ? rows.size() : std::min(opts.subsample, rows.size());
  Rng rng(opts.seed);
  trees_.resize(opts.num_trees);
  for (int t = 0; t < opts.num_trees; ++t) {
    Tree& tree = trees_[t];
    std::vector<uint32_t> idx;
    idx.reserve(sample_n);
    if (sample_n == rows.size()) {
      for (size_t i = 0; i < rows.size(); ++i) idx.push_back(i);
    } else {
      for (size_t i = 0; i < sample_n; ++i) {
        idx.push_back(static_cast<uint32_t>(rng.NextBelow(rows.size())));
      }
    }
    tree.sample_weight = 0.0;
    if (row_weights_ != nullptr) {
      for (uint32_t i : idx) tree.sample_weight += weights[i];
    } else {
      tree.sample_weight = static_cast<double>(idx.size());
    }
    tree.nodes.reserve(2 * idx.size() / std::max(1, opts.leaf_size) + 8);
    BuildNode(tree, idx, 0, idx.size(), 0, rng.NextU64());
  }
  rows_ = nullptr;
  row_weights_ = nullptr;
}

int32_t KdForest::BuildNode(Tree& tree, std::vector<uint32_t>& idx,
                            size_t begin, size_t end, int depth,
                            uint64_t rng_state) {
  const std::vector<DVec>& rows = *rows_;
  Node node;
  for (int d = 0; d < opts_.dim; ++d) {
    node.lo[d] = kInf;
    node.hi[d] = -kInf;
  }
  node.weight = 0.0;
  for (size_t i = begin; i < end; ++i) {
    const DVec& r = rows[idx[i]];
    for (int d = 0; d < opts_.dim; ++d) {
      node.lo[d] = std::min(node.lo[d], r[d]);
      node.hi[d] = std::max(node.hi[d], r[d]);
    }
    node.weight +=
        (row_weights_ != nullptr) ? (*row_weights_)[idx[i]] : 1.0;
  }

  const int32_t node_id = static_cast<int32_t>(tree.nodes.size());
  tree.nodes.push_back(node);
  const size_t count = end - begin;
  if (count <= static_cast<size_t>(opts_.leaf_size) || depth >= 48) {
    return node_id;
  }

  // Randomized split: random dimension (among those with extent), split at
  // the coordinate of a uniformly chosen sample row, nudged so both sides
  // are non-empty.
  Rng rng(rng_state);
  int split_dim = -1;
  for (int attempt = 0; attempt < 2 * opts_.dim; ++attempt) {
    const int d = static_cast<int>(rng.NextBelow(opts_.dim));
    if (tree.nodes[node_id].hi[d] > tree.nodes[node_id].lo[d]) {
      split_dim = d;
      break;
    }
  }
  if (split_dim < 0) return node_id;  // all rows identical: stay a leaf

  const double pick =
      rows[idx[begin + rng.NextBelow(count)]][split_dim];
  auto mid_it = std::partition(
      idx.begin() + begin, idx.begin() + end,
      [&](uint32_t i) { return rows[i][split_dim] < pick; });
  size_t mid = static_cast<size_t>(mid_it - idx.begin());
  if (mid == begin || mid == end) {
    // Degenerate pick (e.g. the minimum): fall back to a median value and
    // retry; if even that cannot bipartition, put the median-equal rows on
    // the left.
    const size_t k = begin + count / 2;
    std::nth_element(idx.begin() + begin, idx.begin() + k, idx.begin() + end,
                     [&](uint32_t a, uint32_t b) {
                       return rows[a][split_dim] < rows[b][split_dim];
                     });
    const double v = rows[idx[k]][split_dim];
    mid_it = std::partition(idx.begin() + begin, idx.begin() + end,
                            [&](uint32_t i) { return rows[i][split_dim] < v; });
    mid = static_cast<size_t>(mid_it - idx.begin());
    if (mid == begin) {
      mid_it =
          std::partition(idx.begin() + begin, idx.begin() + end,
                         [&](uint32_t i) { return rows[i][split_dim] <= v; });
      mid = static_cast<size_t>(mid_it - idx.begin());
    }
    if (mid == begin || mid == end) return node_id;  // cannot separate
  }

  tree.nodes[node_id].split_dim = split_dim;
  tree.nodes[node_id].split_val = rows[idx[mid]][split_dim];
  const int32_t left =
      BuildNode(tree, idx, begin, mid, depth + 1, rng.NextU64());
  tree.nodes[node_id].left = left;
  const int32_t right =
      BuildNode(tree, idx, mid, end, depth + 1, rng.NextU64());
  tree.nodes[node_id].right = right;
  return node_id;
}

double KdForest::Estimate(const DBox& box) const {
  if (trees_.empty()) return 0.0;
  double sum = 0.0;
  for (const Tree& tree : trees_) {
    if (tree.nodes.empty() || tree.sample_weight <= 0.0) continue;
    const double est = EstimateNode(tree, 0, box);
    sum += est / tree.sample_weight;
  }
  return sum / static_cast<double>(trees_.size()) * total_weight_;
}

double KdForest::EstimateNode(const Tree& tree, int32_t node_id,
                              const DBox& box) const {
  const Node& node = tree.nodes[node_id];
  switch (Classify(node.lo, node.hi, box, opts_.dim)) {
    case Overlap::kNone: return 0.0;
    case Overlap::kFull: return node.weight;
    case Overlap::kPartial: break;
  }
  if (node.split_dim < 0) {
    return node.weight * VolumeFraction(node.lo, node.hi, box, opts_.dim);
  }
  return EstimateNode(tree, node.left, box) +
         EstimateNode(tree, node.right, box);
}

size_t KdForest::SizeBytes() const {
  size_t bytes = sizeof(*this);
  for (const Tree& tree : trees_) {
    bytes += tree.nodes.capacity() * sizeof(Node);
  }
  return bytes;
}

}  // namespace wazi

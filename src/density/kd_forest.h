// Random Forest Density Estimation (RFDE) in the style of Wen & Hang
// (ICML 2022), as used by the paper (§4.3) to approximate the data
// distribution D and the range-query distribution Q during WaZI's greedy
// index construction.
//
// The estimator is a forest of randomized k-d trees. Each tree is built on
// a bootstrap subsample; internal nodes split a randomly chosen dimension
// at a randomized position, and every node stores the (weighted)
// cardinality of its subtree. A box-count query walks each tree: nodes
// fully inside the box contribute their cardinality, disjoint nodes
// contribute zero, and partially overlapping leaves contribute their
// cardinality scaled by the overlapped volume fraction. Tree estimates are
// averaged and rescaled to the full population.
//
// The same class covers:
//   * 2-D data counts       n_X  (points per candidate quadrant),
//   * 4-D query-corner counts q_XY (queries per rectangle class), and
//   * CUR's weighted counts (per-point weights = query coverage).

#ifndef WAZI_DENSITY_KD_FOREST_H_
#define WAZI_DENSITY_KD_FOREST_H_

#include <cstddef>
#include <array>
#include <cstdint>
#include <vector>

namespace wazi {

// Maximum dimensionality supported (2 for data, 4 for query corners).
inline constexpr int kMaxDim = 4;

using DVec = std::array<double, kMaxDim>;

// Axis-aligned box in up-to-4-D space; bounds are closed.
struct DBox {
  DVec lo;
  DVec hi;
};

struct KdForestOptions {
  int dim = 2;
  int num_trees = 8;
  // Per-tree bootstrap subsample size; 0 means "use all rows".
  size_t subsample = 0;
  // Leaves hold at most this many rows (their exact box is recorded so
  // partial overlap can be interpolated by volume).
  int leaf_size = 16;
  uint64_t seed = 1234;
};

// Builds once, then serves Estimate() queries. Thread-compatible: const
// after Build.
class KdForest {
 public:
  KdForest() = default;

  // Builds the forest on `rows` (only the first `opts.dim` coordinates are
  // used). `weights` may be empty (all rows weigh 1.0) or have one entry
  // per row.
  void Build(const std::vector<DVec>& rows, const std::vector<double>& weights,
             const KdForestOptions& opts);

  // Estimated total weight of rows inside `box` (closed bounds).
  double Estimate(const DBox& box) const;

  // Total weight of the population the forest was built on.
  double total_weight() const { return total_weight_; }

  bool built() const { return !trees_.empty(); }

  size_t SizeBytes() const;

 private:
  struct Node {
    // Bounding box of the rows under this node.
    DVec lo;
    DVec hi;
    double weight = 0.0;
    int split_dim = -1;  // -1 for leaves.
    double split_val = 0.0;
    int32_t left = -1;
    int32_t right = -1;
  };

  struct Tree {
    std::vector<Node> nodes;
    double sample_weight = 0.0;  // total weight of this tree's subsample
  };

  int32_t BuildNode(Tree& tree, std::vector<uint32_t>& idx, size_t begin,
                    size_t end, int depth, uint64_t rng_state);

  double EstimateNode(const Tree& tree, int32_t node_id,
                      const DBox& box) const;

  const std::vector<DVec>* rows_ = nullptr;  // only valid during Build
  const std::vector<double>* row_weights_ = nullptr;
  KdForestOptions opts_;
  std::vector<Tree> trees_;
  double total_weight_ = 0.0;
};

// Convenience: unbounded box for `dim` dimensions.
DBox FullBox(int dim);

}  // namespace wazi

#endif  // WAZI_DENSITY_KD_FOREST_H_

#include "index/brute_force.h"

namespace wazi {

void BruteForceIndex::Build(const Dataset& data, const Workload&,
                            const BuildOptions&) {
  points_ = data.points;
}

void BruteForceIndex::DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const {
  for (const Point& p : points_) {
    ++stats->points_scanned;
    if (query.Contains(p)) {
      out->push_back(p);
      ++stats->results;
    }
  }
  ++stats->pages_scanned;
}

void BruteForceIndex::DoProject(const Rect&, Projection* proj,
                                QueryStats*) const {
  proj->push_back(Span{points_.data(), points_.data() + points_.size()});
}

bool BruteForceIndex::DoPointQuery(const Point& p, QueryStats* /*stats*/) const {
  for (const Point& q : points_) {
    if (q.x == p.x && q.y == p.y) return true;
  }
  return false;
}

bool BruteForceIndex::Insert(const Point& p) {
  points_.push_back(p);
  return true;
}

bool BruteForceIndex::Remove(const Point& p) {
  for (size_t i = 0; i < points_.size(); ++i) {
    if (points_[i].x == p.x && points_[i].y == p.y) {
      points_[i] = points_.back();
      points_.pop_back();
      return true;
    }
  }
  return false;
}

size_t BruteForceIndex::SizeBytes() const {
  return sizeof(*this) + points_.capacity() * sizeof(Point);
}

}  // namespace wazi

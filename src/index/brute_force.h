// Linear-scan reference index: the ground truth every other index is
// tested against.

#ifndef WAZI_INDEX_BRUTE_FORCE_H_
#define WAZI_INDEX_BRUTE_FORCE_H_

#include <string>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

class BruteForceIndex : public SpatialIndex {
 public:
  std::string name() const override { return "brute"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;

  void RangeQuery(const Rect& query, std::vector<Point>* out) const override;
  void Project(const Rect& query, Projection* proj) const override;
  bool PointQuery(const Point& p) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  size_t SizeBytes() const override;

 private:
  std::vector<Point> points_;
};

}  // namespace wazi

#endif  // WAZI_INDEX_BRUTE_FORCE_H_

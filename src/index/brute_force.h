// Linear-scan reference index: the ground truth every other index is
// tested against.

#ifndef WAZI_INDEX_BRUTE_FORCE_H_
#define WAZI_INDEX_BRUTE_FORCE_H_

#include <string>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

class BruteForceIndex : public SpatialIndex {
 public:
  std::string name() const override { return "brute"; }

  void Build(const Dataset& data, const Workload& workload,
             const BuildOptions& opts) override;

  void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats) const override;
  void DoProject(const Rect& query, Projection* proj,
               QueryStats* stats) const override;
  bool DoPointQuery(const Point& p, QueryStats* stats) const override;
  bool Insert(const Point& p) override;
  bool Remove(const Point& p) override;
  bool SupportsUpdates() const override { return true; }
  size_t SizeBytes() const override;

 private:
  std::vector<Point> points_;
};

}  // namespace wazi

#endif  // WAZI_INDEX_BRUTE_FORCE_H_

#include "index/knn.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wazi {

KnnResult KnnByRangeExpansion(const SpatialIndex& index, const Point& center,
                              size_t k, const Rect& domain,
                              QueryStats* stats) {
  KnnResult result;
  if (k == 0 || domain.empty()) return result;

  // Initial window: a square whose area would hold ~4k points if the data
  // were uniform over the domain; unknown density makes this a heuristic,
  // the expansion loop fixes any underestimate.
  const double domain_span =
      std::max(domain.max_x - domain.min_x, domain.max_y - domain.min_y);
  double radius = domain_span / 64.0;
  if (radius <= 0.0) {
    // Zero-span domain — a single representable point (one-point dataset,
    // or a shard cell collapsed by duplicate coordinates). `radius *= 2.0`
    // could never grow a zero radius; start from the distance to the point
    // so the first window already covers the domain and the loop
    // terminates.
    radius = std::max({std::abs(center.x - domain.min_x),
                       std::abs(center.y - domain.min_y),
                       std::numeric_limits<double>::min()});
  }

  std::vector<Point> window;
  while (true) {
    const Rect q = Rect::Of(center.x - radius, center.y - radius,
                            center.x + radius, center.y + radius);
    window.clear();
    index.RangeQuery(q, &window, stats);
    ++result.range_queries_issued;

    const bool covers_domain = q.Contains(domain);
    if (window.size() >= k) {
      std::nth_element(window.begin(), window.begin() + (k - 1), window.end(),
                       [&](const Point& a, const Point& b) {
                         return DistanceSquared(a, center) <
                                DistanceSquared(b, center);
                       });
      const double kth = std::sqrt(DistanceSquared(window[k - 1], center));
      // Correct iff the k-th neighbour's circle fits inside the window.
      if (kth <= radius || covers_domain) {
        window.resize(k);
        break;
      }
      // Grow just enough (plus slack) to certify.
      radius = std::max(kth * 1.001, radius * 1.5);
      continue;
    }
    if (covers_domain) break;  // fewer than k points exist
    radius *= 2.0;
  }

  std::sort(window.begin(), window.end(), [&](const Point& a, const Point& b) {
    return DistanceSquared(a, center) < DistanceSquared(b, center);
  });
  result.neighbors = std::move(window);
  return result;
}

}  // namespace wazi

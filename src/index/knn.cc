#include "index/knn.h"

#include <algorithm>
#include <cmath>

namespace wazi {
namespace {

double Dist2(const Point& a, const Point& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

}  // namespace

KnnResult KnnByRangeExpansion(const SpatialIndex& index, const Point& center,
                              size_t k, const Rect& domain,
                              QueryStats* stats) {
  KnnResult result;
  if (k == 0 || domain.empty()) return result;

  // Initial window: a square whose area would hold ~4k points if the data
  // were uniform over the domain; unknown density makes this a heuristic,
  // the expansion loop fixes any underestimate.
  const double domain_span =
      std::max(domain.max_x - domain.min_x, domain.max_y - domain.min_y);
  double radius = domain_span / 64.0;

  std::vector<Point> window;
  while (true) {
    const Rect q = Rect::Of(center.x - radius, center.y - radius,
                            center.x + radius, center.y + radius);
    window.clear();
    index.RangeQuery(q, &window, stats);
    ++result.range_queries_issued;

    const bool covers_domain = q.Contains(domain);
    if (window.size() >= k) {
      std::nth_element(window.begin(), window.begin() + (k - 1), window.end(),
                       [&](const Point& a, const Point& b) {
                         return Dist2(a, center) < Dist2(b, center);
                       });
      const double kth = std::sqrt(Dist2(window[k - 1], center));
      // Correct iff the k-th neighbour's circle fits inside the window.
      if (kth <= radius || covers_domain) {
        window.resize(k);
        break;
      }
      // Grow just enough (plus slack) to certify.
      radius = std::max(kth * 1.001, radius * 1.5);
      continue;
    }
    if (covers_domain) break;  // fewer than k points exist
    radius *= 2.0;
  }

  std::sort(window.begin(), window.end(), [&](const Point& a, const Point& b) {
    return Dist2(a, center) < Dist2(b, center);
  });
  result.neighbors = std::move(window);
  return result;
}

}  // namespace wazi

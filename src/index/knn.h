// k-nearest-neighbour queries on top of any SpatialIndex, by range-query
// decomposition (the paper's §6.3 remark: indexes not specialised for kNN
// process them as sets of range queries, so kNN performance tracks range
// performance).
//
// Strategy: query an expanding square window centred on the target until
// it contains at least k points whose k-th smallest distance fits inside
// the window (so no closer point can be outside), then report the k
// nearest by Euclidean distance.

#ifndef WAZI_INDEX_KNN_H_
#define WAZI_INDEX_KNN_H_

#include <cstddef>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

struct KnnResult {
  std::vector<Point> neighbors;  // sorted by increasing distance
  int range_queries_issued = 0;  // how many windows were needed
};

// `domain` bounds the expansion (pass the dataset bounds). If the dataset
// holds fewer than k points, all of them are returned. `stats` receives the
// work counters of the underlying range queries (nullptr routes them to the
// index's built-in accumulator; concurrent callers must pass their own).
KnnResult KnnByRangeExpansion(const SpatialIndex& index, const Point& center,
                              size_t k, const Rect& domain,
                              QueryStats* stats = nullptr);

}  // namespace wazi

#endif  // WAZI_INDEX_KNN_H_

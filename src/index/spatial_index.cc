#include "index/spatial_index.h"

namespace wazi {

void SpatialIndex::DoScanProjection(const Projection& proj, const Rect& query,
                                    std::vector<Point>* out,
                                    QueryStats* stats) const {
  for (const Span& span : proj) {
    ++stats->pages_scanned;
    for (const Point* p = span.begin; p != span.end; ++p) {
      ++stats->points_scanned;
      if (query.Contains(*p)) {
        out->push_back(*p);
        ++stats->results;
      }
    }
  }
}

bool SpatialIndex::Insert(const Point&) { return false; }
bool SpatialIndex::Remove(const Point&) { return false; }

}  // namespace wazi

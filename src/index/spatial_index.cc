#include "index/spatial_index.h"

namespace wazi {

void SpatialIndex::ScanProjection(const Projection& proj, const Rect& query,
                                  std::vector<Point>* out) const {
  for (const Span& span : proj) {
    ++stats_.pages_scanned;
    for (const Point* p = span.begin; p != span.end; ++p) {
      ++stats_.points_scanned;
      if (query.Contains(*p)) {
        out->push_back(*p);
        ++stats_.results;
      }
    }
  }
}

bool SpatialIndex::Insert(const Point&) { return false; }
bool SpatialIndex::Remove(const Point&) { return false; }

}  // namespace wazi

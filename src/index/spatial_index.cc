#include "index/spatial_index.h"

#include "common/simd.h"

namespace wazi {

void SpatialIndex::DoScanProjection(const Projection& proj, const Rect& query,
                                    std::vector<Point>* out,
                                    QueryStats* stats) const {
  // Projection scanning is the paper's deferred-materialization path: the
  // spans were selected by the index walk, so all that remains is the
  // point-in-rect filter — exactly the vectorized leaf kernel.
  for (const Span& span : proj) {
    ++stats->pages_scanned;
    const size_t n = static_cast<size_t>(span.end - span.begin);
    stats->points_scanned += static_cast<int64_t>(n);
    simd::KernelCounters kc;
    stats->results += static_cast<int64_t>(
        simd::FilterPointsInRect(span.begin, n, query, out, &kc));
    stats->simd_batches += kc.simd_batches;
    stats->scalar_tail += kc.scalar_tail;
  }
}

bool SpatialIndex::Insert(const Point&) { return false; }
bool SpatialIndex::Remove(const Point&) { return false; }

}  // namespace wazi

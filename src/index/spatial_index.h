// Common interface implemented by WaZI, the Base Z-index, and every
// baseline, so tests, benches and examples can treat all indexes
// uniformly.
//
// Query execution is split into two phases mirroring the paper's Fig. 9
// analysis:
//  * Project(): traverse the search structure and emit the point spans
//    (pages / slices / runs) that must be examined;
//  * ScanProjection(): filter those spans against the query rectangle.
// RangeQuery() is the fused path used for end-to-end latency.

#ifndef WAZI_INDEX_SPATIAL_INDEX_H_
#define WAZI_INDEX_SPATIAL_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "storage/page_store.h"
#include "workload/dataset.h"

namespace wazi {

// Build-time knobs; one struct for all indexes so harness plumbing stays
// trivial. Index-specific fields are ignored by the others.
struct BuildOptions {
  // Leaf node / page capacity L (paper default: 256).
  int leaf_capacity = 256;
  uint64_t seed = 42;

  // --- WaZI (greedy builder) ---
  // Number of candidate split points sampled per node (kappa).
  int kappa = 32;
  // Skip-cost factor alpha in Eq. 5; the paper uses 1e-5 when look-ahead
  // skipping is enabled and a larger constant without it (alpha_noskip is
  // used by the WaZI-SK ablation variant).
  double alpha = 1e-5;
  double alpha_noskip = 0.5;
  // Use RFDE estimators for counts (the "learned" path). When false, the
  // builder computes exact counts from the data and workload (slow;
  // used by tests and ablations).
  bool use_estimators = true;
  // Snap half the greedy candidates to workload query-corner coordinates
  // (DESIGN.md §4.4); false reverts to the paper's uniform-only sampling.
  bool corner_candidates = true;
  // RFDE forest shape.
  int rfde_trees = 8;
  size_t rfde_subsample = 64 * 1024;
  int rfde_leaf_size = 16;

  // --- Flood ---
  // Candidate column counts are multiples of sqrt(n/L); layouts are
  // evaluated on this many sampled queries.
  size_t flood_sample_queries = 200;

  // --- QUASII ---
  // Number of times the training workload is replayed to converge cracks.
  int quasii_passes = 2;

  // --- Rank-space SFC baselines ---
  int rank_bits = 16;
  // PGM epsilon for Zpgm.
  int pgm_epsilon = 32;
};

// Per-query work counters (Fig. 13's ablation metrics). Accumulated across
// queries; callers reset between measurement blocks.
struct QueryStats {
  int64_t bbs_checked = 0;    // leaf bounding boxes compared to the query
  int64_t pages_scanned = 0;  // pages whose points were filtered
  int64_t points_scanned = 0; // points compared against the query
  int64_t results = 0;        // points reported
  // Result-cache outcomes (src/serve/result_cache.h); always zero on the
  // research path, where no cache sits in front of the index.
  int64_t cache_hits = 0;     // queries answered from a validated entry
  int64_t cache_misses = 0;   // cacheable queries that had to execute
  // Leaf-kernel work shape (common/simd.h): full vector batches vs points
  // filtered by the scalar remainder. Distinguishes a dispatch regression
  // (simd_batches collapses, scalar_tail absorbs the scan) from a data
  // regression (both scale up with points_scanned).
  int64_t simd_batches = 0;
  int64_t scalar_tail = 0;
  int64_t excess_points() const { return points_scanned - results; }

  void Reset() { *this = QueryStats{}; }

  // Folds another counter block in (per-thread aggregation in src/serve/).
  void Add(const QueryStats& o) {
    bbs_checked += o.bbs_checked;
    pages_scanned += o.pages_scanned;
    points_scanned += o.points_scanned;
    results += o.results;
    cache_hits += o.cache_hits;
    cache_misses += o.cache_misses;
    simd_batches += o.simd_batches;
    scalar_tail += o.scalar_tail;
  }
};

// A projection: the spans of stored points that a query must filter.
using Projection = std::vector<Span>;

class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  virtual std::string name() const = 0;

  // Builds the index over `data`, optionally using `workload` (query-aware
  // indexes). Implementations must be rebuildable (Build twice is fine).
  virtual void Build(const Dataset& data, const Workload& workload,
                     const BuildOptions& opts) = 0;

  // Query entry points. Each call's work counters are accumulated into
  // `*stats`; passing nullptr routes them to the built-in accumulator
  // (`stats()`), which is a single-threaded convenience only. Concurrent
  // readers MUST pass their own QueryStats — with an explicit out-param the
  // const query path touches no shared mutable state, so any number of
  // threads may query one index concurrently (src/serve/ relies on this).

  // Appends all points inside `query` to `out`.
  void RangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats = nullptr) const {
    DoRangeQuery(query, out, ResolveStats(stats));
  }

  // Phase-split execution (Fig. 9).
  void Project(const Rect& query, Projection* proj,
               QueryStats* stats = nullptr) const {
    DoProject(query, proj, ResolveStats(stats));
  }
  void ScanProjection(const Projection& proj, const Rect& query,
                      std::vector<Point>* out,
                      QueryStats* stats = nullptr) const {
    DoScanProjection(proj, query, out, ResolveStats(stats));
  }

  // True iff a point with identical coordinates is stored.
  bool PointQuery(const Point& p, QueryStats* stats = nullptr) const {
    return DoPointQuery(p, ResolveStats(stats));
  }

  // Returns false when the index does not support updates. Updates are
  // NOT thread-safe with respect to queries; src/serve/ serializes them
  // through snapshot swaps.
  virtual bool Insert(const Point& p);
  virtual bool Remove(const Point& p);
  // True iff Insert/Remove mutate the index. Lets callers (the serve
  // writer) distinguish "unsupported" from "remove found nothing" and fall
  // back to a full rebuild for static indexes.
  virtual bool SupportsUpdates() const { return false; }

  virtual size_t SizeBytes() const = 0;

  // The built-in accumulator fed by stats-less calls above.
  QueryStats& stats() const { return stats_; }

 protected:
  // Per-index implementations. `stats` is never null; implementations must
  // route every counter update through it and must not touch `stats_`, so
  // that readers supplying private counters are data-race free.
  //
  // Default DoScanProjection filters spans; DoProject must be overridden by
  // every index (the default would have to route through RangeQuery and
  // yield no spans, which would break Fig. 9 — hence pure virtual).
  virtual void DoRangeQuery(const Rect& query, std::vector<Point>* out,
                            QueryStats* stats) const = 0;
  virtual void DoProject(const Rect& query, Projection* proj,
                         QueryStats* stats) const = 0;
  virtual void DoScanProjection(const Projection& proj, const Rect& query,
                                std::vector<Point>* out,
                                QueryStats* stats) const;
  virtual bool DoPointQuery(const Point& p, QueryStats* stats) const = 0;

  QueryStats* ResolveStats(QueryStats* stats) const {
    return stats != nullptr ? stats : &stats_;
  }

  mutable QueryStats stats_;
};

// Factory used by benches/examples; implemented in baselines/registry.cc.
std::unique_ptr<SpatialIndex> MakeIndex(const std::string& name);
// All registered index names (canonical order used in the paper's plots).
std::vector<std::string> AllIndexNames();
// The six-index set used in the detailed experiments (Fig. 6-12).
std::vector<std::string> MainIndexNames();

}  // namespace wazi

#endif  // WAZI_INDEX_SPATIAL_INDEX_H_

#include "index/spatial_join.h"

namespace wazi {

std::vector<JoinPair> BoxJoin(const SpatialIndex& index,
                              const std::vector<Point>& probes, double eps) {
  std::vector<JoinPair> out;
  std::vector<Point> hits;
  for (const Point& p : probes) {
    hits.clear();
    index.RangeQuery(Rect::Of(p.x - eps, p.y - eps, p.x + eps, p.y + eps),
                     &hits);
    for (const Point& m : hits) out.push_back(JoinPair{p.id, m});
  }
  return out;
}

std::vector<JoinPair> DistanceJoin(const SpatialIndex& index,
                                   const std::vector<Point>& probes,
                                   double eps) {
  std::vector<JoinPair> out;
  std::vector<Point> hits;
  const double eps2 = eps * eps;
  for (const Point& p : probes) {
    hits.clear();
    index.RangeQuery(Rect::Of(p.x - eps, p.y - eps, p.x + eps, p.y + eps),
                     &hits);
    for (const Point& m : hits) {
      const double dx = m.x - p.x;
      const double dy = m.y - p.y;
      if (dx * dx + dy * dy <= eps2) out.push_back(JoinPair{p.id, m});
    }
  }
  return out;
}

}  // namespace wazi

// Spatial joins on top of any SpatialIndex, by range-query decomposition
// (the paper's §6.3 remark: spatial joins are processed as sets of range
// queries, so join performance tracks range performance).

#ifndef WAZI_INDEX_SPATIAL_JOIN_H_
#define WAZI_INDEX_SPATIAL_JOIN_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "index/spatial_index.h"

namespace wazi {

// Index-nested-loop box join: for every probe point, all indexed points
// within the axis-aligned box of half-width `eps` around it. Emits
// (probe_id, match) pairs in probe order.
struct JoinPair {
  int64_t probe_id;
  Point match;
};

std::vector<JoinPair> BoxJoin(const SpatialIndex& index,
                              const std::vector<Point>& probes, double eps);

// Distance join (Euclidean): like BoxJoin but filtered to the disc of
// radius `eps` around each probe.
std::vector<JoinPair> DistanceJoin(const SpatialIndex& index,
                                   const std::vector<Point>& probes,
                                   double eps);

}  // namespace wazi

#endif  // WAZI_INDEX_SPATIAL_JOIN_H_

#include "learned/pgm_index.h"

#include <algorithm>
#include <cmath>

namespace wazi {

void PgmIndex::Build(const std::vector<uint64_t>& keys, int epsilon) {
  epsilon_ = std::max(1, epsilon);
  n_ = keys.size();
  unique_keys_.clear();
  first_pos_.clear();
  levels_.clear();
  for (size_t i = 0; i < keys.size(); ++i) {
    if (i == 0 || keys[i] != keys[i - 1]) {
      unique_keys_.push_back(keys[i]);
      first_pos_.push_back(i);
    }
  }
  if (unique_keys_.empty()) return;

  // Leaf level over unique keys -> unique positions.
  std::vector<size_t> positions(unique_keys_.size());
  for (size_t i = 0; i < positions.size(); ++i) positions[i] = i;
  levels_.push_back(BuildLevel(unique_keys_, positions, epsilon_));

  // Upper levels over segment first-keys until small enough for a binary
  // search at the top.
  while (levels_.back().size() > 64) {
    const std::vector<Segment>& below = levels_.back();
    std::vector<uint64_t> seg_keys(below.size());
    std::vector<size_t> seg_pos(below.size());
    for (size_t i = 0; i < below.size(); ++i) {
      seg_keys[i] = below[i].key;
      seg_pos[i] = i;
    }
    levels_.push_back(BuildLevel(seg_keys, seg_pos, epsilon_));
  }
}

std::vector<PgmIndex::Segment> PgmIndex::BuildLevel(
    const std::vector<uint64_t>& keys, const std::vector<size_t>& positions,
    int epsilon) {
  // Streaming shrinking-cone PLA: keep the feasible slope interval
  // [slope_lo, slope_hi] for the current segment; start a new segment when
  // it empties. Guarantees |predicted - actual| <= epsilon.
  std::vector<Segment> segs;
  const double eps = static_cast<double>(epsilon);
  size_t start = 0;
  double slope_lo = 0.0, slope_hi = 0.0;
  auto flush = [&](size_t end_idx) {
    Segment s;
    s.key = keys[start];
    s.intercept = static_cast<double>(positions[start]);
    if (end_idx - start <= 1) {
      s.slope = 0.0;
    } else {
      s.slope = 0.5 * (slope_lo + slope_hi);
    }
    segs.push_back(s);
  };
  for (size_t i = 0; i < keys.size(); ++i) {
    if (segs.empty() && i == 0) {
      start = 0;
      continue;
    }
    if (i == start) continue;
    const double dx =
        static_cast<double>(keys[i] - keys[start]);  // > 0: keys unique
    const double dy = static_cast<double>(positions[i]) -
                      static_cast<double>(positions[start]);
    const double lo = (dy - eps) / dx;
    const double hi = (dy + eps) / dx;
    if (i == start + 1) {
      slope_lo = lo;
      slope_hi = hi;
      continue;
    }
    const double new_lo = std::max(slope_lo, lo);
    const double new_hi = std::min(slope_hi, hi);
    if (new_lo <= new_hi) {
      slope_lo = new_lo;
      slope_hi = new_hi;
    } else {
      flush(i);
      start = i;
    }
  }
  flush(keys.size());
  return segs;
}

size_t PgmIndex::Predict(const Segment& seg, uint64_t key, size_t max_pos) {
  const double delta = static_cast<double>(key - seg.key);
  const double pred = seg.intercept + seg.slope * delta;
  if (pred <= 0.0) return 0;
  const size_t p = static_cast<size_t>(pred);
  return std::min(p, max_pos);
}

PgmIndex::Approx PgmIndex::Search(uint64_t key) const {
  if (unique_keys_.empty() || levels_.empty()) return Approx{0, 0, 0};
  const size_t eps = static_cast<size_t>(epsilon_);

  // Top level: plain binary search for the last segment with key <= `key`.
  const std::vector<Segment>& top = levels_.back();
  size_t seg_idx;
  {
    auto it = std::upper_bound(
        top.begin(), top.end(), key,
        [](uint64_t k, const Segment& s) { return k < s.key; });
    seg_idx = (it == top.begin()) ? 0 : static_cast<size_t>(it - top.begin() - 1);
  }

  // Walk down: each level predicts an index into the level below (or into
  // unique key positions at the leaf level), searched within +-epsilon.
  for (size_t lvl = levels_.size(); lvl-- > 0;) {
    const Segment& seg = levels_[lvl][seg_idx];
    const bool leaf = (lvl == 0);
    const size_t below_n =
        leaf ? unique_keys_.size() : levels_[lvl - 1].size();
    const size_t pred = Predict(seg, std::max(key, seg.key), below_n - 1);
    const size_t lo = pred > eps ? pred - eps : 0;
    const size_t hi = std::min(below_n, pred + eps + 2);
    if (leaf) {
      // Map the unique-key window back to original-array positions.
      const size_t pos = first_pos_[std::min(pred, first_pos_.size() - 1)];
      const size_t olo = first_pos_[lo];
      const size_t ohi = hi >= first_pos_.size() ? n_ : first_pos_[hi];
      return Approx{pos, olo, ohi};
    }
    // Find the last segment in the window whose key <= `key`.
    const std::vector<Segment>& below = levels_[lvl - 1];
    auto first = below.begin() + lo;
    auto last = below.begin() + hi;
    auto it = std::upper_bound(
        first, last, key,
        [](uint64_t k, const Segment& s) { return k < s.key; });
    if (it == below.begin()) {
      seg_idx = 0;
    } else {
      seg_idx = static_cast<size_t>(it - below.begin() - 1);
    }
  }
  return Approx{0, 0, n_};  // unreachable
}

size_t PgmIndex::LowerBound(uint64_t key) const {
  if (unique_keys_.empty()) return 0;
  const Approx a = Search(key);
  // Binary search over unique keys within the window [a.lo, a.hi) mapped
  // back to unique indices.
  const size_t ulo = static_cast<size_t>(
      std::lower_bound(first_pos_.begin(), first_pos_.end(), a.lo) -
      first_pos_.begin());
  size_t uhi = static_cast<size_t>(
      std::lower_bound(first_pos_.begin(), first_pos_.end(), a.hi) -
      first_pos_.begin());
  uhi = std::min(uhi + 1, unique_keys_.size());
  auto it = std::lower_bound(unique_keys_.begin() + ulo,
                             unique_keys_.begin() + uhi, key);
  size_t u = static_cast<size_t>(it - unique_keys_.begin());
  // The epsilon guarantee covers keys present in the array; for in-between
  // keys the window can (rarely) miss by a segment boundary. Verify the
  // global lower-bound property and fall back to a full search if needed.
  const bool ok = (u == 0 || unique_keys_[u - 1] < key) &&
                  (u == unique_keys_.size() || unique_keys_[u] >= key);
  if (!ok) {
    u = static_cast<size_t>(
        std::lower_bound(unique_keys_.begin(), unique_keys_.end(), key) -
        unique_keys_.begin());
  }
  if (u >= unique_keys_.size()) return n_;
  return first_pos_[u];
}

size_t PgmIndex::SizeBytes() const {
  size_t bytes = sizeof(*this);
  bytes += unique_keys_.capacity() * sizeof(uint64_t);
  bytes += first_pos_.capacity() * sizeof(size_t);
  for (const auto& lvl : levels_) bytes += lvl.capacity() * sizeof(Segment);
  return bytes;
}

}  // namespace wazi

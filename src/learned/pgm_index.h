// PGM-style learned index over a sorted array of 64-bit keys (Ferragina &
// Vinciguerra, 2020). Piecewise-linear segments with a hard error bound
// epsilon are built with the streaming shrinking-cone method and stacked
// recursively until the top level is small. Used by the Zpgm baseline to
// locate Z-order codes.
//
// Duplicates are supported: the structure indexes unique keys and maps
// predictions back to positions in the original (possibly duplicated)
// array.

#ifndef WAZI_LEARNED_PGM_INDEX_H_
#define WAZI_LEARNED_PGM_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi {

class PgmIndex {
 public:
  struct Approx {
    size_t pos;  // predicted position in the original array
    size_t lo;   // inclusive lower bound of the search window
    size_t hi;   // exclusive upper bound of the search window
  };

  PgmIndex() = default;

  // `keys` must be sorted ascending (duplicates allowed).
  void Build(const std::vector<uint64_t>& keys, int epsilon);

  // Error-bounded window that contains the lower-bound position of `key`.
  Approx Search(uint64_t key) const;

  // Exact index of the first element >= key (like std::lower_bound), using
  // Search() plus a bounded binary search.
  size_t LowerBound(uint64_t key) const;

  size_t size() const { return n_; }
  int epsilon() const { return epsilon_; }
  size_t NumSegments() const {
    return levels_.empty() ? 0 : levels_[0].size();
  }
  size_t SizeBytes() const;

 private:
  struct Segment {
    uint64_t key;      // first key covered
    double slope;      // positions per key unit
    double intercept;  // predicted position at `key`
  };

  // Builds one epsilon-bounded piecewise-linear level over (key, pos).
  static std::vector<Segment> BuildLevel(const std::vector<uint64_t>& keys,
                                         const std::vector<size_t>& positions,
                                         int epsilon);

  // Position predicted by `seg` for `key`, clamped to [0, max_pos].
  static size_t Predict(const Segment& seg, uint64_t key, size_t max_pos);

  std::vector<uint64_t> unique_keys_;
  std::vector<size_t> first_pos_;  // first_pos_[i]: first index of
                                   // unique_keys_[i] in the original array
  std::vector<std::vector<Segment>> levels_;  // levels_[0] = leaf level
  size_t n_ = 0;
  int epsilon_ = 32;
};

}  // namespace wazi

#endif  // WAZI_LEARNED_PGM_INDEX_H_

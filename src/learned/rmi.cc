#include "learned/rmi.h"

#include <algorithm>
#include <cmath>

namespace wazi {
namespace {

double AsDouble(uint64_t k) { return static_cast<double>(k); }

}  // namespace

Rmi::Linear Rmi::FitLinear(const std::vector<uint64_t>& keys, size_t begin,
                           size_t end) {
  // Least-squares fit of position on key over [begin, end).
  Linear m;
  const size_t n = end - begin;
  if (n == 0) return m;
  if (n == 1) {
    m.intercept = static_cast<double>(begin);
    return m;
  }
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  const double x0 = AsDouble(keys[begin]);  // centre for stability
  for (size_t i = begin; i < end; ++i) {
    const double x = AsDouble(keys[i]) - x0;
    const double y = static_cast<double>(i);
    sx += x;
    sy += y;
    sxx += x * x;
    sxy += x * y;
  }
  const double dn = static_cast<double>(n);
  const double denom = dn * sxx - sx * sx;
  if (denom > 0.0) {
    m.slope = (dn * sxy - sx * sy) / denom;
    m.intercept = (sy - m.slope * sx) / dn - m.slope * x0;
  } else {
    m.slope = 0.0;
    m.intercept = sy / dn;
  }
  return m;
}

size_t Rmi::LeafOf(uint64_t key) const {
  const double pred = root_.intercept + root_.slope * AsDouble(key);
  if (pred <= 0.0) return 0;
  const size_t leaf = static_cast<size_t>(pred);
  return std::min(leaf, leaves_.size() - 1);
}

void Rmi::Build(const std::vector<uint64_t>& keys, size_t num_leaves) {
  keys_ = &keys;
  n_ = keys.size();
  leaves_.assign(std::max<size_t>(1, num_leaves), Linear{});
  leaf_begin_.assign(leaves_.size() + 1, 0);
  if (n_ == 0) return;

  // Root: map key range onto [0, M) linearly over (key -> leaf id).
  const double k_lo = AsDouble(keys.front());
  const double k_hi = AsDouble(keys.back());
  if (k_hi > k_lo) {
    root_.slope = static_cast<double>(leaves_.size()) / (k_hi - k_lo);
    root_.intercept = -root_.slope * k_lo;
  } else {
    root_.slope = 0.0;
    root_.intercept = 0.0;
  }

  // Keys are sorted, so LeafOf is non-decreasing: find leaf boundaries.
  size_t i = 0;
  for (size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    leaf_begin_[leaf] = i;
    while (i < n_ && LeafOf(keys[i]) == leaf) ++i;
  }
  leaf_begin_[leaves_.size()] = n_;

  for (size_t leaf = 0; leaf < leaves_.size(); ++leaf) {
    const size_t b = leaf_begin_[leaf];
    const size_t e = leaf_begin_[leaf + 1];
    leaves_[leaf] = FitLinear(keys, b, e);
    // Record max error of the leaf's predictions for its keys; for keys
    // between array values, lower-bound positions interpolate, so this
    // bound plus one covers lookups.
    size_t max_err = 0;
    for (size_t j = b; j < e; ++j) {
      const double pred =
          leaves_[leaf].intercept + leaves_[leaf].slope * AsDouble(keys[j]);
      const double clamped = std::clamp(pred, 0.0, static_cast<double>(n_));
      const double err = std::abs(clamped - static_cast<double>(j));
      max_err = std::max(max_err, static_cast<size_t>(err) + 1);
    }
    leaves_[leaf].max_err = max_err;
  }
}

Rmi::Approx Rmi::Search(uint64_t key) const {
  if (n_ == 0) return Approx{0, 0, 0};
  const Linear& leaf = leaves_[LeafOf(key)];
  const double pred = leaf.intercept + leaf.slope * AsDouble(key);
  size_t pos = 0;
  if (pred > 0.0) pos = std::min(static_cast<size_t>(pred), n_ - 1);
  const size_t err = leaf.max_err + 1;
  const size_t lo = pos > err ? pos - err : 0;
  const size_t hi = std::min(n_, pos + err + 1);
  return Approx{pos, lo, hi};
}

size_t Rmi::LowerBound(uint64_t key) const {
  if (n_ == 0) return 0;
  const std::vector<uint64_t>& keys = *keys_;
  const Approx a = Search(key);
  auto it = std::lower_bound(keys.begin() + a.lo, keys.begin() + a.hi, key);
  size_t pos = static_cast<size_t>(it - keys.begin());
  // Verify the window actually bracketed the answer (leaf boundaries can
  // shave a key or two); fall back to a full search when it did not.
  const bool ok = (pos == 0 || keys[pos - 1] < key) &&
                  (pos == n_ || keys[pos] >= key);
  if (!ok) {
    pos = static_cast<size_t>(
        std::lower_bound(keys.begin(), keys.end(), key) - keys.begin());
  }
  return pos;
}

size_t Rmi::SizeBytes() const {
  return sizeof(*this) + leaves_.capacity() * sizeof(Linear) +
         leaf_begin_.capacity() * sizeof(size_t);
}

}  // namespace wazi

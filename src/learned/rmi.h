// Two-level Recursive Model Index (Kraska et al., 2018) over a sorted
// array of 64-bit keys: a linear root model routes a key to one of M
// second-level linear models; each leaf model records its maximum
// prediction error so lookups are exact after a bounded binary search.
// Used by the RSMI-lite baseline.

#ifndef WAZI_LEARNED_RMI_H_
#define WAZI_LEARNED_RMI_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi {

class Rmi {
 public:
  Rmi() = default;

  // `keys` must be sorted ascending (duplicates allowed). `num_leaves` is
  // the second-level model count.
  void Build(const std::vector<uint64_t>& keys, size_t num_leaves);

  struct Approx {
    size_t pos;
    size_t lo;  // inclusive
    size_t hi;  // exclusive
  };

  // Error-bounded window containing the lower-bound position of `key`.
  Approx Search(uint64_t key) const;

  // Exact index of the first element >= key.
  size_t LowerBound(uint64_t key) const;

  size_t size() const { return n_; }
  size_t SizeBytes() const;

 private:
  struct Linear {
    double slope = 0.0;
    double intercept = 0.0;
    size_t max_err = 0;
  };

  size_t LeafOf(uint64_t key) const;
  static Linear FitLinear(const std::vector<uint64_t>& keys, size_t begin,
                          size_t end);

  const std::vector<uint64_t>* keys_ = nullptr;  // borrowed; must outlive Rmi
  Linear root_;
  std::vector<Linear> leaves_;
  std::vector<size_t> leaf_begin_;  // first key index routed to each leaf
  size_t n_ = 0;
};

}  // namespace wazi

#endif  // WAZI_LEARNED_RMI_H_

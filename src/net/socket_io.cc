#include "net/socket_io.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

namespace wazi::net {
namespace {

bool FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr,
              std::string* error) {
  std::memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  // Numeric IPv4 only: the serving layer targets loopback and
  // explicitly-addressed lab hosts; name resolution stays out of the
  // dependency set.
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    if (error != nullptr) *error = "not a numeric IPv4 address: " + host;
    return false;
  }
  return true;
}

}  // namespace

void SetTcpNoDelay(int fd) {
  const int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

int ListenTcp(const std::string& address, uint16_t port, int backlog,
              uint16_t* bound_port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(address, port, &addr, error)) return -1;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  const int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(fd, backlog) != 0) {
    if (error != nullptr) *error = std::strerror(errno);
    close(fd);
    return -1;
  }
  if (bound_port != nullptr) {
    sockaddr_in actual;
    socklen_t len = sizeof(actual);
    if (getsockname(fd, reinterpret_cast<sockaddr*>(&actual), &len) == 0) {
      *bound_port = ntohs(actual.sin_port);
    }
  }
  return fd;
}

int ConnectTcp(const std::string& host, uint16_t port, std::string* error) {
  sockaddr_in addr;
  if (!FillAddr(host, port, &addr, error)) return -1;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = std::strerror(errno);
    return -1;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    if (error != nullptr) *error = std::strerror(errno);
    close(fd);
    return -1;
  }
  SetTcpNoDelay(fd);
  return fd;
}

bool SendAll(int fd, const void* data, size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    // MSG_NOSIGNAL: a vanished peer must surface as EPIPE, not SIGPIPE.
    const ssize_t sent = send(fd, p, n, MSG_NOSIGNAL);
    if (sent < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += sent;
    n -= static_cast<size_t>(sent);
  }
  return true;
}

ptrdiff_t RecvSome(int fd, void* buf, size_t n) {
  for (;;) {
    const ssize_t got = recv(fd, buf, n, 0);
    if (got < 0 && errno == EINTR) continue;
    return got;
  }
}

void ShutdownSocket(int fd) { (void)shutdown(fd, SHUT_RDWR); }

void CloseSocket(int fd) { (void)close(fd); }

}  // namespace wazi::net

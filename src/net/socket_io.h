// Thin POSIX TCP helpers shared by WireServer and WireClient: loopback
// listeners, blocking connects, and full-buffer send. Nothing here knows
// about frames — byte-stream plumbing only.

#ifndef WAZI_NET_SOCKET_IO_H_
#define WAZI_NET_SOCKET_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace wazi::net {

// Binds and listens on `address:port` (port 0 = ephemeral). Returns the
// listening fd, or -1 with *error filled. *bound_port receives the actual
// port (the ephemeral pick included).
int ListenTcp(const std::string& address, uint16_t port, int backlog,
              uint16_t* bound_port, std::string* error);

// Blocking connect to `host:port` with TCP_NODELAY set (pipelined
// request/response traffic must not wait out Nagle). Returns the fd, or
// -1 with *error filled.
int ConnectTcp(const std::string& host, uint16_t port, std::string* error);

// Sends the whole buffer, looping over partial writes. False on any error
// (the peer vanished); errno is left for the caller.
bool SendAll(int fd, const void* data, size_t n);

// One recv() into `buf`; returns bytes read, 0 on orderly close, -1 on
// error. Retries EINTR.
ptrdiff_t RecvSome(int fd, void* buf, size_t n);

// TCP_NODELAY for accepted server-side sockets (ConnectTcp sets it on the
// client side already).
void SetTcpNoDelay(int fd);

// shutdown(SHUT_RDWR): unblocks any thread parked in recv/send on `fd`
// without racing the close of the descriptor itself.
void ShutdownSocket(int fd);

void CloseSocket(int fd);

}  // namespace wazi::net

#endif  // WAZI_NET_SOCKET_IO_H_

#include "net/wire_client.h"

#include <utility>

#include "net/socket_io.h"

namespace wazi::net {
namespace {

// A promise type may already hold a value/exception when the connection
// dies between resolve and erase; swallow the double-set.
template <typename P, typename E>
void TrySetException(P& promise, const E& e) {
  try {
    promise.set_exception(std::make_exception_ptr(e));
  } catch (const std::future_error&) {
  }
}

}  // namespace

std::unique_ptr<WireClient> WireClient::Connect(const std::string& host,
                                                uint16_t port,
                                                std::string* error,
                                                WireClientOptions opts) {
  const int fd = ConnectTcp(host, port, error);
  if (fd < 0) return nullptr;
  return std::unique_ptr<WireClient>(new WireClient(fd, opts));
}

WireClient::WireClient(int fd, const WireClientOptions& opts)
    : opts_(opts), fd_(fd) {
  reader_ = std::thread([this] { ReaderLoop(); });
}

WireClient::~WireClient() { Close(); }

void WireClient::Close() {
  // acq_rel: exactly one caller wins the exchange and tears the socket
  // down; acquire pairs with the winner-check in concurrent closers.
  if (closed_.exchange(true, std::memory_order_acq_rel)) return;
  // Unblocks the reader's recv; it fails any still-pending ops and exits.
  ShutdownSocket(fd_);
  if (reader_.joinable()) reader_.join();
  CloseSocket(fd_);
}

bool WireClient::connected() const {
  // acquire: pairs with Close's exchange so a true read implies the
  // socket teardown has begun.
  if (closed_.load(std::memory_order_acquire)) return false;
  wazi::MutexLock lock(&pending_mu_);
  return !dead_;
}

uint64_t WireClient::Register(std::unique_ptr<Pending> op) {
  wazi::MutexLock lock(&pending_mu_);
  if (dead_) {
    const WireClientError e(WireError::kNone, "connection closed");
    if (op->is_update) {
      TrySetException(op->update, e);
    } else {
      TrySetException(op->query, e);
    }
    return 0;
  }
  const uint64_t corr = next_corr_++;
  pending_[corr] = std::move(op);
  return corr;
}

void WireClient::SendFrame(const std::string& frame) {
  bool ok;
  {
    wazi::MutexLock lock(&send_mu_);
    ok = SendAll(fd_, frame.data(), frame.size());
  }
  if (!ok) FailAllPending("send failed: connection lost");
}

std::future<serve::QueryResult> WireClient::SubmitRange(const Rect& rect) {
  auto op = std::make_unique<Pending>();
  std::future<serve::QueryResult> fut = op->query.get_future();
  const uint64_t corr = Register(std::move(op));
  if (corr == 0) return fut;
  std::string frame;
  EncodeRangeQuery(corr, rect, &frame);
  SendFrame(frame);
  return fut;
}

std::future<serve::QueryResult> WireClient::SubmitPoint(const Point& p) {
  auto op = std::make_unique<Pending>();
  std::future<serve::QueryResult> fut = op->query.get_future();
  const uint64_t corr = Register(std::move(op));
  if (corr == 0) return fut;
  std::string frame;
  EncodePointQuery(corr, p, &frame);
  SendFrame(frame);
  return fut;
}

std::future<serve::QueryResult> WireClient::SubmitKnn(const Point& center,
                                                      int k) {
  auto op = std::make_unique<Pending>();
  std::future<serve::QueryResult> fut = op->query.get_future();
  const uint64_t corr = Register(std::move(op));
  if (corr == 0) return fut;
  std::string frame;
  EncodeKnnQuery(corr, center, k, &frame);
  SendFrame(frame);
  return fut;
}

std::future<void> WireClient::SubmitInsert(const Point& p) {
  auto op = std::make_unique<Pending>();
  op->is_update = true;
  std::future<void> fut = op->update.get_future();
  const uint64_t corr = Register(std::move(op));
  if (corr == 0) return fut;
  std::string frame;
  EncodeInsert(corr, p, &frame);
  SendFrame(frame);
  return fut;
}

std::future<void> WireClient::SubmitRemove(const Point& p) {
  auto op = std::make_unique<Pending>();
  op->is_update = true;
  std::future<void> fut = op->update.get_future();
  const uint64_t corr = Register(std::move(op));
  if (corr == 0) return fut;
  std::string frame;
  EncodeRemove(corr, p, &frame);
  SendFrame(frame);
  return fut;
}

void WireClient::ReaderLoop() {
  FrameDecoder decoder(opts_.max_response_frame_bytes);
  std::vector<char> buf(64 * 1024);
  for (;;) {
    const ptrdiff_t got = RecvSome(fd_, buf.data(), buf.size());
    if (got <= 0) {
      FailAllPending("connection closed by server");
      return;
    }
    decoder.Feed(buf.data(), static_cast<size_t>(got));
    Frame frame;
    for (;;) {
      const FrameDecoder::Status st = decoder.Next(&frame);
      if (st == FrameDecoder::Status::kNeedMore) break;
      if (st == FrameDecoder::Status::kError) {
        FailAllPending(std::string("response framing error: ") +
                       WireErrorName(decoder.error()));
        return;
      }
      WireResponse resp;
      if (!DecodeResponse(frame, &resp)) {
        FailAllPending("malformed response payload");
        return;
      }
      std::unique_ptr<Pending> op;
      {
        wazi::MutexLock lock(&pending_mu_);
        auto it = pending_.find(resp.corr_id);
        if (it != pending_.end()) {
          op = std::move(it->second);
          pending_.erase(it);
        }
      }
      // A response with no pending op: the server's fatal corr_id-0 error
      // frame, or a duplicate. Surface fatal errors to everyone waiting.
      if (op == nullptr) {
        if (resp.type == MsgType::kError) {
          FailAllPending(std::string("server error: ") +
                         WireErrorName(resp.error) + ": " + resp.error_msg);
          return;
        }
        continue;
      }
      if (resp.type == MsgType::kError) {
        const WireClientError e(resp.error,
                                std::string(WireErrorName(resp.error)) + ": " +
                                    resp.error_msg);
        if (op->is_update) {
          TrySetException(op->update, e);
        } else {
          TrySetException(op->query, e);
        }
        continue;
      }
      if (op->is_update) {
        op->update.set_value();
      } else {
        op->query.set_value(std::move(resp.result));
      }
    }
  }
}

void WireClient::FailAllPending(const std::string& what) {
  std::unordered_map<uint64_t, std::unique_ptr<Pending>> orphans;
  {
    wazi::MutexLock lock(&pending_mu_);
    dead_ = true;
    orphans.swap(pending_);
  }
  const WireClientError e(WireError::kNone, what);
  for (auto& [corr, op] : orphans) {
    (void)corr;
    if (op->is_update) {
      TrySetException(op->update, e);
    } else {
      TrySetException(op->query, e);
    }
  }
}

}  // namespace wazi::net

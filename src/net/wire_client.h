// Pipelined TCP client for the wire protocol (net/wire_format.h).
//
// Every Submit* encodes one frame, sends it (TCP_NODELAY, so a lone
// request leaves immediately) and returns a future; a background reader
// thread matches responses to futures by correlation id, so any number of
// requests may be in flight and responses may resolve out of order.
// Issuing a window of Submits before collecting the futures is the whole
// pipelining story — no batch API needed on the wire.
//
// Error handling: a kError response resolves that request's future with a
// WireClientError exception; a vanished server fails every outstanding
// future the same way. The sync conveniences (Range/PointLookup/Knn)
// just wrap submit + get and therefore throw on those paths.
//
// Thread-safety: Submit* from any thread (sends are serialized on one
// mutex); Close/destructor from one thread after submitters are done.

#ifndef WAZI_NET_WIRE_CLIENT_H_
#define WAZI_NET_WIRE_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <future>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <unordered_map>

#include "common/thread_annotations.h"
#include "net/wire_format.h"
#include "serve/query_engine.h"

namespace wazi::net {

// A per-request or connection-level wire failure, carrying the protocol
// error code when the server reported one (kNone for transport failures).
class WireClientError : public std::runtime_error {
 public:
  WireClientError(WireError code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  WireError code() const { return code_; }

 private:
  WireError code_;
};

struct WireClientOptions {
  // Response frame cap — sized for range results, which can carry an
  // entire hot region (24 bytes per hit).
  size_t max_response_frame_bytes = 64u << 20;
};

class WireClient {
 public:
  // Connects to `host:port` (numeric IPv4). Null with *error filled on a
  // refused/failed connect.
  static std::unique_ptr<WireClient> Connect(const std::string& host,
                                             uint16_t port,
                                             std::string* error,
                                             WireClientOptions opts = {});
  ~WireClient();

  WireClient(const WireClient&) = delete;
  WireClient& operator=(const WireClient&) = delete;

  // --- pipelined submission (any thread) ---
  std::future<serve::QueryResult> SubmitRange(const Rect& rect);
  std::future<serve::QueryResult> SubmitPoint(const Point& p);
  std::future<serve::QueryResult> SubmitKnn(const Point& center, int k);
  // Resolves when the server ACCEPTED the op into the owning shard's
  // writer queue (not when it applied — same contract as the in-process
  // SubmitInsert/SubmitRemove, which return before application too).
  std::future<void> SubmitInsert(const Point& p);
  std::future<void> SubmitRemove(const Point& p);

  // --- sync conveniences ---
  serve::QueryResult Range(const Rect& rect) { return SubmitRange(rect).get(); }
  bool PointLookup(const Point& p) { return SubmitPoint(p).get().found; }
  serve::QueryResult Knn(const Point& center, int k) {
    return SubmitKnn(center, k).get();
  }

  // Shuts the connection down and fails any outstanding futures; the
  // destructor calls it. Idempotent.
  void Close();

  bool connected() const;

 private:
  struct Pending {
    bool is_update = false;
    std::promise<serve::QueryResult> query;
    std::promise<void> update;
  };

  WireClient(int fd, const WireClientOptions& opts);

  // Registers a pending op under a fresh corr_id (the caller holds the
  // future already). Returns 0 — with the op failed dead-connection —
  // when the transport is gone.
  uint64_t Register(std::unique_ptr<Pending> op) EXCLUDES(pending_mu_);
  // Sends one encoded frame; on failure fails every pending op (the
  // just-registered one included).
  void SendFrame(const std::string& frame) EXCLUDES(send_mu_, pending_mu_);
  void ReaderLoop() EXCLUDES(pending_mu_);
  // Fails every pending op with `what` and marks the connection dead.
  void FailAllPending(const std::string& what) EXCLUDES(pending_mu_);

  const WireClientOptions opts_;
  int fd_;
  std::atomic<bool> closed_{false};

  wazi::Mutex send_mu_;  // serializes SendAll (frames must not interleave)

  mutable wazi::Mutex pending_mu_;  // connected() reads dead_ under it
  uint64_t next_corr_ GUARDED_BY(pending_mu_) = 1;
  bool dead_ GUARDED_BY(pending_mu_) = false;  // transport failed
  std::unordered_map<uint64_t, std::unique_ptr<Pending>> pending_
      GUARDED_BY(pending_mu_);

  std::thread reader_;
};

}  // namespace wazi::net

#endif  // WAZI_NET_WIRE_CLIENT_H_

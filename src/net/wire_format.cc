#include "net/wire_format.h"

#include <bit>
#include <cstring>

namespace wazi::net {
namespace {

// Little-endian primitives, byte-assembled so the format is identical on
// any host endianness.
void PutU16(uint16_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(uint32_t v, std::string* out) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(uint64_t v, std::string* out) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(int64_t v, std::string* out) {
  PutU64(static_cast<uint64_t>(v), out);
}

void PutF64(double v, std::string* out) {
  PutU64(std::bit_cast<uint64_t>(v), out);
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

int64_t GetI64(const uint8_t* p) { return static_cast<int64_t>(GetU64(p)); }

double GetF64(const uint8_t* p) { return std::bit_cast<double>(GetU64(p)); }

// Opens a frame: length prefix placeholder + header. Returns the offset of
// the placeholder so CloseFrame can backpatch the real length.
size_t BeginFrame(MsgType type, uint64_t corr_id, std::string* out) {
  const size_t len_at = out->size();
  PutU32(0, out);  // backpatched
  out->push_back(static_cast<char>(kWireVersion));
  out->push_back(static_cast<char>(type));
  PutU16(0, out);  // flags, reserved
  PutU64(corr_id, out);
  return len_at;
}

void CloseFrame(size_t len_at, std::string* out) {
  const uint32_t len =
      static_cast<uint32_t>(out->size() - len_at - kLenPrefixBytes);
  (*out)[len_at] = static_cast<char>(len & 0xff);
  (*out)[len_at + 1] = static_cast<char>((len >> 8) & 0xff);
  (*out)[len_at + 2] = static_cast<char>((len >> 16) & 0xff);
  (*out)[len_at + 3] = static_cast<char>((len >> 24) & 0xff);
}

void PutPoint(const Point& p, std::string* out) {
  PutF64(p.x, out);
  PutF64(p.y, out);
  PutI64(p.id, out);
}

Point GetPoint(const uint8_t* p) {
  return Point{GetF64(p), GetF64(p + 8), GetI64(p + 16)};
}

constexpr size_t kPointBytes = 24;

}  // namespace

const char* WireErrorName(WireError e) {
  switch (e) {
    case WireError::kNone: return "none";
    case WireError::kBadVersion: return "bad_version";
    case WireError::kUnknownType: return "unknown_type";
    case WireError::kBadPayload: return "bad_payload";
    case WireError::kFrameTooLarge: return "frame_too_large";
    case WireError::kServerStopping: return "server_stopping";
  }
  return "unknown";
}

void EncodeRangeQuery(uint64_t corr_id, const Rect& rect, std::string* out) {
  const size_t at = BeginFrame(MsgType::kRangeQuery, corr_id, out);
  PutF64(rect.min_x, out);
  PutF64(rect.min_y, out);
  PutF64(rect.max_x, out);
  PutF64(rect.max_y, out);
  CloseFrame(at, out);
}

void EncodePointQuery(uint64_t corr_id, const Point& p, std::string* out) {
  const size_t at = BeginFrame(MsgType::kPointQuery, corr_id, out);
  PutPoint(p, out);
  CloseFrame(at, out);
}

void EncodeKnnQuery(uint64_t corr_id, const Point& center, int k,
                    std::string* out) {
  const size_t at = BeginFrame(MsgType::kKnnQuery, corr_id, out);
  PutF64(center.x, out);
  PutF64(center.y, out);
  PutU32(static_cast<uint32_t>(k), out);
  CloseFrame(at, out);
}

void EncodeInsert(uint64_t corr_id, const Point& p, std::string* out) {
  const size_t at = BeginFrame(MsgType::kInsert, corr_id, out);
  PutPoint(p, out);
  CloseFrame(at, out);
}

void EncodeRemove(uint64_t corr_id, const Point& p, std::string* out) {
  const size_t at = BeginFrame(MsgType::kRemove, corr_id, out);
  PutPoint(p, out);
  CloseFrame(at, out);
}

void EncodeHitsResult(MsgType type, uint64_t corr_id,
                      const serve::QueryResult& result, std::string* out) {
  const size_t at = BeginFrame(type, corr_id, out);
  PutU64(result.epoch, out);
  PutU32(static_cast<uint32_t>(result.hits.size()), out);
  for (const Point& p : result.hits) PutPoint(p, out);
  CloseFrame(at, out);
}

void EncodePointResult(uint64_t corr_id, const serve::QueryResult& result,
                       std::string* out) {
  const size_t at = BeginFrame(MsgType::kPointResult, corr_id, out);
  PutU64(result.epoch, out);
  out->push_back(result.found ? '\1' : '\0');
  CloseFrame(at, out);
}

void EncodeUpdateAck(uint64_t corr_id, std::string* out) {
  const size_t at = BeginFrame(MsgType::kUpdateAck, corr_id, out);
  CloseFrame(at, out);
}

void EncodeError(uint64_t corr_id, WireError code, const std::string& msg,
                 std::string* out) {
  const size_t at = BeginFrame(MsgType::kError, corr_id, out);
  PutU16(static_cast<uint16_t>(code), out);
  const size_t n = msg.size() < 0xffff ? msg.size() : 0xffff;
  PutU16(static_cast<uint16_t>(n), out);
  out->append(msg.data(), n);
  CloseFrame(at, out);
}

WireError DecodeRequest(const Frame& frame, WireRequest* req) {
  if (frame.flags != 0) return WireError::kBadPayload;
  req->type = frame.type;
  req->corr_id = frame.corr_id;
  const uint8_t* p = frame.payload;
  switch (frame.type) {
    case MsgType::kRangeQuery:
      if (frame.payload_len != 32) return WireError::kBadPayload;
      req->rect = Rect::Of(GetF64(p), GetF64(p + 8), GetF64(p + 16),
                           GetF64(p + 24));
      return WireError::kNone;
    case MsgType::kPointQuery:
    case MsgType::kInsert:
    case MsgType::kRemove:
      if (frame.payload_len != kPointBytes) return WireError::kBadPayload;
      req->point = GetPoint(p);
      return WireError::kNone;
    case MsgType::kKnnQuery: {
      if (frame.payload_len != 20) return WireError::kBadPayload;
      req->point = Point{GetF64(p), GetF64(p + 8), 0};
      const uint32_t k = GetU32(p + 16);
      // A zero or absurd k is a malformed request, not a server loop.
      if (k == 0 || k > (1u << 24)) return WireError::kBadPayload;
      req->k = static_cast<int>(k);
      return WireError::kNone;
    }
    default:
      return WireError::kUnknownType;
  }
}

bool DecodeResponse(const Frame& frame, WireResponse* resp) {
  resp->type = frame.type;
  resp->corr_id = frame.corr_id;
  resp->result = serve::QueryResult{};
  resp->error = WireError::kNone;
  resp->error_msg.clear();
  const uint8_t* p = frame.payload;
  switch (frame.type) {
    case MsgType::kRangeResult:
    case MsgType::kKnnResult: {
      if (frame.payload_len < 12) return false;
      resp->result.epoch = GetU64(p);
      const uint32_t n = GetU32(p + 8);
      if (frame.payload_len != 12 + static_cast<size_t>(n) * kPointBytes) {
        return false;
      }
      resp->result.hits.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        resp->result.hits.push_back(GetPoint(p + 12 + i * kPointBytes));
      }
      return true;
    }
    case MsgType::kPointResult:
      if (frame.payload_len != 9) return false;
      resp->result.epoch = GetU64(p);
      resp->result.found = p[8] != 0;
      return true;
    case MsgType::kUpdateAck:
      return frame.payload_len == 0;
    case MsgType::kError: {
      if (frame.payload_len < 4) return false;
      resp->error = static_cast<WireError>(GetU16(p));
      const uint16_t n = GetU16(p + 2);
      if (frame.payload_len != 4 + static_cast<size_t>(n)) return false;
      resp->error_msg.assign(reinterpret_cast<const char*>(p + 4), n);
      return true;
    }
    default:
      return false;
  }
}

FrameDecoder::FrameDecoder(size_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {}

void FrameDecoder::Feed(const void* data, size_t n) {
  // Compact consumed bytes first so payload pointers handed out by the
  // previous Next() are the only thing invalidated by a Feed.
  if (consumed_ > 0) {
    buf_.erase(buf_.begin(),
               buf_.begin() + static_cast<ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  const uint8_t* bytes = static_cast<const uint8_t*>(data);
  buf_.insert(buf_.end(), bytes, bytes + n);
}

FrameDecoder::Status FrameDecoder::Next(Frame* frame) {
  if (error_ != WireError::kNone) return Status::kError;
  const size_t avail = buf_.size() - consumed_;
  if (avail < kLenPrefixBytes) return Status::kNeedMore;
  const uint8_t* p = buf_.data() + consumed_;
  const uint32_t len = GetU32(p);
  if (len < kFrameHeaderBytes) {
    // A frame too short to carry its own header cannot be skipped reliably.
    error_ = WireError::kBadPayload;
    return Status::kError;
  }
  if (len > max_frame_bytes_) {
    error_ = WireError::kFrameTooLarge;
    return Status::kError;
  }
  if (avail < kLenPrefixBytes + len) return Status::kNeedMore;
  frame->version = p[4];
  frame->type = static_cast<MsgType>(p[5]);
  frame->flags = GetU16(p + 6);
  frame->corr_id = GetU64(p + 8);
  frame->payload = p + kLenPrefixBytes + kFrameHeaderBytes;
  frame->payload_len = len - kFrameHeaderBytes;
  consumed_ += kLenPrefixBytes + len;
  return Status::kFrame;
}

}  // namespace wazi::net

// Binary wire protocol for serving the engine over TCP: length-prefixed
// frames with a fixed 12-byte header, little-endian fixed-width payloads,
// and explicit error frames for malformed input.
//
// Frame layout (everything little-endian):
//
//   uint32  len       byte count of the REST of the frame (header+payload),
//                     so a reader needs exactly 4 bytes to know how much
//                     more to wait for; len >= kFrameHeaderBytes
//   uint8   version   kWireVersion; a mismatch is fatal for the connection
//   uint8   type      MsgType below
//   uint16  flags     reserved, must be 0 (rejected otherwise so the field
//                     stays usable later)
//   uint64  corr_id   client-chosen correlation id, echoed verbatim in the
//                     response — responses may be matched out of order
//   payload           per-type layout below
//
// Request payloads:
//   kRangeQuery   f64 min_x, f64 min_y, f64 max_x, f64 max_y
//   kPointQuery   f64 x, f64 y, i64 id
//   kKnnQuery     f64 x, f64 y, i32 k            (k >= 1)
//   kInsert       f64 x, f64 y, i64 id
//   kRemove       f64 x, f64 y, i64 id
//
// Response payloads:
//   kRangeResult  u64 epoch, u32 n, then n x (f64 x, f64 y, i64 id)
//   kKnnResult    same layout as kRangeResult (neighbors, nearest first)
//   kPointResult  u64 epoch, u8 found
//   kUpdateAck    empty — the op was ACCEPTED into the owning shard's
//                 writer queue, not yet necessarily applied
//   kError        u16 code (WireError), u16 msg_len, msg bytes
//
// Error protocol: errors that leave the framing intact (unknown type, bad
// payload size, non-zero flags) earn an error frame echoing the request's
// corr_id and the connection keeps going; errors that poison the byte
// stream (bad version, oversized frame) earn an error frame followed by a
// close, and a truncated frame (the peer vanished mid-frame) is just a
// close — the server never crashes and never leaves a request unanswered
// on a healthy connection.
//
// The FrameDecoder below is the shared reassembly path of both ends: feed
// it raw socket bytes, pull complete frames; it owns partial-frame
// buffering and the max-frame guard, so pipelined and byte-at-a-time
// delivery decode identically.

#ifndef WAZI_NET_WIRE_FORMAT_H_
#define WAZI_NET_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"
#include "serve/query_engine.h"

namespace wazi::net {

inline constexpr uint8_t kWireVersion = 1;
// Bytes of the fixed header counted by `len` (version..corr_id).
inline constexpr size_t kFrameHeaderBytes = 12;
// Bytes of the length prefix itself.
inline constexpr size_t kLenPrefixBytes = 4;

enum class MsgType : uint8_t {
  // Requests.
  kRangeQuery = 1,
  kPointQuery = 2,
  kKnnQuery = 3,
  kInsert = 4,
  kRemove = 5,
  // Responses.
  kRangeResult = 33,
  kPointResult = 34,
  kKnnResult = 35,
  kUpdateAck = 36,
  kError = 63,
};

enum class WireError : uint16_t {
  kNone = 0,
  kBadVersion = 1,    // fatal: the stream cannot be trusted past this frame
  kUnknownType = 2,   // per-request: framing intact, connection continues
  kBadPayload = 3,    // per-request: wrong payload size / invalid field
  kFrameTooLarge = 4, // fatal: len exceeds the receiver's frame cap
  kServerStopping = 5,
};

const char* WireErrorName(WireError e);

// A decoded frame; `payload` points into the decoder's buffer and is valid
// until the next Next()/Feed() call.
struct Frame {
  uint8_t version = 0;
  MsgType type = MsgType::kError;
  uint16_t flags = 0;
  uint64_t corr_id = 0;
  const uint8_t* payload = nullptr;
  size_t payload_len = 0;
};

// A fully-decoded request, the server's working unit.
struct WireRequest {
  MsgType type = MsgType::kRangeQuery;
  uint64_t corr_id = 0;
  Rect rect;    // kRangeQuery
  Point point;  // kPointQuery / kKnnQuery center / kInsert / kRemove
  int k = 0;    // kKnnQuery
};

// A decoded response, the client's working unit.
struct WireResponse {
  MsgType type = MsgType::kError;
  uint64_t corr_id = 0;
  serve::QueryResult result;  // kRangeResult / kKnnResult / kPointResult
  WireError error = WireError::kNone;  // kError
  std::string error_msg;               // kError
};

// --- encoding (append a complete frame, length prefix included) ---------

void EncodeRangeQuery(uint64_t corr_id, const Rect& rect, std::string* out);
void EncodePointQuery(uint64_t corr_id, const Point& p, std::string* out);
void EncodeKnnQuery(uint64_t corr_id, const Point& center, int k,
                    std::string* out);
void EncodeInsert(uint64_t corr_id, const Point& p, std::string* out);
void EncodeRemove(uint64_t corr_id, const Point& p, std::string* out);

// `type` is kRangeResult or kKnnResult (identical layout, distinct tags so
// a client can sanity-check what it asked for).
void EncodeHitsResult(MsgType type, uint64_t corr_id,
                      const serve::QueryResult& result, std::string* out);
void EncodePointResult(uint64_t corr_id, const serve::QueryResult& result,
                       std::string* out);
void EncodeUpdateAck(uint64_t corr_id, std::string* out);
void EncodeError(uint64_t corr_id, WireError code, const std::string& msg,
                 std::string* out);

// --- decoding ------------------------------------------------------------

// Validates a frame's payload as a request. Returns kNone and fills `req`
// on success; otherwise the WireError to report (framing stays intact for
// every error this can return).
WireError DecodeRequest(const Frame& frame, WireRequest* req);

// Validates a frame's payload as a response (client side). False on a
// malformed payload — a protocol bug, not a per-request error.
bool DecodeResponse(const Frame& frame, WireResponse* resp);

// Incremental frame reassembly over a byte stream.
class FrameDecoder {
 public:
  // `max_frame_bytes` caps the post-prefix frame length (header+payload).
  // Requests are tiny, so the server uses a small cap; clients use a large
  // one sized for range results.
  explicit FrameDecoder(size_t max_frame_bytes);

  // Appends raw bytes from the socket.
  void Feed(const void* data, size_t n);

  enum class Status {
    kFrame,     // *frame filled; payload valid until the next call
    kNeedMore,  // no complete frame buffered
    kError,     // oversized or undersized frame length — the stream is
                // poisoned; error() tells which
  };
  Status Next(Frame* frame);

  WireError error() const { return error_; }
  // Bytes buffered but not yet consumed (a non-empty value at EOF means
  // the peer died mid-frame).
  size_t pending_bytes() const { return buf_.size() - consumed_; }

 private:
  const size_t max_frame_bytes_;
  std::vector<uint8_t> buf_;
  size_t consumed_ = 0;  // bytes of buf_ already handed out as frames
  WireError error_ = WireError::kNone;
};

}  // namespace wazi::net

#endif  // WAZI_NET_WIRE_FORMAT_H_

#include "net/wire_load.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"
#include "net/wire_client.h"

namespace wazi::net {
namespace {

// Wire-load insert ids live above the embedded driver's block (1<<40) so
// a bench process running both arms against one server never collides.
std::atomic<int64_t> g_next_insert_id{int64_t{1} << 41};

}  // namespace

serve::ClientLoadResult RunWireClientLoad(
    const std::string& host, uint16_t port, const Workload& workload,
    const serve::ClientLoadOptions& opts) {
  const int threads = std::max(1, opts.threads);
  std::atomic<int64_t> total_queries{0};
  std::atomic<int64_t> total_writes{0};
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<serve::LatencyRecorder> recorders(
      static_cast<size_t>(threads),
      serve::LatencyRecorder(opts.latency_window));

  // Connect every client BEFORE the clock starts; a refused connect
  // aborts the run instead of measuring a partial fleet.
  std::vector<std::unique_ptr<WireClient>> clients_conn;
  clients_conn.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    std::string err;
    auto c = WireClient::Connect(host, port, &err);
    if (c == nullptr) return serve::ClientLoadResult{};
    clients_conn.push_back(std::move(c));
  }

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      WireClient& client = *clients_conn[static_cast<size_t>(t)];
      serve::LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
      Rng rng(opts.seed + static_cast<uint64_t>(t));
      size_t qi = static_cast<size_t>(t) * 1337;
      size_t hot_i = static_cast<size_t>(t) * 13;
      const size_t hot_n =
          opts.hot_fraction > 0.0
              ? std::max<size_t>(
                    1, static_cast<size_t>(
                           static_cast<double>(workload.queries.size()) *
                           opts.hot_fraction))
              : 0;
      struct InFlight {
        Timer timer;
        std::future<serve::QueryResult> future;
      };
      std::deque<InFlight> in_flight;
      int64_t queries = 0, writes = 0;
      bool lost = false;  // transport died mid-run; stop this client
      const auto drain_one = [&] {
        try {
          in_flight.front().future.get();
          rec.Record(in_flight.front().timer.ElapsedNs());
          ++queries;
        } catch (const WireClientError&) {
          lost = true;
        }
        in_flight.pop_front();
      };
      std::vector<Point> inserted;
      // acquire on start: pairs with the release-store below so workers
      // see the fully set-up harness; stop is a plain flag (relaxed).
      while (!start.load(std::memory_order_acquire)) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
      }
      while (!lost && !stop.load(std::memory_order_relaxed)) {
        const bool write = opts.write_pct > 0 &&
                           static_cast<int>(rng.NextBelow(100)) <
                               opts.write_pct;
        if (write) {
          // Acks resolve on the client's reader thread; fire-and-forget
          // here matches the embedded driver's SubmitInsert semantics
          // (enqueue-and-return).
          if (inserted.size() > 64) {
            client.SubmitRemove(inserted.back());
            inserted.pop_back();
          } else {
            const Rect& reg = opts.insert_region;
            // relaxed: the counter only needs to hand out unique ids.
            Point p{reg.min_x + rng.NextDouble() * (reg.max_x - reg.min_x),
                    reg.min_y + rng.NextDouble() * (reg.max_y - reg.min_y),
                    g_next_insert_id.fetch_add(1, std::memory_order_relaxed)};
            client.SubmitInsert(p);
            inserted.push_back(p);
          }
          ++writes;
        } else {
          const bool hot =
              hot_n > 0 &&
              static_cast<int>(rng.NextBelow(100)) < opts.hot_pct;
          const Rect& q =
              hot ? workload.queries[hot_i++ % hot_n]
                  : workload.queries[qi++ % workload.queries.size()];
          in_flight.push_back(InFlight{Timer(), client.SubmitRange(q)});
          // Same collection discipline as the embedded driver: reap
          // already-resolved responses eagerly, block on the oldest only
          // once the pipeline is full (depth 0 = synchronous).
          while (!lost && !in_flight.empty() &&
                 in_flight.front().future.wait_for(std::chrono::seconds(0)) ==
                     std::future_status::ready) {
            drain_one();
          }
          const size_t depth =
              opts.admission_depth > 0
                  ? static_cast<size_t>(opts.admission_depth)
                  : 1;
          while (!lost && in_flight.size() >= depth) drain_one();
        }
      }
      while (!in_flight.empty()) drain_one();
      // relaxed: totals are only read after the worker threads join.
      total_queries.fetch_add(queries, std::memory_order_relaxed);
      total_writes.fetch_add(writes, std::memory_order_relaxed);
    });
    if (opts.spawn_hook) opts.spawn_hook(t);
  }

  Timer wall;
  // release: publishes the harness set-up to the workers' acquire spin;
  // stop needs no ordering (the flag itself is the whole message).
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(opts.seconds * 1e6)));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  serve::ClientLoadResult result;
  result.elapsed_seconds = wall.ElapsedSeconds();
  result.queries = total_queries.load();
  result.writes = total_writes.load();
  result.latencies = serve::LatencyRecorder(opts.latency_window *
                                            static_cast<size_t>(threads));
  for (const serve::LatencyRecorder& r : recorders) {
    result.latencies.Merge(r);
  }
  // Connections close here, after every thread joined.
  clients_conn.clear();
  return result;
}

}  // namespace wazi::net

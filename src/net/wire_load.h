// Remote twin of serve/client_driver.h: N client threads drive a
// WireServer over TCP with the SAME workload semantics as RunClientLoad
// (round-robin reads with per-thread offsets, optional hot set, optional
// write mix with per-thread remove-own-inserts, pipelined depth), so
// `bench_serve_throughput --net` can report wire-vs-embedded overhead as
// a like-for-like ratio. Each thread owns one connection; reads are
// pipelined `admission_depth` deep (depth 0 runs synchronously), and the
// wall clock starts before any client issues an op (the same start-latch
// discipline as the embedded driver).

#ifndef WAZI_NET_WIRE_LOAD_H_
#define WAZI_NET_WIRE_LOAD_H_

#include <cstdint>
#include <string>

#include "serve/client_driver.h"

namespace wazi::net {

// Drives `host:port` for opts.seconds with opts.threads connections.
// Latencies are submit -> response-decoded (full wire round trip,
// admission window included). A failed initial connect returns a zeroed
// result (elapsed_seconds == 0); transport loss mid-run stops the
// affected client, the rest keep driving.
serve::ClientLoadResult RunWireClientLoad(const std::string& host,
                                          uint16_t port,
                                          const Workload& workload,
                                          const serve::ClientLoadOptions& opts);

}  // namespace wazi::net

#endif  // WAZI_NET_WIRE_LOAD_H_

#include "net/wire_server.h"

#include <cerrno>
#include <sys/socket.h>
#include <utility>

#include "net/socket_io.h"

namespace wazi::net {

WireServer::WireServer(serve::ServeLoop* loop, WireServerOptions opts)
    : loop_(loop), opts_(std::move(opts)) {
  obs::MetricsRegistry& reg = loop_->metrics();
  conns_ctr_ = reg.GetCounter("net_connections_total");
  active_gauge_ = reg.GetGauge("net_active_connections");
  requests_ctr_ = reg.GetCounter("net_requests_total");
  responses_ctr_ = reg.GetCounter("net_responses_total");
  errors_ctr_ = reg.GetCounter("net_errors_total");
  backpressure_ctr_ = reg.GetCounter("net_backpressure_pauses_total");
  bytes_read_ctr_ = reg.GetCounter("net_bytes_read_total");
  bytes_written_ctr_ = reg.GetCounter("net_bytes_written_total");
  latency_hist_ = reg.GetHistogram("net_request_latency_ns");
}

WireServer::~WireServer() { Stop(); }

bool WireServer::Start(std::string* error) {
  // acquire/release on running_: pairs Start/Stop so whichever thread
  // observes running_ == true also observes the listener fully set up.
  if (running_.load(std::memory_order_acquire)) {
    if (error != nullptr) *error = "already running";
    return false;
  }
  stopping_.store(false, std::memory_order_release);  // see acquire above
  listen_fd_ = ListenTcp(opts_.bind_address, opts_.port, opts_.accept_backlog,
                         &port_, error);
  if (listen_fd_ < 0) return false;
  // release: the listener set-up above is visible to whoever sees true.
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void WireServer::Stop() {
  // acq_rel: exactly one Stop wins the teardown; release on stopping_
  // publishes it to AcceptLoop's acquire-load before the listener closes.
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  // Unblock accept() first so no new connection slips in while we tear the
  // existing ones down (shutdown on a listener makes accept fail).
  ShutdownSocket(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  CloseSocket(listen_fd_);
  listen_fd_ = -1;
  {
    wazi::MutexLock lock(&conns_mu_);
    for (auto& conn : conns_) {
      // shutdown() kicks the reader out of recv and the writer out of a
      // blocked send; `closing` releases a reader parked on backpressure.
      // The writer then drains the queue (the serve stack resolves every
      // future it handed out, so nothing hangs) and both loops exit.
      ShutdownSocket(conn->fd);
      wazi::MutexLock clock(&conn->mu);
      conn->closing = true;
      conn->queue_cv.NotifyAll();
      conn->bp_cv.NotifyAll();
    }
  }
  ReapConnections(/*all=*/true);
}

WireServerStats WireServer::stats() const {
  WireServerStats s;
  s.connections_opened = conns_ctr_->value();
  s.active_connections = active_gauge_->value();
  s.requests = requests_ctr_->value();
  s.responses = responses_ctr_->value();
  s.error_frames = errors_ctr_->value();
  s.backpressure_pauses = backpressure_ctr_->value();
  s.bytes_read = bytes_read_ctr_->value();
  s.bytes_written = bytes_written_ctr_->value();
  return s;
}

void WireServer::AcceptLoop() {
  for (;;) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    // acquire: pairs with Stop's release so teardown is visible here.
    if (stopping_.load(std::memory_order_acquire)) {
      if (fd >= 0) CloseSocket(fd);
      return;
    }
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener broken; Stop() still joins us
    }
    SetTcpNoDelay(fd);
    conns_ctr_->Add(1);
    active_gauge_->Add(1);
    loop_->journal().Record(obs::TraceEventKind::kNetConn, 0, -1, 1,
                            active_gauge_->value());

    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    Connection* raw = conn.get();
    {
      wazi::MutexLock lock(&conns_mu_);
      conns_.push_back(std::move(conn));
    }
    raw->reader = std::thread([this, raw] { ReaderLoop(raw); });
    raw->writer = std::thread([this, raw] { WriterLoop(raw); });
    // Reclaim connections that already finished so a long-lived server
    // does not accumulate exited threads and closed-but-open fds.
    ReapConnections(/*all=*/false);
  }
}

void WireServer::ReaderLoop(Connection* conn) {
  FrameDecoder decoder(opts_.max_request_frame_bytes);
  char buf[16 * 1024];
  for (;;) {
    // Backpressure: stop reading the socket while the writer is behind on
    // either axis; TCP flow control propagates the pause to the client.
    {
      wazi::MutexLock lock(&conn->mu);
      if (conn->inflight >= opts_.max_inflight_per_conn ||
          conn->queued_bytes >= opts_.max_queued_response_bytes) {
        backpressure_ctr_->Add(1);
        while (!conn->closing &&
               (conn->inflight >= opts_.max_inflight_per_conn ||
                conn->queued_bytes >= opts_.max_queued_response_bytes)) {
          conn->bp_cv.Wait(conn->mu);
        }
      }
      if (conn->closing) break;
    }
    const ptrdiff_t got = RecvSome(conn->fd, buf, sizeof(buf));
    if (got <= 0) {
      // Orderly close or error. Unconsumed decoder bytes here mean the
      // peer died mid-frame; either way the contract is a clean close.
      break;
    }
    bytes_read_ctr_->Add(got);
    decoder.Feed(buf, static_cast<size_t>(got));
    if (!DrainDecoder(conn, &decoder)) break;  // stream poisoned
  }
  // Stop accepting work and wake the writer: it drains what is queued
  // (the fatal error frame, if any, is the last entry) and then exits.
  {
    wazi::MutexLock lock(&conn->mu);
    conn->closing = true;
    conn->queue_cv.NotifyAll();
    conn->bp_cv.NotifyAll();
  }
  // release: pairs with ReapConnections' acquire so the reaper sees this
  // thread's final writes to the connection before destroying it.
  conn->reader_done.store(true, std::memory_order_release);
}

bool WireServer::DrainDecoder(Connection* conn, FrameDecoder* decoder) {
  // Collect every complete frame this chunk delivered, then admit all the
  // queries as ONE SubmitBatch — a pipelining client's burst coalesces
  // into a single shared-snapshot admission batch.
  std::vector<serve::QueryRequest> batch;
  std::vector<PendingResponse> slots;  // response queue entries, frame order
  std::vector<size_t> batch_slot;      // slots[] index of batch[i]
  bool poisoned = false;

  Frame frame;
  while (!poisoned) {
    const FrameDecoder::Status st = decoder->Next(&frame);
    if (st == FrameDecoder::Status::kNeedMore) break;
    if (st == FrameDecoder::Status::kError) {
      // Undersized/oversized frame length: the stream cannot be re-framed.
      // corr_id 0 — the offending frame's header may not even exist.
      PendingResponse err;
      EncodeError(0, decoder->error(), "unrecoverable framing error",
                  &err.ready_frame);
      errors_ctr_->Add(1);
      loop_->journal().Record(obs::TraceEventKind::kNetError, 0, -1,
                              static_cast<int64_t>(decoder->error()), 1);
      slots.push_back(std::move(err));
      poisoned = true;
      break;
    }
    if (frame.version != kWireVersion) {
      PendingResponse err;
      err.corr_id = frame.corr_id;
      EncodeError(frame.corr_id, WireError::kBadVersion,
                  "unsupported wire version", &err.ready_frame);
      errors_ctr_->Add(1);
      loop_->journal().Record(obs::TraceEventKind::kNetError, 0, -1,
                              static_cast<int64_t>(WireError::kBadVersion), 1);
      slots.push_back(std::move(err));
      poisoned = true;
      break;
    }
    requests_ctr_->Add(1);
    const int64_t now_ns = obs::TraceJournal::NowNs();

    WireRequest req;
    const WireError decode_err = DecodeRequest(frame, &req);
    if (decode_err != WireError::kNone) {
      // Per-request error: framing is intact — answer it and keep going.
      PendingResponse err;
      err.corr_id = frame.corr_id;
      EncodeError(frame.corr_id, decode_err, WireErrorName(decode_err),
                  &err.ready_frame);
      errors_ctr_->Add(1);
      loop_->journal().Record(obs::TraceEventKind::kNetError, 0, -1,
                              static_cast<int64_t>(decode_err), 0);
      slots.push_back(std::move(err));
      continue;
    }

    if (req.type == MsgType::kInsert || req.type == MsgType::kRemove) {
      // Updates bypass admission: route to the owning shard's writer and
      // ack the ACCEPTANCE (wire_format.h documents ack-on-accept).
      if (req.type == MsgType::kInsert) {
        loop_->SubmitInsert(req.point);
      } else {
        loop_->SubmitRemove(req.point);
      }
      PendingResponse ack;
      ack.corr_id = req.corr_id;
      ack.request_type = req.type;
      ack.decode_ns = now_ns;
      EncodeUpdateAck(req.corr_id, &ack.ready_frame);
      slots.push_back(std::move(ack));
      continue;
    }

    switch (req.type) {
      case MsgType::kRangeQuery:
        batch.push_back(serve::QueryRequest::Range(req.rect));
        break;
      case MsgType::kPointQuery:
        batch.push_back(serve::QueryRequest::PointLookup(req.point));
        break;
      default:  // kKnnQuery — DecodeRequest admits no other type here
        batch.push_back(serve::QueryRequest::Knn(req.point, req.k));
        break;
    }
    PendingResponse q;
    q.corr_id = req.corr_id;
    q.request_type = req.type;
    q.has_future = true;
    q.decode_ns = now_ns;
    batch_slot.push_back(slots.size());
    slots.push_back(std::move(q));
  }

  if (!batch.empty()) {
    std::vector<std::future<serve::QueryResult>> futures =
        loop_->SubmitBatch(batch);
    for (size_t i = 0; i < futures.size(); ++i) {
      slots[batch_slot[i]].future = std::move(futures[i]);
    }
  }
  for (PendingResponse& resp : slots) {
    EnqueueResponse(conn, std::move(resp));
  }
  return !poisoned;
}

void WireServer::EnqueueResponse(Connection* conn, PendingResponse&& resp) {
  wazi::MutexLock lock(&conn->mu);
  conn->inflight += 1;
  // Future responses are accounted when the writer encodes them (their
  // size is unknown until the query resolves); ready frames count now.
  conn->queued_bytes += resp.ready_frame.size();
  conn->queue.push_back(std::move(resp));
  conn->queue_cv.NotifyOne();
}

void WireServer::WriterLoop(Connection* conn) {
  bool broken = false;  // send failed; drain without writing
  for (;;) {
    PendingResponse resp;
    {
      wazi::MutexLock lock(&conn->mu);
      while (conn->queue.empty() && !conn->closing) {
        conn->queue_cv.Wait(conn->mu);
      }
      if (conn->queue.empty()) break;  // closing and fully drained
      resp = std::move(conn->queue.front());
      conn->queue.pop_front();
    }
    std::string frame;
    if (resp.has_future) {
      // Blocks until the admitted batch resolves. The serve stack resolves
      // every future it hands out — Stop() included — so this never hangs.
      const serve::QueryResult result = resp.future.get();
      switch (resp.request_type) {
        case MsgType::kRangeQuery:
          EncodeHitsResult(MsgType::kRangeResult, resp.corr_id, result,
                           &frame);
          break;
        case MsgType::kKnnQuery:
          EncodeHitsResult(MsgType::kKnnResult, resp.corr_id, result, &frame);
          break;
        default:  // kPointQuery — the only other queued future type
          EncodePointResult(resp.corr_id, result, &frame);
          break;
      }
      wazi::MutexLock lock(&conn->mu);
      conn->queued_bytes += frame.size();
    } else {
      frame = std::move(resp.ready_frame);
    }
    if (resp.decode_ns != 0) {
      latency_hist_->Record(obs::TraceJournal::NowNs() - resp.decode_ns);
    }
    bool sent = false;
    if (!broken) {
      // A blocked send (client not reading) keeps queued_bytes charged,
      // which is exactly the signal that pauses the reader.
      sent = SendAll(conn->fd, frame.data(), frame.size());
      if (sent) {
        bytes_written_ctr_->Add(static_cast<int64_t>(frame.size()));
        responses_ctr_->Add(1);
      }
    }
    {
      wazi::MutexLock lock(&conn->mu);
      conn->inflight -= 1;
      conn->queued_bytes -= frame.size();
      if (!broken && !sent) {
        // Peer gone mid-write: keep draining the queue (each future must
        // resolve) but stop touching the socket, and release a reader
        // that may be parked on backpressure with the socket half-open.
        broken = true;
        conn->closing = true;
        conn->bp_cv.NotifyAll();
      } else {
        conn->bp_cv.NotifyOne();
      }
    }
  }
  // Unblock a reader still parked in recv (e.g. after a fatal error frame
  // was sent: the stream is poisoned but the peer may never close).
  ShutdownSocket(conn->fd);
  {
    wazi::MutexLock lock(&conn->mu);
    conn->closing = true;
    conn->bp_cv.NotifyAll();
  }
  // release: pairs with ReapConnections' acquire (see ReaderLoop's twin).
  conn->writer_done.store(true, std::memory_order_release);
}

void WireServer::ReapConnections(bool all) {
  std::vector<std::unique_ptr<Connection>> dead;
  {
    wazi::MutexLock lock(&conns_mu_);
    for (size_t i = 0; i < conns_.size();) {
      Connection& c = *conns_[i];
      // acquire: pairs with the loops' release-stores — a true read means
      // that thread is done touching the connection, so it can be freed.
      if (all || (c.reader_done.load(std::memory_order_acquire) &&
                  c.writer_done.load(std::memory_order_acquire))) {
        dead.push_back(std::move(conns_[i]));
        conns_.erase(conns_.begin() + static_cast<ptrdiff_t>(i));
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : dead) {
    if (conn->reader.joinable()) conn->reader.join();
    if (conn->writer.joinable()) conn->writer.join();
    CloseSocket(conn->fd);
    active_gauge_->Add(-1);
    loop_->journal().Record(obs::TraceEventKind::kNetConn, 0, -1, 0,
                            active_gauge_->value());
  }
}

}  // namespace wazi::net

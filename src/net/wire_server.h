// Multi-client TCP front end for a ServeLoop: the piece that turns the
// in-process serving stack into a network service.
//
//   client ──frames──► reader thread ──decode──► ServeLoop::SubmitBatch
//                        │  (one batch per read chunk: every complete
//                        │   frame a recv() delivered is admitted under
//                        │   one submission, so pipelined clients coalesce
//                        │   into the admission layer's snapshot-shared
//                        │   batches for free)
//                        ▼
//                      response queue (corr_id + future)
//                        ▼
//                      writer thread ──wait future──► encode ──► send
//
// Each connection gets a reader and a writer thread. The reader decodes
// pipelined requests and feeds queries to the admission layer (updates go
// straight to SubmitInsert/SubmitRemove and are acknowledged on accept);
// the writer resolves the per-connection response queue in completion
// order — batches resolve as units, so FIFO waiting tracks completion —
// and every response carries the request's correlation id, so clients
// must match on corr_id, never on arrival order.
//
// Backpressure is per-connection and bounded on two axes:
//   * max_inflight_per_conn — decoded requests whose response has not yet
//     been fully written;
//   * max_queued_response_bytes — encoded response bytes not yet handed
//     to the kernel.
// When either cap is hit the reader STOPS READING the socket (counted in
// net_backpressure_pauses_total); TCP flow control then pushes back on
// the client. A malformed frame earns an explicit error frame (and, when
// the byte stream is poisoned, a close) — see net/wire_format.h for the
// error protocol. A mid-frame disconnect is a clean close. In every case
// pending futures are drained, never leaked.
//
// Observability: the server registers net_* counters/gauges and the
// net_request_latency_ns histogram in the loop's metrics registry and
// journals connection lifecycle + protocol errors (kNetConn / kNetError).
//
// Thread-safety: Start/Stop from one controlling thread; Stop (or the
// destructor) joins every connection thread. The ServeLoop must outlive
// the server and must be stopped only after the server.

#ifndef WAZI_NET_WIRE_SERVER_H_
#define WAZI_NET_WIRE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "net/wire_format.h"
#include "obs/metrics.h"
#include "serve/serve_loop.h"

namespace wazi::net {

struct WireServerOptions {
  // Numeric IPv4 listen address; loopback by default — exposing the
  // engine beyond the host is an explicit operator decision.
  std::string bind_address = "127.0.0.1";
  // 0 picks an ephemeral port; port() reports the actual one after Start.
  uint16_t port = 0;
  int accept_backlog = 64;
  // Backpressure caps (see the header comment). Both must be >= 1.
  int max_inflight_per_conn = 128;
  size_t max_queued_response_bytes = 4u << 20;
  // Incoming frame cap. Requests are fixed-size and tiny; anything close
  // to this is garbage or an attack, not traffic.
  size_t max_request_frame_bytes = 1024;
};

// Monotone unless noted; a consistent-enough view over the same registry
// handles the metrics snapshot exports.
struct WireServerStats {
  int64_t connections_opened = 0;
  int64_t active_connections = 0;  // gauge
  int64_t requests = 0;
  int64_t responses = 0;
  int64_t error_frames = 0;        // error responses sent
  int64_t backpressure_pauses = 0;
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
};

class WireServer {
 public:
  // Registers the net_* metrics in `loop`'s registry and journals through
  // its trace journal. The loop must outlive the server.
  explicit WireServer(serve::ServeLoop* loop, WireServerOptions opts = {});
  ~WireServer();

  WireServer(const WireServer&) = delete;
  WireServer& operator=(const WireServer&) = delete;

  // Binds, listens and starts accepting. False (with *error filled) when
  // the bind/listen fails. Idempotent failure: a failed Start leaves the
  // server stoppable and restartable.
  bool Start(std::string* error = nullptr);

  // Stops accepting, shuts every connection down, drains their response
  // queues and joins all threads. Idempotent; the destructor calls it.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  // The bound port (after a successful Start).
  uint16_t port() const { return port_; }

  WireServerStats stats() const;

 private:
  // One entry of a connection's response queue: either a future still
  // being executed by the serve stack, or an already-encoded frame (acks
  // and error responses).
  struct PendingResponse {
    uint64_t corr_id = 0;
    MsgType request_type = MsgType::kRangeQuery;
    bool has_future = false;
    std::future<serve::QueryResult> future;
    std::string ready_frame;   // encoded response when !has_future
    int64_t decode_ns = 0;     // reader stamp for net_request_latency_ns
  };

  struct Connection {
    int fd = -1;  // immutable after AcceptLoop hands the conn to its threads
    std::thread reader;
    std::thread writer;

    // Lock order where both are held: conns_mu_ then mu (Stop()).
    wazi::Mutex mu;
    wazi::CondVar queue_cv;  // writer: responses pending / close
    wazi::CondVar bp_cv;     // reader: backpressure released
    std::deque<PendingResponse> queue GUARDED_BY(mu);
    int inflight GUARDED_BY(mu) = 0;        // response not fully written
    size_t queued_bytes GUARDED_BY(mu) = 0; // not yet handed to the kernel
    bool closing GUARDED_BY(mu) = false;    // no more requests will arrive
    // Set by each loop as its last act; both true = joinable without
    // blocking (beyond the final few instructions of the thread).
    std::atomic<bool> reader_done{false};
    std::atomic<bool> writer_done{false};
  };

  void AcceptLoop() EXCLUDES(conns_mu_);
  void ReaderLoop(Connection* conn) EXCLUDES(conn->mu);
  void WriterLoop(Connection* conn) EXCLUDES(conn->mu);
  // Decodes every complete frame buffered in `decoder`, submits the query
  // batch, enqueues responses. Returns false when the stream is poisoned
  // and the connection must close.
  bool DrainDecoder(Connection* conn, FrameDecoder* decoder)
      EXCLUDES(conn->mu);
  void EnqueueResponse(Connection* conn, PendingResponse&& resp)
      EXCLUDES(conn->mu);
  // Joins and erases finished connections (called from the accept loop
  // between accepts, and from Stop for the rest).
  void ReapConnections(bool all) EXCLUDES(conns_mu_);

  serve::ServeLoop* loop_;
  WireServerOptions opts_;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread accept_thread_;

  wazi::Mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_ GUARDED_BY(conns_mu_);

  // Registry handles (hosted by the loop's registry; see
  // docs/OBSERVABILITY.md for the catalog).
  obs::Counter* conns_ctr_ = nullptr;
  obs::Gauge* active_gauge_ = nullptr;
  obs::Counter* requests_ctr_ = nullptr;
  obs::Counter* responses_ctr_ = nullptr;
  obs::Counter* errors_ctr_ = nullptr;
  obs::Counter* backpressure_ctr_ = nullptr;
  obs::Counter* bytes_read_ctr_ = nullptr;
  obs::Counter* bytes_written_ctr_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;
};

}  // namespace wazi::net

#endif  // WAZI_NET_WIRE_SERVER_H_

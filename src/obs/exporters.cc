#include "obs/exporters.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace wazi::obs {

namespace {

std::string FormatDouble(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[64];
  // %.17g round-trips any double but litters dashboards with digits;
  // %.6g is plenty for rates/latencies and keeps golden tests readable.
  const int n = std::snprintf(buf, sizeof(buf), "%.6g", v);
  return std::string(buf, n > 0 ? static_cast<size_t>(n) : 0);
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snap,
                             const std::string& prefix) {
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " counter\n";
    out += full + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, value] : snap.gauges) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " gauge\n";
    out += full + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, h] : snap.histograms) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " histogram\n";
    // Prometheus buckets are CUMULATIVE counts up to each `le` bound.
    int64_t cum = 0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.buckets[i];
      out += full + "_bucket{le=\"" + std::to_string(h.bounds[i]) + "\"} " +
             std::to_string(cum) + "\n";
    }
    cum += h.buckets.back();
    out += full + "_bucket{le=\"+Inf\"} " + std::to_string(cum) + "\n";
    out += full + "_sum " + std::to_string(h.sum) + "\n";
    out += full + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string ToJson(const MetricsSnapshot& snap) {
  JsonWriter w;
  w.BeginObject();
  w.Key("counters").BeginObject();
  for (const auto& [name, value] : snap.counters) w.Key(name).Int(value);
  w.EndObject();
  w.Key("gauges").BeginObject();
  for (const auto& [name, value] : snap.gauges) w.Key(name).Int(value);
  w.EndObject();
  w.Key("histograms").BeginObject();
  for (const auto& [name, h] : snap.histograms) {
    w.Key(name).BeginObject();
    w.Key("count").Int(h.count);
    w.Key("sum").Int(h.sum);
    w.Key("p50").Double(h.Percentile(50));
    w.Key("p90").Double(h.Percentile(90));
    w.Key("p99").Double(h.Percentile(99));
    w.Key("buckets").BeginArray();
    for (size_t i = 0; i < h.buckets.size(); ++i) {
      if (h.buckets[i] == 0) continue;  // sparse: most buckets are empty
      w.BeginArray();
      if (i < h.bounds.size()) {
        w.Int(h.bounds[i]);
      } else {
        w.Null();  // the +Inf overflow bucket
      }
      w.Int(h.buckets[i]);
      w.EndArray();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  return w.str();
}

std::string TraceTailJson(const TraceJournal& journal, size_t n) {
  const std::vector<TraceEvent> events = journal.Tail(n);
  JsonWriter w;
  w.BeginObject();
  w.Key("capacity").UInt(journal.capacity());
  w.Key("recorded").Int(journal.recorded());
  w.Key("dropped").Int(journal.dropped());
  w.Key("events").BeginArray();
  for (const TraceEvent& e : events) {
    w.BeginObject();
    w.Key("t_ns").Int(e.t_ns);
    w.Key("kind").String(KindName(e.kind));
    w.Key("epoch").UInt(e.epoch);
    w.Key("shard").Int(e.shard);
    w.Key("a").Int(e.a);
    w.Key("b").Int(e.b);
    w.Key("c").Int(e.c);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  return w.str();
}

std::string JsonWriter::Escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(ch)));
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  needs_comma_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  needs_comma_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  Comma();
  out_ += '"' + Escape(k) + "\":";
  // The value that follows must not emit another comma.
  if (!needs_comma_.empty()) needs_comma_.back() = false;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  Comma();
  out_ += '"' + Escape(v) + '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t v) {
  Comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::Double(double v) {
  Comma();
  out_ += FormatDouble(v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  Comma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  Comma();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  Comma();
  out_ += json;
  return *this;
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out.flush());
}

}  // namespace wazi::obs

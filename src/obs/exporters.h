// Exporters for the metrics registry and trace journal: a Prometheus-style
// text dump (scrape endpoint / CLI paste format) and a JSON snapshot
// (machine-readable perf trajectory — bench_serve_throughput emits
// BENCH_serve_<scenario>.json through the JsonWriter here).
//
// Both render from MetricsSnapshot (a plain copy), never from the live
// registry, so exporting can never stall a hot path.

#ifndef WAZI_OBS_EXPORTERS_H_
#define WAZI_OBS_EXPORTERS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace_journal.h"

namespace wazi::obs {

// Prometheus exposition text:
//
//   # TYPE wazi_serve_cache_hits_total counter
//   wazi_serve_cache_hits_total 1234
//   # TYPE wazi_serve_query_latency_ns histogram
//   wazi_serve_query_latency_ns_bucket{le="256"} 0
//   ...
//   wazi_serve_query_latency_ns_bucket{le="+Inf"} 57
//   wazi_serve_query_latency_ns_sum 812345
//   wazi_serve_query_latency_ns_count 57
//
// Metric names come from the registry verbatim plus the `prefix` (default
// "wazi_"); output is name-sorted and deterministic for a given snapshot.
std::string ToPrometheusText(const MetricsSnapshot& snap,
                             const std::string& prefix = "wazi_");

// Compact JSON object:
//   {"counters":{...},"gauges":{...},
//    "histograms":{"name":{"count":N,"sum":S,"p50":...,"p90":...,"p99":...,
//                          "buckets":[[bound,count],...]}}}
std::string ToJson(const MetricsSnapshot& snap);

// The last `n` journal events as a JSON array (oldest first), plus the
// journal's drop accounting:
//   {"capacity":C,"recorded":R,"dropped":D,"events":[
//     {"t_ns":...,"kind":"migration_plan","epoch":3,"shard":-1,
//      "a":2,"b":6,"c":1}, ...]}
std::string TraceTailJson(const TraceJournal& journal, size_t n);

// Minimal append-only JSON emitter shared by the exporters, the bench's
// BENCH_*.json writer and the CLI's --stats-json: explicit Begin/End
// nesting, automatic comma placement, correct string escaping and
// non-finite-double handling (NaN/Inf render as null — JSON has no
// spelling for them). The caller owns structural correctness (balanced
// Begin/End, keys only inside objects).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  JsonWriter& Int(int64_t v);
  JsonWriter& UInt(uint64_t v);
  JsonWriter& Double(double v);
  JsonWriter& Bool(bool v);
  JsonWriter& Null();
  // Splices a pre-rendered JSON value (e.g. another exporter's output)
  // in value position; the fragment must itself be valid JSON.
  JsonWriter& Raw(const std::string& json);

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& s);

 private:
  void Comma();  // separator before a value/key when one is pending

  std::string out_;
  std::vector<bool> needs_comma_;  // per open scope
};

// Writes `content` to `path` (truncating). Returns false on any I/O error.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace wazi::obs

#endif  // WAZI_OBS_EXPORTERS_H_

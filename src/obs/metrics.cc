#include "obs/metrics.h"

#include <algorithm>
#include <cmath>

namespace wazi::obs {

Histogram::Histogram(std::vector<int64_t> bounds)
    : bounds_(bounds.empty() ? DefaultLatencyBoundsNs() : std::move(bounds)),
      buckets_(new std::atomic<int64_t>[bounds_.size() + 1]) {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    // relaxed: single-threaded construction; publication happens via the
    // registry's mutex when the histogram is handed out.
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

std::vector<int64_t> Histogram::DefaultLatencyBoundsNs() {
  std::vector<int64_t> bounds;
  bounds.reserve(26);
  for (int64_t b = 256; b <= (int64_t{1} << 33); b *= 2) {
    bounds.push_back(b);  // 256 ns, 512 ns, ... ~8.6 s
  }
  return bounds;
}

void Histogram::Record(int64_t value) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t slot = static_cast<size_t>(it - bounds_.begin());
  // relaxed: independent statistical counters — readers tolerate a
  // momentarily torn count/sum/bucket view (see HistogramSnapshot).
  buckets_[slot].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snap;
  snap.bounds = bounds_;
  snap.buckets.resize(bounds_.size() + 1);
  // Bucket counts first, then count/sum: a racing Record bumps its bucket
  // before the totals, so the invariant sum(buckets) <= count can only be
  // violated transiently the other way; clamp totals up to the buckets so
  // observers (the TSan poller test) always see sum(buckets) <= count.
  int64_t bucket_total = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    bucket_total += snap.buckets[i];
  }
  snap.count = std::max(bucket_total, count());
  snap.sum = sum();
  return snap;
}

double HistogramSnapshot::Percentile(double pct) const {
  if (count <= 0) return 0.0;
  pct = std::min(100.0, std::max(0.0, pct));
  // Same target rank as LatencyRecorder::PercentileNs: pct/100 * (n - 1),
  // continuous in pct. With buckets instead of retained samples, the rank
  // is then placed linearly within its bucket's [lower, upper] span.
  const double rank = pct / 100.0 * static_cast<double>(count - 1);
  // count may transiently exceed sum(buckets) under concurrent Record
  // (Snapshot loads are not one atomic cut), so the walk clamps into the
  // last non-empty bucket rather than falling off the end.
  size_t last = buckets.size();
  for (size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] > 0) last = i;
  }
  if (last == buckets.size()) return 0.0;  // racy empty snapshot
  int64_t cum = 0;
  for (size_t i = 0; i <= last; ++i) {
    const int64_t c = buckets[i];
    if (c == 0) continue;
    // Bucket i holds ranks [cum, cum + c - 1].
    if (rank <= static_cast<double>(cum + c - 1) || i == last) {
      const double lower =
          i == 0 ? 0.0 : static_cast<double>(bounds[i - 1]);
      if (i == bounds.size()) return lower;  // overflow: no upper bound
      const double upper = static_cast<double>(bounds[i]);
      // Fraction through this bucket's ranks; c == 1 pins the midpoint.
      const double frac =
          c == 1 ? 0.5
                 : (rank - static_cast<double>(cum)) /
                       static_cast<double>(c - 1);
      return lower + std::min(1.0, std::max(0.0, frac)) * (upper - lower);
    }
    cum += c;
  }
  return 0.0;  // unreachable: i == last returns above
}

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      int64_t fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return v;
  }
  return fallback;
}

int64_t MetricsSnapshot::GaugeValue(const std::string& name,
                                    int64_t fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  wazi::MutexLock lock(&mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) {
    orphan_counters_.push_back(std::make_unique<Counter>());
    return orphan_counters_.back().get();
  }
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  wazi::MutexLock lock(&mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    orphan_gauges_.push_back(std::make_unique<Gauge>());
    return orphan_gauges_.back().get();
  }
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<int64_t> bounds) {
  wazi::MutexLock lock(&mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) {
    orphan_histograms_.push_back(
        std::make_unique<Histogram>(std::move(bounds)));
    return orphan_histograms_.back().get();
  }
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(std::move(bounds));
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  wazi::MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    snap.histograms.emplace_back(name, h->Snapshot());
  }
  return snap;
}

}  // namespace wazi::obs

// Unified metrics registry for the serving stack.
//
// The serve layer grew five disconnected stats surfaces (QueryStats
// out-params, AdmissionStats, ResultCacheStats, MigrationStats, raw
// std::atomic<int64_t>* stall counters). This registry unifies them behind
// one naming scheme without slowing the hot paths down:
//
//   * Registration returns a STABLE HANDLE (Counter* / Gauge* /
//     Histogram*). Components register once at construction and hot paths
//     touch exactly one cache-line-padded atomic per event — never a map,
//     never a registry lock.
//   * Counters are monotone (Add >= 0 by contract); gauges move both ways;
//     histograms record int64 samples into atomic log-spaced buckets and
//     extract percentiles with the same linear-interpolation semantics as
//     serve/latency_recorder.h (continuous in pct, exact median), adapted
//     to bucketed data: the target rank is interpolated WITHIN its bucket's
//     bounds instead of between retained samples.
//   * Snapshot() copies every metric under the registry mutex into plain
//     structs for the exporters (obs/exporters.h); relaxed loads are fine
//     because every metric is independently monotone/atomic — a snapshot
//     is a consistent-enough cut for dashboards, not a linearizable one.
//
// Thread-safety: GetCounter/GetGauge/GetHistogram and Snapshot from any
// thread (mutex-serialized); handle operations (Add/Set/Record/value) are
// lock-free from any thread.

#ifndef WAZI_OBS_METRICS_H_
#define WAZI_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace wazi::obs {

// Monotone counter: one padded atomic, so adjacent registry entries never
// false-share a cache line with a hot counter.
struct alignas(64) Counter {
  std::atomic<int64_t> v{0};

  // relaxed: a pure statistic — no data is published through the counter,
  // so only atomicity matters, not ordering.
  void Add(int64_t delta = 1) { v.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v.load(std::memory_order_relaxed); }
};

// Point-in-time value (queue depths, zombie counts, epochs). Same storage
// shape as Counter; the split type keeps exporters honest about which
// metrics are monotone.
struct alignas(64) Gauge {
  std::atomic<int64_t> v{0};

  // relaxed: same as Counter — the value is the whole payload.
  void Set(int64_t value) { v.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { v.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return v.load(std::memory_order_relaxed); }
};

// Plain-struct copy of a histogram for exporters and tests.
struct HistogramSnapshot {
  // bounds[i] is the inclusive upper bound of bucket i; buckets.size() ==
  // bounds.size() + 1 (the last bucket is the +inf overflow).
  std::vector<int64_t> bounds;
  std::vector<int64_t> buckets;
  int64_t count = 0;
  int64_t sum = 0;

  // pct in [0, 100], PR-5 interpolation semantics (latency_recorder.h):
  // the target rank is pct/100 * (count - 1), linearly interpolated — here
  // within the containing bucket's [lower, upper] span since individual
  // samples are not retained. 0 with no samples; the overflow bucket
  // reports its lower bound (it has no upper).
  double Percentile(double pct) const;
  double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }
};

// Bounded histogram: fixed bucket layout chosen at registration, atomic
// per-bucket counts. Record() is wait-free (binary search over immutable
// bounds + one fetch_add each on the bucket, count and sum).
class Histogram {
 public:
  // `bounds` must be strictly increasing inclusive upper bounds; an
  // overflow bucket is appended implicitly. Empty bounds fall back to the
  // default latency layout (see DefaultLatencyBoundsNs).
  explicit Histogram(std::vector<int64_t> bounds);

  void Record(int64_t value);
  // relaxed: statistics only (see Record's rationale in metrics.cc).
  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  double Percentile(double pct) const { return Snapshot().Percentile(pct); }
  HistogramSnapshot Snapshot() const;

  // Log-spaced nanosecond bounds covering 256 ns .. ~8.8 s (doubling per
  // bucket): wide enough for query latencies from a cache hit to a
  // stalled migration, 26 buckets miss no order of magnitude.
  static std::vector<int64_t> DefaultLatencyBoundsNs();

 private:
  std::vector<int64_t> bounds_;  // immutable after construction
  std::unique_ptr<std::atomic<int64_t>[]> buckets_;
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
};

// Everything Snapshot() carries, name-sorted (std::map iteration order) so
// exporter output is deterministic.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, int64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  // Convenience for tests/bench: value of a named counter/gauge, or
  // `fallback` when absent.
  int64_t CounterValue(const std::string& name, int64_t fallback = 0) const;
  int64_t GaugeValue(const std::string& name, int64_t fallback = 0) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Get-or-create by name; the same name always returns the same handle,
  // valid for the registry's lifetime (metrics are never unregistered).
  // Names follow Prometheus conventions: [a-z0-9_], `_total` suffix on
  // counters. Registering a name as two different kinds is a programming
  // error; the first kind wins and the mismatched call returns a handle
  // of a PRIVATE metric of the requested kind (never published) so the
  // caller cannot crash — tests assert the catalog has no such clashes.
  Counter* GetCounter(const std::string& name) EXCLUDES(mu_);
  Gauge* GetGauge(const std::string& name) EXCLUDES(mu_);
  // `bounds` applies only on first registration (empty = default latency
  // layout); later calls with any bounds return the existing handle.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<int64_t> bounds = {}) EXCLUDES(mu_);

  MetricsSnapshot Snapshot() const EXCLUDES(mu_);

 private:
  mutable wazi::Mutex mu_;
  // unique_ptr values: node-stable AND heap-stable, so handles survive any
  // rebalancing; std::map for deterministic (sorted) export order. The
  // maps are guarded; the handles they hand out are lock-free atomics.
  std::map<std::string, std::unique_ptr<Counter>> counters_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      GUARDED_BY(mu_);
  // Kind-mismatch fallbacks (see GetCounter contract); never exported.
  std::vector<std::unique_ptr<Counter>> orphan_counters_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Gauge>> orphan_gauges_ GUARDED_BY(mu_);
  std::vector<std::unique_ptr<Histogram>> orphan_histograms_ GUARDED_BY(mu_);
};

}  // namespace wazi::obs

#endif  // WAZI_OBS_METRICS_H_

// Umbrella header + knobs for the serve stack's observability plumbing.

#ifndef WAZI_OBS_OBS_H_
#define WAZI_OBS_OBS_H_

#include <cstddef>
#include <cstdint>

#include "obs/metrics.h"
#include "obs/trace_journal.h"

namespace wazi::obs {

struct ObsOptions {
  // Ring capacity of the serve-event TraceJournal; 0 disables event
  // recording (counters/gauges/histograms are always on — they are cheap).
  size_t journal_capacity = 4096;
  // Per-query trace sampling: every Nth query through each entry point
  // records a kQueryTrace span (submit→admit→execute→resolve) and feeds
  // the latency histogram. 0 (default) disables sampling COMPLETELY — the
  // query path then does one integer compare and no clock reads, which is
  // what keeps the tracing overhead under the 2%-at-rate-0 gate. 1 traces
  // every query (tests); production wants 100–10000.
  uint32_t trace_sample_every = 0;
};

}  // namespace wazi::obs

#endif  // WAZI_OBS_OBS_H_

#include "obs/trace_journal.h"

#include <chrono>
#include <cstdio>

namespace wazi::obs {

const char* KindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSnapshotSwap: return "snapshot_swap";
    case TraceEventKind::kDriftRebuild: return "drift_rebuild";
    case TraceEventKind::kStallCopy: return "stall_copy";
    case TraceEventKind::kMigrationPlan: return "migration_plan";
    case TraceEventKind::kMigrationCapture: return "migration_capture";
    case TraceEventKind::kMigrationCatchUp: return "migration_catch_up";
    case TraceEventKind::kMigrationCutover: return "migration_cutover";
    case TraceEventKind::kMigrationRetire: return "migration_retire";
    case TraceEventKind::kAdmissionDispatch: return "admission_dispatch";
    case TraceEventKind::kCacheEvict: return "cache_evict";
    case TraceEventKind::kQueryTrace: return "query_trace";
    case TraceEventKind::kNetConn: return "net_conn";
    case TraceEventKind::kNetError: return "net_error";
  }
  return "unknown";
}

std::string FormatEvent(const TraceEvent& e, int64_t origin_ns) {
  char buf[192];
  const double ms = static_cast<double>(e.t_ns - origin_ns) / 1e6;
  int n = std::snprintf(buf, sizeof(buf), "%+12.3fms %-18s", ms,
                        KindName(e.kind));
  std::string out(buf, n > 0 ? static_cast<size_t>(n) : 0);
  if (e.epoch != 0) {
    out += " e" + std::to_string(e.epoch);
  }
  if (e.shard >= 0) {
    out += " shard=" + std::to_string(e.shard);
  }
  switch (e.kind) {
    case TraceEventKind::kSnapshotSwap:
      out += " version=" + std::to_string(e.a);
      break;
    case TraceEventKind::kDriftRebuild:
      out += " rebuilds=" + std::to_string(e.a);
      break;
    case TraceEventKind::kStallCopy:
      out += " zombies=" + std::to_string(e.a);
      break;
    case TraceEventKind::kMigrationPlan:
      out += " moved=" + std::to_string(e.a) +
             " carried=" + std::to_string(e.b) +
             (e.c != 0 ? " incremental" : " full");
      break;
    case TraceEventKind::kMigrationCapture:
      out += " points=" + std::to_string(e.a);
      break;
    case TraceEventKind::kMigrationCatchUp:
      out += " drained_ops=" + std::to_string(e.a);
      break;
    case TraceEventKind::kMigrationCutover:
      out += " replay_ops=" + std::to_string(e.a);
      break;
    case TraceEventKind::kMigrationRetire:
      out += " moved=" + std::to_string(e.a) +
             " carried=" + std::to_string(e.b) +
             " points=" + std::to_string(e.c);
      break;
    case TraceEventKind::kAdmissionDispatch:
      out += " batch=" + std::to_string(e.a) +
             " max_batch=" + std::to_string(e.b);
      break;
    case TraceEventKind::kCacheEvict:
      out += " evicted=" + std::to_string(e.a) +
             " bytes=" + std::to_string(e.b);
      break;
    case TraceEventKind::kQueryTrace:
      out += " wait_ns=" + std::to_string(e.a) +
             " exec_ns=" + std::to_string(e.b) +
             (e.c != 0 ? " admitted" : " direct");
      break;
    case TraceEventKind::kNetConn:
      out += std::string(e.a != 0 ? " opened" : " closed") +
             " active=" + std::to_string(e.b);
      break;
    case TraceEventKind::kNetError:
      out += " code=" + std::to_string(e.a) +
             (e.b != 0 ? " fatal" : " continued");
      break;
  }
  return out;
}

TraceJournal::TraceJournal(size_t capacity) : capacity_(capacity) {
  ring_.reserve(capacity_);
}

int64_t TraceJournal::NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void TraceJournal::Record(TraceEvent e) {
  if (e.t_ns == 0) e.t_ns = NowNs();
  wazi::MutexLock lock(&mu_);
  ++recorded_;
  if (capacity_ == 0) return;
  if (ring_.size() < capacity_) {
    ring_.push_back(e);
  } else {
    ring_[next_] = e;
    next_ = (next_ + 1) % capacity_;
  }
}

void TraceJournal::Record(TraceEventKind kind, uint64_t epoch, int32_t shard,
                          int64_t a, int64_t b, int64_t c) {
  TraceEvent e;
  e.kind = kind;
  e.epoch = epoch;
  e.shard = shard;
  e.a = a;
  e.b = b;
  e.c = c;
  Record(e);
}

std::vector<TraceEvent> TraceJournal::Tail(size_t n) const {
  wazi::MutexLock lock(&mu_);
  const size_t size = ring_.size();
  const size_t take = n < size ? n : size;
  std::vector<TraceEvent> out;
  out.reserve(take);
  // Oldest retained entry sits at next_ once the ring wrapped, at 0 before.
  const size_t head = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = size - take; i < size; ++i) {
    out.push_back(ring_[(head + i) % size]);
  }
  return out;
}

int64_t TraceJournal::recorded() const {
  wazi::MutexLock lock(&mu_);
  return recorded_;
}

int64_t TraceJournal::dropped() const {
  wazi::MutexLock lock(&mu_);
  return recorded_ - static_cast<int64_t>(ring_.size());
}

}  // namespace wazi::obs

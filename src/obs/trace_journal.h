// Fixed-capacity, drop-counting ring of timestamped serve events.
//
// The metrics registry answers "how many / how fast"; the journal answers
// "what happened, in what order" — the event sequence of a live migration,
// the snapshot swaps of a churning shard, the evictions of a thrashing
// cache. It is a diagnosis tool, not a durability log: a bounded
// preallocated ring under one mutex, overwriting the oldest entry when
// full and counting every overwrite in dropped(), so a reader always knows
// how much history it is missing.
//
// Event field conventions (a/b/c are per-kind payloads; unused = 0):
//
//   kSnapshotSwap        shard = shard id, epoch = birth epoch of that
//                        shard's VersionedIndex, a = published version
//   kDriftRebuild        shard, epoch; a = rebuild count so far (loop-wide)
//   kStallCopy           shard, epoch; a = zombies now parked on the shard
//   kMigrationPlan       epoch = TARGET epoch, a = shards to rebuild,
//                        b = shards carried, c = 1 incremental / 0 full
//   kMigrationCapture    epoch = target, a = points captured
//   kMigrationCatchUp    epoch = target, a = delta ops drained pre-cutover
//   kMigrationCutover    epoch = target, a = final replay ops
//   kMigrationRetire     epoch = target, a = shards rebuilt, b = carried,
//                        c = points moved
//   kAdmissionDispatch   a = batch size, b = max batch so far
//   kCacheEvict          a = entries evicted by one insert, b = entry bytes
//   kQueryTrace          sampled query span: a = queue-wait ns (0 on the
//                        direct path), b = execute ns, c = 1 admitted /
//                        0 direct
//   kNetConn             a = 1 opened / 0 closed, b = active connections
//                        after the transition
//   kNetError            a = WireError code (net/wire_format.h), b = 1 the
//                        error closed the connection / 0 it continued
//
// Thread-safety: Record/Tail/recorded/dropped from any thread.

#ifndef WAZI_OBS_TRACE_JOURNAL_H_
#define WAZI_OBS_TRACE_JOURNAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace wazi::obs {

enum class TraceEventKind : uint8_t {
  kSnapshotSwap = 0,
  kDriftRebuild,
  kStallCopy,
  kMigrationPlan,
  kMigrationCapture,
  kMigrationCatchUp,
  kMigrationCutover,
  kMigrationRetire,
  kAdmissionDispatch,
  kCacheEvict,
  kQueryTrace,
  kNetConn,
  kNetError,
};

// Stable lowercase name ("snapshot_swap", "migration_plan", ...): the
// exporter/CLI vocabulary, covered by the golden-format test.
const char* KindName(TraceEventKind kind);

struct TraceEvent {
  int64_t t_ns = 0;  // steady-clock nanoseconds (ordering, not wall time)
  TraceEventKind kind = TraceEventKind::kSnapshotSwap;
  uint64_t epoch = 0;
  int32_t shard = -1;  // -1 = not shard-scoped
  int64_t a = 0, b = 0, c = 0;  // per-kind payload (header table above)
};

// One-line human rendering ("+12.345ms migration_plan e3 moved=2 ...")
// used by `wazi_cli ... --trace-dump N`. `origin_ns` subtracts the run's
// start so timestamps read as offsets.
std::string FormatEvent(const TraceEvent& e, int64_t origin_ns = 0);

class TraceJournal {
 public:
  // `capacity` == 0 disables recording entirely (Record is a counting
  // no-op; dropped() == recorded()).
  explicit TraceJournal(size_t capacity = 4096);

  TraceJournal(const TraceJournal&) = delete;
  TraceJournal& operator=(const TraceJournal&) = delete;

  // Stamps `e.t_ns` (steady clock) unless the caller already did, and
  // appends, overwriting the oldest event when full.
  void Record(TraceEvent e) EXCLUDES(mu_);
  // Convenience for the common call shape.
  void Record(TraceEventKind kind, uint64_t epoch, int32_t shard,
              int64_t a = 0, int64_t b = 0, int64_t c = 0);

  // The last min(n, size) events, oldest first.
  std::vector<TraceEvent> Tail(size_t n) const EXCLUDES(mu_);

  size_t capacity() const { return capacity_; }
  // Events ever recorded / lost to overwrite. recorded - dropped = retained.
  int64_t recorded() const EXCLUDES(mu_);
  int64_t dropped() const EXCLUDES(mu_);

  // Steady-clock now in ns — the clock Record stamps with, exposed so
  // span-computing callers (the sampled query trace) use the same origin.
  static int64_t NowNs();

 private:
  const size_t capacity_;
  mutable wazi::Mutex mu_;
  std::vector<TraceEvent> ring_ GUARDED_BY(mu_);  // preallocated to capacity_
  size_t next_ GUARDED_BY(mu_) = 0;               // ring cursor once full
  int64_t recorded_ GUARDED_BY(mu_) = 0;
};

}  // namespace wazi::obs

#endif  // WAZI_OBS_TRACE_JOURNAL_H_

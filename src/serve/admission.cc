#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace wazi::serve {

AdmissionQueue::AdmissionQueue(QueryEngine* engine,
                               const ShardedVersionedIndex* index,
                               AdmissionOptions opts)
    : engine_(engine), index_(index), opts_(opts) {
  opts_.batch_limit = std::max<size_t>(1, opts_.batch_limit);
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

AdmissionQueue::~AdmissionQueue() { Stop(); }

std::future<QueryResult> AdmissionQueue::Submit(const QueryRequest& request) {
  Pending p;
  p.request = request;
  std::future<QueryResult> future = p.promise.get_future();
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      // Late submit: keep the contract (a resolved future) without the
      // dispatcher. Inline execution is the degenerate batch of one,
      // counted as such so the stats invariants keep holding after Stop.
      lock.unlock();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.admitted;
      }
      QueryStats stats;
      p.promise.set_value(engine_->Execute(request, &stats));
      CountDispatched(1);
      return future;
    }
    pending_.push_back(std::move(p));
    // Counted before mu_ drops so stats() never observes a query as
    // dispatched but not yet admitted (the dispatcher cannot even see it
    // until mu_ releases).
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.admitted;
    }
    // Wake the dispatcher on new work (empty -> non-empty) or a full
    // batch; arrivals in between land in its linger window without a
    // futex wake each.
    notify = pending_.size() == 1 || pending_.size() >= opts_.batch_limit;
  }
  if (notify) cv_.notify_one();
  return future;
}

std::vector<std::future<QueryResult>> AdmissionQueue::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  bool notify = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stop_) {
      lock.unlock();
      for (const QueryRequest& request : requests) {
        {
          std::lock_guard<std::mutex> stats_lock(stats_mu_);
          ++stats_.admitted;
        }
        std::promise<QueryResult> promise;
        futures.push_back(promise.get_future());
        QueryStats stats;
        promise.set_value(engine_->Execute(request, &stats));
        CountDispatched(1);
      }
      return futures;
    }
    const bool was_empty = pending_.empty();
    for (const QueryRequest& request : requests) {
      Pending p;
      p.request = request;
      futures.push_back(p.promise.get_future());
      pending_.push_back(std::move(p));
    }
    {
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      stats_.admitted += static_cast<int64_t>(requests.size());
    }
    notify = !requests.empty() &&
             (was_empty || pending_.size() >= opts_.batch_limit);
  }
  if (notify) cv_.notify_one();
  return futures;
}

void AdmissionQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Synchronous drain: the dispatcher exits only once pending_ is empty,
  // so after the join every future ever handed out has resolved.
  std::lock_guard<std::mutex> join_lock(join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

AdmissionStats AdmissionQueue::stats() const {
  // One sequence point: every field of the returned snapshot comes from
  // the same instant, so the struct's documented invariants hold.
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void AdmissionQueue::CountDispatched(size_t n) {
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.dispatched += static_cast<int64_t>(n);
  ++stats_.batches;
  stats_.max_batch = std::max(stats_.max_batch, static_cast<int64_t>(n));
}

void AdmissionQueue::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    cv_.wait(lock, [this] { return stop_ || !pending_.empty(); });
    if (pending_.empty()) {
      if (stop_) return;  // drained
      continue;
    }
    // Linger for the batch to fill — bounded by window_us from the moment
    // the first query was picked up, so co-batching can never add more
    // than ~window_us of latency. Skipped when stopping (drain fast) or
    // already full.
    if (opts_.window_us > 0 && !stop_ &&
        pending_.size() < opts_.batch_limit) {
      cv_.wait_for(lock, std::chrono::microseconds(opts_.window_us),
                   [this] {
                     return stop_ || pending_.size() >= opts_.batch_limit;
                   });
    }
    std::vector<Pending> batch;
    const size_t take = std::min(pending_.size(), opts_.batch_limit);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.unlock();
    DispatchBatch(&batch);
    lock.lock();
  }
}

void AdmissionQueue::DispatchBatch(std::vector<Pending>* batch) {
  const size_t n = batch->size();
  // Group by query type: each engine worker block then executes a
  // homogeneous run (ranges together, then points, then kNN) instead of
  // interleaving code paths. Stable, so same-type queries keep their
  // submission order; `order` maps execution slots back to submitters.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return static_cast<int>((*batch)[a].request.type) <
           static_cast<int>((*batch)[b].request.type);
  });
  std::vector<QueryRequest> requests;
  requests.reserve(n);
  for (const size_t i : order) requests.push_back((*batch)[i].request);

  // THE admission win: one topology pin + one snapshot acquire per shard
  // for the whole batch. Held only for the batch's execution, so it
  // stalls writers no longer than any other per-block reader.
  ShardedVersionedIndex::SnapshotSet snaps;
  index_->AcquireAll(&snaps);
  std::vector<QueryResult> results;
  engine_->ExecuteBatchOn(requests, &results, snaps);

  // Counters before the futures resolve: a client that observes its
  // result (future.get()) must also observe it in stats().
  CountDispatched(n);
  for (size_t slot = 0; slot < n; ++slot) {
    (*batch)[order[slot]].promise.set_value(std::move(results[slot]));
  }
}

}  // namespace wazi::serve

#include "serve/admission.h"

#include <algorithm>
#include <chrono>
#include <utility>

namespace wazi::serve {

AdmissionQueue::AdmissionQueue(QueryEngine* engine,
                               const ShardedVersionedIndex* index,
                               AdmissionOptions opts,
                               obs::MetricsRegistry* registry,
                               obs::TraceJournal* journal,
                               uint32_t trace_sample_every)
    : engine_(engine),
      index_(index),
      opts_(opts),
      journal_(journal),
      trace_sample_every_(trace_sample_every) {
  opts_.batch_limit = std::max<size_t>(1, opts_.batch_limit);
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  admitted_ctr_ = registry->GetCounter("serve_admission_admitted_total");
  dispatched_ctr_ = registry->GetCounter("serve_admission_dispatched_total");
  batches_ctr_ = registry->GetCounter("serve_admission_batches_total");
  max_batch_gauge_ = registry->GetGauge("serve_admission_max_batch");
  latency_hist_ = registry->GetHistogram("serve_query_latency_ns");
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

bool AdmissionQueue::SampleThisQuery() {
  // Rate 0 is the production default and must cost nothing: one compare,
  // no atomics, no clock.
  if (trace_sample_every_ == 0) return false;
  return sample_tick_.fetch_add(1, std::memory_order_relaxed) %
             trace_sample_every_ ==
         0;
}

AdmissionQueue::~AdmissionQueue() { Stop(); }

std::future<QueryResult> AdmissionQueue::Submit(const QueryRequest& request) {
  Pending p;
  p.request = request;
  if (SampleThisQuery()) p.submit_ns = obs::TraceJournal::NowNs();
  std::future<QueryResult> future = p.promise.get_future();
  bool notify = false;
  {
    MutexLock lock(&mu_);
    if (stop_) {
      // Late submit: keep the contract (a resolved future) without the
      // dispatcher. Inline execution is the degenerate batch of one,
      // counted as such so the stats invariants keep holding after Stop.
      lock.Unlock();
      {
        MutexLock stats_lock(&stats_mu_);
        ++stats_.admitted;
        admitted_ctr_->Add(1);
      }
      // Dispatched BEFORE the future resolves — same ordering contract as
      // DispatchBatch: a client that observes its result must also
      // observe it in stats(), even on this inline path.
      QueryStats stats;
      QueryResult result = engine_->Execute(request, &stats);
      CountDispatched(1);
      p.promise.set_value(std::move(result));
      return future;
    }
    pending_.push_back(std::move(p));
    // Counted before mu_ drops so stats() never observes a query as
    // dispatched but not yet admitted (the dispatcher cannot even see it
    // until mu_ releases).
    {
      MutexLock stats_lock(&stats_mu_);
      ++stats_.admitted;
      admitted_ctr_->Add(1);
    }
    // Wake the dispatcher on new work (empty -> non-empty) or a full
    // batch; arrivals in between land in its linger window without a
    // futex wake each.
    notify = pending_.size() == 1 || pending_.size() >= opts_.batch_limit;
  }
  if (notify) cv_.NotifyOne();
  return future;
}

std::vector<std::future<QueryResult>> AdmissionQueue::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(requests.size());
  bool notify = false;
  {
    MutexLock lock(&mu_);
    if (stop_) {
      lock.Unlock();
      for (const QueryRequest& request : requests) {
        {
          MutexLock stats_lock(&stats_mu_);
          ++stats_.admitted;
          admitted_ctr_->Add(1);
        }
        std::promise<QueryResult> promise;
        futures.push_back(promise.get_future());
        // Count before resolving (the DispatchBatch ordering contract).
        QueryStats stats;
        QueryResult result = engine_->Execute(request, &stats);
        CountDispatched(1);
        promise.set_value(std::move(result));
      }
      return futures;
    }
    const bool was_empty = pending_.empty();
    for (const QueryRequest& request : requests) {
      Pending p;
      p.request = request;
      if (SampleThisQuery()) p.submit_ns = obs::TraceJournal::NowNs();
      futures.push_back(p.promise.get_future());
      pending_.push_back(std::move(p));
    }
    {
      MutexLock stats_lock(&stats_mu_);
      stats_.admitted += static_cast<int64_t>(requests.size());
      admitted_ctr_->Add(static_cast<int64_t>(requests.size()));
    }
    notify = !requests.empty() &&
             (was_empty || pending_.size() >= opts_.batch_limit);
  }
  if (notify) cv_.NotifyOne();
  return futures;
}

void AdmissionQueue::Stop() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  cv_.NotifyAll();
  // Synchronous drain: the dispatcher exits only once pending_ is empty,
  // so after the join every future ever handed out has resolved.
  MutexLock join_lock(&join_mu_);
  if (dispatcher_.joinable()) dispatcher_.join();
}

AdmissionStats AdmissionQueue::stats() const {
  // One sequence point: every field of the returned snapshot comes from
  // the same instant, so the struct's documented invariants hold.
  MutexLock lock(&stats_mu_);
  return stats_;
}

int64_t AdmissionQueue::CountDispatched(size_t n) {
  MutexLock lock(&stats_mu_);
  stats_.dispatched += static_cast<int64_t>(n);
  ++stats_.batches;
  stats_.max_batch = std::max(stats_.max_batch, static_cast<int64_t>(n));
  // Registry mirrors move under the same sequence point, so exported
  // values obey the same invariants as the stats() snapshot.
  dispatched_ctr_->Add(static_cast<int64_t>(n));
  batches_ctr_->Add(1);
  max_batch_gauge_->Set(stats_.max_batch);
  return stats_.max_batch;
}

void AdmissionQueue::DispatcherLoop() {
  MutexLock lock(&mu_);
  for (;;) {
    while (!stop_ && pending_.empty()) cv_.Wait(mu_);
    if (pending_.empty()) {
      if (stop_) return;  // drained
      continue;
    }
    // Linger for the batch to fill — bounded by window_us from the moment
    // the first query was picked up, so co-batching can never add more
    // than ~window_us of latency. Skipped when stopping (drain fast) or
    // already full.
    if (opts_.window_us > 0 && !stop_ &&
        pending_.size() < opts_.batch_limit) {
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(opts_.window_us);
      while (!stop_ && pending_.size() < opts_.batch_limit) {
        if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) break;
      }
    }
    std::vector<Pending> batch;
    const size_t take = std::min(pending_.size(), opts_.batch_limit);
    batch.reserve(take);
    for (size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
    lock.Unlock();
    DispatchBatch(&batch);
    lock.Lock();
  }
}

void AdmissionQueue::DispatchBatch(std::vector<Pending>* batch) {
  const size_t n = batch->size();
  // Group by query type: each engine worker block then executes a
  // homogeneous run (ranges together, then points, then kNN) instead of
  // interleaving code paths. Stable, so same-type queries keep their
  // submission order; `order` maps execution slots back to submitters.
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return static_cast<int>((*batch)[a].request.type) <
           static_cast<int>((*batch)[b].request.type);
  });
  std::vector<QueryRequest> requests;
  requests.reserve(n);
  for (const size_t i : order) requests.push_back((*batch)[i].request);

  // Clock reads only when a sampled query is aboard: the common batch at
  // sample rate 0 never touches the clock.
  bool any_sampled = false;
  for (const Pending& p : *batch) {
    if (p.submit_ns != 0) {
      any_sampled = true;
      break;
    }
  }
  const int64_t admit_ns = any_sampled ? obs::TraceJournal::NowNs() : 0;

  // THE admission win: one topology pin + one snapshot acquire per shard
  // for the whole batch. Held only for the batch's execution, so it
  // stalls writers no longer than any other per-block reader.
  ShardedVersionedIndex::SnapshotSet snaps;
  index_->AcquireAll(&snaps);
  std::vector<QueryResult> results;
  engine_->ExecuteBatchOn(requests, &results, snaps);

  // Counters before the futures resolve: a client that observes its
  // result (future.get()) must also observe it in stats().
  const int64_t max_batch = CountDispatched(n);
  if (journal_ != nullptr) {
    journal_->Record(obs::TraceEventKind::kAdmissionDispatch, /*epoch=*/0,
                     /*shard=*/-1, static_cast<int64_t>(n), max_batch);
  }
  for (size_t slot = 0; slot < n; ++slot) {
    (*batch)[order[slot]].promise.set_value(std::move(results[slot]));
  }
  if (any_sampled) {
    // resolve stamp taken once the whole batch's futures are fulfilled:
    // the span a client actually experiences on future.get().
    const int64_t resolve_ns = obs::TraceJournal::NowNs();
    for (const Pending& p : *batch) {
      if (p.submit_ns == 0) continue;
      const int64_t wait = admit_ns - p.submit_ns;
      const int64_t exec = resolve_ns - admit_ns;
      latency_hist_->Record(resolve_ns - p.submit_ns);
      if (journal_ != nullptr) {
        journal_->Record(obs::TraceEventKind::kQueryTrace, /*epoch=*/0,
                         /*shard=*/-1, wait, exec, /*admitted=*/1);
      }
    }
  }
}

}  // namespace wazi::serve

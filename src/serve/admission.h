// Batched query admission: the pipelining layer between clients and the
// query engine.
//
// The direct entry points (ServeLoop::Range et al.) execute each query on
// the calling thread, paying one topology load plus one snapshot acquire
// per touched shard PER QUERY. Under many concurrent clients that atomic
// refcount traffic on the publication cells — and the per-query fan-out
// bookkeeping — is pure overhead: queries arriving within microseconds of
// each other could all run on the same pinned snapshot set.
//
// The AdmissionQueue coalesces concurrent submissions into bounded
// batches:
//
//   client ──Submit()──► pending queue ──► dispatcher thread
//                                            │  waits until the batch
//                                            │  fills (batch_limit) or the
//                                            │  oldest query has waited
//                                            │  window_us
//                                            ▼
//                                          group by query type
//                                            ▼
//                                          AcquireAll() ONCE
//                                            ▼
//                                          QueryEngine::ExecuteBatchOn()
//                                            ▼
//                                          fulfil the clients' futures
//
// Each dispatched batch runs under a single epoch-pinned SnapshotSet
// acquisition: one topology load and one snapshot acquire per shard for
// the whole batch, shared by every engine worker (the direct batch path
// acquires per worker block; a repartition can therefore never straddle
// an admitted batch). Requests are grouped by query type before execution
// so each worker block runs a homogeneous instruction stream; results are
// scattered back to the submission order through the clients' futures.
//
// `window_us` bounds the extra latency a query can pay for co-batching:
// a query never waits longer than ~window_us beyond its own execution,
// and a batch that fills to `batch_limit` dispatches immediately. 0 keeps
// admission but disables the linger (dispatch whatever has queued).
//
// Thread-safety: Submit/SubmitBatch from any number of threads. Stop (or
// destruction) drains every pending query before returning — no future is
// ever abandoned.

#ifndef WAZI_SERVE_ADMISSION_H_
#define WAZI_SERVE_ADMISSION_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace_journal.h"
#include "serve/query_engine.h"

namespace wazi::serve {

struct AdmissionOptions {
  // Max queries per dispatched batch; a full batch dispatches without
  // waiting out the window.
  size_t batch_limit = 64;
  // Max time the dispatcher lingers for a batch to fill, measured from
  // when it picks up the first pending query — the co-batching latency
  // bound. 0 dispatches whatever has accumulated, immediately.
  int64_t window_us = 200;
};

// Monotone counters. stats() returns a mutually CONSISTENT snapshot:
// all fields are published under one mutex (a single sequence point), so
// an observer can rely on the invariants admitted >= dispatched,
// batches <= dispatched, max_batch <= dispatched, and batches > 0
// whenever dispatched > 0 — independently-read atomics used to allow
// e.g. `dispatched > admitted` between the reads.
struct AdmissionStats {
  int64_t admitted = 0;    // queries accepted by Submit/SubmitBatch
  int64_t dispatched = 0;  // queries handed to the engine
  int64_t batches = 0;     // dispatched batches (inline post-Stop
                           // executions count as batches of one)
  int64_t max_batch = 0;   // largest single batch
  double mean_batch() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(dispatched) /
                              static_cast<double>(batches);
  }
};

class AdmissionQueue {
 public:
  // `engine` and `index` must outlive the queue (ServeLoop owns all
  // three). The dispatcher thread starts immediately. `registry` hosts
  // the admission counters (serve_admission_*; a private registry backs
  // them when null), `journal` (optional) receives one
  // kAdmissionDispatch event per batch, and `trace_sample_every` samples
  // every Nth submitted query into a full submit→admit→execute→resolve
  // span (latency histogram serve_query_latency_ns + kQueryTrace event).
  // 0 disables sampling: the submit path then does one integer compare
  // and never reads a clock.
  AdmissionQueue(QueryEngine* engine, const ShardedVersionedIndex* index,
                 AdmissionOptions opts,
                 obs::MetricsRegistry* registry = nullptr,
                 obs::TraceJournal* journal = nullptr,
                 uint32_t trace_sample_every = 0);
  ~AdmissionQueue();

  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  // Enqueues one query; the future resolves once its batch executes.
  // After Stop, falls back to inline execution on the calling thread (the
  // future is already resolved when returned).
  std::future<QueryResult> Submit(const QueryRequest& request)
      EXCLUDES(mu_, stats_mu_);

  // Enqueues a block of queries as one unit (they may still be split
  // across dispatch batches by batch_limit, or merged with concurrent
  // submitters' queries). futures[i] corresponds to requests[i].
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests) EXCLUDES(mu_, stats_mu_);

  // Drains every pending query and joins the dispatcher: when Stop
  // returns, every future ever handed out has resolved. Idempotent; the
  // destructor calls it. Later submits execute inline.
  void Stop() EXCLUDES(mu_);

  AdmissionStats stats() const EXCLUDES(stats_mu_);

 private:
  struct Pending {
    QueryRequest request;
    std::promise<QueryResult> promise;
    // Non-zero iff this query was sampled for tracing: the steady-clock
    // submit stamp the dispatcher computes its spans against.
    int64_t submit_ns = 0;
  };

  void DispatcherLoop() EXCLUDES(mu_);
  // Groups, executes (one AcquireAll for the whole batch), and fulfils.
  void DispatchBatch(std::vector<Pending>* batch) EXCLUDES(mu_, stats_mu_);
  // Folds one executed batch of `n` queries into stats_ (one seq point);
  // returns the updated max_batch so callers need not re-lock to read it.
  int64_t CountDispatched(size_t n) EXCLUDES(stats_mu_);
  // True every trace_sample_every-th call (false forever at rate 0).
  bool SampleThisQuery();

  QueryEngine* engine_;
  const ShardedVersionedIndex* index_;
  AdmissionOptions opts_;

  Mutex mu_;
  CondVar cv_;  // dispatcher: pending work / stop
  std::deque<Pending> pending_ GUARDED_BY(mu_);
  bool stop_ GUARDED_BY(mu_) = false;
  Mutex join_mu_;  // serializes concurrent Stop() callers' join

  // All four counters move together under stats_mu_ — stats() is one
  // sequence point, never a torn mix of before/after a dispatch. Lock
  // order where both are held: mu_ then stats_mu_ (Submit counts the
  // admission while still holding mu_, so the dispatcher cannot dispatch
  // a query before it is counted as admitted).
  mutable Mutex stats_mu_ ACQUIRED_AFTER(mu_);
  AdmissionStats stats_ GUARDED_BY(stats_mu_);

  // Registry mirrors of stats_, updated under stats_mu_ so the exported
  // values keep the same invariants as the snapshot accessor (the
  // pointers are set once in the constructor; PT_GUARDED_BY holds their
  // Add/Set calls to the same sequence-point discipline).
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* admitted_ctr_ PT_GUARDED_BY(stats_mu_) = nullptr;
  obs::Counter* dispatched_ctr_ PT_GUARDED_BY(stats_mu_) = nullptr;
  obs::Counter* batches_ctr_ PT_GUARDED_BY(stats_mu_) = nullptr;
  obs::Gauge* max_batch_gauge_ PT_GUARDED_BY(stats_mu_) = nullptr;
  obs::Histogram* latency_hist_ = nullptr;  // sampled end-to-end spans
  obs::TraceJournal* journal_ = nullptr;
  const uint32_t trace_sample_every_;
  std::atomic<uint32_t> sample_tick_{0};
  std::thread dispatcher_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_ADMISSION_H_

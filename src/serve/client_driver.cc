#include "serve/client_driver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <future>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/timer.h"

namespace wazi::serve {
namespace {

// Insert ids must never collide with dataset ids (generators assign
// 0..n-1) or with a previous run against the same ServeLoop.
std::atomic<int64_t> g_next_insert_id{int64_t{1} << 40};

}  // namespace

ClientLoadResult RunClientLoad(ServeLoop& loop, const Workload& workload,
                               const ClientLoadOptions& opts) {
  const int threads = std::max(1, opts.threads);
  std::atomic<int64_t> total_queries{0};
  std::atomic<int64_t> total_writes{0};
  // Clients spin-wait on `start` so the wall clock below covers every
  // counted op: queries issued while later threads were still being
  // spawned used to land outside the timed window and inflate QPS.
  std::atomic<bool> start{false};
  std::atomic<bool> stop{false};
  std::vector<LatencyRecorder> recorders(
      static_cast<size_t>(threads), LatencyRecorder(opts.latency_window));

  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    clients.emplace_back([&, t] {
      LatencyRecorder& rec = recorders[static_cast<size_t>(t)];
      Rng rng(opts.seed + static_cast<uint64_t>(t));
      QueryStats qs;
      size_t qi = static_cast<size_t>(t) * 1337;
      size_t hot_i = static_cast<size_t>(t) * 13;
      const size_t hot_n =
          opts.hot_fraction > 0.0
              ? std::max<size_t>(
                    1, static_cast<size_t>(
                           static_cast<double>(workload.queries.size()) *
                           opts.hot_fraction))
              : 0;
      // Pipelined admission: submitted-but-unresolved queries, oldest
      // first, each paired with its submit-time clock.
      struct InFlight {
        Timer timer;
        std::future<QueryResult> future;
      };
      std::deque<InFlight> in_flight;
      const auto drain_one = [&](int64_t* queries) {
        in_flight.front().future.wait();
        rec.Record(in_flight.front().timer.ElapsedNs());
        in_flight.pop_front();
        ++*queries;
      };
      std::vector<Point> inserted;
      int64_t queries = 0, writes = 0;
      // acquire on start: pairs with the harness's release-store so
      // workers see the set-up; stop is a plain flag (relaxed).
      while (!start.load(std::memory_order_acquire)) {
        if (stop.load(std::memory_order_relaxed)) break;
        std::this_thread::yield();
      }
      while (!stop.load(std::memory_order_relaxed)) {
        const bool write = opts.write_pct > 0 &&
                           static_cast<int>(rng.NextBelow(100)) <
                               opts.write_pct;
        if (write) {
          if (inserted.size() > 64) {
            loop.SubmitRemove(inserted.back());
            inserted.pop_back();
          } else {
            const Rect& reg = opts.insert_region;
            // relaxed: the counter only needs to hand out unique ids.
            Point p{reg.min_x + rng.NextDouble() * (reg.max_x - reg.min_x),
                    reg.min_y + rng.NextDouble() * (reg.max_y - reg.min_y),
                    g_next_insert_id.fetch_add(1, std::memory_order_relaxed)};
            loop.SubmitInsert(p);
            inserted.push_back(p);
          }
          ++writes;
        } else {
          const bool hot =
              hot_n > 0 &&
              static_cast<int>(rng.NextBelow(100)) < opts.hot_pct;
          const Rect& q =
              hot ? workload.queries[hot_i++ % hot_n]
                  : workload.queries[qi++ % workload.queries.size()];
          if (opts.read_hook) opts.read_hook(t, hot, q);
          if (opts.admission_depth > 0) {
            in_flight.push_back(
                InFlight{Timer(), loop.SubmitQuery(QueryRequest::Range(q))});
            // Collect already-resolved futures promptly (FIFO), so the
            // recorded latency tracks submit -> ready instead of
            // charging queue-sitting time while this client was busy
            // submitting; then block on the oldest only once
            // `admission_depth` are in flight, keeping the pipeline
            // primed so the admission window can fill batches from this
            // thread alone.
            while (!in_flight.empty() &&
                   in_flight.front().future.wait_for(
                       std::chrono::seconds(0)) ==
                       std::future_status::ready) {
              drain_one(&queries);
            }
            while (in_flight.size() >=
                   static_cast<size_t>(opts.admission_depth)) {
              drain_one(&queries);
            }
          } else {
            Timer timer;
            loop.Range(q, &qs);
            rec.Record(timer.ElapsedNs());
            ++queries;
          }
        }
      }
      while (!in_flight.empty()) drain_one(&queries);
      // relaxed: totals are only read after the worker threads join.
      total_queries.fetch_add(queries, std::memory_order_relaxed);
      total_writes.fetch_add(writes, std::memory_order_relaxed);
    });
    if (opts.spawn_hook) opts.spawn_hook(t);
  }

  // Clock first, then release the latch: no client issues an op before
  // the wall timer is running.
  Timer wall;
  start.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::microseconds(static_cast<int64_t>(opts.seconds * 1e6)));
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : clients) t.join();

  ClientLoadResult result;
  result.elapsed_seconds = wall.ElapsedSeconds();
  loop.Flush();
  result.queries = total_queries.load();
  result.writes = total_writes.load();
  // Sized to hold every thread's retained window, so merging loses nothing.
  result.latencies =
      LatencyRecorder(opts.latency_window * static_cast<size_t>(threads));
  for (const LatencyRecorder& r : recorders) result.latencies.Merge(r);
  return result;
}

}  // namespace wazi::serve

// Shared client-load driver for the serving benchmarks and the
// `wazi_cli throughput` command: N client threads issue range queries
// (and optionally a write mix) against a ServeLoop for a fixed duration,
// recording per-thread latencies that are merged losslessly at the end.

#ifndef WAZI_SERVE_CLIENT_DRIVER_H_
#define WAZI_SERVE_CLIENT_DRIVER_H_

#include <cstdint>
#include <functional>

#include "serve/latency_recorder.h"
#include "serve/serve_loop.h"

namespace wazi::serve {

struct ClientLoadOptions {
  int threads = 1;
  // Percentage of ops that are writes (alternating inserts and removes of
  // this run's own inserts); 0 = read-only.
  int write_pct = 0;
  double seconds = 1.0;
  // Latency samples retained per client thread (steady-state window).
  size_t latency_window = 1 << 16;
  // Region inserted points are drawn from (uniformly). The default covers
  // the generators' unit square; the repartition benchmark narrows it to a
  // corner to skew the per-shard item counts.
  Rect insert_region = Rect::Of(0.0, 0.0, 1.0, 1.0);
  // Skewed query selection: with probability `hot_pct`% a read re-asks one
  // of the first `hot_fraction` of the workload's queries (round-robin
  // within that hot set) instead of round-robinning the whole workload.
  // 0 keeps the uniform round-robin. The cache benchmark uses 0.1/90 —
  // 90% of reads hit the hottest 10% of rectangles.
  double hot_fraction = 0.0;
  int hot_pct = 90;
  // Pipelined admission: when > 0, reads go through ServeLoop::SubmitQuery
  // with this many queries in flight per client thread. Latency = submit
  // to FIFO collection: resolved futures are collected eagerly each
  // iteration, so it tracks submit -> future-ready (coalescing window
  // included) up to the client's own time between iterations. 0 keeps
  // the direct execute-on-calling-thread path.
  int admission_depth = 0;
  // Base of every per-thread RNG stream (thread t draws from Rng(seed + t)).
  // Two runs with the same seed and thread count issue byte-identical
  // per-thread op streams, so a baseline comparison measures the engine,
  // not the generator. The scenario library forks this from its --seed.
  uint64_t seed = 1000;
  // Test-only: observes every read op on its issuing client thread, with
  // the thread index, whether the hot set supplied the rectangle, and the
  // rectangle itself — the skew-distribution and determinism tests record
  // the stream through this. Leave empty in benchmarks (per-op branch).
  std::function<void(int thread, bool hot, const Rect& rect)> read_hook;
  // Test-only: invoked on the driving thread right after client thread
  // `t` is spawned (before the next spawn). Lets a test stretch the spawn
  // phase and assert that slow spawns cannot inflate the reported QPS —
  // clients gate on a start latch released only once the wall clock runs.
  std::function<void(int)> spawn_hook;
};

struct ClientLoadResult {
  int64_t queries = 0;
  int64_t writes = 0;
  double elapsed_seconds = 0.0;
  // All threads' retained samples (the merged recorder is sized to hold
  // every per-thread window).
  LatencyRecorder latencies{0};
};

// Drives `loop` with opts.threads client threads for opts.seconds. Reads
// walk `workload` round-robin with per-thread offsets and execute on the
// calling thread (the wait-free snapshot path); writes are enqueued to the
// background writer. Inserted points draw globally unique ids from a
// process-wide counter, so repeated runs against one ServeLoop never
// collide. Blocks until the duration elapses, clients join, and pending
// writes are flushed.
ClientLoadResult RunClientLoad(ServeLoop& loop, const Workload& workload,
                               const ClientLoadOptions& opts);

}  // namespace wazi::serve

#endif  // WAZI_SERVE_CLIENT_DRIVER_H_

#include "serve/epoch.h"

#include <cstdio>
#include <cstdlib>
#include <thread>
#include <utility>

namespace wazi::serve {
namespace {

using epoch_detail::kIdle;
using epoch_detail::kMaxSlots;
using epoch_detail::SlotBlock;
using epoch_detail::ThreadRecord;

// Per-thread registry of (domain -> record). Records are unique_ptr-held
// so their addresses stay stable while the vector grows; each record pins
// its slot block via shared_ptr, so claim-release on thread exit is safe
// even if the domain died first.
struct ThreadCache {
  std::vector<std::unique_ptr<ThreadRecord>> records;

  ~ThreadCache() {
    for (const auto& rec : records) {
      // A guard must not outlive its thread; by here depth == 0 and the
      // slot reads kIdle, so recycling the claim is safe.
      rec->block->claimed[static_cast<size_t>(rec->slot_index)].store(
          false, std::memory_order_release);
    }
  }
};

ThreadCache& Cache() {
  static thread_local ThreadCache cache;
  return cache;
}

// One-entry lookaside over Cache(): almost every thread touches exactly
// one domain (the global one), so Enter() usually skips the vector scan.
thread_local ThreadRecord* tls_last_record = nullptr;

uint64_t NextSerial() {
  static std::atomic<uint64_t> counter{0};
  // relaxed: uniqueness is all that matters for domain serials.
  return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace

EpochDomain::EpochDomain()
    : serial_(NextSerial()),
      block_(std::make_shared<epoch_detail::SlotBlock>()) {}

EpochDomain::~EpochDomain() {
  // Readers must have exited their critical sections (guards released);
  // registered-but-idle threads are fine — their claims release against
  // the shared_ptr-kept block, not against this object.
  while (active_readers() > 0) {
    std::this_thread::yield();
  }
  std::vector<LimboEntry> leftovers;
  {
    MutexLock lock(&limbo_mu_);
    leftovers.swap(limbo_);
  }
  for (const LimboEntry& e : leftovers) e.deleter(e.obj);
  // relaxed: statistics counter, no data published through it.
  reclaimed_total_.fetch_add(static_cast<int64_t>(leftovers.size()),
                             std::memory_order_relaxed);
}

EpochDomain& EpochDomain::Global() {
  // Function-local static: destroyed at exit AFTER main's thread_local
  // ThreadCache (per [basic.start.term]), so the final claim-release and
  // the domain's limbo sweep cannot interleave badly — and LeakSanitizer
  // sees an empty limbo.
  static EpochDomain domain;
  return domain;
}

epoch_detail::ThreadRecord* EpochDomain::CachedRecord() const {
  ThreadRecord* rec = tls_last_record;
  if (rec != nullptr && rec->domain_serial == serial_) return rec;
  return nullptr;
}

epoch_detail::ThreadRecord* EpochDomain::RegisterThisThread() {
  ThreadCache& cache = Cache();
  for (const auto& rec : cache.records) {
    if (rec->domain_serial == serial_) {
      tls_last_record = rec.get();
      return rec.get();
    }
  }
  for (int i = 0; i < kMaxSlots; ++i) {
    bool expected = false;
    // acq_rel: winning the claim both publishes our ownership and makes
    // any prior owner's slot release visible to us.
    if (!block_->claimed[static_cast<size_t>(i)].compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      continue;
    }
    // Raise the scan bound to cover this slot (monotonic max). release on
    // success pairs with the scanners' acquire-load of high_water so a
    // covered slot is fully initialized before it is scanned.
    uint32_t hw = block_->high_water.load(std::memory_order_relaxed);
    while (hw < static_cast<uint32_t>(i) + 1 &&
           !block_->high_water.compare_exchange_weak(
               hw, static_cast<uint32_t>(i) + 1,
               std::memory_order_release,  // pairs with scanners' acquire
               std::memory_order_relaxed)) {  // relaxed failure: we retry
    }
    auto rec = std::make_unique<ThreadRecord>();
    rec->block = block_;
    rec->slot = &block_->slots[static_cast<size_t>(i)];
    rec->slot_index = i;
    rec->domain_serial = serial_;
    ThreadRecord* raw = rec.get();
    cache.records.push_back(std::move(rec));
    tls_last_record = raw;
    return raw;
  }
  // More live threads than slots. The serving engine keeps thread counts
  // two orders of magnitude below kMaxSlots; treat exhaustion as a
  // configuration bug rather than silently blocking reclamation.
  std::fprintf(stderr,
               "EpochDomain: out of reader slots (%d live threads)\n",
               kMaxSlots);
  std::abort();
}

void EpochDomain::Retire(void* obj, void (*deleter)(void*)) {
  MutexLock lock(&limbo_mu_);
  // Tag with the PRE-increment epoch: every reader stamped <= this value
  // may hold the pointer; readers entering after the bump stamp a larger
  // epoch and can only see the successor object. seq_cst: the bump must
  // be totally ordered against every reader's Enter() stamp — with weaker
  // orders a reader could stamp the old epoch after the retirer decided
  // no such reader exists (the classic epoch-reclamation race).
  const uint64_t e = global_epoch_.fetch_add(1, std::memory_order_seq_cst);
  limbo_.push_back(LimboEntry{obj, deleter, e});
  retired_total_.fetch_add(1, std::memory_order_relaxed);  // statistic
}

uint64_t EpochDomain::min_active_epoch() const {
  // acquire on high_water: slots below the bound are initialized (pairs
  // with the claimer's release CAS). seq_cst on the slot epochs: the scan
  // must order against Enter()'s seq_cst stamp and Retire()'s seq_cst
  // bump, or a stamped reader could be missed and its object freed.
  const uint32_t hw = block_->high_water.load(std::memory_order_acquire);
  uint64_t min = UINT64_MAX;
  for (uint32_t i = 0; i < hw; ++i) {
    const uint64_t e = block_->slots[i].epoch.load(std::memory_order_seq_cst);
    if (e != kIdle && e < min) min = e;
  }
  return min;
}

int EpochDomain::active_readers() const {
  // Same ordering as min_active_epoch (this is the same scan, counting).
  const uint32_t hw = block_->high_water.load(std::memory_order_acquire);
  int n = 0;
  for (uint32_t i = 0; i < hw; ++i) {
    if (block_->slots[i].epoch.load(std::memory_order_seq_cst) != kIdle) ++n;
  }
  return n;
}

size_t EpochDomain::limbo_size() const {
  MutexLock lock(&limbo_mu_);
  return limbo_.size();
}

size_t EpochDomain::Reclaim() {
  std::vector<LimboEntry> free_now;
  {
    MutexLock lock(&limbo_mu_);
    if (limbo_.empty()) return 0;
    // The slot scan happens while holding limbo_mu_, after the Retire
    // that parked each candidate released it: the mutex ordering puts
    // every candidate's retire increment before these seq_cst loads, so
    // the safety argument in the header applies even when the reclaiming
    // thread is not the retiring thread.
    const uint64_t min = min_active_epoch();
    size_t keep = 0;
    for (size_t i = 0; i < limbo_.size(); ++i) {
      if (limbo_[i].epoch < min) {
        free_now.push_back(limbo_[i]);
      } else {
        limbo_[keep++] = limbo_[i];
      }
    }
    limbo_.resize(keep);
  }
  for (const LimboEntry& e : free_now) e.deleter(e.obj);
  // relaxed: statistics counter, no data published through it.
  reclaimed_total_.fetch_add(static_cast<int64_t>(free_now.size()),
                             std::memory_order_relaxed);
  return free_now.size();
}

}  // namespace wazi::serve

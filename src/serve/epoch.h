// Epoch-based reclamation for the serving engine's read path.
//
// The refcounted snapshot scheme (atomic<shared_ptr>) charges every
// Acquire/Release a pair of contended RMWs on the control block — one
// cache line ping-ponging across every reader core. Epoch reclamation
// moves that cost to memory the reader owns: on Acquire a reader stamps
// the current global epoch into its OWN cache-line-padded slot (a plain
// store), and clears it on release. Writers never block readers; retiring
// a snapshot appends it to a limbo list tagged with the epoch at retire
// time and bumps the global epoch. A limbo entry is freed once every
// stamped slot has moved past its retire epoch — at that point no reader
// can still have observed the retired pointer.
//
// Memory-order protocol (all seq_cst on the hot ops, which keeps the
// argument short and TSan-checkable):
//
//   reader:  slot.store(E)        ;  p = live.load()
//   writer:  live.store(new)      ;  R = global.fetch_add(1)  (retire old @ R)
//   reaper:  scan slots, min M    ;  free entries with epoch < M
//
// If a reader loaded the OLD pointer, its slot store precedes the
// writer's live store in the seq_cst total order, hence precedes the
// retire increment, hence the reader's stamp E <= R — so the scan's
// minimum M <= E <= R and the entry (epoch R) is not freed while the
// reader is stamped. Slot-clear on release is a release store; a reaper
// that reads the cleared slot knows the reader finished every access.
//
// Threads register lazily (thread_local cache) and claim one padded slot
// per domain for their lifetime; slots recycle on thread exit. Nested
// Enter() calls on one thread share the outermost stamp via a depth
// counter, so a query that acquires two shards from one topology pins
// one epoch, not two.

#ifndef WAZI_SERVE_EPOCH_H_
#define WAZI_SERVE_EPOCH_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"

namespace wazi::serve {

class EpochDomain;

namespace epoch_detail {

inline constexpr int kMaxSlots = 256;
inline constexpr uint64_t kIdle = 0;  // slot value: not inside a section

struct alignas(64) Slot {
  std::atomic<uint64_t> epoch{kIdle};
};

// Slot storage is shared_ptr-owned so a thread that outlives the domain
// (or a domain that outlives a registered-but-idle thread) never touches
// freed memory when it clears its claim.
struct SlotBlock {
  std::array<Slot, kMaxSlots> slots;
  std::array<std::atomic<bool>, kMaxSlots> claimed{};
  // Upper bound of ever-claimed slots: reapers scan [0, high_water).
  std::atomic<uint32_t> high_water{0};
};

// One thread's registration with one domain. Owned by a thread_local
// cache; `depth` is only touched by the owning thread.
struct ThreadRecord {
  std::shared_ptr<SlotBlock> block;
  Slot* slot = nullptr;
  int slot_index = -1;
  uint64_t domain_serial = 0;
  uint32_t depth = 0;
};

}  // namespace epoch_detail

// A reclamation domain: one global epoch, one slot block, one limbo list.
// Multiple VersionedIndexes share a domain (the process-wide Global() by
// default), so a reader pins every shard's retired snapshots with one
// stamp. Tests construct private domains for exact accounting.
class EpochDomain {
 public:
  EpochDomain();
  // Blocks until no reader is stamped, then frees everything in limbo.
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  // Process-wide default domain (function-local static: constructed on
  // first use, destroyed at exit after main's thread_local cleanup).
  static EpochDomain& Global();

  // Movable guard for one read-side critical section. Destruction (or
  // Release) clears the thread's stamp once the outermost guard goes.
  // Thread-bound: must be released on the thread that entered.
  class Guard {
   public:
    Guard() = default;
    explicit Guard(epoch_detail::ThreadRecord* rec) : rec_(rec) {}
    Guard(Guard&& other) noexcept : rec_(other.rec_) { other.rec_ = nullptr; }
    Guard& operator=(Guard&& other) noexcept {
      if (this != &other) {
        Release();
        rec_ = other.rec_;
        other.rec_ = nullptr;
      }
      return *this;
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;
    ~Guard() { Release(); }

    void Release() {
      if (rec_ == nullptr) return;
      if (--rec_->depth == 0) {
        // release: everything this reader did inside the critical section
        // happens-before a reclaimer that observes the slot idle.
        rec_->slot->epoch.store(epoch_detail::kIdle,
                                std::memory_order_release);
      }
      rec_ = nullptr;
    }

    explicit operator bool() const { return rec_ != nullptr; }

   private:
    epoch_detail::ThreadRecord* rec_ = nullptr;
  };

  // Enters a read-side critical section: stamps this thread's slot with
  // the current global epoch (outermost entry only). The caller must load
  // the shared pointer AFTER Enter() returns.
  Guard Enter() {
    epoch_detail::ThreadRecord* rec = CachedRecord();
    if (rec == nullptr) rec = RegisterThisThread();
    if (rec->depth++ == 0) {
      // seq_cst on both the epoch load and the slot stamp: the stamp must
      // be totally ordered against Retire()'s epoch bump and the
      // reclaimer's slot scan — with weaker orders the scan could miss
      // this reader's stamp and free an object it is about to load.
      const uint64_t e = global_epoch_.load(std::memory_order_seq_cst);
      rec->slot->epoch.store(e, std::memory_order_seq_cst);
    }
    return Guard(rec);
  }

  // Parks `obj` on the limbo list, tagged with the pre-increment global
  // epoch. The deleter runs (from Reclaim, the destructor, or a later
  // Retire's amortized sweep) once no stamped reader can reach it.
  // Callable from any thread.
  void Retire(void* obj, void (*deleter)(void*)) EXCLUDES(limbo_mu_);

  template <typename T>
  void Retire(std::unique_ptr<T> obj) {
    Retire(const_cast<void*>(static_cast<const void*>(obj.release())),
           [](void* p) { delete static_cast<T*>(const_cast<void*>(
               static_cast<const void*>(p))); });
  }

  // Frees every limbo entry whose retire epoch every stamped reader has
  // passed. Returns the number freed. Any thread; deleters run outside
  // the limbo lock.
  size_t Reclaim() EXCLUDES(limbo_mu_);

  // --- introspection (tests, observability) ---

  uint64_t global_epoch() const {
    return global_epoch_.load(std::memory_order_seq_cst);
  }
  // Minimum stamped epoch across registered threads; UINT64_MAX when no
  // reader is inside a critical section.
  uint64_t min_active_epoch() const;
  int active_readers() const;
  size_t limbo_size() const EXCLUDES(limbo_mu_);
  // relaxed: statistics accessors, no data published through them.
  int64_t retired_total() const {
    return retired_total_.load(std::memory_order_relaxed);
  }
  int64_t reclaimed_total() const {
    return reclaimed_total_.load(std::memory_order_relaxed);
  }

 private:
  struct LimboEntry {
    void* obj;
    void (*deleter)(void*);
    uint64_t epoch;
  };

  // Fast path: the record this thread last used for this domain.
  epoch_detail::ThreadRecord* CachedRecord() const;
  // Slow path: find or create this thread's record (claims a slot).
  epoch_detail::ThreadRecord* RegisterThisThread();

  const uint64_t serial_;  // distinguishes domains in the thread cache
  std::shared_ptr<epoch_detail::SlotBlock> block_;
  // Starts at 1: kIdle (0) is reserved for "not in a section".
  std::atomic<uint64_t> global_epoch_{1};

  mutable Mutex limbo_mu_;
  std::vector<LimboEntry> limbo_ GUARDED_BY(limbo_mu_);
  std::atomic<int64_t> retired_total_{0};
  std::atomic<int64_t> reclaimed_total_{0};
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_EPOCH_H_

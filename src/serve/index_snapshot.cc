#include "serve/index_snapshot.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace wazi::serve {

VersionedIndex::VersionedIndex(IndexFactory factory, const Dataset& data,
                               const Workload& workload,
                               const BuildOptions& build_opts,
                               VersionedIndexOptions opts)
    : factory_(std::move(factory)),
      build_opts_(build_opts),
      opts_(opts),
      domain_(data.bounds),
      data_(data),
      last_workload_(workload) {
  pos_by_id_.reserve(data_.points.size());
  for (size_t i = 0; i < data_.points.size(); ++i) {
    pos_by_id_[data_.points[i].id] = i;
  }
  // relaxed: single-threaded construction; the count is a statistic.
  num_points_.store(data_.points.size(), std::memory_order_relaxed);
  epoch_domain_ = opts_.epoch_domain != nullptr ? opts_.epoch_domain
                                          : &EpochDomain::Global();
  for (int s = 0; s < 2; ++s) {
    inst_[s] = factory_();
    inst_[s]->Build(data_, last_workload_, build_opts_);
    drained_[s] = std::make_shared<std::atomic<bool>>(true);
  }
  supports_updates_ = inst_[0]->SupportsUpdates();
  live_slot_ = 1;   // so the first publish flips to slot 0
  PublishShadow();  // version 1 goes live on inst_[0]
  // Both instances were built from the same data, so the unpublished one
  // is just as current as the published one.
  applied_through_[1] = version_.load(std::memory_order_relaxed);
}

VersionedIndex::~VersionedIndex() {
  // Non-blocking teardown: everything a stamped reader could still reach
  // — the live snapshot, both instances, any copy-on-stall zombies —
  // retires to the epoch domain's limbo instead of spin-waiting for
  // drains here. Retire order puts each snapshot at a lower epoch than
  // the instance it wraps, so a reader pinning a snapshot transitively
  // pins the instance. ~IndexSnapshot touches only its own members (drain
  // flag, points copy), never the instance, so intra-Reclaim deletion
  // order is irrelevant. This lets the last reader of a retired topology
  // drop a whole shard generation without deadlocking on its own guard.
  const IndexSnapshot* live = live_.exchange(nullptr, std::memory_order_seq_cst);
  if (live != nullptr) {
    epoch_domain_->Retire(std::unique_ptr<const IndexSnapshot>(live));
  }
  for (int s = 0; s < 2; ++s) {
    epoch_domain_->Retire(std::move(inst_[s]));
  }
  for (ZombieInstance& z : zombies_) {
    epoch_domain_->Retire(std::move(z.index));
  }
  if (opts_.zombie_gauge != nullptr && !zombies_.empty()) {
    opts_.zombie_gauge->Add(-static_cast<int64_t>(zombies_.size()));
  }
  // Free whatever is already unreachable so short-lived indexes (tests,
  // benches) do not pile limbo onto the global domain.
  epoch_domain_->Reclaim();
}

void VersionedIndex::ApplyBatch(const std::vector<UpdateOp>& ops) {
  if (ops.empty()) return;
  const std::vector<UpdateOp> effective = SanitizeOps(ops);
  if (effective.empty()) return;
  SpatialIndex* shadow = AcquireShadow();  // current through version()
  ApplyToData(effective);
  if (supports_updates_) {
    ApplyToInstance(shadow, effective);
    // relaxed: version_ is only ever written by this (single) writer
    // thread, so its own read needs no ordering.
    recent_batches_.emplace_back(version_.load(std::memory_order_relaxed) + 1,
                                 effective);
  } else {
    // Static index: re-level the shadow from the authoritative point set.
    shadow->Build(data_, last_workload_, build_opts_);
  }
  PublishShadow();
}

std::vector<UpdateOp> VersionedIndex::SanitizeOps(
    const std::vector<UpdateOp>& ops) {
  // The authoritative set removes by id while index instances remove by
  // coordinates, so ops that would make those two paths diverge — inserts
  // of an id that is already live, removes of an absent id, removes whose
  // coordinates do not match the stored point — are dropped up front.
  // `pending` tracks ids inserted/removed earlier in this same batch.
  std::vector<UpdateOp> effective;
  effective.reserve(ops.size());
  std::unordered_map<int64_t, const Point*> pending;
  for (const UpdateOp& op : ops) {
    const int64_t id = op.point.id;
    const Point* stored = nullptr;
    auto pending_it = pending.find(id);
    if (pending_it != pending.end()) {
      stored = pending_it->second;  // nullptr = removed earlier in batch
    } else {
      auto it = pos_by_id_.find(id);
      if (it != pos_by_id_.end()) stored = &data_.points[it->second];
    }
    if (op.kind == UpdateOp::Kind::kInsert) {
      if (stored != nullptr) continue;  // duplicate id
      pending[id] = &op.point;
    } else {
      if (stored == nullptr || stored->x != op.point.x ||
          stored->y != op.point.y) {
        continue;  // absent id or stale coordinates
      }
      pending[id] = nullptr;
    }
    effective.push_back(op);
  }
  return effective;
}

void VersionedIndex::Rebuild(const Workload& workload) {
  last_workload_ = workload;
  SpatialIndex* shadow = AcquireShadow(/*catch_up=*/false);
  shadow->Build(data_, last_workload_, build_opts_);
  // A rebuild supersedes every batch: the other instance re-levels from
  // data_ on its next acquisition instead of replaying.
  last_rebuild_version_ = version_.load(std::memory_order_relaxed) + 1;
  recent_batches_.clear();
  PublishShadow();
}

SpatialIndex* VersionedIndex::AcquireShadow(bool catch_up) {
  ReapRetired();
  const int shadow_slot = 1 - live_slot_;
  // Wait until the last snapshot wrapping this instance has drained. The
  // snapshot destructor's release-store pairs with this acquire-load, so
  // every reader access happens-before the mutations that follow. That
  // destructor runs from epoch reclamation, so the loop pumps Reclaim():
  // the flag flips on the first pump after the last stamped reader moves
  // on. Bounded by the longest in-flight query — or, when writer_stall_ms
  // is set, by that deadline: a reader parking a snapshot past it
  // triggers the copy-on-stall fallback below instead of stalling the
  // writer (and any migration capture waiting on it) indefinitely.
  const bool bounded = opts_.writer_stall_ms > 0;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(bounded ? opts_.writer_stall_ms : 0);
  bool stalled = false;
  // acquire: pairs with the snapshot destructor's release-store on the
  // drain flag — a true read means the last reader is provably gone and
  // the instance is safe to mutate.
  while (!drained_[shadow_slot]->load(std::memory_order_acquire)) {
    epoch_domain_->Reclaim();
    if (drained_[shadow_slot]->load(std::memory_order_acquire)) break;
    if (bounded && std::chrono::steady_clock::now() >= deadline) {
      stalled = true;
      break;
    }
    std::this_thread::yield();
  }
  if (stalled) {
    // The parked instance stays readable for whoever still holds its
    // snapshot; it is destroyed once that snapshot drains. A fresh
    // instance takes the slot, current through data_ (so no catch-up
    // replay is needed) — unless the caller is about to rebuild it
    // anyway.
    zombies_.push_back(ZombieInstance{std::move(inst_[shadow_slot]),
                                      std::move(drained_[shadow_slot])});
    inst_[shadow_slot] = factory_();
    drained_[shadow_slot] = std::make_shared<std::atomic<bool>>(true);
    // Static index types and catch_up == false callers rebuild from data_
    // next anyway; skip the interim build for those.
    if (catch_up && supports_updates_) {
      inst_[shadow_slot]->Build(data_, last_workload_, build_opts_);
    }
    // relaxed: single-writer read of our own version counter.
    applied_through_[shadow_slot] = version_.load(std::memory_order_relaxed);
    const uint64_t stalled_min =
        std::min(applied_through_[0], applied_through_[1]);
    while (!recent_batches_.empty() &&
           recent_batches_.front().first <= stalled_min) {
      recent_batches_.pop_front();
    }
    stall_copies_.fetch_add(1, std::memory_order_relaxed);  // statistic
    if (opts_.stall_counter != nullptr) opts_.stall_counter->Add(1);
    if (opts_.zombie_gauge != nullptr) opts_.zombie_gauge->Add(1);
    if (opts_.journal != nullptr) {
      opts_.journal->Record(obs::TraceEventKind::kStallCopy, opts_.epoch,
                            opts_.shard_id,
                            static_cast<int64_t>(zombies_.size()));
    }
    return inst_[shadow_slot].get();
  }
  SpatialIndex* index = inst_[shadow_slot].get();
  if (!catch_up || !supports_updates_) return index;

  // relaxed: single-writer read of our own version counter.
  const uint64_t cur = version_.load(std::memory_order_relaxed);
  if (applied_through_[shadow_slot] < last_rebuild_version_) {
    // Missed a rebuild; replaying ops would restore content but not the
    // re-optimized layout, so re-level from the authoritative set.
    index->Build(data_, last_workload_, build_opts_);
  } else {
    for (const auto& [version, ops] : recent_batches_) {
      if (version > applied_through_[shadow_slot]) {
        ApplyToInstance(index, ops);
      }
    }
  }
  applied_through_[shadow_slot] = cur;
  const uint64_t min_applied =
      std::min(applied_through_[0], applied_through_[1]);
  while (!recent_batches_.empty() &&
         recent_batches_.front().first <= min_applied) {
    recent_batches_.pop_front();
  }
  return index;
}

void VersionedIndex::ReapZombies() {
  const size_t before = zombies_.size();
  zombies_.erase(
      std::remove_if(zombies_.begin(), zombies_.end(),
                     [](const ZombieInstance& z) {
                       // acquire: pairs with the drain flag's release —
                       // true means the last reader has let go.
                       return z.drained->load(std::memory_order_acquire);
                     }),
      zombies_.end());
  const size_t reaped = before - zombies_.size();
  if (reaped > 0 && opts_.zombie_gauge != nullptr) {
    opts_.zombie_gauge->Add(-static_cast<int64_t>(reaped));
  }
}

void VersionedIndex::PublishShadow() {
  const int shadow_slot = 1 - live_slot_;
  // relaxed: single-writer read of our own version counter.
  const uint64_t v = version_.load(std::memory_order_relaxed) + 1;
  std::shared_ptr<const std::vector<Point>> pts;
  if (opts_.track_points) {
    pts = std::make_shared<const std::vector<Point>>(data_.points);
  }
  // relaxed: the flag reset is published by the seq_cst exchange below —
  // no reader can reach this snapshot before that swap.
  drained_[shadow_slot]->store(false, std::memory_order_relaxed);
  auto snap = std::make_unique<const IndexSnapshot>(
      inst_[shadow_slot].get(), v, std::move(pts), drained_[shadow_slot]);
  applied_through_[shadow_slot] = v;
  // release: version() readers that observe v also observe the applied
  // batches (paired with their acquire load).
  version_.store(v, std::memory_order_release);
  // The swap: readers Acquire() the new snapshot from here on. The old
  // snapshot parks in the domain's limbo at an epoch no later than any
  // stamp that could have observed it; reclamation destroys it (flipping
  // its drain flag) once every such reader has released. seq_cst: the
  // exchange must be totally ordered against readers' epoch stamps (see
  // the protocol in serve/epoch.h) — weaker orders could free a snapshot
  // a stamped reader is about to load.
  const IndexSnapshot* old =
      live_.exchange(snap.release(), std::memory_order_seq_cst);
  if (old != nullptr) {
    epoch_domain_->Retire(std::unique_ptr<const IndexSnapshot>(old));
  }
  live_slot_ = shadow_slot;
  if (opts_.publish_counter != nullptr) opts_.publish_counter->Add(1);
  if (opts_.journal != nullptr) {
    opts_.journal->Record(obs::TraceEventKind::kSnapshotSwap, opts_.epoch,
                          opts_.shard_id, static_cast<int64_t>(v));
  }
}

void VersionedIndex::ApplyToData(const std::vector<UpdateOp>& ops) {
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      pos_by_id_[op.point.id] = data_.points.size();
      data_.points.push_back(op.point);
    } else {
      auto it = pos_by_id_.find(op.point.id);
      if (it == pos_by_id_.end()) continue;
      const size_t pos = it->second;
      pos_by_id_.erase(it);
      if (pos + 1 != data_.points.size()) {
        data_.points[pos] = data_.points.back();
        pos_by_id_[data_.points[pos].id] = pos;
      }
      data_.points.pop_back();
    }
  }
  // relaxed: num_points_ is a statistic read by observers; no data is
  // published through it.
  num_points_.store(data_.points.size(), std::memory_order_relaxed);
}

void VersionedIndex::ApplyToInstance(SpatialIndex* index,
                                     const std::vector<UpdateOp>& ops) {
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateOp::Kind::kInsert) {
      index->Insert(op.point);
    } else {
      index->Remove(op.point);
    }
  }
}

}  // namespace wazi::serve

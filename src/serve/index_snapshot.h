// Snapshot-swapped index versioning: the concurrency backbone of the
// serving engine.
//
// A VersionedIndex owns two instances of one index type built over the
// same data (a left-right pair). Exactly one instance is published at a
// time, wrapped in an immutable IndexSnapshot behind an atomic raw
// pointer. Readers call Acquire() and run any number of queries on the
// snapshot without further synchronization — the query path of
// SpatialIndex is const and takes explicit QueryStats, so concurrent reads
// are data-race free. Snapshot lifetime is epoch-based (serve/epoch.h):
// Acquire stamps the reader's per-thread epoch slot (a store to memory the
// reader owns — no contended refcount), and a superseded snapshot parks on
// the domain's limbo list until every stamped reader has moved past its
// retire epoch.
//
// A single writer applies batched Insert/Remove ops to the *unpublished*
// instance, publishes it with a new version, and lets the previous
// snapshot drain. Drain is signalled by the retired snapshot's destructor
// (release-store on a drain flag observed with an acquire-load by the
// writer), which now runs from epoch reclamation instead of a refcount
// hitting zero, so the writer never mutates an instance a reader could
// still be scanning — and the synchronization is explicit enough for
// ThreadSanitizer to verify. Indexes that do not support updates
// (SupportsUpdates() == false) fall back to a full rebuild of the shadow
// instance from the authoritative point set.
//
// Writer backpressure is bounded: a reader that PARKS a snapshot (holds
// it across many queries, or indefinitely) blocks the writer's next
// publish only up to `writer_stall_ms`. Past that deadline the writer
// stops waiting, retires the parked instance to a zombie list (readers
// keep scanning it untouched; it is destroyed once its snapshot finally
// drains) and builds a fresh replacement instance from the authoritative
// point set — copy-on-stall. The stall therefore costs one O(shard)
// build instead of unbounded writer (and migration-capture) delay.

#ifndef WAZI_SERVE_INDEX_SNAPSHOT_H_
#define WAZI_SERVE_INDEX_SNAPSHOT_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "index/spatial_index.h"
#include "obs/metrics.h"
#include "obs/trace_journal.h"
#include "serve/epoch.h"
#include "workload/dataset.h"

// ThreadSanitizer cannot see through the lock-bit protocol inside
// libstdc++'s std::atomic<std::shared_ptr> (plain pointer accesses guarded
// by an embedded spin bit), so sanitizer builds swap the publication slot's
// primitive for a mutex with identical semantics.
#if defined(__SANITIZE_THREAD__)
#define WAZI_SERVE_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define WAZI_SERVE_TSAN 1
#endif
#endif
#ifndef WAZI_SERVE_TSAN
#define WAZI_SERVE_TSAN 0
#endif

#if WAZI_SERVE_TSAN
#include <mutex>
#endif

namespace wazi::serve {

// Creates an (unbuilt) instance of the index type being served.
using IndexFactory = std::function<std::unique_ptr<SpatialIndex>()>;

struct UpdateOp {
  enum class Kind { kInsert, kRemove };
  Kind kind = Kind::kInsert;
  Point point;

  static UpdateOp Insert(const Point& p) { return {Kind::kInsert, p}; }
  static UpdateOp Remove(const Point& p) { return {Kind::kRemove, p}; }
};

// Drain token shared between a snapshot and the instance it wraps: the
// snapshot's destructor release-stores true; the writer acquire-loads it
// before mutating (or destroying) the instance. shared_ptr-owned so a
// copy-on-stall retirement can hand the token to the zombie instance
// without the flag's storage moving under the parked snapshot.
using DrainFlag = std::shared_ptr<std::atomic<bool>>;

// One published index version. Immutable; any thread holding a
// SnapshotRef to it may query `index()` concurrently with all others.
class IndexSnapshot {
 public:
  IndexSnapshot(const SpatialIndex* index, uint64_t version,
                std::shared_ptr<const std::vector<Point>> points,
                DrainFlag drained)
      : index_(index),
        version_(version),
        points_(std::move(points)),
        drained_(std::move(drained)) {}

  ~IndexSnapshot() {
    // Runs from epoch reclamation once no stamped reader can still reach
    // the snapshot; tells the writer the wrapped instance is safe to
    // mutate again.
    if (drained_ != nullptr) drained_->store(true, std::memory_order_release);
  }

  IndexSnapshot(const IndexSnapshot&) = delete;
  IndexSnapshot& operator=(const IndexSnapshot&) = delete;

  const SpatialIndex& index() const { return *index_; }
  uint64_t version() const { return version_; }

  // The exact point membership this snapshot serves. Null unless the
  // owning VersionedIndex was configured with track_points (used by the
  // concurrent stress test to verify results against brute force).
  const std::shared_ptr<const std::vector<Point>>& points() const {
    return points_;
  }

 private:
  const SpatialIndex* index_;
  uint64_t version_;
  std::shared_ptr<const std::vector<Point>> points_;
  DrainFlag drained_;
};

// A reader's lease on one published snapshot: a raw pointer kept alive by
// the epoch Guard riding along, shaped like the shared_ptr it replaced so
// call sites (`snap->index()`, `if (snap)`) read the same. Thread-bound
// and move-only — acquire, query, and release on one thread; hold per
// query block, don't park (a parked ref triggers the writer's
// copy-on-stall fallback, exactly as a parked shared_ptr did).
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(const IndexSnapshot* snap, EpochDomain::Guard guard)
      : snap_(snap), guard_(std::move(guard)) {}
  SnapshotRef(SnapshotRef&&) noexcept = default;
  SnapshotRef& operator=(SnapshotRef&&) noexcept = default;
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;

  const IndexSnapshot* get() const { return snap_; }
  const IndexSnapshot* operator->() const { return snap_; }
  const IndexSnapshot& operator*() const { return *snap_; }
  explicit operator bool() const { return snap_ != nullptr; }

  void Release() {
    snap_ = nullptr;
    guard_.Release();
  }
  // shared_ptr-style spelling, so call sites written against the old
  // refcounted Acquire() keep reading naturally.
  void reset() { Release(); }

 private:
  const IndexSnapshot* snap_ = nullptr;
  EpochDomain::Guard guard_;
};

// A publication slot: one writer stores, many readers load. Lock-free
// atomic<shared_ptr> in production builds; a mutex under TSan (see above).
// Used for the serving engine's topology level (ShardedVersionedIndex
// publishes a ShardTopology through one); the per-shard snapshot level
// publishes through a plain atomic pointer under epoch reclamation.
template <typename T>
class AtomicCell {
 public:
  std::shared_ptr<T> Load() const {
#if WAZI_SERVE_TSAN
    wazi::MutexLock lock(&mu_);
    return ptr_;
#else
    // acquire: pairs with Store's release so a reader that sees the new
    // pointer also sees the pointee fully constructed.
    return ptr_.load(std::memory_order_acquire);
#endif
  }

  void Store(std::shared_ptr<T> value) {
#if WAZI_SERVE_TSAN
    std::shared_ptr<T> old;  // destroy outside the lock
    {
      wazi::MutexLock lock(&mu_);
      old.swap(ptr_);
      ptr_ = std::move(value);
    }
#else
    // release: publishes the fully built value to acquire-loads above.
    ptr_.store(std::move(value), std::memory_order_release);
#endif
  }

 private:
#if WAZI_SERVE_TSAN
  mutable wazi::Mutex mu_;
  std::shared_ptr<T> ptr_ GUARDED_BY(mu_);
#else
  std::atomic<std::shared_ptr<T>> ptr_;
#endif
};

struct VersionedIndexOptions {
  // When true, every snapshot carries an immutable copy of the point set
  // it serves (O(n) copy per publish — testing/verification only).
  bool track_points = false;
  // Copy-on-stall deadline: how long the writer waits for a retired
  // snapshot to drain before it stops waiting, retires the parked
  // instance (readers keep it until their snapshot releases) and builds a
  // fresh replacement from the authoritative point set. Bounds the writer
  // stall a parked reader can cause — including a migration's capture
  // phase — at the price of an O(shard) build per fallback. <= 0 waits
  // forever (the pre-fallback behaviour).
  int writer_stall_ms = 250;
  // Registry-backed observability handles (obs/metrics.h), all optional:
  // nullptr simply skips the publication (standalone / test construction
  // stays dependency-free). ServeLoop wires every shard of every
  // generation to ITS registry handles, so the counters aggregate across
  // shards and survive migrations.
  obs::Counter* stall_counter = nullptr;     // copy-on-stall fallbacks
  obs::Counter* publish_counter = nullptr;   // snapshot publishes (swaps)
  obs::Gauge* zombie_gauge = nullptr;        // instances parked as zombies
  // When set, snapshot swaps / stall retirements are journaled with this
  // shard attribution (the shard id and topology epoch the VersionedIndex
  // was born into — carried shards keep their birth attribution).
  obs::TraceJournal* journal = nullptr;
  int shard_id = -1;
  uint64_t epoch = 0;
  // Reclamation domain for retired snapshots/instances. Defaults to the
  // process-wide EpochDomain::Global(); tests inject a private domain for
  // exact limbo accounting.
  EpochDomain* epoch_domain = nullptr;
};

// Thread-safety contract: Acquire()/version() from any thread; everything
// else (ApplyBatch, Rebuild, data accessors) from ONE writer thread. No
// new Acquire() may race destruction, but destruction no longer waits for
// outstanding refs: the live snapshot, both instances, and any zombies
// retire to the epoch domain's limbo, which frees them once the last
// stamped reader moves on.
class VersionedIndex {
 public:
  VersionedIndex(IndexFactory factory, const Dataset& data,
                 const Workload& workload, const BuildOptions& build_opts,
                 VersionedIndexOptions opts = {});
  ~VersionedIndex();

  VersionedIndex(const VersionedIndex&) = delete;
  VersionedIndex& operator=(const VersionedIndex&) = delete;

  // Wait-free on the reader's side of the swap: one store to the reader's
  // own padded epoch slot plus one atomic pointer load — no shared
  // refcount RMW. The stamp must land before the pointer load (see
  // serve/epoch.h for the ordering argument).
  SnapshotRef Acquire() const {
    EpochDomain::Guard guard = epoch_domain_->Enter();
    return SnapshotRef(live_.load(std::memory_order_seq_cst),
                       std::move(guard));
  }

  // acquire: pairs with PublishShadow's release-store, so a reader that
  // observes version v also observes the batches applied up to v.
  uint64_t version() const { return version_.load(std::memory_order_acquire); }

  // Query-domain rectangle (immutable after construction; safe anywhere).
  const Rect& domain() const { return domain_; }

  // --- single-writer API ---

  // Applies `ops` to the authoritative point set and the shadow instance,
  // then publishes the shadow as the new live snapshot. Blocks until the
  // snapshot that previously wrapped the shadow instance has drained —
  // writer backpressure bounded by the longest reader-held snapshot, so
  // readers must hold snapshots per query (or query block), not park them.
  void ApplyBatch(const std::vector<UpdateOp>& ops);

  // Rebuilds the shadow instance from the authoritative point set against
  // `workload` (the drift-triggered re-optimization path) and publishes it.
  void Rebuild(const Workload& workload);

  // Point count of the authoritative set, readable from ANY thread (an
  // atomic mirror updated by the writer after each batch): exact once the
  // writer is quiesced, at most one batch stale while it streams. The
  // repartition monitor samples this for per-shard item counts.
  size_t num_points() const {
    return num_points_.load(std::memory_order_relaxed);
  }
  // Copy-on-stall fallbacks taken by this shard's writer (any thread).
  int64_t stall_copies() const {
    return stall_copies_.load(std::memory_order_relaxed);
  }
  // Pumps the epoch domain (freeing reclaimable limbo snapshots, which
  // flips their drain flags) and then frees instances retired by
  // copy-on-stall whose parked snapshot has since drained. Runs
  // automatically before every batch/rebuild; call it from the writer's
  // idle wake-ups too, or a fallback taken on a shard that then goes idle
  // would hold its O(shard) duplicate until destruction. Writer thread
  // only. Cheap when there is nothing to do.
  void ReapRetired() {
    epoch_domain_->Reclaim();
    ReapZombies();
  }
  // The reclamation domain this index retires into.
  EpochDomain* epoch_domain() const { return epoch_domain_; }
  // Authoritative state, writer thread only.
  const Dataset& data() const { return data_; }

 private:
  // An instance retired by copy-on-stall: destroyed (writer thread) once
  // its snapshot's drain flag flips.
  struct ZombieInstance {
    std::unique_ptr<SpatialIndex> index;
    DrainFlag drained;
  };
  // Waits (up to opts_.writer_stall_ms) for the shadow instance's last
  // snapshot to drain, then brings the instance up to date with every
  // batch it missed (or rebuilds it outright if a rebuild superseded
  // those batches). On a stall timeout the parked instance moves to
  // zombies_ and a fresh instance takes the slot (built from data_ unless
  // catch_up is false — then the caller builds it). Pass catch_up = false
  // when the caller rebuilds the instance from data_ anyway.
  SpatialIndex* AcquireShadow(bool catch_up = true);
  // Destroys every retired instance whose snapshot has drained.
  void ReapZombies();
  // Wraps the shadow in a new snapshot and swaps it live.
  void PublishShadow();
  // Drops ops that would desynchronize the id-keyed authoritative set from
  // the coordinate-keyed index instances: duplicate-id inserts, removes of
  // absent ids, removes with stale coordinates.
  std::vector<UpdateOp> SanitizeOps(const std::vector<UpdateOp>& ops);
  // Applies ops to the authoritative point set (id-keyed removal).
  void ApplyToData(const std::vector<UpdateOp>& ops);
  static void ApplyToInstance(SpatialIndex* index,
                              const std::vector<UpdateOp>& ops);

  IndexFactory factory_;
  BuildOptions build_opts_;
  VersionedIndexOptions opts_;
  Rect domain_;

  Dataset data_;             // authoritative point set
  Workload last_workload_;   // workload of the most recent (re)build
  std::unordered_map<int64_t, size_t> pos_by_id_;  // id -> index in data_

  std::unique_ptr<SpatialIndex> inst_[2];
  DrainFlag drained_[2];  // instance safe to mutate again
  uint64_t applied_through_[2] = {0, 0};  // last version each instance has
  // Instances parked past the stall deadline, awaiting their drain.
  std::vector<ZombieInstance> zombies_;
  std::atomic<int64_t> stall_copies_{0};
  uint64_t last_rebuild_version_ = 0;
  // Batches newer than min(applied_through_), so the shadow can catch up.
  std::deque<std::pair<uint64_t, std::vector<UpdateOp>>> recent_batches_;
  int live_slot_ = 0;
  bool supports_updates_ = false;

  std::atomic<size_t> num_points_{0};  // mirror of data_.points.size()
  std::atomic<uint64_t> version_{0};
  EpochDomain* epoch_domain_ = nullptr;  // resolved from opts_ at construction
  // The publication slot. Raw pointer + epoch reclamation: the pointed-to
  // snapshot is owned by whichever of {this, the domain's limbo list}
  // currently holds it, never by readers.
  std::atomic<const IndexSnapshot*> live_{nullptr};
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_INDEX_SNAPSHOT_H_

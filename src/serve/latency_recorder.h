// Per-thread latency capture with percentile extraction for the serving
// benchmarks. A bounded ring keeps the most recent `capacity` samples (the
// steady-state window of a serving run); Record() is single-threaded, one
// recorder per client thread, merged after the threads join. Not a
// concurrent type: Record/Merge/PercentileNs all belong to one thread at a
// time.

#ifndef WAZI_SERVE_LATENCY_RECORDER_H_
#define WAZI_SERVE_LATENCY_RECORDER_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi::serve {

class LatencyRecorder {
 public:
  // capacity == 0 makes a counting-only recorder: count() advances but no
  // samples are retained (and percentiles are always 0).
  explicit LatencyRecorder(size_t capacity = 1 << 16) : capacity_(capacity) {
    samples_.reserve(std::min<size_t>(capacity_, 1 << 12));
  }

  void Record(int64_t ns) {
    ++count_;
    if (capacity_ == 0) return;  // counting-only recorder
    if (samples_.size() < capacity_) {
      samples_.push_back(ns);
    } else {
      // Ring eviction: overwrite the oldest retained sample.
      samples_[head_] = ns;
      head_ = (head_ + 1) % capacity_;
    }
    sorted_valid_ = false;
  }

  // Folds another recorder's state in, losslessly: the capacity GROWS if
  // needed so every retained sample of both recorders is kept (a merged
  // recorder never silently truncates), and count() adds the other's
  // TOTAL recorded ops — samples the source ring already evicted stay
  // counted, just not retained. A counting-only recorder (capacity 0)
  // stays counting-only and only accumulates the count. Merge is an
  // aggregation step (join threads, then merge, then read percentiles):
  // after a capacity-growing Merge the retained window is the UNION of
  // the sources, no longer age-ordered, so a later Record that evicts
  // replaces an unspecified-age sample rather than the oldest.
  void Merge(const LatencyRecorder& other) {
    if (capacity_ > 0 &&
        samples_.size() + other.samples_.size() > capacity_) {
      capacity_ = samples_.size() + other.samples_.size();
      head_ = 0;  // ring restarts; order does not matter for percentiles
    }
    const size_t evicted_by_other = other.count_ - other.samples_.size();
    for (int64_t ns : other.samples_) Record(ns);
    count_ += evicted_by_other;
  }

  // pct in [0, 100], linearly interpolated between the two nearest order
  // statistics of the RETAINED window (p0 = min, p50 = median, p100 =
  // max); 0 with no samples. Nearest-rank with ad-hoc rounding biased p99
  // high on small windows; interpolation is exact for the median and
  // continuous in pct. The sorted window is cached across calls and
  // invalidated by Record/Merge, so a percentile sweep sorts once.
  int64_t PercentileNs(double pct) const {
    if (samples_.empty()) return 0;
    if (!sorted_valid_) {
      sorted_ = samples_;
      std::sort(sorted_.begin(), sorted_.end());
      sorted_valid_ = true;
    }
    pct = std::min(100.0, std::max(0.0, pct));
    const double rank =
        pct / 100.0 * static_cast<double>(sorted_.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    if (lo + 1 >= sorted_.size()) return sorted_.back();
    const double frac = rank - static_cast<double>(lo);
    const double lo_v = static_cast<double>(sorted_[lo]);
    const double hi_v = static_cast<double>(sorted_[lo + 1]);
    return static_cast<int64_t>(std::llround(lo_v + frac * (hi_v - lo_v)));
  }

  // Total operations recorded (can exceed the retained sample count).
  size_t count() const { return count_; }
  // Samples currently retained (== count() until the window wraps).
  size_t retained() const { return samples_.size(); }
  // Current window bound (may have grown via Merge).
  size_t capacity() const { return capacity_; }

 private:
  size_t capacity_;
  size_t count_ = 0;
  size_t head_ = 0;  // next eviction slot once the ring is full
  std::vector<int64_t> samples_;
  mutable std::vector<int64_t> sorted_;  // cached sorted view of samples_
  mutable bool sorted_valid_ = false;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_LATENCY_RECORDER_H_

// Per-thread latency capture with percentile extraction for the serving
// benchmarks. A bounded ring keeps the most recent `capacity` samples (the
// steady-state window of a serving run); Record() is single-threaded, one
// recorder per client thread, merged after the threads join.

#ifndef WAZI_SERVE_LATENCY_RECORDER_H_
#define WAZI_SERVE_LATENCY_RECORDER_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi::serve {

class LatencyRecorder {
 public:
  explicit LatencyRecorder(size_t capacity = 1 << 16) : capacity_(capacity) {
    samples_.reserve(std::min<size_t>(capacity_, 1 << 12));
  }

  void Record(int64_t ns) {
    if (capacity_ == 0) {  // counting-only recorder
      ++count_;
      return;
    }
    if (samples_.size() < capacity_) {
      samples_.push_back(ns);
    } else {
      samples_[count_ % capacity_] = ns;
    }
    ++count_;
  }

  // Folds another recorder's *retained* samples in. Size this recorder's
  // capacity to the sum of the sources' windows to merge losslessly.
  void Merge(const LatencyRecorder& other) {
    for (int64_t ns : other.samples_) Record(ns);
  }

  // pct in [0, 100]; 0 with no samples.
  int64_t PercentileNs(double pct) const {
    if (samples_.empty()) return 0;
    std::vector<int64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    const double rank = pct / 100.0 * static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<size_t>(rank + 0.5)];
  }

  // Total operations recorded (can exceed the retained sample count).
  size_t count() const { return count_; }

 private:
  size_t capacity_;
  size_t count_ = 0;
  std::vector<int64_t> samples_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_LATENCY_RECORDER_H_

#include "serve/query_engine.h"

#include <algorithm>

#include "index/knn.h"

namespace wazi::serve {

namespace {

struct alignas(64) PaddedStats {
  QueryStats stats;
};

}  // namespace

QueryEngine::QueryEngine(const VersionedIndex* index, int num_threads)
    : index_(index), pool_(num_threads) {}

void QueryEngine::ExecuteBatch(const std::vector<QueryRequest>& requests,
                               std::vector<QueryResult>* results) {
  const size_t n = requests.size();
  results->clear();
  results->resize(n);
  if (n == 0) return;
  const size_t workers =
      std::min(n, static_cast<size_t>(pool_.num_threads()));
  const size_t block = (n + workers - 1) / workers;
  // Per-block counters local to this batch: concurrent ExecuteBatch calls
  // from different client threads never share a counter slot.
  std::vector<PaddedStats> block_stats(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    pool_.Submit([this, &requests, results, &block_stats, begin, end, w] {
      QueryStats* stats = &block_stats[w].stats;
      // One snapshot per block: wait-free for the block's duration.
      const auto snap = index_->Acquire();
      for (size_t i = begin; i < end; ++i) {
        (*results)[i] = ExecuteOn(*snap, requests[i], stats);
      }
    });
  }
  pool_.Wait();
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (const PaddedStats& ps : block_stats) batch_stats_.Add(ps.stats);
}

QueryResult QueryEngine::Execute(const QueryRequest& request,
                                 QueryStats* stats) const {
  QueryStats discard;
  const auto snap = index_->Acquire();
  return ExecuteOn(*snap, request, stats != nullptr ? stats : &discard);
}

QueryResult QueryEngine::ExecuteOn(const IndexSnapshot& snap,
                                   const QueryRequest& request,
                                   QueryStats* stats) const {
  QueryResult result;
  result.snapshot_version = snap.version();
  switch (request.type) {
    case QueryRequest::Type::kRange:
      snap.index().RangeQuery(request.rect, &result.hits, stats);
      break;
    case QueryRequest::Type::kPoint:
      result.found = snap.index().PointQuery(request.point, stats);
      break;
    case QueryRequest::Type::kKnn:
      result.hits = KnnByRangeExpansion(snap.index(), request.point,
                                        static_cast<size_t>(request.k),
                                        index_->domain(), stats)
                        .neighbors;
      break;
  }
  return result;
}

QueryStats QueryEngine::aggregated_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return batch_stats_;
}

void QueryEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  batch_stats_.Reset();
}

}  // namespace wazi::serve

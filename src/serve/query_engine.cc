#include "serve/query_engine.h"

#include <algorithm>
#include <latch>
#include <memory>

#include "serve/result_cache.h"

namespace wazi::serve {

namespace {

struct alignas(64) PaddedStats {
  QueryStats stats;
};

}  // namespace

QueryEngine::QueryEngine(const ShardedVersionedIndex* index, int num_threads,
                         ResultCache* cache, obs::MetricsRegistry* registry)
    : index_(index), cache_(cache), pool_(num_threads) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  range_queries_ = registry->GetCounter("serve_range_queries_total");
  point_queries_ = registry->GetCounter("serve_point_queries_total");
  knn_queries_ = registry->GetCounter("serve_knn_queries_total");
  simd_batches_ = registry->GetCounter("serve_simd_batches_total");
  scalar_tail_ = registry->GetCounter("serve_scalar_tail_total");
}

void QueryEngine::MirrorKernelShape(const QueryStats& st,
                                    int64_t batches_before,
                                    int64_t tail_before) const {
  const int64_t batches = st.simd_batches - batches_before;
  const int64_t tail = st.scalar_tail - tail_before;
  if (batches > 0) simd_batches_->Add(batches);
  if (tail > 0) scalar_tail_->Add(tail);
}

void QueryEngine::ExecuteBatch(const std::vector<QueryRequest>& requests,
                               std::vector<QueryResult>* results) {
  RunBatch(requests, results, /*shared_snaps=*/nullptr);
}

void QueryEngine::ExecuteBatchOn(
    const std::vector<QueryRequest>& requests,
    std::vector<QueryResult>* results,
    const ShardedVersionedIndex::SnapshotSet& snaps) {
  RunBatch(requests, results, &snaps);
}

void QueryEngine::RunBatch(
    const std::vector<QueryRequest>& requests,
    std::vector<QueryResult>* results,
    const ShardedVersionedIndex::SnapshotSet* shared_snaps) {
  const size_t n = requests.size();
  results->clear();
  results->resize(n);
  if (n == 0) return;
  const size_t workers =
      std::min(n, static_cast<size_t>(pool_.num_threads()));
  const size_t block = (n + workers - 1) / workers;
  const size_t blocks = (n + block - 1) / block;
  // Per-block counters local to this batch: concurrent ExecuteBatch calls
  // from different client threads never share a counter slot.
  std::vector<PaddedStats> block_stats(workers);
  // Per-batch completion latch, NOT ThreadPool::Wait: Wait is a
  // pool-global idle barrier, and the pool is shared between direct
  // ExecuteBatch callers and the admission dispatcher — waiting for
  // global idle would extend every batch's latency by every OTHER
  // in-flight batch under sustained traffic.
  std::latch done(static_cast<ptrdiff_t>(blocks));
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    pool_.Submit([this, &requests, results, &block_stats, shared_snaps,
                  &done, begin, end, w] {
      QueryStats* stats = &block_stats[w].stats;
      // One acquire per shard per block (not per query) — or zero when
      // the caller pinned a set for the whole batch (the admission path):
      // the block runs on a consistent per-shard snapshot set, and the
      // atomic refcount traffic on the publication cells stays off the
      // per-query path.
      ShardedVersionedIndex::SnapshotSet local_snaps;
      const ShardedVersionedIndex::SnapshotSet* snaps = shared_snaps;
      if (snaps == nullptr) {
        index_->AcquireAll(&local_snaps);
        snaps = &local_snaps;
      }
      for (size_t i = begin; i < end; ++i) {
        (*results)[i] = ExecuteOn(requests[i], stats, snaps);
      }
      done.count_down();
    });
  }
  done.wait();
  MutexLock lock(&stats_mu_);
  for (const PaddedStats& ps : block_stats) batch_stats_.Add(ps.stats);
}

QueryResult QueryEngine::Execute(const QueryRequest& request,
                                 QueryStats* stats) const {
  return ExecuteOn(request, stats, /*snaps=*/nullptr);
}

QueryResult QueryEngine::ExecuteOn(
    const QueryRequest& request, QueryStats* stats,
    const ShardedVersionedIndex::SnapshotSet* snaps) const {
  QueryResult result;
  // Kernel-shape counters mirror into the registry even when the caller
  // discards its stats, so the OPERATIONS.md dispatch probe always sees
  // production traffic.
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  const int64_t batches_before = st->simd_batches;
  const int64_t tail_before = st->scalar_tail;
  switch (request.type) {
    case QueryRequest::Type::kRange:
      // ExecuteRange mirrors its own kernel shape.
      return ExecuteRange(request.rect, stats, snaps, /*parts=*/nullptr);
    case QueryRequest::Type::kPoint:
      point_queries_->Add(1);
      result.found = index_->PointQuery(request.point, st,
                                        &result.snapshot_version,
                                        /*home_shard=*/nullptr, snaps,
                                        &result.epoch);
      break;
    case QueryRequest::Type::kKnn:
      knn_queries_->Add(1);
      result.hits = index_->Knn(request.point, request.k, st,
                                &result.snapshot_version, snaps,
                                &result.epoch);
      break;
  }
  MirrorKernelShape(*st, batches_before, tail_before);
  return result;
}

QueryResult QueryEngine::ExecuteRange(
    const Rect& rect, QueryStats* stats,
    const ShardedVersionedIndex::SnapshotSet* snaps,
    std::vector<ShardQueryPart>* parts) const {
  QueryResult result;
  range_queries_->Add(1);
  QueryStats local;
  QueryStats* st = stats != nullptr ? stats : &local;
  const int64_t batches_before = st->simd_batches;
  const int64_t tail_before = st->scalar_tail;
  const bool cached = cache_ != nullptr && cache_->enabled();
  if (cached) {
    // Pin the topology the probe validates against. With a caller
    // SnapshotSet the validation runs against its pre-acquired snapshots
    // (a hit is exactly the result an execution on the set would
    // produce); without one it runs against the live shard versions,
    // equivalent to executing at probe time.
    std::shared_ptr<ShardTopology> owned_topo;
    const ShardTopology* topo =
        snaps != nullptr ? snaps->topology.get()
                         : (owned_topo = index_->AcquireTopology()).get();
    if (cache_->Lookup(rect, *topo, snaps, &result.hits,
                       &result.snapshot_version)) {
      result.epoch = topo->epoch;
      if (parts != nullptr) parts->clear();  // no shard did work
      if (stats != nullptr) {
        ++stats->cache_hits;
        stats->results += static_cast<int64_t>(result.hits.size());
      }
      return result;
    }
  }
  // The insert needs the per-shard attribution even when the caller does
  // not; scratch is consumed before returning (serving hot path — no
  // per-query allocation).
  static thread_local std::vector<ShardQueryPart> scratch;
  std::vector<ShardQueryPart>* use_parts =
      parts != nullptr ? parts : (cached ? &scratch : nullptr);
  index_->RangeQuery(rect, &result.hits, st, use_parts,
                     &result.snapshot_version, snaps, &result.epoch);
  if (cached) {
    cache_->Insert(rect, result.hits, result.epoch, *use_parts);
    if (stats != nullptr) ++stats->cache_misses;
  }
  MirrorKernelShape(*st, batches_before, tail_before);
  return result;
}

QueryStats QueryEngine::aggregated_stats() const {
  MutexLock lock(&stats_mu_);
  return batch_stats_;
}

void QueryEngine::ResetStats() {
  MutexLock lock(&stats_mu_);
  batch_stats_.Reset();
}

}  // namespace wazi::serve

#include "serve/query_engine.h"

#include <algorithm>

namespace wazi::serve {

namespace {

struct alignas(64) PaddedStats {
  QueryStats stats;
};

}  // namespace

QueryEngine::QueryEngine(const ShardedVersionedIndex* index, int num_threads)
    : index_(index), pool_(num_threads) {}

void QueryEngine::ExecuteBatch(const std::vector<QueryRequest>& requests,
                               std::vector<QueryResult>* results) {
  const size_t n = requests.size();
  results->clear();
  results->resize(n);
  if (n == 0) return;
  const size_t workers =
      std::min(n, static_cast<size_t>(pool_.num_threads()));
  const size_t block = (n + workers - 1) / workers;
  // Per-block counters local to this batch: concurrent ExecuteBatch calls
  // from different client threads never share a counter slot.
  std::vector<PaddedStats> block_stats(workers);
  for (size_t w = 0; w < workers; ++w) {
    const size_t begin = w * block;
    const size_t end = std::min(n, begin + block);
    if (begin >= end) break;
    pool_.Submit([this, &requests, results, &block_stats, begin, end, w] {
      QueryStats* stats = &block_stats[w].stats;
      // One acquire per shard per block (not per query): the block runs on
      // a consistent per-shard snapshot set, and the atomic refcount
      // traffic on the publication cells stays off the per-query path.
      ShardedVersionedIndex::SnapshotSet snaps;
      index_->AcquireAll(&snaps);
      for (size_t i = begin; i < end; ++i) {
        (*results)[i] = ExecuteOn(requests[i], stats, &snaps);
      }
    });
  }
  pool_.Wait();
  std::lock_guard<std::mutex> lock(stats_mu_);
  for (const PaddedStats& ps : block_stats) batch_stats_.Add(ps.stats);
}

QueryResult QueryEngine::Execute(const QueryRequest& request,
                                 QueryStats* stats) const {
  return ExecuteOn(request, stats, /*snaps=*/nullptr);
}

QueryResult QueryEngine::ExecuteOn(
    const QueryRequest& request, QueryStats* stats,
    const ShardedVersionedIndex::SnapshotSet* snaps) const {
  QueryResult result;
  switch (request.type) {
    case QueryRequest::Type::kRange:
      index_->RangeQuery(request.rect, &result.hits, stats,
                         /*parts=*/nullptr, &result.snapshot_version, snaps,
                         &result.epoch);
      break;
    case QueryRequest::Type::kPoint:
      result.found = index_->PointQuery(request.point, stats,
                                        &result.snapshot_version,
                                        /*home_shard=*/nullptr, snaps,
                                        &result.epoch);
      break;
    case QueryRequest::Type::kKnn:
      result.hits = index_->Knn(request.point, request.k, stats,
                                &result.snapshot_version, snaps,
                                &result.epoch);
      break;
  }
  return result;
}

QueryStats QueryEngine::aggregated_stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return batch_stats_;
}

void QueryEngine::ResetStats() {
  std::lock_guard<std::mutex> lock(stats_mu_);
  batch_stats_.Reset();
}

}  // namespace wazi::serve

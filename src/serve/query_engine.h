// Multi-threaded query execution over a ShardedVersionedIndex: batches of
// range / point / kNN requests fan out across a ThreadPool, each worker
// resolving its queries through the shard router (single-shard point
// lookups, per-shard sub-rectangle ranges, cross-shard kNN merges), with
// work counters accumulated into per-thread (cache-line padded) QueryStats.

#ifndef WAZI_SERVE_QUERY_ENGINE_H_
#define WAZI_SERVE_QUERY_ENGINE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/thread_annotations.h"
#include "index/spatial_index.h"
#include "obs/metrics.h"
#include "serve/sharded_index.h"
#include "serve/thread_pool.h"

namespace wazi::serve {

class ResultCache;

struct QueryRequest {
  enum class Type { kRange, kPoint, kKnn };
  Type type = Type::kRange;
  Rect rect;    // kRange
  Point point;  // kPoint target / kKnn center
  int k = 0;    // kKnn

  static QueryRequest Range(const Rect& r) {
    QueryRequest q;
    q.type = Type::kRange;
    q.rect = r;
    return q;
  }
  static QueryRequest PointLookup(const Point& p) {
    QueryRequest q;
    q.type = Type::kPoint;
    q.point = p;
    return q;
  }
  static QueryRequest Knn(const Point& center, int k) {
    QueryRequest q;
    q.type = Type::kKnn;
    q.point = center;
    q.k = k;
    return q;
  }
};

struct QueryResult {
  std::vector<Point> hits;  // range hits / kNN neighbors (sorted)
  bool found = false;       // point lookup outcome
  // Sum of the versions of the per-shard snapshots this query ran on. With
  // one shard this is exactly the snapshot version; with more it is a
  // version mass, comparable only between queries touching the same shard
  // set at the same epoch (cross-shard queries have no single global
  // version — shards swap snapshots independently).
  uint64_t snapshot_version = 0;
  // Epoch of the topology the query was pinned to. A batch pins one
  // topology per executor block, so results within a block share it;
  // a live repartition bumps it between blocks/queries.
  uint64_t epoch = 0;
};

class QueryEngine {
 public:
  // `index` must outlive the engine. `num_threads` workers execute
  // batches. `cache`, when non-null, memoizes range results (probed and
  // refreshed on every path through the engine; see
  // serve/result_cache.h for the stamp-validation protocol). `registry`,
  // when given, hosts the per-type query counters
  // (serve_{range,point,knn}_queries_total); a standalone engine owns a
  // private registry so the counting code stays branch-free.
  QueryEngine(const ShardedVersionedIndex* index, int num_threads,
              ResultCache* cache = nullptr,
              obs::MetricsRegistry* registry = nullptr);

  // Executes requests[i] into (*results)[i] across the worker pool; blocks
  // until the whole batch is done. Each worker pins the topology and
  // acquires every shard's snapshot once per block (AcquireAll), so one
  // batch may straddle snapshot swaps — or a whole live repartition —
  // across blocks (each result records the epoch and version mass it ran
  // on) but never within a block. Safe to call from multiple threads;
  // concurrent batches share the pool's workers but each returns as soon
  // as ITS OWN blocks finish (per-batch latch, not pool-wide idle).
  void ExecuteBatch(const std::vector<QueryRequest>& requests,
                    std::vector<QueryResult>* results);

  // The admission path: executes the whole batch against ONE pre-acquired
  // snapshot set (`snaps` must come from AcquireAll on this engine's
  // index). Every worker block shares `snaps` instead of acquiring its
  // own, so the batch is epoch-pinned end to end — one topology load and
  // one snapshot acquire per shard for the entire admitted batch, even
  // if a repartition publishes or shards swap snapshots mid-flight.
  void ExecuteBatchOn(const std::vector<QueryRequest>& requests,
                      std::vector<QueryResult>* results,
                      const ShardedVersionedIndex::SnapshotSet& snaps);

  // Executes one request on the calling thread (external client threads
  // drive the engine through this). `stats` must be a caller-owned counter
  // block when called concurrently; it may be null to discard the counters.
  // Counters from every shard a query touches are summed in.
  QueryResult Execute(const QueryRequest& request, QueryStats* stats) const;

  // THE range path: probes the result cache (when wired), executes on a
  // miss, and refreshes the entry — the single implementation behind both
  // ServeLoop::Range and the engine's batch execution, so the stamp
  // protocol and hit/miss accounting cannot drift between them. `parts`,
  // when non-null, receives the per-shard attribution of an executed
  // query and is CLEARED on a cache hit (a hit does no shard work, so
  // there is nothing to attribute). `snaps` as in the facade's queries.
  QueryResult ExecuteRange(const Rect& rect, QueryStats* stats,
                           const ShardedVersionedIndex::SnapshotSet* snaps,
                           std::vector<ShardQueryPart>* parts) const;

  // Sum of the counters accumulated by every completed ExecuteBatch /
  // ExecuteBatchOn call.
  QueryStats aggregated_stats() const EXCLUDES(stats_mu_);
  void ResetStats() EXCLUDES(stats_mu_);

  int num_threads() const { return pool_.num_threads(); }

 private:
  QueryResult ExecuteOn(const QueryRequest& request, QueryStats* stats,
                        const ShardedVersionedIndex::SnapshotSet* snaps) const;
  // Adds the kernel-shape counter growth since (batches_before,
  // tail_before) to the registry mirrors.
  void MirrorKernelShape(const QueryStats& st, int64_t batches_before,
                         int64_t tail_before) const;
  // Shared batch driver: fans the requests out across the pool; workers
  // run on `shared_snaps` when given, else each acquires its own set per
  // block.
  void RunBatch(const std::vector<QueryRequest>& requests,
                std::vector<QueryResult>* results,
                const ShardedVersionedIndex::SnapshotSet* shared_snaps)
      EXCLUDES(stats_mu_);

  const ShardedVersionedIndex* index_;
  ResultCache* cache_;  // may be null / disabled
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* range_queries_ = nullptr;
  obs::Counter* point_queries_ = nullptr;
  obs::Counter* knn_queries_ = nullptr;
  // Leaf-kernel work shape (QueryStats::simd_batches/scalar_tail) mirrored
  // into the registry per executed query.
  obs::Counter* simd_batches_ = nullptr;
  obs::Counter* scalar_tail_ = nullptr;
  ThreadPool pool_;
  // Batch counters are accumulated in per-block (cache-line padded) locals
  // during execution and folded in here once the batch completes, so
  // concurrent ExecuteBatch calls never share a counter block.
  mutable Mutex stats_mu_;
  QueryStats batch_stats_ GUARDED_BY(stats_mu_);
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_QUERY_ENGINE_H_

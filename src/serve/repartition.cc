#include "serve/repartition.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace wazi::serve {

double CombinedImbalance(const std::vector<ShardLoad>& loads,
                         const RepartitionOptions& opts,
                         int64_t* total_stabs) {
  const size_t n = loads.size();
  int64_t stabs = 0;
  for (const ShardLoad& l : loads) stabs += l.query_stabs;
  if (total_stabs != nullptr) *total_stabs = stabs;
  if (n < 2) return 1.0;

  double items_total = 0.0, queue_total = 0.0;
  for (const ShardLoad& l : loads) {
    items_total += static_cast<double>(l.items);
    queue_total += static_cast<double>(l.queue_depth);
  }
  // Workload components are only trusted once enough traffic has been
  // seen; a handful of stabs right after an epoch swap is pure noise.
  const bool use_stabs =
      stabs > 0 && stabs >= opts.min_queries && opts.weight_stabs > 0;
  const bool use_items = items_total > 0 && opts.weight_items > 0;
  const bool use_queue = queue_total > 0 && opts.weight_queue > 0;

  double weight_sum = 0.0;
  if (use_items) weight_sum += opts.weight_items;
  if (use_stabs) weight_sum += opts.weight_stabs;
  if (use_queue) weight_sum += opts.weight_queue;
  if (weight_sum == 0.0) return 1.0;

  double max_load = 0.0;
  for (const ShardLoad& l : loads) {
    double load = 0.0;
    // share * n: a shard's multiple of the fair (mean) component value.
    if (use_items) {
      load += opts.weight_items * static_cast<double>(l.items) /
              items_total * static_cast<double>(n);
    }
    if (use_stabs) {
      load += opts.weight_stabs * static_cast<double>(l.query_stabs) /
              static_cast<double>(stabs) * static_cast<double>(n);
    }
    if (use_queue) {
      load += opts.weight_queue * static_cast<double>(l.queue_depth) /
              queue_total * static_cast<double>(n);
    }
    max_load = std::max(max_load, load);
  }
  // The mean combined load is exactly the weight sum (each normalized
  // component averages to 1 across shards).
  return max_load / weight_sum;
}

bool RepartitionMonitor::Observe(const std::vector<ShardLoad>& loads,
                                 TimePoint now) {
  recommended_shards_ = 0;
  int64_t stabs = 0;
  imbalance_ = CombinedImbalance(loads, opts_, &stabs);
  const bool cooled =
      !have_last_ || now - last_repartition_ >=
                         std::chrono::milliseconds(opts_.min_interval_ms);

  // --- shard-count streaks (hysteresis: disjoint signals, own patience,
  // shared cooldown) ---------------------------------------------------
  const int n = static_cast<int>(loads.size());
  if (opts_.auto_shard_count && n > 0) {
    size_t min_queue = loads[0].queue_depth;
    size_t max_queue = loads[0].queue_depth;
    double total_items = 0.0;
    for (const ShardLoad& l : loads) {
      min_queue = std::min(min_queue, l.queue_depth);
      max_queue = std::max(max_queue, l.queue_depth);
      total_items += static_cast<double>(l.items);
    }
    const double mean_items = total_items / static_cast<double>(n);
    const double mean_stabs =
        static_cast<double>(stabs) / static_cast<double>(n);
    const bool grow_sig =
        n < opts_.max_shards && min_queue >= opts_.grow_queue_depth;
    // A hot queue anywhere vetoes a shrink: the signals never overlap.
    const bool shrink_sig =
        n > opts_.min_shards &&
        max_queue < opts_.grow_queue_depth &&
        mean_items < static_cast<double>(opts_.shrink_items_per_shard) &&
        mean_stabs < static_cast<double>(opts_.shrink_stabs_per_shard);
    grow_streak_ = grow_sig ? grow_streak_ + 1 : 0;
    shrink_streak_ = shrink_sig ? shrink_streak_ + 1 : 0;
    if (cooled && grow_streak_ >= opts_.resize_patience) {
      recommended_shards_ = std::min(opts_.max_shards, n * 2);
      grow_streak_ = 0;
      shrink_streak_ = 0;
      over_count_ = 0;
      return true;
    }
    if (cooled && shrink_streak_ >= opts_.resize_patience) {
      recommended_shards_ = std::max(opts_.min_shards, n / 2);
      grow_streak_ = 0;
      shrink_streak_ = 0;
      over_count_ = 0;
      return true;
    }
  } else {
    grow_streak_ = 0;
    shrink_streak_ = 0;
  }

  // --- imbalance trigger (re-cut at the current count) ----------------
  if (imbalance_ <= opts_.max_imbalance) {
    over_count_ = 0;
    return false;
  }
  ++over_count_;
  if (over_count_ < opts_.patience) return false;
  if (!cooled) return false;
  // The recommendation is consumed: a caller that skips the migration
  // anyway gets a fresh patience run instead of a true every sample.
  over_count_ = 0;
  return true;
}

void RepartitionMonitor::ResetAfterRepartition(TimePoint now) {
  over_count_ = 0;
  grow_streak_ = 0;
  shrink_streak_ = 0;
  recommended_shards_ = 0;
  imbalance_ = 1.0;
  have_last_ = true;
  last_repartition_ = now;
}

namespace {

// How far v sits ABOVE its fair share, as a fraction of fair (<= 0 when
// at or under it). Only overload moves cuts: an under-loaded cell is
// relieved implicitly when its hot neighbour's run re-cuts — flagging
// cold cells too would mark the whole tiling dirty under a concentrated
// skew (every cold cell deviates) and forfeit carrying entirely.
double Overload(double v, double fair) {
  if (fair <= 0.0) {
    return v > 0.0 ? std::numeric_limits<double>::infinity() : 0.0;
  }
  return (v - fair) / fair;
}

}  // namespace

IncrementalPlan PlanIncrementalRecut(int rows, int cols,
                                     const std::vector<ShardLoad>& loads,
                                     const RepartitionOptions& opts) {
  IncrementalPlan plan;
  if (rows <= 0 || cols <= 0) return plan;
  const size_t n = static_cast<size_t>(rows) * static_cast<size_t>(cols);
  if (loads.size() != n || n < 2) return plan;
  plan.rows = rows;
  plan.cols = cols;
  plan.changed.assign(n, false);
  plan.y_cut_moves.assign(static_cast<size_t>(rows - 1), false);
  plan.x_cut_moves.assign(static_cast<size_t>(rows),
                          std::vector<bool>(static_cast<size_t>(cols - 1),
                                            false));

  double total_items = 0.0;
  int64_t total_stabs = 0;
  for (const ShardLoad& l : loads) {
    total_items += static_cast<double>(l.items);
    total_stabs += l.query_stabs;
  }
  const bool use_stabs = total_stabs >= opts.min_queries && total_stabs > 0;
  const double fair_cell_items = total_items / static_cast<double>(n);
  const double fair_cell_stabs =
      static_cast<double>(total_stabs) / static_cast<double>(n);

  const auto cell = [&](int r, int c) -> const ShardLoad& {
    return loads[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                 static_cast<size_t>(c)];
  };

  // Row boundaries move on item imbalance only (the re-cut is equi-depth
  // in items; a moved y-cut rebuilds two whole rows, so the bar is high).
  std::vector<bool> row_changed(static_cast<size_t>(rows), false);
  if (rows > 1) {
    const double fair_row_items = total_items / static_cast<double>(rows);
    std::vector<double> row_items(static_cast<size_t>(rows), 0.0);
    for (int r = 0; r < rows; ++r) {
      for (int c = 0; c < cols; ++c) {
        row_items[static_cast<size_t>(r)] +=
            static_cast<double>(cell(r, c).items);
      }
    }
    for (int j = 0; j + 1 < rows; ++j) {
      const bool moves =
          Overload(row_items[static_cast<size_t>(j)], fair_row_items) >
              opts.incremental_row_tolerance ||
          Overload(row_items[static_cast<size_t>(j + 1)], fair_row_items) >
              opts.incremental_row_tolerance;
      if (moves) {
        plan.y_cut_moves[static_cast<size_t>(j)] = true;
        row_changed[static_cast<size_t>(j)] = true;
        row_changed[static_cast<size_t>(j + 1)] = true;
      }
    }
  }

  // Within rows whose band stays put, move the x-cuts adjacent to dirty
  // cells (item deviation, or stab-share deviation once traffic is
  // trusted). Rows whose band moves recut every x-cut.
  for (int r = 0; r < rows; ++r) {
    if (row_changed[static_cast<size_t>(r)]) {
      for (int c = 0; c + 1 < cols; ++c) {
        plan.x_cut_moves[static_cast<size_t>(r)][static_cast<size_t>(c)] =
            true;
      }
      continue;
    }
    const auto dirty = [&](int c) {
      const ShardLoad& l = cell(r, c);
      if (Overload(static_cast<double>(l.items), fair_cell_items) >
          opts.incremental_cell_tolerance) {
        return true;
      }
      return use_stabs &&
             Overload(static_cast<double>(l.query_stabs),
                      fair_cell_stabs) > opts.incremental_cell_tolerance;
    };
    for (int c = 0; c + 1 < cols; ++c) {
      if (dirty(c) || dirty(c + 1)) {
        plan.x_cut_moves[static_cast<size_t>(r)][static_cast<size_t>(c)] =
            true;
      }
    }
  }

  // Closure: a cell changes iff one of its boundaries moves.
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      bool ch = row_changed[static_cast<size_t>(r)];
      if (!ch && c > 0) {
        ch = plan.x_cut_moves[static_cast<size_t>(r)]
                             [static_cast<size_t>(c - 1)];
      }
      if (!ch && c + 1 < cols) {
        ch = plan.x_cut_moves[static_cast<size_t>(r)][static_cast<size_t>(c)];
      }
      plan.changed[static_cast<size_t>(r) * static_cast<size_t>(cols) +
                   static_cast<size_t>(c)] = ch;
    }
  }

  const int changed = plan.num_changed();
  if (changed == 0 || changed == static_cast<int>(n)) return plan;
  if (static_cast<double>(changed) >
      opts.incremental_max_changed_fraction * static_cast<double>(n)) {
    return plan;
  }
  plan.feasible = true;
  return plan;
}

}  // namespace wazi::serve

#include "serve/repartition.h"

#include <algorithm>

namespace wazi::serve {

double CombinedImbalance(const std::vector<ShardLoad>& loads,
                         const RepartitionOptions& opts,
                         int64_t* total_stabs) {
  const size_t n = loads.size();
  int64_t stabs = 0;
  for (const ShardLoad& l : loads) stabs += l.query_stabs;
  if (total_stabs != nullptr) *total_stabs = stabs;
  if (n < 2) return 1.0;

  double items_total = 0.0, queue_total = 0.0;
  for (const ShardLoad& l : loads) {
    items_total += static_cast<double>(l.items);
    queue_total += static_cast<double>(l.queue_depth);
  }
  // Workload components are only trusted once enough traffic has been
  // seen; a handful of stabs right after an epoch swap is pure noise.
  const bool use_stabs =
      stabs > 0 && stabs >= opts.min_queries && opts.weight_stabs > 0;
  const bool use_items = items_total > 0 && opts.weight_items > 0;
  const bool use_queue = queue_total > 0 && opts.weight_queue > 0;

  double weight_sum = 0.0;
  if (use_items) weight_sum += opts.weight_items;
  if (use_stabs) weight_sum += opts.weight_stabs;
  if (use_queue) weight_sum += opts.weight_queue;
  if (weight_sum == 0.0) return 1.0;

  double max_load = 0.0;
  for (const ShardLoad& l : loads) {
    double load = 0.0;
    // share * n: a shard's multiple of the fair (mean) component value.
    if (use_items) {
      load += opts.weight_items * static_cast<double>(l.items) /
              items_total * static_cast<double>(n);
    }
    if (use_stabs) {
      load += opts.weight_stabs * static_cast<double>(l.query_stabs) /
              static_cast<double>(stabs) * static_cast<double>(n);
    }
    if (use_queue) {
      load += opts.weight_queue * static_cast<double>(l.queue_depth) /
              queue_total * static_cast<double>(n);
    }
    max_load = std::max(max_load, load);
  }
  // The mean combined load is exactly the weight sum (each normalized
  // component averages to 1 across shards).
  return max_load / weight_sum;
}

bool RepartitionMonitor::Observe(const std::vector<ShardLoad>& loads,
                                 TimePoint now) {
  int64_t stabs = 0;
  imbalance_ = CombinedImbalance(loads, opts_, &stabs);
  if (imbalance_ <= opts_.max_imbalance) {
    over_count_ = 0;
    return false;
  }
  ++over_count_;
  if (over_count_ < opts_.patience) return false;
  if (have_last_ &&
      now - last_repartition_ <
          std::chrono::milliseconds(opts_.min_interval_ms)) {
    return false;
  }
  // The recommendation is consumed: a caller that skips the migration
  // anyway gets a fresh patience run instead of a true every sample.
  over_count_ = 0;
  return true;
}

void RepartitionMonitor::ResetAfterRepartition(TimePoint now) {
  over_count_ = 0;
  imbalance_ = 1.0;
  have_last_ = true;
  last_repartition_ = now;
}

}  // namespace wazi::serve

// Repartition decision logic: when should the serve layer re-cut the
// shard topology?
//
// The monitor consumes periodic per-shard load samples — item counts
// (authoritative point-count mirrors), query stabs (sub-queries served
// since the previous sample) and update-queue depths — and reduces
// them to one imbalance ratio: each component is normalized to its own
// mean across shards, the components are combined per shard with
// configurable weights, and the ratio is max(load) / mean(load). 1.0 means
// a perfectly balanced topology; 2.0 means the hottest shard carries twice
// its fair share. A repartition is recommended when the ratio stays above
// `max_imbalance` for `patience` consecutive samples (a single skewed
// burst should not trigger a full data migration), enough query traffic
// has been observed to judge the workload, and the cooldown since the last
// repartition has expired.
//
// Pure decision logic, no threads and no clocks of its own (callers pass
// timestamps), so it is unit-testable in isolation; ServeLoop owns the
// sampling thread and executes the migration.

#ifndef WAZI_SERVE_REPARTITION_H_
#define WAZI_SERVE_REPARTITION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi::serve {

struct RepartitionOptions {
  // Run the monitor thread and migrate automatically when it recommends.
  // Off by default: repartitions move every point of the index between
  // generations, so opting in should be deliberate (benchmarks and tests
  // also drive migrations explicitly via ServeLoop::TriggerRepartition).
  bool enabled = false;
  // Monitor sampling period.
  int poll_ms = 200;
  // Trigger when max/mean combined shard load exceeds this ratio...
  double max_imbalance = 1.8;
  // ...for this many consecutive samples.
  int patience = 3;
  // Minimum query stabs in one sample's window before the workload
  // component is trusted (item imbalance alone may still trigger). The
  // ServeLoop monitor samples stab DELTAS per poll interval, so this is
  // effectively a rate floor of min_queries / poll_ms — below it a
  // query-only skew is treated as noise.
  int64_t min_queries = 256;
  // Cooldown between migrations.
  int min_interval_ms = 2000;
  // Component weights of the combined load (a component whose total is
  // zero across all shards is skipped).
  double weight_items = 1.0;
  double weight_stabs = 1.0;
  double weight_queue = 0.5;
};

// One shard's load sample.
struct ShardLoad {
  size_t items = 0;          // authoritative point count (atomic mirror)
  int64_t query_stabs = 0;   // sub-queries served in this sample's window
  size_t queue_depth = 0;    // pending ops in the shard's writer queue
};

class RepartitionMonitor {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit RepartitionMonitor(RepartitionOptions opts = {}) : opts_(opts) {}

  // Feeds one sampling round. Returns true when a repartition is
  // recommended now (imbalance over threshold for `patience` rounds,
  // cooldown expired). Single-threaded: ServeLoop's monitor thread.
  bool Observe(const std::vector<ShardLoad>& loads, TimePoint now);

  // Call after a migration completes (restarts patience and cooldown).
  void ResetAfterRepartition(TimePoint now);

  // max/mean combined load of the last Observe round (1.0 = balanced).
  double imbalance() const { return imbalance_; }

 private:
  RepartitionOptions opts_;
  double imbalance_ = 1.0;
  int over_count_ = 0;
  bool have_last_ = false;
  TimePoint last_repartition_{};
};

// The imbalance reduction by itself (exposed for tests and introspection):
// max over shards of the weighted sum of mean-normalized components,
// divided by the mean of the same quantity. Returns 1.0 for fewer than two
// shards or all-zero loads.
double CombinedImbalance(const std::vector<ShardLoad>& loads,
                         const RepartitionOptions& opts,
                         int64_t* total_stabs = nullptr);

}  // namespace wazi::serve

#endif  // WAZI_SERVE_REPARTITION_H_

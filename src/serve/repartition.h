// Repartition decision logic: when should the serve layer re-cut the
// shard topology, how many shards should it have, and which cells of the
// current tiling actually need to move?
//
// The monitor consumes periodic per-shard load samples — item counts
// (authoritative point-count mirrors), query stabs (sub-queries served
// since the previous sample) and update-queue depths — and reduces
// them to one imbalance ratio: each component is normalized to its own
// mean across shards, the components are combined per shard with
// configurable weights, and the ratio is max(load) / mean(load). 1.0 means
// a perfectly balanced topology; 2.0 means the hottest shard carries twice
// its fair share. A repartition is recommended when the ratio stays above
// `max_imbalance` for `patience` consecutive samples (a single skewed
// burst should not trigger a full data migration), enough query traffic
// has been observed to judge the workload, and the cooldown since the last
// repartition has expired.
//
// The monitor can also recommend a shard COUNT (auto_shard_count): it
// grows the topology when every writer is hot (all update queues at least
// grow_queue_depth deep — per-shard writers are the scaling unit, so a
// uniformly backlogged write stream needs more of them) and shrinks it
// when per-shard occupancy AND query-stab rates fall below floors (idle
// slivers only tax cross-shard fan-out). Both signals need their own
// sustained streak (resize_patience, deliberately slower than the re-cut
// trigger) and share the migration cooldown, and the grow/shrink
// conditions are disjoint (hot queues block a shrink) — the hysteresis
// that keeps the count from oscillating. The recommendation is consumed
// through the existing TriggerRepartition(n) path.
//
// PlanIncrementalRecut decides which cells of the current rows x cols
// tiling a migration must rebuild: cells whose item count (or query-stab
// share) EXCEEDS the fair share beyond a tolerance mark their adjacent
// cuts as moving; everything a moving cut touches is "changed", the rest
// can be CARRIED into the next topology verbatim (see ServeLoop's
// incremental migration path).
//
// Pure decision logic, no threads and no clocks of its own (callers pass
// timestamps), so it is unit-testable in isolation; ServeLoop owns the
// sampling thread and executes the migration.

#ifndef WAZI_SERVE_REPARTITION_H_
#define WAZI_SERVE_REPARTITION_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace wazi::serve {

struct RepartitionOptions {
  // Run the monitor thread and migrate automatically when it recommends.
  // Off by default: repartitions move every point of the index between
  // generations, so opting in should be deliberate (benchmarks and tests
  // also drive migrations explicitly via ServeLoop::TriggerRepartition).
  bool enabled = false;
  // Monitor sampling period.
  int poll_ms = 200;
  // Trigger when max/mean combined shard load exceeds this ratio...
  double max_imbalance = 1.8;
  // ...for this many consecutive samples.
  int patience = 3;
  // Minimum query stabs in one sample's window before the workload
  // component is trusted (item imbalance alone may still trigger). The
  // ServeLoop monitor samples stab DELTAS per poll interval, so this is
  // effectively a rate floor of min_queries / poll_ms — below it a
  // query-only skew is treated as noise.
  int64_t min_queries = 256;
  // Cooldown between migrations.
  int min_interval_ms = 2000;
  // Component weights of the combined load (a component whose total is
  // zero across all shards is skipped).
  double weight_items = 1.0;
  double weight_stabs = 1.0;
  double weight_queue = 0.5;

  // --- incremental (per-cell) migration ------------------------------
  // Migrate only the cells whose cuts actually move, carrying the rest
  // into the next topology (ServeLoop falls back to a full rebuild when
  // the plan is infeasible — shard-count change, no dirty cell, or too
  // many changed cells for carrying to pay off).
  bool incremental = true;
  // A cell is dirty when its item count (or, with enough traffic, its
  // stab share) exceeds the fair share by more than this fraction.
  // Overload only: cold cells are relieved implicitly when their hot
  // neighbours re-cut, and flagging them too would mark the whole tiling
  // dirty under a concentrated skew.
  double incremental_cell_tolerance = 0.3;
  // A row boundary moves only when a row's item total exceeds its fair
  // share by more than this fraction — deliberately looser than the cell
  // tolerance, because moving a y-cut invalidates BOTH adjacent rows
  // wholesale.
  double incremental_row_tolerance = 0.5;
  // Fall back to a full rebuild when more than this fraction of cells
  // would change anyway.
  double incremental_max_changed_fraction = 0.65;

  // --- shard-count auto-tuning ---------------------------------------
  // Let the monitor recommend growing/shrinking the shard count
  // (recommended_shards(), consumed via TriggerRepartition(n)). Off by
  // default: a count change is always a full migration.
  bool auto_shard_count = false;
  int min_shards = 1;
  int max_shards = 32;
  // Grow (double, clamped to max_shards) when EVERY writer's queue is at
  // least this deep — all writers hot means the write stream has
  // outgrown the per-shard writer parallelism, not just one cell.
  size_t grow_queue_depth = 128;
  // Shrink (halve, clamped to min_shards) when the MEAN items per shard
  // and the MEAN stabs per sample both sit below these floors while no
  // queue is hot.
  size_t shrink_items_per_shard = 4096;
  int64_t shrink_stabs_per_shard = 64;
  // Consecutive samples a grow/shrink signal must persist. Slower than
  // `patience` by default: resizing is the more disruptive decision.
  int resize_patience = 5;
};

// One shard's load sample.
struct ShardLoad {
  size_t items = 0;          // authoritative point count (atomic mirror)
  int64_t query_stabs = 0;   // sub-queries served in this sample's window
  size_t queue_depth = 0;    // pending ops in the shard's writer queue
};

class RepartitionMonitor {
 public:
  using TimePoint = std::chrono::steady_clock::time_point;

  explicit RepartitionMonitor(RepartitionOptions opts = {}) : opts_(opts) {}

  // Feeds one sampling round. Returns true when a repartition is
  // recommended now: either the imbalance trigger (over threshold for
  // `patience` rounds) or, with auto_shard_count, a matured resize
  // streak; both respect the cooldown. Single-threaded: ServeLoop's
  // monitor thread.
  bool Observe(const std::vector<ShardLoad>& loads, TimePoint now);

  // Call after a migration completes (restarts patience, resize streaks
  // and cooldown).
  void ResetAfterRepartition(TimePoint now);

  // max/mean combined load of the last Observe round (1.0 = balanced).
  double imbalance() const { return imbalance_; }

  // Shard count the last Observe round recommended: 0 = keep the current
  // count, otherwise the new count (only ever non-zero on a round where
  // Observe returned true with a matured resize streak). Feed it to
  // TriggerRepartition / RepartitionLocked as-is.
  int recommended_shards() const { return recommended_shards_; }

 private:
  RepartitionOptions opts_;
  double imbalance_ = 1.0;
  int over_count_ = 0;
  int grow_streak_ = 0;
  int shrink_streak_ = 0;
  int recommended_shards_ = 0;
  bool have_last_ = false;
  TimePoint last_repartition_{};
};

// The imbalance reduction by itself (exposed for tests and introspection):
// max over shards of the weighted sum of mean-normalized components,
// divided by the mean of the same quantity. Returns 1.0 for fewer than two
// shards or all-zero loads.
double CombinedImbalance(const std::vector<ShardLoad>& loads,
                         const RepartitionOptions& opts,
                         int64_t* total_stabs = nullptr);

// Which cells of a rows x cols tiling an incremental migration rebuilds.
// `changed[r * cols + c]` marks cells that must be captured and rebuilt;
// everything else is carried. `y_cut_moves[j]` flags the boundary between
// rows j and j+1; `x_cut_moves[r][c]` the boundary between cells (r, c)
// and (r, c+1) — rows adjacent to a moving y-cut recut ALL their x-cuts.
// By construction the union of the changed cells' regions is identical
// before and after the re-cut (only flagged boundaries move, and only
// between their fixed neighbours), which is what makes carrying sound.
struct IncrementalPlan {
  bool feasible = false;
  int rows = 0;
  int cols = 0;
  std::vector<bool> changed;                   // rows * cols, by shard id
  std::vector<bool> y_cut_moves;               // rows - 1
  std::vector<std::vector<bool>> x_cut_moves;  // rows x (cols - 1)

  int num_changed() const {
    int n = 0;
    for (const bool c : changed) n += c ? 1 : 0;
    return n;
  }
};

// Plans an incremental re-cut of the current tiling from per-cell load
// (loads[r * cols + c], the same samples the monitor sees). Item-count
// deviations drive both y- and x-cut moves; stab-share deviations (only
// trusted past opts.min_queries) additionally dirty cells for x-cut
// moves — the re-cut is equi-depth in items, so a pure query skew
// without an item skew is left to the workload-aware slack of the cut
// placement. Infeasible (feasible == false) when the grid does not match,
// nothing is dirty, everything changes, or more than
// incremental_max_changed_fraction of the cells would change.
IncrementalPlan PlanIncrementalRecut(int rows, int cols,
                                     const std::vector<ShardLoad>& loads,
                                     const RepartitionOptions& opts);

}  // namespace wazi::serve

#endif  // WAZI_SERVE_REPARTITION_H_

#include "serve/result_cache.h"

#include <algorithm>
#include <cstring>
#include <utility>

namespace wazi::serve {
namespace {

// Per-entry bookkeeping overhead charged against the byte budget on top of
// the point payload (list node, map slot, stamp). Keeps a cache full of
// tiny results from exceeding the budget by an unbounded factor.
constexpr size_t kEntryOverhead = 128;

inline uint64_t BitsOf(double d) {
  uint64_t u;
  std::memcpy(&u, &d, sizeof(u));
  return u;
}

// splitmix64: cheap, well-distributed 64-bit mix.
inline uint64_t Mix(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ResultCache::Key ResultCache::KeyOf(const Rect& r) {
  return Key{BitsOf(r.min_x), BitsOf(r.min_y), BitsOf(r.max_x),
             BitsOf(r.max_y)};
}

size_t ResultCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix(k.min_x);
  h = Mix(h ^ k.min_y);
  h = Mix(h ^ k.max_x);
  h = Mix(h ^ k.max_y);
  return static_cast<size_t>(h);
}

ResultCache::ResultCache(ResultCacheOptions opts,
                         obs::MetricsRegistry* registry,
                         obs::TraceJournal* journal)
    : opts_(opts), journal_(journal) {
  if (registry == nullptr) {
    own_registry_ = std::make_unique<obs::MetricsRegistry>();
    registry = own_registry_.get();
  }
  hits_ = registry->GetCounter("serve_cache_hits_total");
  misses_ = registry->GetCounter("serve_cache_misses_total");
  invalidations_ = registry->GetCounter("serve_cache_invalidations_total");
  insertions_ = registry->GetCounter("serve_cache_insertions_total");
  evictions_ = registry->GetCounter("serve_cache_evictions_total");
  bytes_gauge_ = registry->GetGauge("serve_cache_bytes");
  const int segments = std::max(1, opts_.segments);
  segment_capacity_ = opts_.capacity_bytes / static_cast<size_t>(segments);
  if (enabled() && segment_capacity_ == 0) segment_capacity_ = 1;
  segments_.reserve(static_cast<size_t>(segments));
  for (int i = 0; i < segments; ++i) {
    segments_.push_back(std::make_unique<Segment>());
  }
}

ResultCache::Segment& ResultCache::SegmentFor(const Key& key) {
  return *segments_[KeyHash{}(key) % segments_.size()];
}

bool ResultCache::StampValid(
    const Entry& e, const ShardTopology& topo,
    const ShardedVersionedIndex::SnapshotSet* snaps) {
  // A different epoch means a different router: cells moved, so the
  // touched-shard argument (header) no longer covers the query.
  if (e.epoch != topo.epoch) return false;
  for (const auto& [shard, version] : e.shard_versions) {
    if (shard < 0 || shard >= topo.num_shards()) {
      return false;  // defensive; an epoch pins its shard count
    }
    // Versions are bumped on every publish, so version equality means the
    // shard still serves the exact snapshot the entry was computed on.
    const uint64_t now = snaps != nullptr ? snaps->shard_version(shard)
                                          : topo.shard_version(shard);
    if (now != version) return false;
  }
  return true;
}

bool ResultCache::Lookup(const Rect& query, const ShardTopology& topo,
                         const ShardedVersionedIndex::SnapshotSet* snaps,
                         std::vector<Point>* out, uint64_t* version_mass) {
  if (!enabled()) return false;
  const Key key = KeyOf(query);
  Segment& seg = SegmentFor(key);
  std::shared_ptr<const std::vector<Point>> payload;
  uint64_t mass = 0;
  {
    MutexLock lock(&seg.mu);
    const auto it = seg.map.find(key);
    if (it == seg.map.end()) {
      misses_->Add(1);
      return false;
    }
    Entry& entry = *it->second;
    if (!StampValid(entry, topo, snaps)) {
      // Stale: the world moved under it. Erase so the slot is not probed
      // (and re-invalidated) forever, and let the caller re-execute.
      seg.bytes -= entry.bytes;
      bytes_gauge_->Add(-static_cast<int64_t>(entry.bytes));
      seg.lru.erase(it->second);
      seg.map.erase(it);
      invalidations_->Add(1);
      return false;
    }
    // Touch: move to the front of the LRU list (splice keeps iterators in
    // seg.map valid), grab the payload, and get OFF the segment mutex —
    // every probe of a hot rect lands on this one segment, so the
    // O(result) copy below must not serialize them.
    seg.lru.splice(seg.lru.begin(), seg.lru, it->second);
    payload = entry.hits;
    for (const auto& [shard, version] : entry.shard_versions) mass += version;
  }
  // The shared_ptr keeps the payload alive even if the entry is evicted
  // or refreshed concurrently; the vector it points to is immutable.
  out->insert(out->end(), payload->begin(), payload->end());
  if (version_mass != nullptr) *version_mass = mass;
  hits_->Add(1);
  return true;
}

void ResultCache::Insert(const Rect& query, const std::vector<Point>& hits,
                         uint64_t epoch,
                         const std::vector<ShardQueryPart>& parts) {
  if (!enabled()) return;
  const size_t bytes = kEntryOverhead + hits.size() * sizeof(Point) +
                       parts.size() * sizeof(std::pair<int, uint64_t>);
  if (bytes > segment_capacity_) return;  // would evict a whole segment

  Entry entry;
  entry.key = KeyOf(query);
  entry.hits = std::make_shared<const std::vector<Point>>(hits);
  entry.epoch = epoch;
  entry.shard_versions.reserve(parts.size());
  for (const ShardQueryPart& part : parts) {
    entry.shard_versions.emplace_back(part.shard, part.snapshot_version);
  }
  entry.bytes = bytes;

  Segment& seg = SegmentFor(entry.key);
  int64_t evicted = 0;
  {
    MutexLock lock(&seg.mu);
    const auto it = seg.map.find(entry.key);
    if (it != seg.map.end()) {
      // Last-writer-wins refresh of an existing slot.
      seg.bytes -= it->second->bytes;
      bytes_gauge_->Add(-static_cast<int64_t>(it->second->bytes));
      seg.lru.erase(it->second);
      seg.map.erase(it);
    }
    while (seg.bytes + bytes > segment_capacity_ && !seg.lru.empty()) {
      seg.bytes -= seg.lru.back().bytes;
      bytes_gauge_->Add(-static_cast<int64_t>(seg.lru.back().bytes));
      seg.map.erase(seg.lru.back().key);
      seg.lru.pop_back();
      ++evicted;
    }
    seg.bytes += bytes;
    bytes_gauge_->Add(static_cast<int64_t>(bytes));
    seg.lru.push_front(std::move(entry));
    seg.map.emplace(seg.lru.front().key, seg.lru.begin());
  }
  insertions_->Add(1);
  if (evicted > 0) {
    evictions_->Add(evicted);
    // One event per evicting insert (not per entry): the signal operators
    // need is "inserts are displacing entries", not an event flood.
    if (journal_ != nullptr) {
      journal_->Record(obs::TraceEventKind::kCacheEvict, /*epoch=*/0,
                       /*shard=*/-1, evicted,
                       static_cast<int64_t>(bytes));
    }
  }
}

void ResultCache::Clear() {
  for (const auto& seg : segments_) {
    MutexLock lock(&seg->mu);
    seg->lru.clear();
    seg->map.clear();
    bytes_gauge_->Add(-static_cast<int64_t>(seg->bytes));
    seg->bytes = 0;
  }
}

ResultCacheStats ResultCache::stats() const {
  // Thin view over the registry handles; size_bytes stays the exact
  // under-lock sum (the gauge is the cheap exported mirror).
  ResultCacheStats s;
  s.hits = hits_->value();
  s.misses = misses_->value();
  s.invalidations = invalidations_->value();
  s.insertions = insertions_->value();
  s.evictions = evictions_->value();
  for (const auto& seg : segments_) {
    MutexLock lock(&seg->mu);
    s.size_bytes += seg->bytes;
  }
  return s;
}

}  // namespace wazi::serve

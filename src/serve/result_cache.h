// Snapshot-stamped hot-result cache for the serving engine.
//
// Skewed traffic re-asks the same hot range rectangles thousands of times
// between snapshot swaps; each re-execution pays the full projection +
// scan even though nothing it reads has changed. The ResultCache
// memoizes range results keyed by the exact query rectangle and stamps
// every entry with the coordinates of the data it was computed from:
//
//   stamp = { topology epoch,
//             (shard id, per-shard snapshot version) for every shard the
//             query touched }
//
// An entry is served only while its stamp still describes the present:
// the probe re-checks the stamp against the topology/snapshots the caller
// is about to execute on, and any mismatch (a shard published a new
// snapshot, or a repartition bumped the epoch) makes the entry invalid.
// There are no invalidation hooks anywhere in the write path — writers
// and migrations already version everything they touch, so staleness
// detection falls out of the existing versioning:
//
//   * per-shard snapshot swap  -> that shard's version changed    -> miss
//   * topology swap (cutover)  -> the epoch changed               -> miss
//   * mid-migration            -> queries pin an epoch; the entry is
//     valid for the pinned generation or for neither
//
// Why stamping only the TOUCHED shards is sound: within one topology,
// routing is a pure function of coordinates, so a point that routes into
// a shard whose cell does not overlap the query rectangle can never be a
// result of that query. Any update that could change the result must land
// in a touched shard and bump its version. Across topologies no such
// argument holds (cells move), which is why the epoch is part of the
// stamp.
//
// Structure: N independent cache shards (key-hashed) each holding an LRU
// list + hash map under its own mutex, so concurrent clients probing
// different keys rarely contend. Capacity is bytes of cached result
// payload; eviction is per-cache-shard LRU. Thread-safe throughout.

#ifndef WAZI_SERVE_RESULT_CACHE_H_
#define WAZI_SERVE_RESULT_CACHE_H_

#include <atomic>
#include <cstdint>
#include <cstddef>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "obs/metrics.h"
#include "obs/trace_journal.h"
#include "serve/sharded_index.h"

namespace wazi::serve {

struct ResultCacheOptions {
  // Total cached-payload budget across all cache shards; 0 disables the
  // cache (every Lookup misses, Insert is a no-op).
  size_t capacity_bytes = 0;
  // Independent LRU segments (key-hashed). More segments = less mutex
  // contention between concurrent clients, slightly coarser LRU.
  int segments = 16;
};

// Aggregate counters (monotone; read from any thread).
struct ResultCacheStats {
  int64_t hits = 0;
  int64_t misses = 0;         // absent key
  int64_t invalidations = 0;  // present but stamp-stale (counts as a miss)
  int64_t insertions = 0;
  int64_t evictions = 0;
  size_t size_bytes = 0;
  int64_t lookups() const { return hits + misses + invalidations; }
  double hit_rate() const {
    const int64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

class ResultCache {
 public:
  // `registry`, when given, hosts the cache's counters/gauge
  // (serve_cache_hits_total, ..., serve_cache_bytes) — ServeLoop passes
  // its own so every surface exports through one snapshot; a standalone
  // cache owns a private registry so stats() works identically. `journal`,
  // when given, receives one kCacheEvict event per insert that evicted.
  explicit ResultCache(ResultCacheOptions opts,
                       obs::MetricsRegistry* registry = nullptr,
                       obs::TraceJournal* journal = nullptr);

  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;

  bool enabled() const { return opts_.capacity_bytes > 0; }

  // Probes for `query`'s cached hits, validating the entry's stamp
  // against `topo` — the topology the caller pinned for this query — and,
  // when non-null, `snaps` (a SnapshotSet of that same topology): with
  // `snaps` the versions checked are the pre-acquired snapshots' (the
  // exact instances the caller would execute on), otherwise each touched
  // shard's live published version. On a valid hit appends the cached
  // points to `out`, adds the stamped version mass to `*version_mass`
  // (when non-null) and returns true. A stale entry is erased and counts
  // as `invalidations`.
  bool Lookup(const Rect& query, const ShardTopology& topo,
              const ShardedVersionedIndex::SnapshotSet* snaps,
              std::vector<Point>* out, uint64_t* version_mass = nullptr);

  // Caches `hits` for `query`, stamped with `epoch` and the per-shard
  // snapshot versions in `parts` (the shards the executed query actually
  // touched — ShardedVersionedIndex::RangeQuery's `parts` out-param).
  // Results larger than one cache segment are not cached. Racing inserts
  // of one key are last-writer-wins: every stamp was valid when its
  // result was computed, and the next probe re-validates whichever won.
  void Insert(const Rect& query, const std::vector<Point>& hits,
              uint64_t epoch, const std::vector<ShardQueryPart>& parts);

  // Drops every entry (counters are kept; eviction counters unchanged).
  void Clear();

  ResultCacheStats stats() const;

 private:
  // Rect coordinates by BIT PATTERN, not double value: equality must
  // agree with the hash (double == would merge -0.0/0.0 across buckets
  // and make a NaN-carrying key never equal itself, breaking erase).
  // Bit-distinct-but-equal rects simply occupy distinct entries.
  struct Key {
    uint64_t min_x, min_y, max_x, max_y;
    bool operator==(const Key&) const = default;
  };
  static Key KeyOf(const Rect& r);
  struct KeyHash {
    size_t operator()(const Key& k) const;
  };
  struct Entry {
    Key key;
    // shared_ptr so a hit can hand the payload out of the segment lock
    // and copy it into the caller's vector WITHOUT holding the mutex —
    // identical hot rects all land in one segment, so an under-lock copy
    // would serialize exactly the traffic the cache exists to absorb.
    std::shared_ptr<const std::vector<Point>> hits;
    uint64_t epoch = 0;
    // (shard id, snapshot version) per touched shard; empty-rect queries
    // touch no shard and stay valid for the whole epoch.
    std::vector<std::pair<int, uint64_t>> shard_versions;
    size_t bytes = 0;
  };
  struct Segment {
    Mutex mu;
    std::list<Entry> lru GUARDED_BY(mu);  // front = most recent
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map
        GUARDED_BY(mu);
    size_t bytes GUARDED_BY(mu) = 0;
  };

  Segment& SegmentFor(const Key& key);
  static bool StampValid(const Entry& e, const ShardTopology& topo,
                         const ShardedVersionedIndex::SnapshotSet* snaps);

  ResultCacheOptions opts_;
  size_t segment_capacity_ = 0;
  std::vector<std::unique_ptr<Segment>> segments_;
  // Counters live in the registry (the *_stats() accessor is a thin view
  // over these handles); own_registry_ backs them when the caller did not
  // supply one. Hot paths touch only the padded handles, never a map.
  std::unique_ptr<obs::MetricsRegistry> own_registry_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* invalidations_ = nullptr;
  obs::Counter* insertions_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Gauge* bytes_gauge_ = nullptr;  // mirror of sum(seg.bytes)
  obs::TraceJournal* journal_ = nullptr;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_RESULT_CACHE_H_

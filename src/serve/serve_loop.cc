#include "serve/serve_loop.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace wazi::serve {

ServeLoop::ServeLoop(IndexFactory factory, const Dataset& data,
                     const Workload& workload, const BuildOptions& build_opts,
                     ServeOptions opts)
    : opts_(opts),
      index_(std::move(factory), data, workload, build_opts,
             ShardedIndexOptions{opts.num_shards,
                                 VersionedIndexOptions{opts.track_points}}),
      engine_(&index_, opts.num_threads) {
  writers_.reserve(static_cast<size_t>(index_.num_shards()));
  for (int s = 0; s < index_.num_shards(); ++s) {
    writers_.push_back(std::make_unique<ShardWriter>(opts_.drift));
    writers_.back()->recent.resize(opts_.recent_window);
  }
  // Threads last: WriterLoop touches writers_[s] and index_.shard(s).
  for (int s = 0; s < index_.num_shards(); ++s) {
    writers_[static_cast<size_t>(s)]->thread =
        std::thread([this, s] { WriterLoop(s); });
  }
}

ServeLoop::~ServeLoop() { Stop(); }

QueryResult ServeLoop::Range(const Rect& query, QueryStats* stats) {
  QueryResult result;
  // Reused per thread: client threads call Range at full rate and the
  // parts are consumed before returning.
  static thread_local std::vector<ShardQueryPart> parts;
  index_.RangeQuery(query, &result.hits, nullptr, &parts,
                    &result.snapshot_version);
  for (const ShardQueryPart& part : parts) {
    // Each shard observes the work IT did on the sub-rectangle IT served,
    // so a drifting region only retrains the shards that cover it.
    ObserveShard(part.shard, &part.rect, part.stats);
    if (stats != nullptr) stats->Add(part.stats);
  }
  return result;
}

bool ServeLoop::PointLookup(const Point& p, QueryStats* stats) {
  // Point lookups carry no rectangle and touch O(1) work; they do not feed
  // the drift monitors.
  return index_.PointQuery(p, stats);
}

QueryResult ServeLoop::Knn(const Point& center, int k, QueryStats* stats) {
  QueryStats qs;
  QueryResult result;
  result.hits = index_.Knn(center, k, &qs, &result.snapshot_version);
  // kNN work is attributed to the center's home shard (the expansion
  // usually stays inside it); no rectangle feeds the recent ring.
  ObserveShard(index_.ShardOf(center), nullptr, qs);
  if (stats != nullptr) stats->Add(qs);
  return result;
}

void ServeLoop::ExecuteBatch(const std::vector<QueryRequest>& requests,
                             std::vector<QueryResult>* results) {
  engine_.ExecuteBatch(requests, results);
}

void ServeLoop::Submit(const Point& p, bool insert) {
  ShardWriter& w = *writers_[static_cast<size_t>(index_.ShardOf(p))];
  bool notify;
  {
    std::lock_guard<std::mutex> lock(w.queue_mu);
    w.queue.push_back(insert ? UpdateOp::Insert(p) : UpdateOp::Remove(p));
    ++w.submitted;
    // Wake the writer when there is NEW work (empty -> non-empty) or a full
    // batch is ready; ops in between land in the coalescing window without
    // a futex wake per op.
    notify = w.queue.size() == 1 || w.queue.size() >= opts_.writer_batch_limit;
  }
  if (notify) w.queue_cv.notify_one();
}

void ServeLoop::SubmitInsert(const Point& p) { Submit(p, /*insert=*/true); }

void ServeLoop::SubmitRemove(const Point& p) { Submit(p, /*insert=*/false); }

void ServeLoop::TriggerRebuild() {
  for (const auto& w : writers_) {
    {
      std::lock_guard<std::mutex> lock(w->queue_mu);
      w->rebuild_requested = true;
    }
    w->queue_cv.notify_one();
  }
}

void ServeLoop::Flush() {
  for (const auto& w : writers_) {
    std::unique_lock<std::mutex> lock(w->queue_mu);
    w->flush_cv.wait(lock, [&w] { return w->applied == w->submitted; });
  }
}

void ServeLoop::Stop() {
  for (const auto& w : writers_) {
    {
      std::lock_guard<std::mutex> lock(w->queue_mu);
      if (w->stop) continue;
      w->stop = true;
    }
    w->queue_cv.notify_all();
  }
  for (const auto& w : writers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

int64_t ServeLoop::rebuilds() const {
  int64_t total = 0;
  for (const auto& w : writers_) {
    total += w->rebuilds.load(std::memory_order_relaxed);
  }
  return total;
}

double ServeLoop::drift_ratio() {
  double worst = 0.0;
  for (const auto& w : writers_) {
    std::lock_guard<std::mutex> lock(w->monitor_mu);
    worst = std::max(worst, w->monitor.drift_ratio());
  }
  return worst;
}

void ServeLoop::WriterLoop(int s) {
  ShardWriter& w = *writers_[static_cast<size_t>(s)];
  VersionedIndex& shard = index_.shard(s);
  const auto poll = std::chrono::milliseconds(opts_.drift_poll_ms);
  for (;;) {
    std::vector<UpdateOp> batch;
    bool rebuild = false;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(w.queue_mu);
      w.queue_cv.wait_for(lock, poll, [&w] {
        return w.stop || w.rebuild_requested || !w.queue.empty();
      });
      if (!w.queue.empty() && w.queue.size() < opts_.writer_batch_limit &&
          !w.stop && !w.rebuild_requested && opts_.writer_coalesce_ms > 0) {
        // Group commit: linger briefly so a fast submit stream lands in one
        // batch (one snapshot publish) instead of one publish per op.
        w.queue_cv.wait_for(
            lock, std::chrono::milliseconds(opts_.writer_coalesce_ms),
            [this, &w] {
              return w.stop || w.rebuild_requested ||
                     w.queue.size() >= opts_.writer_batch_limit;
            });
      }
      stopping = w.stop;
      if (stopping && w.queue.empty() && !w.rebuild_requested) break;
      const size_t take = std::min(w.queue.size(), opts_.writer_batch_limit);
      batch.assign(w.queue.begin(), w.queue.begin() + take);
      w.queue.erase(w.queue.begin(), w.queue.begin() + take);
      rebuild = w.rebuild_requested;
      w.rebuild_requested = false;
    }

    if (!batch.empty()) shard.ApplyBatch(batch);

    if (!rebuild && opts_.auto_rebuild && !stopping) {
      std::lock_guard<std::mutex> lock(w.monitor_mu);
      rebuild = w.monitor.rebuild_recommended();
    }
    if (rebuild) {
      Workload recent;
      {
        std::lock_guard<std::mutex> lock(w.monitor_mu);
        recent = RecentWorkloadLocked(s);
      }
      // Per-shard rebuild: only this shard's left-right pair re-levels;
      // every other shard keeps serving its current snapshots.
      shard.Rebuild(recent);
      {
        std::lock_guard<std::mutex> lock(w.monitor_mu);
        w.monitor.ResetAfterRebuild();
      }
      w.rebuilds.fetch_add(1, std::memory_order_relaxed);
    }

    if (!batch.empty()) {
      std::lock_guard<std::mutex> lock(w.queue_mu);
      w.applied += batch.size();
      if (w.applied == w.submitted) w.flush_cv.notify_all();
    }
  }
}

void ServeLoop::ObserveShard(int s, const Rect* rect,
                             const QueryStats& stats) {
  ShardWriter& w = *writers_[static_cast<size_t>(s)];
  // try_lock == sampling: under heavy reader contention most observations
  // are dropped instead of serializing the hot path on this mutex.
  std::unique_lock<std::mutex> lock(w.monitor_mu, std::try_to_lock);
  if (!lock.owns_lock()) return;
  w.monitor.Observe(stats.points_scanned, stats.results);
  if (rect != nullptr && !w.recent.empty()) {
    w.recent[w.recent_next] = *rect;
    w.recent_next = (w.recent_next + 1) % w.recent.size();
    if (w.recent_count < w.recent.size()) ++w.recent_count;
  }
}

Workload ServeLoop::RecentWorkloadLocked(int s) {
  ShardWriter& w = *writers_[static_cast<size_t>(s)];
  // Too few live observations to characterize the shard's workload — fall
  // back to the slice of the build-time workload that overlaps its cell.
  if (w.recent_count < 32) return index_.shard_workload(s);
  Workload recent;
  recent.name = "recent/shard" + std::to_string(s);
  recent.selectivity = index_.shard_workload(s).selectivity;
  recent.queries.reserve(w.recent_count);
  for (size_t i = 0; i < w.recent_count; ++i) {
    recent.queries.push_back(w.recent[i]);
  }
  return recent;
}

}  // namespace wazi::serve

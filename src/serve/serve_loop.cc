#include "serve/serve_loop.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace wazi::serve {

ServeLoop::ServeLoop(IndexFactory factory, const Dataset& data,
                     const Workload& workload, const BuildOptions& build_opts,
                     ServeOptions opts)
    : opts_(opts),
      journal_(opts.obs.journal_capacity),
      index_(std::move(factory), data, workload, build_opts,
             MakeIndexOptions()),
      cache_(opts.cache, &metrics_, &journal_),
      engine_(&index_, opts.num_threads, &cache_, &metrics_),
      admission_(std::make_unique<AdmissionQueue>(
          &engine_, &index_, opts.admission, &metrics_, &journal_,
          opts.obs.trace_sample_every)),
      repartition_monitor_(opts.repartition) {
  rebuilds_ctr_ = metrics_.GetCounter("serve_drift_rebuilds_total");
  stall_ctr_ = metrics_.GetCounter("serve_stall_copies_total");
  migrations_ctr_ = metrics_.GetCounter("serve_migrations_total");
  migrations_incr_ctr_ =
      metrics_.GetCounter("serve_migrations_incremental_total");
  moved_points_ctr_ = metrics_.GetCounter("serve_moved_points_total");
  last_moved_gauge_ = metrics_.GetGauge("serve_last_moved_shards");
  last_carried_gauge_ = metrics_.GetGauge("serve_last_carried_shards");
  // Same handles the engine registers: the direct Knn/PointLookup paths
  // bypass the engine, so the loop counts those itself.
  point_queries_ctr_ = metrics_.GetCounter("serve_point_queries_total");
  knn_queries_ctr_ = metrics_.GetCounter("serve_knn_queries_total");
  simd_batches_ctr_ = metrics_.GetCounter("serve_simd_batches_total");
  scalar_tail_ctr_ = metrics_.GetCounter("serve_scalar_tail_total");
  latency_hist_ = metrics_.GetHistogram("serve_query_latency_ns");
  writer_gen_.Store(StartWriters(index_.AcquireTopology()));
  if (opts_.repartition.enabled) {
    monitor_thread_ = std::thread([this] { MonitorLoop(); });
  }
}

ServeLoop::~ServeLoop() { Stop(); }

ShardedIndexOptions ServeLoop::MakeIndexOptions() {
  // Shared per-shard options; the topology builders stamp the per-shard
  // (shard_id, epoch) attribution on top.
  VersionedIndexOptions vopts;
  vopts.track_points = opts_.track_points;
  vopts.writer_stall_ms = opts_.writer_stall_ms;
  vopts.stall_counter = metrics_.GetCounter("serve_stall_copies_total");
  vopts.publish_counter =
      metrics_.GetCounter("serve_snapshot_publishes_total");
  vopts.zombie_gauge = metrics_.GetGauge("serve_zombie_instances");
  vopts.journal = &journal_;
  ShardedIndexOptions sopts;
  sopts.num_shards = opts_.num_shards;
  sopts.versioned = vopts;
  sopts.registry = &metrics_;
  return sopts;
}

bool ServeLoop::SampleThisQuery() {
  // Rate 0 is the production default and must cost nothing: one integer
  // compare, no atomics, no clock.
  if (opts_.obs.trace_sample_every == 0) return false;
  return sample_tick_.fetch_add(1, std::memory_order_relaxed) %
             opts_.obs.trace_sample_every ==
         0;
}

void ServeLoop::FinishMigration(uint64_t old_epoch, uint64_t new_epoch,
                                int64_t moved_shards, int64_t carried_shards,
                                int64_t moved_points, bool incremental) {
  (void)old_epoch;
  {
    MutexLock lock(&mig_mu_);
    ++mig_.migrations;
    if (incremental) ++mig_.incremental;
    mig_.last_moved_shards = moved_shards;
    mig_.last_carried_shards = carried_shards;
    mig_.last_moved_points = moved_points;
    mig_.total_moved_points += moved_points;
    // Registry mirrors and the repartitions() atomic move under the same
    // sequence point, so no observer ever sees e.g. the exported
    // migrations counter ahead of migration_stats().
    migrations_ctr_->Add(1);
    if (incremental) migrations_incr_ctr_->Add(1);
    moved_points_ctr_->Add(moved_points);
    last_moved_gauge_->Set(moved_shards);
    last_carried_gauge_->Set(carried_shards);
    // release: pairs with the acquire read in migration_stats(), so the
    // counters updated above are visible once the bump is observed.
    repartitions_.fetch_add(1, std::memory_order_release);
  }
  journal_.Record(obs::TraceEventKind::kMigrationRetire, new_epoch,
                  /*shard=*/-1, moved_shards, carried_shards, moved_points);
}

std::shared_ptr<ServeLoop::WriterGen> ServeLoop::StartWriters(
    std::shared_ptr<ShardTopology> topo, const std::vector<bool>* gated) {
  auto gen = std::make_shared<WriterGen>();
  gen->epoch = topo->epoch;
  gen->topo = std::move(topo);
  const int n = gen->topo->num_shards();
  gen->writers.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    gen->writers.push_back(std::make_unique<ShardWriter>(opts_.drift));
    ShardWriter& w = *gen->writers.back();
    // Pre-thread initialization: nothing else can reach this shard yet,
    // so the guards are uncontended — hold them anyway and keep the
    // field contracts unconditional.
    {
      MutexLock lock(&w.monitor_mu);
      w.recent.resize(opts_.recent_window);
    }
    if (gated != nullptr && (*gated)[static_cast<size_t>(s)]) {
      MutexLock lock(&w.queue_mu);
      w.gate = true;
    }
  }
  // Threads last: WriterLoop touches gen->writers[s] and gen->topo. Each
  // thread keeps its generation alive; the cycle breaks at join time.
  for (int s = 0; s < n; ++s) {
    gen->writers[static_cast<size_t>(s)]->thread =
        std::thread([this, gen, s] { WriterLoop(gen, s); });
  }
  return gen;
}

QueryResult ServeLoop::Range(const Rect& query, QueryStats* stats) {
  const int64_t trace_start_ns =
      SampleThisQuery() ? obs::TraceJournal::NowNs() : 0;
  // Reused per thread: client threads call Range at full rate and the
  // parts are consumed before returning.
  static thread_local std::vector<ShardQueryPart> parts;
  // One shared range path with the batch engine (cache probe, execute on
  // miss, refresh the entry); `stats` is filled there, so the loop below
  // only attributes drift — adding part.stats again would double count.
  const QueryResult result = engine_.ExecuteRange(query, stats,
                                                  /*snaps=*/nullptr, &parts);
  // parts is empty on a cache hit: no drift/stab feed — the cache
  // absorbed the work, so the load signals keep measuring what shards
  // actually do (and the hit path skips the generation load entirely).
  if (!parts.empty()) {
    const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
    for (const ShardQueryPart& part : parts) {
      // Each shard observes the work IT did on the sub-rectangle IT
      // served, so a drifting region only retrains the shards that cover
      // it. Shard ids are relative to the pinned epoch; ObserveShard
      // drops the sample if a repartition retired that generation
      // meanwhile.
      ObserveShard(*gen, result.epoch, part.shard, &part.rect, part.stats);
    }
  }
  if (trace_start_ns != 0) {
    const int64_t span_ns = obs::TraceJournal::NowNs() - trace_start_ns;
    latency_hist_->Record(span_ns);
    journal_.Record(obs::TraceEventKind::kQueryTrace, result.epoch,
                    /*shard=*/-1, /*wait_ns=*/0, span_ns, /*admitted=*/0);
  }
  return result;
}

bool ServeLoop::PointLookup(const Point& p, QueryStats* stats) {
  // Point lookups carry no rectangle and touch O(1) work; they do not feed
  // the drift monitors.
  point_queries_ctr_->Add(1);
  QueryStats qs;
  const bool found = index_.PointQuery(p, &qs);
  if (qs.simd_batches > 0) simd_batches_ctr_->Add(qs.simd_batches);
  if (qs.scalar_tail > 0) scalar_tail_ctr_->Add(qs.scalar_tail);
  if (stats != nullptr) stats->Add(qs);
  return found;
}

QueryResult ServeLoop::Knn(const Point& center, int k, QueryStats* stats) {
  knn_queries_ctr_->Add(1);
  QueryStats qs;
  QueryResult result;
  result.hits = index_.Knn(center, k, &qs, &result.snapshot_version, nullptr,
                           &result.epoch);
  if (qs.simd_batches > 0) simd_batches_ctr_->Add(qs.simd_batches);
  if (qs.scalar_tail > 0) scalar_tail_ctr_->Add(qs.scalar_tail);
  // kNN work is attributed to the center's home shard (the expansion
  // usually stays inside it); no rectangle feeds the recent ring.
  const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
  if (gen->epoch == result.epoch) {
    ObserveShard(*gen, result.epoch, gen->topo->router.ShardOf(center),
                 nullptr, qs);
  }
  if (stats != nullptr) stats->Add(qs);
  return result;
}

void ServeLoop::ExecuteBatch(const std::vector<QueryRequest>& requests,
                             std::vector<QueryResult>* results) {
  engine_.ExecuteBatch(requests, results);
}

std::future<QueryResult> ServeLoop::SubmitQuery(const QueryRequest& request) {
  return admission_->Submit(request);
}

std::vector<std::future<QueryResult>> ServeLoop::SubmitBatch(
    const std::vector<QueryRequest>& requests) {
  return admission_->SubmitBatch(requests);
}

void ServeLoop::Submit(const Point& p, bool insert) {
  const UpdateOp op = insert ? UpdateOp::Insert(p) : UpdateOp::Remove(p);
  for (;;) {
    const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
    if (EnqueueTo(*gen, op, opts_.writer_batch_limit)) return;
    // Cutover raced us: this shard is closed and its final delta already
    // replayed. Wait for the successor generation to be installed (a short
    // window — the coordinator is replaying the final chunk).
    std::this_thread::yield();
  }
}

void ServeLoop::SubmitInsert(const Point& p) { Submit(p, /*insert=*/true); }

void ServeLoop::SubmitRemove(const Point& p) { Submit(p, /*insert=*/false); }

bool ServeLoop::EnqueueTo(WriterGen& gen, const UpdateOp& op,
                          size_t batch_limit) {
  ShardWriter& w =
      *gen.writers[static_cast<size_t>(gen.topo->router.ShardOf(op.point))];
  bool notify = false;
  {
    MutexLock lock(&w.queue_mu);
    if (w.closed) return false;
    w.queue.push_back(op);
    ++w.submitted;
    // Dual-write window of a live migration: the op ALSO lands in the
    // delta log that replays into the next generation.
    if (w.dual_write) w.delta.push_back(op);
    // Wake the writer when there is NEW work (empty -> non-empty) or a
    // full batch is ready; ops in between land in the coalescing window
    // without a futex wake per op.
    notify = w.queue.size() == 1 || w.queue.size() >= batch_limit;
  }
  if (notify) w.queue_cv.NotifyOne();
  return true;
}

void ServeLoop::TriggerRebuild() {
  const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
  for (const auto& w : gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      w->rebuild_requested = true;
    }
    w->queue_cv.NotifyOne();
  }
}

void ServeLoop::Flush() {
  // Re-check across topology swaps: a migration moves pending ops into the
  // successor generation's queues, so "everything submitted so far" is
  // only drained once a full pass completes on a stable generation whose
  // topology is also the PUBLISHED one — mid-cutover the writer generation
  // is installed before the topology, and returning in that window would
  // leave flushed updates invisible to fresh queries (they would still pin
  // the old, closed generation).
  for (;;) {
    const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
    for (const auto& w : gen->writers) {
      MutexLock lock(&w->queue_mu);
      while (w->applied != w->submitted) w->flush_cv.Wait(w->queue_mu);
    }
    if (writer_gen_.Load() == gen && index_.epoch() == gen->epoch) return;
    std::this_thread::yield();
  }
}

bool ServeLoop::TriggerRepartition(int new_num_shards) {
  MutexLock lock(&repartition_mu_);
  // acquire: pairs with Stop()'s release-store of stopping_.
  if (stopping_.load(std::memory_order_acquire)) return false;
  RepartitionLocked(new_num_shards);
  repartition_monitor_.ResetAfterRepartition(std::chrono::steady_clock::now());
  return true;
}

void ServeLoop::RepartitionLocked(int new_num_shards,
                                  const std::vector<ShardLoad>* window_loads,
                                  uint64_t window_epoch) {
  const std::shared_ptr<WriterGen> old_gen = writer_gen_.Load();
  const int n_old = old_gen->topo->num_shards();
  const int n_new = new_num_shards > 0 ? new_num_shards : n_old;
  // The per-cell path applies only when the grid shape survives: same
  // shard count (a resize re-cuts everything) and more than one shard.
  if (opts_.repartition.incremental && n_new == n_old && n_old > 1 &&
      TryIncrementalRepartitionLocked(old_gen, window_loads, window_epoch)) {
    return;
  }
  FullRepartitionLocked(old_gen, n_new);
}

Workload ServeLoop::MigrationWorkload(const WriterGen& gen) {
  // Router inputs: the recently served per-shard rectangles (the live
  // workload), falling back to the old generation's training slices when
  // traffic has been thin.
  const ShardTopology& topo = *gen.topo;
  Workload recent;
  recent.name = "repartition/e" + std::to_string(topo.epoch + 1);
  for (int s = 0; s < topo.num_shards(); ++s) {
    ShardWriter& w = *gen.writers[static_cast<size_t>(s)];
    recent.selectivity =
        topo.shard_workloads[static_cast<size_t>(s)].selectivity;
    MutexLock lock(&w.monitor_mu);
    for (size_t i = 0; i < w.recent_count; ++i) {
      recent.queries.push_back(w.recent[i]);
    }
  }
  if (recent.queries.size() < 32) {
    for (const Workload& sw : topo.shard_workloads) {
      recent.queries.insert(recent.queries.end(), sw.queries.begin(),
                            sw.queries.end());
    }
  }
  return recent;
}

void ServeLoop::BeginDualWriteAndCapture(WriterGen& gen,
                                         const std::vector<bool>* changed) {
  // From each participating shard's next submit on, ops are logged to its
  // delta as well as applied to the old generation. The capture target
  // pins everything submitted BEFORE dual-write began: those ops are only
  // visible through the captured point set, everything later is (also) in
  // a delta.
  for (size_t s = 0; s < gen.writers.size(); ++s) {
    if (changed != nullptr && !(*changed)[s]) continue;
    ShardWriter& w = *gen.writers[s];
    {
      MutexLock lock(&w.queue_mu);
      w.dual_write = true;
      w.capture_target = w.submitted;
      w.capture_requested = true;
      w.capture_done = false;
      w.captured.clear();
    }
    w.queue_cv.NotifyOne();
  }
}

std::vector<Point> ServeLoop::AwaitCaptures(WriterGen& gen,
                                            const std::vector<bool>* changed) {
  // Each participating old writer copies its authoritative point set once
  // it has applied through its capture target. Bounded by writer
  // progress, which is bounded by writer_stall_ms even under a parked
  // reader snapshot (copy-on-stall).
  std::vector<Point> points;
  for (size_t s = 0; s < gen.writers.size(); ++s) {
    if (changed != nullptr && !(*changed)[s]) continue;
    ShardWriter& w = *gen.writers[s];
    MutexLock lock(&w.queue_mu);
    while (!w.capture_done) w.capture_cv.Wait(w.queue_mu);
    points.insert(points.end(), w.captured.begin(), w.captured.end());
    w.captured.clear();
    w.captured.shrink_to_fit();
    w.capture_done = false;
  }
  return points;
}

size_t ServeLoop::DrainDeltas(WriterGen& old_gen, WriterGen& new_gen,
                              const std::vector<bool>* changed,
                              size_t batch_limit) {
  // Drain delta chunks into the new generation (routed through the NEW
  // router) while the old generation still accepts submits, so the final
  // stop-accepting window of the cutover only has a small chunk left to
  // replay. Per-coordinate order is preserved: identical coordinates
  // always route to the same old shard, whose delta is FIFO.
  std::vector<UpdateOp> chunk;
  size_t total_ops = 0;
  for (int round = 0; round < 8; ++round) {
    size_t moved_ops = 0;
    for (size_t s = 0; s < old_gen.writers.size(); ++s) {
      if (changed != nullptr && !(*changed)[s]) continue;
      ShardWriter& w = *old_gen.writers[s];
      chunk.clear();
      {
        MutexLock lock(&w.queue_mu);
        chunk.swap(w.delta);
      }
      for (const UpdateOp& op : chunk) {
        EnqueueTo(new_gen, op, batch_limit);
      }
      moved_ops += chunk.size();
    }
    total_ops += moved_ops;
    if (moved_ops <= batch_limit) break;
  }
  return total_ops;
}

void ServeLoop::FullRepartitionLocked(
    const std::shared_ptr<WriterGen>& old_gen, int n_new) {
  const ShardTopology& old_topo = *old_gen->topo;
  const uint64_t target_epoch = old_topo.epoch + 1;
  journal_.Record(obs::TraceEventKind::kMigrationPlan, target_epoch,
                  /*shard=*/-1, /*moved=*/n_new, /*carried=*/0,
                  /*incremental=*/0);

  // --- DUAL-WRITE + CAPTURE (every shard) --------------------------------
  BeginDualWriteAndCapture(*old_gen, /*changed=*/nullptr);
  std::vector<Point> points = AwaitCaptures(*old_gen, /*changed=*/nullptr);
  journal_.Record(obs::TraceEventKind::kMigrationCapture, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(points.size()));

  // --- BUILD -------------------------------------------------------------
  // Router inputs: the captured points and the recent live workload. The
  // old generation keeps serving reads and writes throughout.
  const Workload recent = MigrationWorkload(*old_gen);
  Rect domain = old_topo.domain;
  for (const Point& p : points) domain.Expand(p);

  const int64_t moved_points = static_cast<int64_t>(points.size());
  std::shared_ptr<ShardTopology> new_topo = index_.BuildNextTopology(
      points, recent, n_new, domain, old_topo.epoch + 1,
      /*version_base=*/0);
  points.clear();
  points.shrink_to_fit();
  const std::shared_ptr<WriterGen> new_gen = StartWriters(new_topo);

  // --- CATCH-UP ----------------------------------------------------------
  const size_t drained = DrainDeltas(*old_gen, *new_gen, /*changed=*/nullptr,
                                     opts_.writer_batch_limit);
  journal_.Record(obs::TraceEventKind::kMigrationCatchUp, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(drained));

  // --- CUTOVER -----------------------------------------------------------
  // Close every old shard (submitters retry until the new generation is
  // installed) and take the final delta chunks.
  std::vector<UpdateOp> final_ops;
  for (const auto& w : old_gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      w->closed = true;
      w->dual_write = false;
      final_ops.insert(final_ops.end(), w->delta.begin(), w->delta.end());
      w->delta.clear();
    }
    w->queue_cv.NotifyAll();
  }
  // Replay the final chunks BEFORE opening the new generation to direct
  // submits, so per-coordinate op order spans the generations correctly.
  for (const UpdateOp& op : final_ops) {
    EnqueueTo(*new_gen, op, opts_.writer_batch_limit);
  }
  std::vector<uint64_t> replay_targets(new_gen->writers.size());
  for (size_t s = 0; s < new_gen->writers.size(); ++s) {
    MutexLock lock(&new_gen->writers[s]->queue_mu);
    replay_targets[s] = new_gen->writers[s]->submitted;
  }
  // Open the flood gates: submits route to the new generation from here.
  writer_gen_.Store(new_gen);

  // Old writers drain (closed shards accept nothing new, so this
  // terminates), making the old generation's final state fixed...
  for (const auto& w : old_gen->writers) {
    MutexLock lock(&w->queue_mu);
    while (w->applied != w->submitted) w->flush_cv.Wait(w->queue_mu);
  }
  // ...which pins the version base that keeps the facade version monotone
  // across the swap.
  new_topo->version_base = old_topo.version();
  // New writers catch up through the replay before readers see the new
  // topology: a query re-issued right after the swap observes at least
  // everything the old generation's final state served.
  for (size_t s = 0; s < new_gen->writers.size(); ++s) {
    ShardWriter& w = *new_gen->writers[s];
    MutexLock lock(&w.queue_mu);
    while (w.applied < replay_targets[s]) w.flush_cv.Wait(w.queue_mu);
  }
  index_.PublishTopology(new_topo);
  journal_.Record(obs::TraceEventKind::kMigrationCutover, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(final_ops.size()));

  // --- RETIRE ------------------------------------------------------------
  for (const auto& w : old_gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      w->stop = true;
    }
    w->queue_cv.NotifyAll();
  }
  for (const auto& w : old_gen->writers) {
    if (w->thread.joinable()) w->thread.join();
  }
  // The old topology itself is reclaimed once the last reader that pinned
  // it lets go (its shards' VersionedIndex destructors wait out their
  // snapshot drains).
  FinishMigration(old_topo.epoch, target_epoch, /*moved_shards=*/n_new,
                  /*carried_shards=*/0, moved_points, /*incremental=*/false);
}

bool ServeLoop::TryIncrementalRepartitionLocked(
    const std::shared_ptr<WriterGen>& old_gen,
    const std::vector<ShardLoad>* window_loads, uint64_t window_epoch) {
  const ShardTopology& old_topo = *old_gen->topo;
  const ShardRouter& router = old_topo.router;
  const int n = old_topo.num_shards();

  // --- PLAN --------------------------------------------------------------
  // Stab inputs must match what armed the trigger: the monitor judges
  // per-interval DELTAS, so when its window samples are available (and
  // still describe THIS generation — a concurrent TriggerRepartition may
  // have swapped it since they were taken) the planner uses those, not
  // the generation's lifetime totals, which would dilute a late-breaking
  // query skew under a long balanced history (plan finds nothing →
  // silent full rebuild) or keep a formerly-hot cell dirty forever.
  // Manual triggers have no window and fall back to the per-generation
  // totals. Item counts are always read fresh from the mirrors.
  const bool use_window = window_loads != nullptr &&
                          window_epoch == old_gen->epoch &&
                          window_loads->size() == static_cast<size_t>(n);
  std::vector<ShardLoad> loads(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    ShardLoad& load = loads[static_cast<size_t>(s)];
    load.items = old_topo.shards[static_cast<size_t>(s)]->num_points();
    load.query_stabs =
        use_window
            ? (*window_loads)[static_cast<size_t>(s)].query_stabs
            : old_gen->writers[static_cast<size_t>(s)]
                  // relaxed: pure statistic sampled for planning.
                  ->query_stabs.load(std::memory_order_relaxed);
  }
  const IncrementalPlan plan =
      PlanIncrementalRecut(router.rows(), router.cols(), loads,
                           opts_.repartition);
  if (!plan.feasible) return false;
  const uint64_t target_epoch = old_topo.epoch + 1;
  journal_.Record(obs::TraceEventKind::kMigrationPlan, target_epoch,
                  /*shard=*/-1, /*moved=*/plan.num_changed(),
                  /*carried=*/n - plan.num_changed(), /*incremental=*/1);

  // --- DUAL-WRITE + CAPTURE (changed shards only) -------------------------
  // Carried shards never dual-write: their live VersionedIndex moves to
  // the new generation as-is, so every op applied to them is carried too.
  BeginDualWriteAndCapture(*old_gen, &plan.changed);
  std::vector<Point> moved = AwaitCaptures(*old_gen, &plan.changed);
  journal_.Record(obs::TraceEventKind::kMigrationCapture, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(moved.size()));

  // --- BUILD (moved boundaries + changed shards only) ---------------------
  const Workload recent = MigrationWorkload(*old_gen);
  Rect domain = old_topo.domain;
  for (const Point& p : moved) domain.Expand(p);
  ShardRouter new_router;
  new_router.BuildMovedCuts(router, plan.y_cut_moves, plan.x_cut_moves,
                            moved, domain, &recent);
  std::shared_ptr<ShardTopology> new_topo = index_.BuildIncrementalTopology(
      old_topo, new_router, plan.changed, moved, recent, domain,
      old_topo.epoch + 1);
  const int64_t moved_points = static_cast<int64_t>(moved.size());
  moved.clear();
  moved.shrink_to_fit();
  // Carried shards' new writers start GATED: they share their
  // VersionedIndex with the old generation's writers, which own it until
  // the old drain below.
  std::vector<bool> gated(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    gated[static_cast<size_t>(s)] = !plan.changed[static_cast<size_t>(s)];
  }
  const std::shared_ptr<WriterGen> new_gen = StartWriters(new_topo, &gated);

  // --- CATCH-UP (changed shards' deltas) ----------------------------------
  const size_t drained =
      DrainDeltas(*old_gen, *new_gen, &plan.changed, opts_.writer_batch_limit);
  journal_.Record(obs::TraceEventKind::kMigrationCatchUp, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(drained));

  // --- CUTOVER -------------------------------------------------------------
  // ALL old shards close — carried ones too, so a submitter that loaded
  // the old generation before the swap can never reach an old queue after
  // its drain (it retries into the successor instead).
  std::vector<UpdateOp> final_ops;
  for (const auto& w : old_gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      w->closed = true;
      if (w->dual_write) {
        w->dual_write = false;
        final_ops.insert(final_ops.end(), w->delta.begin(), w->delta.end());
        w->delta.clear();
      }
    }
    w->queue_cv.NotifyAll();
  }
  // Replay the final chunks BEFORE opening the new generation to direct
  // submits, so per-coordinate op order spans the generations correctly.
  for (const UpdateOp& op : final_ops) {
    EnqueueTo(*new_gen, op, opts_.writer_batch_limit);
  }
  std::vector<uint64_t> replay_targets(new_gen->writers.size(), 0);
  for (size_t s = 0; s < new_gen->writers.size(); ++s) {
    if (!plan.changed[s]) continue;
    MutexLock lock(&new_gen->writers[s]->queue_mu);
    replay_targets[s] = new_gen->writers[s]->submitted;
  }
  // Open the flood gates: submits route to the new generation from here.
  // Carried shards' ops queue behind their (still closed) gate.
  writer_gen_.Store(new_gen);

  // Old writers drain — including the carried shards' writers, whose
  // queued tail applies to the SHARED VersionedIndex here, before the
  // gate opens (per-coordinate order across the hand-off)...
  for (const auto& w : old_gen->writers) {
    MutexLock lock(&w->queue_mu);
    while (w->applied != w->submitted) w->flush_cv.Wait(w->queue_mu);
  }
  // ...which freezes the old generation's final state. Version base:
  // carried shards keep their (still advancing) version counters, so the
  // base absorbs only the retiring REBUILT shards' versions — the facade
  // version stays monotone and tight across the swap.
  uint64_t version_base = old_topo.version_base;
  for (int s = 0; s < n; ++s) {
    if (plan.changed[static_cast<size_t>(s)]) {
      version_base += old_topo.shards[static_cast<size_t>(s)]->version();
    }
  }
  new_topo->version_base = version_base;
  // Single-writer hand-off complete: open the carried shards' gates.
  for (size_t s = 0; s < new_gen->writers.size(); ++s) {
    if (plan.changed[s]) continue;
    {
      MutexLock lock(&new_gen->writers[s]->queue_mu);
      new_gen->writers[s]->gate = false;
    }
    new_gen->writers[s]->queue_cv.NotifyAll();
  }
  // Rebuilt shards catch up through the replay before readers see the new
  // topology.
  for (size_t s = 0; s < new_gen->writers.size(); ++s) {
    if (!plan.changed[s]) continue;
    ShardWriter& w = *new_gen->writers[s];
    MutexLock lock(&w.queue_mu);
    while (w.applied < replay_targets[s]) w.flush_cv.Wait(w.queue_mu);
  }
  index_.PublishTopology(new_topo);
  journal_.Record(obs::TraceEventKind::kMigrationCutover, target_epoch,
                  /*shard=*/-1, static_cast<int64_t>(final_ops.size()));

  // --- RETIRE --------------------------------------------------------------
  for (const auto& w : old_gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      w->stop = true;
    }
    w->queue_cv.NotifyAll();
  }
  for (const auto& w : old_gen->writers) {
    if (w->thread.joinable()) w->thread.join();
  }
  const int changed = plan.num_changed();
  FinishMigration(old_topo.epoch, target_epoch, /*moved_shards=*/changed,
                  /*carried_shards=*/n - changed, moved_points,
                  /*incremental=*/true);
  return true;
}

MigrationStats ServeLoop::migration_stats() const {
  // One sequence point: every coordinator field is copied under the same
  // mutex FinishMigration publishes under, so the snapshot can never be a
  // torn mix of before/after a migration. stall_copies is a live counter
  // owned by the shard writers, not the coordinator; it rides along as a
  // point-in-time read.
  MigrationStats stats;
  {
    MutexLock lock(&mig_mu_);
    stats = mig_;
  }
  stats.stall_copies = stall_ctr_->value();
  return stats;
}

void ServeLoop::MonitorLoop() {
  const auto poll = std::chrono::milliseconds(opts_.repartition.poll_ms);
  // Stab counters are cumulative per generation; the monitor judges the
  // per-interval DELTA so a workload shift shows up immediately instead of
  // being diluted by a long balanced history.
  uint64_t last_epoch = 0;
  std::vector<int64_t> last_stabs;
  MutexLock lk(&monitor_mu_);
  // acquire on every stopping_ check in this loop: pairs with Stop()'s
  // release-store, so the monitor also observes whatever Stop() published
  // before raising the flag.
  while (!stopping_.load(std::memory_order_acquire)) {
    // Sleep out one poll interval unless Stop() interrupts it.
    const auto deadline = std::chrono::steady_clock::now() + poll;
    while (!stopping_.load(std::memory_order_acquire)) {  // see above
      if (monitor_cv_.WaitUntil(monitor_mu_, deadline) ==
          std::cv_status::timeout) {
        break;
      }
    }
    if (stopping_.load(std::memory_order_acquire)) break;  // see above
    lk.Unlock();

    const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
    if (gen->epoch != last_epoch) {
      last_epoch = gen->epoch;
      last_stabs.assign(gen->writers.size(), 0);
    }
    std::vector<ShardLoad> loads(gen->writers.size());
    for (size_t s = 0; s < gen->writers.size(); ++s) {
      ShardLoad& load = loads[s];
      load.items = gen->topo->shards[s]->num_points();
      // relaxed: cumulative statistic; the monitor diffs it per interval.
      const int64_t stabs =
          gen->writers[s]->query_stabs.load(std::memory_order_relaxed);
      load.query_stabs = stabs - last_stabs[s];
      last_stabs[s] = stabs;
      MutexLock lock(&gen->writers[s]->queue_mu);
      load.queue_depth = gen->writers[s]->queue.size();
    }
    {
      MutexLock lock(&repartition_mu_);
      if (!stopping_.load(std::memory_order_acquire)) {  // see above
        const auto now = std::chrono::steady_clock::now();
        const bool go = repartition_monitor_.Observe(loads, now);
        // relaxed: observability gauge, no data published through it.
        last_imbalance_.store(repartition_monitor_.imbalance(),
                              std::memory_order_relaxed);
        if (go) {
          // 0 = re-cut at the current count; a matured auto-tune streak
          // recommends the new count, executed as a full migration. The
          // window samples ride along so the incremental planner judges
          // the same per-interval stab deltas that armed the trigger.
          RepartitionLocked(repartition_monitor_.recommended_shards(),
                            &loads, gen->epoch);
          repartition_monitor_.ResetAfterRepartition(
              std::chrono::steady_clock::now());
        }
      }
    }
    lk.Lock();
  }
}

void ServeLoop::Stop() {
  // release: pairs with the acquire loads in the monitor loop and
  // TriggerRepartition, ordering prior teardown state before the flag.
  stopping_.store(true, std::memory_order_release);
  // Drain the admission pipeline first: its dispatcher only reads
  // snapshots, but every pending future must resolve before the engine
  // and writers are torn down.
  admission_->Stop();
  // The empty lock scope closes the classic lost-wakeup race: without it
  // the monitor thread can check stopping_ (false), then Stop() stores
  // true and notifies into the void, then the monitor blocks and sleeps
  // out a full poll interval. Passing through monitor_mu_ after the store
  // guarantees the monitor is either before its check (sees stopping_) or
  // already waiting (receives the notify).
  { MutexLock lock(&monitor_mu_); }
  monitor_cv_.NotifyAll();
  if (monitor_thread_.joinable()) monitor_thread_.join();
  // Barrier: any in-flight TriggerRepartition finishes before the writers
  // are torn down; later calls observe stopping_ and bail.
  { MutexLock lock(&repartition_mu_); }
  const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
  for (const auto& w : gen->writers) {
    {
      MutexLock lock(&w->queue_mu);
      if (w->stop) continue;
      w->stop = true;
    }
    w->queue_cv.NotifyAll();
  }
  for (const auto& w : gen->writers) {
    if (w->thread.joinable()) w->thread.join();
  }
}

double ServeLoop::drift_ratio() {
  double worst = 0.0;
  const std::shared_ptr<WriterGen> gen = writer_gen_.Load();
  for (const auto& w : gen->writers) {
    MutexLock lock(&w->monitor_mu);
    worst = std::max(worst, w->monitor.drift_ratio());
  }
  return worst;
}

void ServeLoop::WriterLoop(std::shared_ptr<WriterGen> gen, int s) {
  ShardWriter& w = *gen->writers[static_cast<size_t>(s)];
  VersionedIndex& shard = *gen->topo->shards[static_cast<size_t>(s)];
  const auto poll = std::chrono::milliseconds(opts_.drift_poll_ms);
  for (;;) {
    std::vector<UpdateOp> batch;
    bool rebuild = false;
    bool stopping = false;
    bool migrating = false;
    {
      MutexLock lock(&w.queue_mu);
      const auto wake_deadline = std::chrono::steady_clock::now() + poll;
      while (!(w.stop || (!w.gate && (w.rebuild_requested ||
                                      w.capture_requested ||
                                      !w.queue.empty())))) {
        if (w.queue_cv.WaitUntil(w.queue_mu, wake_deadline) ==
            std::cv_status::timeout) {
          break;
        }
      }
      // Carried-shard hand-off: while gated, nothing applies — the OLD
      // generation's writer still owns the shared VersionedIndex; ops
      // queue up until the coordinator opens the gate after the old
      // drain. (stop while gated cannot happen in a correct shutdown —
      // Stop barriers on the migration — but fall through rather than
      // risk a hang.)
      if (w.gate && !w.stop) continue;
      if (!w.queue.empty() && w.queue.size() < opts_.writer_batch_limit &&
          !w.stop && !w.rebuild_requested && !w.capture_requested &&
          opts_.writer_coalesce_ms > 0) {
        // Group commit: linger briefly so a fast submit stream lands in one
        // batch (one snapshot publish) instead of one publish per op.
        const auto linger_deadline =
            std::chrono::steady_clock::now() +
            std::chrono::milliseconds(opts_.writer_coalesce_ms);
        while (!(w.stop || w.rebuild_requested || w.capture_requested ||
                 w.queue.size() >= opts_.writer_batch_limit)) {
          if (w.queue_cv.WaitUntil(w.queue_mu, linger_deadline) ==
              std::cv_status::timeout) {
            break;
          }
        }
      }
      stopping = w.stop;
      if (stopping && w.queue.empty() && !w.rebuild_requested &&
          !w.capture_requested) {
        break;
      }
      const size_t take = std::min(w.queue.size(), opts_.writer_batch_limit);
      batch.assign(w.queue.begin(), w.queue.begin() + take);
      w.queue.erase(w.queue.begin(), w.queue.begin() + take);
      rebuild = w.rebuild_requested;
      w.rebuild_requested = false;
      migrating = w.dual_write || w.closed;
    }

    if (!batch.empty()) {
      shard.ApplyBatch(batch);
      {
        MutexLock lock(&w.queue_mu);
        w.applied += batch.size();
      }
      w.flush_cv.NotifyAll();
    } else if (!migrating) {
      // Idle wake-up: free any copy-on-stall zombie whose parked reader
      // has let go (ApplyBatch reaps on its own, but an idle shard would
      // otherwise hold the duplicate instance until destruction). Never
      // during a migration: a CLOSED carried-shard writer co-exists with
      // its successor until retire, and only one of them may touch the
      // VersionedIndex (the successor, once its gate opens).
      shard.ReapRetired();
    }

    // Migration capture: once everything submitted before dual-write began
    // has been applied, hand the coordinator a copy of the authoritative
    // point set (this thread is the shard's writer, so reading data() here
    // honors the single-writer contract). Later ops may already be folded
    // in — harmless, they are also in the delta and replay idempotently.
    bool do_capture = false;
    {
      MutexLock lock(&w.queue_mu);
      do_capture = w.capture_requested && w.applied >= w.capture_target;
    }
    if (do_capture) {
      std::vector<Point> snapshot = shard.data().points;
      {
        MutexLock lock(&w.queue_mu);
        w.captured = std::move(snapshot);
        w.capture_requested = false;
        w.capture_done = true;
      }
      w.capture_cv.NotifyAll();
    }

    // Drift rebuilds pause during a migration: the generation is about to
    // be replaced, so re-levelling it is wasted work.
    if (!rebuild && opts_.auto_rebuild && !stopping && !migrating) {
      MutexLock lock(&w.monitor_mu);
      rebuild = w.monitor.rebuild_recommended();
    }
    if (rebuild && !migrating) {
      Workload recent;
      {
        MutexLock lock(&w.monitor_mu);
        recent = RecentWorkloadLocked(w, *gen, s);
      }
      // Per-shard rebuild: only this shard's left-right pair re-levels;
      // every other shard keeps serving its current snapshots.
      shard.Rebuild(recent);
      {
        MutexLock lock(&w.monitor_mu);
        w.monitor.ResetAfterRebuild();
      }
      rebuilds_ctr_->Add(1);
      journal_.Record(obs::TraceEventKind::kDriftRebuild, gen->epoch, s,
                      rebuilds_ctr_->value());
    }
  }
}

void ServeLoop::ObserveShard(WriterGen& gen, uint64_t epoch, int s,
                             const Rect* rect, const QueryStats& stats) {
  // A repartition may have retired the generation this query pinned (or
  // installed a successor the query has not seen): shard ids only mean
  // something within their own epoch, so drop cross-epoch samples.
  if (gen.epoch != epoch || s < 0 ||
      s >= static_cast<int>(gen.writers.size())) {
    return;
  }
  ShardWriter& w = *gen.writers[static_cast<size_t>(s)];
  w.query_stabs.fetch_add(1, std::memory_order_relaxed);  // statistic
  // try_lock == sampling: under heavy reader contention most observations
  // are dropped instead of serializing the hot path on this mutex. The
  // manual try_lock/unlock pair (instead of a scoped guard) is the form
  // the analysis tracks through TRY_ACQUIRE.
  if (!w.monitor_mu.try_lock()) return;
  w.monitor.Observe(stats.points_scanned, stats.results);
  if (rect != nullptr && !w.recent.empty()) {
    w.recent[w.recent_next] = *rect;
    w.recent_next = (w.recent_next + 1) % w.recent.size();
    if (w.recent_count < w.recent.size()) ++w.recent_count;
  }
  w.monitor_mu.unlock();
}

Workload ServeLoop::RecentWorkloadLocked(const ShardWriter& w,
                                         const WriterGen& gen, int s) {
  const Workload& built =
      gen.topo->shard_workloads[static_cast<size_t>(s)];
  // Too few live observations to characterize the shard's workload — fall
  // back to the slice of the build-time workload that overlaps its cell.
  if (w.recent_count < 32) return built;
  Workload recent;
  recent.name = "recent/e" + std::to_string(gen.epoch) + "/shard" +
                std::to_string(s);
  recent.selectivity = built.selectivity;
  recent.queries.reserve(w.recent_count);
  for (size_t i = 0; i < w.recent_count; ++i) {
    recent.queries.push_back(w.recent[i]);
  }
  return recent;
}

}  // namespace wazi::serve

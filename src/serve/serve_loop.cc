#include "serve/serve_loop.h"

#include <chrono>
#include <utility>

namespace wazi::serve {

ServeLoop::ServeLoop(IndexFactory factory, const Dataset& data,
                     const Workload& workload, const BuildOptions& build_opts,
                     ServeOptions opts)
    : opts_(opts),
      initial_workload_(workload),
      index_(std::move(factory), data, workload, build_opts,
             VersionedIndexOptions{opts.track_points}),
      engine_(&index_, opts.num_threads),
      monitor_(opts.drift) {
  recent_.resize(opts_.recent_window);
  writer_ = std::thread([this] { WriterLoop(); });
}

ServeLoop::~ServeLoop() { Stop(); }

QueryResult ServeLoop::Range(const Rect& query, QueryStats* stats) {
  QueryStats qs;
  QueryResult result = engine_.Execute(QueryRequest::Range(query), &qs);
  Observe(&query, qs);
  if (stats != nullptr) stats->Add(qs);
  return result;
}

bool ServeLoop::PointLookup(const Point& p, QueryStats* stats) {
  QueryStats qs;
  QueryResult result = engine_.Execute(QueryRequest::PointLookup(p), &qs);
  // Point lookups carry no rectangle and touch O(1) work; they do not feed
  // the drift monitor.
  if (stats != nullptr) stats->Add(qs);
  return result.found;
}

QueryResult ServeLoop::Knn(const Point& center, int k, QueryStats* stats) {
  QueryStats qs;
  QueryResult result = engine_.Execute(QueryRequest::Knn(center, k), &qs);
  Observe(nullptr, qs);
  if (stats != nullptr) stats->Add(qs);
  return result;
}

void ServeLoop::ExecuteBatch(const std::vector<QueryRequest>& requests,
                             std::vector<QueryResult>* results) {
  engine_.ExecuteBatch(requests, results);
}

void ServeLoop::SubmitInsert(const Point& p) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(UpdateOp::Insert(p));
    ++submitted_;
  }
  queue_cv_.notify_one();
}

void ServeLoop::SubmitRemove(const Point& p) {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    queue_.push_back(UpdateOp::Remove(p));
    ++submitted_;
  }
  queue_cv_.notify_one();
}

void ServeLoop::TriggerRebuild() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    rebuild_requested_ = true;
  }
  queue_cv_.notify_one();
}

void ServeLoop::Flush() {
  std::unique_lock<std::mutex> lock(queue_mu_);
  flush_cv_.wait(lock, [this] { return applied_ == submitted_; });
}

void ServeLoop::Stop() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    if (stop_) return;
    stop_ = true;
  }
  queue_cv_.notify_all();
  if (writer_.joinable()) writer_.join();
}

double ServeLoop::drift_ratio() {
  std::lock_guard<std::mutex> lock(monitor_mu_);
  return monitor_.drift_ratio();
}

void ServeLoop::WriterLoop() {
  const auto poll = std::chrono::milliseconds(opts_.drift_poll_ms);
  for (;;) {
    std::vector<UpdateOp> batch;
    bool rebuild = false;
    bool stopping = false;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait_for(lock, poll, [this] {
        return stop_ || rebuild_requested_ || !queue_.empty();
      });
      stopping = stop_;
      if (stopping && queue_.empty() && !rebuild_requested_) break;
      const size_t take = std::min(queue_.size(), opts_.writer_batch_limit);
      batch.assign(queue_.begin(), queue_.begin() + take);
      queue_.erase(queue_.begin(), queue_.begin() + take);
      rebuild = rebuild_requested_;
      rebuild_requested_ = false;
    }

    if (!batch.empty()) index_.ApplyBatch(batch);

    if (!rebuild && opts_.auto_rebuild && !stopping) {
      std::lock_guard<std::mutex> lock(monitor_mu_);
      rebuild = monitor_.rebuild_recommended();
    }
    if (rebuild) {
      Workload recent;
      {
        std::lock_guard<std::mutex> lock(monitor_mu_);
        recent = RecentWorkloadLocked();
      }
      index_.Rebuild(recent);
      {
        std::lock_guard<std::mutex> lock(monitor_mu_);
        monitor_.ResetAfterRebuild();
      }
      rebuilds_.fetch_add(1, std::memory_order_relaxed);
    }

    if (!batch.empty()) {
      std::lock_guard<std::mutex> lock(queue_mu_);
      applied_ += batch.size();
      if (applied_ == submitted_) flush_cv_.notify_all();
    }
  }
}

void ServeLoop::Observe(const Rect* query, const QueryStats& stats) {
  // try_lock == sampling: under heavy reader contention most observations
  // are dropped instead of serializing the hot path on this mutex.
  std::unique_lock<std::mutex> lock(monitor_mu_, std::try_to_lock);
  if (!lock.owns_lock()) return;
  monitor_.Observe(stats.points_scanned, stats.results);
  if (query != nullptr && !recent_.empty()) {
    recent_[recent_next_] = *query;
    recent_next_ = (recent_next_ + 1) % recent_.size();
    if (recent_count_ < recent_.size()) ++recent_count_;
  }
}

Workload ServeLoop::RecentWorkloadLocked() {
  // Too few live observations to characterize the workload — fall back to
  // the build-time one.
  if (recent_count_ < 32) return initial_workload_;
  Workload w;
  w.name = "recent";
  w.selectivity = initial_workload_.selectivity;
  w.queries.reserve(recent_count_);
  for (size_t i = 0; i < recent_count_; ++i) {
    w.queries.push_back(recent_[i]);
  }
  return w;
}

}  // namespace wazi::serve

// The serving front end: glues the sharded snapshot-swapped index, the
// query engine, and per-shard drift monitors into one online system.
//
//   * Any number of client threads issue range / point / kNN queries; each
//     runs wait-free on the current per-shard snapshots (point lookups
//     touch one shard, ranges their overlapping shards, kNN a best-first
//     shard sweep).
//   * Updates are enqueued from any thread, ROUTED to the owning shard,
//     and applied by that shard's OWN background writer thread in batches,
//     each batch ending in a snapshot swap of just that shard — so update
//     throughput scales with cores instead of being capped at one writer.
//   * Every served range query feeds the drift monitor of each shard that
//     did work (sampled under contention via try_lock) and that shard's
//     ring of recent sub-rectangles. When a shard's monitor reports drift,
//     ITS writer rebuilds ITS index against the shard-local recent
//     workload and swaps it in — per-shard rebuilds instead of
//     stop-the-world, so the other shards keep serving untouched.

#ifndef WAZI_SERVE_SERVE_LOOP_H_
#define WAZI_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/drift_monitor.h"
#include "serve/query_engine.h"
#include "serve/sharded_index.h"

namespace wazi::serve {

struct ServeOptions {
  // Number of index shards, each with its own background writer. 1 keeps
  // the PR-1 single-writer topology.
  int num_shards = 1;
  // Worker threads of the batch query engine.
  int num_threads = 4;
  // Max update ops applied per per-shard snapshot publish.
  size_t writer_batch_limit = 256;
  // Group commit: once a writer wakes with a non-full queue it lingers
  // this long collecting more ops before applying, so a fast submit
  // stream amortizes snapshot publishes instead of swapping per op.
  // Bounds update visibility staleness; 0 restores apply-immediately.
  int writer_coalesce_ms = 2;
  // Writer wake-up period for drift checks when no updates arrive.
  int drift_poll_ms = 20;
  DriftMonitorOptions drift;
  // Rebuild a shard in the background when its drift monitor recommends it.
  bool auto_rebuild = true;
  // Snapshots carry their exact point membership (testing only; O(shard)
  // copy per publish).
  bool track_points = false;
  // Capacity of each shard's recent-query ring that seeds drift-triggered
  // rebuilds.
  size_t recent_window = 2048;
};

// Thread-safety: queries and SubmitInsert/SubmitRemove/TriggerRebuild may
// be called from any thread. Client threads must be joined before the
// ServeLoop is destroyed.
class ServeLoop {
 public:
  ServeLoop(IndexFactory factory, const Dataset& data,
            const Workload& workload, const BuildOptions& build_opts,
            ServeOptions opts = {});
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  // --- queries (any thread; executed on the calling thread) ---
  // Pass a caller-owned `stats` to keep the counters; they feed the drift
  // monitors either way. Counters of every shard a query touches are
  // summed.
  QueryResult Range(const Rect& query, QueryStats* stats = nullptr);
  bool PointLookup(const Point& p, QueryStats* stats = nullptr);
  QueryResult Knn(const Point& center, int k, QueryStats* stats = nullptr);
  // Fan a batch out across the engine's worker pool.
  void ExecuteBatch(const std::vector<QueryRequest>& requests,
                    std::vector<QueryResult>* results);

  // --- updates (any thread; routed to the owning shard's writer) ---
  void SubmitInsert(const Point& p);
  void SubmitRemove(const Point& p);
  // Ask every shard's writer for an immediate background rebuild + swap.
  void TriggerRebuild();
  // Blocks until every update submitted so far has been applied (all
  // shards).
  void Flush();

  // Stops all writer threads after draining pending updates (idempotent;
  // the destructor calls it).
  void Stop();

  // --- introspection ---
  // Sum of per-shard versions (monotone; see ShardedVersionedIndex).
  uint64_t version() const { return index_.version(); }
  int num_shards() const { return index_.num_shards(); }
  // Total drift rebuilds across all shards.
  int64_t rebuilds() const;
  // Worst (max) per-shard drift ratio.
  double drift_ratio();
  ShardedVersionedIndex& sharded_index() { return index_; }
  // Single-shard convenience used by tests written against the PR-1
  // topology. Loud on misuse: with more shards this would silently expose
  // only shard 0 (and mutating through it would race that shard's
  // writer) — go through sharded_index().shard(s) instead.
  VersionedIndex& versioned_index() {
    assert(index_.num_shards() == 1 &&
           "versioned_index() is single-shard only; use sharded_index()");
    return index_.shard(0);
  }
  QueryEngine& engine() { return engine_; }

 private:
  // Everything one shard's writer owns: its update queue, its drift state,
  // and the thread itself. unique_ptr keeps addresses stable in the vector.
  struct ShardWriter {
    explicit ShardWriter(const DriftMonitorOptions& opts) : monitor(opts) {}

    std::mutex queue_mu;
    std::condition_variable queue_cv;  // writer: ops pending / stop
    std::condition_variable flush_cv;  // Flush(): all ops applied
    std::vector<UpdateOp> queue;
    uint64_t submitted = 0;
    uint64_t applied = 0;
    bool rebuild_requested = false;
    bool stop = false;

    // Drift state, shared by all client threads (try_lock sampling).
    std::mutex monitor_mu;
    DriftMonitor monitor;
    std::vector<Rect> recent;  // ring of served per-shard sub-rectangles
    size_t recent_next = 0;
    size_t recent_count = 0;

    std::atomic<int64_t> rebuilds{0};
    std::thread thread;
  };

  void WriterLoop(int s);
  void Submit(const Point& p, bool insert);
  void ObserveShard(int s, const Rect* rect, const QueryStats& stats);
  Workload RecentWorkloadLocked(int s);  // caller holds writers_[s]->monitor_mu

  ServeOptions opts_;
  ShardedVersionedIndex index_;
  QueryEngine engine_;
  std::vector<std::unique_ptr<ShardWriter>> writers_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SERVE_LOOP_H_

// The serving front end: glues the sharded snapshot-swapped index, the
// query engine, per-shard drift monitors and the repartition coordinator
// into one online system.
//
//   * Any number of client threads issue range / point / kNN queries; each
//     runs wait-free on the current per-shard snapshots of the current
//     topology (point lookups touch one shard, ranges their overlapping
//     shards, kNN a best-first shard sweep). Clients that can tolerate a
//     small coalescing window instead SubmitQuery/SubmitBatch: an
//     AdmissionQueue groups concurrent submissions by type and executes
//     each batch under ONE epoch-pinned snapshot-set acquisition.
//   * Hot range results are served from a snapshot-stamped ResultCache
//     when enabled: entries carry {topology epoch, per-shard snapshot
//     versions} and self-invalidate the moment any stamped shard swaps a
//     snapshot or a repartition bumps the epoch — no invalidation hooks
//     in the write path (see serve/result_cache.h).
//   * Updates are enqueued from any thread, ROUTED to the owning shard,
//     and applied by that shard's OWN background writer thread in batches,
//     each batch ending in a snapshot swap of just that shard — so update
//     throughput scales with cores instead of being capped at one writer.
//   * Every served range query feeds the drift monitor of each shard that
//     did work (sampled under contention via try_lock) and that shard's
//     ring of recent sub-rectangles. When a shard's monitor reports drift,
//     ITS writer rebuilds ITS index against the shard-local recent
//     workload and swaps it in — per-shard rebuilds instead of
//     stop-the-world, so the other shards keep serving untouched.
//   * The shard TOPOLOGY itself is workload-adaptive: a RepartitionMonitor
//     watches per-shard load (item counts, query stabs, update-queue
//     depths) and, when the imbalance crosses a threshold, the loop
//     executes a live migration — readers never block, writers stall only
//     for the final hand-off. Migrations are INCREMENTAL whenever the
//     plan allows: only the cells whose cut boundaries move are captured
//     and rebuilt, every other shard is CARRIED into the new generation
//     live (same VersionedIndex, new owner), turning migration cost from
//     O(total points) into O(points in changed cells). The monitor can
//     also recommend a new shard COUNT (auto_shard_count: grow on
//     uniformly hot writer queues, shrink on idle slivers) — a count
//     change always takes the full pipeline. See the cutover state
//     machine below and docs/ARCHITECTURE.md.
//
// Repartition cutover state machine (coordinator = the monitor thread or
// a TriggerRepartition caller; one migration at a time). The full path
// treats every shard as CHANGED; the incremental path first plans which
// cells move (PlanIncrementalRecut) and applies the bracketed steps only
// to those, while CARRIED shards skip dual-write/capture/build entirely:
//
//   STEADY ──► DUAL-WRITE: every CHANGED shard's writer queue starts
//              logging submitted ops to a per-shard delta log (ops keep
//              applying to the old generation as usual).
//   CAPTURE:   each CHANGED old shard's writer, once it has applied
//              everything submitted before dual-write began, hands the
//              coordinator a copy of its authoritative point set.
//              captured ∪ delta now covers every op ever submitted to a
//              changed cell (overlap is fine — replay is idempotent per
//              SanitizeOps). Carried cells' ops keep applying to their
//              live shard, which moves to the new generation as-is.
//   BUILD:     the coordinator cuts the new router (full: fresh quantiles
//              of all captured points; incremental: only the flagged
//              boundaries re-place, between their kept neighbours) and
//              builds the CHANGED cells' VersionedIndex shards in the
//              background. The old generation keeps serving reads AND
//              writes.
//   CATCH-UP:  changed shards' delta chunks drain into the new
//              generation's writer queues (routed through the NEW router)
//              until the backlog is small.
//   CUTOVER:   ALL old shards close (submitters retry), the final delta
//              chunks replay, the writer generation swaps (submitters
//              proceed into new queues; carried shards' NEW writers are
//              GATED — they queue but do not apply), old writers drain
//              (carried shards' final ops land through their old writer),
//              the gates open (single-writer hand-off complete), new
//              writers flush the replay, and the epoch-versioned topology
//              publishes — from here readers acquire the new generation;
//              queries that pinned the old epoch finish on the old
//              topology (carried shards serve both pins; they are the
//              same object).
//   RETIRE:    old writer threads stop and join; the old topology is
//              reclaimed when its last pinned reader releases it —
//              carried shards survive through the new topology's
//              reference.

#ifndef WAZI_SERVE_SERVE_LOOP_H_
#define WAZI_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <cassert>
#include <cstdint>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/drift_monitor.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace_journal.h"
#include "serve/admission.h"
#include "serve/query_engine.h"
#include "serve/repartition.h"
#include "serve/result_cache.h"
#include "serve/sharded_index.h"

namespace wazi::serve {

struct ServeOptions {
  // Number of index shards, each with its own background writer. 1 keeps
  // the PR-1 single-writer topology. A repartition may later change the
  // count (TriggerRepartition's new_num_shards).
  int num_shards = 1;
  // Worker threads of the batch query engine.
  int num_threads = 4;
  // Max update ops applied per per-shard snapshot publish.
  size_t writer_batch_limit = 256;
  // Group commit: once a writer wakes with a non-full queue it lingers
  // this long collecting more ops before applying, so a fast submit
  // stream amortizes snapshot publishes instead of swapping per op.
  // Bounds update visibility staleness; 0 restores apply-immediately.
  int writer_coalesce_ms = 2;
  // Writer wake-up period for drift checks when no updates arrive.
  int drift_poll_ms = 20;
  DriftMonitorOptions drift;
  // Rebuild a shard in the background when its drift monitor recommends it.
  bool auto_rebuild = true;
  // Snapshots carry their exact point membership (testing only; O(shard)
  // copy per publish).
  bool track_points = false;
  // Copy-on-stall deadline per shard writer: a reader parking a snapshot
  // past this many ms no longer stalls that shard's writer (or a
  // migration's capture phase) — the writer retires the parked instance
  // and builds a fresh one from the authoritative set instead. <= 0
  // restores wait-forever. See VersionedIndexOptions::writer_stall_ms.
  int writer_stall_ms = 250;
  // Capacity of each shard's recent-query ring that seeds drift-triggered
  // rebuilds and repartition router cuts.
  size_t recent_window = 2048;
  // Topology-level adaptation (monitor thread + automatic migrations).
  RepartitionOptions repartition;
  // Batched query admission (SubmitQuery/SubmitBatch): coalescing window
  // and batch bound for the pipelined entry points. The direct entry
  // points (Range/PointLookup/Knn) never pay these.
  AdmissionOptions admission;
  // Snapshot-stamped hot-result cache, probed by Range, SubmitQuery/
  // SubmitBatch and ExecuteBatch. capacity_bytes == 0 (default) disables
  // it.
  ResultCacheOptions cache;
  // Observability: trace-journal capacity and per-query trace sampling
  // rate (see obs/obs.h). The metrics registry itself has no knobs.
  obs::ObsOptions obs;
};

// Counters of the live-migration coordinator; all monotone except the
// last_* fields, which describe the most recent completed migration.
// migration_stats() returns a mutually CONSISTENT snapshot: every field
// except stall_copies is published under one mutex at the end of each
// migration (a single sequence point), so an observer can rely on e.g.
// incremental <= migrations and last_moved_points <= total_moved_points —
// independently-read atomics used to allow torn mixes mid-publication.
struct MigrationStats {
  int64_t migrations = 0;        // completed migrations (== repartitions())
  int64_t incremental = 0;       // of those, per-cell (carried) migrations
  int64_t last_moved_shards = 0;   // shards rebuilt by the last migration
  int64_t last_carried_shards = 0; // shards carried by the last migration
  int64_t last_moved_points = 0;   // points captured+rebuilt last time
  int64_t total_moved_points = 0;  // across all migrations
  int64_t stall_copies = 0;        // writer copy-on-stall fallbacks (all
                                   // shards, incl. retired generations)
};

// Thread-safety: queries, SubmitInsert/SubmitRemove, TriggerRebuild and
// TriggerRepartition may be called from any thread. Client threads must be
// joined before the ServeLoop is destroyed.
class ServeLoop {
 public:
  ServeLoop(IndexFactory factory, const Dataset& data,
            const Workload& workload, const BuildOptions& build_opts,
            ServeOptions opts = {});
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  // --- queries (any thread; executed on the calling thread) ---
  // Pass a caller-owned `stats` to keep the counters; they feed the drift
  // monitors either way. Counters of every shard a query touches are
  // summed.
  QueryResult Range(const Rect& query, QueryStats* stats = nullptr);
  bool PointLookup(const Point& p, QueryStats* stats = nullptr);
  QueryResult Knn(const Point& center, int k, QueryStats* stats = nullptr);
  // Fan a batch out across the engine's worker pool.
  void ExecuteBatch(const std::vector<QueryRequest>& requests,
                    std::vector<QueryResult>* results);

  // --- pipelined admission (any thread) ---
  // Enqueues the query for coalesced execution: concurrent submissions
  // are grouped by type and executed as one batch under a single
  // epoch-pinned snapshot-set acquisition (see serve/admission.h). The
  // future resolves when the batch completes — at most ~admission.window_us
  // later than the query's own execution. Prefer these over Range() when
  // clients can tolerate the window and submit concurrently or in bulk.
  std::future<QueryResult> SubmitQuery(const QueryRequest& request);
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests);

  // --- updates (any thread; routed to the owning shard's writer) ---
  void SubmitInsert(const Point& p);
  void SubmitRemove(const Point& p);
  // Ask every current shard's writer for an immediate background rebuild +
  // swap (per-shard layout re-levelling; the topology stays put).
  void TriggerRebuild();
  // Blocks until every update submitted so far has been applied and is
  // visible to fresh queries (all shards; re-checked across any concurrent
  // topology swap).
  void Flush();

  // --- topology adaptation ---
  // Executes one live migration to a freshly cut topology, on the calling
  // thread. With `new_num_shards` == 0 (keep the count) and
  // repartition.incremental on, the coordinator first tries the PER-CELL
  // path: only shards whose cut boundaries the plan moves are captured
  // and rebuilt, the rest are carried into the new topology live (see the
  // state machine above). Infeasible plans — count change, balanced
  // tiling, or nearly everything moving — fall back to the full pipeline.
  // Returns false without migrating when the loop is stopping.
  // Serialized: concurrent calls run one migration after another. Reader
  // backpressure on the capture phase is bounded by writer_stall_ms.
  bool TriggerRepartition(int new_num_shards = 0)
      EXCLUDES(repartition_mu_);

  // Stops the repartition monitor and all writer threads after draining
  // pending updates (idempotent; the destructor calls it).
  void Stop() EXCLUDES(repartition_mu_, monitor_mu_);

  // --- introspection ---
  // Facade version (monotone, incl. across repartitions; see
  // ShardedVersionedIndex).
  uint64_t version() const { return index_.version(); }
  int num_shards() const { return index_.num_shards(); }
  // Current topology epoch (starts at 1; +1 per completed repartition).
  uint64_t epoch() const { return index_.epoch(); }
  // Completed live migrations.
  int64_t repartitions() const {
    return repartitions_.load(std::memory_order_acquire);
  }
  // Migration-coordinator counters: incremental vs full migrations,
  // moved/carried shards and moved points of the last migration, and the
  // writer copy-on-stall fallback count. One sequence point (see
  // MigrationStats above).
  MigrationStats migration_stats() const EXCLUDES(mig_mu_);
  // max/mean combined shard load of the monitor's last sample (1.0 =
  // balanced; only meaningful when the monitor is enabled).
  double imbalance() const {
    return last_imbalance_.load(std::memory_order_relaxed);
  }
  // Total drift rebuilds across all shards, including retired generations
  // (monotone; view over serve_drift_rebuilds_total).
  int64_t rebuilds() const { return rebuilds_ctr_->value(); }
  // The unified metrics registry every serve-layer counter publishes
  // through (see docs/OBSERVABILITY.md for the catalog) and the
  // serve-event trace journal. Snapshot with metrics().Snapshot() /
  // journal().Tail(n); export with obs/exporters.h.
  obs::MetricsRegistry& metrics() { return metrics_; }
  const obs::MetricsRegistry& metrics() const { return metrics_; }
  obs::TraceJournal& journal() { return journal_; }
  const obs::TraceJournal& journal() const { return journal_; }
  // Worst (max) per-shard drift ratio of the current generation.
  double drift_ratio();
  ShardedVersionedIndex& sharded_index() { return index_; }
  // Single-shard convenience used by tests written against the PR-1
  // topology. Loud on misuse: with more shards this would silently expose
  // only shard 0 (and mutating through it would race that shard's
  // writer) — go through sharded_index().shard(s) instead. One pinned
  // topology for the check AND the access, so the pair cannot straddle a
  // concurrent repartition.
  VersionedIndex& versioned_index() {
    const std::shared_ptr<ShardTopology> topo = index_.AcquireTopology();
    assert(topo->num_shards() == 1 &&
           "versioned_index() is single-shard only; use sharded_index()");
    return *topo->shards[0];
  }
  QueryEngine& engine() { return engine_; }
  // The hot-result cache (disabled unless opts.cache.capacity_bytes > 0;
  // stats() readable either way) and the admission pipeline's counters.
  ResultCache& result_cache() { return cache_; }
  ResultCacheStats cache_stats() const { return cache_.stats(); }
  AdmissionStats admission_stats() const { return admission_->stats(); }

 private:
  // Everything one shard's writer owns: its update queue, its drift state,
  // its migration hand-off state, and the thread itself. unique_ptr keeps
  // addresses stable in the vector.
  struct ShardWriter {
    explicit ShardWriter(const DriftMonitorOptions& opts) : monitor(opts) {}

    Mutex queue_mu;
    CondVar queue_cv;  // writer: ops pending / stop
    CondVar flush_cv;  // waiters: applied advanced
    std::vector<UpdateOp> queue GUARDED_BY(queue_mu);
    uint64_t submitted GUARDED_BY(queue_mu) = 0;
    uint64_t applied GUARDED_BY(queue_mu) = 0;
    bool rebuild_requested GUARDED_BY(queue_mu) = false;
    bool stop GUARDED_BY(queue_mu) = false;

    // --- migration state (all under queue_mu) ---
    // Dual-write: ops also append to `delta` for replay into the next
    // generation.
    bool dual_write GUARDED_BY(queue_mu) = false;
    std::vector<UpdateOp> delta GUARDED_BY(queue_mu);
    // Cutover passed this shard: it accepts no more ops; submitters retry
    // against the (about-to-be-installed) next writer generation.
    bool closed GUARDED_BY(queue_mu) = false;
    // Carried-shard hand-off gate: this writer (of the NEW generation)
    // shares its VersionedIndex with its old-generation counterpart and
    // must not touch it until the old writer has drained — ops queue up
    // but nothing applies while gated. The coordinator clears the gate
    // right after the old generation quiesces (single-writer hand-off;
    // also preserves per-coordinate op order across the generations).
    bool gate GUARDED_BY(queue_mu) = false;
    // Capture hand-off: once `applied >= capture_target`, the writer
    // copies its shard's authoritative point set into `captured`.
    bool capture_requested GUARDED_BY(queue_mu) = false;
    uint64_t capture_target GUARDED_BY(queue_mu) = 0;
    bool capture_done GUARDED_BY(queue_mu) = false;
    std::vector<Point> captured GUARDED_BY(queue_mu);
    CondVar capture_cv;

    // Drift state, shared by all client threads (try_lock sampling).
    Mutex monitor_mu;
    DriftMonitor monitor GUARDED_BY(monitor_mu);
    // Ring of served per-shard sub-rectangles.
    std::vector<Rect> recent GUARDED_BY(monitor_mu);
    size_t recent_next GUARDED_BY(monitor_mu) = 0;
    size_t recent_count GUARDED_BY(monitor_mu) = 0;

    // Sub-queries served by this shard this epoch (repartition monitor
    // input; incremented lock-free on the query path).
    std::atomic<int64_t> query_stabs{0};
    std::thread thread;
  };

  // One generation of writers, bound to one topology epoch. The submit
  // path loads the current generation from an atomic cell; a migration
  // installs a successor and retires this one.
  struct WriterGen {
    uint64_t epoch = 1;
    std::shared_ptr<ShardTopology> topo;
    std::vector<std::unique_ptr<ShardWriter>> writers;
  };

  // Creates writers (threads running) for `topo`. `gated`, when non-null,
  // marks per-shard writers that start with their hand-off gate closed
  // (carried shards of an incremental migration).
  std::shared_ptr<WriterGen> StartWriters(std::shared_ptr<ShardTopology> topo,
                                          const std::vector<bool>* gated =
                                              nullptr);
  void WriterLoop(std::shared_ptr<WriterGen> gen, int s);
  void Submit(const Point& p, bool insert);
  // Enqueues `op` to its owning shard of `gen`. Returns false (op not
  // enqueued) when that shard is closed by a cutover: Submit retries on
  // the successor generation; the migration replay path targets the new
  // generation, which is never closed while the coordinator runs.
  static bool EnqueueTo(WriterGen& gen, const UpdateOp& op,
                        size_t batch_limit);
  // Feeds one served sub-query into `gen`'s shard-s drift/stab state.
  // `epoch` is the epoch the query pinned; samples from other generations
  // are dropped (shard ids only mean something within their own epoch).
  // The caller loads the generation once per query, not once per part.
  static void ObserveShard(WriterGen& gen, uint64_t epoch, int s,
                           const Rect* rect, const QueryStats& stats);
  // Recent per-shard rectangles of `w` (== *gen.writers[s]) as a
  // workload; falls back to the shard's build-time slice. The caller
  // already holds w.monitor_mu — REQUIRES makes that compiler-checked.
  static Workload RecentWorkloadLocked(const ShardWriter& w,
                                       const WriterGen& gen, int s)
      REQUIRES(w.monitor_mu);
  // The recent recorded rectangles of EVERY shard, merged (router-cut
  // input of a migration); falls back to the old generation's training
  // slices when live traffic has been thin.
  static Workload MigrationWorkload(const WriterGen& gen);
  // Migration phase steps shared by the full and incremental paths;
  // `changed` == nullptr means every shard (the full path), else only
  // shards with changed[s] participate. One protocol, one
  // implementation — the paths differ only in which shards they touch.
  static void BeginDualWriteAndCapture(WriterGen& gen,
                                       const std::vector<bool>* changed);
  static std::vector<Point> AwaitCaptures(WriterGen& gen,
                                          const std::vector<bool>* changed);
  // Returns the total number of delta ops replayed into `new_gen` (the
  // kMigrationCatchUp attribution).
  static size_t DrainDeltas(WriterGen& old_gen, WriterGen& new_gen,
                            const std::vector<bool>* changed,
                            size_t batch_limit);
  // One migration (caller holds repartition_mu_): tries the incremental
  // per-cell path when eligible, else runs the full rebuild pipeline.
  // `window_loads`, when given, are the monitor's per-interval load
  // samples (stab DELTAS, not lifetime totals) for the generation with
  // epoch `window_epoch` — the planner prefers them so a late-breaking
  // query skew is not diluted by the generation's balanced history.
  void RepartitionLocked(int new_num_shards,
                         const std::vector<ShardLoad>* window_loads = nullptr,
                         uint64_t window_epoch = 0)
      REQUIRES(repartition_mu_);
  // The per-cell path: plan → capture changed cells only → recut moved
  // boundaries → carry/rebuild → gated cutover. Returns false (without
  // migrating) when the plan is infeasible. Stab inputs come from
  // `window_loads` when they match old_gen's epoch; a manual
  // TriggerRepartition has no sampling window and falls back to the
  // generation's cumulative stab totals (items are always read fresh
  // from the authoritative mirrors).
  bool TryIncrementalRepartitionLocked(
      const std::shared_ptr<WriterGen>& old_gen,
      const std::vector<ShardLoad>* window_loads, uint64_t window_epoch)
      REQUIRES(repartition_mu_);
  // The original whole-topology pipeline.
  void FullRepartitionLocked(const std::shared_ptr<WriterGen>& old_gen,
                             int n_new) REQUIRES(repartition_mu_);
  void MonitorLoop() EXCLUDES(monitor_mu_, repartition_mu_);
  // Builds the sharded-index options with the obs handles wired in
  // (called from the ctor init list — metrics_/journal_ are initialized
  // by then; see the member order below).
  ShardedIndexOptions MakeIndexOptions();
  // Folds one completed migration into mig_ + the registry mirrors, all
  // under mig_mu_ (the single sequence point migration_stats() relies
  // on), and emits the kMigrationRetire journal event.
  void FinishMigration(uint64_t old_epoch, uint64_t new_epoch,
                       int64_t moved_shards, int64_t carried_shards,
                       int64_t moved_points, bool incremental)
      EXCLUDES(mig_mu_);
  // True every obs.trace_sample_every-th direct query (false at rate 0).
  bool SampleThisQuery();

  ServeOptions opts_;
  // Before index_: every shard's VersionedIndex holds handles into the
  // registry (stall counter, publish counter, zombie gauge) and a pointer
  // to the journal, and cache_/engine_/admission_ register through them
  // too. Destroyed LAST of the serve members, so no handle ever dangles.
  obs::MetricsRegistry metrics_;
  obs::TraceJournal journal_;
  ShardedVersionedIndex index_;
  ResultCache cache_;    // before engine_: the engine probes it
  QueryEngine engine_;
  // After engine_/index_ (it holds pointers to both) and destroyed before
  // them; Stop() drains it before tearing the writers down.
  std::unique_ptr<AdmissionQueue> admission_;
  AtomicCell<WriterGen> writer_gen_;

  // Serializes migrations and Stop's writer teardown.
  Mutex repartition_mu_;
  std::atomic<bool> stopping_{false};
  // repartitions_ stays a bare atomic for the cheap repartitions()
  // accessor; it is bumped inside FinishMigration's mig_mu_ block, so it
  // never runs ahead of mig_.migrations.
  std::atomic<int64_t> repartitions_{0};
  // Every MigrationStats field except stall_copies, published as one
  // block at the end of each migration — the single sequence point
  // migration_stats() snapshots under.
  mutable Mutex mig_mu_ ACQUIRED_AFTER(repartition_mu_);
  MigrationStats mig_ GUARDED_BY(mig_mu_);
  std::atomic<double> last_imbalance_{1.0};
  // Registry handles the loop updates directly (the shard/cache/engine/
  // admission handles live in those components).
  obs::Counter* rebuilds_ctr_ = nullptr;
  obs::Counter* stall_ctr_ = nullptr;  // migration_stats().stall_copies
  obs::Counter* migrations_ctr_ = nullptr;
  obs::Counter* migrations_incr_ctr_ = nullptr;
  obs::Counter* moved_points_ctr_ = nullptr;
  obs::Gauge* last_moved_gauge_ = nullptr;
  obs::Gauge* last_carried_gauge_ = nullptr;
  obs::Counter* point_queries_ctr_ = nullptr;  // direct-path lookups
  obs::Counter* knn_queries_ctr_ = nullptr;    // direct-path kNN
  obs::Counter* simd_batches_ctr_ = nullptr;   // direct-path kernel shape
  obs::Counter* scalar_tail_ctr_ = nullptr;
  obs::Histogram* latency_hist_ = nullptr;     // sampled direct spans
  std::atomic<uint32_t> sample_tick_{0};
  RepartitionMonitor repartition_monitor_;
  Mutex monitor_mu_;  // monitor thread wake/stop
  CondVar monitor_cv_;
  std::thread monitor_thread_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SERVE_LOOP_H_

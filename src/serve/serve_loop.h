// The serving front end: glues the snapshot-swapped index, the query
// engine, and the drift monitor into one online system.
//
//   * Any number of client threads issue range / point / kNN queries; each
//     runs wait-free on the current snapshot.
//   * Updates are enqueued from any thread and applied by ONE background
//     writer thread in batches, each batch ending in a snapshot swap.
//   * Every served query feeds the DriftMonitor (sampled under contention
//     via try_lock) and a ring of recent query rectangles. When the
//     monitor reports drift — the layout no longer fits the workload —
//     the writer rebuilds the index against the recent workload in the
//     background and swaps it in. Workload-awareness becomes an online
//     property instead of a build-time one.

#ifndef WAZI_SERVE_SERVE_LOOP_H_
#define WAZI_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

#include "core/drift_monitor.h"
#include "serve/index_snapshot.h"
#include "serve/query_engine.h"

namespace wazi::serve {

struct ServeOptions {
  // Worker threads of the batch query engine.
  int num_threads = 4;
  // Max update ops applied per snapshot publish.
  size_t writer_batch_limit = 256;
  // Writer wake-up period for drift checks when no updates arrive.
  int drift_poll_ms = 20;
  DriftMonitorOptions drift;
  // Rebuild in the background when the drift monitor recommends it.
  bool auto_rebuild = true;
  // Snapshots carry their exact point membership (testing only; O(n) copy
  // per publish).
  bool track_points = false;
  // Capacity of the recent-query ring that seeds drift-triggered rebuilds.
  size_t recent_window = 2048;
};

// Thread-safety: queries and SubmitInsert/SubmitRemove/TriggerRebuild may
// be called from any thread. Client threads must be joined before the
// ServeLoop is destroyed.
class ServeLoop {
 public:
  ServeLoop(IndexFactory factory, const Dataset& data,
            const Workload& workload, const BuildOptions& build_opts,
            ServeOptions opts = {});
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  // --- queries (any thread; executed on the calling thread) ---
  // Pass a caller-owned `stats` to keep the counters; they feed the drift
  // monitor either way.
  QueryResult Range(const Rect& query, QueryStats* stats = nullptr);
  bool PointLookup(const Point& p, QueryStats* stats = nullptr);
  QueryResult Knn(const Point& center, int k, QueryStats* stats = nullptr);
  // Fan a batch out across the engine's worker pool.
  void ExecuteBatch(const std::vector<QueryRequest>& requests,
                    std::vector<QueryResult>* results);

  // --- updates (any thread; applied by the writer in batches) ---
  void SubmitInsert(const Point& p);
  void SubmitRemove(const Point& p);
  // Ask the writer for an immediate background rebuild + swap.
  void TriggerRebuild();
  // Blocks until every update submitted so far has been applied.
  void Flush();

  // Stops the writer thread after draining pending updates (idempotent;
  // the destructor calls it).
  void Stop();

  // --- introspection ---
  uint64_t version() const { return index_.version(); }
  int64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  double drift_ratio();
  VersionedIndex& versioned_index() { return index_; }
  QueryEngine& engine() { return engine_; }

 private:
  void WriterLoop();
  void Observe(const Rect* query, const QueryStats& stats);
  Workload RecentWorkloadLocked();  // caller holds monitor_mu_

  ServeOptions opts_;
  Workload initial_workload_;
  VersionedIndex index_;
  QueryEngine engine_;

  // Drift state, shared by all client threads (try_lock sampling).
  std::mutex monitor_mu_;
  DriftMonitor monitor_;
  std::vector<Rect> recent_;  // ring buffer of served query rects
  size_t recent_next_ = 0;
  size_t recent_count_ = 0;

  // Update queue, client threads -> writer.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;  // writer: ops pending / stop
  std::condition_variable flush_cv_;  // Flush(): all ops applied
  std::vector<UpdateOp> queue_;
  uint64_t submitted_ = 0;
  uint64_t applied_ = 0;
  bool rebuild_requested_ = false;
  bool stop_ = false;

  std::atomic<int64_t> rebuilds_{0};
  std::thread writer_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SERVE_LOOP_H_

// The serving front end: glues the sharded snapshot-swapped index, the
// query engine, per-shard drift monitors and the repartition coordinator
// into one online system.
//
//   * Any number of client threads issue range / point / kNN queries; each
//     runs wait-free on the current per-shard snapshots of the current
//     topology (point lookups touch one shard, ranges their overlapping
//     shards, kNN a best-first shard sweep). Clients that can tolerate a
//     small coalescing window instead SubmitQuery/SubmitBatch: an
//     AdmissionQueue groups concurrent submissions by type and executes
//     each batch under ONE epoch-pinned snapshot-set acquisition.
//   * Hot range results are served from a snapshot-stamped ResultCache
//     when enabled: entries carry {topology epoch, per-shard snapshot
//     versions} and self-invalidate the moment any stamped shard swaps a
//     snapshot or a repartition bumps the epoch — no invalidation hooks
//     in the write path (see serve/result_cache.h).
//   * Updates are enqueued from any thread, ROUTED to the owning shard,
//     and applied by that shard's OWN background writer thread in batches,
//     each batch ending in a snapshot swap of just that shard — so update
//     throughput scales with cores instead of being capped at one writer.
//   * Every served range query feeds the drift monitor of each shard that
//     did work (sampled under contention via try_lock) and that shard's
//     ring of recent sub-rectangles. When a shard's monitor reports drift,
//     ITS writer rebuilds ITS index against the shard-local recent
//     workload and swaps it in — per-shard rebuilds instead of
//     stop-the-world, so the other shards keep serving untouched.
//   * The shard TOPOLOGY itself is workload-adaptive: a RepartitionMonitor
//     watches per-shard load (item counts, query stabs, update-queue
//     depths) and, when the imbalance crosses a threshold, the loop re-cuts
//     the router from the CURRENT data and recent workload and executes a
//     live migration to a new shard generation — readers never block,
//     writers stall only for the final hand-off. See the cutover state
//     machine below and docs/ARCHITECTURE.md.
//
// Repartition cutover state machine (coordinator = the monitor thread or
// a TriggerRepartition caller; one migration at a time):
//
//   STEADY ──► DUAL-WRITE: every shard's writer queue starts logging
//              submitted ops to a per-shard delta log (ops keep applying
//              to the old generation as usual).
//   CAPTURE:   each old shard's writer, once it has applied everything
//              submitted before dual-write began, hands the coordinator a
//              copy of its authoritative point set. captured ∪ delta now
//              covers every op ever submitted (overlap is fine — replay
//              is idempotent per SanitizeOps).
//   BUILD:     the coordinator cuts a new router from the captured points
//              and the recent per-shard query rectangles, and builds the
//              new generation's VersionedIndex shards in the background.
//              The old generation keeps serving reads AND writes.
//   CATCH-UP:  delta chunks drain into the new generation's writer queues
//              (routed through the NEW router) until the backlog is small.
//   CUTOVER:   old shards close (submitters retry), the final delta chunk
//              replays, the writer generation swaps (submitters proceed
//              into new queues), old writers drain, new writers flush the
//              replay, and the epoch-versioned topology publishes — from
//              here readers acquire the new generation; queries that
//              pinned the old epoch finish on the old shards.
//   RETIRE:    old writer threads stop and join; the old topology is
//              reclaimed when its last pinned reader releases it.

#ifndef WAZI_SERVE_SERVE_LOOP_H_
#define WAZI_SERVE_SERVE_LOOP_H_

#include <atomic>
#include <cassert>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/drift_monitor.h"
#include "serve/admission.h"
#include "serve/query_engine.h"
#include "serve/repartition.h"
#include "serve/result_cache.h"
#include "serve/sharded_index.h"

namespace wazi::serve {

struct ServeOptions {
  // Number of index shards, each with its own background writer. 1 keeps
  // the PR-1 single-writer topology. A repartition may later change the
  // count (TriggerRepartition's new_num_shards).
  int num_shards = 1;
  // Worker threads of the batch query engine.
  int num_threads = 4;
  // Max update ops applied per per-shard snapshot publish.
  size_t writer_batch_limit = 256;
  // Group commit: once a writer wakes with a non-full queue it lingers
  // this long collecting more ops before applying, so a fast submit
  // stream amortizes snapshot publishes instead of swapping per op.
  // Bounds update visibility staleness; 0 restores apply-immediately.
  int writer_coalesce_ms = 2;
  // Writer wake-up period for drift checks when no updates arrive.
  int drift_poll_ms = 20;
  DriftMonitorOptions drift;
  // Rebuild a shard in the background when its drift monitor recommends it.
  bool auto_rebuild = true;
  // Snapshots carry their exact point membership (testing only; O(shard)
  // copy per publish).
  bool track_points = false;
  // Capacity of each shard's recent-query ring that seeds drift-triggered
  // rebuilds and repartition router cuts.
  size_t recent_window = 2048;
  // Topology-level adaptation (monitor thread + automatic migrations).
  RepartitionOptions repartition;
  // Batched query admission (SubmitQuery/SubmitBatch): coalescing window
  // and batch bound for the pipelined entry points. The direct entry
  // points (Range/PointLookup/Knn) never pay these.
  AdmissionOptions admission;
  // Snapshot-stamped hot-result cache, probed by Range, SubmitQuery/
  // SubmitBatch and ExecuteBatch. capacity_bytes == 0 (default) disables
  // it.
  ResultCacheOptions cache;
};

// Thread-safety: queries, SubmitInsert/SubmitRemove, TriggerRebuild and
// TriggerRepartition may be called from any thread. Client threads must be
// joined before the ServeLoop is destroyed.
class ServeLoop {
 public:
  ServeLoop(IndexFactory factory, const Dataset& data,
            const Workload& workload, const BuildOptions& build_opts,
            ServeOptions opts = {});
  ~ServeLoop();

  ServeLoop(const ServeLoop&) = delete;
  ServeLoop& operator=(const ServeLoop&) = delete;

  // --- queries (any thread; executed on the calling thread) ---
  // Pass a caller-owned `stats` to keep the counters; they feed the drift
  // monitors either way. Counters of every shard a query touches are
  // summed.
  QueryResult Range(const Rect& query, QueryStats* stats = nullptr);
  bool PointLookup(const Point& p, QueryStats* stats = nullptr);
  QueryResult Knn(const Point& center, int k, QueryStats* stats = nullptr);
  // Fan a batch out across the engine's worker pool.
  void ExecuteBatch(const std::vector<QueryRequest>& requests,
                    std::vector<QueryResult>* results);

  // --- pipelined admission (any thread) ---
  // Enqueues the query for coalesced execution: concurrent submissions
  // are grouped by type and executed as one batch under a single
  // epoch-pinned snapshot-set acquisition (see serve/admission.h). The
  // future resolves when the batch completes — at most ~admission.window_us
  // later than the query's own execution. Prefer these over Range() when
  // clients can tolerate the window and submit concurrently or in bulk.
  std::future<QueryResult> SubmitQuery(const QueryRequest& request);
  std::vector<std::future<QueryResult>> SubmitBatch(
      const std::vector<QueryRequest>& requests);

  // --- updates (any thread; routed to the owning shard's writer) ---
  void SubmitInsert(const Point& p);
  void SubmitRemove(const Point& p);
  // Ask every current shard's writer for an immediate background rebuild +
  // swap (per-shard layout re-levelling; the topology stays put).
  void TriggerRebuild();
  // Blocks until every update submitted so far has been applied and is
  // visible to fresh queries (all shards; re-checked across any concurrent
  // topology swap).
  void Flush();

  // --- topology adaptation ---
  // Executes one full live migration to a freshly cut topology, on the
  // calling thread: capture, background build, delta catch-up, cutover,
  // retire (see the state machine above). `new_num_shards` == 0 keeps the
  // current shard count. Returns false without migrating when the loop is
  // stopping. Serialized: concurrent calls run one migration after
  // another. Subject to the same reader backpressure as writers — a
  // parked snapshot can delay (not deadlock) the capture phase.
  bool TriggerRepartition(int new_num_shards = 0);

  // Stops the repartition monitor and all writer threads after draining
  // pending updates (idempotent; the destructor calls it).
  void Stop();

  // --- introspection ---
  // Facade version (monotone, incl. across repartitions; see
  // ShardedVersionedIndex).
  uint64_t version() const { return index_.version(); }
  int num_shards() const { return index_.num_shards(); }
  // Current topology epoch (starts at 1; +1 per completed repartition).
  uint64_t epoch() const { return index_.epoch(); }
  // Completed live migrations.
  int64_t repartitions() const {
    return repartitions_.load(std::memory_order_acquire);
  }
  // max/mean combined shard load of the monitor's last sample (1.0 =
  // balanced; only meaningful when the monitor is enabled).
  double imbalance() const {
    return last_imbalance_.load(std::memory_order_relaxed);
  }
  // Total drift rebuilds across all shards, including retired generations
  // (monotone: writers increment one shared counter directly).
  int64_t rebuilds() const {
    return rebuilds_.load(std::memory_order_relaxed);
  }
  // Worst (max) per-shard drift ratio of the current generation.
  double drift_ratio();
  ShardedVersionedIndex& sharded_index() { return index_; }
  // Single-shard convenience used by tests written against the PR-1
  // topology. Loud on misuse: with more shards this would silently expose
  // only shard 0 (and mutating through it would race that shard's
  // writer) — go through sharded_index().shard(s) instead. One pinned
  // topology for the check AND the access, so the pair cannot straddle a
  // concurrent repartition.
  VersionedIndex& versioned_index() {
    const std::shared_ptr<ShardTopology> topo = index_.AcquireTopology();
    assert(topo->num_shards() == 1 &&
           "versioned_index() is single-shard only; use sharded_index()");
    return *topo->shards[0];
  }
  QueryEngine& engine() { return engine_; }
  // The hot-result cache (disabled unless opts.cache.capacity_bytes > 0;
  // stats() readable either way) and the admission pipeline's counters.
  ResultCache& result_cache() { return cache_; }
  ResultCacheStats cache_stats() const { return cache_.stats(); }
  AdmissionStats admission_stats() const { return admission_->stats(); }

 private:
  // Everything one shard's writer owns: its update queue, its drift state,
  // its migration hand-off state, and the thread itself. unique_ptr keeps
  // addresses stable in the vector.
  struct ShardWriter {
    explicit ShardWriter(const DriftMonitorOptions& opts) : monitor(opts) {}

    std::mutex queue_mu;
    std::condition_variable queue_cv;  // writer: ops pending / stop
    std::condition_variable flush_cv;  // waiters: applied advanced
    std::vector<UpdateOp> queue;
    uint64_t submitted = 0;
    uint64_t applied = 0;
    bool rebuild_requested = false;
    bool stop = false;

    // --- migration state (all under queue_mu) ---
    // Dual-write: ops also append to `delta` for replay into the next
    // generation.
    bool dual_write = false;
    std::vector<UpdateOp> delta;
    // Cutover passed this shard: it accepts no more ops; submitters retry
    // against the (about-to-be-installed) next writer generation.
    bool closed = false;
    // Capture hand-off: once `applied >= capture_target`, the writer
    // copies its shard's authoritative point set into `captured`.
    bool capture_requested = false;
    uint64_t capture_target = 0;
    bool capture_done = false;
    std::vector<Point> captured;
    std::condition_variable capture_cv;

    // Drift state, shared by all client threads (try_lock sampling).
    std::mutex monitor_mu;
    DriftMonitor monitor;
    std::vector<Rect> recent;  // ring of served per-shard sub-rectangles
    size_t recent_next = 0;
    size_t recent_count = 0;

    // Sub-queries served by this shard this epoch (repartition monitor
    // input; incremented lock-free on the query path).
    std::atomic<int64_t> query_stabs{0};
    std::thread thread;
  };

  // One generation of writers, bound to one topology epoch. The submit
  // path loads the current generation from an atomic cell; a migration
  // installs a successor and retires this one.
  struct WriterGen {
    uint64_t epoch = 1;
    std::shared_ptr<ShardTopology> topo;
    std::vector<std::unique_ptr<ShardWriter>> writers;
  };

  // Creates writers (threads running) for `topo`.
  std::shared_ptr<WriterGen> StartWriters(std::shared_ptr<ShardTopology> topo);
  void WriterLoop(std::shared_ptr<WriterGen> gen, int s);
  void Submit(const Point& p, bool insert);
  // Enqueues `op` to its owning shard of `gen`. Returns false (op not
  // enqueued) when that shard is closed by a cutover: Submit retries on
  // the successor generation; the migration replay path targets the new
  // generation, which is never closed while the coordinator runs.
  static bool EnqueueTo(WriterGen& gen, const UpdateOp& op,
                        size_t batch_limit);
  // Feeds one served sub-query into `gen`'s shard-s drift/stab state.
  // `epoch` is the epoch the query pinned; samples from other generations
  // are dropped (shard ids only mean something within their own epoch).
  // The caller loads the generation once per query, not once per part.
  static void ObserveShard(WriterGen& gen, uint64_t epoch, int s,
                           const Rect* rect, const QueryStats& stats);
  // Recent per-shard rectangles as a workload; falls back to the shard's
  // build-time slice. Caller holds writers[s]->monitor_mu.
  static Workload RecentWorkloadLocked(const WriterGen& gen, int s);
  // The full migration (caller holds repartition_mu_).
  void RepartitionLocked(int new_num_shards);
  void MonitorLoop();

  ServeOptions opts_;
  ShardedVersionedIndex index_;
  ResultCache cache_;    // before engine_: the engine probes it
  QueryEngine engine_;
  // After engine_/index_ (it holds pointers to both) and destroyed before
  // them; Stop() drains it before tearing the writers down.
  std::unique_ptr<AdmissionQueue> admission_;
  AtomicCell<WriterGen> writer_gen_;

  // Serializes migrations and Stop's writer teardown.
  std::mutex repartition_mu_;
  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> repartitions_{0};
  std::atomic<int64_t> rebuilds_{0};
  std::atomic<double> last_imbalance_{1.0};
  RepartitionMonitor repartition_monitor_;
  std::mutex monitor_mu_;  // monitor thread wake/stop
  std::condition_variable monitor_cv_;
  std::thread monitor_thread_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SERVE_LOOP_H_

#include "serve/sharded_index.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <string>

#include "index/knn.h"

namespace wazi::serve {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Equi-depth boundaries with workload-aware placement: `cuts - 1` values
// splitting `values` (sorted in place) into `cuts` buckets of equal count
// up to a small slack. Every boundary a query straddles doubles that
// query's traversals and fragments its page scans across two shards, so
// within a +-25%-of-a-bucket window around each exact quantile the cut
// is placed where it stabs the fewest workload intervals (the queries'
// extents in this dimension) — workload-awareness applied to the shard
// map itself, not just the per-shard layouts. Ties keep the exact
// quantile. Duplicates in the data can still make buckets uneven (all
// equal values land right of the boundary); the router tolerates empty
// cells.
std::vector<double> EquiDepthBounds(
    std::vector<double>* values, int cuts,
    const std::vector<std::pair<double, double>>& intervals) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(cuts - 1));
  std::sort(values->begin(), values->end());
  const size_t n = values->size();
  const size_t slack =
      intervals.empty() ? 0 : n / (static_cast<size_t>(cuts) * 4);
  for (int j = 1; j < cuts; ++j) {
    const size_t target = n * static_cast<size_t>(j) / static_cast<size_t>(cuts);
    size_t best_idx = target;
    if (slack > 0) {
      const size_t lo = target > slack ? target - slack : 0;
      const size_t hi = std::min(n - 1, target + slack);
      int64_t best_cost = std::numeric_limits<int64_t>::max();
      // ~17 candidate positions across the window; exhaustive scanning of
      // the window would be O(slack * |intervals|) for no extra benefit.
      const size_t step = std::max<size_t>(1, (hi - lo) / 16);
      for (size_t idx = lo; idx <= hi; idx += step) {
        const double v = (*values)[idx];
        int64_t stabs = 0;
        for (const auto& [ilo, ihi] : intervals) {
          if (ilo <= v && v <= ihi) ++stabs;
        }
        // Prefer the position closest to the exact quantile among equal
        // stab counts (keeps balance tight when the workload is
        // indifferent).
        const int64_t cost = stabs * static_cast<int64_t>(2 * slack + 1) +
                             static_cast<int64_t>(idx > target ? idx - target
                                                               : target - idx);
        if (cost < best_cost) {
          best_cost = cost;
          best_idx = idx;
        }
      }
    }
    bounds.push_back((*values)[best_idx]);
  }
  return bounds;
}

// Uniform boundaries over [lo, hi] — the no-data fallback.
std::vector<double> UniformBounds(double lo, double hi, int cuts) {
  std::vector<double> bounds;
  bounds.reserve(static_cast<size_t>(cuts - 1));
  for (int j = 1; j < cuts; ++j) {
    bounds.push_back(lo + (hi - lo) * static_cast<double>(j) /
                              static_cast<double>(cuts));
  }
  return bounds;
}

// Count of boundaries <= v, i.e. the bucket index of v in [0, |bounds|].
// Monotone in v, so interval endpoints map to an inclusive bucket range.
int BucketOf(const std::vector<double>& bounds, double v) {
  return static_cast<int>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

}  // namespace

void ShardRouter::Build(const std::vector<Point>& points, int num_shards,
                        const Rect& domain, const Workload* workload) {
  num_shards = std::max(1, num_shards);
  domain_ = domain;
  // rows x cols = num_shards, as square as the divisors allow, with the
  // extra splits on x (rows <= cols). Primes give 1xN stripes.
  rows_ = 1;
  for (int d = 1; d * d <= num_shards; ++d) {
    if (num_shards % d == 0) rows_ = d;
  }
  cols_ = num_shards / rows_;

  y_bounds_.clear();
  x_bounds_.assign(static_cast<size_t>(rows_), {});
  const bool have_data = !points.empty();
  const bool have_domain = !domain.empty();

  if (rows_ > 1) {
    if (have_data) {
      std::vector<double> ys;
      ys.reserve(points.size());
      for (const Point& p : points) ys.push_back(p.y);
      std::vector<std::pair<double, double>> intervals;
      if (workload != nullptr) {
        intervals.reserve(workload->queries.size());
        for (const Rect& q : workload->queries) {
          intervals.emplace_back(q.min_y, q.max_y);
        }
      }
      y_bounds_ = EquiDepthBounds(&ys, rows_, intervals);
    } else if (have_domain) {
      y_bounds_ = UniformBounds(domain.min_y, domain.max_y, rows_);
    } else {
      y_bounds_.assign(static_cast<size_t>(rows_ - 1), 0.0);
    }
  }
  if (cols_ > 1) {
    // Conditional x-quantiles: each row's columns are equi-depth over the
    // points that route into THAT row, so cells stay balanced even when x
    // and y are correlated (a marginal grid would not be).
    std::vector<std::vector<double>> row_xs(static_cast<size_t>(rows_));
    if (have_data) {
      for (const Point& p : points) {
        row_xs[static_cast<size_t>(RowOf(p.y))].push_back(p.x);
      }
    }
    for (int r = 0; r < rows_; ++r) {
      std::vector<double>& xs = row_xs[static_cast<size_t>(r)];
      if (!xs.empty()) {
        std::vector<std::pair<double, double>> intervals;
        if (workload != nullptr) {
          // Only queries overlapping this row band can straddle its
          // x-cuts.
          const double band_lo =
              r == 0 ? -kInf : y_bounds_[static_cast<size_t>(r - 1)];
          const double band_hi =
              r == rows_ - 1 ? kInf : y_bounds_[static_cast<size_t>(r)];
          for (const Rect& q : workload->queries) {
            if (q.max_y >= band_lo && q.min_y <= band_hi) {
              intervals.emplace_back(q.min_x, q.max_x);
            }
          }
        }
        x_bounds_[static_cast<size_t>(r)] = EquiDepthBounds(&xs, cols_,
                                                            intervals);
      } else if (have_domain) {
        x_bounds_[static_cast<size_t>(r)] =
            UniformBounds(domain.min_x, domain.max_x, cols_);
      } else {
        x_bounds_[static_cast<size_t>(r)].assign(
            static_cast<size_t>(cols_ - 1), 0.0);
      }
    }
  }
}

int ShardRouter::RowOf(double y) const { return BucketOf(y_bounds_, y); }

int ShardRouter::ColOf(int row, double x) const {
  if (cols_ == 1) return 0;
  return BucketOf(x_bounds_[static_cast<size_t>(row)], x);
}

int ShardRouter::ShardOf(const Point& p) const {
  const int r = RowOf(p.y);
  return r * cols_ + ColOf(r, p.x);
}

Rect ShardRouter::CellRect(int shard) const {
  const int r = shard / cols_;
  const int c = shard % cols_;
  const std::vector<double>& xb = x_bounds_.empty()
                                      ? y_bounds_  // unused when cols_ == 1
                                      : x_bounds_[static_cast<size_t>(r)];
  return Rect::Of(
      c == 0 ? -kInf : xb[static_cast<size_t>(c - 1)],
      r == 0 ? -kInf : y_bounds_[static_cast<size_t>(r - 1)],
      c == cols_ - 1 ? kInf : xb[static_cast<size_t>(c)],
      r == rows_ - 1 ? kInf : y_bounds_[static_cast<size_t>(r)]);
}

Rect ShardRouter::ClampedCellRect(int shard) const {
  if (domain_.empty()) return domain_;
  return CellRect(shard).Intersect(domain_);
}

void ShardRouter::Decompose(const Rect& query,
                            std::vector<ShardSubquery>* out) const {
  out->clear();
  if (query.empty()) return;
  const int r0 = RowOf(query.min_y);
  const int r1 = RowOf(query.max_y);
  for (int r = r0; r <= r1; ++r) {
    const int c0 = ColOf(r, query.min_x);
    const int c1 = ColOf(r, query.max_x);
    for (int c = c0; c <= c1; ++c) {
      const int shard = r * cols_ + c;
      // Non-empty by construction: monotone routing means every cell in
      // the [r0,r1]x[c0,c1] block overlaps the query.
      out->push_back(ShardSubquery{shard, query.Intersect(CellRect(shard))});
    }
  }
}

void ShardRouter::BuildMovedCuts(
    const ShardRouter& base, const std::vector<bool>& y_cut_moves,
    const std::vector<std::vector<bool>>& x_cut_moves,
    const std::vector<Point>& points, const Rect& domain,
    const Workload* workload) {
  rows_ = base.rows_;
  cols_ = base.cols_;
  domain_ = domain;
  y_bounds_ = base.y_bounds_;
  x_bounds_ = base.x_bounds_;

  // Rows whose band moves (adjacent to a moving y-cut): their x-cuts are
  // recut wholesale from the merged band below.
  std::vector<bool> row_changed(static_cast<size_t>(rows_), false);

  // --- y-cuts: maximal runs of moving boundaries --------------------
  // A run j0..j1 re-splits the band spanning rows j0..j1+1. The band's
  // outer boundaries are KEPT cuts (or the infinite edges), so every
  // replacement stays inside the band: the union of the affected rows'
  // regions is preserved.
  for (size_t j0 = 0; j0 < y_cut_moves.size();) {
    if (!y_cut_moves[j0]) {
      ++j0;
      continue;
    }
    size_t j1 = j0;
    while (j1 + 1 < y_cut_moves.size() && y_cut_moves[j1 + 1]) ++j1;
    for (size_t r = j0; r <= j1 + 1; ++r) row_changed[r] = true;

    // Band membership per BucketOf semantics: row r covers
    // [y_bounds[r-1], y_bounds[r]).
    const bool open_lo = j0 == 0;
    const bool open_hi = j1 + 1 >= y_bounds_.size();
    const double lo = open_lo ? 0.0 : base.y_bounds_[j0 - 1];
    const double hi = open_hi ? 0.0 : base.y_bounds_[j1 + 1];
    std::vector<double> ys;
    for (const Point& p : points) {
      if ((open_lo || p.y >= lo) && (open_hi || p.y < hi)) ys.push_back(p.y);
    }
    if (!ys.empty()) {
      std::vector<std::pair<double, double>> intervals;
      if (workload != nullptr) {
        intervals.reserve(workload->queries.size());
        for (const Rect& q : workload->queries) {
          intervals.emplace_back(q.min_y, q.max_y);
        }
      }
      const std::vector<double> cuts = EquiDepthBounds(
          &ys, static_cast<int>(j1 - j0) + 2, intervals);
      for (size_t j = j0; j <= j1; ++j) y_bounds_[j] = cuts[j - j0];
    }  // no points in the band: keep the old cuts (degenerate but sound)
    j0 = j1 + 1;
  }

  // --- x-cuts -------------------------------------------------------
  for (int r = 0; r < rows_; ++r) {
    const bool full_row = row_changed[static_cast<size_t>(r)];
    // Band bounds of row r under the NEW y-cuts (identical to the old
    // ones for rows outside every y-run).
    const bool row_open_lo = r == 0;
    const bool row_open_hi = r == rows_ - 1;
    const double band_lo = row_open_lo ? 0.0
                                       : y_bounds_[static_cast<size_t>(r - 1)];
    const double band_hi = row_open_hi ? 0.0
                                       : y_bounds_[static_cast<size_t>(r)];
    const auto in_row = [&](const Point& p) {
      return (row_open_lo || p.y >= band_lo) && (row_open_hi || p.y < band_hi);
    };
    const auto intervals_for_row = [&]() {
      std::vector<std::pair<double, double>> intervals;
      if (workload != nullptr) {
        for (const Rect& q : workload->queries) {
          const double qlo = row_open_lo ? -kInf : band_lo;
          const double qhi = row_open_hi ? kInf : band_hi;
          if (q.max_y >= qlo && q.min_y <= qhi) {
            intervals.emplace_back(q.min_x, q.max_x);
          }
        }
      }
      return intervals;
    };
    if (cols_ <= 1) continue;
    std::vector<double>& xb = x_bounds_[static_cast<size_t>(r)];
    if (full_row) {
      std::vector<double> xs;
      for (const Point& p : points) {
        if (in_row(p)) xs.push_back(p.x);
      }
      if (!xs.empty()) {
        const std::vector<std::pair<double, double>> intervals =
            intervals_for_row();
        xb = EquiDepthBounds(&xs, cols_, intervals);
      }
      continue;
    }
    // Unchanged band: re-place only the flagged runs, between their kept
    // neighbours.
    const std::vector<bool>& moves = x_cut_moves[static_cast<size_t>(r)];
    for (size_t c0 = 0; c0 < moves.size();) {
      if (!moves[c0]) {
        ++c0;
        continue;
      }
      size_t c1 = c0;
      while (c1 + 1 < moves.size() && moves[c1 + 1]) ++c1;
      const bool open_lo = c0 == 0;
      const bool open_hi = c1 + 1 >= xb.size();
      const double lo = open_lo ? 0.0 : base.x_bounds_[static_cast<size_t>(r)]
                                                      [c0 - 1];
      const double hi = open_hi ? 0.0 : base.x_bounds_[static_cast<size_t>(r)]
                                                      [c1 + 1];
      std::vector<double> xs;
      for (const Point& p : points) {
        if (in_row(p) && (open_lo || p.x >= lo) && (open_hi || p.x < hi)) {
          xs.push_back(p.x);
        }
      }
      if (!xs.empty()) {
        const std::vector<std::pair<double, double>> intervals =
            intervals_for_row();
        const std::vector<double> cuts = EquiDepthBounds(
            &xs, static_cast<int>(c1 - c0) + 2, intervals);
        for (size_t c = c0; c <= c1; ++c) xb[c] = cuts[c - c0];
      }
      c0 = c1 + 1;
    }
  }
}

double ShardRouter::MinDistanceSquared(const Point& p, int shard) const {
  const Rect cell = CellRect(shard);
  double dx = 0.0;
  if (p.x < cell.min_x) {
    dx = cell.min_x - p.x;
  } else if (p.x > cell.max_x) {
    dx = p.x - cell.max_x;
  }
  double dy = 0.0;
  if (p.y < cell.min_y) {
    dy = cell.min_y - p.y;
  } else if (p.y > cell.max_y) {
    dy = p.y - cell.max_y;
  }
  return dx * dx + dy * dy;
}

uint64_t ShardTopology::version() const {
  uint64_t sum = version_base;
  for (const auto& shard : shards) sum += shard->version();
  return sum;
}

size_t ShardTopology::num_points() const {
  size_t sum = 0;
  for (const auto& shard : shards) sum += shard->num_points();
  return sum;
}

ShardedVersionedIndex::ShardedVersionedIndex(IndexFactory factory,
                                             const Dataset& data,
                                             const Workload& workload,
                                             const BuildOptions& build_opts,
                                             ShardedIndexOptions opts)
    : factory_(std::move(factory)),
      build_opts_(build_opts),
      opts_(opts),
      data_name_(data.name) {
  if (opts_.registry != nullptr) {
    epoch_gauge_ = opts_.registry->GetGauge("serve_topology_epoch");
    shards_gauge_ = opts_.registry->GetGauge("serve_shards");
  }
  PublishTopology(MakeTopology(factory_, build_opts_, opts_.versioned,
                               data_name_, data.points, workload,
                               std::max(1, opts_.num_shards), data.bounds,
                               /*epoch=*/1, /*version_base=*/0));
}

ShardedVersionedIndex::~ShardedVersionedIndex() = default;

std::shared_ptr<ShardTopology> ShardedVersionedIndex::MakeTopology(
    const IndexFactory& factory, const BuildOptions& build_opts,
    const VersionedIndexOptions& vopts, const std::string& data_name,
    const std::vector<Point>& points, const Workload& workload,
    int num_shards, const Rect& domain, uint64_t epoch,
    uint64_t version_base) {
  auto topo = std::make_shared<ShardTopology>();
  topo->epoch = epoch;
  topo->version_base = version_base;
  topo->domain = domain;
  const int n_shards = std::max(1, num_shards);
  topo->router.Build(points, n_shards, domain, &workload);
  const ShardRouter& router = topo->router;

  std::vector<Dataset> shard_data(static_cast<size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    Dataset& d = shard_data[static_cast<size_t>(s)];
    d.name = data_name + "/e" + std::to_string(epoch) + "/shard" +
             std::to_string(s);
    d.bounds = router.ClampedCellRect(s);
    d.points.reserve(points.size() / static_cast<size_t>(n_shards) + 1);
  }
  for (const Point& p : points) {
    shard_data[static_cast<size_t>(router.ShardOf(p))].points.push_back(p);
  }

  // Each shard trains on the workload it will actually see: the queries
  // that overlap its cell, clipped to their per-shard sub-rectangles.
  topo->shard_workloads.resize(static_cast<size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    Workload& w = topo->shard_workloads[static_cast<size_t>(s)];
    w.name = workload.name + "/e" + std::to_string(epoch) + "/shard" +
             std::to_string(s);
    w.selectivity = workload.selectivity;
    const Rect cell = router.CellRect(s);
    for (const Rect& q : workload.queries) {
      const Rect sub = q.Intersect(cell);
      if (!sub.empty()) w.queries.push_back(sub);
    }
  }

  topo->shards.reserve(static_cast<size_t>(n_shards));
  for (int s = 0; s < n_shards; ++s) {
    // Per-shard journal/metric attribution: the shard keeps this identity
    // for its whole life, even if a later incremental migration carries it
    // into a higher epoch.
    VersionedIndexOptions shard_opts = vopts;
    shard_opts.shard_id = s;
    shard_opts.epoch = epoch;
    topo->shards.push_back(std::make_shared<VersionedIndex>(
        factory, shard_data[static_cast<size_t>(s)],
        topo->shard_workloads[static_cast<size_t>(s)], build_opts,
        shard_opts));
  }
  return topo;
}

std::shared_ptr<ShardTopology> ShardedVersionedIndex::BuildIncrementalTopology(
    const ShardTopology& old_topo, const ShardRouter& new_router,
    const std::vector<bool>& changed, const std::vector<Point>& moved_points,
    const Workload& workload, const Rect& domain, uint64_t epoch) const {
  const int n = old_topo.num_shards();
  auto topo = std::make_shared<ShardTopology>();
  topo->epoch = epoch;
  topo->version_base = 0;  // stamped by the coordinator after cutover
  topo->domain = domain;
  topo->router = new_router;

  // Route the captured points of the changed cells through the NEW cuts.
  // The carrying invariant (BuildMovedCuts) guarantees they land in
  // changed cells again — a carried cell's region did not move.
  std::vector<Dataset> shard_data(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (!changed[static_cast<size_t>(s)]) continue;
    Dataset& d = shard_data[static_cast<size_t>(s)];
    d.name = data_name_ + "/e" + std::to_string(epoch) + "/shard" +
             std::to_string(s);
    d.bounds = new_router.ClampedCellRect(s);
  }
  for (const Point& p : moved_points) {
    const int s = new_router.ShardOf(p);
    assert(changed[static_cast<size_t>(s)] &&
           "moved point routed into a carried cell");
    shard_data[static_cast<size_t>(s)].points.push_back(p);
  }

  // Fresh workload slices for every cell (carried shards keep their index
  // layout but their rebuild-fallback slice tracks the recent workload).
  topo->shard_workloads.resize(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    Workload& w = topo->shard_workloads[static_cast<size_t>(s)];
    w.name = workload.name + "/e" + std::to_string(epoch) + "/shard" +
             std::to_string(s);
    w.selectivity = workload.selectivity;
    const Rect cell = new_router.CellRect(s);
    for (const Rect& q : workload.queries) {
      const Rect sub = q.Intersect(cell);
      if (!sub.empty()) w.queries.push_back(sub);
    }
  }

  topo->shards.reserve(static_cast<size_t>(n));
  for (int s = 0; s < n; ++s) {
    if (changed[static_cast<size_t>(s)]) {
      VersionedIndexOptions shard_opts = opts_.versioned;
      shard_opts.shard_id = s;
      shard_opts.epoch = epoch;
      topo->shards.push_back(std::make_shared<VersionedIndex>(
          factory_, shard_data[static_cast<size_t>(s)],
          topo->shard_workloads[static_cast<size_t>(s)], build_opts_,
          shard_opts));
    } else {
      // Carried: the live shard changes owners, untouched — no capture,
      // no rebuild, no dual-write replay.
      topo->shards.push_back(old_topo.shards[static_cast<size_t>(s)]);
    }
  }
  return topo;
}

std::shared_ptr<ShardTopology> ShardedVersionedIndex::BuildNextTopology(
    const std::vector<Point>& points, const Workload& workload,
    int num_shards, const Rect& domain, uint64_t epoch,
    uint64_t version_base) const {
  return MakeTopology(factory_, build_opts_, opts_.versioned, data_name_,
                      points, workload, num_shards, domain, epoch,
                      version_base);
}

void ShardedVersionedIndex::PublishTopology(
    std::shared_ptr<ShardTopology> topo) {
  if (epoch_gauge_ != nullptr) {
    epoch_gauge_->Set(static_cast<int64_t>(topo->epoch));
  }
  if (shards_gauge_ != nullptr) shards_gauge_->Set(topo->num_shards());
  topology_.Store(std::move(topo));
}

const ShardTopology* ShardedVersionedIndex::TopoFor(
    const SnapshotSet* snaps, std::shared_ptr<ShardTopology>* owned) const {
  if (snaps != nullptr) return snaps->topology.get();
  *owned = topology_.Load();
  return owned->get();
}

const IndexSnapshot* ShardedVersionedIndex::SnapFor(
    const ShardTopology& topo, int s, const SnapshotSet* snaps,
    SnapshotRef* owned) {
  if (snaps != nullptr) return snaps->snaps[static_cast<size_t>(s)].get();
  *owned = topo.shards[static_cast<size_t>(s)]->Acquire();
  return owned->get();
}

void ShardedVersionedIndex::AcquireAll(SnapshotSet* out) const {
  out->topology = topology_.Load();
  out->snaps.clear();
  out->snaps.reserve(out->topology->shards.size());
  for (const auto& shard : out->topology->shards) {
    out->snaps.push_back(shard->Acquire());
  }
}

void ShardedVersionedIndex::RangeQuery(const Rect& query,
                                       std::vector<Point>* out,
                                       QueryStats* stats,
                                       std::vector<ShardQueryPart>* parts,
                                       uint64_t* version_mass,
                                       const SnapshotSet* snaps,
                                       uint64_t* epoch_out) const {
  // One topology pinned for the whole query: the decomposition and every
  // per-shard sub-query run against the SAME router/shard set even if a
  // repartition publishes a successor mid-query.
  std::shared_ptr<ShardTopology> owned_topo;
  const ShardTopology& topo = *TopoFor(snaps, &owned_topo);
  if (epoch_out != nullptr) *epoch_out = topo.epoch;
  // Scratch reused across calls: range queries are the serving hot path,
  // and a per-query allocation here is measurable against microsecond
  // queries (the vector is consumed within this call, so sharing one per
  // thread across instances is safe).
  static thread_local std::vector<ShardSubquery> subs;
  topo.router.Decompose(query, &subs);
  if (parts != nullptr) {
    parts->clear();
    parts->reserve(subs.size());
  }
  uint64_t vmass = 0;
  for (const ShardSubquery& sq : subs) {
    QueryStats local;
    SnapshotRef owned;
    const IndexSnapshot* snap = SnapFor(topo, sq.shard, snaps, &owned);
    snap->index().RangeQuery(sq.rect, out, &local);
    vmass += snap->version();
    // The cross-shard totals are the SUM of the per-shard counters.
    if (stats != nullptr) stats->Add(local);
    if (parts != nullptr) {
      parts->push_back(ShardQueryPart{sq.shard, sq.rect, snap->version(),
                                      local});
    }
  }
  if (version_mass != nullptr) *version_mass = vmass;
}

bool ShardedVersionedIndex::PointQuery(const Point& p, QueryStats* stats,
                                       uint64_t* version_mass,
                                       int* home_shard,
                                       const SnapshotSet* snaps,
                                       uint64_t* epoch_out) const {
  std::shared_ptr<ShardTopology> owned_topo;
  const ShardTopology& topo = *TopoFor(snaps, &owned_topo);
  if (epoch_out != nullptr) *epoch_out = topo.epoch;
  const int s = topo.router.ShardOf(p);
  if (home_shard != nullptr) *home_shard = s;
  QueryStats local;
  SnapshotRef owned;
  const IndexSnapshot* snap = SnapFor(topo, s, snaps, &owned);
  const bool found = snap->index().PointQuery(p, &local);
  if (stats != nullptr) stats->Add(local);
  if (version_mass != nullptr) *version_mass = snap->version();
  return found;
}

std::vector<Point> ShardedVersionedIndex::Knn(const Point& center, int k,
                                              QueryStats* stats,
                                              uint64_t* version_mass,
                                              const SnapshotSet* snaps,
                                              uint64_t* epoch_out) const {
  std::shared_ptr<ShardTopology> owned_topo;
  const ShardTopology& topo = *TopoFor(snaps, &owned_topo);
  if (epoch_out != nullptr) *epoch_out = topo.epoch;
  std::vector<Point> result;
  uint64_t vmass = 0;
  if (k > 0) {
    const size_t want = static_cast<size_t>(k);
    // Visit shards in increasing distance from the query point to their
    // cell; a shard can only contribute neighbours at least that far away.
    std::vector<std::pair<double, int>> order;
    order.reserve(topo.shards.size());
    for (int s = 0; s < topo.num_shards(); ++s) {
      order.emplace_back(topo.router.MinDistanceSquared(center, s), s);
    }
    std::sort(order.begin(), order.end());

    // Bounded merged result heap: the k best seen so far, max at front.
    const auto farther = [](const std::pair<double, Point>& a,
                            const std::pair<double, Point>& b) {
      return a.first < b.first;
    };
    std::vector<std::pair<double, Point>> heap;
    heap.reserve(want + 1);
    for (const auto& [min_d2, s] : order) {
      // Expansion bound: once k neighbours are closer than the next cell,
      // no unvisited shard can improve the result (ties still visited).
      if (heap.size() == want && min_d2 > heap.front().first) break;
      SnapshotRef owned;
      const IndexSnapshot* snap = SnapFor(topo, s, snaps, &owned);
      vmass += snap->version();
      QueryStats local;
      const KnnResult local_knn =
          KnnByRangeExpansion(snap->index(), center, want,
                              topo.router.ClampedCellRect(s), &local);
      if (stats != nullptr) stats->Add(local);
      for (const Point& p : local_knn.neighbors) {
        const double d2 = DistanceSquared(p, center);
        if (heap.size() < want) {
          heap.emplace_back(d2, p);
          std::push_heap(heap.begin(), heap.end(), farther);
        } else if (d2 < heap.front().first) {
          std::pop_heap(heap.begin(), heap.end(), farther);
          heap.back() = {d2, p};
          std::push_heap(heap.begin(), heap.end(), farther);
        }
      }
    }
    std::sort(heap.begin(), heap.end(), farther);
    result.reserve(heap.size());
    for (const auto& [d2, p] : heap) result.push_back(p);
  }
  if (version_mass != nullptr) *version_mass = vmass;
  return result;
}

void ShardedVersionedIndex::Project(const Rect& query,
                                    std::vector<ShardProjection>* parts,
                                    QueryStats* stats) const {
  parts->clear();
  std::shared_ptr<ShardTopology> topo = topology_.Load();
  std::vector<ShardSubquery> subs;
  topo->router.Decompose(query, &subs);
  parts->reserve(subs.size());
  for (const ShardSubquery& sq : subs) {
    ShardProjection part;
    part.shard = sq.shard;
    part.rect = sq.rect;
    part.topology = topo;
    part.snap = topo->shards[static_cast<size_t>(sq.shard)]->Acquire();
    QueryStats local;
    part.snap->index().Project(sq.rect, &part.proj, &local);
    if (stats != nullptr) stats->Add(local);
    parts->push_back(std::move(part));
  }
}

void ShardedVersionedIndex::ScanParts(const std::vector<ShardProjection>& parts,
                                      std::vector<Point>* out,
                                      QueryStats* stats) const {
  for (const ShardProjection& part : parts) {
    QueryStats local;
    part.snap->index().ScanProjection(part.proj, part.rect, out, &local);
    if (stats != nullptr) stats->Add(local);
  }
}

}  // namespace wazi::serve

// Sharded serving engine: spatial partitioning of one logical index across
// N VersionedIndex shards so update throughput scales with cores.
//
// Partitioning is a rank-space tiling built once from the initial dataset:
// the domain is cut into `rows` horizontal bands at equi-depth y-quantiles,
// and every band is cut independently into `cols` cells at equi-depth
// x-quantiles *of that band's points* (conditional quantiles). This yields
//   * exact load balance (each cell holds n/N points up to rounding) for
//     ANY data distribution, unlike a marginal-quantile grid;
//   * axis-aligned rectangular cells, so range and projection queries
//     decompose into per-shard sub-rectangles by pure interval clipping;
//   * Z-order-compatible cell enumeration (cells are visited band-major,
//     matching the coarse Z-curve sweep through rank space). Prime shard
//     counts degenerate to 1xN rank-space stripes.
//
// Each shard is an independent VersionedIndex: its own left-right instance
// pair, its own snapshot cell, its own single-writer contract. A point
// lives in exactly one shard (routing is a pure function of coordinates),
// so cross-shard queries union per-shard results with no deduplication:
//   * point lookups route to the single owning shard;
//   * range/projection queries run the clipped sub-rectangle on every
//     overlapping shard and sum the per-shard QueryStats;
//   * kNN runs a bounded best-first expansion: shards are visited in
//     increasing distance from the query point to their cell, each
//     contributing its local k nearest into a merged bounded max-heap, and
//     the sweep stops as soon as the next cell is farther than the current
//     k-th neighbour.
//
// Consistency model: per-shard snapshot consistency. A cross-shard query
// acquires each shard's live snapshot independently, so two shards may be
// observed at different versions (there is no global consistent cut —
// the same guarantee regimes as a distributed store with per-partition
// linearizability). The sharded stress test verifies every sub-query
// against the exact membership of the per-shard snapshot it ran on.

#ifndef WAZI_SERVE_SHARDED_INDEX_H_
#define WAZI_SERVE_SHARDED_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <utility>
#include <vector>

#include "serve/index_snapshot.h"

namespace wazi::serve {

// One shard's share of a decomposed range query: the query rectangle
// clipped to the shard's cell (closed on both boundary sides; the slack on
// the shared edge is harmless because each point lives in exactly one
// shard).
struct ShardSubquery {
  int shard = 0;
  Rect rect;
};

// Maps points and query rectangles to shards. Immutable after Build; safe
// to share across any number of threads.
class ShardRouter {
 public:
  // Single-shard router covering everything (the num_shards == 1 case).
  ShardRouter() = default;

  // Builds the equi-depth tiling described above from `points`.
  // `num_shards` is factored into rows x cols with rows <= cols as close
  // to square as divisors allow (primes become 1xN stripes). `domain` is
  // the dataset's domain rectangle; cells at the tiling's outer edge
  // extend beyond it to cover later out-of-domain inserts. When `workload`
  // is given, each cut slides within a small balance-slack window to the
  // position stabbed by the fewest workload queries (a straddled cut
  // doubles that query's traversals), keeping hot regions inside one
  // shard.
  void Build(const std::vector<Point>& points, int num_shards,
             const Rect& domain, const Workload* workload = nullptr);

  int num_shards() const { return rows_ * cols_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // The owning shard of `p` (a pure function of p.x/p.y, so inserts and
  // removes of the same coordinates always route identically).
  int ShardOf(const Point& p) const;

  // The cell's closed cover rectangle. Outer cells extend to +-infinity so
  // that every representable point routes into some cell; Decompose and
  // MinDistanceSquared handle the infinite extents, but do NOT feed this
  // rect into code that assumes finite spans (use ClampedCellRect for
  // that).
  Rect CellRect(int shard) const;

  // CellRect clipped to the build-time domain (finite; used as the shard's
  // build dataset bounds and kNN expansion domain).
  Rect ClampedCellRect(int shard) const;

  // Appends the sub-rectangle of `query` for every overlapping shard, in
  // shard-id order. Clears `out` first. Every point of every shard that
  // lies inside `query` is inside exactly one emitted sub-rectangle.
  void Decompose(const Rect& query, std::vector<ShardSubquery>* out) const;

  // Squared distance from `p` to shard's cell (0 when inside); the
  // best-first kNN visit order.
  double MinDistanceSquared(const Point& p, int shard) const;

 private:
  int RowOf(double y) const;
  int ColOf(int row, double x) const;

  int rows_ = 1;
  int cols_ = 1;
  Rect domain_ = Rect::Of(-std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::infinity());
  std::vector<double> y_bounds_;               // rows-1 internal boundaries
  std::vector<std::vector<double>> x_bounds_;  // per row: cols-1 boundaries
};

struct ShardedIndexOptions {
  int num_shards = 1;
  VersionedIndexOptions versioned;  // applied to every shard
};

// One shard's contribution to a cross-shard range query (returned so the
// serve layer can attribute drift observations to the shard that did the
// work).
struct ShardQueryPart {
  int shard = 0;
  Rect rect;                     // the clipped sub-rectangle
  uint64_t snapshot_version = 0; // per-shard snapshot the sub-query ran on
  QueryStats stats;              // that sub-query's work counters
};

// One shard's projection (phase-split execution across shards). Holds the
// snapshot it was computed on so ScanParts is guaranteed to scan the same
// instance the spans refer to.
struct ShardProjection {
  int shard = 0;
  Rect rect;
  Projection proj;
  std::shared_ptr<const IndexSnapshot> snap;
};

// N VersionedIndex shards behind one query facade.
//
// Thread-safety contract: every query method may be called from any number
// of threads concurrently. Mutations go through shard(s)'s single-writer
// API — one writer thread PER SHARD (that is the scaling point: per-shard
// writers make update throughput scale with cores).
class ShardedVersionedIndex {
 public:
  ShardedVersionedIndex(IndexFactory factory, const Dataset& data,
                        const Workload& workload,
                        const BuildOptions& build_opts,
                        ShardedIndexOptions opts = {});

  ShardedVersionedIndex(const ShardedVersionedIndex&) = delete;
  ShardedVersionedIndex& operator=(const ShardedVersionedIndex&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  const ShardRouter& router() const { return router_; }
  const Rect& domain() const { return domain_; }

  // The per-shard VersionedIndex. Queries through it see only that shard's
  // points; its mutation API is subject to the one-writer-per-shard rule.
  VersionedIndex& shard(int s) { return *shards_[static_cast<size_t>(s)]; }
  const VersionedIndex& shard(int s) const {
    return *shards_[static_cast<size_t>(s)];
  }

  int ShardOf(const Point& p) const { return router_.ShardOf(p); }

  // The workload slice (queries clipped to the shard's cell) the shard was
  // built against; the serve layer's per-shard rebuild fallback.
  const Workload& shard_workload(int s) const {
    return shard_workloads_[static_cast<size_t>(s)];
  }

  // Sum of all shard versions: monotone under any interleaving of
  // per-shard writers (each term is monotone). Introspection only — there
  // is no global snapshot this number identifies.
  uint64_t version() const;

  // Sum of shard point counts. Writer threads must be quiesced.
  size_t num_points() const;

  // One pre-acquired snapshot per shard (index == shard id). Lets a batch
  // executor pay the atomic acquire once per shard per block instead of
  // once per query — see AcquireAll.
  using SnapshotSet =
      std::vector<std::shared_ptr<const IndexSnapshot>>;

  // Fills `out` with every shard's live snapshot (cleared first). The set
  // is a per-shard-consistent view: each entry stays valid (and its shard
  // unchanged) for as long as the caller holds it, but holding it also
  // stalls that shard's writer like any other parked snapshot — hold per
  // batch block, not indefinitely.
  void AcquireAll(SnapshotSet* out) const;

  // --- cross-shard queries (any thread) ---
  //
  // All methods sum per-shard work counters into `*stats` (never only the
  // last shard's); `stats` may be null to discard them. `version_mass`,
  // when non-null, receives the sum of the versions of every per-shard
  // snapshot the query ran on (with one shard this is exactly the snapshot
  // version). `snaps`, when non-null, must come from AcquireAll on this
  // index; the query then runs on those snapshots without touching the
  // publication cells.

  // Appends all points inside `query` to `out`, decomposed into per-shard
  // sub-rectangles. `parts`, when non-null, is cleared and filled with one
  // entry per touched shard (sub-rectangle, snapshot version, counters).
  void RangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats = nullptr,
                  std::vector<ShardQueryPart>* parts = nullptr,
                  uint64_t* version_mass = nullptr,
                  const SnapshotSet* snaps = nullptr) const;

  // True iff a point with identical coordinates is stored; runs on the
  // single owning shard. `home_shard`, when non-null, receives it.
  bool PointQuery(const Point& p, QueryStats* stats = nullptr,
                  uint64_t* version_mass = nullptr,
                  int* home_shard = nullptr,
                  const SnapshotSet* snaps = nullptr) const;

  // The k nearest neighbours of `center` by Euclidean distance, sorted by
  // increasing distance, merged across shards via bounded best-first
  // expansion (see file header). Like the PR-1 engine, neighbours are
  // searched within the build-time domain: a point inserted OUTSIDE
  // `domain()` is served by range/point queries but may be missed here
  // when fewer than k points exist near the center (the per-shard
  // expansion certifies completion against the clamped cell).
  std::vector<Point> Knn(const Point& center, int k,
                         QueryStats* stats = nullptr,
                         uint64_t* version_mass = nullptr,
                         const SnapshotSet* snaps = nullptr) const;

  // Phase-split execution across shards: per-shard projections over the
  // clipped sub-rectangles (Project), then a filter of those spans against
  // the same per-shard snapshots (ScanParts).
  void Project(const Rect& query, std::vector<ShardProjection>* parts,
               QueryStats* stats = nullptr) const;
  void ScanParts(const std::vector<ShardProjection>& parts,
                 std::vector<Point>* out, QueryStats* stats = nullptr) const;

 private:
  // The snapshot to query shard `s` on: the caller's pre-acquired set when
  // given, else a fresh Acquire() whose ownership lands in `*owned`.
  const IndexSnapshot* SnapFor(
      int s, const SnapshotSet* snaps,
      std::shared_ptr<const IndexSnapshot>* owned) const;

  ShardRouter router_;
  Rect domain_;
  std::vector<std::unique_ptr<VersionedIndex>> shards_;
  std::vector<Workload> shard_workloads_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SHARDED_INDEX_H_

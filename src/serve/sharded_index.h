// Sharded serving engine: spatial partitioning of one logical index across
// N VersionedIndex shards so update throughput scales with cores.
//
// Partitioning is a rank-space tiling built from a point sample: the
// domain is cut into `rows` horizontal bands at equi-depth y-quantiles,
// and every band is cut independently into `cols` cells at equi-depth
// x-quantiles *of that band's points* (conditional quantiles). This yields
//   * exact load balance (each cell holds n/N points up to rounding) for
//     ANY data distribution, unlike a marginal-quantile grid;
//   * axis-aligned rectangular cells, so range and projection queries
//     decompose into per-shard sub-rectangles by pure interval clipping;
//   * Z-order-compatible cell enumeration (cells are visited band-major,
//     matching the coarse Z-curve sweep through rank space). Prime shard
//     counts degenerate to 1xN rank-space stripes.
//
// The tiling is no longer frozen at construction. The engine is
// snapshot-swapped at TWO levels:
//   1. per shard: each VersionedIndex publishes immutable IndexSnapshots
//      (left-right instance pair, drain-signalled reclamation);
//   2. per topology: the router TOGETHER WITH its shard set is one
//      immutable, epoch-versioned ShardTopology published behind an atomic
//      cell. A live repartition (see ServeLoop) builds a new topology from
//      current data/workload quantiles in the background and swaps it in;
//      queries that pinned the old epoch finish on the old generation's
//      shards (the topology shared_ptr keeps them alive), so readers never
//      block and never see a half-migrated router.
//
// Each shard is an independent VersionedIndex: its own left-right instance
// pair, its own snapshot cell, its own single-writer contract. Within one
// topology a point lives in exactly one shard (routing is a pure function
// of coordinates), so cross-shard queries union per-shard results with no
// deduplication:
//   * point lookups route to the single owning shard;
//   * range/projection queries run the clipped sub-rectangle on every
//     overlapping shard and sum the per-shard QueryStats;
//   * kNN runs a bounded best-first expansion: shards are visited in
//     increasing distance from the query point to their cell, each
//     contributing its local k nearest into a merged bounded max-heap, and
//     the sweep stops as soon as the next cell is farther than the current
//     k-th neighbour.
//
// Consistency model: per-shard snapshot consistency within a pinned
// topology. A cross-shard query acquires one topology (one atomic load),
// then each touched shard's live snapshot independently, so two shards may
// be observed at different versions (there is no global consistent cut —
// the same guarantee regime as a distributed store with per-partition
// linearizability). Clients must use globally unique ids across live
// points; per-shard id bookkeeping (and cross-generation migration replay)
// relies on it. The stress tests verify every sub-query against the exact
// membership of the per-shard snapshot it ran on, including across forced
// repartitions.

#ifndef WAZI_SERVE_SHARDED_INDEX_H_
#define WAZI_SERVE_SHARDED_INDEX_H_

#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "serve/index_snapshot.h"

namespace wazi::serve {

// One shard's share of a decomposed range query: the query rectangle
// clipped to the shard's cell (closed on both boundary sides; the slack on
// the shared edge is harmless because each point lives in exactly one
// shard).
struct ShardSubquery {
  int shard = 0;
  Rect rect;
};

// Maps points and query rectangles to shards. Immutable after Build; safe
// to share across any number of threads. Topology changes swap in a whole
// new router (inside a new ShardTopology) rather than mutating one.
class ShardRouter {
 public:
  // Single-shard router covering everything (the num_shards == 1 case).
  ShardRouter() = default;

  // Builds the equi-depth tiling described above from `points`.
  // `num_shards` is factored into rows x cols with rows <= cols as close
  // to square as divisors allow (primes become 1xN stripes). `domain` is
  // the dataset's domain rectangle; cells at the tiling's outer edge
  // extend beyond it to cover later out-of-domain inserts. When `workload`
  // is given, each cut slides within a small balance-slack window to the
  // position stabbed by the fewest workload queries (a straddled cut
  // doubles that query's traversals), keeping hot regions inside one
  // shard.
  void Build(const std::vector<Point>& points, int num_shards,
             const Rect& domain, const Workload* workload = nullptr);

  int num_shards() const { return rows_ * cols_; }
  int rows() const { return rows_; }
  int cols() const { return cols_; }

  // The owning shard of `p` (a pure function of p.x/p.y, so inserts and
  // removes of the same coordinates always route identically).
  int ShardOf(const Point& p) const;

  // The cell's closed cover rectangle. Outer cells extend to +-infinity so
  // that every representable point routes into some cell; Decompose and
  // MinDistanceSquared handle the infinite extents, but do NOT feed this
  // rect into code that assumes finite spans (use ClampedCellRect for
  // that).
  Rect CellRect(int shard) const;

  // CellRect clipped to the build-time domain (finite; used as the shard's
  // build dataset bounds and kNN expansion domain).
  Rect ClampedCellRect(int shard) const;

  // Appends the sub-rectangle of `query` for every overlapping shard, in
  // shard-id order. Clears `out` first. Every point of every shard that
  // lies inside `query` is inside exactly one emitted sub-rectangle.
  void Decompose(const Rect& query, std::vector<ShardSubquery>* out) const;

  // Squared distance from `p` to shard's cell (0 when inside); the
  // best-first kNN visit order.
  double MinDistanceSquared(const Point& p, int shard) const;

  // Builds this router as an INCREMENTAL modification of `base` (same
  // rows x cols grid): only the boundaries flagged in `y_cut_moves` /
  // `x_cut_moves` are re-placed — at equi-depth (workload-aware)
  // positions of `points`, which must be the points of the cells those
  // boundaries touch — every other boundary is copied verbatim. Rows
  // adjacent to a moving y-cut recut all their x-cuts from the merged
  // band. A moved boundary stays strictly between its nearest kept
  // neighbours, so the region covered by the changed cells is identical
  // before and after (the carrying invariant); cells none of whose
  // boundaries moved get bit-identical rects. Flag vectors sized
  // rows-1 and rows x (cols-1); empty point filters keep the old cuts.
  void BuildMovedCuts(const ShardRouter& base,
                      const std::vector<bool>& y_cut_moves,
                      const std::vector<std::vector<bool>>& x_cut_moves,
                      const std::vector<Point>& points, const Rect& domain,
                      const Workload* workload = nullptr);

 private:
  int RowOf(double y) const;
  int ColOf(int row, double x) const;

  int rows_ = 1;
  int cols_ = 1;
  Rect domain_ = Rect::Of(-std::numeric_limits<double>::infinity(),
                          -std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::infinity(),
                          std::numeric_limits<double>::infinity());
  std::vector<double> y_bounds_;               // rows-1 internal boundaries
  std::vector<std::vector<double>> x_bounds_;  // per row: cols-1 boundaries
};

struct ShardedIndexOptions {
  int num_shards = 1;
  // Applied to every shard; the per-shard observability attribution
  // (shard_id, epoch) is stamped by the topology builders, so callers set
  // only the shared fields (handles, stall deadline, track_points).
  VersionedIndexOptions versioned;
  // Optional metrics registry: when set, the facade publishes the current
  // topology's epoch and shard count as gauges (serve_topology_epoch,
  // serve_shards) on construction and every PublishTopology.
  obs::MetricsRegistry* registry = nullptr;
};

// One immutable generation of the shard map: the router plus the shard
// set it routes into, plus each shard's training workload slice. The
// topology object itself never changes after construction (`epoch`,
// `router` and the shard VECTOR are frozen); the VersionedIndex shards
// inside keep swapping their own per-shard snapshots as usual. Readers
// pin a topology with one atomic shared_ptr load; a repartition publishes
// a successor with epoch + 1 and lets the old generation drain.
//
// Shards are shared_ptr-owned because an INCREMENTAL migration CARRIES
// shards whose cell did not move: the successor topology references the
// same live VersionedIndex while the retiring topology (still pinned by
// in-flight readers) keeps its own reference. A carried shard's
// VersionedIndex is therefore never rebuilt, captured or dual-written —
// it just changes owners; a shard owned by exactly one topology dies
// with it (retire-by-last-reader, as before).
struct ShardTopology {
  uint64_t epoch = 1;
  // Facade-version offset so ShardedVersionedIndex::version() stays
  // monotone across repartitions (rebuilt shards restart at version 1;
  // carried shards keep counting, so the base only absorbs the retired
  // REBUILT shards' versions).
  uint64_t version_base = 0;
  ShardRouter router;
  Rect domain;
  std::vector<std::shared_ptr<VersionedIndex>> shards;
  std::vector<Workload> shard_workloads;

  int num_shards() const { return static_cast<int>(shards.size()); }
  // Sum of shard versions plus the cross-generation base.
  uint64_t version() const;
  // One shard's current published snapshot version: a single atomic load,
  // no snapshot acquisition. This is the cheap validity probe the result
  // cache stamps entries against (ResultCache::StampValid).
  uint64_t shard_version(int s) const {
    return shards[static_cast<size_t>(s)]->version();
  }
  // Sum of shard point-count mirrors (approximate while writers stream).
  size_t num_points() const;
};

// One shard's contribution to a cross-shard range query (returned so the
// serve layer can attribute drift observations to the shard that did the
// work). Shard ids are relative to the topology epoch the query ran on.
struct ShardQueryPart {
  int shard = 0;
  Rect rect;                     // the clipped sub-rectangle
  uint64_t snapshot_version = 0; // per-shard snapshot the sub-query ran on
  QueryStats stats;              // that sub-query's work counters
};

// One shard's projection (phase-split execution across shards). Holds the
// snapshot it was computed on so ScanParts is guaranteed to scan the same
// instance the spans refer to, and the topology so the shard outlives the
// projection even across a repartition.
struct ShardProjection {
  int shard = 0;
  Rect rect;
  Projection proj;
  std::shared_ptr<ShardTopology> topology;
  SnapshotRef snap;
};

// N VersionedIndex shards behind one query facade, with a swappable
// topology.
//
// Thread-safety contract: every query method may be called from any number
// of threads concurrently. Mutations go through shard(s)'s single-writer
// API — one writer thread PER SHARD of the CURRENT topology (that is the
// scaling point: per-shard writers make update throughput scale with
// cores). BuildNextTopology may run on any thread; PublishTopology must be
// serialized by the caller (ServeLoop's repartition coordinator).
class ShardedVersionedIndex {
 public:
  ShardedVersionedIndex(IndexFactory factory, const Dataset& data,
                        const Workload& workload,
                        const BuildOptions& build_opts,
                        ShardedIndexOptions opts = {});
  ~ShardedVersionedIndex();

  ShardedVersionedIndex(const ShardedVersionedIndex&) = delete;
  ShardedVersionedIndex& operator=(const ShardedVersionedIndex&) = delete;

  // --- topology (the second snapshot level) ---

  // Pins the current topology: the returned shared_ptr keeps its router
  // AND its shards alive across any concurrent repartition. One atomic
  // load; wait-free.
  std::shared_ptr<ShardTopology> AcquireTopology() const {
    return topology_.Load();
  }

  // Builds (but does not publish) the successor topology from `points` and
  // `workload` with this facade's factory/build options: routes the points
  // through a freshly cut router, builds every shard's VersionedIndex, and
  // stamps `epoch`. Expensive — run it in the background while the current
  // topology keeps serving. `domain` is the new generation's query domain.
  std::shared_ptr<ShardTopology> BuildNextTopology(
      const std::vector<Point>& points, const Workload& workload,
      int num_shards, const Rect& domain, uint64_t epoch,
      uint64_t version_base) const;

  // The incremental sibling of BuildNextTopology: builds (but does not
  // publish) a successor of `old_topo` with `new_router` (a BuildMovedCuts
  // product over the same grid), CARRYING every shard with
  // changed[s] == false (the successor references the same VersionedIndex)
  // and rebuilding only the changed shards from `moved_points` (the union
  // of the changed cells' captured point sets, routed through the new
  // router). version_base starts at 0 — the migration coordinator stamps
  // it after the old generation quiesces. Workload slices are recomputed
  // for every cell from `workload`.
  std::shared_ptr<ShardTopology> BuildIncrementalTopology(
      const ShardTopology& old_topo, const ShardRouter& new_router,
      const std::vector<bool>& changed,
      const std::vector<Point>& moved_points, const Workload& workload,
      const Rect& domain, uint64_t epoch) const;

  // Atomically swaps the published topology. Readers acquire the new one
  // from here on; in-flight queries finish on whichever they pinned. The
  // caller owns the cutover protocol (dual writes, replay, retiring the
  // old generation's writers) — see ServeLoop.
  void PublishTopology(std::shared_ptr<ShardTopology> topo);

  uint64_t epoch() const { return AcquireTopology()->epoch; }

  // --- current-topology conveniences ---
  //
  // Each accessor loads the topology cell INDEPENDENTLY; returned
  // references stay valid until the NEXT PublishTopology (the cell itself
  // holds a reference). Do NOT compose them across a possible concurrent
  // repartition — e.g. `for (s = 0; s < num_shards(); ++s) shard(s)` may
  // index a smaller successor topology if a migration publishes between
  // the calls. Any multi-call inspection while the repartition monitor is
  // enabled (or TriggerRepartition may run) must pin one generation with
  // AcquireTopology and use the topology object directly.

  int num_shards() const { return AcquireTopology()->num_shards(); }
  const ShardRouter& router() const { return AcquireTopology()->router; }
  const Rect& domain() const { return AcquireTopology()->domain; }

  // The per-shard VersionedIndex. Queries through it see only that shard's
  // points; its mutation API is subject to the one-writer-per-shard rule.
  VersionedIndex& shard(int s) {
    return *AcquireTopology()->shards[static_cast<size_t>(s)];
  }
  const VersionedIndex& shard(int s) const {
    return *AcquireTopology()->shards[static_cast<size_t>(s)];
  }

  int ShardOf(const Point& p) const {
    return AcquireTopology()->router.ShardOf(p);
  }

  // The workload slice (queries clipped to the shard's cell) the shard was
  // built against; the serve layer's per-shard rebuild fallback.
  const Workload& shard_workload(int s) const {
    return AcquireTopology()->shard_workloads[static_cast<size_t>(s)];
  }

  // Facade version: the current topology's version_base plus the sum of
  // its shard versions. Monotone under any interleaving of per-shard
  // writers AND across repartitions (each publish stamps a base at least
  // the retiring generation's final version). Introspection only — there
  // is no global snapshot this number identifies.
  uint64_t version() const { return AcquireTopology()->version(); }

  // Sum of shard point counts (atomic mirrors): exact once writers are
  // quiesced, approximate while they stream.
  size_t num_points() const { return AcquireTopology()->num_points(); }

  // A pinned topology plus one pre-acquired snapshot per shard of THAT
  // topology (index == shard id within it). Lets a batch executor pay the
  // topology load and the per-shard atomic acquires once per block instead
  // of once per query, and pins the epoch: every query run against the set
  // executes on this topology even if a repartition swaps the published
  // one mid-batch. Members are declared topology-first so the snapshots
  // release before the topology on destruction. SnapshotRefs carry the
  // acquiring thread's epoch stamp, so a set is thread-bound: acquire,
  // query, and destroy it on one thread (workers may read through a
  // dispatcher-held set while the dispatcher blocks on their completion).
  struct SnapshotSet {
    std::shared_ptr<ShardTopology> topology;
    std::vector<SnapshotRef> snaps;

    // Version of the pinned (pre-acquired) snapshot of shard `s` — the
    // instance queries against this set actually run on. No atomics: the
    // set already owns the snapshot.
    uint64_t shard_version(int s) const {
      return snaps[static_cast<size_t>(s)]->version();
    }
  };

  // Fills `out` with the current topology and every shard's live snapshot
  // (cleared first). Each entry stays valid (and its shard unchanged) for
  // as long as the caller holds it, but holding it also stalls that
  // shard's writer like any other parked snapshot — hold per batch block,
  // not indefinitely.
  void AcquireAll(SnapshotSet* out) const;

  // --- cross-shard queries (any thread) ---
  //
  // All methods pin ONE topology for their whole execution (the given
  // set's, else a fresh acquire) and sum per-shard work counters into
  // `*stats` (never only the last shard's); `stats` may be null to discard
  // them. `version_mass`, when non-null, receives the sum of the versions
  // of every per-shard snapshot the query ran on (with one shard this is
  // exactly the snapshot version; comparable only between queries pinned
  // to the same epoch and shard set). `epoch_out`, when non-null, receives
  // the pinned topology's epoch. `snaps`, when non-null, must come from
  // AcquireAll on this index; the query then runs on those snapshots
  // without touching the publication cells.

  // Appends all points inside `query` to `out`, decomposed into per-shard
  // sub-rectangles. `parts`, when non-null, is cleared and filled with one
  // entry per touched shard (sub-rectangle, snapshot version, counters).
  void RangeQuery(const Rect& query, std::vector<Point>* out,
                  QueryStats* stats = nullptr,
                  std::vector<ShardQueryPart>* parts = nullptr,
                  uint64_t* version_mass = nullptr,
                  const SnapshotSet* snaps = nullptr,
                  uint64_t* epoch_out = nullptr) const;

  // True iff a point with identical coordinates is stored; runs on the
  // single owning shard. `home_shard`, when non-null, receives it
  // (relative to the pinned epoch).
  bool PointQuery(const Point& p, QueryStats* stats = nullptr,
                  uint64_t* version_mass = nullptr,
                  int* home_shard = nullptr,
                  const SnapshotSet* snaps = nullptr,
                  uint64_t* epoch_out = nullptr) const;

  // The k nearest neighbours of `center` by Euclidean distance, sorted by
  // increasing distance, merged across shards via bounded best-first
  // expansion (see file header). Like the PR-1 engine, neighbours are
  // searched within the pinned topology's domain: a point inserted OUTSIDE
  // it is served by range/point queries but may be missed here when fewer
  // than k points exist near the center (the per-shard expansion certifies
  // completion against the clamped cell). A repartition recomputes the
  // domain from the migrated points, so such strays are folded in at the
  // next topology swap.
  std::vector<Point> Knn(const Point& center, int k,
                         QueryStats* stats = nullptr,
                         uint64_t* version_mass = nullptr,
                         const SnapshotSet* snaps = nullptr,
                         uint64_t* epoch_out = nullptr) const;

  // Phase-split execution across shards: per-shard projections over the
  // clipped sub-rectangles (Project), then a filter of those spans against
  // the same per-shard snapshots (ScanParts). Parts pin their topology, so
  // ScanParts is safe even across a repartition between the phases.
  void Project(const Rect& query, std::vector<ShardProjection>* parts,
               QueryStats* stats = nullptr) const;
  void ScanParts(const std::vector<ShardProjection>& parts,
                 std::vector<Point>* out, QueryStats* stats = nullptr) const;

 private:
  // The topology to run a query on: the caller's pinned set when given,
  // else a fresh acquire whose ownership lands in `*owned`.
  const ShardTopology* TopoFor(const SnapshotSet* snaps,
                               std::shared_ptr<ShardTopology>* owned) const;
  // The snapshot to query shard `s` (of `topo`) on: the caller's
  // pre-acquired set when given, else a fresh Acquire() whose ownership
  // lands in `*owned`.
  static const IndexSnapshot* SnapFor(
      const ShardTopology& topo, int s, const SnapshotSet* snaps,
      SnapshotRef* owned);

  // Shared by the constructor and BuildNextTopology.
  static std::shared_ptr<ShardTopology> MakeTopology(
      const IndexFactory& factory, const BuildOptions& build_opts,
      const VersionedIndexOptions& vopts, const std::string& data_name,
      const std::vector<Point>& points, const Workload& workload,
      int num_shards, const Rect& domain, uint64_t epoch,
      uint64_t version_base);

  IndexFactory factory_;
  BuildOptions build_opts_;
  ShardedIndexOptions opts_;
  std::string data_name_;
  // Registry handles (null without opts_.registry).
  obs::Gauge* epoch_gauge_ = nullptr;
  obs::Gauge* shards_gauge_ = nullptr;
  AtomicCell<ShardTopology> topology_;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_SHARDED_INDEX_H_

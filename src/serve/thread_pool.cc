#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wazi::serve {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stop_ = true;
  }
  task_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    MutexLock lock(&mu_);
    tasks_.push_back(std::move(task));
    ++unfinished_;
  }
  task_cv_.NotifyOne();
}

void ThreadPool::Wait() {
  MutexLock lock(&mu_);
  while (unfinished_ != 0) idle_cv_.Wait(mu_);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mu_);
      while (!stop_ && tasks_.empty()) task_cv_.Wait(mu_);
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      MutexLock lock(&mu_);
      if (--unfinished_ == 0) idle_cv_.NotifyAll();
    }
  }
}

}  // namespace wazi::serve

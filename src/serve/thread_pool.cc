#include "serve/thread_pool.h"

#include <algorithm>
#include <utility>

namespace wazi::serve {

ThreadPool::ThreadPool(int num_threads) {
  const int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  task_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_.push_back(std::move(task));
    ++unfinished_;
  }
  task_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_cv_.wait(lock, [this] { return unfinished_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stop_ set and queue drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--unfinished_ == 0) idle_cv_.notify_all();
    }
  }
}

}  // namespace wazi::serve

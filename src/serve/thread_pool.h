// Fixed-size worker pool used by the query engine. Deliberately minimal:
// a mutex-protected FIFO plus a drain barrier (`Wait`), which is all batch
// query execution needs. Tasks must not throw.

#ifndef WAZI_SERVE_THREAD_POOL_H_
#define WAZI_SERVE_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace wazi::serve {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  // Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task);

  // Blocks until every task submitted so far has finished running.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> tasks_;
  std::mutex mu_;
  std::condition_variable task_cv_;  // workers: new task or shutdown
  std::condition_variable idle_cv_;  // Wait(): all tasks finished
  int64_t unfinished_ = 0;           // queued + running tasks
  bool stop_ = false;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_THREAD_POOL_H_

// Fixed-size worker pool used by the query engine. Deliberately minimal:
// a mutex-protected FIFO plus a drain barrier (`Wait`), which is all batch
// query execution needs. Tasks must not throw.

#ifndef WAZI_SERVE_THREAD_POOL_H_
#define WAZI_SERVE_THREAD_POOL_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"

namespace wazi::serve {

class ThreadPool {
 public:
  // Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  // Finishes every queued task, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  void Submit(std::function<void()> task) EXCLUDES(mu_);

  // Blocks until every task submitted so far has finished running.
  void Wait() EXCLUDES(mu_);

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void WorkerLoop() EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  Mutex mu_;
  std::deque<std::function<void()>> tasks_ GUARDED_BY(mu_);
  CondVar task_cv_;  // workers: new task or shutdown
  CondVar idle_cv_;  // Wait(): all tasks finished
  int64_t unfinished_ GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ GUARDED_BY(mu_) = false;
};

}  // namespace wazi::serve

#endif  // WAZI_SERVE_THREAD_POOL_H_

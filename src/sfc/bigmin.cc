#include "sfc/bigmin.h"

#include "sfc/zcurve.h"

namespace wazi {
namespace {

// Mask selecting the bits of the same dimension as `pos` that are strictly
// below `pos` (x lives at even bit positions, y at odd ones).
inline uint64_t SameDimLowerMask(int pos) {
  const uint64_t dim_mask =
      (pos & 1) ? 0xaaaaaaaaaaaaaaaaULL : 0x5555555555555555ULL;
  return dim_mask & ((1ULL << pos) - 1);
}

// "Load 1000...": within pos's dimension, set bit pos and clear the lower
// bits of that dimension; other dimension unchanged.
inline uint64_t Load1000(uint64_t v, int pos) {
  return (v & ~SameDimLowerMask(pos)) | (1ULL << pos);
}

// "Load 0111...": within pos's dimension, clear bit pos and set the lower
// bits of that dimension; other dimension unchanged.
inline uint64_t Load0111(uint64_t v, int pos) {
  return (v & ~(1ULL << pos)) | SameDimLowerMask(pos);
}

}  // namespace

bool ZCellInBox(uint64_t z, uint64_t zmin, uint64_t zmax) {
  const uint32_t x = ZDecodeX(z), y = ZDecodeY(z);
  return x >= ZDecodeX(zmin) && x <= ZDecodeX(zmax) && y >= ZDecodeY(zmin) &&
         y <= ZDecodeY(zmax);
}

uint64_t BigMin(uint64_t z, uint64_t zmin, uint64_t zmax) {
  uint64_t bigmin = zmax + 1;  // "no match" sentinel (callers use <= zmax)
  uint64_t minv = zmin;
  uint64_t maxv = zmax;
  for (int pos = 63; pos >= 0; --pos) {
    const int zb = static_cast<int>((z >> pos) & 1);
    const int mnb = static_cast<int>((minv >> pos) & 1);
    const int mxb = static_cast<int>((maxv >> pos) & 1);
    switch ((zb << 2) | (mnb << 1) | mxb) {
      case 0b000:
        break;
      case 0b001:
        bigmin = Load1000(minv, pos);
        maxv = Load0111(maxv, pos);
        break;
      case 0b011:
        return minv;
      case 0b100:
        return bigmin;
      case 0b101:
        minv = Load1000(minv, pos);
        break;
      case 0b111:
        break;
      default:
        // 0b010 / 0b110 would mean min > max: unreachable for valid boxes.
        return bigmin;
    }
  }
  return bigmin;
}

}  // namespace wazi

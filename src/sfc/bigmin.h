// BIGMIN next-match computation for the Z-order curve (Tropf & Herzog,
// 1981): given a query box [zmin, zmax] (Morton codes of its bottom-left
// and top-right grid corners) and a code `z` that lies inside the 1-D
// interval but outside the 2-D box, BIGMIN returns the smallest Morton
// code > z whose grid cell is inside the box. Range scans over Z-ordered
// data use it to jump over runs of irrelevant cells (the paper cites this
// mechanism for the Zpgm baseline, §2).

#ifndef WAZI_SFC_BIGMIN_H_
#define WAZI_SFC_BIGMIN_H_

#include <cstdint>

namespace wazi {

// True iff the grid cell of `z` lies inside the box spanned by zmin/zmax
// (component-wise comparison of decoded coordinates).
bool ZCellInBox(uint64_t z, uint64_t zmin, uint64_t zmax);

// Smallest Morton code strictly greater than `z` whose cell is inside the
// box [zmin, zmax]. Precondition: z < zmax. If no such code exists (z is
// at/after the last in-box code), returns zmax + 1... callers must treat
// any return value r with r > zmax as "no match".
uint64_t BigMin(uint64_t z, uint64_t zmin, uint64_t zmax);

}  // namespace wazi

#endif  // WAZI_SFC_BIGMIN_H_

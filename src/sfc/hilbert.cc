#include "sfc/hilbert.h"

namespace wazi {
namespace {

// Rotate/flip the quadrant-local coordinates, standard Hilbert step.
inline void Rotate(uint32_t s, uint32_t* x, uint32_t* y, uint32_t rx,
                   uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = s - 1 - *x;
      *y = s - 1 - *y;
    }
    const uint32_t t = *x;
    *x = *y;
    *y = t;
  }
}

}  // namespace

uint64_t HilbertEncode(int order, uint32_t x, uint32_t y) {
  uint64_t d = 0;
  for (uint32_t s = 1u << (order - 1); s > 0; s >>= 1) {
    const uint32_t rx = (x & s) ? 1 : 0;
    const uint32_t ry = (y & s) ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertDecode(int order, uint64_t d, uint32_t* x, uint32_t* y) {
  uint32_t px = 0, py = 0;
  uint64_t t = d;
  for (uint32_t s = 1; s < (1u << order); s <<= 1) {
    const uint32_t rx = static_cast<uint32_t>((t / 2) & 1);
    const uint32_t ry = static_cast<uint32_t>((t ^ rx) & 1);
    Rotate(s, &px, &py, rx, ry);
    px += s * rx;
    py += s * ry;
    t /= 4;
  }
  *x = px;
  *y = py;
}

}  // namespace wazi

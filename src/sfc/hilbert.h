// Hilbert curve index <-> grid coordinate conversion for 2^order x 2^order
// grids (iterative rotate-and-flip construction). Used by the HRR baseline
// (Hilbert-packed R-tree).

#ifndef WAZI_SFC_HILBERT_H_
#define WAZI_SFC_HILBERT_H_

#include <cstdint>

namespace wazi {

// Distance along the Hilbert curve of order `order` (grid side 2^order,
// order <= 31) for cell (x, y). x, y must be < 2^order.
uint64_t HilbertEncode(int order, uint32_t x, uint32_t y);

// Inverse of HilbertEncode.
void HilbertDecode(int order, uint64_t d, uint32_t* x, uint32_t* y);

}  // namespace wazi

#endif  // WAZI_SFC_HILBERT_H_

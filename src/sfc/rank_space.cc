#include "sfc/rank_space.h"

#include <algorithm>

namespace wazi {
namespace {

std::vector<double> EquiDepthBounds(std::vector<double> values,
                                    uint32_t cells) {
  std::sort(values.begin(), values.end());
  std::vector<double> bounds;
  bounds.reserve(cells - 1);
  for (uint32_t i = 1; i < cells; ++i) {
    const size_t pos = static_cast<size_t>(
        static_cast<double>(i) / cells * static_cast<double>(values.size()));
    bounds.push_back(values[std::min(pos, values.size() - 1)]);
  }
  return bounds;
}

}  // namespace

void RankSpace::Build(const std::vector<Point>& points, int bits) {
  bits_ = bits;
  const uint32_t cells = 1u << bits;
  std::vector<double> xs, ys;
  xs.reserve(points.size());
  ys.reserve(points.size());
  for (const Point& p : points) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  if (points.empty()) {
    x_bounds_.clear();
    y_bounds_.clear();
    return;
  }
  x_bounds_ = EquiDepthBounds(std::move(xs), cells);
  y_bounds_ = EquiDepthBounds(std::move(ys), cells);
}

uint32_t RankSpace::Rank(const std::vector<double>& bounds, double v) {
  return static_cast<uint32_t>(
      std::upper_bound(bounds.begin(), bounds.end(), v) - bounds.begin());
}

}  // namespace wazi

// Rank-space projection: maps double coordinates to integer grid ranks via
// per-dimension equi-depth quantile boundaries. The rank-space SFC
// baselines (Zpgm, HRR, QUILTS, RSMI) project data and query corners
// through the same monotone map, which guarantees no false negatives when
// filtering by the original coordinates afterwards.

#ifndef WAZI_SFC_RANK_SPACE_H_
#define WAZI_SFC_RANK_SPACE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace wazi {

class RankSpace {
 public:
  RankSpace() = default;

  // Builds `1 << bits` equi-depth cells per dimension from `points`
  // (bits <= 16).
  void Build(const std::vector<Point>& points, int bits);

  uint32_t XRank(double x) const { return Rank(x_bounds_, x); }
  uint32_t YRank(double y) const { return Rank(y_bounds_, y); }

  int bits() const { return bits_; }
  uint32_t grid_size() const { return 1u << bits_; }

  size_t SizeBytes() const {
    return sizeof(*this) +
           (x_bounds_.capacity() + y_bounds_.capacity()) * sizeof(double);
  }

 private:
  // Number of internal boundaries is grid_size - 1; Rank returns the count
  // of boundaries <= v, i.e. a value in [0, grid_size - 1], monotone in v.
  static uint32_t Rank(const std::vector<double>& bounds, double v);

  int bits_ = 0;
  std::vector<double> x_bounds_;
  std::vector<double> y_bounds_;
};

}  // namespace wazi

#endif  // WAZI_SFC_RANK_SPACE_H_

#include "sfc/zcurve.h"

namespace wazi {

uint64_t InterleaveBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000ffff0000ffffULL;
  x = (x | (x << 8)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x << 4)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

uint32_t CompactBits(uint64_t v) {
  uint64_t x = v & 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0f0f0f0f0f0f0f0fULL;
  x = (x | (x >> 4)) & 0x00ff00ff00ff00ffULL;
  x = (x | (x >> 8)) & 0x0000ffff0000ffffULL;
  x = (x | (x >> 16)) & 0x00000000ffffffffULL;
  return static_cast<uint32_t>(x);
}

}  // namespace wazi

// Z-order (Morton) curve encoding for 2-D integer grids.
//
// Bit convention: bit i of x lands at output bit 2i, bit i of y at output
// bit 2i+1 (y is the more significant dimension within each bit pair).
// Encoding is monotone per dimension, so dominance in the grid implies
// ordering only per the usual Z-curve partial guarantees; BIGMIN (bigmin.h)
// relies on this exact layout.

#ifndef WAZI_SFC_ZCURVE_H_
#define WAZI_SFC_ZCURVE_H_

#include <cstdint>

namespace wazi {

// Spreads the low 32 bits of v to the even bit positions of the result.
uint64_t InterleaveBits(uint32_t v);

// Inverse of InterleaveBits: gathers even bit positions into the low bits.
uint32_t CompactBits(uint64_t v);

// 64-bit Morton code of (x, y).
inline uint64_t ZEncode(uint32_t x, uint32_t y) {
  return InterleaveBits(x) | (InterleaveBits(y) << 1);
}

inline uint32_t ZDecodeX(uint64_t z) { return CompactBits(z); }
inline uint32_t ZDecodeY(uint64_t z) { return CompactBits(z >> 1); }

}  // namespace wazi

#endif  // WAZI_SFC_ZCURVE_H_

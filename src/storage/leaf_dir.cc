#include "storage/leaf_dir.h"

namespace wazi {

void LeafDir::Clear() {
  leaves_.clear();
  head_ = tail_ = kInvalidLeaf;
}

int32_t LeafDir::Append(const Rect& cell, const Rect& mbr, int32_t page) {
  const int32_t id = static_cast<int32_t>(leaves_.size());
  LeafRec rec;
  rec.cell = cell;
  rec.mbr = mbr;
  rec.page = page;
  rec.prev = tail_;
  rec.next = kInvalidLeaf;
  rec.ord = (tail_ == kInvalidLeaf) ? kOrdGap : leaves_[tail_].ord + kOrdGap;
  leaves_.push_back(rec);
  if (tail_ != kInvalidLeaf) {
    leaves_[tail_].next = id;
  } else {
    head_ = id;
  }
  tail_ = id;
  return id;
}

int32_t LeafDir::InsertAfter(int32_t pos, const Rect& cell, const Rect& mbr,
                             int32_t page) {
  const int32_t id = static_cast<int32_t>(leaves_.size());
  LeafRec rec;
  rec.cell = cell;
  rec.mbr = mbr;
  rec.page = page;
  const int32_t nxt = leaves_[pos].next;
  rec.prev = pos;
  rec.next = nxt;
  const int64_t lo = leaves_[pos].ord;
  const int64_t hi =
      (nxt == kInvalidLeaf) ? lo + 2 * kOrdGap : leaves_[nxt].ord;
  rec.ord = lo + (hi - lo) / 2;
  leaves_.push_back(rec);
  leaves_[pos].next = id;
  if (nxt != kInvalidLeaf) {
    leaves_[nxt].prev = id;
  } else {
    tail_ = id;
  }
  return id;
}

bool LeafDir::HasOrdGapAfter(int32_t pos, int64_t needed) const {
  const int32_t nxt = leaves_[pos].next;
  if (nxt == kInvalidLeaf) return true;
  return leaves_[nxt].ord - leaves_[pos].ord > needed;
}

void LeafDir::Renumber() {
  int64_t ord = kOrdGap;
  for (int32_t id = head_; id != kInvalidLeaf; id = leaves_[id].next) {
    leaves_[id].ord = ord;
    ord += kOrdGap;
  }
}

void LeafDir::Restore(std::vector<LeafRec> leaves, int32_t head,
                      int32_t tail) {
  leaves_ = std::move(leaves);
  head_ = head;
  tail_ = tail;
}

std::vector<int32_t> LeafDir::InOrder() const {
  std::vector<int32_t> out;
  out.reserve(leaves_.size());
  for (int32_t id = head_; id != kInvalidLeaf; id = leaves_[id].next) {
    out.push_back(id);
  }
  return out;
}

}  // namespace wazi

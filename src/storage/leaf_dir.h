// Leaf directory for Z-index-style structures: the ordered list of leaf
// nodes (the paper's LeafList), their cell rectangles, tight MBRs, page
// ids, gapped ordinal keys, doubly-linked order, and the four look-ahead
// pointer slots of §5.
//
// Two rectangles per leaf, on purpose:
//  * `cell`  — the space-partition cell the leaf owns. Stable under
//    inserts (tree traversal routes every new point into its cell), so the
//    look-ahead skipping invariants built on cells survive updates.
//  * `mbr`   — tight bounding box of the points actually stored. Used for
//    the overlap check right before scanning a page; may grow on insert
//    (growth is safe there because it only makes scans more likely).

#ifndef WAZI_STORAGE_LEAF_DIR_H_
#define WAZI_STORAGE_LEAF_DIR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace wazi {

// Look-ahead pointer criteria (paper §5.1): the reason a leaf is
// irrelevant to a query, and the pointer to the next leaf that could be
// relevant under that criterion.
enum Criterion : int {
  kBelow = 0,  // leaf entirely below the query
  kAbove = 1,  // leaf entirely above the query
  kLeft = 2,   // leaf entirely left of the query
  kRight = 3,  // leaf entirely right of the query
};
inline constexpr int kNumCriteria = 4;

inline constexpr int32_t kInvalidLeaf = -1;

struct LeafRec {
  Rect cell;
  Rect mbr;
  int32_t page = -1;
  int64_t ord = 0;
  int32_t next = kInvalidLeaf;
  int32_t prev = kInvalidLeaf;
  int32_t lookahead[kNumCriteria] = {kInvalidLeaf, kInvalidLeaf, kInvalidLeaf,
                                     kInvalidLeaf};
};

class LeafDir {
 public:
  // Ord keys are spaced by this gap at bulk load / renumber so leaf splits
  // can slot new leaves between neighbours without renumbering.
  static constexpr int64_t kOrdGap = int64_t{1} << 20;

  LeafDir() = default;

  void Clear();

  // Appends a leaf at the end of the list (bulk load path). Assigns ord.
  int32_t Append(const Rect& cell, const Rect& mbr, int32_t page);

  // Inserts a new leaf immediately after `pos` in the list. The caller
  // must have ensured an ord gap exists (see HasOrdGapAfter / Renumber).
  int32_t InsertAfter(int32_t pos, const Rect& cell, const Rect& mbr,
                      int32_t page);

  // True if at least `needed` distinct ord values fit strictly between
  // `pos` and its successor.
  bool HasOrdGapAfter(int32_t pos, int64_t needed) const;

  // Reassigns ord keys with the standard gap, preserving list order.
  void Renumber();

  int32_t head() const { return head_; }
  int32_t tail() const { return tail_; }
  size_t size() const { return leaves_.size(); }

  LeafRec& leaf(int32_t id) { return leaves_[id]; }
  const LeafRec& leaf(int32_t id) const { return leaves_[id]; }

  // Leaf ids in list order (head to tail).
  std::vector<int32_t> InOrder() const;

  // Restores a directory verbatim (deserialization): `leaves` indexed by
  // leaf id with next/prev/ord/lookahead already consistent.
  void Restore(std::vector<LeafRec> leaves, int32_t head, int32_t tail);

  // Raw access for serialization.
  const std::vector<LeafRec>& raw_leaves() const { return leaves_; }

  size_t SizeBytes() const {
    return sizeof(*this) + leaves_.capacity() * sizeof(LeafRec);
  }

 private:
  std::vector<LeafRec> leaves_;
  int32_t head_ = kInvalidLeaf;
  int32_t tail_ = kInvalidLeaf;
};

}  // namespace wazi

#endif  // WAZI_STORAGE_LEAF_DIR_H_

#include "storage/page_store.h"

#include <utility>

namespace wazi {

void PageStore::BulkLoad(std::vector<Point> points,
                         const std::vector<uint32_t>& page_offsets) {
  base_ = std::move(points);
  owned_.clear();
  pages_.clear();
  num_points_ = base_.size();
  if (page_offsets.empty()) return;
  pages_.reserve(page_offsets.size() - 1);
  for (size_t i = 0; i + 1 < page_offsets.size(); ++i) {
    PageRec rec;
    rec.begin = page_offsets[i];
    rec.len = page_offsets[i + 1] - page_offsets[i];
    pages_.push_back(rec);
  }
}

void PageStore::Clear() {
  base_.clear();
  pages_.clear();
  owned_.clear();
  num_points_ = 0;
}

Span PageStore::PageSpan(int32_t page_id) const {
  const PageRec& rec = pages_[page_id];
  if (rec.owned >= 0) {
    const std::vector<Point>& v = owned_[rec.owned];
    return Span{v.data(), v.data() + v.size()};
  }
  return Span{base_.data() + rec.begin, base_.data() + rec.begin + rec.len};
}

size_t PageStore::PageSize(int32_t page_id) const {
  const PageRec& rec = pages_[page_id];
  return rec.owned >= 0 ? owned_[rec.owned].size() : rec.len;
}

std::vector<Point>& PageStore::MakeOwned(int32_t page_id) {
  PageRec& rec = pages_[page_id];
  if (rec.owned < 0) {
    std::vector<Point> copy(base_.begin() + rec.begin,
                            base_.begin() + rec.begin + rec.len);
    rec.owned = static_cast<int32_t>(owned_.size());
    owned_.push_back(std::move(copy));
  }
  return owned_[rec.owned];
}

void PageStore::Append(int32_t page_id, const Point& p) {
  MakeOwned(page_id).push_back(p);
  ++num_points_;
}

bool PageStore::Remove(int32_t page_id, double x, double y) {
  std::vector<Point>& pts = MakeOwned(page_id);
  for (size_t i = 0; i < pts.size(); ++i) {
    if (pts[i].x == x && pts[i].y == y) {
      pts[i] = pts.back();
      pts.pop_back();
      --num_points_;
      return true;
    }
  }
  return false;
}

int32_t PageStore::AllocatePage(std::vector<Point> pts) {
  num_points_ += pts.size();
  PageRec rec;
  rec.owned = static_cast<int32_t>(owned_.size());
  owned_.push_back(std::move(pts));
  pages_.push_back(rec);
  return static_cast<int32_t>(pages_.size() - 1);
}

void PageStore::ReplacePage(int32_t page_id, std::vector<Point> pts) {
  num_points_ -= PageSize(page_id);
  num_points_ += pts.size();
  PageRec& rec = pages_[page_id];
  if (rec.owned < 0) {
    rec.owned = static_cast<int32_t>(owned_.size());
    owned_.push_back(std::move(pts));
    rec.len = 0;
  } else {
    owned_[rec.owned] = std::move(pts);
  }
}

size_t PageStore::SizeBytes() const {
  size_t bytes = sizeof(*this);
  bytes += base_.capacity() * sizeof(Point);
  bytes += pages_.capacity() * sizeof(PageRec);
  for (const auto& v : owned_) bytes += v.capacity() * sizeof(Point);
  return bytes;
}

}  // namespace wazi

// Clustered page storage for leaf data.
//
// Bulk-loaded indexes keep all points in one contiguous array ordered by
// the index's leaf order (the paper's "clustered" assumption: consecutive
// leaves live in consecutive pages), with each page a span of that array.
// Updates copy a page out of the base array into owned storage on first
// write, so bulk scan locality is preserved for read-mostly workloads
// while inserts/deletes stay cheap and local.

#ifndef WAZI_STORAGE_PAGE_STORE_H_
#define WAZI_STORAGE_PAGE_STORE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/geometry.h"

namespace wazi {

// A borrowed, read-only run of points.
struct Span {
  const Point* begin = nullptr;
  const Point* end = nullptr;

  size_t size() const { return static_cast<size_t>(end - begin); }
  bool empty() const { return begin == end; }
};

class PageStore {
 public:
  PageStore() = default;

  // Adopts `points` (already in final clustered order). `page_offsets`
  // holds each page's start index plus a final end-of-data sentinel, so
  // page i spans [page_offsets[i], page_offsets[i+1]).
  void BulkLoad(std::vector<Point> points,
                const std::vector<uint32_t>& page_offsets);

  // Creates an empty store (pages added via AllocatePage).
  void Clear();

  int32_t num_pages() const { return static_cast<int32_t>(pages_.size()); }
  size_t num_points() const { return num_points_; }

  Span PageSpan(int32_t page_id) const;
  size_t PageSize(int32_t page_id) const;

  // Appends a point to a page (copy-on-write from the base array).
  void Append(int32_t page_id, const Point& p);

  // Removes one point with matching coordinates; false if absent.
  bool Remove(int32_t page_id, double x, double y);

  // New page owning `pts`; returns its id.
  int32_t AllocatePage(std::vector<Point> pts);

  // Replaces a page's contents (used by leaf splits).
  void ReplacePage(int32_t page_id, std::vector<Point> pts);

  size_t SizeBytes() const;

 private:
  struct PageRec {
    uint32_t begin = 0;   // into base_, when owned < 0
    uint32_t len = 0;
    int32_t owned = -1;   // into owned_, or -1 when backed by base_
  };

  std::vector<Point>& MakeOwned(int32_t page_id);

  std::vector<Point> base_;
  std::vector<PageRec> pages_;
  std::vector<std::vector<Point>> owned_;
  size_t num_points_ = 0;
};

}  // namespace wazi

#endif  // WAZI_STORAGE_PAGE_STORE_H_

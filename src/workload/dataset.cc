#include "workload/dataset.h"

namespace wazi {

Rect ComputeBounds(const std::vector<Point>& points) {
  Rect r;
  for (const Point& p : points) r.Expand(p);
  return r;
}

void AssignIds(std::vector<Point>* points) {
  for (size_t i = 0; i < points->size(); ++i) {
    (*points)[i].id = static_cast<int64_t>(i);
  }
}

std::vector<Point> ScanRange(const Dataset& data, const Rect& query) {
  std::vector<Point> out;
  for (const Point& p : data.points) {
    if (query.Contains(p)) out.push_back(p);
  }
  return out;
}

int64_t CountRange(const Dataset& data, const Rect& query) {
  int64_t n = 0;
  for (const Point& p : data.points) {
    if (query.Contains(p)) ++n;
  }
  return n;
}

}  // namespace wazi

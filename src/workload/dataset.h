// Dataset and workload containers shared by builders, tests and benches.

#ifndef WAZI_WORKLOAD_DATASET_H_
#define WAZI_WORKLOAD_DATASET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/geometry.h"

namespace wazi {

// An in-memory point collection plus its bounding domain. `bounds` is the
// *domain* rectangle (data space), which may be slightly larger than the
// tight MBR of the points; query selectivity is defined as a fraction of
// this domain's area, matching the paper.
struct Dataset {
  std::string name;
  std::vector<Point> points;
  Rect bounds;

  size_t size() const { return points.size(); }
};

// A range-query workload: rectangles plus the nominal selectivity (fraction
// of data-space area, e.g. 0.0256% -> 0.000256) they were grown to.
struct Workload {
  std::string name;
  std::vector<Rect> queries;
  double selectivity = 0.0;

  size_t size() const { return queries.size(); }
};

// Computes the tight MBR of `points` (empty Rect if none).
Rect ComputeBounds(const std::vector<Point>& points);

// Reassigns ids 0..n-1 (the generators call this so ids are stable).
void AssignIds(std::vector<Point>* points);

// Reference result: all points of `data` inside `query`, by linear scan.
std::vector<Point> ScanRange(const Dataset& data, const Rect& query);

// Reference count of points of `data` inside `query`.
int64_t CountRange(const Dataset& data, const Rect& query);

}  // namespace wazi

#endif  // WAZI_WORKLOAD_DATASET_H_

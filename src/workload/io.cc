#include "workload/io.h"

#include <cstdlib>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

namespace wazi {
namespace {

void SetError(std::string* error, size_t line_no, const std::string& line,
              const char* what) {
  if (error != nullptr) {
    std::ostringstream os;
    os << "line " << line_no << ": " << what << " ('" << line << "')";
    *error = os.str();
  }
}

// Splits on commas, trimming spaces; empty fields are preserved.
std::vector<std::string> SplitCsv(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  for (const char c : line) {
    if (c == ',') {
      fields.push_back(field);
      field.clear();
    } else if (c != ' ' && c != '\t' && c != '\r') {
      field.push_back(c);
    }
  }
  fields.push_back(field);
  return fields;
}

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end == s.c_str() + s.size();
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end == s.c_str() + s.size();
}

bool SkippableLine(const std::string& line) {
  for (const char c : line) {
    if (c == '#') return true;
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;  // blank
}

}  // namespace

bool LoadPointsCsv(std::istream& in, Dataset* out, std::string* error) {
  Dataset data;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (SkippableLine(line)) continue;
    const std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != 2 && fields.size() != 3) {
      SetError(error, line_no, line, "expected x,y[,id]");
      return false;
    }
    Point p;
    if (!ParseDouble(fields[0], &p.x) || !ParseDouble(fields[1], &p.y)) {
      SetError(error, line_no, line, "bad coordinate");
      return false;
    }
    if (fields.size() == 3) {
      if (!ParseInt64(fields[2], &p.id)) {
        SetError(error, line_no, line, "bad id");
        return false;
      }
    } else {
      p.id = static_cast<int64_t>(data.points.size());
    }
    data.points.push_back(p);
  }
  data.bounds = ComputeBounds(data.points);
  data.name = "csv";
  *out = std::move(data);
  return true;
}

bool LoadPointsCsvFile(const std::string& path, Dataset* out,
                       std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (!LoadPointsCsv(in, out, error)) return false;
  out->name = path;
  return true;
}

bool SavePointsCsv(const Dataset& data, std::ostream& out) {
  out << "# x,y,id\n";
  out.precision(17);
  for (const Point& p : data.points) {
    out << p.x << ',' << p.y << ',' << p.id << '\n';
  }
  return static_cast<bool>(out);
}

bool SavePointsCsvFile(const Dataset& data, const std::string& path) {
  std::ofstream out(path);
  return out && SavePointsCsv(data, out) && static_cast<bool>(out.flush());
}

bool LoadQueriesCsv(std::istream& in, Workload* out, std::string* error) {
  Workload w;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (SkippableLine(line)) continue;
    const std::vector<std::string> fields = SplitCsv(line);
    if (fields.size() != 4) {
      SetError(error, line_no, line, "expected min_x,min_y,max_x,max_y");
      return false;
    }
    double v[4];
    for (int i = 0; i < 4; ++i) {
      if (!ParseDouble(fields[i], &v[i])) {
        SetError(error, line_no, line, "bad coordinate");
        return false;
      }
    }
    if (v[0] > v[2] || v[1] > v[3]) {
      SetError(error, line_no, line, "empty rectangle (min > max)");
      return false;
    }
    w.queries.push_back(Rect::Of(v[0], v[1], v[2], v[3]));
  }
  w.name = "csv";
  *out = std::move(w);
  return true;
}

bool LoadQueriesCsvFile(const std::string& path, Workload* out,
                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return false;
  }
  if (!LoadQueriesCsv(in, out, error)) return false;
  out->name = path;
  return true;
}

bool SaveQueriesCsv(const Workload& workload, std::ostream& out) {
  out << "# min_x,min_y,max_x,max_y\n";
  out.precision(17);
  for (const Rect& q : workload.queries) {
    out << q.min_x << ',' << q.min_y << ',' << q.max_x << ',' << q.max_y
        << '\n';
  }
  return static_cast<bool>(out);
}

bool SaveQueriesCsvFile(const Workload& workload, const std::string& path) {
  std::ofstream out(path);
  return out && SaveQueriesCsv(workload, out) && static_cast<bool>(out.flush());
}

}  // namespace wazi

// CSV import/export for datasets and workloads, so the library can be
// used with real data (e.g. actual OSM extracts and Gowalla check-ins)
// instead of the bundled synthetic generators.
//
// Point rows:  x,y[,id]   (id defaults to the row number)
// Query rows:  min_x,min_y,max_x,max_y
// Lines starting with '#' and blank lines are skipped.

#ifndef WAZI_WORKLOAD_IO_H_
#define WAZI_WORKLOAD_IO_H_

#include <iosfwd>
#include <string>

#include "workload/dataset.h"

namespace wazi {

// All loaders return false on malformed input and report the offending
// line through `error` (when non-null), leaving the output untouched.

bool LoadPointsCsv(std::istream& in, Dataset* out, std::string* error);
bool LoadPointsCsvFile(const std::string& path, Dataset* out,
                       std::string* error);
bool SavePointsCsv(const Dataset& data, std::ostream& out);
bool SavePointsCsvFile(const Dataset& data, const std::string& path);

bool LoadQueriesCsv(std::istream& in, Workload* out, std::string* error);
bool LoadQueriesCsvFile(const std::string& path, Workload* out,
                        std::string* error);
bool SaveQueriesCsv(const Workload& workload, std::ostream& out);
bool SaveQueriesCsvFile(const Workload& workload, const std::string& path);

}  // namespace wazi

#endif  // WAZI_WORKLOAD_IO_H_

#include "workload/query_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace wazi {
namespace {

// Zipf-ish popularity weights: weight(i) ~ 1/(i+1).
std::vector<double> ZipfWeights(size_t n) {
  std::vector<double> w(n);
  for (size_t i = 0; i < n; ++i) w[i] = 1.0 / static_cast<double>(i + 1);
  return w;
}

// Gowalla check-ins concentrate on discrete *venues* (a check-in carries a
// venue's coordinates), so the check-in distribution is spiky at fine
// scales — that spikiness is what a workload-aware index exploits. We
// model it explicitly: a deterministic set of venues per region (drawn
// around the region's popular places), Zipf-weighted, with metre-scale
// jitter; plus a small uniform background.
struct VenueModel {
  std::vector<Point> venues;
  std::vector<double> weights;
};

VenueModel BuildVenueModel(Region region, const Rect& domain, uint64_t seed) {
  constexpr size_t kVenues = 400;
  const std::vector<Point> hotspots = RegionHotspots(region);
  const std::vector<double> hotspot_w = ZipfWeights(hotspots.size());
  VenueModel model;
  model.venues.reserve(kVenues);
  Rng rng(seed ^ 0xfeedfacecafef00dULL);
  for (size_t i = 0; i < kVenues; ++i) {
    // 80% of venues cluster around popular places, 20% anywhere.
    Point v;
    if (rng.NextDouble() < 0.8) {
      const Point& h = hotspots[rng.WeightedIndex(hotspot_w)];
      const double sigma = 0.02;
      v = Point{std::clamp(h.x + sigma * rng.NextGaussian(), domain.min_x,
                           domain.max_x),
                std::clamp(h.y + sigma * rng.NextGaussian(), domain.min_y,
                           domain.max_y),
                0};
    } else {
      v = Point{rng.Uniform(domain.min_x, domain.max_x),
                rng.Uniform(domain.min_y, domain.max_y), 0};
    }
    model.venues.push_back(v);
  }
  model.weights = ZipfWeights(kVenues);
  return model;
}

Point SampleCheckin(const VenueModel& model, const Rect& domain, Rng& rng) {
  // 90% of check-ins at a venue (tiny jitter), 10% anywhere.
  if (rng.NextDouble() < 0.9) {
    const Point& v = model.venues[rng.WeightedIndex(model.weights)];
    const double sigma = 0.0015;
    return Point{std::clamp(v.x + sigma * rng.NextGaussian(), domain.min_x,
                            domain.max_x),
                 std::clamp(v.y + sigma * rng.NextGaussian(), domain.min_y,
                            domain.max_y),
                 0};
  }
  return Point{rng.Uniform(domain.min_x, domain.max_x),
               rng.Uniform(domain.min_y, domain.max_y), 0};
}

// Grows a rectangle of area `frac * Area(domain)` around `center`, sliding
// it inward where it would cross the domain boundary so that the covered
// area stays exact (the paper grows "along the four directions" to reach
// the target coverage).
Rect GrowQuery(const Point& center, const Rect& domain, double frac,
               double aspect, Rng& rng) {
  (void)rng;
  const double area = frac * domain.Area();
  double w = std::sqrt(area / aspect);
  double h = area / w;
  w = std::min(w, domain.max_x - domain.min_x);
  h = std::min(h, domain.max_y - domain.min_y);
  double min_x = center.x - w / 2.0;
  double min_y = center.y - h / 2.0;
  min_x = std::clamp(min_x, domain.min_x, domain.max_x - w);
  min_y = std::clamp(min_y, domain.min_y, domain.max_y - h);
  return Rect::Of(min_x, min_y, min_x + w, min_y + h);
}

double SampleAspect(double aspect_max, Rng& rng) {
  if (aspect_max <= 1.0) return 1.0;
  const double log_max = std::log(aspect_max);
  return std::exp(rng.Uniform(-log_max, log_max));
}

}  // namespace

Workload GenerateCheckinWorkload(Region region, const Rect& domain,
                                 const QueryGenOptions& opts) {
  Workload w;
  w.name = "Q" + RegionName(region);
  w.selectivity = opts.selectivity;
  w.queries.reserve(opts.num_queries);
  const VenueModel model = BuildVenueModel(region, domain, opts.seed);
  Rng rng(opts.seed ^ (static_cast<uint64_t>(region) + 11) * 0x2545f4914f6cdd1dULL);
  for (size_t i = 0; i < opts.num_queries; ++i) {
    const Point c = SampleCheckin(model, domain, rng);
    const double aspect = SampleAspect(opts.aspect_max, rng);
    w.queries.push_back(GrowQuery(c, domain, opts.selectivity, aspect, rng));
  }
  return w;
}

Workload GenerateUniformWorkload(const Rect& domain,
                                 const QueryGenOptions& opts) {
  Workload w;
  w.name = "QUniform";
  w.selectivity = opts.selectivity;
  w.queries.reserve(opts.num_queries);
  Rng rng(opts.seed * 0x9e3779b97f4a7c15ULL + 3);
  for (size_t i = 0; i < opts.num_queries; ++i) {
    const Point c{rng.Uniform(domain.min_x, domain.max_x),
                  rng.Uniform(domain.min_y, domain.max_y), 0};
    const double aspect = SampleAspect(opts.aspect_max, rng);
    w.queries.push_back(GrowQuery(c, domain, opts.selectivity, aspect, rng));
  }
  return w;
}

std::vector<Point> SampleCheckinCenters(Region region, size_t n,
                                        uint64_t seed) {
  const Rect domain = Rect::Of(0.0, 0.0, 1.0, 1.0);
  const VenueModel model = BuildVenueModel(region, domain, seed);
  Rng rng(seed ^ (static_cast<uint64_t>(region) + 11) * 0x2545f4914f6cdd1dULL);
  std::vector<Point> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(SampleCheckin(model, domain, rng));
  }
  return out;
}

Workload BlendWorkloads(const Workload& base, const Workload& drift,
                        double fraction, uint64_t seed) {
  Workload out = base;
  out.name = base.name + "+" + drift.name;
  if (drift.queries.empty() || fraction <= 0.0) return out;
  Rng rng(seed + 101);
  const size_t n_replace = static_cast<size_t>(
      std::llround(fraction * static_cast<double>(base.queries.size())));
  // Deterministic choice of positions: shuffle indices with our Rng.
  std::vector<size_t> idx(base.queries.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  for (size_t i = idx.size(); i > 1; --i) {
    std::swap(idx[i - 1], idx[rng.NextBelow(i)]);
  }
  for (size_t k = 0; k < n_replace && k < idx.size(); ++k) {
    out.queries[idx[k]] = drift.queries[rng.NextBelow(drift.queries.size())];
  }
  return out;
}

std::vector<Point> SamplePointQueries(const Dataset& data, size_t n,
                                      uint64_t seed) {
  std::vector<Point> out;
  out.reserve(n);
  Rng rng(seed + 77);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(data.points[rng.NextBelow(data.points.size())]);
  }
  return out;
}

std::vector<Point> GenerateInsertStream(const Rect& domain, size_t n,
                                        int64_t first_id, uint64_t seed) {
  std::vector<Point> out;
  out.reserve(n);
  Rng rng(seed + 12345);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(Point{rng.Uniform(domain.min_x, domain.max_x),
                        rng.Uniform(domain.min_y, domain.max_y),
                        first_id + static_cast<int64_t>(i)});
  }
  return out;
}

}  // namespace wazi

// Query workload generation: the semi-synthetic, skewed range-query
// workloads of the paper (§6.2), point-query sampling, insert streams, and
// workload blending for the drift experiment (Fig. 12).
//
// The paper samples query centres from Gowalla check-in locations within
// each region and grows rectangles until they cover a target fraction of
// the data space. We reproduce the mechanism with a synthetic check-in
// distribution: a popularity-weighted hotspot mixture over the same region
// (see region_generator.h), which is skewed differently from the data.

#ifndef WAZI_WORKLOAD_QUERY_GENERATOR_H_
#define WAZI_WORKLOAD_QUERY_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "workload/dataset.h"
#include "workload/region_generator.h"

namespace wazi {

// Paper default selectivities (fraction of data-space area): Table 2.
// 0.0016%, 0.0064%, 0.0256% (default), 0.1024%; Fig. 13 also uses 0.0004%.
inline constexpr double kSelectivityLow = 0.0016e-2;
inline constexpr double kSelectivityMid1 = 0.0064e-2;
inline constexpr double kSelectivityMid2 = 0.0256e-2;
inline constexpr double kSelectivityHigh = 0.1024e-2;
inline constexpr double kSelectivityTiny = 0.0004e-2;

struct QueryGenOptions {
  size_t num_queries = 20000;
  // Fraction of data-space area each query covers.
  double selectivity = kSelectivityMid2;
  // Query aspect ratio jitter: height/width drawn log-uniform in
  // [1/aspect_max, aspect_max]. 1.0 means exact squares.
  double aspect_max = 2.0;
  uint64_t seed = 7;
};

// Gowalla-like check-in workload: centres from a hotspot mixture over
// `region`, rectangles of area selectivity * Area(domain), clipped to the
// domain (clipping slides the rectangle inward so the area is preserved).
Workload GenerateCheckinWorkload(Region region, const Rect& domain,
                                 const QueryGenOptions& opts);

// Uniform workload over the domain (used for the drift experiment).
Workload GenerateUniformWorkload(const Rect& domain,
                                 const QueryGenOptions& opts);

// Samples check-in *centre* locations only (used to test the distribution
// and by the density-estimation tests).
std::vector<Point> SampleCheckinCenters(Region region, size_t n,
                                        uint64_t seed);

// Replaces `fraction` of `base`'s queries (chosen deterministically) with
// queries from `drift`; used by Fig. 12 to shift a workload gradually.
Workload BlendWorkloads(const Workload& base, const Workload& drift,
                        double fraction, uint64_t seed);

// Point queries drawn (with replacement) from the dataset's points.
std::vector<Point> SamplePointQueries(const Dataset& data, size_t n,
                                      uint64_t seed);

// Insert stream: points uniform over the domain (paper §6.7).
std::vector<Point> GenerateInsertStream(const Rect& domain, size_t n,
                                        int64_t first_id, uint64_t seed);

}  // namespace wazi

#endif  // WAZI_WORKLOAD_QUERY_GENERATOR_H_

#include "workload/region_generator.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace wazi {
namespace {

// A Gaussian cluster component of a region mixture.
struct Cluster {
  double cx, cy;
  double sx, sy;
  double weight;
};

Point ClampToUnit(double x, double y) {
  return Point{std::clamp(x, 0.0, 1.0), std::clamp(y, 0.0, 1.0), 0};
}

// Samples along the polyline through `knots`, with Gaussian jitter of
// width `sigma` — models coastlines and island arcs.
Point SampleBand(const std::vector<Point>& knots, double sigma, Rng& rng) {
  const size_t seg = rng.NextBelow(knots.size() - 1);
  const double t = rng.NextDouble();
  const Point& a = knots[seg];
  const Point& b = knots[seg + 1];
  const double x = a.x + t * (b.x - a.x) + sigma * rng.NextGaussian();
  const double y = a.y + t * (b.y - a.y) + sigma * rng.NextGaussian();
  return ClampToUnit(x, y);
}

Point SampleCluster(const Cluster& c, Rng& rng) {
  return ClampToUnit(c.cx + c.sx * rng.NextGaussian(),
                     c.cy + c.sy * rng.NextGaussian());
}

// Snaps a coordinate towards the nearest line of an `m`-line lattice,
// keeping a jitter of width `sigma` — models Manhattan-style street grids.
double SnapToGrid(double v, int m, double sigma, Rng& rng) {
  const double cell = 1.0 / m;
  const double snapped = std::round(v / cell) * cell;
  return std::clamp(snapped + sigma * rng.NextGaussian(), 0.0, 1.0);
}

const std::vector<Point>& CaliCoast() {
  static const std::vector<Point> kKnots = {
      {0.08, 0.97, 0}, {0.16, 0.78, 0}, {0.20, 0.62, 0},
      {0.30, 0.45, 0}, {0.42, 0.28, 0}, {0.55, 0.12, 0}};
  return kKnots;
}

const std::vector<Point>& JapanArcMain() {
  static const std::vector<Point> kKnots = {
      {0.18, 0.92, 0}, {0.30, 0.80, 0}, {0.45, 0.66, 0},
      {0.60, 0.52, 0}, {0.72, 0.38, 0}, {0.80, 0.24, 0}};
  return kKnots;
}

const std::vector<Point>& JapanArcSouth() {
  static const std::vector<Point> kKnots = {
      {0.55, 0.30, 0}, {0.45, 0.22, 0}, {0.32, 0.16, 0}, {0.20, 0.12, 0}};
  return kKnots;
}

const std::vector<Point>& IberiaRing() {
  // Rough coastal outline of a peninsula: west, south, east coasts.
  static const std::vector<Point> kKnots = {
      {0.12, 0.85, 0}, {0.08, 0.60, 0}, {0.10, 0.35, 0}, {0.20, 0.15, 0},
      {0.45, 0.08, 0}, {0.70, 0.12, 0}, {0.88, 0.30, 0}, {0.92, 0.55, 0},
      {0.85, 0.80, 0}};
  return kKnots;
}

Point SampleCaliNev(Rng& rng) {
  static const std::vector<Cluster> kCities = {
      {0.17, 0.74, 0.015, 0.015, 3.0},  // Bay-Area-like
      {0.44, 0.24, 0.025, 0.020, 4.0},  // LA-basin-like
      {0.52, 0.14, 0.012, 0.012, 1.5},  // San-Diego-like
      {0.62, 0.42, 0.015, 0.012, 1.5},  // Vegas-like
      {0.30, 0.88, 0.012, 0.010, 0.8},  // inland north
      {0.78, 0.70, 0.020, 0.020, 0.5},  // sparse Nevada town
  };
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const Cluster& c : kCities) w.push_back(c.weight);
    return w;
  }();
  const double u = rng.NextDouble();
  if (u < 0.45) return SampleBand(CaliCoast(), 0.02, rng);
  if (u < 0.90) return SampleCluster(kCities[rng.WeightedIndex(kWeights)], rng);
  return Point{rng.NextDouble(), rng.NextDouble(), 0};  // desert background
}

Point SampleNewYork(Rng& rng) {
  static const std::vector<Cluster> kBoroughs = {
      {0.48, 0.55, 0.04, 0.09, 5.0},  // Manhattan-like: tall and thin
      {0.60, 0.38, 0.08, 0.06, 3.0},  // Brooklyn-like
      {0.68, 0.55, 0.08, 0.07, 2.5},  // Queens-like
      {0.45, 0.75, 0.06, 0.05, 1.5},  // Bronx-like
      {0.28, 0.32, 0.06, 0.06, 1.0},  // Staten-Island-like
  };
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const Cluster& c : kBoroughs) w.push_back(c.weight);
    return w;
  }();
  Point p = SampleCluster(kBoroughs[rng.WeightedIndex(kWeights)], rng);
  // POIs concentrate along a street lattice within each borough.
  if (rng.NextDouble() < 0.7) {
    if (rng.NextDouble() < 0.5) {
      p.x = SnapToGrid(p.x, 160, 0.0012, rng);
    } else {
      p.y = SnapToGrid(p.y, 160, 0.0012, rng);
    }
  }
  return p;
}

Point SampleJapan(Rng& rng) {
  static const std::vector<Cluster> kMetros = {
      {0.60, 0.52, 0.020, 0.018, 5.0},  // Tokyo-like
      {0.45, 0.40, 0.015, 0.013, 2.5},  // Osaka-like
      {0.52, 0.46, 0.012, 0.010, 1.5},  // Nagoya-like
      {0.24, 0.88, 0.015, 0.013, 1.0},  // Sapporo-like
      {0.24, 0.14, 0.012, 0.010, 1.0},  // Fukuoka-like
  };
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const Cluster& c : kMetros) w.push_back(c.weight);
    return w;
  }();
  const double u = rng.NextDouble();
  if (u < 0.40) return SampleBand(JapanArcMain(), 0.018, rng);
  if (u < 0.52) return SampleBand(JapanArcSouth(), 0.014, rng);
  if (u < 0.97) return SampleCluster(kMetros[rng.WeightedIndex(kWeights)], rng);
  return Point{rng.NextDouble(), rng.NextDouble(), 0};
}

Point SampleIberia(Rng& rng) {
  static const std::vector<Cluster> kCities = {
      {0.50, 0.50, 0.030, 0.030, 4.0},  // Madrid-like centre
      {0.88, 0.62, 0.015, 0.015, 2.5},  // Barcelona-like
      {0.12, 0.72, 0.015, 0.015, 2.0},  // Porto/Lisbon-like coast
      {0.35, 0.10, 0.018, 0.012, 1.5},  // Seville-like south
      {0.70, 0.12, 0.012, 0.012, 1.0},  // Murcia-like
  };
  static const std::vector<double> kWeights = [] {
    std::vector<double> w;
    for (const Cluster& c : kCities) w.push_back(c.weight);
    return w;
  }();
  const double u = rng.NextDouble();
  if (u < 0.42) return SampleBand(IberiaRing(), 0.022, rng);
  if (u < 0.92) return SampleCluster(kCities[rng.WeightedIndex(kWeights)], rng);
  return Point{rng.NextDouble(), rng.NextDouble(), 0};  // sparse interior
}

}  // namespace

const std::vector<Region>& AllRegions() {
  static const std::vector<Region> kAll = {Region::kCaliNev, Region::kNewYork,
                                           Region::kJapan, Region::kIberia};
  return kAll;
}

std::string RegionName(Region region) {
  switch (region) {
    case Region::kCaliNev: return "CaliNev";
    case Region::kNewYork: return "NewYork";
    case Region::kJapan: return "Japan";
    case Region::kIberia: return "Iberia";
  }
  return "Unknown";
}

bool ParseRegion(const std::string& name, Region* out) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  for (Region r : AllRegions()) {
    std::string cand = RegionName(r);
    std::transform(cand.begin(), cand.end(), cand.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    if (cand == lower) {
      *out = r;
      return true;
    }
  }
  return false;
}

Dataset GenerateRegion(Region region, size_t n, uint64_t seed) {
  Dataset data;
  data.name = RegionName(region);
  data.points.reserve(n);
  Rng rng(seed ^ (static_cast<uint64_t>(region) + 1) * 0x9e3779b97f4a7c15ULL);
  for (size_t i = 0; i < n; ++i) {
    Point p;
    switch (region) {
      case Region::kCaliNev: p = SampleCaliNev(rng); break;
      case Region::kNewYork: p = SampleNewYork(rng); break;
      case Region::kJapan: p = SampleJapan(rng); break;
      case Region::kIberia: p = SampleIberia(rng); break;
    }
    data.points.push_back(p);
  }
  AssignIds(&data.points);
  data.bounds = Rect::Of(0.0, 0.0, 1.0, 1.0);
  return data;
}

std::vector<Point> RegionHotspots(Region region) {
  // A handful of "popular places" per region. Deliberately *not* identical
  // to the densest data clusters: check-ins concentrate on a few venues
  // (and some places popular with visitors but sparse in POIs), which is
  // what makes Q differently-skewed from D.
  switch (region) {
    case Region::kCaliNev:
      return {{0.44, 0.24, 0}, {0.17, 0.74, 0}, {0.62, 0.42, 0},
              {0.36, 0.36, 0}, {0.22, 0.55, 0}};
    case Region::kNewYork:
      return {{0.48, 0.58, 0}, {0.50, 0.48, 0}, {0.62, 0.40, 0},
              {0.55, 0.64, 0}, {0.40, 0.30, 0}};
    case Region::kJapan:
      return {{0.60, 0.52, 0}, {0.45, 0.40, 0}, {0.62, 0.55, 0},
              {0.24, 0.14, 0}, {0.50, 0.60, 0}};
    case Region::kIberia:
      return {{0.88, 0.62, 0}, {0.50, 0.50, 0}, {0.12, 0.72, 0},
              {0.30, 0.30, 0}, {0.60, 0.20, 0}};
  }
  return {};
}

}  // namespace wazi

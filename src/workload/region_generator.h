// Synthetic stand-ins for the paper's four OpenStreetMap POI extracts.
//
// The paper's experiments require skewed, clustered, region-distinct point
// distributions (California coast, New York City, Japan, Iberian
// Peninsula). We cannot ship OSM data, so each region is generated as a
// deterministic mixture that mimics the qualitative spatial character of
// its namesake: coastal bands, street grids, archipelago arcs, and a
// coastal ring around a sparse interior. See DESIGN.md §1 for why this
// substitution preserves the behaviour the experiments measure.
//
// All regions live in the unit square domain [0,1]^2.

#ifndef WAZI_WORKLOAD_REGION_GENERATOR_H_
#define WAZI_WORKLOAD_REGION_GENERATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "workload/dataset.h"

namespace wazi {

enum class Region { kCaliNev, kNewYork, kJapan, kIberia };

// All four regions, in the paper's presentation order.
const std::vector<Region>& AllRegions();

std::string RegionName(Region region);

// Parses "CaliNev" / "NewYork" / "Japan" / "Iberia" (case-insensitive);
// returns false on unknown names.
bool ParseRegion(const std::string& name, Region* out);

// Generates `n` points for `region`, deterministically for (region, n,
// seed). Ids are 0..n-1 and `bounds` is the unit square.
Dataset GenerateRegion(Region region, size_t n, uint64_t seed);

// Hotspot centres that act as this region's "popular places". The query
// generator uses these (re-weighted) to build a check-in distribution that
// is skewed *differently* from the data. Deterministic per region.
std::vector<Point> RegionHotspots(Region region);

}  // namespace wazi

#endif  // WAZI_WORKLOAD_REGION_GENERATOR_H_

// Batched query admission: SubmitQuery/SubmitBatch futures must return
// exactly what direct execution returns, batches must actually coalesce
// under one snapshot acquisition, and no future may ever be abandoned —
// including across Stop and concurrent live repartitions.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "core/wazi.h"
#include "serve/serve_loop.h"
#include "tests/test_util.h"

namespace wazi::serve {
namespace {

IndexFactory WaziFactory() {
  return [] { return std::unique_ptr<SpatialIndex>(new Wazi()); };
}

BuildOptions FastOpts() {
  BuildOptions opts;
  opts.leaf_capacity = 64;
  return opts;
}

TEST(AdmissionTest, SubmittedQueriesMatchDirectExecution) {
  TestScenario s = MakeScenario(Region::kCaliNev, 4000, 80, 2e-3, 801);
  ServeOptions opts;
  opts.num_shards = 3;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  opts.admission.window_us = 100;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  // One of each type, interleaved, so the dispatcher's type grouping has
  // to scatter results back to the right futures.
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < 30; ++i) {
    switch (i % 3) {
      case 0:
        requests.push_back(QueryRequest::Range(s.workload.queries[i]));
        break;
      case 1:
        requests.push_back(QueryRequest::PointLookup(s.data.points[i * 7]));
        break;
      default:
        requests.push_back(QueryRequest::Knn(s.data.points[i * 11], 5));
        break;
    }
  }
  std::vector<std::future<QueryResult>> futures;
  for (const QueryRequest& r : requests) futures.push_back(loop.SubmitQuery(r));

  for (size_t i = 0; i < requests.size(); ++i) {
    const QueryResult got = futures[i].get();
    switch (requests[i].type) {
      case QueryRequest::Type::kRange:
        EXPECT_EQ(SortedIds(got.hits), TruthIds(s.data, requests[i].rect))
            << "range " << i;
        break;
      case QueryRequest::Type::kPoint:
        EXPECT_TRUE(got.found) << "point " << i;
        break;
      case QueryRequest::Type::kKnn: {
        const QueryResult direct = loop.Knn(requests[i].point, requests[i].k);
        EXPECT_EQ(SortedIds(got.hits), SortedIds(direct.hits)) << "knn " << i;
        break;
      }
    }
  }
}

TEST(AdmissionTest, SubmitBatchCoalescesUnderOneAcquisition) {
  TestScenario s = MakeScenario(Region::kCaliNev, 3000, 80, 2e-3, 802);
  ServeOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  opts.admission.batch_limit = 32;
  opts.admission.window_us = 2000;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  // 64 requests enqueued atomically: the dispatcher must see them as two
  // full batches of batch_limit (it cannot observe a partial prefix —
  // SubmitBatch holds the queue lock while enqueueing).
  std::vector<QueryRequest> requests;
  for (size_t i = 0; i < 64; ++i) {
    requests.push_back(QueryRequest::Range(s.workload.queries[i % 80]));
  }
  std::vector<std::future<QueryResult>> futures = loop.SubmitBatch(requests);
  ASSERT_EQ(futures.size(), requests.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    EXPECT_EQ(SortedIds(futures[i].get().hits),
              TruthIds(s.data, requests[i].rect))
        << "request " << i;
  }
  const AdmissionStats as = loop.admission_stats();
  EXPECT_EQ(as.admitted, 64);
  EXPECT_EQ(as.dispatched, 64);
  EXPECT_EQ(as.max_batch, 32);
  EXPECT_EQ(as.batches, 2);
}

TEST(AdmissionTest, BatchIsEpochPinnedAcrossALiveRepartition) {
  TestScenario s = MakeScenario(Region::kCaliNev, 4000, 60, 2e-3, 803);
  s.data = DedupeCoords(s.data);
  ServeOptions opts;
  opts.num_shards = 3;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  opts.admission.batch_limit = 64;
  opts.admission.window_us = 500;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  std::atomic<bool> stop{false};
  std::thread repartitioner([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      loop.TriggerRepartition(0);
    }
  });

  // Every SubmitBatch fits one dispatch batch (<= batch_limit), so all
  // its results must report the SAME pinned epoch, no matter how many
  // topology swaps the repartitioner lands mid-flight — and membership
  // stays exact (no writes in flight).
  for (int round = 0; round < 20; ++round) {
    std::vector<QueryRequest> requests;
    for (size_t i = 0; i < 16; ++i) {
      requests.push_back(QueryRequest::Range(s.workload.queries[i]));
    }
    std::vector<std::future<QueryResult>> futures = loop.SubmitBatch(requests);
    std::vector<QueryResult> results;
    for (auto& f : futures) results.push_back(f.get());
    for (size_t i = 1; i < results.size(); ++i) {
      EXPECT_EQ(results[i].epoch, results[0].epoch) << "round " << round;
    }
    for (size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(SortedIds(results[i].hits),
                TruthIds(s.data, requests[i].rect))
          << "round " << round << " request " << i;
    }
  }
  stop.store(true);
  repartitioner.join();
  EXPECT_GT(loop.repartitions(), 0);
}

TEST(AdmissionTest, StatsSnapshotsAreMutuallyConsistent) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 40, 2e-3, 805);
  ServeOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  opts.admission.batch_limit = 8;
  opts.admission.window_us = 100;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  // A poller hammers stats() while submitters race the dispatcher: every
  // snapshot must satisfy the struct's invariants — independently-read
  // counters used to allow e.g. dispatched > admitted between the reads.
  std::atomic<bool> stop_poller{false};
  std::atomic<int64_t> violations{0};
  std::thread poller([&] {
    while (!stop_poller.load(std::memory_order_relaxed)) {
      const AdmissionStats st = loop.admission_stats();
      if (st.dispatched > st.admitted || st.batches > st.dispatched ||
          st.max_batch > st.dispatched ||
          (st.dispatched > 0 && st.batches == 0) ||
          st.mean_batch() > static_cast<double>(st.max_batch) ||
          st.admitted < 0) {
        violations.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 300; ++i) {
        const Rect& q = s.workload.queries[(t * 300 + i) % 40];
        loop.SubmitQuery(QueryRequest::Range(q)).get();
      }
    });
  }
  for (auto& t : clients) t.join();
  stop_poller.store(true);
  poller.join();
  EXPECT_EQ(violations.load(), 0);

  const AdmissionStats st = loop.admission_stats();
  EXPECT_EQ(st.admitted, 1200);
  EXPECT_EQ(st.dispatched, 1200);
  EXPECT_GE(st.batches, 1200 / 8);  // batch_limit caps every dispatch
  EXPECT_LE(st.max_batch, 8);

  // Post-stop inline submits keep the invariants (counted as batches of
  // one).
  loop.Stop();
  loop.SubmitQuery(QueryRequest::Range(s.workload.queries[0])).get();
  const AdmissionStats after = loop.admission_stats();
  EXPECT_EQ(after.admitted, 1201);
  EXPECT_EQ(after.dispatched, 1201);
  EXPECT_EQ(after.batches, st.batches + 1);
}

TEST(AdmissionTest, ConcurrentSubmittersAllResolveAndStopDrains) {
  TestScenario s = MakeScenario(Region::kCaliNev, 3000, 60, 2e-3, 804);
  ServeOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  opts.admission.window_us = 300;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  std::atomic<int64_t> resolved{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const Rect& q = s.workload.queries[(t * 200 + i) % 60];
        std::future<QueryResult> f =
            loop.SubmitQuery(QueryRequest::Range(q));
        if (SortedIds(f.get().hits) == TruthIds(s.data, q)) {
          resolved.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(resolved.load(), 800);
  const AdmissionStats as = loop.admission_stats();
  EXPECT_EQ(as.dispatched, as.admitted);

  // Stop drains; a submit AFTER stop still resolves (inline fallback).
  loop.Stop();
  std::future<QueryResult> late =
      loop.SubmitQuery(QueryRequest::Range(s.workload.queries[0]));
  EXPECT_EQ(SortedIds(late.get().hits),
            TruthIds(s.data, s.workload.queries[0]));
}

TEST(AdmissionTest, PostStopInlinePathCountsDispatchBeforeResolving) {
  // Regression: the post-Stop inline paths of Submit and SubmitBatch used
  // to resolve the promise BEFORE CountDispatched, so a waiter observing
  // its result could catch stats() with that query admitted but not yet
  // dispatched. The fix restores the DispatchBatch ordering contract:
  // whoever holds a resolved future must find it counted.
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 60, 2e-3, 806);
  ServeOptions opts;
  opts.num_shards = 2;
  opts.num_threads = 2;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);
  loop.Stop();
  const AdmissionStats before = loop.admission_stats();

  // Stats poller from a separate (waiter-side) thread: the ordering
  // invariant dispatched <= admitted must hold at every instant, both
  // mid-run and across the inline executions below.
  std::atomic<bool> poll{true};
  std::thread poller([&] {
    while (poll.load(std::memory_order_relaxed)) {
      const AdmissionStats st = loop.admission_stats();
      EXPECT_LE(st.dispatched, st.admitted);
      EXPECT_LE(st.batches, st.dispatched);  // every batch has >= 1 query
    }
  });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 50;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      int64_t observed = 0;
      for (int i = 0; i < kPerThread; ++i) {
        const Rect& q = s.workload.queries[(t * 31 + i) % 60];
        std::future<QueryResult> f;
        if (i % 2 == 0) {
          f = loop.SubmitQuery(QueryRequest::Range(q));
        } else {
          f = std::move(
              loop.SubmitBatch({QueryRequest::Range(q)}).front());
        }
        EXPECT_EQ(SortedIds(f.get().hits), TruthIds(s.data, q));
        ++observed;
        // The waiter-side guarantee: every result this thread has in
        // hand is already visible in dispatched (other threads only add).
        EXPECT_GE(loop.admission_stats().dispatched, observed);
      }
    });
  }
  for (auto& t : submitters) t.join();
  poll.store(false, std::memory_order_relaxed);
  poller.join();

  const AdmissionStats after = loop.admission_stats();
  EXPECT_EQ(after.admitted - before.admitted, kThreads * kPerThread);
  EXPECT_EQ(after.dispatched - before.dispatched, kThreads * kPerThread);
  // Inline executions are batches of one.
  EXPECT_EQ(after.batches - before.batches, kThreads * kPerThread);
}

}  // namespace
}  // namespace wazi::serve

#include "sfc/bigmin.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "sfc/zcurve.h"

namespace wazi {
namespace {

// Brute-force BIGMIN over a small grid: the smallest code > z whose cell
// is inside the box.
uint64_t BigMinBrute(uint64_t z, uint64_t zmin, uint64_t zmax,
                     uint32_t grid) {
  uint64_t best = zmax + 1;
  for (uint32_t x = ZDecodeX(zmin); x <= ZDecodeX(zmax) && x < grid; ++x) {
    for (uint32_t y = ZDecodeY(zmin); y <= ZDecodeY(zmax) && y < grid; ++y) {
      const uint64_t code = ZEncode(x, y);
      if (code > z) best = std::min(best, code);
    }
  }
  return best;
}

TEST(BigMinTest, ZCellInBoxMatchesCoordinates) {
  const uint64_t zmin = ZEncode(2, 3);
  const uint64_t zmax = ZEncode(6, 5);
  EXPECT_TRUE(ZCellInBox(ZEncode(2, 3), zmin, zmax));
  EXPECT_TRUE(ZCellInBox(ZEncode(6, 5), zmin, zmax));
  EXPECT_TRUE(ZCellInBox(ZEncode(4, 4), zmin, zmax));
  EXPECT_FALSE(ZCellInBox(ZEncode(1, 4), zmin, zmax));
  EXPECT_FALSE(ZCellInBox(ZEncode(4, 6), zmin, zmax));
}

TEST(BigMinTest, PaperExample) {
  // Tropf & Herzog's canonical example: box (2,2)-(3,6), z outside the
  // box; the next in-box code after z=19 (cell (5,1)... in our layout
  // compute directly) must match brute force.
  const uint64_t zmin = ZEncode(2, 2);
  const uint64_t zmax = ZEncode(3, 6);
  for (uint64_t z = zmin; z < zmax; ++z) {
    if (ZCellInBox(z, zmin, zmax)) continue;
    EXPECT_EQ(BigMin(z, zmin, zmax), BigMinBrute(z, zmin, zmax, 8))
        << "z=" << z;
  }
}

TEST(BigMinTest, MatchesBruteForceOnRandomBoxes) {
  Rng rng(7);
  constexpr uint32_t kGrid = 32;
  for (int iter = 0; iter < 300; ++iter) {
    const uint32_t x0 = static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint32_t y0 = static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint32_t x1 =
        x0 + static_cast<uint32_t>(rng.NextBelow(kGrid - x0));
    const uint32_t y1 =
        y0 + static_cast<uint32_t>(rng.NextBelow(kGrid - y0));
    const uint64_t zmin = ZEncode(x0, y0);
    const uint64_t zmax = ZEncode(x1, y1);
    for (uint64_t z = zmin; z < zmax; ++z) {
      if (ZCellInBox(z, zmin, zmax)) continue;
      ASSERT_EQ(BigMin(z, zmin, zmax), BigMinBrute(z, zmin, zmax, kGrid))
          << "box (" << x0 << "," << y0 << ")-(" << x1 << "," << y1
          << ") z=" << z;
    }
  }
}

TEST(BigMinTest, ReturnsInBoxCode) {
  Rng rng(8);
  constexpr uint32_t kGrid = 1u << 15;
  for (int iter = 0; iter < 2000; ++iter) {
    const uint32_t x0 = static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint32_t y0 = static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint32_t x1 = x0 + static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint32_t y1 = y0 + static_cast<uint32_t>(rng.NextBelow(kGrid));
    const uint64_t zmin = ZEncode(x0, y0);
    const uint64_t zmax = ZEncode(x1, y1);
    const uint64_t z = zmin + rng.NextBelow(zmax - zmin + 1);
    if (ZCellInBox(z, zmin, zmax) || z >= zmax) continue;
    const uint64_t bm = BigMin(z, zmin, zmax);
    ASSERT_GT(bm, z);
    if (bm <= zmax) {
      ASSERT_TRUE(ZCellInBox(bm, zmin, zmax))
          << "BIGMIN returned an out-of-box code";
    }
  }
}

}  // namespace
}  // namespace wazi

// Client-load driver timing: the reported QPS must be queries-in-window /
// wall-of-window. The regression here is the spawn phase — clients used
// to start issuing (and counting) queries while later threads were still
// being spawned, BEFORE the wall clock started, so anything that slowed
// thread spawning inflated QPS. The driver now gates every client on a
// start latch released only once the clock runs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "core/wazi.h"
#include "serve/client_driver.h"
#include "tests/test_util.h"

namespace wazi::serve {
namespace {

IndexFactory WaziFactory() {
  return [] { return std::unique_ptr<SpatialIndex>(new Wazi()); };
}

BuildOptions FastOpts() {
  BuildOptions opts;
  opts.leaf_capacity = 64;
  return opts;
}

double RunQps(ServeLoop& loop, const Workload& workload,
              ClientLoadOptions opts) {
  const ClientLoadResult r = RunClientLoad(loop, workload, opts);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  return static_cast<double>(r.queries) / r.elapsed_seconds;
}

TEST(ClientDriverTest, WallClockCoversConfiguredDuration) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 40, 2e-3, 701);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  ClientLoadOptions load;
  load.threads = 2;
  load.seconds = 0.2;
  const ClientLoadResult r = RunClientLoad(loop, s.workload, load);
  EXPECT_GE(r.elapsed_seconds, load.seconds);
  EXPECT_GT(r.queries, 0);
}

TEST(ClientDriverTest, SlowThreadSpawnCannotInflateQps) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 40, 2e-3, 702);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  ClientLoadOptions base;
  base.threads = 4;
  base.seconds = 0.5;
  const double base_qps = RunQps(loop, s.workload, base);
  ASSERT_GT(base_qps, 0.0);

  // Stretch the spawn phase to ~1.2 thread-seconds of pre-clock time.
  // Pre-fix, already-spawned clients burned that whole stretch issuing
  // counted queries outside the timed window, inflating QPS by ~1.6x;
  // with the start latch the two runs measure the same engine.
  ClientLoadOptions slow = base;
  slow.spawn_hook = [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  const double slow_qps = RunQps(loop, s.workload, slow);

  EXPECT_LT(slow_qps, base_qps * 1.35)
      << "slow spawns inflated QPS: " << slow_qps << " vs " << base_qps;
  // And the hook must not TANK throughput either (sanity that the latch
  // releases everyone).
  EXPECT_GT(slow_qps, base_qps * 0.4);
}

TEST(ClientDriverTest, HotFractionConcentratesReadMass) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 100, 2e-3, 704);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  // hot_fraction 0.1 / hot_pct 90: ~90% of reads must re-ask the first
  // 10% of the workload's queries, and every hot rect must come from
  // that prefix.
  const size_t hot_count = s.workload.queries.size() / 10;
  std::atomic<int64_t> hot_reads{0};
  std::atomic<int64_t> total_reads{0};
  std::atomic<int64_t> misattributed{0};
  ClientLoadOptions load;
  load.threads = 2;
  load.seconds = 0.2;
  load.hot_fraction = 0.1;
  load.hot_pct = 90;
  load.read_hook = [&](int, bool hot, const Rect& rect) {
    total_reads.fetch_add(1, std::memory_order_relaxed);
    if (!hot) return;
    hot_reads.fetch_add(1, std::memory_order_relaxed);
    bool in_prefix = false;
    for (size_t i = 0; i < hot_count; ++i) {
      const Rect& h = s.workload.queries[i];
      if (h.min_x == rect.min_x && h.min_y == rect.min_y &&
          h.max_x == rect.max_x && h.max_y == rect.max_y) {
        in_prefix = true;
        break;
      }
    }
    if (!in_prefix) misattributed.fetch_add(1, std::memory_order_relaxed);
  };
  RunClientLoad(loop, s.workload, load);

  ASSERT_GT(total_reads.load(), 1000);
  EXPECT_EQ(misattributed.load(), 0)
      << "hot reads drew rects outside the hot prefix";
  const double hot_share = static_cast<double>(hot_reads.load()) /
                           static_cast<double>(total_reads.load());
  EXPECT_GT(hot_share, 0.85) << "hot share " << hot_share;
  EXPECT_LT(hot_share, 0.95) << "hot share " << hot_share;
}

TEST(ClientDriverTest, SameSeedSameStreamDifferentSeedDifferent) {
  TestScenario s = MakeScenario(Region::kCaliNev, 1000, 40, 2e-3, 705);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  // One client thread records its first K (hot?, rect) decisions; the
  // stream is a pure function of the seed, so two same-seed runs must
  // agree exactly and a different seed must diverge.
  constexpr size_t kPrefix = 256;
  const auto record = [&](uint64_t seed) {
    std::vector<std::pair<bool, double>> stream;
    ClientLoadOptions load;
    load.threads = 1;
    load.seconds = 0.05;
    load.hot_fraction = 0.1;
    load.hot_pct = 50;  // make the hot/cold coin-flips part of the stream
    load.seed = seed;
    load.read_hook = [&](int, bool hot, const Rect& rect) {
      if (stream.size() < kPrefix) stream.emplace_back(hot, rect.min_x);
    };
    RunClientLoad(loop, s.workload, load);
    return stream;
  };

  const auto a = record(7);
  const auto b = record(7);
  const auto c = record(8);
  ASSERT_EQ(a.size(), kPrefix);
  const size_t shared = std::min(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.begin() + shared, b.begin()))
      << "same seed diverged within the first " << shared << " reads";
  EXPECT_FALSE(a.size() == c.size() && std::equal(a.begin(), a.end(),
                                                  c.begin()))
      << "different seeds produced identical streams";
}

TEST(ClientDriverTest, InsertsLandInsideInsertRegion) {
  TestScenario s = MakeScenario(Region::kCaliNev, 1000, 40, 2e-3, 706);
  ServeOptions opts;
  opts.num_shards = 2;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  const Rect region = Rect::Of(0.1, 0.2, 0.3, 0.4);
  ClientLoadOptions load;
  load.threads = 2;
  load.seconds = 0.2;
  load.write_pct = 50;
  load.insert_region = region;
  const ClientLoadResult r = RunClientLoad(loop, s.workload, load);
  ASSERT_GT(r.writes, 0);

  // Driver-inserted points carry ids >= 1<<40 (dataset ids are dense and
  // small); every one remaining after the flush must sit inside region.
  const QueryResult all = loop.Range(Rect::Of(0.0, 0.0, 1.0, 1.0));
  int64_t inserted = 0;
  for (const Point& p : all.hits) {
    if (p.id < (int64_t{1} << 40)) continue;
    ++inserted;
    EXPECT_TRUE(p.x >= region.min_x && p.x <= region.max_x &&
                p.y >= region.min_y && p.y <= region.max_y)
        << "inserted point (" << p.x << ", " << p.y << ") escaped region";
  }
  EXPECT_GT(inserted, 0) << "no inserted points survived to check";
}

TEST(ClientDriverTest, SpawnHookRunsOncePerThreadOnDrivingThread) {
  TestScenario s = MakeScenario(Region::kCaliNev, 1000, 20, 2e-3, 703);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  const std::thread::id driver = std::this_thread::get_id();
  std::vector<int> seen;
  ClientLoadOptions load;
  load.threads = 3;
  load.seconds = 0.05;
  load.spawn_hook = [&](int t) {
    EXPECT_EQ(std::this_thread::get_id(), driver);
    seen.push_back(t);
  };
  RunClientLoad(loop, s.workload, load);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace wazi::serve

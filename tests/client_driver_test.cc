// Client-load driver timing: the reported QPS must be queries-in-window /
// wall-of-window. The regression here is the spawn phase — clients used
// to start issuing (and counting) queries while later threads were still
// being spawned, BEFORE the wall clock started, so anything that slowed
// thread spawning inflated QPS. The driver now gates every client on a
// start latch released only once the clock runs.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "core/wazi.h"
#include "serve/client_driver.h"
#include "tests/test_util.h"

namespace wazi::serve {
namespace {

IndexFactory WaziFactory() {
  return [] { return std::unique_ptr<SpatialIndex>(new Wazi()); };
}

BuildOptions FastOpts() {
  BuildOptions opts;
  opts.leaf_capacity = 64;
  return opts;
}

double RunQps(ServeLoop& loop, const Workload& workload,
              ClientLoadOptions opts) {
  const ClientLoadResult r = RunClientLoad(loop, workload, opts);
  EXPECT_GT(r.elapsed_seconds, 0.0);
  return static_cast<double>(r.queries) / r.elapsed_seconds;
}

TEST(ClientDriverTest, WallClockCoversConfiguredDuration) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 40, 2e-3, 701);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  ClientLoadOptions load;
  load.threads = 2;
  load.seconds = 0.2;
  const ClientLoadResult r = RunClientLoad(loop, s.workload, load);
  EXPECT_GE(r.elapsed_seconds, load.seconds);
  EXPECT_GT(r.queries, 0);
}

TEST(ClientDriverTest, SlowThreadSpawnCannotInflateQps) {
  TestScenario s = MakeScenario(Region::kCaliNev, 2000, 40, 2e-3, 702);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  ClientLoadOptions base;
  base.threads = 4;
  base.seconds = 0.5;
  const double base_qps = RunQps(loop, s.workload, base);
  ASSERT_GT(base_qps, 0.0);

  // Stretch the spawn phase to ~1.2 thread-seconds of pre-clock time.
  // Pre-fix, already-spawned clients burned that whole stretch issuing
  // counted queries outside the timed window, inflating QPS by ~1.6x;
  // with the start latch the two runs measure the same engine.
  ClientLoadOptions slow = base;
  slow.spawn_hook = [](int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  };
  const double slow_qps = RunQps(loop, s.workload, slow);

  EXPECT_LT(slow_qps, base_qps * 1.35)
      << "slow spawns inflated QPS: " << slow_qps << " vs " << base_qps;
  // And the hook must not TANK throughput either (sanity that the latch
  // releases everyone).
  EXPECT_GT(slow_qps, base_qps * 0.4);
}

TEST(ClientDriverTest, SpawnHookRunsOncePerThreadOnDrivingThread) {
  TestScenario s = MakeScenario(Region::kCaliNev, 1000, 20, 2e-3, 703);
  ServeOptions opts;
  opts.num_shards = 1;
  opts.auto_rebuild = false;
  ServeLoop loop(WaziFactory(), s.data, s.workload, FastOpts(), opts);

  const std::thread::id driver = std::this_thread::get_id();
  std::vector<int> seen;
  ClientLoadOptions load;
  load.threads = 3;
  load.seconds = 0.05;
  load.spawn_hook = [&](int t) {
    EXPECT_EQ(std::this_thread::get_id(), driver);
    seen.push_back(t);
  };
  RunClientLoad(loop, s.workload, load);
  EXPECT_EQ(seen, (std::vector<int>{0, 1, 2}));
}

}  // namespace
}  // namespace wazi::serve

// Unit tests for the retrieval-cost model (Eq. 1-5), including
// hand-computed cases and the structural properties the greedy builder
// relies on.

#include "core/cost_model.h"

#include <gtest/gtest.h>

#include "core/density_adapters.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

QuadCounts Counts(double a, double b, double c, double d) {
  QuadCounts n;
  n[Quadrant::kA] = a;
  n[Quadrant::kB] = b;
  n[Quadrant::kC] = c;
  n[Quadrant::kD] = d;
  return n;
}

TEST(CostModelTest, Eq1HandComputedAbcd) {
  const QuadCounts nd = Counts(10, 20, 30, 40);
  const double alpha = 0.5;
  // Diagonal classes cost their own quadrant.
  EXPECT_EQ(QueryClassCost(RectClass::kAA, nd, Ordering::kAbcd, alpha), 10);
  EXPECT_EQ(QueryClassCost(RectClass::kBB, nd, Ordering::kAbcd, alpha), 20);
  EXPECT_EQ(QueryClassCost(RectClass::kCC, nd, Ordering::kAbcd, alpha), 30);
  EXPECT_EQ(QueryClassCost(RectClass::kDD, nd, Ordering::kAbcd, alpha), 40);
  // AD fetches everything.
  EXPECT_EQ(QueryClassCost(RectClass::kAD, nd, Ordering::kAbcd, alpha), 100);
  // AC skips B at cost alpha*n_B; BD skips C.
  EXPECT_EQ(QueryClassCost(RectClass::kAC, nd, Ordering::kAbcd, alpha),
            10 + 0.5 * 20 + 30);
  EXPECT_EQ(QueryClassCost(RectClass::kBD, nd, Ordering::kAbcd, alpha),
            20 + 0.5 * 30 + 40);
  // AB and CD are adjacent in curve order: no skipped quadrant.
  EXPECT_EQ(QueryClassCost(RectClass::kAB, nd, Ordering::kAbcd, alpha), 30);
  EXPECT_EQ(QueryClassCost(RectClass::kCD, nd, Ordering::kAbcd, alpha), 70);
}

TEST(CostModelTest, Eq2HandComputedAcbd) {
  const QuadCounts nd = Counts(10, 20, 30, 40);
  const double alpha = 0.1;
  // Under A,C,B,D: AB skips C; CD skips B; AC and BD adjacent.
  EXPECT_EQ(QueryClassCost(RectClass::kAB, nd, Ordering::kAcbd, alpha),
            10 + 0.1 * 30 + 20);
  EXPECT_EQ(QueryClassCost(RectClass::kCD, nd, Ordering::kAcbd, alpha),
            30 + 0.1 * 20 + 40);
  EXPECT_EQ(QueryClassCost(RectClass::kAC, nd, Ordering::kAcbd, alpha), 40);
  EXPECT_EQ(QueryClassCost(RectClass::kBD, nd, Ordering::kAcbd, alpha), 60);
  EXPECT_EQ(QueryClassCost(RectClass::kAD, nd, Ordering::kAcbd, alpha), 100);
}

TEST(CostModelTest, GreedyCostAggregatesClassCounts) {
  const QuadCounts nd = Counts(10, 20, 30, 40);
  ClassCounts qc;
  qc[RectClass::kAA] = 2;
  qc[RectClass::kAC] = 3;
  const double alpha = 0.5;
  EXPECT_EQ(GreedyCost(nd, qc, Ordering::kAbcd, alpha),
            2 * 10 + 3 * (10 + 0.5 * 20 + 30));
}

TEST(CostModelTest, OrderingChoiceFollowsQueryShape) {
  // Vertical strip queries (AC class) prefer acbd, which makes A and C
  // adjacent; horizontal strips (AB) prefer abcd.
  const QuadCounts nd = Counts(25, 25, 25, 25);
  ClassCounts vertical;
  vertical[RectClass::kAC] = 10;
  EXPECT_EQ(BestOrdering(nd, vertical, 0.5).ordering, Ordering::kAcbd);
  ClassCounts horizontal;
  horizontal[RectClass::kAB] = 10;
  EXPECT_EQ(BestOrdering(nd, horizontal, 0.5).ordering, Ordering::kAbcd);
}

TEST(CostModelTest, AlphaZeroMakesSkipsFree) {
  const QuadCounts nd = Counts(10, 1000, 10, 10);
  EXPECT_EQ(QueryClassCost(RectClass::kAC, nd, Ordering::kAbcd, 0.0), 20);
  // With alpha = 1 a skipped quadrant costs as much as scanning it.
  EXPECT_EQ(QueryClassCost(RectClass::kAC, nd, Ordering::kAbcd, 1.0), 1020);
}

TEST(CostModelTest, SymmetricOrderingsTieOnSymmetricLoads) {
  const QuadCounts nd = Counts(25, 25, 25, 25);
  ClassCounts qc;
  qc[RectClass::kAD] = 5;
  qc[RectClass::kAA] = 5;
  const double abcd = GreedyCost(nd, qc, Ordering::kAbcd, 0.5);
  const double acbd = GreedyCost(nd, qc, Ordering::kAcbd, 0.5);
  EXPECT_EQ(abcd, acbd);
  // Ties resolve to abcd (the base ordering).
  EXPECT_EQ(BestOrdering(nd, qc, 0.5).ordering, Ordering::kAbcd);
}

// Exact vs estimated providers must agree in expectation.
TEST(CostModelTest, ExactAndEstimatedCountsAgreeApproximately) {
  const TestScenario s = MakeScenario(Region::kCaliNev, 20000, 4000, 1e-3, 91);
  ExactCountProvider exact(&s.workload);
  EstimatorOptions eo;
  eo.seed = 92;
  EstimatedCountProvider est(s.data, s.workload, eo);

  const Rect cell = Rect::Of(0, 0, 1, 1);
  Rng rng(93);
  double data_err = 0.0, query_err = 0.0;
  int trials = 0;
  for (int i = 0; i < 30; ++i) {
    const double sx = rng.Uniform(0.2, 0.8);
    const double sy = rng.Uniform(0.2, 0.8);
    const QuadCounts en = exact.CountData(s.data.points.data(),
                                          s.data.points.size(), cell, sx, sy);
    const QuadCounts an = est.CountData(s.data.points.data(),
                                        s.data.points.size(), cell, sx, sy);
    // Note: the estimated provider counts exactly for small spans; force
    // the forest path by passing a null span.
    const QuadCounts fn = est.CountData(nullptr, 1 << 30, cell, sx, sy);
    for (int q = 0; q < 4; ++q) {
      data_err += std::abs(fn.n[q] - en.n[q]);
      (void)an;
    }
    const ClassCounts eq = exact.CountQueries(cell, sx, sy);
    const ClassCounts aq = est.CountQueries(cell, sx, sy);
    for (int c = 0; c < 9; ++c) {
      query_err += std::abs(aq.q[c] - eq.q[c]);
    }
    ++trials;
  }
  // Mean absolute error per quadrant under ~8% of the dataset size and
  // per class under ~10% of the workload size.
  EXPECT_LT(data_err / (trials * 4), 0.08 * s.data.size());
  EXPECT_LT(query_err / (trials * 9), 0.10 * s.workload.size());
}

}  // namespace
}  // namespace wazi

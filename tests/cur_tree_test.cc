#include "baselines/cur_tree.h"

#include <gtest/gtest.h>

#include <numeric>

#include "baselines/str_rtree.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(WeightedStrTileTest, UniformWeightsBehaveLikeStr) {
  std::vector<Point> pts = MakeUniformDataset(8000, 151).points;
  std::vector<double> weights(pts.size(), 1.0);
  const std::vector<uint32_t> offsets = WeightedStrTile(&pts, &weights, 100);
  EXPECT_EQ(offsets.back(), 8000u);
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    ASSERT_LE(offsets[i + 1] - offsets[i], 100u);
    ASSERT_LT(offsets[i], offsets[i + 1]);
  }
}

TEST(WeightedStrTileTest, HotRegionGetsSmallerLeaves) {
  // Left third carries 10x weight; its leaves must be smaller on average.
  std::vector<Point> pts = MakeUniformDataset(12000, 152).points;
  std::vector<double> weights;
  weights.reserve(pts.size());
  for (const Point& p : pts) weights.push_back(p.x < 0.33 ? 10.0 : 1.0);
  std::vector<Point> pts_copy = pts;
  const std::vector<uint32_t> offsets =
      WeightedStrTile(&pts_copy, &weights, 128);

  double hot_total = 0.0, cold_total = 0.0;
  int hot_leaves = 0, cold_leaves = 0;
  for (size_t i = 0; i + 1 < offsets.size(); ++i) {
    double mean_x = 0.0;
    for (uint32_t j = offsets[i]; j < offsets[i + 1]; ++j) {
      mean_x += pts_copy[j].x;
    }
    mean_x /= (offsets[i + 1] - offsets[i]);
    if (mean_x < 0.33) {
      hot_total += offsets[i + 1] - offsets[i];
      ++hot_leaves;
    } else if (mean_x > 0.4) {
      cold_total += offsets[i + 1] - offsets[i];
      ++cold_leaves;
    }
  }
  ASSERT_GT(hot_leaves, 0);
  ASSERT_GT(cold_leaves, 0);
  EXPECT_LT(hot_total / hot_leaves, 0.7 * cold_total / cold_leaves)
      << "hot leaves should hold fewer points";
}

TEST(CurTreeTest, CorrectOnSkewedWorkload) {
  const TestScenario s = MakeScenario(Region::kIberia, 8000, 400, 2e-3, 153);
  CurTree index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(s.data, s.workload, opts);
  for (size_t qi = 0; qi < 150; ++qi) {
    const Rect& q = s.workload.queries[qi];
    std::vector<Point> got;
    index.RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(s.data, q));
  }
}

TEST(CurTreeTest, WorkloadAwarenessReducesScanWork) {
  // Against the trained workload, CUR should scan fewer points per query
  // than plain STR on heavily skewed queries.
  const TestScenario s =
      MakeScenario(Region::kNewYork, 30000, 2000, kSelectivityMid1, 154);
  BuildOptions opts;
  opts.leaf_capacity = 256;
  CurTree cur;
  StrRTree str;
  cur.Build(s.data, s.workload, opts);
  str.Build(s.data, s.workload, opts);
  std::vector<Point> sink;
  cur.stats().Reset();
  str.stats().Reset();
  for (const Rect& q : s.workload.queries) {
    sink.clear();
    cur.RangeQuery(q, &sink);
    sink.clear();
    str.RangeQuery(q, &sink);
  }
  EXPECT_LT(cur.stats().points_scanned, str.stats().points_scanned);
}

TEST(CurTreeTest, EmptyWorkloadFallsBackToUnitWeights) {
  const Dataset data = MakeUniformDataset(3000, 155);
  Workload empty;
  CurTree index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(data, empty, opts);
  const Rect q = Rect::Of(0.2, 0.2, 0.4, 0.4);
  std::vector<Point> got;
  index.RangeQuery(q, &got);
  EXPECT_EQ(SortedIds(got), TruthIds(data, q));
}

}  // namespace
}  // namespace wazi

#include "workload/dataset.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(DatasetTest, ComputeBounds) {
  std::vector<Point> pts = {{0.2, 0.8, 0}, {0.5, 0.1, 1}, {0.9, 0.4, 2}};
  const Rect b = ComputeBounds(pts);
  EXPECT_EQ(b, Rect::Of(0.2, 0.1, 0.9, 0.8));
  EXPECT_TRUE(ComputeBounds({}).empty());
}

TEST(DatasetTest, AssignIdsSequential) {
  std::vector<Point> pts(100);
  AssignIds(&pts);
  for (size_t i = 0; i < pts.size(); ++i) {
    EXPECT_EQ(pts[i].id, static_cast<int64_t>(i));
  }
}

TEST(DatasetTest, ScanRangeAndCountAgree) {
  const Dataset data = MakeUniformDataset(5000, 81);
  const Rect q = Rect::Of(0.2, 0.3, 0.5, 0.7);
  const std::vector<Point> hits = ScanRange(data, q);
  EXPECT_EQ(static_cast<int64_t>(hits.size()), CountRange(data, q));
  for (const Point& p : hits) EXPECT_TRUE(q.Contains(p));
  // Uniform data: expected fraction = area.
  const double expected = 0.3 * 0.4 * 5000;
  EXPECT_NEAR(static_cast<double>(hits.size()), expected, 0.25 * expected);
}

}  // namespace
}  // namespace wazi

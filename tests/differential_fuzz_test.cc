// Differential fuzzing: random build configurations, random data shapes
// and random query rectangles, all indexes checked against the brute-
// force reference. Complements the structured parameterized suites with
// unstructured randomness.

#include <gtest/gtest.h>

#include "common/simd.h"
#include "index/spatial_index.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

// Kernel tiers to route the scans through: the leaf filter is vectorized
// (common/simd.h), so the fuzz sweeps every tier the host supports to
// catch a tier-specific divergence with real index traversals on top.
std::vector<simd::Level> KernelLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (static_cast<int>(simd::DetectedLevel()) >=
      static_cast<int>(simd::Level::kSse2)) {
    levels.push_back(simd::Level::kSse2);
  }
  if (static_cast<int>(simd::DetectedLevel()) >=
      static_cast<int>(simd::Level::kAvx2)) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

Dataset RandomDataset(Rng& rng) {
  const int kind = static_cast<int>(rng.NextBelow(4));
  const size_t n = 200 + rng.NextBelow(3000);
  switch (kind) {
    case 0:
      return GenerateRegion(static_cast<Region>(rng.NextBelow(4)), n,
                            rng.NextU64());
    case 1: return MakeUniformDataset(n, rng.NextU64());
    case 2: return MakeDegenerateDataset(n, rng.NextU64());
    default: {
      // Tight cluster plus far outliers: stresses MBR vs cell handling.
      Dataset data;
      data.name = "cluster+outliers";
      for (size_t i = 0; i < n; ++i) {
        if (rng.NextDouble() < 0.95) {
          data.points.push_back(Point{0.5 + 0.01 * rng.NextGaussian(),
                                      0.5 + 0.01 * rng.NextGaussian(), 0});
        } else {
          data.points.push_back(
              Point{rng.NextDouble(), rng.NextDouble(), 0});
        }
      }
      AssignIds(&data.points);
      data.bounds = Rect::Of(0, 0, 1, 1);
      return data;
    }
  }
}

Rect RandomQuery(Rng& rng) {
  const double x0 = rng.Uniform(-0.1, 1.05);
  const double y0 = rng.Uniform(-0.1, 1.05);
  // Mix of tiny, thin, and large windows.
  const double w = rng.NextDouble() < 0.3 ? rng.Uniform(0.0, 0.01)
                                          : rng.Uniform(0.0, 0.5);
  const double h = rng.NextDouble() < 0.3 ? rng.Uniform(0.0, 0.01)
                                          : rng.Uniform(0.0, 0.5);
  return Rect::Of(x0, y0, x0 + w, y0 + h);
}

class DifferentialFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialFuzzTest, AllIndexesAgreeWithReference) {
  Rng rng(GetParam() * 0x9e3779b97f4a7c15ULL + 1);
  const Dataset data = RandomDataset(rng);
  QueryGenOptions qopts;
  qopts.num_queries = 100 + rng.NextBelow(200);
  qopts.selectivity = rng.Uniform(1e-5, 1e-2);
  qopts.seed = rng.NextU64();
  const Workload workload = GenerateUniformWorkload(data.bounds, qopts);

  BuildOptions opts;
  opts.leaf_capacity = 16 << rng.NextBelow(4);  // 16..128
  opts.kappa = 4 + static_cast<int>(rng.NextBelow(16));
  opts.seed = rng.NextU64();
  opts.use_estimators = rng.NextDouble() < 0.7;
  opts.corner_candidates = rng.NextDouble() < 0.7;
  opts.rank_bits = 8 + static_cast<int>(rng.NextBelow(9));
  opts.pgm_epsilon = 4 + static_cast<int>(rng.NextBelow(64));

  const std::vector<simd::Level> levels = KernelLevels();
  for (const std::string& name : AllIndexNames()) {
    auto index = MakeIndex(name);
    index->Build(data, workload, opts);
    for (int i = 0; i < 60; ++i) {
      const Rect q = RandomQuery(rng);
      // Route the same query through every kernel tier; all must agree
      // with the brute-force reference (and hence with each other).
      const std::vector<int64_t> truth = TruthIds(data, q);
      for (const simd::Level level : levels) {
        simd::SetLevelOverride(level);
        std::vector<Point> got;
        index->RangeQuery(q, &got);
        ASSERT_EQ(SortedIds(got), truth)
            << name << " on " << data.name << " L=" << opts.leaf_capacity
            << " kernel=" << simd::LevelName(level) << " query "
            << q.DebugString();
      }
      simd::SetLevelOverride(simd::Level::kAvx2);  // restore full dispatch
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace wazi

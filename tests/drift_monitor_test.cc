#include "core/drift_monitor.h"

#include <gtest/gtest.h>

#include "core/wazi.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(DriftMonitorTest, StableWorkloadNeverTriggers) {
  DriftMonitorOptions opts;
  opts.calibration_queries = 100;
  DriftMonitor monitor(opts);
  Rng rng(501);
  for (int i = 0; i < 5000; ++i) {
    // Work per result hovers around 10 with noise.
    const int64_t results = 50 + static_cast<int64_t>(rng.NextBelow(20));
    const int64_t scanned = results * 10 + static_cast<int64_t>(rng.NextBelow(50));
    monitor.Observe(scanned, results);
  }
  EXPECT_FALSE(monitor.rebuild_recommended());
  EXPECT_NEAR(monitor.drift_ratio(), 1.0, 0.15);
}

TEST(DriftMonitorTest, SustainedDegradationTriggers) {
  DriftMonitorOptions opts;
  opts.calibration_queries = 100;
  opts.patience = 50;
  DriftMonitor monitor(opts);
  for (int i = 0; i < 200; ++i) monitor.Observe(500, 50);  // work 500/51~10
  EXPECT_FALSE(monitor.rebuild_recommended());
  for (int i = 0; i < 2000 && !monitor.rebuild_recommended(); ++i) {
    monitor.Observe(2000, 50);  // work quadruples
  }
  EXPECT_TRUE(monitor.rebuild_recommended());
  EXPECT_GT(monitor.drift_ratio(), 1.5);
}

TEST(DriftMonitorTest, TransientSpikeDoesNotTrigger) {
  // A 50-query spike at 10x work raises the EWMA above threshold for
  // roughly 250 queries (rise + exponential decay at alpha=0.01), which
  // stays under the 400-query patience window.
  DriftMonitorOptions opts;
  opts.calibration_queries = 100;
  opts.patience = 400;
  DriftMonitor monitor(opts);
  for (int i = 0; i < 150; ++i) monitor.Observe(500, 50);
  for (int i = 0; i < 50; ++i) monitor.Observe(5000, 50);  // short spike
  for (int i = 0; i < 3000; ++i) monitor.Observe(500, 50);  // recovers
  EXPECT_FALSE(monitor.rebuild_recommended());
}

TEST(DriftMonitorTest, ResetClearsState) {
  DriftMonitorOptions opts;
  opts.calibration_queries = 10;
  opts.patience = 10;
  DriftMonitor monitor(opts);
  for (int i = 0; i < 20; ++i) monitor.Observe(100, 10);
  for (int i = 0; i < 500; ++i) monitor.Observe(1000, 10);
  ASSERT_TRUE(monitor.rebuild_recommended());
  monitor.ResetAfterRebuild();
  EXPECT_FALSE(monitor.rebuild_recommended());
  EXPECT_EQ(monitor.queries_observed(), 0);
}

// End-to-end: a WaZI index under real drift raises the flag; after a
// rebuild on the new workload the monitor calms down.
TEST(DriftMonitorTest, DetectsRealWorkloadDrift) {
  const TestScenario s =
      MakeScenario(Region::kNewYork, 30000, 2000, kSelectivityMid1, 502);
  QueryGenOptions qopts;
  qopts.num_queries = 2000;
  qopts.selectivity = kSelectivityMid1;
  qopts.seed = 777;  // different venues: differently-skewed workload
  const Workload drifted =
      GenerateCheckinWorkload(Region::kNewYork, s.data.bounds, qopts);

  Wazi index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(s.data, s.workload, opts);

  DriftMonitorOptions mopts;
  mopts.calibration_queries = 400;
  mopts.patience = 100;
  mopts.degradation_factor = 1.3;
  DriftMonitor monitor(mopts);

  auto run = [&](const Workload& w) {
    std::vector<Point> sink;
    for (const Rect& q : w.queries) {
      QueryStats qs;
      sink.clear();
      index.RangeQuery(q, &sink, &qs);
      monitor.Observe(qs.points_scanned, qs.results);
    }
  };
  run(s.workload);  // calibrate + stable phase
  const double stable_ratio = monitor.drift_ratio();
  EXPECT_LT(stable_ratio, 1.3);
  run(drifted);  // drift phase
  EXPECT_GT(monitor.drift_ratio(), stable_ratio);

  if (monitor.rebuild_recommended()) {
    index.Build(s.data, drifted, opts);
    monitor.ResetAfterRebuild();
    run(drifted);
    EXPECT_LT(monitor.drift_ratio(), 1.3);
  }
}

}  // namespace
}  // namespace wazi

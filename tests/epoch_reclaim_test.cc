// Epoch-based reclamation (serve/epoch.h) under the serving engine's real
// lifecycles: exact limbo accounting on private domains, the parked-reader
// / copy-on-stall interplay (a stamped-but-idle reader must trigger the
// writer's stall fallback, never block reclamation of pre-stamp limbo or
// writer progress), non-blocking VersionedIndex destruction with a reader
// still parked, and a multi-thread stress across forced repartitions.
// Every test here must stay clean under TSan and ASan/UBSan — the CI
// sanitizer jobs run this binary — and the accounting invariant
// (retired == reclaimed + limbo at every step) is checked explicitly, so
// a lost or double-freed limbo entry fails even without a sanitizer.

#include "serve/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/wazi.h"
#include "obs/metrics.h"
#include "serve/index_snapshot.h"
#include "serve/sharded_index.h"
#include "tests/test_util.h"

namespace wazi::serve {
namespace {

IndexFactory WaziFactory() {
  return [] { return std::unique_ptr<SpatialIndex>(new Wazi()); };
}

BuildOptions FastOpts() {
  BuildOptions opts;
  opts.leaf_capacity = 64;
  return opts;
}

// The accounting invariant every retire/reclaim sequence must preserve.
void ExpectAccounting(const EpochDomain& d) {
  EXPECT_EQ(d.retired_total(),
            d.reclaimed_total() + static_cast<int64_t>(d.limbo_size()));
}

TEST(EpochDomainTest, GuardNestingSharesOneStamp) {
  EpochDomain domain;
  EXPECT_EQ(domain.active_readers(), 0);
  {
    EpochDomain::Guard outer = domain.Enter();
    EXPECT_EQ(domain.active_readers(), 1);
    {
      // Nested sections reuse the outer stamp: a query acquiring two
      // shards of one topology pins one epoch, not two.
      EpochDomain::Guard inner = domain.Enter();
      EXPECT_EQ(domain.active_readers(), 1);
    }
    // Inner release must NOT clear the stamp while the outer guard lives.
    EXPECT_EQ(domain.active_readers(), 1);
    EXPECT_NE(domain.min_active_epoch(), UINT64_MAX);
  }
  EXPECT_EQ(domain.active_readers(), 0);
  EXPECT_EQ(domain.min_active_epoch(), UINT64_MAX);
}

TEST(EpochDomainTest, ExactLimboAccountingAcrossRetireAndReclaim) {
  EpochDomain domain;
  std::atomic<int> freed{0};

  // Retire with no readers: reclaimable immediately.
  for (int i = 0; i < 3; ++i) {
    domain.Retire(&freed, [](void* p) {
      static_cast<std::atomic<int>*>(p)->fetch_add(1);
    });
    ExpectAccounting(domain);
  }
  EXPECT_EQ(domain.limbo_size(), 3u);
  EXPECT_EQ(domain.Reclaim(), 3u);
  EXPECT_EQ(freed.load(), 3);
  EXPECT_EQ(domain.limbo_size(), 0u);
  ExpectAccounting(domain);

  // A stamped reader pins everything retired at or after its stamp.
  EpochDomain::Guard guard = domain.Enter();
  for (int i = 0; i < 5; ++i) {
    domain.Retire(&freed, [](void* p) {
      static_cast<std::atomic<int>*>(p)->fetch_add(1);
    });
  }
  EXPECT_EQ(domain.Reclaim(), 0u) << "reclaimed under a stamped reader";
  EXPECT_EQ(domain.limbo_size(), 5u);
  ExpectAccounting(domain);

  // A reader that enters AFTER a retire does not pin it: its stamp is
  // already past the retire epoch.
  std::thread late([&] {
    EpochDomain::Guard late_guard = domain.Enter();
    // This late stamp alone must not keep the 5 pinned entries alive once
    // the first reader leaves — but while BOTH are stamped the minimum is
    // still the first reader's epoch, so nothing frees yet.
    EXPECT_EQ(domain.active_readers(), 2);
  });
  late.join();

  guard.Release();
  EXPECT_EQ(domain.Reclaim(), 5u);
  EXPECT_EQ(freed.load(), 8);
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(domain.retired_total(), domain.reclaimed_total());
  ExpectAccounting(domain);
}

TEST(EpochDomainTest, LateReaderDoesNotPinEarlierRetires) {
  EpochDomain domain;
  std::atomic<int> freed{0};
  domain.Retire(&freed, [](void* p) {
    static_cast<std::atomic<int>*>(p)->fetch_add(1);
  });
  // Enter AFTER the retire: the stamp is past the entry's retire epoch,
  // so reclamation proceeds even while this reader stays parked.
  EpochDomain::Guard parked = domain.Enter();
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_EQ(freed.load(), 1);
  ExpectAccounting(domain);
}

TEST(EpochReclaimTest, ParkedReaderTriggersCopyOnStallNotReclamationStall) {
  EpochDomain domain;
  obs::MetricsRegistry registry;
  obs::Gauge* zombies = registry.GetGauge("serve_zombie_instances");

  Dataset data = MakeUniformDataset(3000, 91);
  QueryGenOptions qopts;
  qopts.num_queries = 40;
  qopts.selectivity = 1e-2;
  qopts.seed = 9;
  const Workload workload = GenerateUniformWorkload(data.bounds, qopts);

  VersionedIndexOptions vopts;
  vopts.epoch_domain = &domain;
  vopts.writer_stall_ms = 25;  // fast stall fallback for the test
  vopts.zombie_gauge = zombies;
  vopts.track_points = true;
  {
    VersionedIndex index(WaziFactory(), data, workload, FastOpts(), vopts);

    // Warm-up churn with no parked readers: retires drain on their own.
    std::vector<UpdateOp> batch;
    for (int i = 0; i < 8; ++i) {
      batch.push_back(UpdateOp::Insert(Point{0.1 + 0.01 * i, 0.2, 500000 + i}));
    }
    index.ApplyBatch(batch);
    index.ReapRetired();
    ExpectAccounting(domain);

    // Park a reader on the live snapshot from another thread.
    std::mutex mu;
    std::condition_variable cv;
    enum class Stage { kStart, kParked, kReleaseRequested, kDone };
    Stage stage = Stage::kStart;
    uint64_t parked_version = 0;
    std::thread reader([&] {
      SnapshotRef snap = index.Acquire();
      {
        std::lock_guard<std::mutex> lock(mu);
        parked_version = snap->version();
        stage = Stage::kParked;
      }
      cv.notify_all();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return stage == Stage::kReleaseRequested; });
      }
      // The writer stalled out and replaced the instance underneath the
      // published pointer; the PARKED snapshot must still serve its
      // original membership untouched (the zombie instance).
      std::vector<Point> hits;
      QueryStats qs;
      snap->index().RangeQuery(workload.queries[0], &hits, &qs);
      EXPECT_EQ(SortedIds(hits), BruteIds(*snap->points(),
                                          workload.queries[0]));
      snap.Release();
      {
        std::lock_guard<std::mutex> lock(mu);
        stage = Stage::kDone;
      }
      cv.notify_all();
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return stage == Stage::kParked; });
    }

    // Two batches against the parked reader: the writer must make
    // progress via copy-on-stall instead of waiting forever.
    const uint64_t version_before = index.version();
    index.ApplyBatch({UpdateOp::Insert(Point{0.5, 0.5, 600001})});
    index.ApplyBatch({UpdateOp::Insert(Point{0.6, 0.6, 600002})});
    EXPECT_GT(index.version(), version_before);
    EXPECT_GE(index.stall_copies(), 1);
    EXPECT_GE(zombies->value(), 1);

    // The parked stamp pins the snapshots retired after it...
    EXPECT_GT(domain.limbo_size(), 0u);
    ExpectAccounting(domain);
    // ...but reclamation itself never blocks: Reclaim returns (freeing
    // nothing newer than the stamp) while the reader stays parked.
    (void)domain.Reclaim();
    ExpectAccounting(domain);

    {
      std::lock_guard<std::mutex> lock(mu);
      stage = Stage::kReleaseRequested;
    }
    cv.notify_all();
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return stage == Stage::kDone; });
    }
    reader.join();
    EXPECT_GT(parked_version, 0u);

    // Quiesced: everything drains — limbo empties, zombies reap.
    index.ReapRetired();
    EXPECT_EQ(domain.limbo_size(), 0u);
    EXPECT_EQ(domain.retired_total(), domain.reclaimed_total());
    EXPECT_EQ(zombies->value(), 0);
  }
  // Destruction retired the remaining live state into the (empty-reader)
  // domain and reclaimed it: nothing may be left behind.
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(domain.retired_total(), domain.reclaimed_total());
}

TEST(EpochReclaimTest, DestructionDoesNotBlockOnParkedReader) {
  EpochDomain domain;
  Dataset data = MakeUniformDataset(1500, 19);
  QueryGenOptions qopts;
  qopts.num_queries = 10;
  qopts.selectivity = 1e-2;
  qopts.seed = 3;
  const Workload workload = GenerateUniformWorkload(data.bounds, qopts);

  VersionedIndexOptions vopts;
  vopts.epoch_domain = &domain;
  vopts.track_points = true;

  std::mutex mu;
  std::condition_variable cv;
  bool parked = false;
  bool release_requested = false;
  std::thread reader;
  {
    auto index = std::make_unique<VersionedIndex>(WaziFactory(), data,
                                                  workload, FastOpts(), vopts);
    reader = std::thread([&, idx = index.get()] {
      SnapshotRef snap = idx->Acquire();
      {
        std::lock_guard<std::mutex> lock(mu);
        parked = true;
      }
      cv.notify_all();
      {
        std::unique_lock<std::mutex> lock(mu);
        cv.wait(lock, [&] { return release_requested; });
      }
      // The owning VersionedIndex is GONE; the stamped reader still owns
      // a consistent view (snapshot + instance parked in limbo).
      std::vector<Point> hits;
      QueryStats qs;
      snap->index().RangeQuery(workload.queries[0], &hits, &qs);
      EXPECT_EQ(SortedIds(hits),
                BruteIds(*snap->points(), workload.queries[0]));
      snap.Release();
    });
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [&] { return parked; });
    }
    // Destruction with a parked reader must return promptly (retire to
    // limbo, not wait) — a reader-thread release racing a blocking
    // destructor was the deadlock this design removes.
    index.reset();
  }
  EXPECT_GT(domain.limbo_size(), 0u) << "parked reader should pin the state";
  {
    std::lock_guard<std::mutex> lock(mu);
    release_requested = true;
  }
  cv.notify_all();
  reader.join();
  (void)domain.Reclaim();
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(domain.retired_total(), domain.reclaimed_total());
}

TEST(EpochReclaimTest, StressAcrossForcedRepartitions) {
  EpochDomain domain;
  Dataset data = MakeUniformDataset(6000, 55);
  data = DedupeCoords(data);
  QueryGenOptions qopts;
  qopts.num_queries = 120;
  qopts.selectivity = 2e-3;
  qopts.seed = 17;
  const Workload workload = GenerateUniformWorkload(data.bounds, qopts);

  ShardedIndexOptions sopts;
  sopts.num_shards = 2;
  sopts.versioned.epoch_domain = &domain;
  sopts.versioned.writer_stall_ms = 25;
  std::atomic<int64_t> mismatches{0};
  {
    ShardedVersionedIndex index(WaziFactory(), data, workload, FastOpts(),
                                sopts);

    std::atomic<bool> stop{false};
    constexpr int kReaders = 4;
    std::vector<std::thread> readers;
    for (int r = 0; r < kReaders; ++r) {
      readers.emplace_back([&, r] {
        int i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          const Rect& q = workload.queries[(r * 31 + i++) %
                                           workload.queries.size()];
          if (i % 5 == 0) {
            // Periodically hold a whole snapshot set across several
            // queries — the parked-reader shape a batch executor has.
            ShardedVersionedIndex::SnapshotSet set;
            index.AcquireAll(&set);
            for (int j = 0; j < 3; ++j) {
              const Rect& qq = workload.queries[(r * 31 + i + j) %
                                                workload.queries.size()];
              std::vector<Point> hits;
              QueryStats qs;
              index.RangeQuery(qq, &hits, &qs, nullptr, nullptr, &set);
              if (SortedIds(hits) != TruthIds(data, qq)) {
                mismatches.fetch_add(1, std::memory_order_relaxed);
              }
            }
          } else {
            std::vector<Point> hits;
            QueryStats qs;
            index.RangeQuery(q, &hits, &qs);
            if (SortedIds(hits) != TruthIds(data, q)) {
              mismatches.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
      });
    }

    // Force repartitions under the readers: each publish retires the old
    // generation's shards into the domain once the last reader moves on —
    // often ON a reader thread, exercising the non-blocking destructor.
    const int kRepartitions = 6;
    for (int rep = 0; rep < kRepartitions; ++rep) {
      const auto old_topo = index.AcquireTopology();
      const int new_shards = 2 + (rep % 3);  // 2 -> 3 -> 4 -> 2 ...
      auto next = index.BuildNextTopology(data.points, workload, new_shards,
                                          old_topo->domain, old_topo->epoch + 1,
                                          index.version());
      index.PublishTopology(std::move(next));
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      ExpectAccounting(domain);
    }

    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : readers) t.join();
    EXPECT_EQ(mismatches.load(), 0);
    EXPECT_EQ(index.epoch(), 1u + kRepartitions);
    EXPECT_GT(domain.retired_total(), 0);
    ExpectAccounting(domain);
  }
  // Facade destroyed with no readers left: the domain must drain fully.
  (void)domain.Reclaim();
  EXPECT_EQ(domain.limbo_size(), 0u);
  EXPECT_EQ(domain.retired_total(), domain.reclaimed_total());
}

}  // namespace
}  // namespace wazi::serve

#include "baselines/flood.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(FloodTest, CorrectAcrossRegions) {
  for (Region region : AllRegions()) {
    const TestScenario s = MakeScenario(region, 6000, 300, 2e-3, 161);
    Flood index;
    BuildOptions opts;
    opts.leaf_capacity = 64;
    index.Build(s.data, s.workload, opts);
    for (size_t qi = 0; qi < 100; ++qi) {
      const Rect& q = s.workload.queries[qi];
      std::vector<Point> got;
      index.RangeQuery(q, &got);
      ASSERT_EQ(SortedIds(got), TruthIds(s.data, q)) << RegionName(region);
    }
  }
}

TEST(FloodTest, ColumnsAreEquiDepthish) {
  const Dataset data = GenerateRegion(Region::kCaliNev, 20000, 162);
  Workload w;
  QueryGenOptions qopts;
  qopts.num_queries = 400;
  w = GenerateCheckinWorkload(Region::kCaliNev, data.bounds, qopts);
  Flood index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(data, w, opts);
  EXPECT_GT(index.num_columns(), 1u);
}

TEST(FloodTest, ExtremeAspectQueriesScanTightRanges) {
  // With per-column binary search on the sort dimension, even extreme
  // aspect-ratio queries should scan points close to the true result
  // count (the layout bake-off may pick either orientation; both trim).
  const Dataset data = MakeUniformDataset(30000, 163);
  Workload wide;
  wide.selectivity = 0.01;
  Rng rng(164);
  for (int i = 0; i < 400; ++i) {
    const double x0 = rng.Uniform(0.0, 0.5);
    const double y0 = rng.Uniform(0.0, 0.97);
    wide.queries.push_back(Rect::Of(x0, y0, x0 + 0.5, y0 + 0.02));
  }
  Flood index;
  BuildOptions opts;
  opts.leaf_capacity = 256;
  index.Build(data, wide, opts);
  index.stats().Reset();
  int64_t results = 0;
  for (size_t qi = 0; qi < 100; ++qi) {
    std::vector<Point> got;
    index.RangeQuery(wide.queries[qi], &got);
    ASSERT_EQ(SortedIds(got), TruthIds(data, wide.queries[qi]));
    results += static_cast<int64_t>(got.size());
  }
  EXPECT_LT(index.stats().points_scanned, 3 * results);
}

TEST(FloodTest, InsertKeepsColumnsSorted) {
  const TestScenario s = MakeScenario(Region::kJapan, 4000, 200, 1e-3, 165);
  Flood index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(s.data, s.workload, opts);
  Dataset augmented = s.data;
  const std::vector<Point> stream =
      GenerateInsertStream(s.data.bounds, 2000, 900000, 166);
  for (const Point& p : stream) {
    ASSERT_TRUE(index.Insert(p));
    augmented.points.push_back(p);
  }
  for (size_t qi = 0; qi < 80; ++qi) {
    const Rect& q = s.workload.queries[qi];
    std::vector<Point> got;
    index.RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(augmented, q));
  }
}

TEST(FloodTest, ProjectionSpansAreTight) {
  // Flood's projection must already be trimmed to the sort-dimension
  // range: scanned points should be close to results for thin queries.
  const Dataset data = MakeUniformDataset(20000, 167);
  QueryGenOptions qopts;
  qopts.num_queries = 200;
  qopts.selectivity = 1e-3;
  const Workload w = GenerateUniformWorkload(data.bounds, qopts);
  Flood index;
  BuildOptions opts;
  index.Build(data, w, opts);
  for (size_t qi = 0; qi < 50; ++qi) {
    Projection proj;
    index.Project(w.queries[qi], &proj);
    size_t projected = 0;
    for (const Span& s : proj) projected += s.size();
    const int64_t truth = CountRange(data, w.queries[qi]);
    // Each projected span only filters the partition dimension.
    EXPECT_LE(static_cast<int64_t>(truth), static_cast<int64_t>(projected));
  }
}

}  // namespace
}  // namespace wazi

#include "common/geometry.h"

#include <gtest/gtest.h>

namespace wazi {
namespace {

TEST(RectTest, DefaultIsEmpty) {
  Rect r;
  EXPECT_TRUE(r.empty());
  EXPECT_EQ(r.Area(), 0.0);
  EXPECT_FALSE(r.Contains(Point{0, 0, 0}));
  EXPECT_FALSE(r.Overlaps(Rect::Of(-1, -1, 1, 1)));
}

TEST(RectTest, ContainsPointOnBoundary) {
  const Rect r = Rect::Of(0, 0, 1, 1);
  EXPECT_TRUE(r.Contains(Point{0, 0, 0}));
  EXPECT_TRUE(r.Contains(Point{1, 1, 0}));
  EXPECT_TRUE(r.Contains(Point{0.5, 1, 0}));
  EXPECT_FALSE(r.Contains(Point{1.0001, 0.5, 0}));
}

TEST(RectTest, OverlapsIsSymmetricAndClosed) {
  const Rect a = Rect::Of(0, 0, 1, 1);
  const Rect b = Rect::Of(1, 1, 2, 2);  // touches at a corner
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(b.Overlaps(a));
  const Rect c = Rect::Of(1.01, 0, 2, 1);
  EXPECT_FALSE(a.Overlaps(c));
}

TEST(RectTest, ExpandGrowsToCover) {
  Rect r;
  r.Expand(Point{0.3, 0.7, 0});
  EXPECT_FALSE(r.empty());
  EXPECT_EQ(r.min_x, 0.3);
  EXPECT_EQ(r.max_y, 0.7);
  r.Expand(Point{-1, 2, 0});
  EXPECT_TRUE(r.Contains(Point{0.3, 0.7, 0}));
  EXPECT_TRUE(r.Contains(Point{-1, 2, 0}));
}

TEST(RectTest, ExpandWithEmptyRectIsNoop) {
  Rect r = Rect::Of(0, 0, 1, 1);
  r.Expand(Rect{});
  EXPECT_EQ(r, Rect::Of(0, 0, 1, 1));
}

TEST(RectTest, IntersectComputesOverlap) {
  const Rect a = Rect::Of(0, 0, 2, 2);
  const Rect b = Rect::Of(1, 1, 3, 3);
  EXPECT_EQ(a.Intersect(b), Rect::Of(1, 1, 2, 2));
  EXPECT_TRUE(a.Intersect(Rect::Of(5, 5, 6, 6)).empty());
}

TEST(RectTest, ContainsRect) {
  const Rect a = Rect::Of(0, 0, 2, 2);
  EXPECT_TRUE(a.Contains(Rect::Of(0.5, 0.5, 1.5, 1.5)));
  EXPECT_TRUE(a.Contains(a));
  EXPECT_FALSE(a.Contains(Rect::Of(0.5, 0.5, 2.5, 1.5)));
  EXPECT_FALSE(a.Contains(Rect{}));
}

TEST(DominatesTest, StrictAndEqualCases) {
  EXPECT_TRUE(Dominates(Point{1, 1, 0}, Point{0, 0, 0}));
  EXPECT_TRUE(Dominates(Point{1, 1, 0}, Point{1, 0, 0}));
  EXPECT_FALSE(Dominates(Point{1, 1, 0}, Point{1, 1, 0}));  // equal
  EXPECT_FALSE(Dominates(Point{0, 1, 0}, Point{1, 0, 0}));  // incomparable
}

TEST(QuadrantTest, FollowsAlgorithmOneBits) {
  // bitx = x > sx, bity = y > sy; A=(0,0), B=(1,0), C=(0,1), D=(1,1).
  EXPECT_EQ(QuadrantOf(Point{0.4, 0.4, 0}, 0.5, 0.5), Quadrant::kA);
  EXPECT_EQ(QuadrantOf(Point{0.6, 0.4, 0}, 0.5, 0.5), Quadrant::kB);
  EXPECT_EQ(QuadrantOf(Point{0.4, 0.6, 0}, 0.5, 0.5), Quadrant::kC);
  EXPECT_EQ(QuadrantOf(Point{0.6, 0.6, 0}, 0.5, 0.5), Quadrant::kD);
  // The split point itself belongs to A (strict > comparisons).
  EXPECT_EQ(QuadrantOf(Point{0.5, 0.5, 0}, 0.5, 0.5), Quadrant::kA);
}

TEST(ClassifyRectTest, AllNineClasses) {
  const Rect cell = Rect::Of(0, 0, 1, 1);
  const double sx = 0.5, sy = 0.5;
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.1, 0.2, 0.2), cell, sx, sy),
            RectClass::kAA);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.1, 0.9, 0.2), cell, sx, sy),
            RectClass::kAB);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.1, 0.2, 0.9), cell, sx, sy),
            RectClass::kAC);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.1, 0.9, 0.9), cell, sx, sy),
            RectClass::kAD);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.6, 0.1, 0.9, 0.2), cell, sx, sy),
            RectClass::kBB);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.6, 0.1, 0.9, 0.9), cell, sx, sy),
            RectClass::kBD);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.6, 0.2, 0.9), cell, sx, sy),
            RectClass::kCC);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.1, 0.6, 0.9, 0.9), cell, sx, sy),
            RectClass::kCD);
  EXPECT_EQ(ClassifyRect(Rect::Of(0.6, 0.6, 0.9, 0.9), cell, sx, sy),
            RectClass::kDD);
}

TEST(ClassifyRectTest, ClipsToCellAndDetectsOutside) {
  const Rect cell = Rect::Of(0, 0, 1, 1);
  // A query spilling over the whole cell clips to AD.
  EXPECT_EQ(ClassifyRect(Rect::Of(-1, -1, 2, 2), cell, 0.5, 0.5),
            RectClass::kAD);
  // A query overlapping only the right half clips to BD.
  EXPECT_EQ(ClassifyRect(Rect::Of(0.7, -1, 2, 2), cell, 0.5, 0.5),
            RectClass::kBD);
  EXPECT_EQ(ClassifyRect(Rect::Of(2, 2, 3, 3), cell, 0.5, 0.5),
            RectClass::kOutside);
}

TEST(QuadrantRectTest, PartitionsCell) {
  const Rect cell = Rect::Of(0, 0, 1, 1);
  const Rect a = QuadrantRect(cell, 0.3, 0.6, Quadrant::kA);
  const Rect b = QuadrantRect(cell, 0.3, 0.6, Quadrant::kB);
  const Rect c = QuadrantRect(cell, 0.3, 0.6, Quadrant::kC);
  const Rect d = QuadrantRect(cell, 0.3, 0.6, Quadrant::kD);
  EXPECT_EQ(a, Rect::Of(0, 0, 0.3, 0.6));
  EXPECT_EQ(b, Rect::Of(0.3, 0, 1, 0.6));
  EXPECT_EQ(c, Rect::Of(0, 0.6, 0.3, 1));
  EXPECT_EQ(d, Rect::Of(0.3, 0.6, 1, 1));
  EXPECT_NEAR(a.Area() + b.Area() + c.Area() + d.Area(), cell.Area(), 1e-12);
}

}  // namespace
}  // namespace wazi

// The Greedy construction (Alg. 3) must adapt layout to the workload and
// beat (or match) the median Base layout on the training workload's
// retrieval work.

#include "core/builder.h"

#include <gtest/gtest.h>

#include "core/wazi.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

// Total points scanned by a workload on an index variant.
int64_t ScannedPoints(ZIndexVariant& index, const Workload& w) {
  index.stats().Reset();
  std::vector<Point> sink;
  for (const Rect& q : w.queries) {
    sink.clear();
    index.RangeQuery(q, &sink);
  }
  return index.stats().points_scanned;
}

TEST(GreedyBuilderTest, AdaptivePartitioningReducesScannedPoints) {
  // Skewed workload on clustered data: WaZI-style layout must scan fewer
  // points than the median Base layout (this is the paper's core claim;
  // Fig. 13 "excess points").
  const TestScenario s =
      MakeScenario(Region::kNewYork, 30000, 1500, kSelectivityMid2, 101);
  BuildOptions opts;
  opts.leaf_capacity = 128;

  BaseZ base;
  base.Build(s.data, s.workload, opts);
  WaziNoSk adaptive;  // adaptive layout, no skipping: isolates the layout
  adaptive.Build(s.data, s.workload, opts);

  const int64_t base_scanned = ScannedPoints(base, s.workload);
  const int64_t adaptive_scanned = ScannedPoints(adaptive, s.workload);
  EXPECT_LT(adaptive_scanned, base_scanned)
      << "adaptive layout scans more than median layout";
}

TEST(GreedyBuilderTest, MedianCandidateKeepsWaziSaneOnUniform) {
  // On uniform data with uniform queries the adaptive layout cannot be
  // much worse than Base (the median is always a candidate).
  const Dataset data = MakeUniformDataset(20000, 102);
  QueryGenOptions qopts;
  qopts.num_queries = 800;
  qopts.selectivity = kSelectivityMid2;
  const Workload w = GenerateUniformWorkload(data.bounds, qopts);
  BuildOptions opts;
  opts.leaf_capacity = 128;

  BaseZ base;
  base.Build(data, w, opts);
  WaziNoSk adaptive;
  adaptive.Build(data, w, opts);
  const int64_t base_scanned = ScannedPoints(base, w);
  const int64_t adaptive_scanned = ScannedPoints(adaptive, w);
  EXPECT_LT(adaptive_scanned, base_scanned * 3 / 2);
}

TEST(GreedyBuilderTest, UsesBothOrderings) {
  // On a workload with clear vertical-strip structure the builder should
  // pick acbd somewhere.
  const Dataset data = MakeUniformDataset(20000, 103);
  Workload w;
  w.selectivity = 0.01;
  Rng rng(104);
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.Uniform(0.0, 0.95);
    const double y0 = rng.Uniform(0.0, 0.4);
    w.queries.push_back(Rect::Of(x0, y0, x0 + 0.02, y0 + 0.5));  // tall
  }
  BuildOptions opts;
  opts.leaf_capacity = 64;
  Wazi index;
  index.Build(data, w, opts);
  int acbd_nodes = 0;
  const ZIndex& z = index.zindex();
  for (size_t i = 0; i < z.num_nodes(); ++i) {
    const ZIndex::Node& node = z.node(static_cast<int32_t>(i));
    if (!node.is_leaf() && node.ord == Ordering::kAcbd) ++acbd_nodes;
  }
  EXPECT_GT(acbd_nodes, 0) << "tall queries should trigger acbd orderings";
}

TEST(GreedyBuilderTest, CostDecreasesWithTrainingQueries) {
  // Building against the evaluation workload must not be worse than
  // building against an unrelated workload.
  const TestScenario s =
      MakeScenario(Region::kIberia, 25000, 1200, kSelectivityMid2, 105);
  QueryGenOptions other_opts;
  other_opts.num_queries = 1200;
  other_opts.selectivity = kSelectivityMid2;
  other_opts.seed = 999;
  const Workload unrelated =
      GenerateCheckinWorkload(Region::kNewYork, s.data.bounds, other_opts);

  BuildOptions opts;
  opts.leaf_capacity = 128;
  WaziNoSk trained, mistrained;
  trained.Build(s.data, s.workload, opts);
  mistrained.Build(s.data, unrelated, opts);
  EXPECT_LE(ScannedPoints(trained, s.workload),
            ScannedPoints(mistrained, s.workload));
}

TEST(GreedyBuilderTest, MedianSplitComputesMedians) {
  std::vector<Point> pts = {{1, 10, 0}, {2, 20, 1}, {3, 30, 2},
                            {4, 40, 3}, {5, 50, 4}};
  const SplitChoice c = MedianSplit(pts.data(), pts.size());
  EXPECT_EQ(c.sx, 3);
  EXPECT_EQ(c.sy, 30);
  EXPECT_EQ(c.ord, Ordering::kAbcd);
}

TEST(GreedyBuilderTest, RespectsLeafCapacityAndDepth) {
  const TestScenario s = MakeScenario(Region::kJapan, 10000, 300, 1e-3, 106);
  BuildOptions opts;
  opts.leaf_capacity = 64;
  Wazi index;
  index.Build(s.data, s.workload, opts);
  const ZIndex& z = index.zindex();
  size_t total = 0;
  for (int32_t id : z.leaf_dir().InOrder()) {
    total += z.page_store().PageSize(z.leaf_dir().leaf(id).page);
  }
  EXPECT_EQ(total, s.data.size());
  EXPECT_GE(z.num_leaves(), s.data.size() / 64);
}

}  // namespace
}  // namespace wazi

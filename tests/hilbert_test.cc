#include "sfc/hilbert.h"

#include <gtest/gtest.h>

#include <cstdlib>

#include "common/rng.h"

namespace wazi {
namespace {

TEST(HilbertTest, RoundTripSmallOrders) {
  for (int order = 1; order <= 6; ++order) {
    const uint64_t cells = 1ull << (2 * order);
    for (uint64_t d = 0; d < cells; ++d) {
      uint32_t x = 0, y = 0;
      HilbertDecode(order, d, &x, &y);
      EXPECT_EQ(HilbertEncode(order, x, y), d) << "order=" << order;
      EXPECT_LT(x, 1u << order);
      EXPECT_LT(y, 1u << order);
    }
  }
}

TEST(HilbertTest, ConsecutiveCellsAreAdjacent) {
  // The defining locality property: successive curve positions are
  // neighbouring grid cells (Manhattan distance 1).
  const int order = 7;
  uint32_t px = 0, py = 0;
  HilbertDecode(order, 0, &px, &py);
  const uint64_t cells = 1ull << (2 * order);
  for (uint64_t d = 1; d < cells; ++d) {
    uint32_t x = 0, y = 0;
    HilbertDecode(order, d, &x, &y);
    const int dist = std::abs(static_cast<int>(x) - static_cast<int>(px)) +
                     std::abs(static_cast<int>(y) - static_cast<int>(py));
    ASSERT_EQ(dist, 1) << "jump at d=" << d;
    px = x;
    py = y;
  }
}

TEST(HilbertTest, RoundTripLargeOrderSampled) {
  Rng rng(9);
  const int order = 16;
  for (int i = 0; i < 20000; ++i) {
    const uint32_t x = static_cast<uint32_t>(rng.NextBelow(1u << order));
    const uint32_t y = static_cast<uint32_t>(rng.NextBelow(1u << order));
    const uint64_t d = HilbertEncode(order, x, y);
    uint32_t rx = 0, ry = 0;
    HilbertDecode(order, d, &rx, &ry);
    ASSERT_EQ(rx, x);
    ASSERT_EQ(ry, y);
  }
}

TEST(HilbertTest, CoversAllCellsBijectively) {
  const int order = 5;
  const uint64_t cells = 1ull << (2 * order);
  std::vector<bool> seen(cells, false);
  for (uint32_t x = 0; x < (1u << order); ++x) {
    for (uint32_t y = 0; y < (1u << order); ++y) {
      const uint64_t d = HilbertEncode(order, x, y);
      ASSERT_LT(d, cells);
      ASSERT_FALSE(seen[d]) << "collision at d=" << d;
      seen[d] = true;
    }
  }
}

}  // namespace
}  // namespace wazi

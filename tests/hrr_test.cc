#include "baselines/hrr.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(HrrTest, CorrectAcrossRegions) {
  for (Region region : {Region::kCaliNev, Region::kJapan}) {
    const TestScenario s = MakeScenario(region, 6000, 300, 2e-3, 191);
    HilbertRTree index;
    BuildOptions opts;
    opts.leaf_capacity = 64;
    index.Build(s.data, s.workload, opts);
    for (size_t qi = 0; qi < 120; ++qi) {
      const Rect& q = s.workload.queries[qi];
      std::vector<Point> got;
      index.RangeQuery(q, &got);
      ASSERT_EQ(SortedIds(got), TruthIds(s.data, q)) << RegionName(region);
    }
  }
}

TEST(HrrTest, HilbertPackingHasLocality) {
  // Hilbert-packed leaves of uniform data should have compact MBRs: the
  // total leaf MBR area must be a small multiple of the domain area / #leaves.
  const Dataset data = MakeUniformDataset(20000, 192);
  Workload w;
  HilbertRTree index;
  BuildOptions opts;
  opts.leaf_capacity = 128;
  index.Build(data, w, opts);
  // Indirect check through query work: small queries should only touch a
  // few pages.
  QueryGenOptions qopts;
  qopts.num_queries = 200;
  qopts.selectivity = 1e-3;
  const Workload probes = GenerateUniformWorkload(data.bounds, qopts);
  index.stats().Reset();
  std::vector<Point> sink;
  for (const Rect& q : probes.queries) {
    sink.clear();
    index.RangeQuery(q, &sink);
  }
  const double pages_per_query =
      static_cast<double>(index.stats().pages_scanned) / probes.size();
  EXPECT_LT(pages_per_query, 8.0) << "Hilbert leaves lost locality";
}

TEST(HrrTest, InsertsSupported) {
  const TestScenario s = MakeScenario(Region::kIberia, 3000, 150, 1e-3, 193);
  HilbertRTree index;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index.Build(s.data, s.workload, opts);
  Dataset augmented = s.data;
  const std::vector<Point> stream =
      GenerateInsertStream(s.data.bounds, 1500, 800000, 194);
  for (const Point& p : stream) {
    ASSERT_TRUE(index.Insert(p));
    augmented.points.push_back(p);
  }
  for (size_t qi = 0; qi < 60; ++qi) {
    const Rect& q = s.workload.queries[qi];
    std::vector<Point> got;
    index.RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(augmented, q));
  }
}

}  // namespace
}  // namespace wazi

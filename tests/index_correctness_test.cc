// Cross-index correctness: every registered index must agree with the
// linear-scan ground truth on range and point queries, across a
// parameterized sweep of (index, region, dataset size, selectivity).

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "index/spatial_index.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

using CorrectnessParam =
    std::tuple<std::string /*index*/, int /*region*/, size_t /*n*/,
               double /*selectivity*/>;

class IndexCorrectnessTest
    : public ::testing::TestWithParam<CorrectnessParam> {};

TEST_P(IndexCorrectnessTest, RangeAndPointQueriesMatchBruteForce) {
  const auto& [name, region_idx, n, selectivity] = GetParam();
  const Region region = static_cast<Region>(region_idx);
  const TestScenario s = MakeScenario(region, n, 200, selectivity, 1234);

  auto index = MakeIndex(name);
  ASSERT_NE(index, nullptr) << name;
  BuildOptions opts;
  opts.leaf_capacity = 64;
  opts.kappa = 8;
  index->Build(s.data, s.workload, opts);

  // Range queries: the training workload plus fresh unseen queries.
  for (size_t qi = 0; qi < 100; ++qi) {
    const Rect& q = s.workload.queries[qi];
    std::vector<Point> got;
    index->RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(s.data, q)) << name << " query " << qi;
  }
  QueryGenOptions fresh_opts;
  fresh_opts.num_queries = 50;
  fresh_opts.selectivity = selectivity;
  fresh_opts.seed = 777;
  const Workload fresh = GenerateUniformWorkload(s.data.bounds, fresh_opts);
  for (const Rect& q : fresh.queries) {
    std::vector<Point> got;
    index->RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(s.data, q)) << name << " unseen query";
  }

  // Projection path must agree with the fused path.
  for (size_t qi = 0; qi < 20; ++qi) {
    const Rect& q = s.workload.queries[qi];
    Projection proj;
    index->Project(q, &proj);
    std::vector<Point> got;
    index->ScanProjection(proj, q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(s.data, q))
        << name << " projection path, query " << qi;
  }

  // Point queries: stored points hit, off-grid points miss.
  Rng rng(55);
  for (int i = 0; i < 300; ++i) {
    const Point& p = s.data.points[rng.NextBelow(s.data.points.size())];
    ASSERT_TRUE(index->PointQuery(p)) << name;
  }
  EXPECT_FALSE(index->PointQuery(Point{-3.0, 0.5, 0})) << name;
  EXPECT_FALSE(index->PointQuery(Point{0.512345678, 9.5, 0})) << name;
}

std::vector<std::string> AllNames() { return AllIndexNames(); }

INSTANTIATE_TEST_SUITE_P(
    AllIndexesSmall, IndexCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(AllNames()),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values<size_t>(3000),
                       ::testing::Values(1e-3)),
    [](const ::testing::TestParamInfo<CorrectnessParam>& info) {
      std::string clean = std::get<0>(info.param);
      for (char& c : clean) {
        if (c == '-' || c == '+') c = '_';
      }
      return clean + "_r" + std::to_string(std::get<1>(info.param)) + "_n" +
             std::to_string(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    MainIndexesSelectivitySweep, IndexCorrectnessTest,
    ::testing::Combine(::testing::ValuesIn(MainIndexNames()),
                       ::testing::Values(0),
                       ::testing::Values<size_t>(8000),
                       ::testing::Values(1e-4, 1e-3, 1e-2)),
    [](const ::testing::TestParamInfo<CorrectnessParam>& info) {
      std::string clean = std::get<0>(info.param);
      for (char& c : clean) {
        if (c == '-' || c == '+') c = '_';
      }
      return clean + "_sel" +
             std::to_string(
                 static_cast<int>(std::get<3>(info.param) * 1e5));
    });

}  // namespace
}  // namespace wazi

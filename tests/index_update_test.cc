// Update support across the index family (Fig. 11 uses WaZI, CUR and
// Flood): insert + query correctness, and graceful refusal elsewhere.

#include <gtest/gtest.h>

#include "index/spatial_index.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

class UpdatableIndexTest : public ::testing::TestWithParam<std::string> {};

TEST_P(UpdatableIndexTest, InsertStreamKeepsQueriesExact) {
  const std::string name = GetParam();
  const TestScenario s = MakeScenario(Region::kCaliNev, 5000, 200, 1e-3, 131);
  auto index = MakeIndex(name);
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index->Build(s.data, s.workload, opts);

  Dataset augmented = s.data;
  const std::vector<Point> stream =
      GenerateInsertStream(s.data.bounds, 2500, 1000000, 132);
  for (const Point& p : stream) {
    ASSERT_TRUE(index->Insert(p)) << name;
    augmented.points.push_back(p);
  }
  for (size_t qi = 0; qi < 80; ++qi) {
    const Rect& q = s.workload.queries[qi];
    std::vector<Point> got;
    index->RangeQuery(q, &got);
    ASSERT_EQ(SortedIds(got), TruthIds(augmented, q)) << name;
  }
  for (size_t i = 0; i < stream.size(); i += 10) {
    ASSERT_TRUE(index->PointQuery(stream[i])) << name;
  }
}

TEST_P(UpdatableIndexTest, RemoveUndoesInsert) {
  const std::string name = GetParam();
  const TestScenario s = MakeScenario(Region::kJapan, 3000, 150, 1e-3, 133);
  auto index = MakeIndex(name);
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index->Build(s.data, s.workload, opts);
  const Point p{0.123456, 0.654321, 77777};
  ASSERT_TRUE(index->Insert(p));
  ASSERT_TRUE(index->PointQuery(p));
  ASSERT_TRUE(index->Remove(p));
  EXPECT_FALSE(index->PointQuery(p));
  EXPECT_FALSE(index->Remove(p));
}

INSTANTIATE_TEST_SUITE_P(
    UpdatableIndexes, UpdatableIndexTest,
    ::testing::Values("wazi", "base", "str", "cur", "flood", "hrr", "brute"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string clean = info.param;
      for (char& c : clean) {
        if (c == '-' || c == '+') c = '_';
      }
      return clean;
    });

TEST(NonUpdatableIndexTest, RefuseInsertGracefully) {
  const TestScenario s = MakeScenario(Region::kIberia, 2000, 100, 1e-3, 134);
  for (const char* name : {"quasii", "qd-gr", "quilts", "zpgm", "rsmi"}) {
    auto index = MakeIndex(name);
    BuildOptions opts;
    opts.leaf_capacity = 64;
    index->Build(s.data, s.workload, opts);
    EXPECT_FALSE(index->Insert(Point{0.5, 0.5, 999999})) << name;
  }
}

}  // namespace
}  // namespace wazi

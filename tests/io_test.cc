#include "workload/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "index/spatial_index.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

TEST(IoTest, PointsRoundTrip) {
  const Dataset data = GenerateRegion(Region::kCaliNev, 2000, 21);
  std::stringstream buffer;
  ASSERT_TRUE(SavePointsCsv(data, buffer));
  Dataset restored;
  std::string error;
  ASSERT_TRUE(LoadPointsCsv(buffer, &restored, &error)) << error;
  ASSERT_EQ(restored.size(), data.size());
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_EQ(restored.points[i].x, data.points[i].x);
    ASSERT_EQ(restored.points[i].y, data.points[i].y);
    ASSERT_EQ(restored.points[i].id, data.points[i].id);
  }
  EXPECT_FALSE(restored.bounds.empty());
}

TEST(IoTest, QueriesRoundTrip) {
  QueryGenOptions opts;
  opts.num_queries = 500;
  const Workload w =
      GenerateCheckinWorkload(Region::kJapan, Rect::Of(0, 0, 1, 1), opts);
  std::stringstream buffer;
  ASSERT_TRUE(SaveQueriesCsv(w, buffer));
  Workload restored;
  std::string error;
  ASSERT_TRUE(LoadQueriesCsv(buffer, &restored, &error)) << error;
  ASSERT_EQ(restored.size(), w.size());
  for (size_t i = 0; i < w.size(); ++i) {
    ASSERT_EQ(restored.queries[i], w.queries[i]);
  }
}

TEST(IoTest, PointsWithoutIdsGetRowNumbers) {
  std::stringstream in("0.1,0.2\n0.3,0.4\n");
  Dataset data;
  std::string error;
  ASSERT_TRUE(LoadPointsCsv(in, &data, &error)) << error;
  ASSERT_EQ(data.size(), 2u);
  EXPECT_EQ(data.points[0].id, 0);
  EXPECT_EQ(data.points[1].id, 1);
}

TEST(IoTest, CommentsAndBlanksSkipped) {
  std::stringstream in("# header\n\n0.1,0.2,7\n   \n# trailing\n");
  Dataset data;
  std::string error;
  ASSERT_TRUE(LoadPointsCsv(in, &data, &error)) << error;
  ASSERT_EQ(data.size(), 1u);
  EXPECT_EQ(data.points[0].id, 7);
}

TEST(IoTest, MalformedInputReportsLine) {
  {
    std::stringstream in("0.1,0.2\nnot,a,number\n");
    Dataset data;
    std::string error;
    EXPECT_FALSE(LoadPointsCsv(in, &data, &error));
    EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  }
  {
    std::stringstream in("0.1\n");
    Dataset data;
    std::string error;
    EXPECT_FALSE(LoadPointsCsv(in, &data, &error));
    EXPECT_NE(error.find("expected x,y"), std::string::npos);
  }
  {
    std::stringstream in("0.5,0.5,0.1,0.1\n");  // min > max
    Workload w;
    std::string error;
    EXPECT_FALSE(LoadQueriesCsv(in, &w, &error));
    EXPECT_NE(error.find("empty rectangle"), std::string::npos);
  }
  {
    Dataset data;
    std::string error;
    EXPECT_FALSE(LoadPointsCsvFile("/no/such/file.csv", &data, &error));
    EXPECT_NE(error.find("cannot open"), std::string::npos);
  }
}

TEST(IoTest, FileRoundTripAndIndexBuild) {
  const TestScenario s = MakeScenario(Region::kIberia, 1500, 200, 1e-3, 22);
  const std::string pts_path = ::testing::TempDir() + "/wazi_pts.csv";
  const std::string q_path = ::testing::TempDir() + "/wazi_q.csv";
  ASSERT_TRUE(SavePointsCsvFile(s.data, pts_path));
  ASSERT_TRUE(SaveQueriesCsvFile(s.workload, q_path));

  Dataset data;
  Workload workload;
  std::string error;
  ASSERT_TRUE(LoadPointsCsvFile(pts_path, &data, &error)) << error;
  ASSERT_TRUE(LoadQueriesCsvFile(q_path, &workload, &error)) << error;

  auto index = MakeIndex("wazi");
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index->Build(data, workload, opts);
  for (size_t qi = 0; qi < 50; ++qi) {
    std::vector<Point> got;
    index->RangeQuery(workload.queries[qi], &got);
    ASSERT_EQ(SortedIds(got), TruthIds(s.data, s.workload.queries[qi]));
  }
  std::remove(pts_path.c_str());
  std::remove(q_path.c_str());
}

}  // namespace
}  // namespace wazi

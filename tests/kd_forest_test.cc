// RFDE (kd-forest) estimation accuracy: statistical tolerance against
// exact counts on uniform, clustered and 4-D query-corner data.

#include "density/kd_forest.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/density_adapters.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

std::vector<DVec> ToRows2D(const std::vector<Point>& pts) {
  std::vector<DVec> rows;
  rows.reserve(pts.size());
  for (const Point& p : pts) rows.push_back(DVec{p.x, p.y, 0, 0});
  return rows;
}

double ExactCount2D(const std::vector<Point>& pts, const Rect& box) {
  double n = 0;
  for (const Point& p : pts) n += box.Contains(p) ? 1.0 : 0.0;
  return n;
}

TEST(KdForestTest, TotalWeightAndFullBox) {
  const Dataset data = MakeUniformDataset(20000, 51);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  forest.Build(ToRows2D(data.points), {}, opts);
  EXPECT_EQ(forest.total_weight(), 20000.0);
  EXPECT_NEAR(forest.Estimate(FullBox(2)), 20000.0, 1.0);
}

TEST(KdForestTest, EmptyAndDisjointBoxes) {
  const Dataset data = MakeUniformDataset(5000, 52);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  forest.Build(ToRows2D(data.points), {}, opts);
  DBox far_box;
  far_box.lo = DVec{5, 5, 0, 0};
  far_box.hi = DVec{6, 6, 0, 0};
  EXPECT_EQ(forest.Estimate(far_box), 0.0);

  KdForest empty;
  empty.Build({}, {}, opts);
  EXPECT_EQ(empty.Estimate(FullBox(2)), 0.0);
}

TEST(KdForestTest, UniformDataAccuracy) {
  const Dataset data = MakeUniformDataset(50000, 53);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  opts.num_trees = 8;
  forest.Build(ToRows2D(data.points), {}, opts);
  Rng rng(54);
  double rel_err_sum = 0.0;
  int measured = 0;
  for (int i = 0; i < 100; ++i) {
    const double x0 = rng.Uniform(0, 0.7);
    const double y0 = rng.Uniform(0, 0.7);
    const double w = rng.Uniform(0.05, 0.3);
    const Rect box = Rect::Of(x0, y0, x0 + w, y0 + w);
    const double exact = ExactCount2D(data.points, box);
    if (exact < 100) continue;
    DBox dbox;
    dbox.lo = DVec{box.min_x, box.min_y, 0, 0};
    dbox.hi = DVec{box.max_x, box.max_y, 0, 0};
    rel_err_sum += std::abs(forest.Estimate(dbox) - exact) / exact;
    ++measured;
  }
  ASSERT_GT(measured, 20);
  EXPECT_LT(rel_err_sum / measured, 0.10)
      << "mean relative error too high on uniform data";
}

TEST(KdForestTest, ClusteredDataAccuracy) {
  const Dataset data = GenerateRegion(Region::kCaliNev, 50000, 55);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  opts.num_trees = 12;
  opts.leaf_size = 8;
  forest.Build(ToRows2D(data.points), {}, opts);
  Rng rng(56);
  double rel_err_sum = 0.0;
  int measured = 0;
  for (int i = 0; i < 200; ++i) {
    const Point& c = data.points[rng.NextBelow(data.points.size())];
    const double w = rng.Uniform(0.02, 0.15);
    const Rect box = Rect::Of(c.x - w, c.y - w, c.x + w, c.y + w);
    const double exact = ExactCount2D(data.points, box);
    if (exact < 200) continue;
    DBox dbox;
    dbox.lo = DVec{box.min_x, box.min_y, 0, 0};
    dbox.hi = DVec{box.max_x, box.max_y, 0, 0};
    rel_err_sum += std::abs(forest.Estimate(dbox) - exact) / exact;
    ++measured;
  }
  ASSERT_GT(measured, 30);
  EXPECT_LT(rel_err_sum / measured, 0.25)
      << "mean relative error too high on clustered data";
}

TEST(KdForestTest, WeightedCounts) {
  // Points on the left half weigh 3, right half weigh 1.
  const Dataset data = MakeUniformDataset(20000, 57);
  std::vector<double> weights;
  weights.reserve(data.points.size());
  double left_total = 0.0;
  for (const Point& p : data.points) {
    const double w = p.x < 0.5 ? 3.0 : 1.0;
    weights.push_back(w);
    if (p.x < 0.5) left_total += w;
  }
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  opts.num_trees = 8;
  forest.Build(ToRows2D(data.points), weights, opts);
  DBox left;
  left.lo = DVec{-1, -1, 0, 0};
  left.hi = DVec{0.5, 2, 0, 0};
  EXPECT_NEAR(forest.Estimate(left), left_total, 0.08 * left_total);
}

TEST(KdForestTest, FourDimensionalCornerCounts) {
  // Exactness proxy for the q_XY reduction: estimated 4-D box counts of
  // query corners must track exact counts.
  const TestScenario s = MakeScenario(Region::kNewYork, 2000, 5000, 1e-3, 58);
  const std::vector<DVec> rows = QueryCornerRows(s.workload);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 4;
  opts.num_trees = 8;
  forest.Build(rows, {}, opts);

  Rng rng(59);
  double rel_err_sum = 0.0;
  int measured = 0;
  for (int iter = 0; iter < 100; ++iter) {
    DBox box;
    for (int d = 0; d < 4; ++d) {
      const double lo = rng.Uniform(0.0, 0.8);
      box.lo[d] = lo;
      box.hi[d] = lo + rng.Uniform(0.1, 0.4);
    }
    double exact = 0.0;
    for (const DVec& r : rows) {
      bool in = true;
      for (int d = 0; d < 4; ++d) {
        in = in && r[d] >= box.lo[d] && r[d] <= box.hi[d];
      }
      exact += in ? 1.0 : 0.0;
    }
    if (exact < 100) continue;
    rel_err_sum += std::abs(forest.Estimate(box) - exact) / exact;
    ++measured;
  }
  if (measured > 10) {
    EXPECT_LT(rel_err_sum / measured, 0.30);
  }
}

TEST(KdForestTest, SubsampledForestScalesToPopulation) {
  const Dataset data = MakeUniformDataset(50000, 60);
  KdForest forest;
  KdForestOptions opts;
  opts.dim = 2;
  opts.num_trees = 8;
  opts.subsample = 5000;
  forest.Build(ToRows2D(data.points), {}, opts);
  // Quarter box on uniform data: ~12.5k points.
  DBox box;
  box.lo = DVec{0, 0, 0, 0};
  box.hi = DVec{0.5, 0.5, 0, 0};
  EXPECT_NEAR(forest.Estimate(box), 12500.0, 1500.0);
}

}  // namespace
}  // namespace wazi

#include "index/knn.h"

#include <gtest/gtest.h>

#include <cmath>

#include "tests/test_util.h"

namespace wazi {
namespace {

double Dist(const Point& a, const Point& b) {
  return std::hypot(a.x - b.x, a.y - b.y);
}

std::vector<double> BruteKnnDistances(const Dataset& data,
                                      const Point& center, size_t k) {
  std::vector<double> d;
  d.reserve(data.points.size());
  for (const Point& p : data.points) d.push_back(Dist(p, center));
  std::sort(d.begin(), d.end());
  if (d.size() > k) d.resize(k);
  return d;
}

TEST(KnnTest, MatchesBruteForceOnAllMainIndexes) {
  const TestScenario s = MakeScenario(Region::kCaliNev, 5000, 200, 1e-3, 301);
  Rng rng(302);
  for (const std::string& name : MainIndexNames()) {
    auto index = MakeIndex(name);
    BuildOptions opts;
    opts.leaf_capacity = 64;
    index->Build(s.data, s.workload, opts);
    for (int trial = 0; trial < 20; ++trial) {
      const Point center{rng.NextDouble(), rng.NextDouble(), 0};
      const size_t k = 1 + rng.NextBelow(32);
      const KnnResult got =
          KnnByRangeExpansion(*index, center, k, s.data.bounds);
      const std::vector<double> want = BruteKnnDistances(s.data, center, k);
      ASSERT_EQ(got.neighbors.size(), want.size()) << name;
      for (size_t i = 0; i < want.size(); ++i) {
        ASSERT_NEAR(Dist(got.neighbors[i], center), want[i], 1e-12)
            << name << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST(KnnTest, ResultsSortedByDistance) {
  const TestScenario s = MakeScenario(Region::kJapan, 3000, 100, 1e-3, 303);
  auto index = MakeIndex("wazi");
  BuildOptions opts;
  opts.leaf_capacity = 64;
  index->Build(s.data, s.workload, opts);
  const Point center{0.6, 0.52, 0};
  const KnnResult got = KnnByRangeExpansion(*index, center, 50,
                                            s.data.bounds);
  ASSERT_EQ(got.neighbors.size(), 50u);
  for (size_t i = 1; i < got.neighbors.size(); ++i) {
    ASSERT_LE(Dist(got.neighbors[i - 1], center),
              Dist(got.neighbors[i], center));
  }
  EXPECT_GE(got.range_queries_issued, 1);
}

TEST(KnnTest, KLargerThanDatasetReturnsAll) {
  Dataset data;
  data.bounds = Rect::Of(0, 0, 1, 1);
  for (int i = 0; i < 10; ++i) {
    data.points.push_back(Point{0.1 * i, 0.1 * i, i});
  }
  Workload w;
  auto index = MakeIndex("base");
  index->Build(data, w, BuildOptions{});
  const KnnResult got =
      KnnByRangeExpansion(*index, Point{0.5, 0.5, 0}, 100, data.bounds);
  EXPECT_EQ(got.neighbors.size(), 10u);
}

TEST(KnnTest, CenterOutsideDomain) {
  const TestScenario s = MakeScenario(Region::kIberia, 2000, 100, 1e-3, 304);
  auto index = MakeIndex("wazi");
  index->Build(s.data, s.workload, BuildOptions{});
  const Point outside{-0.5, 1.5, 0};
  const KnnResult got =
      KnnByRangeExpansion(*index, outside, 5, s.data.bounds);
  const std::vector<double> want = BruteKnnDistances(s.data, outside, 5);
  ASSERT_EQ(got.neighbors.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    ASSERT_NEAR(Dist(got.neighbors[i], outside), want[i], 1e-12);
  }
}

TEST(KnnTest, KZeroIsEmpty) {
  const TestScenario s = MakeScenario(Region::kCaliNev, 500, 50, 1e-3, 305);
  auto index = MakeIndex("base");
  index->Build(s.data, s.workload, BuildOptions{});
  const KnnResult got =
      KnnByRangeExpansion(*index, Point{0.5, 0.5, 0}, 0, s.data.bounds);
  EXPECT_TRUE(got.neighbors.empty());
}

// Regression: a zero-span domain (every point at one coordinate, so the
// tight MBR — or a duplicate-collapsed shard cell — is a single point)
// must terminate instead of doubling a zero radius forever.
TEST(KnnTest, ZeroSpanDomainTerminates) {
  Dataset data;
  data.name = "all-duplicates";
  for (int i = 0; i < 20; ++i) data.points.push_back(Point{0.5, 0.5, i});
  data.bounds = ComputeBounds(data.points);  // the point [0.5,0.5]x[0.5,0.5]
  ASSERT_EQ(data.bounds.Area(), 0.0);
  auto index = MakeIndex("brute");
  index->Build(data, Workload{}, BuildOptions{});

  // Center away from the cluster, center on it, and k > n.
  for (const Point& center :
       {Point{0.2, 0.9, 0}, Point{0.5, 0.5, 0}, Point{0.0, 0.0, 0}}) {
    const KnnResult got =
        KnnByRangeExpansion(*index, center, 3, data.bounds);
    EXPECT_EQ(got.neighbors.size(), 3u);
    for (const Point& p : got.neighbors) {
      EXPECT_EQ(p.x, 0.5);
      EXPECT_EQ(p.y, 0.5);
    }
  }
  EXPECT_EQ(KnnByRangeExpansion(*index, Point{0.9, 0.1, 0}, 50, data.bounds)
                .neighbors.size(),
            20u);
}

}  // namespace
}  // namespace wazi

// LatencyRecorder: percentile extraction must interpolate (no nearest-rank
// rounding bias), the ring must evict oldest-first, and Merge must be
// honest — retained samples are never silently truncated and count()
// reflects TOTAL recorded ops across sources.

#include <gtest/gtest.h>

#include <vector>

#include "serve/latency_recorder.h"

namespace wazi::serve {
namespace {

TEST(LatencyRecorderTest, EmptyRecorderReportsZeros) {
  LatencyRecorder rec;
  EXPECT_EQ(rec.count(), 0u);
  EXPECT_EQ(rec.retained(), 0u);
  EXPECT_EQ(rec.PercentileNs(0), 0);
  EXPECT_EQ(rec.PercentileNs(50), 0);
  EXPECT_EQ(rec.PercentileNs(100), 0);
}

TEST(LatencyRecorderTest, SingleSampleIsEveryPercentile) {
  LatencyRecorder rec;
  rec.Record(42);
  for (const double pct : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_EQ(rec.PercentileNs(pct), 42) << "pct " << pct;
  }
  EXPECT_EQ(rec.count(), 1u);
  EXPECT_EQ(rec.retained(), 1u);
}

TEST(LatencyRecorderTest, PercentilesInterpolateLinearly) {
  LatencyRecorder rec;
  // 0, 10, ..., 100: rank r maps to value 10 * r, so pNN == NN * 10
  // exactly, and off-grid percentiles interpolate between neighbours.
  for (int i = 0; i <= 10; ++i) rec.Record(i * 10);
  EXPECT_EQ(rec.PercentileNs(0), 0);    // min
  EXPECT_EQ(rec.PercentileNs(50), 50);  // exact median
  EXPECT_EQ(rec.PercentileNs(100), 100);  // max
  EXPECT_EQ(rec.PercentileNs(95), 95);    // between 90 and 100
  EXPECT_EQ(rec.PercentileNs(99), 99);    // nearest-rank would say 100
  // Two samples: the median is their midpoint, not either endpoint.
  LatencyRecorder two;
  two.Record(10);
  two.Record(20);
  EXPECT_EQ(two.PercentileNs(50), 15);
  EXPECT_EQ(two.PercentileNs(0), 10);
  EXPECT_EQ(two.PercentileNs(100), 20);
  // Out-of-range pct clamps instead of reading out of bounds.
  EXPECT_EQ(two.PercentileNs(-5), 10);
  EXPECT_EQ(two.PercentileNs(250), 20);
}

TEST(LatencyRecorderTest, SmallWindowP99IsNotBiasedToTheMax) {
  // 99 samples of 100ns and one 10000ns outlier: nearest-rank with +0.5
  // rounding reported the outlier as p99; interpolation keeps p99 inside
  // [100, 10000) and p90 at the bulk.
  LatencyRecorder rec;
  for (int i = 0; i < 99; ++i) rec.Record(100);
  rec.Record(10000);
  EXPECT_EQ(rec.PercentileNs(90), 100);
  EXPECT_LT(rec.PercentileNs(99), 10000);
  EXPECT_GE(rec.PercentileNs(99), 100);
  EXPECT_EQ(rec.PercentileNs(100), 10000);
}

TEST(LatencyRecorderTest, RingEvictsOldestFirst) {
  LatencyRecorder rec(4);
  for (int i = 1; i <= 6; ++i) rec.Record(i);
  // 1 and 2 were evicted; the retained window is {3, 4, 5, 6}.
  EXPECT_EQ(rec.count(), 6u);
  EXPECT_EQ(rec.retained(), 4u);
  EXPECT_EQ(rec.PercentileNs(0), 3);
  EXPECT_EQ(rec.PercentileNs(100), 6);
  // Keep recording: the window slides, count keeps the total.
  rec.Record(7);
  rec.Record(8);
  EXPECT_EQ(rec.count(), 8u);
  EXPECT_EQ(rec.PercentileNs(0), 5);
  EXPECT_EQ(rec.PercentileNs(100), 8);
}

TEST(LatencyRecorderTest, CountingOnlyRecorderKeepsNoSamples) {
  LatencyRecorder rec(0);
  rec.Record(5);
  rec.Record(6);
  EXPECT_EQ(rec.count(), 2u);
  EXPECT_EQ(rec.retained(), 0u);
  EXPECT_EQ(rec.PercentileNs(50), 0);
}

TEST(LatencyRecorderTest, MergeGrowsInsteadOfTruncating) {
  // Destination window (2) is smaller than the combined sample count (4):
  // an honest merge grows the window so nothing retained is dropped.
  LatencyRecorder a(2);
  a.Record(1);
  a.Record(2);
  LatencyRecorder b(2);
  b.Record(3);
  b.Record(4);
  a.Merge(b);
  EXPECT_EQ(a.retained(), 4u);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_GE(a.capacity(), 4u);
  EXPECT_EQ(a.PercentileNs(0), 1);
  EXPECT_EQ(a.PercentileNs(100), 4);
  // {1,2,3,4}: the interpolated median is 2.5, rounded half-up to 3.
  EXPECT_EQ(a.PercentileNs(50), 3);
}

TEST(LatencyRecorderTest, MergeCountsEvictedSourceOps) {
  // The source recorded 6 ops but retains 4: the merged count() must say
  // 6 (total ops), while only the 4 retained samples transfer.
  LatencyRecorder src(4);
  for (int i = 1; i <= 6; ++i) src.Record(i * 10);
  LatencyRecorder dst(16);
  dst.Record(5);
  dst.Merge(src);
  EXPECT_EQ(dst.count(), 7u);
  EXPECT_EQ(dst.retained(), 5u);
  EXPECT_EQ(dst.PercentileNs(0), 5);
  EXPECT_EQ(dst.PercentileNs(100), 60);
}

TEST(LatencyRecorderTest, MergeIntoCountingOnlyStaysCountingOnly) {
  LatencyRecorder src(4);
  src.Record(10);
  src.Record(20);
  LatencyRecorder dst(0);
  dst.Merge(src);
  EXPECT_EQ(dst.count(), 2u);
  EXPECT_EQ(dst.retained(), 0u);
}

TEST(LatencyRecorderTest, PercentileCacheInvalidatesOnRecord) {
  LatencyRecorder rec;
  rec.Record(10);
  EXPECT_EQ(rec.PercentileNs(100), 10);  // populates the sorted cache
  rec.Record(20);
  EXPECT_EQ(rec.PercentileNs(100), 20);  // cache refreshed
  LatencyRecorder other;
  other.Record(30);
  rec.Merge(other);
  EXPECT_EQ(rec.PercentileNs(100), 30);  // Merge invalidates too
}

}  // namespace
}  // namespace wazi::serve

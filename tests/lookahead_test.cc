// Look-ahead pointer invariants (Alg. 4) and equivalence of skipping vs
// naive range-query execution.

#include "core/lookahead.h"

#include <gtest/gtest.h>

#include "core/wazi.h"
#include "tests/test_util.h"

namespace wazi {
namespace {

BuildOptions SmallOpts() {
  BuildOptions opts;
  opts.leaf_capacity = 32;
  opts.kappa = 12;
  return opts;
}

TEST(LookaheadInvariants, ValidAfterBulkBuildBase) {
  const TestScenario s = MakeScenario(Region::kCaliNev, 6000, 200, 1e-3, 31);
  BaseZSk index;
  index.Build(s.data, s.workload, SmallOpts());
  EXPECT_EQ(ValidateLookahead(index.zindex(), /*strict=*/true), "");
}

TEST(LookaheadInvariants, ValidAfterBulkBuildWazi) {
  for (Region region : AllRegions()) {
    const TestScenario s = MakeScenario(region, 5000, 300, 1e-3, 32);
    Wazi index;
    index.Build(s.data, s.workload, SmallOpts());
    EXPECT_EQ(ValidateLookahead(index.zindex(), /*strict=*/true), "")
        << RegionName(region);
  }
}

TEST(LookaheadInvariants, PointersActuallySkip) {
  const TestScenario s = MakeScenario(Region::kNewYork, 20000, 300, 1e-3, 33);
  Wazi index;
  index.Build(s.data, s.workload, SmallOpts());
  const LookaheadSummary sum = SummarizeLookahead(index.zindex());
  EXPECT_GT(sum.pointers, 0);
  // On a clustered dataset a meaningful fraction of pointers must jump
  // beyond the immediate next leaf, else skipping buys nothing.
  EXPECT_GT(sum.mean_jump, 0.5);
  EXPECT_GT(sum.max_jump, 4);
}

TEST(LookaheadEquivalence, SkippingMatchesNaiveOnSameTree) {
  // Same adaptive tree, executed with and without skipping, must return
  // identical results with identical pages scanned.
  const TestScenario s = MakeScenario(Region::kJapan, 8000, 300, 2e-3, 34);
  Wazi skipping;  // adaptive + lookahead
  skipping.Build(s.data, s.workload, SmallOpts());
  const ZIndex& z = skipping.zindex();

  QueryStats naive_stats, skip_stats;
  for (const Rect& q : s.workload.queries) {
    std::vector<Point> naive_out, skip_out;
    z.RangeQueryNaive(q, &naive_out, &naive_stats);
    z.RangeQuerySkipping(q, &skip_out, &skip_stats);
    ASSERT_EQ(SortedIds(naive_out), SortedIds(skip_out));
  }
  EXPECT_EQ(naive_stats.pages_scanned, skip_stats.pages_scanned);
  EXPECT_EQ(naive_stats.results, skip_stats.results);
  EXPECT_LE(skip_stats.bbs_checked, naive_stats.bbs_checked);
}

TEST(LookaheadEquivalence, RandomQueriesIncludingExtremes) {
  const TestScenario s = MakeScenario(Region::kIberia, 6000, 200, 1e-3, 35);
  Wazi index;
  index.Build(s.data, s.workload, SmallOpts());
  const ZIndex& z = index.zindex();
  Rng rng(77);
  QueryStats stats;
  for (int i = 0; i < 500; ++i) {
    const double x0 = rng.Uniform(-0.2, 1.2);
    const double y0 = rng.Uniform(-0.2, 1.2);
    const double w = rng.Uniform(0.0, 0.6);
    const double h = rng.Uniform(0.0, 0.6);
    const Rect q = Rect::Of(x0, y0, x0 + w, y0 + h);
    std::vector<Point> naive_out, skip_out;
    z.RangeQueryNaive(q, &naive_out, &stats);
    z.RangeQuerySkipping(q, &skip_out, &stats);
    ASSERT_EQ(SortedIds(naive_out), SortedIds(skip_out))
        << "query " << q.DebugString();
  }
}

TEST(LookaheadEquivalence, DegenerateData) {
  Dataset data = MakeDegenerateDataset(4000, 36);
  QueryGenOptions qopts;
  qopts.num_queries = 200;
  qopts.selectivity = 1e-3;
  const Workload w = GenerateUniformWorkload(data.bounds, qopts);
  BaseZSk index;
  index.Build(data, w, SmallOpts());
  EXPECT_EQ(ValidateLookahead(index.zindex(), /*strict=*/true), "");
  const ZIndex& z = index.zindex();
  QueryStats stats;
  for (const Rect& q : w.queries) {
    std::vector<Point> naive_out, skip_out;
    z.RangeQueryNaive(q, &naive_out, &stats);
    z.RangeQuerySkipping(q, &skip_out, &stats);
    ASSERT_EQ(SortedIds(naive_out), SortedIds(skip_out));
  }
}

}  // namespace
}  // namespace wazi

// MetricsRegistry: handle stability, counter/gauge/histogram semantics,
// percentile interpolation compatibility with serve/latency_recorder.h,
// and registry consistency under many concurrent writers + a snapshot
// poller (the TSan target: no torn reads, counters never go backwards,
// histogram invariants hold in every snapshot).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/latency_recorder.h"

namespace wazi::obs {
namespace {

TEST(MetricsRegistryTest, GetOrCreateReturnsStableHandles) {
  MetricsRegistry reg;
  Counter* c1 = reg.GetCounter("requests_total");
  Counter* c2 = reg.GetCounter("requests_total");
  EXPECT_EQ(c1, c2);
  Gauge* g1 = reg.GetGauge("queue_depth");
  EXPECT_EQ(g1, reg.GetGauge("queue_depth"));
  Histogram* h1 = reg.GetHistogram("latency_ns");
  EXPECT_EQ(h1, reg.GetHistogram("latency_ns"));
  // Distinct names are distinct metrics.
  EXPECT_NE(c1, reg.GetCounter("other_total"));
}

TEST(MetricsRegistryTest, CountersAndGaugesAccumulate) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("n_total");
  c->Add();
  c->Add(41);
  EXPECT_EQ(c->value(), 42);
  Gauge* g = reg.GetGauge("depth");
  g->Set(7);
  g->Add(-3);
  EXPECT_EQ(g->value(), 4);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("n_total"), 42);
  EXPECT_EQ(snap.GaugeValue("depth"), 4);
  EXPECT_EQ(snap.CounterValue("absent", -1), -1);
}

TEST(MetricsRegistryTest, KindMismatchReturnsPrivateFallbackHandle) {
  MetricsRegistry reg;
  Counter* c = reg.GetCounter("name");
  // Registering the same name as a different kind is a programming error;
  // the call must still return a USABLE handle, and the real metric must
  // be unaffected.
  Gauge* g = reg.GetGauge("name");
  ASSERT_NE(g, nullptr);
  g->Set(99);
  c->Add(1);
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.CounterValue("name"), 1);
  // The orphan gauge is never exported under the clashing name.
  EXPECT_EQ(snap.GaugeValue("name", -1), -1);
}

TEST(MetricsRegistryTest, SnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.GetCounter("zebra_total");
  reg.GetCounter("alpha_total");
  reg.GetCounter("mid_total");
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_EQ(snap.counters[0].first, "alpha_total");
  EXPECT_EQ(snap.counters[1].first, "mid_total");
  EXPECT_EQ(snap.counters[2].first, "zebra_total");
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h({});
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.sum(), 0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.Snapshot().mean(), 0.0);
}

TEST(HistogramTest, CountSumAndBucketPlacement) {
  Histogram h({10, 100, 1000});
  h.Record(5);     // bucket 0: (inf, 10]
  h.Record(10);    // bucket 0 (bounds are inclusive upper)
  h.Record(11);    // bucket 1
  h.Record(5000);  // overflow bucket
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 4);
  EXPECT_EQ(snap.sum, 5 + 10 + 11 + 5000);
  ASSERT_EQ(snap.buckets.size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(snap.buckets[0], 2);
  EXPECT_EQ(snap.buckets[1], 1);
  EXPECT_EQ(snap.buckets[2], 0);
  EXPECT_EQ(snap.buckets[3], 1);
}

TEST(HistogramTest, PercentileInterpolatesWithinBucket) {
  // 10 samples all in the single [0, 10] bucket: the rank pct/100 * (n-1)
  // interpolates across the bucket span, so the median of a full bucket
  // sits at its middle, exactly like latency_recorder's continuous
  // percentile over retained samples.
  Histogram h({10});
  for (int i = 0; i < 10; ++i) h.Record(i);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
  EXPECT_NEAR(h.Percentile(50), 5.0, 1e-9);
}

TEST(HistogramTest, PercentileIsMonotoneAndBoundedByBuckets) {
  Histogram h(Histogram::DefaultLatencyBoundsNs());
  // A latency-shaped spread: mostly fast, a slow tail.
  for (int i = 0; i < 900; ++i) h.Record(500 + i);
  for (int i = 0; i < 100; ++i) h.Record(1000000 + i * 1000);
  double prev = -1.0;
  for (double pct : {0.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0, 100.0}) {
    const double v = h.Percentile(pct);
    EXPECT_GE(v, prev) << "pct " << pct;
    prev = v;
  }
  // p50 must land in the fast cluster's bucket range, p99.9 near the tail.
  EXPECT_LT(h.Percentile(50), 4096.0);
  EXPECT_GT(h.Percentile(99), 100000.0);
}

TEST(HistogramTest, MatchesLatencyRecorderSemanticsOnExactBucketRanks) {
  // When every sample IS a bucket bound, the bucketed interpolation and
  // the retained-sample interpolation see the same order statistics.
  serve::LatencyRecorder rec;
  Histogram h({100, 200, 300, 400});
  for (int64_t v : {100, 200, 300, 400}) {
    rec.Record(v);
    h.Record(v);
  }
  // rank(50) = 1.5 -> between 200 and 300 for the recorder; the histogram
  // interpolates within bucket [200, 300] to the same midpoint.
  EXPECT_NEAR(static_cast<double>(rec.PercentileNs(50)), 250.0, 1.0);
  EXPECT_NEAR(h.Percentile(50), 250.0, 1.0);
}

TEST(HistogramTest, OverflowBucketReportsItsLowerBound) {
  Histogram h({10});
  h.Record(100000);
  // The overflow bucket has no upper bound; the percentile degrades to
  // its lower bound rather than inventing a value.
  EXPECT_DOUBLE_EQ(h.Percentile(99), 10.0);
}

// The TSan target: concurrent writers on all three metric kinds plus a
// poller asserting per-snapshot invariants. Run with the sharded test
// suites in the tsan-serve CI job.
TEST(MetricsRegistryConcurrencyTest, WritersAndSnapshotPoller) {
  MetricsRegistry reg;
  Counter* ctr = reg.GetCounter("ops_total");
  Gauge* gauge = reg.GetGauge("inflight");
  Histogram* hist = reg.GetHistogram("lat_ns", {64, 256, 1024, 4096});
  constexpr int kWriters = 4;
  constexpr int kOpsPerWriter = 20000;
  std::atomic<bool> stop{false};

  std::thread poller([&] {
    int64_t last_count = 0;
    int64_t last_ops = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = reg.Snapshot();
      // Counters are monotone across snapshots.
      const int64_t ops = snap.CounterValue("ops_total");
      ASSERT_GE(ops, last_ops);
      last_ops = ops;
      // Histogram: count never regresses, never exceeds the writers'
      // total, and the snapshot's count covers its buckets.
      const auto& h = snap.histograms;
      ASSERT_EQ(h.size(), 1u);
      const HistogramSnapshot& hs = h[0].second;
      ASSERT_GE(hs.count, last_count);
      last_count = hs.count;
      ASSERT_LE(hs.count,
                static_cast<int64_t>(kWriters) * kOpsPerWriter);
      int64_t bucket_total = 0;
      for (int64_t b : hs.buckets) {
        ASSERT_GE(b, 0);
        bucket_total += b;
      }
      ASSERT_GE(hs.count, bucket_total);
      ASSERT_EQ(hs.buckets.size(), hs.bounds.size() + 1);
      // Percentiles stay finite and ordered even on racing snapshots.
      const double p50 = hs.Percentile(50);
      const double p99 = hs.Percentile(99);
      ASSERT_LE(p50, p99 + 1e-9);
      ASSERT_GE(p50, 0.0);
      std::this_thread::yield();
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (int i = 0; i < kOpsPerWriter; ++i) {
        ctr->Add(1);
        gauge->Add(i % 2 == 0 ? 1 : -1);
        hist->Record((w * 37 + i * 13) % 8192);
        if (i % 1024 == 0) {
          // Late registration under load: get-or-create must hand back
          // the same handles without disturbing the poller.
          ASSERT_EQ(reg.GetCounter("ops_total"), ctr);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  poller.join();

  const MetricsSnapshot final_snap = reg.Snapshot();
  EXPECT_EQ(final_snap.CounterValue("ops_total"),
            static_cast<int64_t>(kWriters) * kOpsPerWriter);
  EXPECT_EQ(final_snap.GaugeValue("inflight"), 0);
  const HistogramSnapshot hs = final_snap.histograms[0].second;
  EXPECT_EQ(hs.count, static_cast<int64_t>(kWriters) * kOpsPerWriter);
  int64_t total = 0;
  for (int64_t b : hs.buckets) total += b;
  EXPECT_EQ(total, hs.count);
}

}  // namespace
}  // namespace wazi::obs
